package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/netsim"
)

// TestParallelMeasureMatchesSequential runs the full distributed FFT
// pipeline — plan construction, reshapes, compression kernels on the
// GPU model, accuracy round trip — under both engine modes and demands
// bit-identical Results. This is the top-of-stack determinism check:
// everything below (exchange, mpi, gpu, netsim) must agree for these
// numbers to match exactly.
func TestParallelMeasureMatchesSequential(t *testing.T) {
	n := [3]int{16, 16, 16}
	cases := []struct {
		name string
		opts Options
	}{
		{"alltoallv", Options{Backend: BackendAlltoallv}},
		{"osc", Options{Backend: BackendOSC}},
		{"compressed-32", Options{Backend: BackendCompressed, Method: compress.Cast32{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := netsim.Summit(1)
			seq := Measure[complex128](cfg, n, tc.opts, 1, true)
			cfg.Parallel = true
			par := Measure[complex128](cfg, n, tc.opts, 1, true)
			if seq.ForwardTime != par.ForwardTime || seq.Gflops != par.Gflops {
				t.Errorf("times differ: seq %v/%v par %v/%v",
					seq.ForwardTime, seq.Gflops, par.ForwardTime, par.Gflops)
			}
			if seq.RelErr != par.RelErr && !(math.IsNaN(seq.RelErr) && math.IsNaN(par.RelErr)) {
				t.Errorf("RelErr differs: seq %v par %v", seq.RelErr, par.RelErr)
			}
			if seq.Stats != par.Stats {
				t.Errorf("Stats differ:\nseq %+v\npar %+v", seq.Stats, par.Stats)
			}
			if !reflect.DeepEqual(seq.Profile, par.Profile) {
				t.Errorf("profiles differ:\nseq %+v\npar %+v", seq.Profile, par.Profile)
			}
		})
	}
}

package core

import (
	"repro/internal/fft"
	"repro/internal/grid"
)

// FieldValue returns a deterministic pseudo-random complex value for a
// global grid coordinate, uniform in [-1,1)². Because the value depends
// only on (seed, i, j, k), any decomposition of the same global field
// agrees point-wise — distributed results can be cross-checked against
// serial transforms and across rank counts.
func FieldValue(seed uint64, i, j, k int) complex128 {
	h := splitmix(seed ^ mix(uint64(i), uint64(j), uint64(k)))
	re := unit(h)
	im := unit(splitmix(h))
	return complex(re, im)
}

func mix(i, j, k uint64) uint64 {
	return i*0x9e3779b97f4a7c15 ^ j*0xbf58476d1ce4e5b9 ^ k*0x94d049bb133111eb
}

// splitmix is the SplitMix64 finalizer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// unit maps 64 random bits to [-1, 1).
func unit(h uint64) float64 {
	return float64(int64(h))/9.223372036854776e18 + 0.5/9.223372036854776e18
}

// FillBox fills dst (the storage of box b in layout o) with the
// deterministic field.
func FillBox[C fft.Complex](dst []C, b grid.Box, o grid.Order, seed uint64) {
	for i := b.Lo[0]; i < b.Hi[0]; i++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for k := b.Lo[2]; k < b.Hi[2]; k++ {
				v := FieldValue(seed, i, j, k)
				dst[indexOf(b, o, i, j, k)] = cmplxFrom[C](v)
			}
		}
	}
}

func cmplxFrom[C fft.Complex](v complex128) C {
	var z C
	if _, ok := any(z).(complex64); ok {
		return C(complex64(v))
	}
	return C(v)
}

// indexOf is a shorthand over grid.Order.Index.
func indexOf(b grid.Box, o grid.Order, i, j, k int) int {
	return o.Index(b, [3]int{i, j, k})
}

package core

import (
	"strconv"

	"repro/internal/obs/errtrack"
)

// StageBounds returns the theoretical per-stage error budgets of a
// plan's reshape pipeline, in execution order: one entry per reshape
// (fwd0..3, or fwd0..1 with PencilIO; bwd labels when inverse), each
// carrying the compression method's error bound — zero for lossless
// backends. Feeding the list to errtrack.BuildLedger pins the
// theoretical side of the error-accumulation ledger to the plan instead
// of to whatever bounds the event stream happened to record.
func StageBounds(opts Options, inverse bool) []errtrack.StageBudget {
	o := opts.withDefaults()
	bound := 0.0
	if o.Backend == BackendCompressed || o.Backend == BackendCompressedTwoSided {
		bound = o.Method.ErrorBound()
	}
	stages := 4
	if o.PencilIO {
		stages = 2
	}
	prefix := "fwd"
	if inverse {
		prefix = "bwd"
	}
	out := make([]errtrack.StageBudget, stages)
	for i := range out {
		label := prefix + strconv.Itoa(i)
		b := bound
		// A tune plan overrides the stage's backend, and with it the
		// stage's theoretical bound: the chosen method's for compressed
		// winners, zero for lossless ones.
		if o.Tune != nil {
			if ch, ok := o.Tune.Choice(label); ok {
				b = 0
				if (ch.Backend == BackendCompressed || ch.Backend == BackendCompressedTwoSided) && ch.Method != nil {
					b = ch.Method.ErrorBound()
				}
			}
		}
		out[i] = errtrack.StageBudget{Label: label, Bound: b}
	}
	return out
}

package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/compress"
	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/gpu"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	recov "repro/internal/recover"
)

// Plan is a distributed 3-D FFT plan over all ranks of a communicator.
// C selects the pipeline precision: complex128 for FP64 (required by
// BackendCompressed) or complex64 for the genuine FP32 reference.
// A plan owns cached windows and staging buffers; construct once and
// reuse. Plans are collective: all ranks must construct with identical
// arguments.
type Plan[C fft.Complex] struct {
	c      *mpi.Comm
	n      [3]int
	opts   Options
	stream *gpu.Stream

	boxes  [5][]grid.Box // in, x-pencils, y-pencils, z-pencils, out
	orders [5]grid.Order
	// simBoxes mirror boxes for the SimScale-enlarged grid; the time
	// plane draws message sizes and kernel volumes from these while the
	// data plane uses boxes.
	simBoxes [5][]grid.Box

	fwd [4]*reshape[C]
	bwd [4]*reshape[C]

	fftPlans [3]*fft.Plan[C]
	batch    [3]int
	precBits int
	// epoch counts completed reshape steps across the plan's lifetime —
	// the granularity of the crash-recovery checkpoints (Options.Recovery).
	epoch int
	// pencilScratch holds the PencilIO first-stage working copy.
	pencilScratch []C
	profile       Profile
}

// Profile breaks one transform's virtual time into phases — the
// communication share it exposes is the paper's motivating observation
// (§I: at scale, more than 95% of the runtime is the all-to-all).
type Profile struct {
	Pack     float64 // packing/reordering kernels
	Exchange float64 // all-to-all, including in-transfer (de)compression
	Unpack   float64 // unpacking kernels
	FFT      float64 // 1-D FFT kernels
	Scale    float64 // inverse normalization
}

// Total returns the profiled wall (virtual) time.
func (p Profile) Total() float64 {
	return p.Pack + p.Exchange + p.Unpack + p.FFT + p.Scale
}

// CommFraction returns the share of time spent in the exchanges.
func (p Profile) CommFraction() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return p.Exchange / t
}

// LastProfile returns the phase breakdown of the most recent Forward or
// Backward call on this rank.
func (pl *Plan[C]) LastProfile() Profile { return pl.profile }

// NewPlan collectively builds a plan for an n[0]×n[1]×n[2] transform.
func NewPlan[C fft.Complex](c *mpi.Comm, n [3]int, opts Options) *Plan[C] {
	opts = opts.withDefaults()
	p := c.Size()
	pl := &Plan[C]{c: c, n: n, opts: opts}
	var zero C
	pl.precBits = 64
	if _, ok := any(zero).(complex64); ok {
		pl.precBits = 32
		if opts.Backend == BackendCompressed || opts.Backend == BackendCompressedTwoSided {
			panic("core: compressed backends require the FP64 pipeline")
		}
	}
	pl.stream = gpu.NewStream(opts.Device, c)
	pl.stream.SetObserver(c.Obs())

	pl.boxes[0] = grid.Bricks(n, grid.Factor3(p))
	pl.boxes[1] = grid.Pencils(n, 0, p)
	pl.boxes[2] = grid.Pencils(n, 1, p)
	pl.boxes[3] = grid.Pencils(n, 2, p)
	pl.boxes[4] = pl.boxes[0]
	ns := [3]int{opts.SimScale * n[0], opts.SimScale * n[1], opts.SimScale * n[2]}
	pl.simBoxes[0] = grid.Bricks(ns, grid.Factor3(p))
	pl.simBoxes[1] = grid.Pencils(ns, 0, p)
	pl.simBoxes[2] = grid.Pencils(ns, 1, p)
	pl.simBoxes[3] = grid.Pencils(ns, 2, p)
	pl.simBoxes[4] = pl.simBoxes[0]
	pl.orders = [5]grid.Order{grid.Natural, grid.ForAxis(0), grid.ForAxis(1), grid.ForAxis(2), grid.Natural}

	if opts.PencilIO {
		// Reduced-reshape configuration: x-pencil input, z-pencil
		// output, so only the x→y and y→z redistributions remain.
		pl.fwd[0] = newReshape[C](pl, 1, 2, "fwd0")
		pl.fwd[1] = newReshape[C](pl, 2, 3, "fwd1")
		pl.bwd[0] = newReshape[C](pl, 3, 2, "bwd0")
		pl.bwd[1] = newReshape[C](pl, 2, 1, "bwd1")
	} else {
		for s := 0; s < 4; s++ {
			pl.fwd[s] = newReshape[C](pl, s, s+1, "fwd"+strconv.Itoa(s))
		}
		for s := 0; s < 4; s++ {
			pl.bwd[s] = newReshape[C](pl, 4-s, 3-s, "bwd"+strconv.Itoa(s))
		}
	}
	me := c.Rank()
	for axis := 0; axis < 3; axis++ {
		pl.fftPlans[axis] = fft.NewPlan[C](n[axis])
		pl.batch[axis] = pl.boxes[axis+1][me].Count() / n[axis]
	}
	if opts.PencilIO {
		pl.pencilScratch = make([]C, 0, pl.boxes[1][me].Count())
	}
	return pl
}

// InBox returns this rank's share of the input decomposition: a brick in
// the general configuration, an x-pencil with Options.PencilIO. The
// input of Forward is its data laid out with InOrder.
func (pl *Plan[C]) InBox() grid.Box {
	if pl.opts.PencilIO {
		return pl.boxes[1][pl.c.Rank()]
	}
	return pl.boxes[0][pl.c.Rank()]
}

// InOrder returns the memory layout of Forward's input (natural order in
// both configurations — an x-pencil is stride-1 in x already).
func (pl *Plan[C]) InOrder() grid.Order { return pl.orders[pl.inStage()] }

// OutBox returns this rank's share of the output decomposition: equal to
// InBox in the general four-reshape configuration, a z-pencil with
// Options.PencilIO.
func (pl *Plan[C]) OutBox() grid.Box {
	if pl.opts.PencilIO {
		return pl.boxes[3][pl.c.Rank()]
	}
	return pl.boxes[4][pl.c.Rank()]
}

// OutOrder returns the memory layout of Forward's output (z-fastest for
// the z-pencil output of the PencilIO configuration).
func (pl *Plan[C]) OutOrder() grid.Order {
	if pl.opts.PencilIO {
		return pl.orders[3]
	}
	return pl.orders[4]
}

func (pl *Plan[C]) inStage() int {
	if pl.opts.PencilIO {
		return 1
	}
	return 0
}

// N returns the global transform shape.
func (pl *Plan[C]) N() [3]int { return pl.n }

// Method returns the compression method the reshapes use (None for the
// uncompressed backends).
func (pl *Plan[C]) Method() compress.Method {
	if pl.opts.Backend == BackendCompressed || pl.opts.Backend == BackendCompressedTwoSided {
		return pl.opts.Method
	}
	return compress.None{}
}

// FlopCount returns the 5·N·log2(N) flop estimate of one transform.
func (pl *Plan[C]) FlopCount() float64 {
	return fft.FlopCount(pl.n[0] * pl.n[1] * pl.n[2])
}

// Forward computes the forward 3-D FFT of in (this rank's InBox data,
// InOrder layout; unscaled output in OutBox/OutOrder layout). in is not
// modified. The returned buffer is owned by the plan and valid until
// the next Forward/Backward call.
func (pl *Plan[C]) Forward(in []C) []C {
	if len(in) != pl.InBox().Count() {
		panic("core: Forward input length does not match InBox")
	}
	return pl.run(in, fft.Forward)
}

// Backward computes the inverse 3-D FFT (scaled by 1/(n0·n1·n2)), taking
// OutBox data and returning InBox data.
func (pl *Plan[C]) Backward(in []C) []C {
	if len(in) != pl.OutBox().Count() {
		panic("core: Backward input length does not match OutBox")
	}
	out := pl.run(in, fft.Inverse)
	scale := 1 / float64(pl.n[0]*pl.n[1]*pl.n[2])
	s := complexAs[C](scale)
	simCount := pl.simBoxes[pl.inStage()][pl.c.Rank()].Count()
	rk := pl.c.Obs()
	t0 := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhaseScale, t0)
	pl.stream.LaunchTagged(obs.PhaseScale, pl.opts.Device.CopyCost(simCount*pl.elemSize()), func() {
		for i := range out {
			out[i] *= s
		}
	})
	pl.stream.Synchronize()
	pl.profile.Scale += pl.c.Now() - t0
	rk.End(pl.c.Now(), 0)
	return out
}

func (pl *Plan[C]) run(in []C, sign int) []C {
	pl.profile = Profile{}
	if pl.opts.PencilIO {
		return pl.runPencil(in, sign)
	}
	data := in
	if sign == fft.Forward {
		for axis := 0; axis < 3; axis++ {
			data = pl.step(pl.fwd[axis], data, axis, sign)
		}
		return pl.step(pl.fwd[3], data, -1, sign)
	}
	for s := 0; s < 4; s++ {
		axis := -1
		if s < 3 {
			axis = 2 - s
		}
		data = pl.step(pl.bwd[s], data, axis, sign)
	}
	return data
}

// step runs one recovery epoch of the pipeline: the reshape, the FFT
// stage that follows it (axis ≥ 0), and — when a recovery runtime is
// attached — the epoch checkpoint. On a resumed attempt, epochs the
// committed checkpoint covers are skipped entirely (no communication,
// no kernels: every rank skips the same epochs, so the collectives
// stay matched); the committed epoch itself re-materializes its output
// and healing ledgers from the snapshot instead of executing.
func (pl *Plan[C]) step(r *reshape[C], data []C, axis, sign int) []C {
	pl.epoch++
	rk := pl.opts.Recovery
	if rk == nil {
		data = r.execute(data)
		if axis >= 0 {
			pl.fftStage(data, axis, sign)
		}
		return data
	}
	if resume := rk.Resume(); pl.epoch <= resume {
		if pl.epoch < resume {
			return data // effects subsumed by the committed snapshot
		}
		if rk.Migrating() {
			return pl.migrateSnapshot(r)
		}
		snap, err := rk.Restore()
		if err != nil {
			panic(fmt.Sprintf("core: rank %d cannot restore epoch %d: %v", pl.c.Rank(), pl.epoch, err))
		}
		return pl.restoreSnapshot(r, snap)
	}
	data = r.execute(data)
	if axis >= 0 {
		pl.fftStage(data, axis, sign)
	}
	rk.Checkpoint(pl.epoch, pl.snapshot(data))
	return data
}

// ledgers returns the plan's healing-capable exchanges in a fixed,
// rank-independent order — the ledger sections of a snapshot.
func (pl *Plan[C]) ledgers() []ledgered {
	var out []ledgered
	add := func(r *reshape[C]) {
		if r == nil {
			return
		}
		if r.osc != nil {
			out = append(out, r.osc)
		}
		if r.cosc != nil {
			out = append(out, r.cosc)
		}
	}
	for _, r := range pl.fwd {
		add(r)
	}
	for _, r := range pl.bwd {
		add(r)
	}
	return out
}

// ledgered is the checkpointable part of an exchange (OSC and
// CompressedOSC implement it).
type ledgered interface {
	LedgerState() []byte
	RestoreLedger([]byte) error
}

// snapshot serializes this rank's recovery state after one completed
// epoch: the reshape's output partition followed by every exchange's
// healing ledger. The store CRC-frames the whole snapshot; this layout
// only needs lengths.
func (pl *Plan[C]) snapshot(data []C) []byte {
	body := complexToBytes(data)
	leds := pl.ledgers()
	size := 8 + len(body)
	states := make([][]byte, len(leds))
	for i, l := range leds {
		states[i] = l.LedgerState()
		size += 4 + len(states[i])
	}
	buf := make([]byte, 0, size)
	var w [4]byte
	u32 := func(v int) {
		binary.LittleEndian.PutUint32(w[:], uint32(v))
		buf = append(buf, w[:]...)
	}
	u32(len(body))
	buf = append(buf, body...)
	u32(len(states))
	for _, st := range states {
		u32(len(st))
		buf = append(buf, st...)
	}
	return buf
}

// restoreSnapshot installs a committed snapshot: the partition data
// lands in the reshape's output buffer (the same buffer execute would
// have returned) and every healing ledger rolls back to its
// checkpointed decisions.
func (pl *Plan[C]) restoreSnapshot(r *reshape[C], snap []byte) []C {
	fail := func(msg string) {
		panic(fmt.Sprintf("core: rank %d epoch %d: %s", pl.c.Rank(), pl.epoch, msg))
	}
	if len(snap) < 8 {
		fail("snapshot truncated")
	}
	n := int(binary.LittleEndian.Uint32(snap))
	pos := 4
	if n != len(r.outBuf)*pl.elemSize() || pos+n > len(snap) {
		fail(fmt.Sprintf("snapshot holds %d data bytes, reshape needs %d", n, len(r.outBuf)*pl.elemSize()))
	}
	bytesToComplex(snap[pos:pos+n], r.outBuf)
	pos += n
	leds := pl.ledgers()
	if pos+4 > len(snap) {
		fail("snapshot truncated before ledgers")
	}
	if got := int(binary.LittleEndian.Uint32(snap[pos:])); got != len(leds) {
		fail(fmt.Sprintf("snapshot holds %d ledgers, plan has %d", got, len(leds)))
	}
	pos += 4
	for _, l := range leds {
		if pos+4 > len(snap) {
			fail("snapshot truncated in ledger section")
		}
		ln := int(binary.LittleEndian.Uint32(snap[pos:]))
		pos += 4
		if pos+ln > len(snap) {
			fail("ledger overruns snapshot")
		}
		if err := l.RestoreLedger(snap[pos : pos+ln]); err != nil {
			fail(err.Error())
		}
		pos += ln
	}
	return r.outBuf
}

// snapshotSections splits a serialized snapshot into its data body and
// ledger sections without interpreting them.
func snapshotSections(snap []byte) (body []byte, leds [][]byte, err error) {
	if len(snap) < 8 {
		return nil, nil, fmt.Errorf("snapshot truncated")
	}
	n := int(binary.LittleEndian.Uint32(snap))
	pos := 4
	if n < 0 || pos+n+4 > len(snap) {
		return nil, nil, fmt.Errorf("snapshot data section overruns snapshot")
	}
	body = snap[pos : pos+n]
	pos += n
	cnt := int(binary.LittleEndian.Uint32(snap[pos:]))
	pos += 4
	for i := 0; i < cnt; i++ {
		if pos+4 > len(snap) {
			return nil, nil, fmt.Errorf("snapshot truncated in ledger section")
		}
		ln := int(binary.LittleEndian.Uint32(snap[pos:]))
		pos += 4
		if ln < 0 || pos+ln > len(snap) {
			return nil, nil, fmt.Errorf("ledger overruns snapshot")
		}
		leds = append(leds, snap[pos:pos+ln])
		pos += ln
	}
	return body, leds, nil
}

// stageBoxes returns a pipeline stage's decomposition for an arbitrary
// rank count: the layout the previous membership checkpointed under,
// rebuilt during a shrink migration (stages 0 and 4 are the brick
// input/output, stages 1..3 the axis pencils).
func (pl *Plan[C]) stageBoxes(stage, p int) []grid.Box {
	if stage == 0 || stage == 4 {
		return grid.Bricks(pl.n, grid.Factor3(p))
	}
	return grid.Pencils(pl.n, stage-1, p)
}

// migrateSnapshot re-materializes the resume epoch on a shrunken
// membership (docs/ROBUSTNESS.md): the committed snapshots were written
// by the previous, larger membership in its own decomposition, so each
// survivor fetches every old rank's snapshot that overlaps its new
// partition and re-cuts the pencil data through the overlap. Stage
// memory orders depend only on the stage axis, never on the rank
// count, so the overlap copy is exact — for lossless backends the
// migrated state is bit-identical to what a fresh run at the shrunken
// size would have committed. Healing ledgers are restored from this
// rank's own previous snapshot with the per-peer records remapped onto
// the survivor ranks.
func (pl *Plan[C]) migrateSnapshot(r *reshape[C]) []C {
	rk := pl.opts.Recovery
	fail := func(msg string) {
		panic(fmt.Sprintf("core: rank %d epoch %d migration: %s", pl.c.Rank(), pl.epoch, msg))
	}
	prevP := rk.PrevSize()
	oldBoxes := pl.stageBoxes(r.toStage, prevP)
	elem := pl.elemSize()
	var migrated int64
	var scratch, tile []C
	for old := 0; old < prevP; old++ {
		ov := grid.Intersect(oldBoxes[old], r.toBox)
		if ov.Empty() {
			continue
		}
		snap, err := rk.RestorePeer(old)
		if err != nil {
			fail(fmt.Sprintf("old rank %d: %v", old, err))
		}
		body, _, serr := snapshotSections(snap)
		if serr != nil {
			fail(fmt.Sprintf("old rank %d: %v", old, serr))
		}
		if want := oldBoxes[old].Count() * elem; len(body) != want {
			fail(fmt.Sprintf("old rank %d snapshot holds %d data bytes, its box needs %d", old, len(body), want))
		}
		if cap(scratch) < oldBoxes[old].Count() {
			scratch = make([]C, oldBoxes[old].Count())
		}
		data := scratch[:oldBoxes[old].Count()]
		bytesToComplex(body, data)
		cnt := ov.Count()
		if cap(tile) < cnt {
			tile = make([]C, cnt)
		}
		grid.Pack(data, oldBoxes[old], r.toOrder, ov, r.toOrder, tile[:cnt])
		grid.Unpack(tile[:cnt], ov, r.outBuf, r.toBox, r.toOrder)
		migrated += int64(cnt * elem)
	}
	own, err := rk.RestorePeer(rk.PrevRank())
	if err != nil {
		fail(fmt.Sprintf("own old rank %d: %v", rk.PrevRank(), err))
	}
	_, oldLeds, serr := snapshotSections(own)
	if serr != nil {
		fail(fmt.Sprintf("own old rank %d: %v", rk.PrevRank(), serr))
	}
	leds := pl.ledgers()
	if len(oldLeds) != len(leds) {
		fail(fmt.Sprintf("old snapshot holds %d ledgers, plan has %d", len(oldLeds), len(leds)))
	}
	for i, l := range leds {
		remapped, rerr := exchange.RemapLedgerState(oldLeds[i], rk.OldToNew(), pl.c.Size())
		if rerr != nil {
			fail(fmt.Sprintf("ledger %d: %v", i, rerr))
		}
		if err := l.RestoreLedger(remapped); err != nil {
			fail(fmt.Sprintf("ledger %d: %v", i, err))
		}
	}
	pl.c.Obs().Add(recov.MetricMigratedBytes, migrated)
	return r.outBuf
}

// runPencil is the two-reshape pipeline: the first FFT stage runs
// directly on the pencil-shaped input (forward) or output (inverse).
// The first stage must not modify the caller's buffer, so it transforms
// into a scratch copy.
func (pl *Plan[C]) runPencil(in []C, sign int) []C {
	if sign == fft.Forward {
		data := append(pl.pencilScratch[:0], in...)
		pl.fftStage(data, 0, sign)
		data = pl.step(pl.fwd[0], data, 1, sign) // x → y pencils
		data = pl.step(pl.fwd[1], data, 2, sign) // y → z pencils
		return data
	}
	data := append(pl.pencilScratch[:0], in...)
	pl.fftStage(data, 2, sign)
	data = pl.step(pl.bwd[0], data, 1, sign) // z → y pencils
	data = pl.step(pl.bwd[1], data, 0, sign) // y → x pencils
	return data
}

// fftStage runs the batched 1-D FFTs of one direction on the GPU
// timeline (data is pencil-resident with the transform axis stride-1).
// In scaled-volume mode the kernel cost is that of the simulated pencil
// (SimScale·n-point transforms over this rank's simulated batch).
func (pl *Plan[C]) fftStage(data []C, axis, sign int) {
	s := pl.opts.SimScale
	simLen := s * pl.n[axis]
	simBatch := pl.simBoxes[axis+1][pl.c.Rank()].Count() / simLen
	cost := pl.opts.Device.FFTCost(simLen, simBatch, pl.precBits)
	rk := pl.c.Obs()
	t0 := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhaseFFT, t0)
	pl.stream.LaunchTagged(obs.PhaseFFT, cost, func() {
		pl.fftPlans[axis].Batch(data, pl.batch[axis], sign)
	})
	pl.stream.Synchronize()
	pl.profile.FFT += pl.c.Now() - t0
	rk.End(pl.c.Now(), 0)
}

func (pl *Plan[C]) elemSize() int {
	if pl.precBits == 32 {
		return 8
	}
	return 16
}

// reshape moves data between two decompositions through the configured
// all-to-all backend.
type reshape[C fft.Complex] struct {
	pl        *Plan[C]
	plan      grid.Plan
	fromBox   grid.Box
	fromOrder grid.Order
	toBox     grid.Box
	toOrder   grid.Order
	// Simulated volumes of this rank's pack/unpack (scaled-volume mode).
	simSendTotal, simRecvTotal int
	// simLogical gives per-destination logical wire bytes.
	simLogical []int
	// logicalTotal is the sum of simLogical — the uncompressed bytes this
	// rank contributes to the wire, attributed to the exchange span.
	logicalTotal int64
	// metricTime is the precomputed histogram name for this reshape's
	// measured exchange time ("exchange/<label>/time_s"), which the bench
	// artifacts compare against the cost model's prediction. label is the
	// reshape's name (fwd0..3 / bwd0..3), stamped on telemetry events.
	metricTime string
	label      string
	// toStage identifies the output decomposition stage (index into
	// pl.boxes/orders) — the shrink migration rebuilds the same stage's
	// layout for the previous membership's rank count.
	toStage int

	// backend and method are this reshape's resolved exchange choice:
	// the fixed Options configuration, or the tune plan's winner for
	// this label (Options.Tune). Everything below keys off these, never
	// off pl.opts, so a tuned stage is constructed and executed exactly
	// like the same fixed-config stage.
	backend Backend
	method  compress.Method

	// Byte backends.
	sendBytes   [][]byte
	recvNonzero []bool
	osc         *exchange.OSC
	// Bruck: uniform padded blocks (real and logical sizes in bytes).
	bruckSend    [][]byte
	bruckBlock   int
	bruckLogical int
	// Compressed backends.
	sendVals [][]float64
	cosc     *exchange.CompressedOSC
	c2s      *exchange.TwoSidedCompressed
	// Scratch for packing into complex elements before conversion.
	packBuf []C
	outBuf  []C
}

func newReshape[C fft.Complex](pl *Plan[C], fromStage, toStage int, label string) *reshape[C] {
	from, to := pl.boxes[fromStage], pl.boxes[toStage]
	simFrom, simTo := pl.simBoxes[fromStage], pl.simBoxes[toStage]
	fromOrder, toOrder := pl.orders[fromStage], pl.orders[toStage]
	me := pl.c.Rank()
	r := &reshape[C]{
		pl:         pl,
		plan:       grid.NewPlan(me, from, to),
		fromBox:    from[me],
		fromOrder:  fromOrder,
		toBox:      to[me],
		toOrder:    toOrder,
		metricTime: "exchange/" + label + "/time_s",
		label:      label,
		toStage:    toStage,
	}
	p := pl.c.Size()
	elem := pl.elemSize()
	overlap := func(dst, src int) int { return grid.Intersect(from[src], to[dst]).Count() }
	simOverlap := func(dst, src int) int { return grid.Intersect(simFrom[src], simTo[dst]).Count() }
	simPlan := grid.NewPlan(me, simFrom, simTo)
	r.simSendTotal, r.simRecvTotal = simPlan.SendTotal, simPlan.RecvTotal
	r.simLogical = make([]int, p)
	for _, t := range simPlan.Send {
		r.simLogical[t.Rank] = elem * t.Count
		r.logicalTotal += int64(elem * t.Count)
	}

	maxPack := 0
	for _, t := range r.plan.Send {
		if t.Count > maxPack {
			maxPack = t.Count
		}
	}
	for _, t := range r.plan.Recv {
		if t.Count > maxPack {
			maxPack = t.Count
		}
	}
	r.packBuf = make([]C, maxPack)
	r.outBuf = make([]C, r.toBox.Count())

	// Resolve this reshape's exchange choice: the fixed Options, unless
	// an attached tune plan covers the label. Every field below keys off
	// the choice, so a tuned stage is bit-identical to the same stage
	// under fixed Options.
	choice := ExchangeChoice{Backend: pl.opts.Backend, Chunks: pl.opts.Chunks, Method: pl.opts.Method}
	if pl.opts.Tune != nil {
		if ch, ok := pl.opts.Tune.Choice(label); ok {
			choice = ch
			if choice.Chunks == 0 {
				choice.Chunks = pl.opts.Chunks
			}
		}
	}
	r.backend = choice.Backend
	r.method = choice.Method
	if choice.Backend == BackendCompressed || choice.Backend == BackendCompressedTwoSided {
		if choice.Method == nil {
			panic("core: compressed exchange choice for " + label + " has no method")
		}
		if pl.precBits == 32 {
			panic("core: compressed backends require the FP64 pipeline")
		}
	}

	switch choice.Backend {
	case BackendAlltoallv:
		r.sendBytes = make([][]byte, p)
		r.recvNonzero = make([]bool, p)
		for _, t := range r.plan.Recv {
			r.recvNonzero[t.Rank] = true
		}
	case BackendOSC:
		r.sendBytes = make([][]byte, p)
		r.osc = exchange.NewOSC(pl.c, func(dst, src int) int { return elem * overlap(dst, src) }, true)
		if pl.opts.SimScale > 1 {
			r.osc.Logical = func(dst, src int) int { return elem * simOverlap(dst, src) }
		}
	case BackendBruck:
		r.sendBytes = make([][]byte, p)
		// Bruck requires uniform blocks: pad every pairwise payload to
		// the global maximum overlap. The maximum is reduced
		// collectively (every pair appears in its source's send list, so
		// the send-side maximum covers all pairs), which keeps the block
		// size — and hence every round's message sizes — identical on
		// all ranks.
		maxCnt := 0
		for _, t := range r.plan.Send {
			if t.Count > maxCnt {
				maxCnt = t.Count
			}
		}
		maxCnt = int(pl.c.AllreduceFloat64("max", float64(maxCnt)))
		r.bruckBlock = elem * maxCnt
		r.bruckLogical = r.bruckBlock
		if pl.opts.SimScale > 1 {
			simMax := 0
			for _, t := range simPlan.Send {
				if t.Count > simMax {
					simMax = t.Count
				}
			}
			simMax = int(pl.c.AllreduceFloat64("max", float64(simMax)))
			r.bruckLogical = elem * simMax
		}
		r.bruckSend = make([][]byte, p)
		for d := range r.bruckSend {
			r.bruckSend[d] = make([]byte, r.bruckBlock)
		}
	case BackendCompressed:
		r.sendVals = make([][]float64, p)
		// Scale the pipeline depth to the payload: one chunk per 256 KB
		// of send data (capped at the configured depth) so that tiny
		// exchanges do not pay per-kernel overhead for overlap they
		// cannot use.
		chunks := r.simSendTotal * elem / (256 << 10)
		if chunks < 1 {
			chunks = 1
		}
		if chunks > choice.Chunks {
			chunks = choice.Chunks
		}
		r.cosc = exchange.NewCompressedOSC(pl.c, choice.Method, pl.stream, chunks,
			func(dst, src int) int { return 2 * overlap(dst, src) })
		r.cosc.SetLabel(label)
		r.cosc.Pipelined = !pl.opts.DisablePipeline
		if pl.opts.SimScale > 1 {
			r.cosc.SimCounts = func(dst, src int) int { return 2 * simOverlap(dst, src) }
		}
	case BackendCompressedTwoSided:
		r.sendVals = make([][]float64, p)
		r.c2s = exchange.NewTwoSidedCompressed(pl.c, choice.Method, pl.stream,
			func(dst, src int) int { return 2 * overlap(dst, src) })
		r.c2s.SetLabel(label)
		if pl.opts.SimScale > 1 {
			r.c2s.SimCounts = func(dst, src int) int { return 2 * simOverlap(dst, src) }
		}
	}
	return r
}

// execute performs the reshape: pack (GPU), exchange (backend), unpack
// (GPU). The returned buffer is owned by the reshape and valid until its
// next execution.
func (r *reshape[C]) execute(local []C) []C {
	pl := r.pl
	dev := pl.opts.Device
	me := pl.c.Rank()
	rk := pl.c.Obs()
	tPack := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhasePack, tPack)

	// Pack every destination's overlap, reordered to the target layout.
	switch r.backend {
	case BackendCompressed, BackendCompressedTwoSided:
		for i := range r.sendVals {
			r.sendVals[i] = nil
		}
		pl.stream.LaunchTagged(obs.PhasePack, dev.CopyCost(r.simSendTotal*pl.elemSize()), func() {
			for _, t := range r.plan.Send {
				buf := make([]float64, 2*t.Count)
				grid.Pack(local, r.fromBox, r.fromOrder, t.Sub, r.toOrder, r.packBuf[:t.Count])
				complexToFloats(r.packBuf[:t.Count], buf)
				r.sendVals[t.Rank] = buf
			}
		})
		// Fill empty destinations with zero-length slices (plan demands
		// exact counts).
		for d := range r.sendVals {
			if r.sendVals[d] == nil {
				r.sendVals[d] = []float64{}
			}
		}
	default:
		for i := range r.sendBytes {
			r.sendBytes[i] = nil
		}
		pl.stream.LaunchTagged(obs.PhasePack, dev.CopyCost(r.simSendTotal*pl.elemSize()), func() {
			for _, t := range r.plan.Send {
				grid.Pack(local, r.fromBox, r.fromOrder, t.Sub, r.toOrder, r.packBuf[:t.Count])
				r.sendBytes[t.Rank] = complexToBytes(r.packBuf[:t.Count])
			}
		})
		for d := range r.sendBytes {
			if r.sendBytes[d] == nil {
				r.sendBytes[d] = []byte{}
			}
		}
	}
	pl.stream.Synchronize()
	tExchange := pl.c.Now()
	pl.profile.Pack += tExchange - tPack
	rk.End(tExchange, int64(r.simSendTotal*pl.elemSize()))
	rk.Begin(obs.TrackHost, obs.PhaseExchange, tExchange)

	// Exchange.
	var recvBytes [][]byte
	var recvVals [][]float64
	switch r.backend {
	case BackendAlltoallv:
		var logical []int
		if pl.opts.SimScale > 1 {
			logical = r.simLogical
		}
		recvBytes = pl.c.AlltoallvSparse(r.sendBytes, r.recvNonzero, logical)
	case BackendOSC:
		recvBytes = r.osc.Exchange(r.sendBytes)
	case BackendBruck:
		if r.bruckBlock > 0 {
			// Pad every pairwise payload into its uniform block (bytes
			// past the overlap travel but are never unpacked).
			for d := range r.bruckSend {
				copy(r.bruckSend[d], r.sendBytes[d])
			}
			recvBytes = exchange.BruckAlltoallLogical(pl.c, r.bruckSend, r.bruckBlock, r.bruckLogical)
		} else {
			recvBytes = r.bruckSend
		}
	case BackendCompressed:
		recvVals = r.cosc.Exchange(r.sendVals)
	case BackendCompressedTwoSided:
		recvVals = r.c2s.Exchange(r.sendVals)
	}

	tUnpack := pl.c.Now()
	pl.profile.Exchange += tUnpack - tExchange
	rk.End(tUnpack, r.logicalTotal)
	rk.Observe(r.metricTime, tUnpack-tExchange)
	rk.Emit(obs.Event{
		T: tUnpack, Kind: obs.EventExchange, Label: r.label, Peer: -1,
		Value: tUnpack - tExchange,
	})
	rk.Begin(obs.TrackHost, obs.PhaseUnpack, tUnpack)

	// Unpack into the target layout.
	pl.stream.LaunchTagged(obs.PhaseUnpack, dev.CopyCost(r.simRecvTotal*pl.elemSize()), func() {
		for _, t := range r.plan.Recv {
			switch r.backend {
			case BackendCompressed, BackendCompressedTwoSided:
				floatsToComplex(recvVals[t.Rank], r.packBuf[:t.Count])
			default:
				bytesToComplex(recvBytes[t.Rank], r.packBuf[:t.Count])
			}
			grid.Unpack(r.packBuf[:t.Count], t.Sub, r.outBuf, r.toBox, r.toOrder)
		}
	})
	pl.stream.Synchronize()
	pl.profile.Unpack += pl.c.Now() - tUnpack
	rk.End(pl.c.Now(), int64(r.simRecvTotal*pl.elemSize()))
	_ = me
	return r.outBuf
}

// complexAs builds a C from a real scalar.
func complexAs[C fft.Complex](re float64) C {
	var z C
	if _, ok := any(z).(complex64); ok {
		return C(complex(float32(re), 0))
	}
	return C(complex(re, 0))
}

// complexToFloats flattens complex values into interleaved re/im float64s.
func complexToFloats[C fft.Complex](src []C, dst []float64) {
	switch s := any(src).(type) {
	case []complex64:
		for i, v := range s {
			dst[2*i] = float64(real(v))
			dst[2*i+1] = float64(imag(v))
		}
	case []complex128:
		for i, v := range s {
			dst[2*i] = real(v)
			dst[2*i+1] = imag(v)
		}
	}
}

// floatsToComplex is the inverse of complexToFloats.
func floatsToComplex[C fft.Complex](src []float64, dst []C) {
	switch d := any(dst).(type) {
	case []complex64:
		for i := range d {
			d[i] = complex(float32(src[2*i]), float32(src[2*i+1]))
		}
	case []complex128:
		for i := range d {
			d[i] = complex(src[2*i], src[2*i+1])
		}
	}
}

// complexToBytes serializes complex values little-endian (8 bytes per
// complex64 element, 16 per complex128).
func complexToBytes[C fft.Complex](src []C) []byte {
	switch s := any(src).(type) {
	case []complex64:
		out := make([]byte, 8*len(s))
		for i, v := range s {
			binary.LittleEndian.PutUint32(out[8*i:], math.Float32bits(real(v)))
			binary.LittleEndian.PutUint32(out[8*i+4:], math.Float32bits(imag(v)))
		}
		return out
	case []complex128:
		out := make([]byte, 16*len(s))
		for i, v := range s {
			binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(v)))
		}
		return out
	}
	panic("core: unsupported complex type")
}

// bytesToComplex deserializes complexToBytes output.
func bytesToComplex[C fft.Complex](b []byte, dst []C) {
	switch d := any(dst).(type) {
	case []complex64:
		for i := range d {
			re := math.Float32frombits(binary.LittleEndian.Uint32(b[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(b[8*i+4:]))
			d[i] = complex(re, im)
		}
	case []complex128:
		for i := range d {
			re := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
			d[i] = complex(re, im)
		}
	}
}

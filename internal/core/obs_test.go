package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/obs"
)

// TestObservedPhaseBreakdown is the acceptance check of the tracing
// layer: a compressed run records all five pipeline phases on every
// rank, their per-rank sum tiles the wall time to within 5%, and the
// achieved-compression counters are populated per reshape.
func TestObservedPhaseBreakdown(t *testing.T) {
	rec := obs.New(obs.Options{Trace: true, Metrics: true})
	opts := Options{Backend: BackendCompressed, Method: compress.Cast32{}}
	res := MeasureWith[complex128](rec, machine(12), [3]int{16, 16, 16}, opts, 1, false)
	if res.ForwardTime <= 0 {
		t.Fatalf("forward time = %v", res.ForwardTime)
	}

	b := rec.PhaseBreakdown()
	if b.Ranks != 12 {
		t.Fatalf("breakdown ranks = %d, want 12", b.Ranks)
	}
	seen := map[obs.Phase]bool{}
	for _, p := range b.Phases {
		seen[p.Phase] = true
	}
	for _, ph := range []obs.Phase{obs.PhasePack, obs.PhaseExchange, obs.PhaseUnpack, obs.PhaseFFT} {
		if !seen[ph] {
			t.Errorf("phase %v missing from breakdown", ph)
		}
	}
	if c := b.Coverage(); math.Abs(c-1) > 0.05 {
		t.Errorf("phase sum covers %.1f%% of wall, want within 5%%", 100*c)
	}

	// Each of the eight reshapes (fwd0..3 + warmup repeats the labels)
	// reports raw vs wire bytes at the FP64→FP32 rate.
	stats := rec.Metrics().CompressionStats()
	if len(stats) == 0 {
		t.Fatal("no compression stats recorded")
	}
	labels := map[string]bool{}
	for _, s := range stats {
		labels[s.Label] = true
		if r := s.Ratio(); r < 1.8 || r > 2.2 {
			t.Errorf("%s achieved ratio = %.2f, want ~2.0 for FP64->FP32", s.Label, r)
		}
		if s.ErrorBound <= 0 {
			t.Errorf("%s error bound = %v, want > 0", s.Label, s.ErrorBound)
		}
	}
	for _, want := range []string{"fwd0", "fwd1", "fwd2", "fwd3"} {
		if !labels[want] {
			t.Errorf("missing compression stats for reshape %q (have %v)", want, labels)
		}
	}

	// Every rank carries GPU-track kernel spans too.
	for _, id := range rec.RankIDs() {
		gpuSpans := 0
		for _, s := range rec.RankSpans(id) {
			if s.Track == obs.TrackGPU {
				gpuSpans++
			}
		}
		if gpuSpans == 0 {
			t.Errorf("rank %d recorded no GPU spans", id)
		}
	}

	// The full export is valid JSON.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
}

// TestRecordingDoesNotPerturbTiming is the virtual-time invariance
// contract: measured results must be identical with and without a
// recorder attached.
func TestRecordingDoesNotPerturbTiming(t *testing.T) {
	opts := Options{Backend: BackendCompressed, Method: compress.Cast16{}}
	n := [3]int{16, 16, 16}
	plain := Measure[complex128](machine(12), n, opts, 1, false)
	rec := obs.New(obs.Options{Trace: true, Metrics: true})
	traced := MeasureWith[complex128](rec, machine(12), n, opts, 1, false)
	if plain.ForwardTime != traced.ForwardTime {
		t.Errorf("recording changed timing: %v vs %v", plain.ForwardTime, traced.ForwardTime)
	}
	if plain.Stats != traced.Stats {
		t.Errorf("recording changed stats: %+v vs %+v", plain.Stats, traced.Stats)
	}
}

package core

import (
	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// PlanR2C is the real-to-complex distributed 3-D FFT (heFFTe's
// fft3d_r2c): real input bricks are reshaped to x-pencils, transformed
// with half-length real FFTs into the non-redundant half spectrum
// (n0/2+1 bins), and the remaining stages run the complex pipeline on
// the reduced grid. Real input halves both the first reshape's volume
// and the first transform stage's work; all reshape backends (including
// the compressed one-sided exchange) apply.
//
// Output is left as z-pencils of the reduced grid in OutOrder layout
// (the reduced-reshape configuration); Backward accepts the same.
type PlanR2C[C fft.Complex] struct {
	c    *mpi.Comm
	opts Options
	n    [3]int // real grid
	nr   [3]int // reduced spectrum grid {n0/2+1, n1, n2}

	inner *Plan[C] // complex pipeline over nr (PencilIO configuration)

	// Real reshape: bricks of n → x-pencils of n, carrying float64s.
	realFrom, realTo []grid.Box
	rplan            grid.Plan
	simLogical       []int
	simSend, simRecv int
	recvNonzero      []bool
	sendBytes        [][]byte
	sendVals         [][]float64
	realOSC          *exchange.OSC
	realCOSC         *exchange.CompressedOSC
	packBuf          []float64
	pencil           []float64 // x-pencil real data
	spec             []C       // r2c output (x̃-pencil of nr)
	realOut          []float64 // backward result (brick of n)

	r2c    *fft.PlanR2C[C]
	xbatch int
}

// NewPlanR2C collectively builds a real-transform plan for an even
// n[0]×n[1]×n[2] grid.
func NewPlanR2C[C fft.Complex](c *mpi.Comm, n [3]int, opts Options) *PlanR2C[C] {
	if n[0]%2 != 0 {
		panic("core: r2c requires an even first dimension")
	}
	opts = opts.withDefaults()
	if opts.PencilIO {
		panic("core: PlanR2C implies pencil output; do not set PencilIO")
	}
	p := c.Size()
	me := c.Rank()
	nr := [3]int{n[0]/2 + 1, n[1], n[2]}

	innerOpts := opts
	innerOpts.PencilIO = true
	pl := &PlanR2C[C]{
		c:    c,
		opts: opts,
		n:    n,
		nr:   nr,
		// The inner plan owns the complex reshapes, FFT stages, stream,
		// and window caches over the reduced grid.
		inner: NewPlan[C](c, nr, innerOpts),
	}

	pl.realFrom = grid.Bricks(n, grid.Factor3(p))
	pl.realTo = grid.Pencils(n, 0, p)
	pl.rplan = grid.NewPlan(me, pl.realFrom, pl.realTo)
	overlap := func(dst, src int) int { return grid.Intersect(pl.realFrom[src], pl.realTo[dst]).Count() }

	s := opts.SimScale
	ns := [3]int{s * n[0], s * n[1], s * n[2]}
	simFrom := grid.Bricks(ns, grid.Factor3(p))
	simTo := grid.Pencils(ns, 0, p)
	simPlan := grid.NewPlan(me, simFrom, simTo)
	simOverlap := func(dst, src int) int { return grid.Intersect(simFrom[src], simTo[dst]).Count() }
	pl.simSend, pl.simRecv = simPlan.SendTotal, simPlan.RecvTotal

	elem := pl.realElem()
	pl.simLogical = make([]int, p)
	for _, t := range simPlan.Send {
		pl.simLogical[t.Rank] = elem * t.Count
	}

	maxPack := 0
	for _, t := range pl.rplan.Send {
		if t.Count > maxPack {
			maxPack = t.Count
		}
	}
	for _, t := range pl.rplan.Recv {
		if t.Count > maxPack {
			maxPack = t.Count
		}
	}
	pl.packBuf = make([]float64, maxPack)
	pl.pencil = make([]float64, pl.realTo[me].Count())
	pl.realOut = make([]float64, pl.realFrom[me].Count())

	switch opts.Backend {
	case BackendAlltoallv, BackendCompressedTwoSided:
		pl.sendBytes = make([][]byte, p)
		pl.recvNonzero = make([]bool, p)
		for _, t := range pl.rplan.Recv {
			pl.recvNonzero[t.Rank] = true
		}
	case BackendOSC:
		pl.sendBytes = make([][]byte, p)
		pl.realOSC = exchange.NewOSC(c, func(dst, src int) int { return elem * overlap(dst, src) }, true)
		if s > 1 {
			pl.realOSC.Logical = func(dst, src int) int { return elem * simOverlap(dst, src) }
		}
	case BackendCompressed:
		pl.sendVals = make([][]float64, p)
		chunks := simPlan.SendTotal * elem / (256 << 10)
		if chunks < 1 {
			chunks = 1
		}
		if chunks > opts.Chunks {
			chunks = opts.Chunks
		}
		pl.realCOSC = exchange.NewCompressedOSC(c, pl.inner.opts.Method, pl.inner.stream, chunks, overlap)
		pl.realCOSC.SetLabel("r2c-real")
		pl.realCOSC.Pipelined = !opts.DisablePipeline
		if s > 1 {
			pl.realCOSC.SimCounts = simOverlap
		}
	}

	pl.r2c = fft.NewPlanR2C[C](n[0])
	pl.xbatch = pl.realTo[me].Count() / n[0]
	pl.spec = make([]C, pl.xbatch*pl.r2c.SpectrumLen())
	return pl
}

// realElem is the wire size of one real value (4 bytes in the FP32
// pipeline, 8 in FP64).
func (pl *PlanR2C[C]) realElem() int {
	var zero C
	if _, ok := any(zero).(complex64); ok {
		return 4
	}
	return 8
}

// InBox returns this rank's real input brick (natural order).
func (pl *PlanR2C[C]) InBox() grid.Box { return pl.realFrom[pl.c.Rank()] }

// OutBox returns this rank's share of the reduced spectrum grid
// (a z-pencil of {n0/2+1, n1, n2}).
func (pl *PlanR2C[C]) OutBox() grid.Box { return pl.inner.OutBox() }

// OutOrder returns the output memory layout (z fastest).
func (pl *PlanR2C[C]) OutOrder() grid.Order { return pl.inner.OutOrder() }

// N returns the real grid shape; SpectrumN the reduced grid shape.
func (pl *PlanR2C[C]) N() [3]int         { return pl.n }
func (pl *PlanR2C[C]) SpectrumN() [3]int { return pl.nr }

// Forward computes the half-spectrum 3-D DFT of this rank's real brick
// (unscaled). The result (OutBox data in OutOrder layout) is owned by
// the plan and valid until the next call.
func (pl *PlanR2C[C]) Forward(in []float64) []C {
	inner := pl.inner
	inner.profile = Profile{}
	pl.reshapeReal(in)

	// r2c along x on the GPU: half-length complex FFTs plus untangle.
	s := pl.opts.SimScale
	simBatch := pl.xbatch * s * s
	cost := inner.opts.Device.FFTCost(s*pl.n[0]/2, simBatch, inner.precBits)
	rk := pl.c.Obs()
	t0 := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhaseFFT, t0)
	inner.stream.LaunchTagged(obs.PhaseFFT, cost, func() {
		pl.r2c.ForwardBatch(pl.pencil, pl.spec, pl.xbatch)
	})
	inner.stream.Synchronize()
	inner.profile.FFT += pl.c.Now() - t0
	rk.End(pl.c.Now(), 0)

	// Remaining complex stages on the reduced grid (skip inner's axis-0
	// FFT: the r2c stage replaced it).
	data := inner.fwd[0].execute(pl.spec)
	inner.fftStage(data, 1, fft.Forward)
	data = inner.fwd[1].execute(data)
	inner.fftStage(data, 2, fft.Forward)
	return data
}

// Backward inverts Forward (scaled by 1/(n0·n1·n2)): z-pencil spectrum
// in, real brick out. spec is not modified.
func (pl *PlanR2C[C]) Backward(spec []C) []float64 {
	inner := pl.inner
	inner.profile = Profile{}
	data := append(inner.pencilScratch[:0], spec...)
	inner.fftStage(data, 2, fft.Inverse)
	data = inner.bwd[0].execute(data)
	inner.fftStage(data, 1, fft.Inverse)
	data = inner.bwd[1].execute(data)

	// c2r along x (includes the 1/n0 factor), then 1/(n1·n2).
	s := pl.opts.SimScale
	simBatch := pl.xbatch * s * s
	cost := inner.opts.Device.FFTCost(s*pl.n[0]/2, simBatch, inner.precBits)
	rk := pl.c.Obs()
	t0 := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhaseFFT, t0)
	inner.stream.LaunchTagged(obs.PhaseFFT, cost, func() {
		pl.r2c.InverseBatch(data, pl.pencil, pl.xbatch)
		scale := 1 / float64(pl.n[1]*pl.n[2])
		for i := range pl.pencil {
			pl.pencil[i] *= scale
		}
	})
	inner.stream.Synchronize()
	inner.profile.FFT += pl.c.Now() - t0
	rk.End(pl.c.Now(), 0)

	pl.reshapeRealBack()
	return pl.realOut
}

// LastProfile returns the inner pipeline's phase breakdown.
func (pl *PlanR2C[C]) LastProfile() Profile { return pl.inner.profile }

// reshapeReal moves this rank's real brick into its x-pencil (pl.pencil).
func (pl *PlanR2C[C]) reshapeReal(in []float64) {
	pl.runRealReshape(in, pl.pencil, pl.rplan, pl.realFrom, pl.realTo, false)
}

// reshapeRealBack moves the x-pencil back to the brick (pl.realOut).
func (pl *PlanR2C[C]) reshapeRealBack() {
	back := grid.NewPlan(pl.c.Rank(), pl.realTo, pl.realFrom)
	pl.runRealReshape(pl.pencil, pl.realOut, back, pl.realTo, pl.realFrom, true)
}

// runRealReshape is the float64 analogue of reshape.execute. The
// backward direction reuses the forward exchange objects' windows only
// for the two-sided backends; the one-sided backends fall back to the
// two-sided exchange for the (non-performance-critical) inverse-side
// real reshape to keep window bookkeeping simple.
func (pl *PlanR2C[C]) runRealReshape(src, dst []float64, plan grid.Plan, from, to []grid.Box, backward bool) {
	inner := pl.inner
	dev := inner.opts.Device
	me := pl.c.Rank()
	elem := pl.realElem()
	srcBox, dstBox := from[me], to[me]

	rk := pl.c.Obs()
	tPack := pl.c.Now()
	rk.Begin(obs.TrackHost, obs.PhasePack, tPack)
	// Every backend ships real bytes except the compressed one-sided
	// exchange's forward direction, which consumes float64 payloads.
	useBytes := pl.opts.Backend != BackendCompressed || backward
	packCost := dev.CopyCost(pl.simSend * elem)
	sendBytes := make([][]byte, pl.c.Size())
	sendVals := make([][]float64, pl.c.Size())
	inner.stream.LaunchTagged(obs.PhasePack, packCost, func() {
		for _, t := range plan.Send {
			buf := pl.packBuf[:t.Count]
			grid.Pack(src, srcBox, grid.Natural, t.Sub, grid.Natural, buf)
			if useBytes {
				sendBytes[t.Rank] = pl.realToBytes(buf)
			} else {
				sendVals[t.Rank] = append([]float64(nil), buf...)
			}
		}
	})
	for d := range sendBytes {
		if useBytes && sendBytes[d] == nil {
			sendBytes[d] = []byte{}
		}
		if !useBytes && sendVals[d] == nil {
			sendVals[d] = []float64{}
		}
	}
	inner.stream.Synchronize()
	tEx := pl.c.Now()
	inner.profile.Pack += tEx - tPack
	rk.End(tEx, int64(pl.simSend*elem))
	rk.Begin(obs.TrackHost, obs.PhaseExchange, tEx)

	recvNonzero := make([]bool, pl.c.Size())
	for _, t := range plan.Recv {
		recvNonzero[t.Rank] = true
	}
	var logical []int
	if pl.opts.SimScale > 1 {
		logical = pl.simLogical
		if backward {
			logical = nil // conservative: charge real sizes on the way back
		}
	}

	var recvBytes [][]byte
	var recvVals [][]float64
	switch {
	case useBytes:
		recvBytes = pl.c.AlltoallvSparse(sendBytes, recvNonzero, logical)
	case pl.opts.Backend == BackendOSC:
		recvBytes = pl.realOSC.Exchange(sendBytes)
	default: // BackendCompressed forward
		recvVals = pl.realCOSC.Exchange(sendVals)
	}
	tUn := pl.c.Now()
	inner.profile.Exchange += tUn - tEx
	rk.End(tUn, int64(pl.simSend*elem))
	rk.Begin(obs.TrackHost, obs.PhaseUnpack, tUn)

	inner.stream.LaunchTagged(obs.PhaseUnpack, dev.CopyCost(pl.simRecv*elem), func() {
		for _, t := range plan.Recv {
			var vals []float64
			if recvVals != nil {
				vals = recvVals[t.Rank]
			} else {
				vals = pl.realFromBytes(recvBytes[t.Rank], t.Count)
			}
			grid.Unpack(vals, t.Sub, dst, dstBox, grid.Natural)
		}
	})
	inner.stream.Synchronize()
	inner.profile.Unpack += pl.c.Now() - tUn
	rk.End(pl.c.Now(), int64(pl.simRecv*elem))
}

// realToBytes serializes reals at the pipeline's wire precision.
func (pl *PlanR2C[C]) realToBytes(vals []float64) []byte {
	if pl.realElem() == 4 {
		f32 := make([]float32, len(vals))
		for i, v := range vals {
			f32[i] = float32(v)
		}
		return mpi.Float32sToBytes(f32)
	}
	return mpi.Float64sToBytes(vals)
}

func (pl *PlanR2C[C]) realFromBytes(b []byte, count int) []float64 {
	if pl.realElem() == 4 {
		f32 := mpi.BytesToFloat32s(b)
		out := make([]float64, count)
		for i := range out {
			out[i] = float64(f32[i])
		}
		return out
	}
	return mpi.BytesToFloat64s(b)
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/mpi"
)

func TestEstimateConvergenceKnownRate(t *testing.T) {
	// Second-order data: e = 3·h².
	est := EstimateConvergence(0.1, 3*0.01, 0.05, 3*0.0025)
	if math.Abs(est.Rate-2) > 1e-12 {
		t.Errorf("rate = %g, want 2", est.Rate)
	}
	if math.Abs(est.Constant-3) > 1e-9 {
		t.Errorf("constant = %g, want 3", est.Constant)
	}
	if e := est.ErrorAt(0.01); math.Abs(e-3e-4) > 1e-12 {
		t.Errorf("ErrorAt(0.01) = %g", e)
	}
}

func TestEstimateConvergenceProperty(t *testing.T) {
	f := func(rateRaw, cRaw uint8) bool {
		rate := 1 + float64(rateRaw%8)
		c := 0.5 + float64(cRaw%10)
		h1, h2 := 0.2, 0.05
		est := EstimateConvergence(h1, c*math.Pow(h1, rate), h2, c*math.Pow(h2, rate))
		return math.Abs(est.Rate-rate) < 1e-9 && math.Abs(est.Constant-c) < 1e-6*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuggestToleranceBalancesErrors(t *testing.T) {
	est := ConvergenceEstimate{Rate: 4, Constant: 10}
	h := 0.05
	etol := est.SuggestTolerance(h, 0.5)
	if etol >= est.ErrorAt(h) {
		t.Error("suggested tolerance not below the discretization error")
	}
	// The method picked at that tolerance must respect it.
	m := compress.FromTolerance(etol)
	if m.ErrorBound() > etol {
		t.Errorf("method %s bound %g exceeds suggested tolerance %g", m.Name(), m.ErrorBound(), etol)
	}
}

func TestEstimatePanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { EstimateConvergence(0, 1, 1, 1) },
		func() { EstimateConvergence(1, 1, 1, 1) },
		func() { EstimateConvergence(0.1, -1, 0.05, 1) },
		func() { ConvergenceEstimate{Rate: 2, Constant: 1}.SuggestTolerance(0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestForwardLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad input length")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, [3]int{4, 4, 4}, Options{})
		pl.Forward(make([]complex128, 3)) // wrong size
	})
}

func TestBackwardLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad input length")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, [3]int{4, 4, 4}, Options{})
		pl.Backward(make([]complex128, 5))
	})
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

func TestEstimateConvergenceKnownRate(t *testing.T) {
	// Second-order data: e = 3·h².
	est := EstimateConvergence(0.1, 3*0.01, 0.05, 3*0.0025)
	if math.Abs(est.Rate-2) > 1e-12 {
		t.Errorf("rate = %g, want 2", est.Rate)
	}
	if math.Abs(est.Constant-3) > 1e-9 {
		t.Errorf("constant = %g, want 3", est.Constant)
	}
	if e := est.ErrorAt(0.01); math.Abs(e-3e-4) > 1e-12 {
		t.Errorf("ErrorAt(0.01) = %g", e)
	}
}

func TestEstimateConvergenceProperty(t *testing.T) {
	f := func(rateRaw, cRaw uint8) bool {
		rate := 1 + float64(rateRaw%8)
		c := 0.5 + float64(cRaw%10)
		h1, h2 := 0.2, 0.05
		est := EstimateConvergence(h1, c*math.Pow(h1, rate), h2, c*math.Pow(h2, rate))
		return math.Abs(est.Rate-rate) < 1e-9 && math.Abs(est.Constant-c) < 1e-6*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuggestToleranceBalancesErrors(t *testing.T) {
	est := ConvergenceEstimate{Rate: 4, Constant: 10}
	h := 0.05
	etol := est.SuggestTolerance(h, 0.5)
	if etol >= est.ErrorAt(h) {
		t.Error("suggested tolerance not below the discretization error")
	}
	// The method picked at that tolerance must respect it.
	m := compress.FromTolerance(etol)
	if m.ErrorBound() > etol {
		t.Errorf("method %s bound %g exceeds suggested tolerance %g", m.Name(), m.ErrorBound(), etol)
	}
}

func TestEstimatePanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { EstimateConvergence(0, 1, 1, 1) },
		func() { EstimateConvergence(1, 1, 1, 1) },
		func() { EstimateConvergence(0.1, -1, 0.05, 1) },
		func() { ConvergenceEstimate{Rate: 2, Constant: 1}.SuggestTolerance(0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestPredictExchangesLowerBound: the analytic exchange model books only
// serialization, protocol occupancy, injection overhead, and latency, so
// its prediction must never exceed the measured exchange time.
func TestPredictExchangesLowerBound(t *testing.T) {
	cfg := netsim.Summit(2)
	n := [3]int{16, 16, 16}
	opts := Options{Backend: BackendCompressed, Method: compress.Cast32{}}
	rec := obs.New(obs.Options{Trace: true, Metrics: true})
	MeasureWith[complex128](rec, cfg, n, opts, 1, false)
	preds := PredictExchanges(cfg, n, opts, 16)
	if len(preds) != 4 {
		t.Fatalf("got %d reshape estimates, want 4", len(preds))
	}
	for _, est := range preds {
		if est.Predicted <= 0 {
			t.Errorf("%s: predicted %g, want > 0", est.Label, est.Predicted)
		}
		h, ok := rec.Metrics().Hist("exchange/" + est.Label + "/time_s")
		if !ok {
			t.Fatalf("%s: no measured exchange time recorded", est.Label)
		}
		if measured := h.Mean(); est.Predicted > measured*(1+1e-9) {
			t.Errorf("%s: predicted %gs exceeds measured %gs — the model must stay a lower bound",
				est.Label, est.Predicted, measured)
		}
	}
}

func TestForwardLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad input length")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, [3]int{4, 4, 4}, Options{})
		pl.Forward(make([]complex128, 3)) // wrong size
	})
}

func TestBackwardLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad input length")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, [3]int{4, 4, 4}, Options{})
		pl.Backward(make([]complex128, 5))
	})
}

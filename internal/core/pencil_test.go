package core

import (
	"math/cmplx"
	"testing"

	"repro/internal/compress"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// TestPencilIOMatchesSerial validates the reduced-reshape pipeline
// against the serial transform, gathering from z-pencil output.
func TestPencilIOMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 6, 12} {
		n := [3]int{8, 12, 8}
		want := serialReference(n, 1)
		got := make([]complex128, n[0]*n[1]*n[2])
		mpi.Run(machine(ranks), func(c *mpi.Comm) {
			pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv, PencilIO: true})
			in := make([]complex128, pl.InBox().Count())
			FillBox(in, pl.InBox(), pl.InOrder(), 1)
			out := pl.Forward(in)
			b := pl.OutBox()
			o := pl.OutOrder()
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				for j := b.Lo[1]; j < b.Hi[1]; j++ {
					for k := b.Lo[2]; k < b.Hi[2]; k++ {
						got[i+n[0]*(j+n[1]*k)] = out[o.Index(b, [3]int{i, j, k})]
					}
				}
			}
		})
		if e := maxRelErr(got, want); e > 1e-12 {
			t.Errorf("ranks=%d: pencil-IO error vs serial %g", ranks, e)
		}
	}
}

func TestPencilIORoundTrip(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendCompressed, Method: compress.None{}, PencilIO: true})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 3)
		spec := append([]complex128(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		for i := range in {
			if cmplx.Abs(back[i]-in[i]) > 1e-12 {
				t.Fatalf("pencil round trip error %g at %d", cmplx.Abs(back[i]-in[i]), i)
			}
		}
	})
}

// TestPencilIOInputUntouched: Forward must not mutate the caller's input
// even though the first FFT stage has no preceding reshape.
func TestPencilIOInputUntouched(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv, PencilIO: true})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 5)
		orig := append([]complex128(nil), in...)
		pl.Forward(in)
		for i := range in {
			if in[i] != orig[i] {
				t.Fatalf("input mutated at %d", i)
			}
		}
	})
}

// TestPencilIOHalvesReshapeTraffic: with two reshapes instead of four,
// the exchanged volume drops accordingly.
func TestPencilIOHalvesReshapeTraffic(t *testing.T) {
	n := [3]int{16, 16, 16}
	cfg := machine(12)
	full := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv}, 1, false)
	pencil := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv, PencilIO: true}, 1, false)
	fullVol := full.Stats.BytesInter + full.Stats.BytesIntra + full.Stats.BytesLocal
	pencilVol := pencil.Stats.BytesInter + pencil.Stats.BytesIntra + pencil.Stats.BytesLocal
	if pencilVol >= fullVol*3/4 {
		t.Errorf("pencil IO volume %d not clearly below brick IO volume %d", pencilVol, fullVol)
	}
	if pencil.ForwardTime >= full.ForwardTime {
		t.Errorf("pencil IO %.3g not faster than brick IO %.3g", pencil.ForwardTime, full.ForwardTime)
	}
}

func TestPencilIOBoxes(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv, PencilIO: true})
		if pl.InBox().Size(0) != n[0] {
			t.Errorf("input box %v is not an x-pencil", pl.InBox())
		}
		if pl.OutBox().Size(2) != n[2] {
			t.Errorf("output box %v is not a z-pencil", pl.OutBox())
		}
		if pl.InOrder() != grid.ForAxis(0) || pl.OutOrder() != grid.ForAxis(2) {
			t.Error("pencil orders wrong")
		}
	})
}

// TestPencilIOWithCompression: the accuracy contract holds in the
// reduced-reshape configuration too (two compressed exchanges).
func TestPencilIOWithCompression(t *testing.T) {
	cfg := machine(12)
	n := [3]int{16, 16, 16}
	r := Measure[complex128](cfg, n, Options{
		Backend: BackendCompressed, Method: compress.Cast32{}, PencilIO: true,
	}, 0, true)
	if r.RelErr > 1e-6 || r.RelErr < 1e-9 {
		t.Errorf("pencil compressed round-trip error %g outside FP32-truncation band", r.RelErr)
	}
	// Fewer compressed reshapes: error should be at or below the
	// four-reshape configuration's.
	rFull := Measure[complex128](cfg, n, Options{
		Backend: BackendCompressed, Method: compress.Cast32{},
	}, 0, true)
	if r.RelErr > rFull.RelErr*1.5 {
		t.Errorf("pencil error %g above brick error %g", r.RelErr, rFull.RelErr)
	}
}

// TestPencilIOFP32Pipeline runs the FP32 pipeline in pencil mode.
func TestPencilIOFP32Pipeline(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex64](c, n, Options{Backend: BackendOSC, PencilIO: true})
		in := make([]complex64, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 7)
		spec := append([]complex64(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		for i := range in {
			if cmplx.Abs(complex128(back[i]-in[i])) > 1e-4 {
				t.Fatalf("FP32 pencil round trip error too large at %d", i)
			}
		}
	})
}

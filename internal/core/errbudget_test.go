package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/errtrack"
)

// measureTracked runs one compressed pipeline with an event log and
// error tracker attached and returns the tracker's report.
func measureTracked(t *testing.T, cfg netsim.Config, opts Options) errtrack.Report {
	t.Helper()
	rec := obs.New(obs.Options{Metrics: true})
	log := obs.NewEventLog(0)
	trk := errtrack.New()
	log.Observe(trk.Observe)
	rec.SetEventLog(log)
	res := MeasureWith[complex128](rec, cfg, [3]int{16, 16, 16}, opts, 1, false)
	if res.ForwardTime <= 0 {
		t.Fatalf("forward time = %v", res.ForwardTime)
	}
	return trk.Snapshot()
}

// TestMeasuredCompositionWithinBounds is the acceptance check of the
// error-provenance layer: across a seeded compressor sweep, the
// measured per-stage error composition must never exceed the
// theoretical bound composition prod(1+b_i)−1 from StageBounds.
func TestMeasuredCompositionWithinBounds(t *testing.T) {
	methods := []compress.Method{
		compress.Cast32{},
		compress.Cast16{},
		compress.CastBF16{},
		compress.Trim{M: 16},
	}
	for _, m := range methods {
		t.Run(m.Name(), func(t *testing.T) {
			opts := Options{Backend: BackendCompressed, Method: m}
			rep := measureTracked(t, machine(12), opts)
			if len(rep.Cells) != 1 {
				t.Fatalf("cells = %d, want 1", len(rep.Cells))
			}
			budgets := StageBounds(opts, false)
			if len(budgets) != 4 {
				t.Fatalf("StageBounds = %d stages, want 4", len(budgets))
			}
			led := errtrack.BuildLedger(rep.Cells[0], budgets)
			if len(led.Rows) != 4 {
				t.Fatalf("ledger rows = %d, want 4 (stages: %+v)", len(led.Rows), rep.Cells[0].Stages)
			}
			for _, r := range led.Rows {
				if r.Values == 0 {
					t.Errorf("stage %s measured no values", r.Label)
				}
				if !r.OK {
					t.Errorf("stage %s over budget: measured %g > bound %g", r.Label, r.Measured, r.Bound)
				}
				if r.MeasuredCum > r.BoundCum {
					t.Errorf("stage %s: composed measured %g exceeds composed bound %g",
						r.Label, r.MeasuredCum, r.BoundCum)
				}
			}
			if over := rep.OverBudget(); len(over) != 0 {
				t.Errorf("OverBudget = %v", over)
			}
		})
	}
}

// TestStageBoundsShape pins the budget lists drivers feed to the ledger.
func TestStageBoundsShape(t *testing.T) {
	opts := Options{Backend: BackendCompressed, Method: compress.Cast16{}}
	fwd := StageBounds(opts, false)
	if len(fwd) != 4 || fwd[0].Label != "fwd0" || fwd[3].Label != "fwd3" {
		t.Fatalf("forward bounds = %+v", fwd)
	}
	for _, b := range fwd {
		if b.Bound != (compress.Cast16{}).ErrorBound() {
			t.Fatalf("bound = %v", b.Bound)
		}
	}
	bwd := StageBounds(opts, true)
	if bwd[0].Label != "bwd0" {
		t.Fatalf("inverse bounds = %+v", bwd)
	}
	opts.PencilIO = true
	if got := StageBounds(opts, false); len(got) != 2 {
		t.Fatalf("pencil bounds = %+v", got)
	}
	lossless := StageBounds(Options{Backend: BackendAlltoallv}, false)
	for _, b := range lossless {
		if b.Bound != 0 {
			t.Fatalf("lossless bound = %v", b.Bound)
		}
	}
}

// TestErrtrackZeroCostWhenOff is the non-perturbation contract: runs
// with and without the error-measurement path enabled produce
// bit-identical virtual times and accuracy, under both engines. Error
// measurement is wall-clock-only bookkeeping; the moment it shifts a
// virtual timestamp, telemetry is perturbing the experiment.
func TestErrtrackZeroCostWhenOff(t *testing.T) {
	opts := Options{Backend: BackendCompressed, Method: compress.Cast16{}}
	n := [3]int{16, 16, 16}
	for _, parallel := range []bool{false, true} {
		cfg := machine(12)
		cfg.Parallel = parallel

		off := Measure[complex128](cfg, n, opts, 1, true)

		rec := obs.New(obs.Options{Metrics: true})
		log := obs.NewEventLog(0)
		trk := errtrack.New()
		log.Observe(trk.Observe)
		rec.SetEventLog(log)
		on := MeasureWith[complex128](rec, cfg, n, opts, 1, true)

		if off.ForwardTime != on.ForwardTime || off.Gflops != on.Gflops {
			t.Errorf("parallel=%v: tracked run shifted virtual time: off %v/%v on %v/%v",
				parallel, off.ForwardTime, off.Gflops, on.ForwardTime, on.Gflops)
		}
		if off.RelErr != on.RelErr && !(math.IsNaN(off.RelErr) && math.IsNaN(on.RelErr)) {
			t.Errorf("parallel=%v: RelErr differs: %v vs %v", parallel, off.RelErr, on.RelErr)
		}
		if len(trk.Snapshot().Cells) == 0 {
			t.Errorf("parallel=%v: tracked run recorded nothing", parallel)
		}
	}
}

// TestTrackerDeterministicAcrossEngines demands the snapshot itself —
// aggregates, pair matrix, ledger — be identical between the sequential
// and parallel engines, event order notwithstanding.
func TestTrackerDeterministicAcrossEngines(t *testing.T) {
	opts := Options{Backend: BackendCompressed, Method: compress.Cast32{}}
	var reports []errtrack.Report
	for _, parallel := range []bool{false, true} {
		cfg := machine(12)
		cfg.Parallel = parallel
		reports = append(reports, measureTracked(t, cfg, opts))
	}
	a, b := reports[0], reports[1]
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		sa, sb := a.Cells[i].Stages, b.Cells[i].Stages
		if len(sa) != len(sb) {
			t.Fatalf("stage counts differ: %d vs %d", len(sa), len(sb))
		}
		for j := range sa {
			x, y := sa[j], sb[j]
			// Snapshots fold sums in sorted pair/series order, so even the
			// summed fields (SumSq, RMS, Drift) must agree to the bit; the
			// whole report is a pure function of the event multiset.
			if !reflect.DeepEqual(x, y) {
				t.Errorf("stage %s diverges across engines:\nseq %+v\npar %+v", x.Label, x, y)
			}
		}
	}
	if a.Verdict() != b.Verdict() {
		t.Errorf("verdicts differ: %q vs %q", a.Verdict(), b.Verdict())
	}
}

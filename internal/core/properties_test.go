package core

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/compress"
	"repro/internal/mpi"
)

// TestDistributedParseval: ‖FFT(x)‖² = N·‖x‖² across the whole machine.
func TestDistributedParseval(t *testing.T) {
	mpi.Run(machine(12), func(c *mpi.Comm) {
		n := [3]int{16, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 21)
		var ein float64
		for _, v := range in {
			ein += real(v)*real(v) + imag(v)*imag(v)
		}
		out := pl.Forward(in)
		var eout float64
		for _, v := range out {
			eout += real(v)*real(v) + imag(v)*imag(v)
		}
		ein = c.AllreduceFloat64("sum", ein)
		eout = c.AllreduceFloat64("sum", eout)
		N := float64(n[0] * n[1] * n[2])
		if c.Rank() == 0 && math.Abs(eout-N*ein) > 1e-8*eout {
			t.Errorf("Parseval violated: %g vs %g", eout, N*ein)
		}
	})
}

// TestDistributedLinearity: FFT(a·x + y) = a·FFT(x) + FFT(y).
func TestDistributedLinearity(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendOSC})
		cnt := pl.InBox().Count()
		x := make([]complex128, cnt)
		y := make([]complex128, cnt)
		FillBox(x, pl.InBox(), pl.InOrder(), 1)
		FillBox(y, pl.InBox(), pl.InOrder(), 2)
		a := complex(0.7, -1.3)
		z := make([]complex128, cnt)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		fx := append([]complex128(nil), pl.Forward(x)...)
		fy := append([]complex128(nil), pl.Forward(y)...)
		fz := pl.Forward(z)
		for i := range fz {
			want := a*fx[i] + fy[i]
			if cmplx.Abs(fz[i]-want) > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("linearity violated at %d", i)
			}
		}
	})
}

// TestDecompositionIndependence: the same global field transformed on
// different rank counts gives identical global spectra.
func TestDecompositionIndependence(t *testing.T) {
	n := [3]int{8, 12, 8}
	a := runDistributedForward(t, 2, n, Options{Backend: BackendAlltoallv})
	b := runDistributedForward(t, 12, n, Options{Backend: BackendAlltoallv})
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-10*(1+cmplx.Abs(a[i])) {
			t.Fatalf("spectra differ between decompositions at %d", i)
		}
	}
}

// TestSimScaleDoesNotChangeNumerics: the scaled-volume mode must leave
// the computed values bit-identical (it only affects the time plane).
func TestSimScaleDoesNotChangeNumerics(t *testing.T) {
	n := [3]int{8, 8, 8}
	a := runDistributedForward(t, 6, n, Options{Backend: BackendAlltoallv})
	b := runDistributedForward(t, 6, n, Options{Backend: BackendAlltoallv, SimScale: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SimScale changed numerics at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSimScaleIncreasesTime: the simulated 8×-per-axis problem must take
// roughly volume-scaled (≫ 10×) longer on the virtual clock.
func TestSimScaleIncreasesTime(t *testing.T) {
	cfg := machine(12)
	n := [3]int{16, 16, 16}
	t1 := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv}, 1, false).ForwardTime
	t8 := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv, SimScale: 8}, 1, false).ForwardTime
	// Latency/overhead terms do not scale, so the ratio is below the
	// full 512× volume factor; it must still be a large multiple.
	if t8 < 5*t1 {
		t.Errorf("SimScale=8 time %.3g not well above base %.3g", t8, t1)
	}
}

// TestCompressedBackendsAgreeOnValues: the pipelined one-sided and the
// two-sided compressed backends apply identical compression, so their
// outputs must match exactly.
func TestCompressedBackendsAgreeOnValues(t *testing.T) {
	n := [3]int{8, 8, 8}
	a := runDistributedForward(t, 6, n, Options{Backend: BackendCompressed, Method: compress.Cast32{}})
	b := runDistributedForward(t, 6, n, Options{Backend: BackendCompressedTwoSided, Method: compress.Cast32{}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("compressed backends disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDeterministicAcrossRuns: two identical runs give bit-identical
// results and identical virtual times (the engine is deterministic).
func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := machine(12)
	n := [3]int{16, 16, 16}
	opts := Options{Backend: BackendCompressed, Method: compress.Cast16{}}
	r1 := Measure[complex128](cfg, n, opts, 1, true)
	r2 := Measure[complex128](cfg, n, opts, 1, true)
	if r1.ForwardTime != r2.ForwardTime || r1.RelErr != r2.RelErr {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

// TestTrimErrorTracksTolerance: over a sweep of trims, the measured
// error scales with the trim's unit roundoff (Fig. 2's slope).
func TestTrimErrorTracksTolerance(t *testing.T) {
	cfg := machine(6)
	n := [3]int{8, 8, 8}
	prev := 0.0
	for _, m := range []uint{40, 30, 20, 10} {
		r := Measure[complex128](cfg, n, Options{Backend: BackendCompressed, Method: compress.Trim{M: m}}, 0, true)
		if r.RelErr <= prev {
			t.Errorf("error did not grow as mantissa shrank: m=%d err=%g prev=%g", m, r.RelErr, prev)
		}
		bound := compress.Trim{M: m}.ErrorBound()
		if r.RelErr > 30*bound || r.RelErr < bound/100 {
			t.Errorf("m=%d: error %g far from trim roundoff %g", m, r.RelErr, bound)
		}
		prev = r.RelErr
	}
}

// TestPoissonSymbolScaling is a mini spectral solve validating mixed
// usage of OutBox indexing with the natural order (what the examples
// rely on).
func TestPoissonSymbolScaling(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv})
		in := make([]complex128, pl.InBox().Count())
		// Single mode: u = exp(i·(2x̂)) with x̂ the first grid axis index
		// angle; −∇²u+u has symbol 1+4.
		h := 2 * math.Pi / float64(n[0])
		b := pl.InBox()
		idx := 0
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					x := float64(i) * h
					in[idx] = complex(5*math.Cos(2*x), 5*math.Sin(2*x))
					idx++
				}
			}
		}
		spec := append([]complex128(nil), pl.Forward(in)...)
		out := pl.OutBox()
		idx = 0
		for k := out.Lo[2]; k < out.Hi[2]; k++ {
			for j := out.Lo[1]; j < out.Hi[1]; j++ {
				for i := out.Lo[0]; i < out.Hi[0]; i++ {
					kx := i
					if kx > n[0]/2 {
						kx -= n[0]
					}
					ky, kz := j, k
					if ky > n[1]/2 {
						ky -= n[1]
					}
					if kz > n[2]/2 {
						kz -= n[2]
					}
					spec[idx] /= complex(1+float64(kx*kx+ky*ky+kz*kz), 0)
					idx++
				}
			}
		}
		u := pl.Backward(spec)
		for i := range u {
			want := in[i] / 5 // (1+4)=5 symbol
			if cmplx.Abs(u[i]-want) > 1e-10 {
				t.Fatalf("spectral solve wrong at %d: %v vs %v", i, u[i], want)
			}
		}
	})
}

// Package core implements the paper's approximate distributed 3-D FFT
// (Algorithm 1) in the architecture of heFFTe: input bricks are reshaped
// to x-pencils, transformed, reshaped to y-pencils, transformed,
// reshaped to z-pencils, transformed, and reshaped back to bricks
// (Fig. 1 — the general four-reshape case). Each reshape runs through a
// pluggable all-to-all backend: the classical MPI_Alltoallv baseline,
// the one-sided OSC ring of Algorithm 3, or the compressed OSC exchange
// whose lossy compression realizes the accuracy/speed trade-off, with
// the error controlled by a user tolerance (§III).
package core

import (
	"repro/internal/compress"
	"repro/internal/gpu"
	recov "repro/internal/recover"
)

// Backend selects the all-to-all implementation used by the reshapes.
type Backend int

const (
	// BackendAlltoallv is the classical two-sided MPI_Alltoallv (the
	// solid-line references of Fig. 4).
	BackendAlltoallv Backend = iota
	// BackendOSC is the one-sided ring of Algorithm 3, uncompressed.
	BackendOSC
	// BackendCompressed is the one-sided ring with lossy compression
	// pipelined into the transfer (the paper's contribution). FP64
	// pipelines only.
	BackendCompressed
	// BackendCompressedTwoSided applies the same compression over the
	// classical two-sided all-to-all (no pipeline) — the ablation that
	// separates the compression gain from the one-sided transport gain.
	// FP64 pipelines only.
	BackendCompressedTwoSided
	// BackendBruck is the log-round aggregated Bruck algorithm. It
	// requires uniform block sizes, so the reshape pads every pairwise
	// payload to the global maximum overlap — the small-message regime
	// trade (far fewer messages for extra volume) the tuner weighs
	// against the direct algorithms.
	BackendBruck
)

func (b Backend) String() string {
	switch b {
	case BackendAlltoallv:
		return "alltoallv"
	case BackendOSC:
		return "osc"
	case BackendCompressed:
		return "osc+compression"
	case BackendCompressedTwoSided:
		return "alltoallv+compression"
	case BackendBruck:
		return "bruck"
	}
	return "unknown"
}

// ExchangeChoice is one reshape's resolved exchange configuration — the
// unit of the autotuner's decisions. Method must be non-nil for the
// compressed backends and is ignored by the lossless ones; Chunks == 0
// falls back to Options.Chunks.
type ExchangeChoice struct {
	Backend Backend
	Chunks  int
	Method  compress.Method
}

// TunePlan supplies per-reshape exchange choices to a plan (the
// consumer side of internal/tune's serialized plans; tune.Cell
// implements it). Choice is called once per reshape at plan
// construction with the reshape's label (fwd0..3 / bwd0..3, or the
// fwd0..1 / bwd0..1 pair with PencilIO) and must return identical
// results on every rank — plans are collective. Labels it does not
// cover (ok == false) keep the fixed Options configuration.
type TunePlan interface {
	Choice(label string) (ExchangeChoice, bool)
}

// Options configures a Plan.
type Options struct {
	// Backend selects the reshape all-to-all implementation.
	Backend Backend
	// Method is the compression method for BackendCompressed. If nil,
	// it is derived from Tolerance via compress.FromTolerance.
	Method compress.Method
	// Tolerance is the user error tolerance e_tol of Algorithm 1; used
	// only when Method is nil.
	Tolerance float64
	// Chunks is the §V-B pipeline depth (compression kernels per
	// exchange). 0 selects the default of 8.
	Chunks int
	// Pipelined disables the compression/communication overlap when
	// false... it defaults to true via NewPlan; set DisablePipeline to
	// turn it off for ablations.
	DisablePipeline bool
	// Device is the GPU model; the zero value selects gpu.V100().
	Device gpu.Device
	// PencilIO selects the reduced-reshape configuration the paper's
	// introduction describes: the caller provides input already shaped
	// as x-pencils (stride-1 in x) and accepts output left as z-pencils
	// (stride-1 in z), cutting the reshape count from four to two.
	PencilIO bool
	// Tune, when non-nil, overrides Backend/Method/Chunks per reshape
	// with the autotuner's selected winners (docs/TUNING.md). A reshape
	// whose label the plan covers is constructed exactly as if its choice
	// had been passed as fixed Options — virtual times and outputs are
	// bit-identical to that fixed-config run. Labels not covered keep the
	// fixed configuration above.
	Tune TunePlan
	// SimScale runs the time plane at a problem SimScale× larger per
	// dimension than the data plane: transfers, kernels, and the flop
	// metric are charged as if each axis had SimScale·n points, while
	// the real data (and hence the accuracy results) stays at n. This
	// lets the harness reproduce the paper's 1024³ performance regime
	// with laptop-sized arrays (see DESIGN.md). 0 or 1 disables scaling.
	SimScale int
	// Recovery attaches the crash-recovery runtime of this attempt (see
	// internal/recover and docs/ROBUSTNESS.md): the plan checkpoints its
	// pencil partition and healing ledgers after every completed reshape
	// and, on a resumed attempt, skips the epochs the committed
	// checkpoint already covers. nil (the default) disables epoch
	// checkpointing entirely — the plan takes the exact pre-recovery
	// code paths and its virtual times stay byte-identical.
	Recovery *recov.Rank
}

func (o Options) withDefaults() Options {
	if o.Chunks == 0 {
		o.Chunks = 8
	}
	if o.SimScale == 0 {
		o.SimScale = 1
	}
	if o.Device == (gpu.Device{}) {
		o.Device = gpu.V100()
	}
	if (o.Backend == BackendCompressed || o.Backend == BackendCompressedTwoSided) && o.Method == nil {
		o.Method = compress.FromTolerance(o.Tolerance)
	}
	return o
}

package core

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/compress"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// realField returns the deterministic real input at (i,j,k).
func realField(seed uint64, i, j, k int) float64 {
	return real(FieldValue(seed, i, j, k))
}

// serialR2CReference computes the full complex spectrum of the real
// field and returns it (natural order over the full grid).
func serialR2CReference(n [3]int, seed uint64) []complex128 {
	data := make([]complex128, n[0]*n[1]*n[2])
	for k := 0; k < n[2]; k++ {
		for j := 0; j < n[1]; j++ {
			for i := 0; i < n[0]; i++ {
				data[i+n[0]*(j+n[1]*k)] = complex(realField(seed, i, j, k), 0)
			}
		}
	}
	fft.Forward3D(data, n[0], n[1], n[2])
	return data
}

func fillRealBrick(in []float64, b grid.Box, seed uint64) {
	idx := 0
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				in[idx] = realField(seed, i, j, k)
				idx++
			}
		}
	}
}

func TestR2CDistributedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		ranks int
		n     [3]int
	}{
		{1, [3]int{8, 8, 8}},
		{6, [3]int{8, 8, 8}},
		{12, [3]int{16, 12, 8}},
	} {
		want := serialR2CReference(tc.n, 1)
		nr := [3]int{tc.n[0]/2 + 1, tc.n[1], tc.n[2]}
		got := make([]complex128, nr[0]*nr[1]*nr[2])
		mpi.Run(machine(tc.ranks), func(c *mpi.Comm) {
			pl := NewPlanR2C[complex128](c, tc.n, Options{Backend: BackendAlltoallv})
			in := make([]float64, pl.InBox().Count())
			fillRealBrick(in, pl.InBox(), 1)
			out := pl.Forward(in)
			b := pl.OutBox()
			o := pl.OutOrder()
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				for j := b.Lo[1]; j < b.Hi[1]; j++ {
					for k := b.Lo[2]; k < b.Hi[2]; k++ {
						got[i+nr[0]*(j+nr[1]*k)] = out[o.Index(b, [3]int{i, j, k})]
					}
				}
			}
		})
		var maxAbs, maxDiff float64
		for k := 0; k < nr[2]; k++ {
			for j := 0; j < nr[1]; j++ {
				for i := 0; i < nr[0]; i++ {
					ref := want[i+tc.n[0]*(j+tc.n[1]*k)]
					d := cmplx.Abs(got[i+nr[0]*(j+nr[1]*k)] - ref)
					maxDiff = math.Max(maxDiff, d)
					maxAbs = math.Max(maxAbs, cmplx.Abs(ref))
				}
			}
		}
		if maxDiff/maxAbs > 1e-12 {
			t.Errorf("ranks=%d n=%v: r2c error vs serial %g", tc.ranks, tc.n, maxDiff/maxAbs)
		}
	}
}

func TestR2CDistributedRoundTrip(t *testing.T) {
	for _, backend := range []Backend{BackendAlltoallv, BackendOSC} {
		mpi.Run(machine(6), func(c *mpi.Comm) {
			n := [3]int{8, 8, 8}
			pl := NewPlanR2C[complex128](c, n, Options{Backend: backend})
			in := make([]float64, pl.InBox().Count())
			fillRealBrick(in, pl.InBox(), 3)
			spec := append([]complex128(nil), pl.Forward(in)...)
			back := pl.Backward(spec)
			for i := range in {
				if math.Abs(back[i]-in[i]) > 1e-12 {
					t.Fatalf("backend %v: r2c round trip error %g at %d", backend, math.Abs(back[i]-in[i]), i)
				}
			}
		})
	}
}

func TestR2CCompressedRoundTrip(t *testing.T) {
	mpi.Run(machine(12), func(c *mpi.Comm) {
		n := [3]int{16, 8, 8}
		pl := NewPlanR2C[complex128](c, n, Options{Backend: BackendCompressed, Method: compress.Cast32{}})
		in := make([]float64, pl.InBox().Count())
		fillRealBrick(in, pl.InBox(), 5)
		spec := append([]complex128(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		var errSq, normSq float64
		for i := range in {
			d := back[i] - in[i]
			errSq += d * d
			normSq += in[i] * in[i]
		}
		errSq = c.AllreduceFloat64("sum", errSq)
		normSq = c.AllreduceFloat64("sum", normSq)
		rel := math.Sqrt(errSq / normSq)
		if c.Rank() == 0 && (rel > 1e-6 || rel < 1e-9) {
			t.Errorf("compressed r2c round-trip error %g outside FP32 band", rel)
		}
	})
}

func TestR2CFP32Pipeline(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlanR2C[complex64](c, n, Options{Backend: BackendAlltoallv})
		in := make([]float64, pl.InBox().Count())
		fillRealBrick(in, pl.InBox(), 7)
		spec := append([]complex64(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		for i := range in {
			if math.Abs(back[i]-in[i]) > 1e-4 {
				t.Fatalf("FP32 r2c round trip error at %d", i)
			}
		}
	})
}

// TestR2CHalvesFirstReshape: the real first reshape moves half the bytes
// of the complex transform's.
func TestR2CHalvesFirstReshape(t *testing.T) {
	n := [3]int{16, 16, 16}
	cfg := machine(12)
	var realVol, cplxVol int64
	{
		res := mpi.Run(cfg, func(c *mpi.Comm) {
			pl := NewPlanR2C[complex128](c, n, Options{Backend: BackendAlltoallv})
			in := make([]float64, pl.InBox().Count())
			pl.Forward(in)
		})
		realVol = res.Stats.BytesInter + res.Stats.BytesIntra + res.Stats.BytesLocal
	}
	{
		res := mpi.Run(cfg, func(c *mpi.Comm) {
			pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv})
			in := make([]complex128, pl.InBox().Count())
			pl.Forward(in)
		})
		cplxVol = res.Stats.BytesInter + res.Stats.BytesIntra + res.Stats.BytesLocal
	}
	// Real pipeline: ~half the spectrum and real first exchange; total
	// well under the full complex pipeline's volume.
	if realVol >= cplxVol*3/4 {
		t.Errorf("r2c volume %d not clearly below c2c volume %d", realVol, cplxVol)
	}
}

func TestR2COddFirstDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		NewPlanR2C[complex128](c, [3]int{9, 8, 8}, Options{})
	})
}

func TestR2CBoxesAndShapes(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{12, 8, 10}
		pl := NewPlanR2C[complex128](c, n, Options{Backend: BackendAlltoallv})
		if pl.SpectrumN() != [3]int{7, 8, 10} {
			t.Errorf("spectrum grid %v", pl.SpectrumN())
		}
		if pl.OutBox().Size(2) != n[2] {
			t.Errorf("output %v not a z-pencil", pl.OutBox())
		}
	})
}

// TestR2CWithSimScale: the scaled-volume mode works for the real
// transform too and leaves numerics untouched.
func TestR2CWithSimScale(t *testing.T) {
	n := [3]int{8, 8, 8}
	run := func(ss int) []complex128 {
		var flat []complex128
		mpi.Run(machine(6), func(c *mpi.Comm) {
			pl := NewPlanR2C[complex128](c, n, Options{Backend: BackendAlltoallv, SimScale: ss})
			in := make([]float64, pl.InBox().Count())
			fillRealBrick(in, pl.InBox(), 9)
			out := pl.Forward(in)
			if c.Rank() == 0 {
				flat = append(flat, out...)
			}
		})
		return flat
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatal("shape changed under SimScale")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SimScale changed r2c numerics at %d", i)
		}
	}
}

// TestR2CFasterThanC2C: the half-spectrum pipeline beats the complex one
// on the virtual clock at equal problem size.
func TestR2CFasterThanC2C(t *testing.T) {
	cfg := machine(24)
	n := [3]int{32, 32, 32}
	var tR2C, tC2C float64
	mpi.Run(cfg, func(c *mpi.Comm) {
		pl := NewPlanR2C[complex128](c, n, Options{Backend: BackendAlltoallv, SimScale: 8})
		in := make([]float64, pl.InBox().Count())
		fillRealBrick(in, pl.InBox(), 1)
		pl.Forward(in)
		c.Barrier()
		t0 := c.Now()
		pl.Forward(in)
		t1 := c.AllreduceFloat64("max", c.Now())
		if c.Rank() == 0 {
			tR2C = t1 - t0
		}
	})
	mpi.Run(cfg, func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv, SimScale: 8, PencilIO: true})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 1)
		pl.Forward(in)
		c.Barrier()
		t0 := c.Now()
		pl.Forward(in)
		t1 := c.AllreduceFloat64("max", c.Now())
		if c.Rank() == 0 {
			tC2C = t1 - t0
		}
	})
	if tR2C >= tC2C {
		t.Errorf("r2c %.3g not faster than c2c %.3g", tR2C, tC2C)
	}
}

package core

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/compress"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func machine(ranks int) netsim.Config {
	if ranks%6 == 0 {
		return netsim.Summit(ranks / 6)
	}
	cfg := netsim.Summit(ranks)
	cfg.GPUsPerNode = 1
	cfg.Nodes = ranks
	return cfg
}

// serialReference computes the forward FFT of the deterministic field.
func serialReference(n [3]int, seed uint64) []complex128 {
	full := grid.Box{Hi: n}
	data := make([]complex128, n[0]*n[1]*n[2])
	FillBox(data, full, grid.Natural, seed)
	fft.Forward3D(data, n[0], n[1], n[2])
	return data
}

// gatherOutput collects each rank's output into the global natural-order
// array on the caller side.
func runDistributedForward(t *testing.T, ranks int, n [3]int, opts Options) []complex128 {
	t.Helper()
	global := make([]complex128, n[0]*n[1]*n[2])
	mpi.Run(machine(ranks), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, n, opts)
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), grid.Natural, 1)
		out := pl.Forward(in)
		b := pl.OutBox()
		idx := 0
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					global[i+n[0]*(j+n[1]*k)] = out[indexOf(b, grid.Natural, i, j, k)]
					idx++
				}
			}
		}
	})
	return global
}

func maxRelErr(got, want []complex128) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := cmplx.Abs(want[i]); a > maxAbs {
			maxAbs = a
		}
		if d := cmplx.Abs(got[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff / maxAbs
}

func TestDistributedMatchesSerial(t *testing.T) {
	cases := []struct {
		ranks int
		n     [3]int
	}{
		{1, [3]int{8, 8, 8}},
		{2, [3]int{8, 8, 8}},
		{6, [3]int{8, 8, 8}},
		{12, [3]int{16, 8, 8}},
		{6, [3]int{8, 12, 10}}, // non-power-of-two via Bluestein
	}
	for _, tc := range cases {
		want := serialReference(tc.n, 1)
		got := runDistributedForward(t, tc.ranks, tc.n, Options{Backend: BackendAlltoallv})
		if e := maxRelErr(got, want); e > 1e-12 {
			t.Errorf("ranks=%d n=%v: distributed vs serial error %g", tc.ranks, tc.n, e)
		}
	}
}

func TestBackendsAgree(t *testing.T) {
	n := [3]int{8, 8, 8}
	want := serialReference(n, 1)
	for _, b := range []Backend{BackendOSC, BackendCompressed} {
		opts := Options{Backend: b}
		if b == BackendCompressed {
			opts.Method = compress.None{} // lossless: must be exact
		}
		got := runDistributedForward(t, 6, n, opts)
		if e := maxRelErr(got, want); e > 1e-12 {
			t.Errorf("backend %v: error vs serial %g", b, e)
		}
	}
}

func TestForwardBackwardRoundTrip(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), grid.Natural, 7)
		spec := append([]complex128(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		for i := range in {
			if cmplx.Abs(back[i]-in[i]) > 1e-12 {
				t.Fatalf("round trip error %g at %d", cmplx.Abs(back[i]-in[i]), i)
			}
		}
	})
}

func TestFP32PipelineRoundTrip(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex64](c, n, Options{Backend: BackendAlltoallv})
		in := make([]complex64, pl.InBox().Count())
		FillBox(in, pl.InBox(), grid.Natural, 7)
		spec := append([]complex64(nil), pl.Forward(in)...)
		back := pl.Backward(spec)
		for i := range in {
			if cmplx.Abs(complex128(back[i]-in[i])) > 1e-4 {
				t.Fatalf("FP32 round trip error too large at %d", i)
			}
		}
	})
}

func TestCompressedFP32PanicsOnFP32Pipeline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for compressed FP32 pipeline")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		NewPlan[complex64](c, [3]int{4, 4, 4}, Options{Backend: BackendCompressed, Method: compress.Cast32{}})
	})
}

// TestAccuracyOrdering reproduces the qualitative claim of Table II /
// Fig. 2: FP64 ≪ mixed-precision (FP64 compute, FP32 comm) ≪ FP32, with
// roughly an order of magnitude between MP and FP32.
func TestAccuracyOrdering(t *testing.T) {
	cfg := machine(12)
	n := [3]int{16, 16, 16}
	e64 := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv}, 1, true).RelErr
	e32 := Measure[complex64](cfg, n, Options{Backend: BackendAlltoallv}, 1, true).RelErr
	eMP := Measure[complex128](cfg, n, Options{Backend: BackendCompressed, Method: compress.Cast32{}}, 1, true).RelErr

	if e64 > 1e-14 {
		t.Errorf("FP64 error %g too large", e64)
	}
	if !(eMP > e64*10) {
		t.Errorf("MP error %g should be well above FP64 %g", eMP, e64)
	}
	if !(e32 > eMP*3) {
		t.Errorf("FP32 error %g should be well above MP %g", e32, eMP)
	}
	if e32 < 1e-7 || e32 > 1e-4 {
		t.Errorf("FP32 error %g outside the expected range", e32)
	}
}

func TestToleranceDrivenMethodSelection(t *testing.T) {
	mpi.Run(machine(1), func(c *mpi.Comm) {
		pl := NewPlan[complex128](c, [3]int{4, 4, 4}, Options{Backend: BackendCompressed, Tolerance: 1e-7})
		if pl.opts.Method.Name() != "FP64->FP32" {
			t.Errorf("tolerance 1e-7 selected %s", pl.opts.Method.Name())
		}
	})
}

// TestErrorWithinTolerance: the e_tol contract of Algorithm 1 — the
// round-trip error stays near the requested tolerance.
func TestErrorWithinTolerance(t *testing.T) {
	cfg := machine(6)
	n := [3]int{8, 8, 8}
	for _, etol := range []float64{1e-3, 1e-6, 1e-9} {
		r := Measure[complex128](cfg, n, Options{Backend: BackendCompressed, Tolerance: etol}, 1, true)
		// The FFT is orthogonal: output error ≈ input truncation error.
		// Allow a modest growth factor for the three compressed reshapes.
		if r.RelErr > 20*etol {
			t.Errorf("etol=%g: relative error %g exceeds budget", etol, r.RelErr)
		}
	}
}

func TestCompressionSpeedsUpCommunication(t *testing.T) {
	// Communication-dominated regime (the paper's target): enough data
	// per rank that transfer time dwarfs kernel overheads.
	cfg := machine(24)
	n := [3]int{128, 64, 64}
	t64 := Measure[complex128](cfg, n, Options{Backend: BackendOSC}, 1, false).ForwardTime
	t32 := Measure[complex128](cfg, n, Options{Backend: BackendCompressed, Method: compress.Cast32{}}, 1, false).ForwardTime
	if t32 >= t64 {
		t.Errorf("compressed %.3g not faster than uncompressed OSC %.3g", t32, t64)
	}
}

func TestMeasureReportsStats(t *testing.T) {
	r := Measure[complex128](machine(6), [3]int{8, 8, 8}, Options{Backend: BackendAlltoallv}, 1, false)
	if r.GPUs != 6 || r.ForwardTime <= 0 || r.Gflops <= 0 {
		t.Errorf("bad result: %+v", r)
	}
	if r.Stats.Messages == 0 {
		t.Error("no traffic recorded")
	}
	if !math.IsNaN(r.RelErr) && r.RelErr != 0 {
		t.Errorf("unexpected RelErr %g without wantErr", r.RelErr)
	}
}

func TestFieldValueDeterministic(t *testing.T) {
	a := FieldValue(1, 3, 4, 5)
	b := FieldValue(1, 3, 4, 5)
	if a != b {
		t.Error("FieldValue not deterministic")
	}
	if FieldValue(2, 3, 4, 5) == a {
		t.Error("seed has no effect")
	}
	if real(a) < -1 || real(a) >= 1 || imag(a) < -1 || imag(a) >= 1 {
		t.Errorf("FieldValue out of range: %v", a)
	}
}

func TestFieldValueStatistics(t *testing.T) {
	var sum, sumSq float64
	n := 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			for k := 0; k < 20; k++ {
				v := FieldValue(9, i, j, k)
				sum += real(v) + imag(v)
				sumSq += real(v)*real(v) + imag(v)*imag(v)
				n += 2
			}
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean) > 0.02 {
		t.Errorf("field mean %g too far from 0", mean)
	}
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(variance-1.0/3) > 0.02 {
		t.Errorf("field variance %g too far from 1/3", variance)
	}
}

// TestProfileBreakdown: the phase profile must account for the forward
// time and show the paper's communication dominance at scale.
func TestProfileBreakdown(t *testing.T) {
	cfg := machine(48)
	n := [3]int{32, 32, 32}
	r := Measure[complex128](cfg, n, Options{Backend: BackendAlltoallv, SimScale: 16}, 1, false)
	p := r.Profile
	if p.Total() <= 0 {
		t.Fatal("empty profile")
	}
	// Rank 0's profiled phases must roughly account for the average
	// transform time (stragglers can make either slightly larger).
	if p.Total() < 0.5*r.ForwardTime || p.Total() > 2*r.ForwardTime {
		t.Errorf("profile total %.3g inconsistent with forward time %.3g", p.Total(), r.ForwardTime)
	}
	// At 512³-equivalent volume on 48 GPUs the exchange dominates (§I).
	if p.CommFraction() < 0.5 {
		t.Errorf("communication fraction %.2f unexpectedly low", p.CommFraction())
	}
	if p.FFT <= 0 || p.Pack <= 0 || p.Unpack <= 0 {
		t.Errorf("missing phases: %+v", p)
	}
}

// TestProfileResetBetweenRuns: each Forward reports only its own phases.
func TestProfileResetBetweenRuns(t *testing.T) {
	mpi.Run(machine(6), func(c *mpi.Comm) {
		n := [3]int{8, 8, 8}
		pl := NewPlan[complex128](c, n, Options{Backend: BackendAlltoallv})
		in := make([]complex128, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 1)
		pl.Forward(in)
		first := pl.LastProfile().Total()
		pl.Forward(in)
		second := pl.LastProfile().Total()
		if second > 1.5*first {
			t.Errorf("profile accumulates across runs: %g then %g", first, second)
		}
	})
}

package core

import (
	"math"

	"repro/internal/fft"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	recov "repro/internal/recover"
)

// Result summarizes one measured configuration — a row of the paper's
// figures and tables.
type Result struct {
	GPUs int
	// ForwardTime is the virtual time of one forward 3-D FFT (seconds),
	// averaged over the measured iterations.
	ForwardTime float64
	// Gflops is the 5·N·log2(N) rate of one forward transform.
	Gflops float64
	// RelErr is the global relative L2 error ‖x − IFFT(FFT(x))‖/‖x‖
	// (Table II's metric); NaN if not measured.
	RelErr float64
	// Profile is rank 0's phase breakdown of the last timed transform.
	Profile Profile
	Stats   netsim.Stats
}

// Measure builds a plan with opts on the machine, runs iters forward
// transforms on the deterministic random field, and (when wantErr) one
// forward+inverse round trip for the accuracy metric.
func Measure[C fft.Complex](cfg netsim.Config, n [3]int, opts Options, iters int, wantErr bool) Result {
	return MeasureWith[C](nil, cfg, n, opts, iters, wantErr)
}

// MeasureWith is Measure with an observability recorder attached to the
// run: phase spans, wire events, and compression metrics land in rec.
// Recording only consumes wall-clock time, never virtual time, so the
// measured results are identical with rec nil or non-nil.
func MeasureWith[C fft.Complex](rec *obs.Recorder, cfg netsim.Config, n [3]int, opts Options, iters int, wantErr bool) Result {
	res := Result{GPUs: cfg.Ranks()}
	s := opts.SimScale
	if s == 0 {
		s = 1
	}
	flops := fft.FlopCount(s * n[0] * s * n[1] * s * n[2])
	sim := mpi.RunWith(cfg, rec, func(c *mpi.Comm) {
		pl := NewPlan[C](c, n, opts)
		in := make([]C, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 1)

		t0, t1 := 0.0, math.NaN()
		if iters > 0 {
			pl.Forward(in) // warmup
			c.Barrier()
			t0 = c.AllreduceFloat64("min", c.Now())
			for i := 0; i < iters; i++ {
				pl.Forward(in)
			}
			c.Barrier()
			t1 = c.AllreduceFloat64("max", c.Now())
		}

		var relErr float64
		if wantErr {
			spec := pl.Forward(in)
			// The reshape reuses its output buffer, so copy before the
			// inverse pipeline runs.
			specCopy := append([]C(nil), spec...)
			back := pl.Backward(specCopy)
			var errSq, normSq float64
			for i := range in {
				d := complex128(back[i]) - complex128(in[i])
				errSq += real(d)*real(d) + imag(d)*imag(d)
				v := complex128(in[i])
				normSq += real(v)*real(v) + imag(v)*imag(v)
			}
			errSq = c.AllreduceFloat64("sum", errSq)
			normSq = c.AllreduceFloat64("sum", normSq)
			relErr = math.Sqrt(errSq) / math.Sqrt(normSq)
		}
		if c.Rank() == 0 {
			res.ForwardTime = (t1 - t0) / float64(iters)
			res.RelErr = relErr
			res.Profile = pl.LastProfile()
		}
	})
	res.Gflops = flops / res.ForwardTime / 1e9
	res.Stats = sim.Stats
	return res
}

// MeasureRecoverable is MeasureWith under the crash-recovery runtime
// (docs/ROBUSTNESS.md): the plan checkpoints after every reshape, and
// on a watchdog crash verdict the controller rolls all ranks back to
// the last committed epoch, respawns the run past the crash, and
// resumes — up to the policy's restart budget. The outcome reports the
// attempts taken and the recovery timeline; err is non-nil when the
// budget is exhausted (a typed *recov.UnrecoverableError) or the run
// failed for a reason that is not a crash.
func MeasureRecoverable[C fft.Complex](rec *obs.Recorder, cfg netsim.Config, n [3]int, opts Options, iters int, wantErr bool, pol recov.Policy) (Result, recov.Outcome, error) {
	res := Result{GPUs: cfg.Ranks()}
	s := opts.SimScale
	if s == 0 {
		s = 1
	}
	flops := fft.FlopCount(s * n[0] * s * n[1] * s * n[2])
	ct := &recov.Controller{Policy: pol}
	out, err := ct.Run(cfg, rec, func(c *mpi.Comm, rk *recov.Rank) {
		o := opts
		o.Recovery = rk
		pl := NewPlan[C](c, n, o)
		in := make([]C, pl.InBox().Count())
		FillBox(in, pl.InBox(), pl.InOrder(), 1)

		t0, t1 := 0.0, math.NaN()
		if iters > 0 {
			pl.Forward(in) // warmup
			c.Barrier()
			t0 = c.AllreduceFloat64("min", c.Now())
			for i := 0; i < iters; i++ {
				pl.Forward(in)
			}
			c.Barrier()
			t1 = c.AllreduceFloat64("max", c.Now())
		}

		var relErr float64
		if wantErr {
			spec := pl.Forward(in)
			specCopy := append([]C(nil), spec...)
			back := pl.Backward(specCopy)
			var errSq, normSq float64
			for i := range in {
				d := complex128(back[i]) - complex128(in[i])
				errSq += real(d)*real(d) + imag(d)*imag(d)
				v := complex128(in[i])
				normSq += real(v)*real(v) + imag(v)*imag(v)
			}
			errSq = c.AllreduceFloat64("sum", errSq)
			normSq = c.AllreduceFloat64("sum", normSq)
			relErr = math.Sqrt(errSq) / math.Sqrt(normSq)
		}
		if c.Rank() == 0 {
			res.ForwardTime = (t1 - t0) / float64(iters)
			res.RelErr = relErr
			res.Profile = pl.LastProfile()
		}
	})
	if err != nil {
		return res, out, err
	}
	res.Gflops = flops / res.ForwardTime / 1e9
	res.Stats = out.Result.Stats
	return res, out, nil
}

package core

import (
	"math"
	"strconv"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// The a-posteriori error control of §III: when the user does not know
// the discretization error e_d of their PDE solve, it can be estimated
// from approximate solutions on nested grids (Richardson extrapolation,
// "similar to techniques used in FEM methods"), and the result passed
// as e_tol to the approximate FFT.

// ConvergenceEstimate describes an observed h^P convergence.
type ConvergenceEstimate struct {
	// Rate is the computed order P of h^P convergence.
	Rate float64
	// Constant is the leading error constant: e(h) ≈ Constant·h^Rate.
	Constant float64
}

// EstimateConvergence fits e(h) = C·h^P through two (h, error)
// observations from nested grids (h2 < h1). It panics on non-positive
// inputs.
func EstimateConvergence(h1, e1, h2, e2 float64) ConvergenceEstimate {
	if h1 <= 0 || h2 <= 0 || e1 <= 0 || e2 <= 0 || h1 == h2 {
		panic("core: convergence estimation requires positive, distinct inputs")
	}
	rate := math.Log(e1/e2) / math.Log(h1/h2)
	c := e1 / math.Pow(h1, rate)
	return ConvergenceEstimate{Rate: rate, Constant: c}
}

// ErrorAt predicts the discretization error at grid spacing h.
func (c ConvergenceEstimate) ErrorAt(h float64) float64 {
	return c.Constant * math.Pow(h, c.Rate)
}

// The analytic exchange cost model: a roofline-style prediction of each
// reshape's all-to-all time on the simulated machine, from the same box
// decompositions the plan communicates with. The analyze layer and the
// bench artifacts report measured/predicted per reshape — a delta close
// to 1 says the exchange runs at the speed the fabric allows; a large
// delta points at protocol, matching, or scheduling overheads the pure
// bandwidth/latency terms do not contain.

// ExchangeEstimate is the model's prediction for one reshape.
type ExchangeEstimate struct {
	// Label matches the reshape's metric label (fwd0..3, or fwd0..1 in
	// the PencilIO configuration).
	Label string `json:"label"`
	// Wire volumes per fabric level after nominal compression, summed
	// over all ranks (bytes).
	InterBytes int64 `json:"inter_bytes"`
	IntraBytes int64 `json:"intra_bytes"`
	LocalBytes int64 `json:"local_bytes"`
	// Bottleneck terms (seconds): the busiest NIC direction, the busiest
	// node bus, and the slowest rank's local copies, each including the
	// per-message path occupancy of the backend's protocol.
	InterTime float64 `json:"inter_time"`
	IntraTime float64 `json:"intra_time"`
	LocalTime float64 `json:"local_time"`
	// Predicted is the modeled exchange time: the slowest of the three
	// resource terms, plus per-rank injection overhead and wire latency.
	Predicted float64 `json:"predicted"`
}

// PredictExchanges runs the cost model for every forward reshape of a
// plan with the given options (elemBytes is the pipeline element size:
// 16 for complex128, 8 for complex64). The model is a lower bound by
// construction — it books only serialization, per-message protocol
// occupancy, injection overhead, and one wire latency; queueing,
// matching, fences, and pipeline stalls are what measurements add on
// top.
func PredictExchanges(cfg netsim.Config, n [3]int, opts Options, elemBytes int) []ExchangeEstimate {
	opts = opts.withDefaults()
	p := cfg.Ranks()
	s := opts.SimScale
	ns := [3]int{s * n[0], s * n[1], s * n[2]}
	var boxes [5][]grid.Box
	boxes[0] = grid.Bricks(ns, grid.Factor3(p))
	boxes[1] = grid.Pencils(ns, 0, p)
	boxes[2] = grid.Pencils(ns, 1, p)
	boxes[3] = grid.Pencils(ns, 2, p)
	boxes[4] = boxes[0]

	ratio := 1.0
	if opts.Backend == BackendCompressed || opts.Backend == BackendCompressedTwoSided {
		ratio = opts.Method.Ratio()
	}
	oneSided := opts.Backend == BackendOSC || opts.Backend == BackendCompressed

	type stagePair struct {
		from, to int
	}
	var stages []stagePair
	if opts.PencilIO {
		stages = []stagePair{{1, 2}, {2, 3}}
	} else {
		stages = []stagePair{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	}

	out := make([]ExchangeEstimate, 0, len(stages))
	for si, st := range stages {
		from, to := boxes[st.from], boxes[st.to]
		e := ExchangeEstimate{Label: "fwd" + strconv.Itoa(si)}
		egress := make([]float64, cfg.Nodes)  // seconds on each node's egress NIC
		ingress := make([]float64, cfg.Nodes) // seconds on each node's ingress NIC
		bus := make([]float64, cfg.Nodes)     // seconds on each node's bus
		maxLocal := 0.0
		maxMsgs := 0
		msgs := 0
		for src := 0; src < p; src++ {
			srcNode := cfg.NodeOf(src)
			perRank := 0
			for dst := 0; dst < p; dst++ {
				cnt := grid.Intersect(from[src], to[dst]).Count()
				if cnt == 0 {
					continue
				}
				raw := cnt * elemBytes
				wire := float64(raw) / ratio
				switch dstNode := cfg.NodeOf(dst); {
				case src == dst:
					e.LocalBytes += int64(wire)
					if t := wire / cfg.LocalBW; maxLocal < t {
						maxLocal = t
					}
				case srcNode == dstNode:
					e.IntraBytes += int64(wire)
					perMsg := cfg.ProtoOverheadIntra
					if oneSided {
						perMsg = cfg.RMAOverhead
					} else if int(wire) <= mpi.DefaultEagerThreshold {
						perMsg = 0
					}
					bus[srcNode] += wire/cfg.IntraBW + perMsg
					perRank++
				default:
					e.InterBytes += int64(wire)
					perMsg := cfg.ProtoOverheadInter
					if oneSided {
						perMsg = cfg.RMAOverhead
					} else if int(wire) <= mpi.DefaultEagerThreshold {
						perMsg = 0
					}
					t := wire/cfg.InterBW + perMsg
					egress[srcNode] += t
					ingress[dstNode] += t
					perRank++
				}
			}
			msgs += perRank
			if perRank > maxMsgs {
				maxMsgs = perRank
			}
		}
		for nd := 0; nd < cfg.Nodes; nd++ {
			if egress[nd] > e.InterTime {
				e.InterTime = egress[nd]
			}
			if ingress[nd] > e.InterTime {
				e.InterTime = ingress[nd]
			}
			if bus[nd] > e.IntraTime {
				e.IntraTime = bus[nd]
			}
		}
		e.LocalTime = maxLocal
		latency := 0.0
		switch {
		case e.InterBytes > 0:
			latency = cfg.InterLatency
		case e.IntraBytes > 0:
			latency = cfg.IntraLatency
		}
		e.Predicted = math.Max(e.InterTime, math.Max(e.IntraTime, e.LocalTime)) +
			float64(maxMsgs)*cfg.SendOverhead + latency
		out = append(out, e)
	}
	return out
}

// SuggestTolerance returns the e_tol to pass to the approximate FFT for
// a target grid spacing h: the predicted discretization error scaled by
// margin (≤ 1), so that the round-off/compression error stays below the
// discretization error and the total error bound
// ‖e_a‖ ≤ 2·max(‖e_d‖, ‖e_r‖) of §III is governed by e_d. A margin of
// 0.5 balances the two error sources as the paper prescribes.
func (c ConvergenceEstimate) SuggestTolerance(h, margin float64) float64 {
	if margin <= 0 || margin > 1 {
		panic("core: tolerance margin must be in (0, 1]")
	}
	return margin * c.ErrorAt(h)
}

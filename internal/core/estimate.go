package core

import "math"

// The a-posteriori error control of §III: when the user does not know
// the discretization error e_d of their PDE solve, it can be estimated
// from approximate solutions on nested grids (Richardson extrapolation,
// "similar to techniques used in FEM methods"), and the result passed
// as e_tol to the approximate FFT.

// ConvergenceEstimate describes an observed h^P convergence.
type ConvergenceEstimate struct {
	// Rate is the computed order P of h^P convergence.
	Rate float64
	// Constant is the leading error constant: e(h) ≈ Constant·h^Rate.
	Constant float64
}

// EstimateConvergence fits e(h) = C·h^P through two (h, error)
// observations from nested grids (h2 < h1). It panics on non-positive
// inputs.
func EstimateConvergence(h1, e1, h2, e2 float64) ConvergenceEstimate {
	if h1 <= 0 || h2 <= 0 || e1 <= 0 || e2 <= 0 || h1 == h2 {
		panic("core: convergence estimation requires positive, distinct inputs")
	}
	rate := math.Log(e1/e2) / math.Log(h1/h2)
	c := e1 / math.Pow(h1, rate)
	return ConvergenceEstimate{Rate: rate, Constant: c}
}

// ErrorAt predicts the discretization error at grid spacing h.
func (c ConvergenceEstimate) ErrorAt(h float64) float64 {
	return c.Constant * math.Pow(h, c.Rate)
}

// SuggestTolerance returns the e_tol to pass to the approximate FFT for
// a target grid spacing h: the predicted discretization error scaled by
// margin (≤ 1), so that the round-off/compression error stays below the
// discretization error and the total error bound
// ‖e_a‖ ≤ 2·max(‖e_d‖, ‖e_r‖) of §III is governed by e_d. A margin of
// 0.5 balances the two error sources as the paper prescribes.
func (c ConvergenceEstimate) SuggestTolerance(h, margin float64) float64 {
	if margin <= 0 || margin > 1 {
		panic("core: tolerance margin must be in (0, 1]")
	}
	return margin * c.ErrorAt(h)
}

package precision

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		bits Float16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{6.103515625e-05, 0x0400},       // min normal half
		{5.960464477539063e-08, 0x0001}, // min subnormal half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.in); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.in, got, c.bits)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if got := FromFloat32(65536); got != 0x7c00 {
		t.Errorf("FromFloat32(65536) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-70000); got != 0xfc00 {
		t.Errorf("FromFloat32(-70000) = %#04x, want -Inf", got)
	}
	// 65520 rounds to 65536 which overflows to Inf.
	if got := FromFloat32(65520); got != 0x7c00 {
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf (round-up overflow)", got)
	}
	// 65519 rounds down to 65504.
	if got := FromFloat32(65519); got != 0x7bff {
		t.Errorf("FromFloat32(65519) = %#04x, want 0x7bff", got)
	}
}

func TestFloat16Underflow(t *testing.T) {
	tiny := float32(1e-10)
	if got := FromFloat32(tiny); got != 0 {
		t.Errorf("FromFloat32(%g) = %#04x, want +0", tiny, got)
	}
	if got := FromFloat32(-tiny); got != 0x8000 {
		t.Errorf("FromFloat32(%g) = %#04x, want -0", -tiny, got)
	}
}

func TestFloat16NaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if f := h.Float32(); !math.IsNaN(float64(f)) {
		t.Errorf("NaN did not round-trip, got %g", f)
	}
	h64 := FromFloat64(math.NaN())
	if f := h64.Float64(); !math.IsNaN(f) {
		t.Errorf("NaN (64) did not round-trip, got %g", f)
	}
}

// TestFloat16RoundTripExact checks every binary16 bit pattern converts to
// float32 and back unchanged (ignoring NaN payloads).
func TestFloat16RoundTripExact(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		f := h.Float32()
		if math.IsNaN(float64(f)) {
			continue
		}
		if got := FromFloat32(f); got != h {
			t.Fatalf("round trip %#04x -> %g -> %#04x", h, f, got)
		}
	}
}

// TestFloat16ErrorBound: for values in the normal half range, relative
// error of 64->16 conversion must be within the unit roundoff 2^-11.
func TestFloat16ErrorBound(t *testing.T) {
	u := math.Ldexp(1, -11)
	f := func(x float64) bool {
		// Map into the half normal range.
		x = math.Mod(math.Abs(x), 60000)
		if x < 6.2e-5 {
			return true
		}
		y := FromFloat64(x).Float64()
		return math.Abs(y-x) <= u*x*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFloat16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties-to-even
	// rounds down to 1.
	x := 1 + math.Ldexp(1, -11)
	if got := FromFloat64(x).Float64(); got != 1 {
		t.Errorf("ties-to-even: FromFloat64(1+2^-11) = %g, want 1", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; rounds up to even.
	x = 1 + 3*math.Ldexp(1, -11)
	want := 1 + math.Ldexp(1, -9)
	if got := FromFloat64(x).Float64(); got != want {
		t.Errorf("ties-to-even: got %g, want %g", got, want)
	}
}

func TestFloat16SubnormalRoundTrip(t *testing.T) {
	for i := 1; i < 0x400; i++ {
		h := Float16(i)
		f := h.Float64()
		if got := FromFloat64(f); got != h {
			t.Fatalf("subnormal %#04x -> %g -> %#04x", h, f, got)
		}
	}
}

func TestBFloat16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		bits BFloat16
	}{
		{0, 0x0000},
		{1, 0x3f80},
		{-2, 0xc000},
		{float32(math.Inf(1)), 0x7f80},
	}
	for _, c := range cases {
		if got := BFromFloat32(c.in); got != c.bits {
			t.Errorf("BFromFloat32(%g) = %#04x, want %#04x", c.in, got, c.bits)
		}
	}
}

func TestBFloat16RoundTripExact(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := BFloat16(i)
		f := h.Float32()
		if math.IsNaN(float64(f)) {
			continue
		}
		if got := BFromFloat32(f); got != h {
			t.Fatalf("round trip %#04x -> %g -> %#04x", h, f, got)
		}
	}
}

func TestBFloat16ErrorBound(t *testing.T) {
	u := math.Ldexp(1, -8)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e38 || math.Abs(x) < 1e-38 {
			return true
		}
		y := BFromFloat64(x).Float64()
		return math.Abs(y-x) <= u*math.Abs(x)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTrimIdentityAt52(t *testing.T) {
	f := func(x float64) bool { return TrimFloat64(x, 52) == x || math.IsNaN(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrimIdempotent(t *testing.T) {
	f := func(x float64, mRaw uint8) bool {
		m := uint(mRaw) % 53
		y := TrimFloat64(x, m)
		return TrimFloat64(y, m) == y || math.IsNaN(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestTrimErrorBound(t *testing.T) {
	f := func(x float64, mRaw uint8) bool {
		// Exclude the top binade, where rounding up can overflow to Inf.
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 || math.Abs(x) > math.MaxFloat64/2 {
			return true
		}
		m := uint(mRaw) % 53
		y := TrimFloat64(x, m)
		u := TrimUnitRoundoff(m)
		return math.Abs(y-x) <= u*math.Abs(x)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestTrim23MatchesFloat32Mantissa(t *testing.T) {
	// Trimming to 23 bits must equal a float64->float32->float64 cast
	// whenever the value is within float32's exponent range.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e38 || (x != 0 && math.Abs(x) < 1e-38) {
			return true
		}
		return TrimFloat64(x, 23) == float64(float32(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestTrimZeroBits(t *testing.T) {
	// m=0 keeps only the implicit bit: result is a power of two (or zero),
	// within a factor of sqrt(2)-ish of x.
	got := TrimFloat64(1.4, 0)
	if got != 1.0 && got != 2.0 {
		t.Errorf("TrimFloat64(1.4, 0) = %g, want 1 or 2", got)
	}
	if TrimFloat64(1.6, 0) != 2.0 {
		t.Errorf("TrimFloat64(1.6, 0) = %g, want 2", TrimFloat64(1.6, 0))
	}
}

func TestTrimPreservesSpecials(t *testing.T) {
	if !math.IsInf(TrimFloat64(math.Inf(1), 5), 1) {
		t.Error("TrimFloat64(+Inf) != +Inf")
	}
	if !math.IsNaN(TrimFloat64(math.NaN(), 5)) {
		t.Error("TrimFloat64(NaN) != NaN")
	}
	if TrimFloat64(0, 5) != 0 {
		t.Error("TrimFloat64(0) != 0")
	}
}

func TestFormatsTable(t *testing.T) {
	if len(Formats) != 4 {
		t.Fatalf("Formats has %d entries, want 4", len(Formats))
	}
	for _, f := range Formats {
		if f.ExpBits+f.ManBits+1 != f.Bits {
			t.Errorf("%s: sign+exp+man = %d bits, want %d", f.Name, f.ExpBits+f.ManBits+1, f.Bits)
		}
	}
	if FormatByName("FP64") == nil || FormatByName("nope") != nil {
		t.Error("FormatByName lookup broken")
	}
	// Unit roundoff consistency: 2^-(man+1) within table rounding.
	for _, f := range Formats {
		want := math.Ldexp(1, -f.ManBits-1)
		if math.Abs(f.UnitRoundoff-want)/want > 0.15 {
			t.Errorf("%s unit roundoff %g inconsistent with 2^-%d = %g", f.Name, f.UnitRoundoff, f.ManBits+1, want)
		}
	}
}

func TestTrimUnitRoundoff(t *testing.T) {
	if got := TrimUnitRoundoff(23); got != math.Ldexp(1, -24) {
		t.Errorf("TrimUnitRoundoff(23) = %g", got)
	}
}

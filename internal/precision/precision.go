// Package precision implements the reduced-precision floating-point
// formats used by the lossy all-to-all exchange: IEEE binary16 (FP16),
// bfloat16 (BF16), and generalized mantissa trimming of IEEE binary64
// values to an arbitrary number of retained mantissa bits.
//
// All conversions round to nearest, ties to even, which matches both the
// hardware cast units the paper relies on (Table I) and the truncation
// operations studied in §IV-B.
package precision

import "math"

// Float16 is an IEEE 754 binary16 value stored in its raw bit pattern.
type Float16 uint16

// BFloat16 is a bfloat16 value (the high 16 bits of a binary32) stored in
// its raw bit pattern.
type BFloat16 uint16

const (
	f16ExpBits  = 5
	f16ManBits  = 10
	f16ExpBias  = 15
	f32ExpBias  = 127
	f64ExpBias  = 1023
	f64ManBits  = 52
	bf16ManBits = 7
)

// FromFloat32 converts a float32 to Float16 with round-to-nearest-even.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			// NaN: preserve a quiet NaN payload bit.
			return Float16(sign | 0x7e00)
		}
		return Float16(sign | 0x7c00)
	case exp == 0 && man == 0: // signed zero
		return Float16(sign)
	}

	// Unbiased exponent.
	e := exp - f32ExpBias
	switch {
	case e > 15: // overflow to infinity
		return Float16(sign | 0x7c00)
	case e >= -14: // normal range
		// 23-10 = 13 bits are dropped.
		m := man >> 13
		rem := man & 0x1fff
		h := sign | uint16(e+f16ExpBias)<<f16ManBits | uint16(m)
		// Round to nearest even; carry may overflow into the exponent,
		// which is the correct behaviour (it rounds up to the next
		// binade or to infinity).
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			h++
		}
		return Float16(h)
	case e >= -24: // subnormal half
		// Value is man' * 2^(e-23) with implicit bit restored.
		m := man | 0x800000
		shift := uint32(-e - 14 + 13) // total right shift into 10-bit field
		q := m >> shift
		rem := m & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		h := sign | uint16(q)
		if rem > half || (rem == half && q&1 == 1) {
			h++
		}
		return Float16(h)
	default: // underflow to signed zero
		return Float16(sign)
	}
}

// Float32 converts a Float16 back to float32 exactly.
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>f16ManBits) & 0x1f
	man := uint32(h) & 0x3ff

	switch {
	case exp == 0x1f: // Inf/NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := int32(-14)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | uint32(e+f32ExpBias)<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-f16ExpBias+f32ExpBias)<<23 | man<<13)
	}
}

// FromFloat64 converts a float64 to Float16 (via float32, which is exact
// for the final binary16 rounding of all but a measure-zero set of
// double-rounding cases; we convert directly to avoid them).
func FromFloat64(f float64) Float16 {
	// Direct conversion avoids double rounding (64→32→16).
	b := math.Float64bits(f)
	sign := uint16(b>>48) & 0x8000
	exp := int64(b>>52) & 0x7ff
	man := b & 0xfffffffffffff

	switch {
	case exp == 0x7ff:
		if man != 0 {
			return Float16(sign | 0x7e00)
		}
		return Float16(sign | 0x7c00)
	case exp == 0 && man == 0:
		return Float16(sign)
	}
	e := exp - f64ExpBias
	switch {
	case e > 15:
		return Float16(sign | 0x7c00)
	case e >= -14:
		shift := uint64(f64ManBits - f16ManBits)
		m := man >> shift
		rem := man & ((1 << shift) - 1)
		half := uint64(1) << (shift - 1)
		h := sign | uint16(e+f16ExpBias)<<f16ManBits | uint16(m)
		if rem > half || (rem == half && m&1 == 1) {
			h++
		}
		return Float16(h)
	case e >= -24:
		m := man | 1<<f64ManBits
		shift := uint64(int64(-e)-14) + (f64ManBits - f16ManBits)
		if shift > 63 {
			return Float16(sign)
		}
		q := m >> shift
		rem := m & ((1 << shift) - 1)
		half := uint64(1) << (shift - 1)
		h := sign | uint16(q)
		if rem > half || (rem == half && q&1 == 1) {
			h++
		}
		return Float16(h)
	default:
		return Float16(sign)
	}
}

// Float64 converts a Float16 to float64 exactly.
func (h Float16) Float64() float64 { return float64(h.Float32()) }

// BFromFloat32 converts a float32 to BFloat16 with round-to-nearest-even.
func BFromFloat32(f float32) BFloat16 {
	b := math.Float32bits(f)
	if b&0x7fffffff > 0x7f800000 { // NaN: keep it quiet
		return BFloat16(b>>16 | 0x0040)
	}
	rem := b & 0xffff
	q := b >> 16
	if rem > 0x8000 || (rem == 0x8000 && q&1 == 1) {
		q++
	}
	return BFloat16(q)
}

// BFromFloat64 converts a float64 to BFloat16 via float32 (safe here:
// bfloat16's 8-bit mantissa makes double rounding vanishingly unlikely
// to matter for our error-bound use, and we accept the float32 cast as
// the hardware would perform it).
func BFromFloat64(f float64) BFloat16 { return BFromFloat32(float32(f)) }

// Float32 converts a BFloat16 to float32 exactly.
func (h BFloat16) Float32() float32 { return math.Float32frombits(uint32(h) << 16) }

// Float64 converts a BFloat16 to float64 exactly.
func (h BFloat16) Float64() float64 { return float64(h.Float32()) }

// TrimFloat64 rounds x to a float64 with only m mantissa bits retained
// (0 ≤ m ≤ 52), using round-to-nearest-even. m = 52 is the identity,
// m = 23 matches the FP32 mantissa, m = 10 matches FP16's. The exponent
// range is unchanged (unlike a format cast), which isolates the mantissa
// contribution studied in Fig. 2.
func TrimFloat64(x float64, m uint) float64 {
	if m >= f64ManBits {
		return x
	}
	b := math.Float64bits(x)
	exp := b >> 52 & 0x7ff
	if exp == 0x7ff { // Inf/NaN untouched
		return x
	}
	shift := f64ManBits - m
	mask := uint64(1)<<shift - 1
	rem := b & mask
	b &^= mask
	half := uint64(1) << (shift - 1)
	if rem > half || (rem == half && b>>shift&1 == 1) {
		// Round up; carry may ripple into the exponent, which is correct.
		b += 1 << shift
	}
	return math.Float64frombits(b)
}

// Format describes a floating-point arithmetic as in Table I of the paper.
type Format struct {
	Name         string
	Bits         int
	ExpBits      int
	ManBits      int // stored mantissa bits (without the implicit bit)
	XminSubnorm  float64
	XminNormal   float64
	Xmax         float64
	UnitRoundoff float64
	// Peak throughputs in Tflop/s as reported in Table I (V100 / MI100);
	// zero means not available.
	PeakV100  float64
	PeakMI100 float64
}

// Formats reproduces Table I of the paper.
var Formats = []Format{
	{
		Name: "BFloat16", Bits: 16, ExpBits: 8, ManBits: 7,
		XminSubnorm: 9.2e-41, XminNormal: 1.2e-38, Xmax: 3.4e38,
		UnitRoundoff: 3.9e-3, PeakV100: 0, PeakMI100: 92,
	},
	{
		Name: "FP16", Bits: 16, ExpBits: 5, ManBits: 10,
		XminSubnorm: 6.0e-8, XminNormal: 6.1e-5, Xmax: 6.6e4,
		UnitRoundoff: 4.9e-4, PeakV100: 125, PeakMI100: 184,
	},
	{
		Name: "FP32", Bits: 32, ExpBits: 8, ManBits: 23,
		XminSubnorm: 1.4e-45, XminNormal: 1.2e-38, Xmax: 3.4e38,
		UnitRoundoff: 6.0e-8, PeakV100: 15.7, PeakMI100: 23,
	},
	{
		Name: "FP64", Bits: 64, ExpBits: 11, ManBits: 52,
		XminSubnorm: 4.9e-324, XminNormal: 2.2e-308, Xmax: math.MaxFloat64,
		UnitRoundoff: 1.1e-16, PeakV100: 7.8, PeakMI100: 11.5,
	},
}

// FormatByName returns the Table I entry for name, or nil if unknown.
func FormatByName(name string) *Format {
	for i := range Formats {
		if Formats[i].Name == name {
			return &Formats[i]
		}
	}
	return nil
}

// TrimUnitRoundoff is the unit roundoff of a float64 trimmed to m
// mantissa bits: 2^-(m+1).
func TrimUnitRoundoff(m uint) float64 {
	return math.Ldexp(1, -int(m)-1)
}

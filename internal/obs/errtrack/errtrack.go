// Package errtrack is the numerical-error provenance layer of the
// telemetry stack. The paper trades bounded compression error for
// exchange speed; this package answers *where* that error came from: it
// aggregates the per-peer error_attribution events the compressed
// exchanges emit (one per destination block per epoch) into a ledger
// keyed by run cell, reshape stage, and (rank, peer) pair, and composes
// the measured per-stage errors into an accumulation curve that is
// compared against the theoretical per-stage bound composition
// prod(1+b_i)−1 from internal/core.
//
// The Tracker is a pure event-log observer: register it with
// log.Observe(tracker.Observe) for a live run, or feed it a recorded
// JSONL stream line by line for an offline replay. Both paths run the
// same code, so a live scrape of /errtrack and a replay of the run's
// event log derive identical verdicts by construction. Because it only
// consumes events, the layer inherits the telemetry contract: zero cost
// when no event log is attached, and never a participant in virtual
// time.
package errtrack

import (
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Stat is the block-level error statistic of one measured unit: N
// values whose worst relative error was MaxRel, worst absolute error
// MaxAbs, and squared absolute error sum SumSq.
type Stat struct {
	N      int64
	MaxRel float64
	MaxAbs float64
	SumSq  float64
}

// Merge folds o into s.
func (s *Stat) Merge(o Stat) {
	s.N += o.N
	if o.MaxRel > s.MaxRel {
		s.MaxRel = o.MaxRel
	}
	if o.MaxAbs > s.MaxAbs {
		s.MaxAbs = o.MaxAbs
	}
	s.SumSq += o.SumSq
}

// RMS returns the root-mean-square absolute error (0 when empty).
func (s Stat) RMS() float64 {
	if s.N == 0 {
		return 0
	}
	return math.Sqrt(s.SumSq / float64(s.N))
}

// finite reports whether every component of the stat is usable: counts
// non-negative and every float finite. Corrupted payloads under fault
// injection can push NaN/Inf through an error measurement; one such
// block must not poison a whole stage's ledger.
func (s Stat) finite() bool {
	return s.N >= 0 &&
		!math.IsNaN(s.MaxRel) && !math.IsInf(s.MaxRel, 0) &&
		!math.IsNaN(s.MaxAbs) && !math.IsInf(s.MaxAbs, 0) &&
		!math.IsNaN(s.SumSq) && !math.IsInf(s.SumSq, 0) && s.SumSq >= 0
}

// pairKey identifies one directed (sender, destination) pair.
type pairKey struct{ rank, peer int }

// seriesPoint is one attribution observation on the virtual timeline,
// kept for the budget-burn rendering and drift estimation.
type seriesPoint struct {
	t    float64
	rank int
	peer int
	v    float64 // the block's worst relative error
}

// stage aggregates one reshape label within one cell.
type stage struct {
	label    string
	bound    float64 // the method's configured bound, from the events
	worst    Stat    // aggregate over all pairs and epochs
	pairs    map[pairKey]*Stat
	dropped  int64 // pair entries not retained (MaxPairs)
	poisoned int64 // non-finite stats rejected
	series   []seriesPoint
	seriesN  int64 // observations offered to the series (≥ len(series))
}

// cell is one run/cell's set of stages.
type cell struct {
	label  string
	stages map[string]*stage
	order  []string // stage labels in first-seen order
}

// Tracker builds the provenance ledger from the event stream. Safe for
// concurrent use (event-log observers may run from several goroutines).
// A nil *Tracker ignores everything.
type Tracker struct {
	// MaxPairs bounds the retained (rank, peer) entries per stage; excess
	// pairs still merge into the stage aggregate and are counted as
	// dropped, never silently discarded. Set before the first event.
	MaxPairs int
	// MaxSeries bounds the per-stage timeline points kept for burn
	// rendering; later points are counted, not stored.
	MaxSeries int

	mu    sync.Mutex
	cells []*cell
	byKey map[string]*cell
	cur   *cell
}

// Defaults for the tracker's retention bounds.
const (
	DefaultMaxPairs  = 1 << 12
	DefaultMaxSeries = 1 << 14
)

// New creates a tracker with the default retention bounds.
func New() *Tracker {
	return &Tracker{MaxPairs: DefaultMaxPairs, MaxSeries: DefaultMaxSeries}
}

// StartCell opens a new attribution cell (one bench cell, chaos seed, or
// run); subsequent records land in it. Reusing a label reopens the
// existing cell, so replays keyed by run markers stay idempotent.
func (t *Tracker) StartCell(label string) {
	if t == nil {
		return
	}
	if label == "" {
		label = "run"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur = t.cellLocked(label)
}

func (t *Tracker) cellLocked(label string) *cell {
	if t.byKey == nil {
		t.byKey = make(map[string]*cell)
	}
	c := t.byKey[label]
	if c == nil {
		c = &cell{label: label, stages: make(map[string]*stage)}
		t.byKey[label] = c
		t.cells = append(t.cells, c)
	}
	return c
}

// Record folds one measured block into the ledger: rank sent peer a
// block on the reshape stage labelled label, under the method bound
// bound, and the round-trip measured s. Non-finite stats are rejected
// and counted (Poisoned), never merged.
func (t *Tracker) Record(at float64, rank int, label string, peer int, bound float64, s Stat) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		t.cur = t.cellLocked("run")
	}
	st := t.cur.stages[label]
	if st == nil {
		st = &stage{label: label, pairs: make(map[pairKey]*Stat)}
		t.cur.stages[label] = st
		t.cur.order = append(t.cur.order, label)
	}
	if bound > st.bound {
		st.bound = bound
	}
	if !s.finite() {
		st.poisoned++
		return
	}
	st.worst.Merge(s)
	k := pairKey{rank, peer}
	if ps := st.pairs[k]; ps != nil {
		ps.Merge(s)
	} else if len(st.pairs) < t.maxPairs() {
		cp := s
		st.pairs[k] = &cp
	} else {
		st.dropped++
	}
	st.seriesN++
	if len(st.series) < t.maxSeries() {
		st.series = append(st.series, seriesPoint{t: at, rank: rank, peer: peer, v: s.MaxRel})
	}
}

func (t *Tracker) maxPairs() int {
	if t.MaxPairs > 0 {
		return t.MaxPairs
	}
	return DefaultMaxPairs
}

func (t *Tracker) maxSeries() int {
	if t.MaxSeries > 0 {
		return t.MaxSeries
	}
	return DefaultMaxSeries
}

// Observe is the event-log observer: run markers open cells,
// error-attribution events land in the ledger, everything else is
// ignored. Register with log.Observe(tracker.Observe) for live runs or
// feed a recorded stream through it for replays.
func (t *Tracker) Observe(ev obs.Event) {
	if t == nil {
		return
	}
	switch ev.Kind {
	case obs.EventRun:
		t.StartCell(ev.Label)
	case obs.EventErrAttr:
		t.Record(ev.T, ev.Rank, ev.Label, ev.Peer, ev.Bound, Stat{
			N:      ev.N,
			MaxRel: ev.Value,
			MaxAbs: ev.MaxAbs,
			SumSq:  ev.RMS * ev.RMS * float64(ev.N),
		})
	}
}

// AttrEvent renders one measured block as the error_attribution event
// the exchanges emit — the single wire format Observe understands.
func AttrEvent(at float64, label string, peer int, bound float64, s Stat) obs.Event {
	return obs.Event{
		T: at, Kind: obs.EventErrAttr, Label: label, Peer: peer,
		Value: s.MaxRel, Bound: bound, MaxAbs: s.MaxAbs, RMS: s.RMS(), N: s.N,
	}
}

// PairStat is one (rank, peer) cell of the attribution matrix.
type PairStat struct {
	Rank   int     `json:"rank"`
	Peer   int     `json:"peer"`
	N      int64   `json:"n"`
	MaxRel float64 `json:"max_rel"`
	MaxAbs float64 `json:"max_abs"`
	RMS    float64 `json:"rms"`
}

// TimePoint is one budget-burn sample: the worst relative error of one
// measured block at virtual time T.
type TimePoint struct {
	T      float64 `json:"t"`
	Rank   int     `json:"rank"`
	Peer   int     `json:"peer"`
	MaxRel float64 `json:"max_rel"`
}

// StageReport is one reshape stage's aggregated attribution.
type StageReport struct {
	Label        string      `json:"label"`
	Bound        float64     `json:"bound"`
	Values       int64       `json:"values"`
	WorstRel     float64     `json:"worst_rel"`
	MaxAbs       float64     `json:"max_abs"`
	RMS          float64     `json:"rms"`
	SumSq        float64     `json:"sum_sq"`
	Poisoned     int64       `json:"poisoned,omitempty"`
	Drift        float64     `json:"drift,omitempty"`
	Pairs        []PairStat  `json:"pairs,omitempty"`
	DroppedPairs int64       `json:"dropped_pairs,omitempty"`
	Series       []TimePoint `json:"series,omitempty"`
	SeriesTotal  int64       `json:"series_total,omitempty"`
}

// CellReport is one cell's set of stage reports, in first-seen order.
type CellReport struct {
	Cell   string        `json:"cell"`
	Stages []StageReport `json:"stages"`
}

// ReportSchema versions the Report JSON (the /errtrack payload and the
// -errtrack artifact share it).
const ReportSchema = 1

// Report is the tracker's externally visible state.
type Report struct {
	Schema int          `json:"schema"`
	Cells  []CellReport `json:"cells"`
}

// Snapshot copies the ledger into a Report. Pair matrices and series are
// sorted by deterministic keys, so two trackers that saw the same event
// multiset (live vs. replay, sequential vs. parallel engine) snapshot
// byte-identically as long as retention bounds were not exceeded.
func (t *Tracker) Snapshot() Report {
	r := Report{Schema: ReportSchema}
	if t == nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.cells {
		cr := CellReport{Cell: c.label}
		for _, label := range c.order {
			cr.Stages = append(cr.Stages, c.stages[label].report())
		}
		r.Cells = append(r.Cells, cr)
	}
	return r
}

func (st *stage) report() StageReport {
	sr := StageReport{
		Label:    st.label,
		Bound:    st.bound,
		Values:   st.worst.N,
		WorstRel: st.worst.MaxRel,
		MaxAbs:   st.worst.MaxAbs,
		RMS:      st.worst.RMS(),
		SumSq:    st.worst.SumSq,
		Poisoned: st.poisoned,
		Pairs:    make([]PairStat, 0, len(st.pairs)),

		DroppedPairs: st.dropped,
		SeriesTotal:  st.seriesN,
	}
	keys := make([]pairKey, 0, len(st.pairs))
	for k := range st.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].peer < keys[j].peer
	})
	var pairSq float64
	for _, k := range keys {
		s := st.pairs[k]
		pairSq += s.SumSq
		sr.Pairs = append(sr.Pairs, PairStat{
			Rank: k.rank, Peer: k.peer,
			N: s.N, MaxRel: s.MaxRel, MaxAbs: s.MaxAbs, RMS: s.RMS(),
		})
	}
	if st.dropped == 0 && len(keys) > 0 {
		// Re-derive the squared-error sum by folding the sorted pair
		// stats: a pair's own sum accumulates in its rank's program order
		// (deterministic under both engines), so this fixed fold order
		// makes the stage aggregate a pure function of the event multiset
		// — arrival-order summation differs across engines in the last
		// ulp. With dropped pairs the arrival-order sum stands, as the
		// retained pairs no longer carry the whole stage.
		sr.SumSq = pairSq
		sr.RMS = Stat{N: sr.Values, SumSq: pairSq}.RMS()
	}
	sr.Series = make([]TimePoint, 0, len(st.series))
	for _, p := range st.series {
		sr.Series = append(sr.Series, TimePoint{T: p.t, Rank: p.rank, Peer: p.peer, MaxRel: p.v})
	}
	sort.Slice(sr.Series, func(i, j int) bool {
		a, b := sr.Series[i], sr.Series[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.MaxRel < b.MaxRel
	})
	// Drift sums over the sorted series for the same reason.
	sr.Drift = driftOf(sr.Series)
	return sr
}

// driftOf estimates error drift over a stage's timeline: the mean worst
// relative error of the late half of the virtual-time span divided by
// the early half's mean. Splitting at the time midpoint (rather than the
// sample median) keeps the estimate independent of observation order,
// which the parallel engine does not preserve; callers pass the sorted
// series so the summation order is deterministic too. Returns 0 when
// either half is empty or the early mean is zero.
func driftOf(series []TimePoint) float64 {
	if len(series) < 2 {
		return 0
	}
	tMin, tMax := series[0].T, series[0].T
	for _, p := range series[1:] {
		if p.T < tMin {
			tMin = p.T
		}
		if p.T > tMax {
			tMax = p.T
		}
	}
	if tMax <= tMin {
		return 0
	}
	mid := tMin + (tMax-tMin)/2
	var earlySum, lateSum float64
	var earlyN, lateN int
	for _, p := range series {
		if p.T <= mid {
			earlySum += p.MaxRel
			earlyN++
		} else {
			lateSum += p.MaxRel
			lateN++
		}
	}
	if earlyN == 0 || lateN == 0 || earlySum == 0 {
		return 0
	}
	return (lateSum / float64(lateN)) / (earlySum / float64(earlyN))
}

package errtrack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

// WriteFile writes the report as the -errtrack artifact: indented JSON,
// schema-stamped, loadable by LoadReport and cmd/errmap.
func (r Report) WriteFile(path string) error {
	r.Schema = ReportSchema
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads and validates an -errtrack artifact (or a saved
// /errtrack response — same format).
func LoadReport(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("errtrack: parsing %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return r, fmt.Errorf("errtrack: %s has schema %d, want %d", path, r.Schema, ReportSchema)
	}
	return r, nil
}

// Replay feeds a recorded JSONL event stream through a fresh tracker
// and returns it. Malformed lines are counted, not fatal — stream
// integrity is obswatch's job; this reconstructs as much of the ledger
// as the stream carries.
func Replay(r io.Reader) (*Tracker, int64, error) {
	t := New()
	var bad int64
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		line, err := br.ReadString('\n')
		if s := strings.TrimSpace(line); s != "" {
			var ev obs.Event
			if json.Unmarshal([]byte(s), &ev) != nil {
				bad++
			} else {
				t.Observe(ev)
			}
		}
		if err == io.EOF {
			return t, bad, nil
		}
		if err != nil {
			return t, bad, err
		}
	}
}

// ReplayFile is Replay over a file path.
func ReplayFile(path string) (*Tracker, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Replay(f)
}

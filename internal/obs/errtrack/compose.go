package errtrack

import (
	"fmt"
	"sort"
	"strings"
)

// StageBudget is one pipeline stage's theoretical error allowance: the
// compression method's bound on that reshape (0 for lossless stages).
// internal/core derives the ordered list for a plan's options.
type StageBudget struct {
	Label string  `json:"label"`
	Bound float64 `json:"bound"`
}

// Compose folds per-stage relative error bounds into the cumulative
// bound after each stage: relative errors compose multiplicatively, so
// after stage i the worst case is prod_{j≤i}(1+b_j) − 1. The same
// composition applied to measured per-stage errors gives the measured
// accumulation curve the ledger compares against.
func Compose(bounds []float64) []float64 {
	out := make([]float64, len(bounds))
	cum := 0.0
	for i, b := range bounds {
		cum = (1+cum)*(1+b) - 1
		out[i] = cum
	}
	return out
}

// LedgerRow is one stage of the error-accumulation ledger: the measured
// worst relative error and its composition so far, against the
// theoretical bound and its composition, plus the stage's share of the
// total accumulated squared error (the budget-share the SLO kind caps).
type LedgerRow struct {
	Label       string  `json:"label"`
	Bound       float64 `json:"bound"`
	BoundCum    float64 `json:"bound_cum"`
	Measured    float64 `json:"measured"`
	MeasuredCum float64 `json:"measured_cum"`
	Share       float64 `json:"share"`
	Values      int64   `json:"values"`
	OK          bool    `json:"ok"`
}

// Ledger is one cell's composed error accounting.
type Ledger struct {
	Cell string      `json:"cell"`
	Rows []LedgerRow `json:"rows"`
}

// OK reports whether every stage stayed within its bound (stages with a
// zero bound — lossless — pass unless they measured a nonzero error).
func (l Ledger) OK() bool {
	for _, r := range l.Rows {
		if !r.OK {
			return false
		}
	}
	return true
}

// BuildLedger composes a cell's measured stage errors against the
// ordered stage budgets. When order is nil the cell's own stages (in
// first-seen order, with their event-recorded bounds) are used; passing
// core.StageBounds pins the theoretical side to the plan instead of the
// stream. Budgeted stages the cell never measured contribute their bound
// but no measurement; measured stages missing from the order are
// appended so nothing is silently dropped.
func BuildLedger(c CellReport, order []StageBudget) Ledger {
	byLabel := make(map[string]StageReport, len(c.Stages))
	for _, s := range c.Stages {
		byLabel[s.Label] = s
	}
	if order == nil {
		order = make([]StageBudget, 0, len(c.Stages))
		for _, s := range c.Stages {
			order = append(order, StageBudget{Label: s.Label, Bound: s.Bound})
		}
	} else {
		listed := make(map[string]bool, len(order))
		for _, b := range order {
			listed[b.Label] = true
		}
		var extra []StageBudget
		for _, s := range c.Stages {
			if !listed[s.Label] {
				extra = append(extra, StageBudget{Label: s.Label, Bound: s.Bound})
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i].Label < extra[j].Label })
		order = append(append([]StageBudget(nil), order...), extra...)
	}

	var totalSq float64
	for _, s := range c.Stages {
		totalSq += s.SumSq
	}
	led := Ledger{Cell: c.Cell, Rows: make([]LedgerRow, 0, len(order))}
	mCum, bCum := 0.0, 0.0
	for _, b := range order {
		s := byLabel[b.Label]
		bound := b.Bound
		if s.Bound > bound {
			bound = s.Bound
		}
		mCum = (1+mCum)*(1+s.WorstRel) - 1
		bCum = (1+bCum)*(1+bound) - 1
		row := LedgerRow{
			Label: b.Label, Bound: bound, BoundCum: bCum,
			Measured: s.WorstRel, MeasuredCum: mCum,
			Values: s.Values,
			// Worst relative error is non-negative, so a lossless stage
			// (bound 0) passes exactly when it measured zero error.
			OK: s.WorstRel <= bound,
		}
		if totalSq > 0 {
			row.Share = s.SumSq / totalSq
		}
		led.Rows = append(led.Rows, row)
	}
	return led
}

// OverBudget lists every stage (as "cell/stage: measured > bound") whose
// measured worst relative error exceeded its recorded bound, plus every
// stage that rejected poisoned (non-finite) measurements. Empty means
// the whole report is within budget.
func (r Report) OverBudget() []string {
	var out []string
	for _, c := range r.Cells {
		led := BuildLedger(c, nil)
		for _, row := range led.Rows {
			if !row.OK {
				out = append(out, fmt.Sprintf("%s/%s: measured %.3g > bound %.3g",
					c.Cell, row.Label, row.Measured, row.Bound))
			}
		}
		for _, s := range c.Stages {
			if s.Poisoned > 0 {
				out = append(out, fmt.Sprintf("%s/%s: %d poisoned (non-finite) measurements rejected",
					c.Cell, s.Label, s.Poisoned))
			}
		}
	}
	return out
}

// Verdict summarizes the report in one line: "errtrack PASS (...)" or
// "errtrack FAIL (...)" with the offending stages. The same string is
// produced from a live /errtrack scrape and an offline replay of the
// run's event log.
func (r Report) Verdict() string {
	var cells, stages, values int64
	for _, c := range r.Cells {
		cells++
		for _, s := range c.Stages {
			stages++
			values += s.Values
		}
	}
	over := r.OverBudget()
	if len(over) == 0 {
		return fmt.Sprintf("errtrack PASS (%d cells, %d stages, %d values within bounds)",
			cells, stages, values)
	}
	return fmt.Sprintf("errtrack FAIL (%d over budget: %s)", len(over), strings.Join(over, "; "))
}

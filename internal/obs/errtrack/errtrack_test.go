package errtrack

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestStatMergeAndRMS(t *testing.T) {
	var s Stat
	s.Merge(Stat{N: 2, MaxRel: 1e-4, MaxAbs: 2e-3, SumSq: 8e-6})
	s.Merge(Stat{N: 2, MaxRel: 3e-4, MaxAbs: 1e-3, SumSq: 0})
	if s.N != 4 || s.MaxRel != 3e-4 || s.MaxAbs != 2e-3 {
		t.Fatalf("merged stat = %+v", s)
	}
	if got, want := s.RMS(), math.Sqrt(8e-6/4); math.Abs(got-want) > 1e-18 {
		t.Fatalf("RMS = %v, want %v", got, want)
	}
	if (Stat{}).RMS() != 0 {
		t.Fatal("empty stat must have zero RMS")
	}
}

func TestCompose(t *testing.T) {
	got := Compose([]float64{0.1, 0.2, 0})
	want := []float64{0.1, 1.1*1.2 - 1, 1.1*1.2 - 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("Compose[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(Compose(nil)) != 0 {
		t.Fatal("Compose(nil) must be empty")
	}
}

// TestAdversarialStats feeds the tracker NaN/Inf/negative payloads: they
// must be rejected and counted, never merged, and the report must flag
// the stage as over budget regardless of its bound.
func TestAdversarialStats(t *testing.T) {
	trk := New()
	trk.StartCell("adv")
	good := Stat{N: 1, MaxRel: 1e-5, MaxAbs: 1e-5, SumSq: 1e-10}
	trk.Record(0, 0, "fwd0", 1, 1e-4, good)
	for _, bad := range []Stat{
		{N: 1, MaxRel: math.NaN()},
		{N: 1, MaxAbs: math.Inf(1)},
		{N: 1, SumSq: math.Inf(-1)},
		{N: 1, SumSq: -1},
		{N: -1},
	} {
		trk.Record(0, 0, "fwd0", 1, 1e-4, bad)
	}
	rep := trk.Snapshot()
	s := rep.Cells[0].Stages[0]
	if s.Poisoned != 5 {
		t.Fatalf("poisoned = %d, want 5", s.Poisoned)
	}
	if s.Values != 1 || s.WorstRel != 1e-5 {
		t.Fatalf("poison leaked into the aggregate: %+v", s)
	}
	over := rep.OverBudget()
	if len(over) != 1 || !strings.Contains(over[0], "poisoned") {
		t.Fatalf("OverBudget = %v, want one poisoned entry", over)
	}
	if !strings.Contains(rep.Verdict(), "FAIL") {
		t.Fatalf("verdict %q must FAIL on poison", rep.Verdict())
	}
}

// TestSubnormalEvent checks the observer path end to end with an event
// whose statistics came from a subnormal-heavy block: the attribution
// event round-trips into the same Stat it was built from.
func TestSubnormalEvent(t *testing.T) {
	st := Stat{N: 8, MaxRel: 0, MaxAbs: 4.9e-324, SumSq: 1e-300}
	ev := AttrEvent(1.5, "fwd1", 3, 6e-8, st)
	trk := New()
	trk.Observe(obs.Event{Kind: obs.EventRun, Label: "cell"})
	trk.Observe(ev)
	rep := trk.Snapshot()
	s := rep.Cells[0].Stages[0]
	if s.Label != "fwd1" || s.Values != 8 || s.MaxAbs != st.MaxAbs {
		t.Fatalf("stage = %+v", s)
	}
	// SumSq survives only through RMS²·N; demand agreement to rounding.
	if math.Abs(s.SumSq-st.SumSq) > 1e-12*st.SumSq {
		t.Fatalf("SumSq = %g, want ~%g", s.SumSq, st.SumSq)
	}
	if len(rep.OverBudget()) != 0 {
		t.Fatalf("subnormal block must stay in budget: %v", rep.OverBudget())
	}
}

func TestRetentionCaps(t *testing.T) {
	trk := &Tracker{MaxPairs: 2, MaxSeries: 3}
	trk.StartCell("caps")
	for i := 0; i < 5; i++ {
		trk.Record(float64(i), i, "fwd0", i+1, 1e-3, Stat{N: 1, MaxRel: 1e-4})
	}
	s := trk.Snapshot().Cells[0].Stages[0]
	if len(s.Pairs) != 2 || s.DroppedPairs != 3 {
		t.Fatalf("pairs = %d dropped = %d, want 2/3", len(s.Pairs), s.DroppedPairs)
	}
	if len(s.Series) != 3 || s.SeriesTotal != 5 {
		t.Fatalf("series = %d total = %d, want 3/5", len(s.Series), s.SeriesTotal)
	}
	// The stage aggregate must still count everything.
	if s.Values != 5 {
		t.Fatalf("values = %d, want 5", s.Values)
	}
}

func TestBuildLedgerComposition(t *testing.T) {
	trk := New()
	trk.StartCell("c")
	trk.Record(0, 0, "fwd0", 1, 1e-3, Stat{N: 4, MaxRel: 8e-4, SumSq: 3e-6})
	trk.Record(1, 0, "fwd1", 1, 1e-3, Stat{N: 4, MaxRel: 9e-4, SumSq: 1e-6})
	budgets := []StageBudget{
		{Label: "fwd0", Bound: 1e-3},
		{Label: "fwd1", Bound: 1e-3},
		{Label: "fwd2", Bound: 1e-3}, // budgeted but never measured
	}
	led := BuildLedger(trk.Snapshot().Cells[0], budgets)
	if len(led.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(led.Rows))
	}
	if !led.OK() {
		t.Fatalf("ledger must be in budget: %+v", led.Rows)
	}
	// Cumulative columns compose multiplicatively.
	wantM := (1+8e-4)*(1+9e-4) - 1
	if math.Abs(led.Rows[1].MeasuredCum-wantM) > 1e-15 {
		t.Fatalf("MeasuredCum = %v, want %v", led.Rows[1].MeasuredCum, wantM)
	}
	wantB := math.Pow(1+1e-3, 3) - 1
	if math.Abs(led.Rows[2].BoundCum-wantB) > 1e-15 {
		t.Fatalf("BoundCum = %v, want %v", led.Rows[2].BoundCum, wantB)
	}
	// Share splits by squared error mass.
	if math.Abs(led.Rows[0].Share-0.75) > 1e-12 {
		t.Fatalf("share = %v, want 0.75", led.Rows[0].Share)
	}
	// A measured stage absent from the budget list must be appended, not
	// dropped.
	trk.Record(2, 0, "extra", 1, 0, Stat{N: 1, MaxRel: 1e-9})
	led = BuildLedger(trk.Snapshot().Cells[0], budgets)
	if led.Rows[len(led.Rows)-1].Label != "extra" {
		t.Fatalf("unlisted measured stage dropped: %+v", led.Rows)
	}
	if led.OK() {
		t.Fatal("extra stage measured error above its zero bound must fail")
	}
}

func TestDriftTimeMidpoint(t *testing.T) {
	trk := New()
	trk.StartCell("d")
	// Early half mean 1e-4, late half mean 2e-4 → drift 2. Record in
	// shuffled order to prove order-insensitivity.
	for _, p := range []struct{ t, v float64 }{
		{3, 2e-4}, {0, 1e-4}, {4, 2e-4}, {1, 1e-4},
	} {
		trk.Record(p.t, 0, "fwd0", 1, 1e-3, Stat{N: 1, MaxRel: p.v})
	}
	s := trk.Snapshot().Cells[0].Stages[0]
	if math.Abs(s.Drift-2) > 1e-12 {
		t.Fatalf("drift = %v, want 2", s.Drift)
	}
}

// TestReplayMatchesLive is the parity contract: a tracker fed live by an
// event log and a tracker fed the same events replayed from the JSONL
// sink must snapshot identically.
func TestReplayMatchesLive(t *testing.T) {
	log := obs.NewEventLog(0)
	live := New()
	log.Observe(live.Observe)
	var sink bytes.Buffer
	log.SetSink(&sink)

	log.StartRun("cell-a")
	for i := 0; i < 10; i++ {
		log.Emit(AttrEvent(float64(i), "fwd0", i%3, 1e-3, Stat{N: 2, MaxRel: 1e-4 * float64(i+1), MaxAbs: 1e-6, SumSq: 1e-9}))
	}
	log.StartRun("cell-b")
	log.Emit(AttrEvent(0.5, "fwd1", 0, 1e-3, Stat{N: 1, MaxRel: 2e-4}))
	log.EmitEnd()

	replayed, bad, err := Replay(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("bad lines = %d", bad)
	}
	a, b := live.Snapshot(), replayed.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("live and replayed snapshots differ:\nlive   %+v\nreplay %+v", a, b)
	}
	if a.Verdict() != b.Verdict() {
		t.Fatalf("verdicts differ: %q vs %q", a.Verdict(), b.Verdict())
	}
}

func TestReplayCountsMalformed(t *testing.T) {
	in := strings.NewReader(`{"kind":"run","label":"x"}` + "\n" +
		"not json\n" +
		`{"kind":"error_attribution","label":"fwd0","peer":1,"value":1e-5,"bound":1e-4,"n":1}` + "\n")
	trk, bad, err := Replay(in)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("bad = %d, want 1", bad)
	}
	rep := trk.Snapshot()
	if len(rep.Cells) != 1 || rep.Cells[0].Stages[0].Values != 1 {
		t.Fatalf("replay lost the valid events: %+v", rep)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	trk := New()
	trk.StartCell("rt")
	trk.Record(0, 1, "fwd0", 2, 1e-3, Stat{N: 3, MaxRel: 5e-4, MaxAbs: 1e-6, SumSq: 2e-12})
	rep := trk.Snapshot()
	path := filepath.Join(t.TempDir(), "errtrack.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", rep, got)
	}

	// Schema drift must be rejected.
	bad := rep
	bad.Schema = ReportSchema + 1
	b, _ := json.Marshal(bad)
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badPath); err == nil {
		t.Fatal("wrong schema must not load")
	}
}

func TestNilTrackerInert(t *testing.T) {
	var trk *Tracker
	trk.StartCell("x")
	trk.Record(0, 0, "fwd0", 1, 1e-3, Stat{N: 1})
	trk.Observe(obs.Event{Kind: obs.EventErrAttr})
	rep := trk.Snapshot()
	if len(rep.Cells) != 0 || rep.Verdict() == "" {
		t.Fatalf("nil tracker not inert: %+v", rep)
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	rec := New(Options{Trace: true})
	rk := rec.Rank(0)
	rk.Begin(TrackHost, PhaseExchange, 1.0)
	rk.Begin(TrackHost, PhaseFence, 2.0)
	rk.End(3.0, 10) // closes fence
	rk.End(4.0, 20) // closes exchange
	spans := rec.RankSpans(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans appear in Begin order; the outer span closes after the inner.
	if spans[0].Phase != PhaseExchange || spans[0].Begin != 1.0 || spans[0].End != 4.0 || spans[0].Bytes != 20 {
		t.Errorf("outer span = %+v", spans[0])
	}
	if spans[1].Phase != PhaseFence || spans[1].Begin != 2.0 || spans[1].End != 3.0 || spans[1].Bytes != 10 {
		t.Errorf("inner span = %+v", spans[1])
	}
	if spans[1].Begin < spans[0].Begin || spans[1].End > spans[0].End {
		t.Errorf("inner span not nested in outer: %+v in %+v", spans[1], spans[0])
	}
}

func TestUnmatchedEndIgnored(t *testing.T) {
	rec := New(Options{Trace: true})
	rk := rec.Rank(0)
	rk.End(1.0, 0) // no open span
	if n := len(rec.RankSpans(0)); n != 0 {
		t.Fatalf("unmatched End produced %d spans", n)
	}
}

// TestConcurrentRanks drives many rank handles from separate goroutines
// (as netsim's per-rank goroutines do) and checks that every rank's
// spans survive intact and ordered.
func TestConcurrentRanks(t *testing.T) {
	const ranks, spansPer = 16, 200
	rec := New(Options{Trace: true, Metrics: true})
	var wg sync.WaitGroup
	for id := 0; id < ranks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rk := rec.Rank(id)
			for i := 0; i < spansPer; i++ {
				t0 := float64(i)
				rk.Begin(TrackHost, PhaseExchange, t0)
				rk.Span(TrackGPU, PhaseCompress, t0, t0+0.25, 0)
				rk.End(t0+0.5, int64(i))
				rk.Add("test/count", 1)
			}
		}(id)
	}
	wg.Wait()
	ids := rec.RankIDs()
	if len(ids) != ranks {
		t.Fatalf("got %d ranks, want %d", len(ids), ranks)
	}
	for _, id := range ids {
		spans := rec.RankSpans(id)
		if len(spans) != 2*spansPer {
			t.Fatalf("rank %d: got %d spans, want %d", id, len(spans), 2*spansPer)
		}
		for i := 1; i < len(spans); i++ {
			if spans[i].Begin < spans[i-1].Begin {
				t.Fatalf("rank %d: spans out of begin order at %d", id, i)
			}
		}
	}
	if got := rec.Metrics().Counter("test/count"); got != ranks*spansPer {
		t.Errorf("counter = %d, want %d", got, ranks*spansPer)
	}
}

// TestDisabledZeroAlloc is the hot-path contract: with observability off
// (nil recorder, or tracing disabled) the instrumentation allocates
// nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	rk := nilRec.Rank(3)
	if rk != nil {
		t.Fatal("nil recorder returned a non-nil rank handle")
	}
	if n := testing.AllocsPerRun(100, func() {
		rk.Begin(TrackHost, PhasePack, 1.0)
		rk.End(2.0, 64)
		rk.Span(TrackGPU, PhaseCompress, 1.0, 2.0, 0)
		rk.Add("compress/fwd0/raw_bytes", 64)
		rk.Set("compress/fwd0/error_bound", 1e-8)
		rk.Observe("exchange/flush_stall_s", 0.5)
		nilRec.Wire(WireEvent{Bytes: 64})
	}); n != 0 {
		t.Errorf("nil recorder: %v allocs/op, want 0", n)
	}

	off := New(Options{}) // non-nil but nothing enabled
	rkOff := off.Rank(0)
	if n := testing.AllocsPerRun(100, func() {
		rkOff.Begin(TrackHost, PhasePack, 1.0)
		rkOff.End(2.0, 64)
		rkOff.Span(TrackGPU, PhaseCompress, 1.0, 2.0, 0)
		rkOff.Add("compress/fwd0/raw_bytes", 64)
		off.Wire(WireEvent{Bytes: 64})
	}); n != 0 {
		t.Errorf("disabled recorder: %v allocs/op, want 0", n)
	}
}

func TestSpanCapDrops(t *testing.T) {
	rec := New(Options{Trace: true, SpanCap: 4})
	rk := rec.Rank(0)
	for i := 0; i < 10; i++ {
		rk.Begin(TrackHost, PhasePack, float64(i))
		rk.End(float64(i)+0.5, 0)
	}
	if got := len(rec.RankSpans(0)); got != 4 {
		t.Errorf("kept %d spans, want 4", got)
	}
	if got := rec.DroppedSpans(); got != 6 {
		t.Errorf("dropped %d spans, want 6", got)
	}
	// Nesting must survive a dropped Begin: the matching End is swallowed
	// and the still-open outer span closes correctly afterwards.
	rec2 := New(Options{Trace: true, SpanCap: 1})
	rk2 := rec2.Rank(0)
	rk2.Begin(TrackHost, PhaseExchange, 1.0)
	rk2.Begin(TrackHost, PhaseFence, 2.0) // dropped
	rk2.End(3.0, 0)
	rk2.End(4.0, 0)
	spans := rec2.RankSpans(0)
	if len(spans) != 1 || spans[0].Phase != PhaseExchange || spans[0].End != 4.0 {
		t.Errorf("spans after dropped Begin = %+v", spans)
	}
}

func TestWireCapDrops(t *testing.T) {
	rec := New(Options{Trace: true, WireCap: 3})
	for i := 0; i < 8; i++ {
		rec.Wire(WireEvent{Src: i, Bytes: 10, Kind: "inter"})
	}
	if got := len(rec.WireEvents()); got != 3 {
		t.Errorf("kept %d wire events, want 3", got)
	}
	if got := rec.DroppedWire(); got != 5 {
		t.Errorf("dropped %d wire events, want 5", got)
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := newMetrics()
	m.Add("b", 2)
	m.Add("a", 1)
	m.Add("a", 3)
	m.Set("g", 1.5)
	m.Observe("h", 1)
	m.Observe("h", 3)
	if got := m.Counter("a"); got != 4 {
		t.Errorf("counter a = %d, want 4", got)
	}
	if names := m.CounterNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("counter names = %v", names)
	}
	if v, ok := m.Gauge("g"); !ok || v != 1.5 {
		t.Errorf("gauge g = %v, %v", v, ok)
	}
	h, ok := m.Hist("h")
	if !ok || h.Count != 2 || h.Mean() != 2 || h.Min != 1 || h.Max != 3 {
		t.Errorf("hist h = %+v, %v", h, ok)
	}
}

func TestCompressionStats(t *testing.T) {
	rec := New(Options{Metrics: true})
	rk := rec.Rank(0)
	raw, wire, eb := CompressMetricNames("fwd0")
	rk.Add(raw, 1600)
	rk.Add(wire, 400)
	rk.Set(eb, 1e-7)
	stats := rec.Metrics().CompressionStats()
	if len(stats) != 1 {
		t.Fatalf("got %d stats, want 1", len(stats))
	}
	s := stats[0]
	if s.Label != "fwd0" || s.RawBytes != 1600 || s.WireBytes != 400 || s.ErrorBound != 1e-7 {
		t.Errorf("stat = %+v", s)
	}
	if s.Ratio() != 4 {
		t.Errorf("ratio = %v, want 4", s.Ratio())
	}
}

func TestPhaseBreakdown(t *testing.T) {
	rec := New(Options{Trace: true})
	for id := 0; id < 2; id++ {
		rk := rec.Rank(id)
		rk.Begin(TrackHost, PhasePack, 0)
		rk.End(1, 100)
		rk.Begin(TrackHost, PhaseExchange, 1)
		// Nested detail must not count toward the breakdown sum.
		rk.Span(TrackHost, PhaseFence, 2.5, 3, 0)
		rk.End(3, 200)
		rk.Begin(TrackHost, PhaseFFT, 3)
		rk.End(4, 0)
		// GPU-track spans are excluded from the host breakdown too.
		rk.Span(TrackGPU, PhaseCompress, 0, 4, 0)
	}
	b := rec.PhaseBreakdown()
	if b.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2", b.Ranks)
	}
	if b.Wall != 4 {
		t.Errorf("wall = %v, want 4", b.Wall)
	}
	if got := b.Sum(); got != 4 {
		t.Errorf("sum = %v, want 4 (pack 1 + exchange 2 + fft 1)", got)
	}
	if c := b.Coverage(); c != 1 {
		t.Errorf("coverage = %v, want 1", c)
	}
	var sb strings.Builder
	rec.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"phase breakdown", "pack", "exchange", "fft", "wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome-trace thread ids of one rank's tracks. Wire transfers are
// rendered on a third per-rank track at the source rank, so application
// spans and the transfers they caused line up on one timeline.
const (
	tidHost = 0
	tidGPU  = 1
	tidWire = 2
)

// chromeEvent is one entry of the Trace Event Format (the JSON consumed
// by chrome://tracing and Perfetto). Only complete ("X") and metadata
// ("M") events are emitted; timestamps are virtual microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the recording in Chrome Trace Event
// Format: one process per rank with "host", "gpu", and "wire" threads.
// Output is deterministic (events sorted by time, then rank/track) so
// traces diff cleanly across runs.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	var ranks []int
	if r != nil {
		r.mu.Lock()
		for id, rk := range r.ranks {
			if rk == nil || len(rk.spans) == 0 {
				continue
			}
			ranks = append(ranks, id)
			for _, s := range rk.spans {
				end := s.End
				if end < s.Begin {
					end = s.Begin // still-open span: render as instant
				}
				ev := chromeEvent{
					Name: s.Phase.String(),
					Cat:  trackName(s.Track),
					Ph:   "X",
					Ts:   s.Begin * 1e6,
					Dur:  (end - s.Begin) * 1e6,
					Pid:  id,
					Tid:  tidHost,
				}
				if s.Track == TrackGPU {
					ev.Tid = tidGPU
				}
				if s.Bytes != 0 {
					ev.Args = map[string]any{"bytes": s.Bytes}
				}
				events = append(events, ev)
			}
		}
		wireRanks := make(map[int]bool)
		for _, ev := range r.wire {
			wireRanks[ev.Src] = true
			events = append(events, chromeEvent{
				Name: ev.Kind,
				Cat:  "wire",
				Ph:   "X",
				Ts:   ev.Injected * 1e6,
				Dur:  (ev.End - ev.Injected) * 1e6,
				Pid:  ev.Src,
				Tid:  tidWire,
				Args: map[string]any{
					"bytes": ev.Bytes, "dst": ev.Dst, "tag": ev.Tag,
					"src_node": ev.SrcNode, "dst_node": ev.DstNode,
					"arrival_us": ev.Arrival * 1e6,
					"start_us":   ev.Start * 1e6, "ser_us": ev.Ser * 1e6,
				},
			})
		}
		for id := range wireRanks {
			if !containsInt(ranks, id) {
				ranks = append(ranks, id)
			}
		}
		r.mu.Unlock()
	}
	sort.Ints(ranks)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Tid < b.Tid
	})

	// Metadata first: process and thread names per rank.
	meta := make([]chromeEvent, 0, 4*len(ranks))
	for _, id := range ranks {
		meta = append(meta,
			chromeEvent{Name: "process_name", Ph: "M", Pid: id, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", id)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: id, Tid: tidHost,
				Args: map[string]any{"name": "host"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: id, Tid: tidGPU,
				Args: map[string]any{"name": "gpu"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: id, Tid: tidWire,
				Args: map[string]any{"name": "wire"}},
		)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\","); err != nil {
		return err
	}
	// The machine description rides along as a custom top-level key
	// (ignored by chrome://tracing, read back by the analyze loader) so a
	// saved trace carries the capacities utilization is measured against.
	if r != nil {
		if m := r.Machine(); m.Nodes > 0 {
			b, err := json.Marshal(m)
			if err != nil {
				return err
			}
			if _, err := bw.WriteString("\"machine\":" + string(b) + ","); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	writeEv := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	for _, ev := range meta {
		if err := writeEv(ev); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := writeEv(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func trackName(t Track) string {
	if t == TrackGPU {
		return "gpu"
	}
	return "host"
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics export: the registry's slash-scoped names are mapped onto
// Prometheus/OpenMetrics families mechanically, so every metric any
// layer registers is scrapeable without an export table:
//
//   - names with three or more segments, "a/<mid...>/z", become family
//     "fft_a_z" with the middle segments as a label {label="<mid...>"}
//     — e.g. compress/fwd0/raw_bytes → fft_compress_raw_bytes{label="fwd0"};
//   - shorter names join with underscores: mpi/puts → fft_mpi_puts;
//   - a trailing "_s" unit becomes "_seconds";
//   - counters expose the sample "<family>_total"; histograms export as
//     summaries (quantile 0.5/0.95/0.99 series plus _sum and _count).
//
// Segment characters outside [a-zA-Z0-9_] are replaced with "_" in the
// family name; label values are emitted verbatim (escaped).

// Label is one name="value" pair on a series.
type Label struct{ Name, Value string }

// Series is one sample line of a family: an optional sample-name suffix
// ("_total", "_sum", "_count" or none), its labels, and the value.
type Series struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one OpenMetrics metric family.
type Family struct {
	Name   string // mangled family name, e.g. "fft_exchange_time_seconds"
	Type   string // "counter", "gauge", or "summary"
	Series []Series
}

// openMetricsName maps a registry name onto (family, label-value); the
// label value is empty for names with fewer than three segments.
func openMetricsName(raw string) (fam, label string) {
	parts := strings.Split(raw, "/")
	if len(parts) >= 3 {
		label = strings.Join(parts[1:len(parts)-1], "/")
		fam = sanitizeMetricPart(parts[0]) + "_" + sanitizeMetricPart(parts[len(parts)-1])
	} else {
		fam = sanitizeMetricPart(strings.Join(parts, "_"))
	}
	fam = "fft_" + fam
	if strings.HasSuffix(fam, "_s") {
		fam = strings.TrimSuffix(fam, "_s") + "_seconds"
	}
	return fam, label
}

func sanitizeMetricPart(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func labelFor(value string) []Label {
	if value == "" {
		return nil
	}
	return []Label{{Name: "label", Value: value}}
}

// OpenMetricsFamilies converts the snapshot into metric families using
// the mechanical name mapping above. Families and series come out
// sorted, so the exposition is deterministic.
func (s Snapshot) OpenMetricsFamilies() []Family {
	byName := map[string]*Family{}
	var add func(name, typ string, series ...Series)
	add = func(name, typ string, series ...Series) {
		f := byName[name]
		if f == nil {
			f = &Family{Name: name, Type: typ}
			byName[name] = f
		} else if f.Type != typ {
			// A registry name that mangles onto an existing family of a
			// different kind; disambiguate by appending the kind.
			add(name+"_"+typ, typ, series...)
			return
		}
		f.Series = append(f.Series, series...)
	}
	for _, raw := range s.CounterNames() {
		fam, label := openMetricsName(raw)
		fam = strings.TrimSuffix(fam, "_total")
		add(fam, "counter", Series{Suffix: "_total", Labels: labelFor(label), Value: float64(s.Counters[raw])})
	}
	for _, raw := range s.GaugeNames() {
		fam, label := openMetricsName(raw)
		add(fam, "gauge", Series{Labels: labelFor(label), Value: s.Gauges[raw]})
	}
	for _, raw := range s.HistNames() {
		fam, label := openMetricsName(raw)
		h := s.Hists[raw]
		ls := labelFor(label)
		q := func(qv string, v float64) Series {
			qls := append(append([]Label{}, ls...), Label{Name: "quantile", Value: qv})
			return Series{Labels: qls, Value: v}
		}
		add(fam, "summary",
			q("0.5", h.P50), q("0.95", h.P95), q("0.99", h.P99),
			Series{Suffix: "_sum", Labels: ls, Value: h.Sum},
			Series{Suffix: "_count", Labels: ls, Value: float64(h.Count)},
		)
	}
	out := make([]Family, 0, len(byName))
	for _, f := range byName {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteOpenMetrics writes the families as an OpenMetrics text
// exposition, merging the given groups (same-name same-type families
// concatenate their series) and terminating with the mandatory "# EOF".
func WriteOpenMetrics(w io.Writer, groups ...[]Family) error {
	byName := map[string]*Family{}
	var order []string
	for _, fams := range groups {
		for _, f := range fams {
			g := byName[f.Name]
			if g == nil {
				cp := f
				cp.Series = append([]Series(nil), f.Series...)
				byName[f.Name] = &cp
				order = append(order, f.Name)
				continue
			}
			if g.Type == f.Type {
				g.Series = append(g.Series, f.Series...)
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		series := append([]Series(nil), f.Series...)
		sort.SliceStable(series, func(i, j int) bool {
			li, lj := labelString(series[i].Labels), labelString(series[j].Labels)
			if li != lj {
				return li < lj
			}
			return series[i].Suffix < series[j].Suffix
		})
		for _, sr := range series {
			val := strconv.FormatFloat(sr.Value, 'g', -1, 64)
			if sr.Suffix == "_count" || (f.Type == "counter" && sr.Value == float64(int64(sr.Value))) {
				val = strconv.FormatInt(int64(sr.Value), 10)
			}
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.Name, sr.Suffix, labelString(sr.Labels), val); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func labelString(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// OMSample is one parsed sample line of an OpenMetrics exposition.
type OMSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's "label" label (the registry's middle
// segments), empty when absent.
func (s OMSample) Label() string { return s.Labels["label"] }

// ParseOpenMetrics parses and lints a text exposition: it enforces the
// structural rules we rely on (every sample preceded by its family's
// "# TYPE" line, family blocks contiguous, counters sampled as
// "<family>_total", no duplicate series, a final "# EOF") and returns
// the samples. This is the validation behind `obswatch -lint` and the
// scrape tests; it is a strict subset of the OpenMetrics spec, not a
// general parser.
func ParseOpenMetrics(data []byte) ([]OMSample, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		return nil, fmt.Errorf("openmetrics: missing final %q line", "# EOF")
	}
	declared := map[string]string{} // family -> type
	seen := map[string]bool{}       // name+labels -> true
	var samples []OMSample
	current := ""
	for ln, line := range lines {
		lineNo := ln + 1
		switch {
		case line == "# EOF":
			if lineNo != len(lines) {
				return nil, fmt.Errorf("openmetrics:%d: %q before end of exposition", lineNo, "# EOF")
			}
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("openmetrics:%d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !validMetricName(name) {
				return nil, fmt.Errorf("openmetrics:%d: invalid family name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "unknown", "info", "stateset":
			default:
				return nil, fmt.Errorf("openmetrics:%d: unknown family type %q", lineNo, typ)
			}
			if _, dup := declared[name]; dup {
				return nil, fmt.Errorf("openmetrics:%d: family %q declared twice", lineNo, name)
			}
			declared[name] = typ
			current = name
			continue
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# UNIT "):
			continue
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("openmetrics:%d: unrecognized comment line %q", lineNo, line)
		case line == "":
			return nil, fmt.Errorf("openmetrics:%d: blank line inside exposition", lineNo)
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("openmetrics:%d: %v", lineNo, err)
		}
		if current == "" || !sampleInFamily(s.Name, current, declared[current]) {
			fam, ok := owningFamily(s.Name, declared)
			switch {
			case !ok:
				return nil, fmt.Errorf("openmetrics:%d: sample %q has no preceding TYPE line", lineNo, s.Name)
			case fam != current:
				return nil, fmt.Errorf("openmetrics:%d: sample %q outside its family block %q", lineNo, s.Name, fam)
			default:
				return nil, fmt.Errorf("openmetrics:%d: sample %q has invalid suffix for %s family %q", lineNo, s.Name, declared[current], current)
			}
		}
		key := s.Name + labelKey(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("openmetrics:%d: duplicate series %q", lineNo, key)
		}
		seen[key] = true
		samples = append(samples, s)
	}
	return samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// sampleInFamily reports whether sample name belongs to the family
// given its declared type (counter samples must use _total, summaries
// may add _sum/_count, histograms _bucket/_sum/_count).
func sampleInFamily(name, fam, typ string) bool {
	if !strings.HasPrefix(name, fam) {
		return false
	}
	suffix := name[len(fam):]
	switch typ {
	case "counter":
		return suffix == "_total" || suffix == "_created"
	case "summary":
		return suffix == "" || suffix == "_sum" || suffix == "_count" || suffix == "_created"
	case "histogram":
		return suffix == "_bucket" || suffix == "_sum" || suffix == "_count" || suffix == "_created"
	default:
		return suffix == ""
	}
}

// owningFamily finds the declared family a sample name belongs to.
func owningFamily(name string, declared map[string]string) (string, bool) {
	for fam, typ := range declared {
		if sampleInFamily(name, fam, typ) {
			return fam, true
		}
	}
	return "", false
}

func parseSampleLine(line string) (OMSample, error) {
	var s OMSample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == '"' { // skip quoted values (with escapes)
				for j++; j < len(rest); j++ {
					if rest[j] == '\\' {
						j++
					} else if rest[j] == '"' {
						break
					}
				}
				continue
			}
			if rest[j] == '}' {
				end = j
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		if !validMetricName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		var b strings.Builder
		j := 1
		for ; j < len(body); j++ {
			if body[j] == '\\' && j+1 < len(body) {
				j++
				switch body[j] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(body[j])
				}
				continue
			}
			if body[j] == '"' {
				break
			}
			b.WriteByte(body[j])
		}
		if j >= len(body) {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = b.String()
		body = body[j+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return nil, fmt.Errorf("malformed label separator in %q", body)
			}
			body = body[1:]
		}
	}
	return labels, nil
}

func labelKey(ls map[string]string) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(ls[k])
	}
	return b.String()
}

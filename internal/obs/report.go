package obs

import (
	"fmt"
	"io"
)

// PhaseStat aggregates one pipeline phase across ranks.
type PhaseStat struct {
	Phase Phase
	// Mean and Max are per-rank total durations (seconds).
	Mean, Max float64
	// Bytes is the payload attributed to the phase, summed over ranks.
	Bytes int64
	// Count is the number of spans, summed over ranks.
	Count int64
}

// Breakdown is the per-phase decomposition of a recording.
type Breakdown struct {
	Phases []PhaseStat
	// Wall is the recording's host-timeline extent:
	// max span end − min span begin over all ranks.
	Wall float64
	// Ranks is the number of ranks that recorded host spans.
	Ranks int
}

// Sum returns the mean per-rank durations summed over phases — the
// quantity that should come within a few percent of Wall when the
// pipeline phases tile each rank's timeline.
func (b Breakdown) Sum() float64 {
	var s float64
	for _, p := range b.Phases {
		s += p.Mean
	}
	return s
}

// Coverage returns Sum()/Wall (0 when no time elapsed).
func (b Breakdown) Coverage() float64 {
	if b.Wall <= 0 {
		return 0
	}
	return b.Sum() / b.Wall
}

// PhaseBreakdown aggregates the five top-level pipeline phases over all
// ranks' host spans. Nested detail spans (fence, flush, compress, ...)
// are excluded so the sum does not double-count.
func (r *Recorder) PhaseBreakdown() Breakdown {
	var b Breakdown
	if r == nil {
		return b
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var totals [numPhases]struct {
		sum, max float64
		bytes    int64
		count    int64
	}
	begin, end := 0.0, 0.0
	seenSpan := false
	for _, rk := range r.ranks {
		if rk == nil || len(rk.spans) == 0 {
			continue
		}
		var perRank [numPhases]float64
		rankHasHost := false
		for _, s := range rk.spans {
			if s.Track != TrackHost || s.End < s.Begin {
				continue
			}
			rankHasHost = true
			if !seenSpan || s.Begin < begin {
				begin = s.Begin
			}
			if !seenSpan || s.End > end {
				end = s.End
			}
			seenSpan = true
			if !s.Phase.Pipeline() {
				continue
			}
			perRank[s.Phase] += s.End - s.Begin
			totals[s.Phase].bytes += s.Bytes
			totals[s.Phase].count++
		}
		if !rankHasHost {
			continue
		}
		b.Ranks++
		for ph := range perRank {
			totals[ph].sum += perRank[ph]
			if perRank[ph] > totals[ph].max {
				totals[ph].max = perRank[ph]
			}
		}
	}
	if b.Ranks == 0 {
		return b
	}
	b.Wall = end - begin
	for _, ph := range PipelinePhases {
		t := totals[ph]
		if t.count == 0 && t.sum == 0 {
			continue
		}
		b.Phases = append(b.Phases, PhaseStat{
			Phase: ph,
			Mean:  t.sum / float64(b.Ranks),
			Max:   t.max,
			Bytes: t.bytes,
			Count: t.count,
		})
	}
	return b
}

// WriteReport prints the human-readable observability report: the phase
// breakdown table, achieved compression per labelled exchange, recording
// health (drops), and the raw metric registry.
func (r *Recorder) WriteReport(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "obs: recording disabled")
		return
	}
	b := r.PhaseBreakdown()
	if b.Ranks > 0 {
		fmt.Fprintf(w, "phase breakdown (%d ranks, host timeline)\n", b.Ranks)
		fmt.Fprintf(w, "  %-10s %12s %12s %8s %14s\n", "phase", "mean/rank", "max/rank", "share", "bytes")
		for _, p := range b.Phases {
			share := 0.0
			if b.Wall > 0 {
				share = p.Mean / b.Wall
			}
			fmt.Fprintf(w, "  %-10s %10.3fms %10.3fms %7.1f%% %14d\n",
				p.Phase, p.Mean*1e3, p.Max*1e3, 100*share, p.Bytes)
		}
		fmt.Fprintf(w, "  %-10s %10.3fms\n", "sum", b.Sum()*1e3)
		fmt.Fprintf(w, "  %-10s %10.3fms  (phases cover %.1f%% of wall)\n",
			"wall", b.Wall*1e3, 100*b.Coverage())
	}

	// One lock round-trip for the whole registry: related values (raw
	// vs. wire bytes) stay consistent even while a run is mutating it.
	snap := r.metrics.Snapshot()
	if stats := snap.CompressionStats(); len(stats) > 0 {
		fmt.Fprintln(w, "achieved compression")
		for _, s := range stats {
			fmt.Fprintf(w, "  %-12s %8.2fx  (%d -> %d bytes, error bound %.2e)\n",
				s.Label, s.Ratio(), s.RawBytes, s.WireBytes, s.ErrorBound)
		}
	}

	if d := r.DroppedSpans() + r.DroppedWire(); d > 0 {
		fmt.Fprintf(w, "recording drops: %d spans, %d wire events\n",
			r.DroppedSpans(), r.DroppedWire())
	}

	if r.metrics == nil {
		return
	}
	if names := snap.CounterNames(); len(names) > 0 {
		fmt.Fprintln(w, "counters")
		for _, n := range names {
			fmt.Fprintf(w, "  %-40s %d\n", n, snap.Counters[n])
		}
	}
	if names := snap.GaugeNames(); len(names) > 0 {
		fmt.Fprintln(w, "gauges")
		for _, n := range names {
			fmt.Fprintf(w, "  %-40s %g\n", n, snap.Gauges[n])
		}
	}
	if names := snap.HistNames(); len(names) > 0 {
		fmt.Fprintln(w, "histograms")
		for _, n := range names {
			h := snap.Hists[n]
			fmt.Fprintf(w, "  %-40s n=%d mean=%.3g min=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g\n",
				n, h.Count, h.Mean(), h.Min, h.P50, h.P95, h.P99, h.Max)
		}
	}
}

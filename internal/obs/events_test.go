package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEventLogRingAndDrops(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 7; i++ {
		l.Emit(Event{T: float64(i), Kind: EventFault, Peer: -1})
	}
	if got := l.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if got := l.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first: the survivors are T=3..6.
	for i, ev := range evs {
		if ev.T != float64(3+i) {
			t.Fatalf("event %d has T=%g, want %g", i, ev.T, float64(3+i))
		}
	}
	if got := l.Counts()[EventFault]; got != 7 {
		t.Fatalf("Counts[fault] = %d, want 7 (drops must still count)", got)
	}
}

func TestEventLogRunMarkers(t *testing.T) {
	l := NewEventLog(16)
	l.StartRun("cell-a")
	l.Emit(Event{Kind: EventRepair, Peer: 2})
	l.StartRun("cell-b")
	l.Emit(Event{Kind: EventRepair, Peer: 3})
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != EventRun || evs[0].Label != "cell-a" || evs[0].Run != 1 {
		t.Fatalf("first marker wrong: %+v", evs[0])
	}
	if evs[1].Run != 1 {
		t.Fatalf("cell-a event has run %d, want 1", evs[1].Run)
	}
	if evs[2].Kind != EventRun || evs[2].Run != 2 || evs[3].Run != 2 {
		t.Fatalf("cell-b run stamping wrong: %+v %+v", evs[2], evs[3])
	}
}

func TestEventLogSinkJSONL(t *testing.T) {
	l := NewEventLog(8)
	var buf strings.Builder
	l.SetSink(&buf)
	l.Emit(Event{T: 1.5, Rank: 2, Kind: EventError, Label: "fwd0", Peer: -1, Value: 1e-8, Bound: 1e-7})
	l.Emit(Event{T: 2.0, Rank: 0, Kind: EventFault, Label: "stall", Peer: 3, Value: 1e-6})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Kind != EventError || ev.Label != "fwd0" || ev.Bound != 1e-7 {
		t.Fatalf("round-tripped event wrong: %+v", ev)
	}
	// Optional fields must be omitted when zero.
	if strings.Contains(lines[1], "bound") || strings.Contains(lines[1], "msg") {
		t.Fatalf("zero optional fields serialized: %s", lines[1])
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestEventLogSinkErrorRemembered(t *testing.T) {
	l := NewEventLog(8)
	l.SetSink(&failWriter{after: 1})
	l.Emit(Event{Kind: EventFault})
	if err := l.SinkErr(); err != nil {
		t.Fatalf("unexpected early sink error: %v", err)
	}
	l.Emit(Event{Kind: EventFault})
	if err := l.SinkErr(); err == nil {
		t.Fatal("sink error not remembered")
	}
	// Further emits still land in the ring.
	l.Emit(Event{Kind: EventFault})
	if got := l.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
}

func TestEventLogObservers(t *testing.T) {
	l := NewEventLog(8)
	var seen []Event
	l.Observe(func(ev Event) {
		seen = append(seen, ev)
		// Observers may Emit (the SLO engine emits breach events); this
		// must not deadlock. Guard against infinite recursion.
		if ev.Kind == EventFault {
			l.Emit(Event{Kind: EventBreach, Label: "from-observer"})
		}
	})
	l.Emit(Event{Kind: EventFault})
	if len(seen) != 2 || seen[1].Kind != EventBreach {
		t.Fatalf("observer fan-out wrong: %+v", seen)
	}
	if got := l.Counts()[EventBreach]; got != 1 {
		t.Fatalf("breach count = %d, want 1", got)
	}
}

// TestEventLogConcurrentEmitters pins the drop-accounting contract under
// contention (run under -race in the verify tier): with many goroutines
// emitting at once into a small ring, no event may be lost from the
// books — Total counts every emission, Dropped is exactly the overflow,
// sequence numbers stay unique and contiguous, observers see every
// event, and the retained ring holds precisely the newest cap events.
func TestEventLogConcurrentEmitters(t *testing.T) {
	const emitters = 8
	const perEmitter = 400
	const ring = 64
	l := NewEventLog(ring)
	var observed atomic.Int64
	l.Observe(func(Event) { observed.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				l.Emit(Event{Kind: EventErrAttr, Rank: g, Peer: i % 4, Value: 1e-5})
			}
		}(g)
	}
	wg.Wait()
	l.EmitEnd()

	const total = emitters*perEmitter + 1 // + the end marker
	if got := l.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	if got := l.Dropped(); got != total-ring {
		t.Fatalf("Dropped = %d, want %d", got, total-ring)
	}
	if got := observed.Load(); got != total {
		t.Fatalf("observer saw %d events, want %d", got, total)
	}
	evs := l.Events()
	if len(evs) != ring {
		t.Fatalf("retained %d events, want %d", len(evs), ring)
	}
	// The survivors are the newest ring events: seqs total-ring+1..total,
	// strictly increasing, ending at the run_end marker.
	for i, ev := range evs {
		if want := int64(total - ring + 1 + i); ev.Seq != want {
			t.Fatalf("retained event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	last := evs[len(evs)-1]
	if last.Kind != EventEnd || last.Value != float64(total) {
		t.Fatalf("stream does not end with a consistent run_end marker: %+v", last)
	}
	if got := l.Counts()[EventErrAttr]; got != emitters*perEmitter {
		t.Fatalf("Counts[%s] = %d, want %d (drops must still count)", EventErrAttr, got, emitters*perEmitter)
	}
}

func TestEventLogNil(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Kind: EventFault})
	l.StartRun("x")
	l.Observe(func(Event) {})
	l.SetSink(nil)
	if l.Events() != nil || l.Total() != 0 || l.Dropped() != 0 || l.Counts() != nil || l.SinkErr() != nil {
		t.Fatal("nil EventLog must be inert")
	}
}

package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportNilRecorder: a nil recorder reports itself disabled instead
// of panicking or printing an empty table.
func TestReportNilRecorder(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	rec.WriteReport(&buf)
	if got := buf.String(); !strings.Contains(got, "recording disabled") {
		t.Errorf("nil recorder report = %q, want a disabled notice", got)
	}
	if b := rec.PhaseBreakdown(); b.Ranks != 0 || len(b.Phases) != 0 {
		t.Errorf("nil recorder breakdown = %+v, want zero", b)
	}
}

// TestReportEmptyRecorder: an enabled recorder with no spans produces a
// breakdown with zero ranks and a report without a phase table.
func TestReportEmptyRecorder(t *testing.T) {
	rec := New(Options{Trace: true, Metrics: true})
	b := rec.PhaseBreakdown()
	if b.Ranks != 0 || b.Wall != 0 || len(b.Phases) != 0 {
		t.Errorf("empty breakdown = %+v, want zero", b)
	}
	if c := b.Coverage(); c != 0 {
		t.Errorf("empty coverage = %v, want 0", c)
	}
	var buf bytes.Buffer
	rec.WriteReport(&buf)
	if strings.Contains(buf.String(), "phase breakdown") {
		t.Errorf("empty recorder printed a phase table:\n%s", buf.String())
	}
}

// TestReportZeroCoverage: host spans exist but none are pipeline phases,
// so the wall is positive while the phase sum (and coverage) is zero.
func TestReportZeroCoverage(t *testing.T) {
	rec := New(Options{Trace: true})
	rk := rec.Rank(0)
	rk.Span(TrackHost, PhaseFence, 0, 0.002, 0)
	b := rec.PhaseBreakdown()
	if b.Ranks != 1 {
		t.Fatalf("ranks = %d, want 1", b.Ranks)
	}
	if b.Wall != 0.002 {
		t.Errorf("wall = %v, want 0.002", b.Wall)
	}
	if s := b.Sum(); s != 0 {
		t.Errorf("pipeline sum = %v, want 0 (only nested phases recorded)", s)
	}
	if c := b.Coverage(); c != 0 {
		t.Errorf("coverage = %v, want 0", c)
	}
}

// TestReportGolden pins the full text report — table layout, quantile
// columns, compression and drop lines — against a golden file
// (regenerate with -update).
func TestReportGolden(t *testing.T) {
	rec := New(Options{Trace: true, Metrics: true, SpanCap: 4})
	r0 := rec.Rank(0)
	r0.Span(TrackHost, PhasePack, 0, 0.001, 4096)
	r0.Span(TrackHost, PhaseExchange, 0.001, 0.004, 8192)
	r0.Span(TrackHost, PhaseFFT, 0.004, 0.006, 0)
	r1 := rec.Rank(1)
	r1.Span(TrackHost, PhasePack, 0, 0.002, 4096)
	r1.Span(TrackHost, PhaseExchange, 0.002, 0.006, 8192)
	r1.Span(TrackHost, PhaseFFT, 0.006, 0.0065, 0)
	r1.Span(TrackHost, PhaseScale, 0.0065, 0.007, 0)
	r1.Span(TrackHost, PhaseUnpack, 0.007, 0.0075, 0) // 5th span on rank 1: dropped by SpanCap 4

	m := rec.Metrics()
	m.Add("compress/fwd0/raw_bytes", 1<<20)
	m.Add("compress/fwd0/wire_bytes", 1<<19)
	m.Set("compress/fwd0/error_bound", 6e-8)
	m.Add("mpi/puts", 42)
	m.Set("exchange/fwd0/overlap_efficiency", 0.75)
	for i := 1; i <= 100; i++ {
		m.Observe("exchange/fwd0/time_s", float64(i)*1e-4)
	}

	var buf bytes.Buffer
	rec.WriteReport(&buf)

	golden := filepath.Join("testdata", "report.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report differs from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestHistQuantiles checks the power-of-two-bucket quantile estimates:
// resolution is a factor of √2, so assert bucket-level agreement.
func TestHistQuantiles(t *testing.T) {
	rec := New(Options{Metrics: true})
	m := rec.Metrics()
	// 98 samples at 1.0 and two at 1000: p50/p95 sit in the 1.0 bucket,
	// p99 (nearest-rank: the 99th of 100) lands on the outliers' bucket.
	for i := 0; i < 98; i++ {
		m.Observe("h", 1.0)
	}
	m.Observe("h", 1000.0)
	m.Observe("h", 1000.0)
	h, ok := m.Hist("h")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.P50 < 1.0/1.5 || h.P50 > 1.5 {
		t.Errorf("p50 = %v, want ~1.0", h.P50)
	}
	if h.P95 < 1.0/1.5 || h.P95 > 1.5 {
		t.Errorf("p95 = %v, want ~1.0", h.P95)
	}
	if h.P99 < 500 || h.P99 > 1000 {
		t.Errorf("p99 = %v, want in the outlier bucket (clamped to max 1000)", h.P99)
	}
	if h.Min != 1.0 || h.Max != 1000.0 {
		t.Errorf("min/max = %v/%v, want 1/1000", h.Min, h.Max)
	}

	// Single sample: all quantiles collapse onto it.
	m.Observe("one", 0.25)
	one, _ := m.Hist("one")
	if one.P50 != 0.25 || one.P95 != 0.25 || one.P99 != 0.25 {
		t.Errorf("single-sample quantiles = %v/%v/%v, want 0.25", one.P50, one.P95, one.P99)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a small deterministic recording: two ranks, host
// and GPU spans, one wire transfer, one still-open span.
func goldenRecorder() *Recorder {
	rec := New(Options{Trace: true})
	r0 := rec.Rank(0)
	r0.Begin(TrackHost, PhasePack, 0)
	r0.End(0.001, 4096)
	r0.Begin(TrackHost, PhaseExchange, 0.001)
	r0.Span(TrackHost, PhaseFence, 0.003, 0.004, 0)
	r0.End(0.004, 8192)
	r0.Span(TrackGPU, PhaseCompress, 0.0005, 0.0015, 0)

	r1 := rec.Rank(1)
	r1.Begin(TrackHost, PhaseFFT, 0.002)
	r1.End(0.0035, 0)
	r1.Begin(TrackHost, PhaseUnpack, 0.004) // left open on purpose

	rec.Wire(WireEvent{Src: 0, Dst: 1, Tag: 7, Bytes: 1024, Kind: "inter",
		Injected: 0.0015, End: 0.002, Arrival: 0.0025})
	return rec
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceValid checks structural invariants independent of the
// golden bytes: parseable JSON, metadata before data, sane events.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var sawData bool
	names := map[string]bool{}
	var lastTs float64
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if sawData {
				t.Error("metadata event after data events")
			}
		case "X":
			sawData = true
			names[ev.Name] = true
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
			if ev.Ts < lastTs {
				t.Errorf("events not time-sorted: %v after %v", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		default:
			t.Errorf("unexpected event type %q", ev.Ph)
		}
	}
	for _, want := range []string{"pack", "exchange", "fence", "compress", "fft", "unpack", "inter"} {
		if !names[want] {
			t.Errorf("trace missing %q event", want)
		}
	}
}

func TestChromeTraceNilRecorder(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil recorder trace is invalid JSON: %v", err)
	}
}

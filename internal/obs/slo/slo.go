// Package slo evaluates declarative service-level objectives against
// the live telemetry event stream. Objectives watch sliding windows of
// virtual time (the simulator's timeline, so evaluation is deterministic
// and free of wall-clock jitter): ratio objectives track the fraction of
// bad observations against an error budget (p99-style latency targets,
// achieved compression error vs. the configured bound), rate objectives
// track event counts against a ceiling (repairs, fallbacks, transport
// faults). Each objective's burn rate is budget consumption per unit
// budget — above 1.0 the objective is out of budget and a breach event
// is emitted into the log (kind "slo_breach") plus counted in the
// exported slo_breach_total counter.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Objective kinds. Ratio kinds classify matching observations as
// good/bad; rate kinds count matching events outright.
const (
	KindLatency  = "latency"  // exchange duration events; bad when Value > Target
	KindError    = "error"    // achieved-error events; bad when Value > Target (or BoundMultiple·Bound)
	KindRepair   = "repair"   // healer repair rounds
	KindFallback = "fallback" // peers escalated to lossless fallback
	KindFault    = "fault"    // injected/detected transport faults
	// KindBudgetShare caps one stage's share of the accumulated squared
	// compression error: it consumes error_attribution events, sums each
	// block's squared error (rms²·n), and burns at share/Target where
	// share is the Label stage's fraction of the window total. "reshape 2
	// consumes ≤40% of the error budget" is {label: "fwd2", target: 0.4}.
	KindBudgetShare = "budget_share"
	// KindRecovery counts crash-recovery transitions (event kind
	// "recovery"); restrict with Label to a single transition ("rollback",
	// "give_up", ...). "at most 2 rollbacks per run" is {kind: "recovery",
	// label: "rollback", max_count: 2}.
	KindRecovery = "recovery"
	// KindDrift watches achieved error drifting over epochs: it consumes
	// per-epoch achieved-error events and burns at ratio/Target, where
	// ratio is the late half of the window's mean error over the early
	// half's (split at the virtual-time midpoint, so evaluation does not
	// depend on observation order). target 2 tolerates a 2× drift.
	KindDrift = "drift"
	// KindShrink counts elastic-shrink arcs (recovery events labeled
	// "shrink_verdict" — permanent rank loss absorbed by re-decomposing
	// onto the survivors); restrict with Label to another shrink
	// transition ("shrink_agree", "replan", "migrate"). "never run
	// degraded" is {kind: "shrink", max_count: 0}.
	KindShrink = "shrink"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in breach events and the exposition.
	Name string `json:"name"`
	// Kind selects the event stream and semantics (Kind* constants).
	Kind string `json:"kind"`
	// Label restricts matching to events with this label (e.g. a reshape
	// "fwd0"); empty matches every label.
	Label string `json:"label,omitempty"`
	// Target is the ratio kinds' threshold: a latency in seconds, or an
	// absolute error. For KindError a zero Target defers to
	// BoundMultiple.
	Target float64 `json:"target,omitempty"`
	// BoundMultiple expresses an error target relative to the bound the
	// event carries: bad when Value > BoundMultiple·Bound. The paper's
	// contract is Value ≤ Bound, so 1.0 objectifies the bound itself.
	BoundMultiple float64 `json:"bound_multiple,omitempty"`
	// WindowS is the sliding window extent in virtual seconds (0 means
	// the whole run).
	WindowS float64 `json:"window_s,omitempty"`
	// Budget is the ratio kinds' error budget: the tolerated bad
	// fraction within the window (0.01 ≈ "p99 under target"). A zero
	// budget tolerates no bad observations.
	Budget float64 `json:"budget,omitempty"`
	// MaxCount is the rate kinds' ceiling: matching events tolerated
	// within the window. Zero tolerates none.
	MaxCount int64 `json:"max_count,omitempty"`
	// MinSamples suppresses ratio evaluation until the window holds this
	// many observations (avoids declaring a breach off one sample).
	MinSamples int64 `json:"min_samples,omitempty"`
}

func (o *Objective) ratio() bool { return o.Kind == KindLatency || o.Kind == KindError }

// eventKind maps the objective kind onto the event kind it consumes.
func (o *Objective) eventKind() string {
	switch o.Kind {
	case KindLatency:
		return obs.EventExchange
	case KindError:
		return obs.EventError
	case KindRepair:
		return obs.EventRepair
	case KindFallback:
		return obs.EventFallback
	case KindFault:
		return obs.EventFault
	case KindRecovery, KindShrink:
		return obs.EventRecovery
	case KindBudgetShare:
		return obs.EventErrAttr
	case KindDrift:
		return obs.EventError
	}
	return ""
}

// windowed reports whether the kind evaluates window statistics (and so
// honors MinSamples) rather than counting events outright.
func (o *Objective) windowed() bool {
	return o.ratio() || o.Kind == KindBudgetShare || o.Kind == KindDrift
}

// Config is a set of objectives, loadable from JSON.
type Config struct {
	Objectives []Objective `json:"objectives"`
}

// Validate checks the config for unusable objectives.
func (c *Config) Validate() error {
	if len(c.Objectives) == 0 {
		return fmt.Errorf("slo: config has no objectives")
	}
	seen := map[string]bool{}
	for i := range c.Objectives {
		o := &c.Objectives[i]
		if o.Name == "" {
			return fmt.Errorf("slo: objective %d has no name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		if o.eventKind() == "" {
			return fmt.Errorf("slo: objective %q has unknown kind %q", o.Name, o.Kind)
		}
		if o.Kind == KindLatency && o.Target <= 0 {
			return fmt.Errorf("slo: latency objective %q needs a positive target", o.Name)
		}
		if o.Kind == KindError && o.Target <= 0 && o.BoundMultiple <= 0 {
			return fmt.Errorf("slo: error objective %q needs target or bound_multiple", o.Name)
		}
		if o.Kind == KindBudgetShare {
			if o.Label == "" {
				return fmt.Errorf("slo: budget_share objective %q needs a label (the stage whose share is capped)", o.Name)
			}
			if o.Target <= 0 || o.Target > 1 {
				return fmt.Errorf("slo: budget_share objective %q needs a target share in (0, 1]", o.Name)
			}
		}
		if o.Kind == KindDrift && o.Target <= 0 {
			return fmt.Errorf("slo: drift objective %q needs a positive target ratio", o.Name)
		}
		if o.WindowS < 0 || o.Budget < 0 || o.MaxCount < 0 || o.MinSamples < 0 {
			return fmt.Errorf("slo: objective %q has a negative parameter", o.Name)
		}
	}
	return nil
}

// LoadConfig reads and validates a JSON objectives file.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("slo: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &c, nil
}

// sample is one windowed observation: its virtual time; for ratio
// objectives whether it violated the target; for budget_share/drift the
// observed value (squared error, resp. achieved error) and whether the
// event carried the objective's label.
type sample struct {
	t     float64
	bad   bool
	v     float64
	match bool
}

// tracker is one objective's evaluation state.
type tracker struct {
	obj    Objective
	window []sample // sorted by arrival; pruned against the sliding window
	// cumulative (never reset, survive run markers):
	cumSamples, cumBad int64
	breaches           int64
	worstBurn          float64
	breached           bool // currently out of budget
}

// Status is one objective's externally visible state.
type Status struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Breached reports whether the objective is currently out of budget;
	// Breaches counts out-of-budget transitions over the whole session.
	Breached bool  `json:"breached"`
	Breaches int64 `json:"breaches"`
	// Burn is the current burn rate (budget consumed per unit budget;
	// >1 means out of budget), WorstBurn the session-wide peak.
	Burn      float64 `json:"burn"`
	WorstBurn float64 `json:"worst_burn"`
	// Samples/Bad describe the current window; CumSamples/CumBad the
	// whole session.
	Samples    int64 `json:"samples"`
	Bad        int64 `json:"bad"`
	CumSamples int64 `json:"cum_samples"`
	CumBad     int64 `json:"cum_bad"`
}

// Engine evaluates a Config against the event stream. Register it on
// the event log with log.Observe(engine.ObserveEvent); it emits breach
// events back into the same log (and ignores them on the way in, so no
// feedback loop).
type Engine struct {
	mu       sync.Mutex
	trackers []*tracker
	log      *obs.EventLog
}

// New creates an engine for the config, emitting breach events into
// log (which may be nil to only track state).
func New(c *Config, log *obs.EventLog) *Engine {
	e := &Engine{log: log}
	for _, o := range c.Objectives {
		e.trackers = append(e.trackers, &tracker{obj: o})
	}
	return e
}

// ObserveEvent feeds one telemetry event into every matching objective.
// Run markers (kind "run") reset the sliding windows, because virtual
// time restarts at zero for each run/cell; cumulative counts persist.
// Safe for concurrent use; breach events are emitted outside the lock.
func (e *Engine) ObserveEvent(ev obs.Event) {
	if e == nil {
		return
	}
	var breaches []obs.Event
	e.mu.Lock()
	if ev.Kind == obs.EventRun {
		for _, tr := range e.trackers {
			tr.window = tr.window[:0]
			tr.breached = false
		}
		e.mu.Unlock()
		return
	}
	for _, tr := range e.trackers {
		if b, ok := tr.observe(ev); ok {
			breaches = append(breaches, b)
		}
	}
	e.mu.Unlock()
	for _, b := range breaches {
		e.log.Emit(b)
	}
}

// observe updates one tracker; it returns a breach event when the
// objective transitions out of budget. Caller holds the engine lock.
func (tr *tracker) observe(ev obs.Event) (obs.Event, bool) {
	o := &tr.obj
	if ev.Kind != o.eventKind() || ev.Kind == obs.EventBreach {
		return obs.Event{}, false
	}
	// budget_share needs the whole attribution stream in its window (the
	// share's denominator), so its label selects rather than filters.
	if o.Kind != KindBudgetShare && o.Label != "" && o.Label != ev.Label {
		return obs.Event{}, false
	}
	// shrink shares the recovery event stream; an unrestricted objective
	// counts arcs (one shrink_verdict each), not every shrink transition.
	if o.Kind == KindShrink && o.Label == "" && ev.Label != "shrink_verdict" {
		return obs.Event{}, false
	}
	s := sample{t: ev.T}
	switch o.Kind {
	case KindBudgetShare:
		s.v = ev.RMS * ev.RMS * float64(ev.N) // the block's squared-error sum
		s.match = ev.Label == o.Label
		s.bad = s.match
	case KindDrift:
		s.v = ev.Value
	default:
		if o.ratio() {
			target := o.Target
			if o.Kind == KindError && o.BoundMultiple > 0 && ev.Bound > 0 {
				target = o.BoundMultiple * ev.Bound
			}
			s.bad = ev.Value > target
		}
	}
	bad := s.bad
	tr.window = append(tr.window, s)
	tr.cumSamples++
	if bad {
		tr.cumBad++
	}
	tr.prune(ev.T)
	burn, n, nbad := tr.burn()
	if burn > tr.worstBurn {
		tr.worstBurn = burn
	}
	out := burn > 1
	if o.windowed() && n < o.MinSamples {
		out = false
	}
	if out && !tr.breached {
		tr.breached = true
		tr.breaches++
		return obs.Event{
			T: ev.T, Rank: -1, Kind: obs.EventBreach, Label: o.Name, Peer: -1,
			Value: burn,
			Msg:   fmt.Sprintf("%s: %d/%d bad in window, burn %.2f", o.Kind, nbad, n, burn),
		}, true
	}
	if !out {
		tr.breached = false
	}
	return obs.Event{}, false
}

// prune drops samples older than the sliding window ending at now.
func (tr *tracker) prune(now float64) {
	w := tr.obj.WindowS
	if w <= 0 {
		return
	}
	cut := 0
	for cut < len(tr.window) && tr.window[cut].t < now-w {
		cut++
	}
	if cut > 0 {
		tr.window = append(tr.window[:0], tr.window[cut:]...)
	}
}

// burn computes the current burn rate plus the window's sample and bad
// counts. For ratio objectives it is badFraction/Budget (with a zero
// budget, any bad observation burns at the bad count itself); for rate
// objectives it is count/MaxCount (with a zero ceiling, the count).
func (tr *tracker) burn() (burn float64, n, nbad int64) {
	n = int64(len(tr.window))
	for _, s := range tr.window {
		if s.bad {
			nbad++
		}
	}
	o := &tr.obj
	switch {
	case o.Kind == KindBudgetShare:
		var num, den float64
		for _, s := range tr.window {
			den += s.v
			if s.match {
				num += s.v
			}
		}
		if den == 0 {
			return 0, n, nbad
		}
		return (num / den) / o.Target, n, nbad
	case o.Kind == KindDrift:
		return driftRatio(tr.window) / o.Target, n, nbad
	case o.ratio():
		if n == 0 {
			return 0, 0, 0
		}
		frac := float64(nbad) / float64(n)
		if o.Budget > 0 {
			return frac / o.Budget, n, nbad
		}
		return float64(nbad), n, nbad
	}
	if o.MaxCount > 0 {
		return float64(n) / float64(o.MaxCount), n, nbad
	}
	return float64(n), n, nbad
}

// driftRatio is the window's late-half mean value over its early-half
// mean, split at the virtual-time midpoint so the estimate is a pure
// function of the sample multiset (the parallel engine does not preserve
// observation order). 0 when either half is empty or the early mean is 0.
func driftRatio(window []sample) float64 {
	if len(window) < 2 {
		return 0
	}
	tMin, tMax := window[0].t, window[0].t
	for _, s := range window[1:] {
		if s.t < tMin {
			tMin = s.t
		}
		if s.t > tMax {
			tMax = s.t
		}
	}
	if tMax <= tMin {
		return 0
	}
	mid := tMin + (tMax-tMin)/2
	var earlySum, lateSum float64
	var earlyN, lateN int
	for _, s := range window {
		if s.t <= mid {
			earlySum += s.v
			earlyN++
		} else {
			lateSum += s.v
			lateN++
		}
	}
	if earlyN == 0 || lateN == 0 || earlySum == 0 {
		return 0
	}
	return (lateSum / float64(lateN)) / (earlySum / float64(earlyN))
}

// Status returns every objective's current state, in config order.
func (e *Engine) Status() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, len(e.trackers))
	for i, tr := range e.trackers {
		burn, n, nbad := tr.burn()
		out[i] = Status{
			Name: tr.obj.Name, Kind: tr.obj.Kind,
			Breached: tr.breached, Breaches: tr.breaches,
			Burn: burn, WorstBurn: tr.worstBurn,
			Samples: n, Bad: nbad,
			CumSamples: tr.cumSamples, CumBad: tr.cumBad,
		}
	}
	return out
}

// TotalBreaches sums breach transitions over all objectives.
func (e *Engine) TotalBreaches() int64 {
	var total int64
	for _, s := range e.Status() {
		total += s.Breaches
	}
	return total
}

// Summary renders the one-line end-of-run summary the drivers print:
// overall pass/fail, the worst burn rate, and which objectives breached.
func (e *Engine) Summary() string {
	if e == nil {
		return "slo: no objectives"
	}
	st := e.Status()
	var worst float64
	var worstName string
	var failed []string
	var total int64
	for _, s := range st {
		if s.WorstBurn > worst {
			worst, worstName = s.WorstBurn, s.Name
		}
		if s.Breaches > 0 {
			failed = append(failed, fmt.Sprintf("%s×%d", s.Name, s.Breaches))
		}
		total += s.Breaches
	}
	if total == 0 {
		return fmt.Sprintf("slo PASS (%d objectives, worst burn %.2f %s)", len(st), worst, worstName)
	}
	sort.Strings(failed)
	return fmt.Sprintf("slo FAIL (%d breaches: %s; worst burn %.2f %s)", total, strings.Join(failed, " "), worst, worstName)
}

// Families renders the engine state as OpenMetrics families for the
// /metrics exposition: the slo_breach_total counter per objective plus
// burn-rate and breached gauges.
func (e *Engine) Families() []obs.Family {
	if e == nil {
		return nil
	}
	st := e.Status()
	breach := obs.Family{Name: "fft_slo_breach", Type: "counter"}
	burn := obs.Family{Name: "fft_slo_burn_rate", Type: "gauge"}
	active := obs.Family{Name: "fft_slo_breached", Type: "gauge"}
	for _, s := range st {
		ls := []obs.Label{{Name: "objective", Value: s.Name}}
		breach.Series = append(breach.Series, obs.Series{Suffix: "_total", Labels: ls, Value: float64(s.Breaches)})
		burn.Series = append(burn.Series, obs.Series{Labels: ls, Value: s.Burn})
		b := 0.0
		if s.Breached {
			b = 1
		}
		active.Series = append(active.Series, obs.Series{Labels: ls, Value: b})
	}
	return []obs.Family{breach, burn, active}
}

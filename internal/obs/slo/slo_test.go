package slo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func engine(t *testing.T, objs ...Objective) (*Engine, *obs.EventLog) {
	t.Helper()
	log := obs.NewEventLog(64)
	c := &Config{Objectives: objs}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e := New(c, log)
	log.Observe(e.ObserveEvent)
	return e, log
}

func TestLatencyObjectiveBreaches(t *testing.T) {
	e, log := engine(t, Objective{
		Name: "p99", Kind: KindLatency, Target: 1e-3, WindowS: 1, Budget: 0.25, MinSamples: 4,
	})
	// Three fast exchanges: under MinSamples, no verdict yet.
	for i := 0; i < 3; i++ {
		log.Emit(obs.Event{T: float64(i) * 0.01, Kind: obs.EventExchange, Value: 1e-4})
	}
	if st := e.Status()[0]; st.Breached || st.Breaches != 0 {
		t.Fatalf("breached below MinSamples: %+v", st)
	}
	// A slow one: 1/4 bad = budget exactly (burn 1.0, not >1) — still in.
	log.Emit(obs.Event{T: 0.03, Kind: obs.EventExchange, Value: 5e-3})
	if st := e.Status()[0]; st.Breached {
		t.Fatalf("breached at burn exactly 1: %+v", st)
	}
	// Another slow one: 2/5 bad, burn 1.6 — breach.
	log.Emit(obs.Event{T: 0.04, Kind: obs.EventExchange, Value: 5e-3})
	st := e.Status()[0]
	if !st.Breached || st.Breaches != 1 {
		t.Fatalf("no breach at burn > 1: %+v", st)
	}
	if e.TotalBreaches() != 1 {
		t.Fatalf("TotalBreaches = %d", e.TotalBreaches())
	}
	// The breach event itself must be in the log.
	var breach *obs.Event
	for _, ev := range log.Events() {
		if ev.Kind == obs.EventBreach {
			ev := ev
			breach = &ev
		}
	}
	if breach == nil || breach.Label != "p99" || breach.Value <= 1 {
		t.Fatalf("breach event missing or wrong: %+v", breach)
	}
	if !strings.Contains(e.Summary(), "FAIL") {
		t.Fatalf("Summary = %q, want FAIL", e.Summary())
	}
}

func TestErrorObjectiveBoundMultiple(t *testing.T) {
	e, log := engine(t, Objective{
		Name: "err", Kind: KindError, BoundMultiple: 1.0,
	})
	// Within bound: fine.
	log.Emit(obs.Event{T: 1, Kind: obs.EventError, Label: "fwd0", Value: 5e-8, Bound: 1e-7})
	if st := e.Status()[0]; st.Bad != 0 {
		t.Fatalf("in-bound observation marked bad: %+v", st)
	}
	// Beyond bound: one bad with zero budget burns at the bad count; a
	// single bad sample is burn 1 (not >1), the second breaches.
	log.Emit(obs.Event{T: 2, Kind: obs.EventError, Label: "fwd0", Value: 2e-7, Bound: 1e-7})
	log.Emit(obs.Event{T: 3, Kind: obs.EventError, Label: "fwd0", Value: 3e-7, Bound: 1e-7})
	st := e.Status()[0]
	if st.Bad != 2 || st.Breaches != 1 {
		t.Fatalf("bound-multiple classification wrong: %+v", st)
	}
}

func TestRateObjectiveAndLabelFilter(t *testing.T) {
	e, log := engine(t,
		Objective{Name: "repairs", Kind: KindRepair, MaxCount: 2, WindowS: 1},
		Objective{Name: "stalls-only", Kind: KindFault, Label: "stall", MaxCount: 0},
	)
	log.Emit(obs.Event{T: 0.1, Kind: obs.EventRepair})
	log.Emit(obs.Event{T: 0.2, Kind: obs.EventRepair})
	if st := e.Status()[0]; st.Breached {
		t.Fatalf("breached at ceiling: %+v", st)
	}
	log.Emit(obs.Event{T: 0.3, Kind: obs.EventRepair})
	if st := e.Status()[0]; !st.Breached || st.Breaches != 1 {
		t.Fatalf("rate breach missing: %+v", st)
	}
	// The window slides on virtual time: 1s later the burn decays.
	log.Emit(obs.Event{T: 1.5, Kind: obs.EventRepair})
	if st := e.Status()[0]; st.Samples != 1 || st.Breached {
		t.Fatalf("window did not slide: %+v", st)
	}
	// Label filter: spikes don't count toward the stall objective.
	log.Emit(obs.Event{T: 0.4, Kind: obs.EventFault, Label: "spike"})
	if st := e.Status()[1]; st.Samples != 0 {
		t.Fatalf("label filter leaked: %+v", st)
	}
	log.Emit(obs.Event{T: 0.5, Kind: obs.EventFault, Label: "stall"})
	log.Emit(obs.Event{T: 0.6, Kind: obs.EventFault, Label: "stall"})
	if st := e.Status()[1]; st.Samples != 2 || !st.Breached {
		t.Fatalf("zero-ceiling rate objective wrong: %+v", st)
	}
}

func TestRunMarkerResetsWindows(t *testing.T) {
	e, log := engine(t, Objective{Name: "r", Kind: KindRepair, MaxCount: 1})
	log.StartRun("cell-a")
	log.Emit(obs.Event{T: 0.1, Kind: obs.EventRepair})
	log.Emit(obs.Event{T: 0.2, Kind: obs.EventRepair})
	if st := e.Status()[0]; !st.Breached || st.Breaches != 1 {
		t.Fatalf("no breach in cell-a: %+v", st)
	}
	// New cell: virtual time restarts; the window and breached flag must
	// reset, cumulative counts must persist.
	log.StartRun("cell-b")
	st := e.Status()[0]
	if st.Samples != 0 || st.Breached {
		t.Fatalf("run marker did not reset window: %+v", st)
	}
	if st.Breaches != 1 || st.CumSamples != 2 {
		t.Fatalf("cumulative state lost on run marker: %+v", st)
	}
	// A fresh overrun in cell-b is a new transition.
	log.Emit(obs.Event{T: 0.05, Kind: obs.EventRepair})
	log.Emit(obs.Event{T: 0.06, Kind: obs.EventRepair})
	if st := e.Status()[0]; st.Breaches != 2 {
		t.Fatalf("second cell breach not counted: %+v", st)
	}
}

func TestBreachEventsDoNotFeedBack(t *testing.T) {
	e, log := engine(t, Objective{Name: "f", Kind: KindFault, MaxCount: 0})
	log.Emit(obs.Event{T: 0.1, Kind: obs.EventFault, Label: "stall"})
	log.Emit(obs.Event{T: 0.2, Kind: obs.EventFault, Label: "stall"})
	// Two faults → breach; the breach event must not count as a fault
	// (or as anything) and re-trigger.
	if st := e.Status()[0]; st.Samples != 2 || st.Breaches != 1 {
		t.Fatalf("feedback loop or miscount: %+v", st)
	}
	if got := log.Counts()[obs.EventBreach]; got != 1 {
		t.Fatalf("breach events in log = %d, want 1", got)
	}
}

func TestFamiliesExposition(t *testing.T) {
	e, log := engine(t, Objective{Name: "r", Kind: KindRepair, MaxCount: 0})
	log.Emit(obs.Event{T: 0.1, Kind: obs.EventRepair})
	log.Emit(obs.Event{T: 0.2, Kind: obs.EventRepair})
	var buf strings.Builder
	if err := obs.WriteOpenMetrics(&buf, e.Families()); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseOpenMetrics([]byte(buf.String()))
	if err != nil {
		t.Fatalf("SLO exposition fails lint: %v\n%s", err, buf.String())
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.Labels["objective"] == "r" {
			got[s.Name] = s.Value
		}
	}
	if got["fft_slo_breach_total"] != 1 || got["fft_slo_breached"] != 1 || got["fft_slo_burn_rate"] != 2 {
		t.Fatalf("exposition values wrong: %v\n%s", got, buf.String())
	}
}

func TestLoadConfigValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"objectives":[{"name":"a","kind":"repair","max_count":1}]}`)
	if _, err := LoadConfig(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, body := range map[string]string{
		"empty.json":    `{"objectives":[]}`,
		"dup.json":      `{"objectives":[{"name":"a","kind":"repair"},{"name":"a","kind":"fault"}]}`,
		"badkind.json":  `{"objectives":[{"name":"a","kind":"nope"}]}`,
		"notarget.json": `{"objectives":[{"name":"a","kind":"latency"}]}`,
		"noerrtgt.json": `{"objectives":[{"name":"a","kind":"error"}]}`,
		"negative.json": `{"objectives":[{"name":"a","kind":"repair","window_s":-1}]}`,
		"unknown.json":  `{"objectives":[{"name":"a","kind":"repair","typo_field":1}]}`,
		"noname.json":   `{"objectives":[{"kind":"repair"}]}`,
		"notjson.json":  `objectives:`,
	} {
		if _, err := LoadConfig(write(name, body)); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	// The shipped example config must stay valid.
	if _, err := LoadConfig("../../../docs/slo.example.json"); err != nil {
		t.Fatalf("docs/slo.example.json invalid: %v", err)
	}
}

// TestBudgetShareObjective pins the error-budget SLO: the objective caps
// one stage's share of the squared-error mass accumulated across the
// whole attribution stream in its window, so its label selects the
// numerator rather than filtering the stream.
func TestBudgetShareObjective(t *testing.T) {
	e, log := engine(t, Objective{
		Name: "fwd1-share", Kind: KindBudgetShare, Label: "fwd1", Target: 0.5, MinSamples: 2,
	})
	attr := func(ts float64, label string, rms float64) obs.Event {
		return obs.Event{T: ts, Kind: obs.EventErrAttr, Label: label, Peer: 0, RMS: rms, N: 1}
	}
	// One matching event alone is 100% of the mass (burn 2), but below
	// MinSamples no verdict is allowed yet.
	log.Emit(attr(0, "fwd1", 1))
	if st := e.Status()[0]; st.Breached || st.Breaches != 0 {
		t.Fatalf("breached below MinSamples: %+v", st)
	}
	// A heavy fwd0 block dilutes the share: 1/(1+9) = 0.1, burn 0.2.
	log.Emit(attr(1, "fwd0", 3))
	if st := e.Status()[0]; st.Breached {
		t.Fatalf("breached at share 0.1: %+v", st)
	}
	// More fwd1 mass: (1+9)/(1+9+9) ≈ 0.53 > 0.5 — breach.
	log.Emit(attr(2, "fwd1", 3))
	st := e.Status()[0]
	if !st.Breached || st.Breaches != 1 {
		t.Fatalf("no breach at share > target: %+v", st)
	}
	if !strings.Contains(e.Summary(), "FAIL") {
		t.Fatalf("Summary = %q, want FAIL", e.Summary())
	}
}

// TestDriftObjective pins the drift SLO: the late-half mean of achieved
// error over the early-half mean, split at the window's virtual-time
// midpoint, breaching when the ratio exceeds the target.
func TestDriftObjective(t *testing.T) {
	e, log := engine(t, Objective{
		Name: "err-drift", Kind: KindDrift, Target: 2, MinSamples: 4,
	})
	errEv := func(ts, v float64) obs.Event {
		return obs.Event{T: ts, Kind: obs.EventError, Label: "fwd0", Value: v, Bound: 1e-3}
	}
	// Early plateau at 1e-4, then a 3× late half: drift 3, burn 1.5 —
	// but not before MinSamples observations are in.
	log.Emit(errEv(0, 1e-4))
	log.Emit(errEv(1, 1e-4))
	log.Emit(errEv(9, 3e-4))
	if st := e.Status()[0]; st.Breached {
		t.Fatalf("breached below MinSamples: %+v", st)
	}
	log.Emit(errEv(10, 3e-4))
	st := e.Status()[0]
	if !st.Breached || st.Breaches != 1 {
		t.Fatalf("no breach at drift 3 > target 2: %+v", st)
	}

	// A flat series must not breach: drift 1, burn 0.5.
	e2, log2 := engine(t, Objective{
		Name: "err-drift", Kind: KindDrift, Target: 2, MinSamples: 4,
	})
	for i := 0; i < 6; i++ {
		log2.Emit(errEv(float64(i), 1e-4))
	}
	if st := e2.Status()[0]; st.Breached || st.Breaches != 0 {
		t.Fatalf("flat series breached: %+v", st)
	}
}

// TestBudgetShareDriftValidation pins the config-time rejections for the
// two errtrack-fed objective kinds.
func TestBudgetShareDriftValidation(t *testing.T) {
	for name, obj := range map[string]Objective{
		"share-no-label":   {Name: "s", Kind: KindBudgetShare, Target: 0.5},
		"share-bad-target": {Name: "s", Kind: KindBudgetShare, Label: "fwd0", Target: 1.5},
		"drift-no-target":  {Name: "d", Kind: KindDrift},
	} {
		c := &Config{Objectives: []Objective{obj}}
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid objective accepted", name)
		}
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.ObserveEvent(obs.Event{Kind: obs.EventFault})
	if e.Status() != nil || e.TotalBreaches() != 0 || e.Families() != nil {
		t.Fatal("nil engine must be inert")
	}
	if !strings.Contains(e.Summary(), "no objectives") {
		t.Fatalf("nil Summary = %q", e.Summary())
	}
}

package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Metrics is a registry of named counters, gauges, and histograms.
// A nil *Metrics is valid and records nothing. Names are slash-scoped
// ("compress/fwd0/raw_bytes"); callers on hot paths should precompute
// them so recording stays allocation-free.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
}

func newMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// hist is a power-of-two-bucket histogram over non-negative samples.
type hist struct {
	count     int64
	nonfinite int64 // NaN/±Inf samples rejected (they would poison sum/quantiles)
	sum       float64
	min, max  float64
	buckets   [64]int64 // bucket i holds samples in [2^(i-32), 2^(i-31))
}

func (h *hist) observe(v float64) {
	// A single NaN makes every later Sum/Mean NaN and an Inf saturates
	// them, so corrupted payloads (fault injection puts NaNs on the wire)
	// must never reach the accumulator. Rejections stay visible as a
	// separate count.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonfinite++
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := 0
	if v > 0 {
		b = int(math.Floor(math.Log2(v))) + 32
		if b < 0 {
			b = 0
		}
		if b > 63 {
			b = 63
		}
	}
	h.buckets[b]++
}

// Add increments counter name by v.
func (m *Metrics) Add(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += v
	m.mu.Unlock()
}

// Set stores gauge name (last write wins).
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records one histogram sample under name.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Counter returns the current value of a counter (0 if absent).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge returns a gauge's value and whether it was ever set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// HistStat summarizes one histogram. The quantiles are estimated from
// the power-of-two buckets (geometric bucket midpoints, clamped to the
// observed [Min, Max]), so they carry at most a factor-√2 resolution —
// enough to tell a tail from a shifted median.
type HistStat struct {
	Count         int64
	NonFinite     int64 // NaN/±Inf samples rejected, not in Count/Sum
	Sum           float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Mean returns the sample mean (0 when empty).
func (s HistStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// quantile estimates the q-quantile (0 < q ≤ 1) from the buckets.
//
// The estimator is nearest-rank over the power-of-two buckets: the
// target rank is ceil(q·count); the bucket containing that rank
// reports its geometric midpoint (2^(i-32)·√2), clamped to the
// observed [min, max]. Resolution is therefore a factor of √2 — enough
// to tell a tail from a shifted median, not enough to compare values
// inside one bucket.
//
// Tail behavior on small samples: when the target rank lands on the
// last observation (ceil(q·count) == count, true for p99 whenever
// count < 100), the estimate is exactly the observed maximum rather
// than a bucket midpoint. Nearest-rank selects the maximum there, and
// reporting the midpoint of a wide bucket would understate (or, after
// clamping, misstate) a tail the histogram has actually seen. With one
// sample every quantile collapses onto it.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target >= h.count {
		return h.max
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum < target {
			continue
		}
		var v float64
		if i == 0 {
			// Bucket 0 collects non-positive and sub-2^-31 samples.
			v = h.min
		} else {
			v = math.Exp2(float64(i-32)) * math.Sqrt2 // geometric midpoint
		}
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

func (h *hist) stat() HistStat {
	return HistStat{
		Count: h.count, NonFinite: h.nonfinite, Sum: h.sum, Min: h.min, Max: h.max,
		P50: h.quantile(0.50), P95: h.quantile(0.95), P99: h.quantile(0.99),
	}
}

// Hist returns a histogram's summary and whether it exists.
func (m *Metrics) Hist(name string) (HistStat, bool) {
	if m == nil {
		return HistStat{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		return HistStat{}, false
	}
	return h.stat(), true
}

// Snapshot is a self-consistent copy of the whole registry, taken under
// one lock acquisition: every exporter-visible relation between values
// (raw vs. wire bytes, count vs. sum) holds within one snapshot, which
// per-name Counter/Gauge/Hist round-trips cannot guarantee while a run
// is mutating the registry.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistStat
}

// Snapshot copies the registry under a single lock acquisition. A nil
// registry yields an empty (but usable) snapshot.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistStat{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for n, v := range m.counters {
		s.Counters[n] = v
	}
	for n, v := range m.gauges {
		s.Gauges[n] = v
	}
	for n, h := range m.hists {
		s.Hists[n] = h.stat()
	}
	return s
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string { return sortedKeysI(s.Counters) }

// GaugeNames returns the snapshot's gauge names, sorted.
func (s Snapshot) GaugeNames() []string { return sortedKeysF(s.Gauges) }

// HistNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedKeysI(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedKeysF(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CompressionStats extracts the per-label compression counters from the
// snapshot, sorted by label (see Metrics.CompressionStats).
func (s Snapshot) CompressionStats() []CompressionStat {
	byLabel := make(map[string]*CompressionStat)
	get := func(label string) *CompressionStat {
		cs := byLabel[label]
		if cs == nil {
			cs = &CompressionStat{Label: label}
			byLabel[label] = cs
		}
		return cs
	}
	for name, v := range s.Counters {
		if !strings.HasPrefix(name, compressPrefix) {
			continue
		}
		switch {
		case strings.HasSuffix(name, rawBytesSuffix):
			get(name[len(compressPrefix) : len(name)-len(rawBytesSuffix)]).RawBytes = v
		case strings.HasSuffix(name, wireBytesSuffix):
			get(name[len(compressPrefix) : len(name)-len(wireBytesSuffix)]).WireBytes = v
		}
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, compressPrefix) && strings.HasSuffix(name, errBoundSuffix) {
			get(name[len(compressPrefix) : len(name)-len(errBoundSuffix)]).ErrorBound = v
		}
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]CompressionStat, len(labels))
	for i, l := range labels {
		out[i] = *byLabel[l]
	}
	return out
}

// CounterNames returns all counter names, sorted.
func (m *Metrics) CounterNames() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns all gauge names, sorted.
func (m *Metrics) GaugeNames() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.gauges))
	for n := range m.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistNames returns all histogram names, sorted.
func (m *Metrics) HistNames() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.hists))
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Compression-metric naming convention shared by the exchange layer and
// the reports: each labelled compressing exchange maintains the pair
// "compress/<label>/raw_bytes" and "compress/<label>/wire_bytes" plus
// the gauge "compress/<label>/error_bound".
const (
	compressPrefix  = "compress/"
	rawBytesSuffix  = "/raw_bytes"
	wireBytesSuffix = "/wire_bytes"
	errBoundSuffix  = "/error_bound"
)

// CompressMetricNames returns the precomputed metric names of one
// labelled compressing exchange (raw counter, wire counter, error-bound
// gauge), for construction-time use by hot paths.
func CompressMetricNames(label string) (raw, wire, errBound string) {
	return compressPrefix + label + rawBytesSuffix,
		compressPrefix + label + wireBytesSuffix,
		compressPrefix + label + errBoundSuffix
}

// Error-provenance naming convention (internal/obs/errtrack): each
// labelled lossy exchange maintains per-epoch histograms of the worst
// relative error and the RMS error per destination block, plus a counter
// of the values whose error was measured.
const (
	errtrackPrefix = "errtrack/"
	maxRelSuffix   = "/max_rel"
	rmsSuffix      = "/rms"
	valuesSuffix   = "/values"
)

// ErrtrackMetricNames returns the precomputed metric names of one
// labelled exchange's error-attribution family (worst-relative-error
// histogram, RMS histogram, measured-values counter), for
// construction-time use by hot paths.
func ErrtrackMetricNames(label string) (maxRel, rms, values string) {
	return errtrackPrefix + label + maxRelSuffix,
		errtrackPrefix + label + rmsSuffix,
		errtrackPrefix + label + valuesSuffix
}

// CompressionStat is the achieved compression of one labelled exchange.
type CompressionStat struct {
	Label      string
	RawBytes   int64
	WireBytes  int64
	ErrorBound float64 // 0 when the gauge was never set
}

// Ratio returns raw/wire (1 when no bytes were recorded).
func (s CompressionStat) Ratio() float64 {
	if s.WireBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// CompressionStats scans the registry for the per-label compression
// counters and returns one entry per label, sorted by label. This is
// what the benchmark drivers print as the *achieved* compression ratio
// (as opposed to the method's nominal one).
func (m *Metrics) CompressionStats() []CompressionStat {
	if m == nil {
		return nil
	}
	s := m.Snapshot().CompressionStats()
	if len(s) == 0 {
		return nil
	}
	return s
}

package obs

import (
	"sync"
	"testing"
)

// TestRecorderConcurrentRanks pins the concurrency contract the
// parallel netsim engine relies on (docs/DETERMINISM.md): many rank
// goroutines may drive their own Rank handles — spans, counters,
// gauges, histograms — at the same time as the scheduler goroutine
// streams Wire events and other callers mint new handles via Rank().
// Run under -race (the verify tier does) this fails on any
// unsynchronized access inside the Recorder or the Metrics registry.
func TestRecorderConcurrentRanks(t *testing.T) {
	rec := New(Options{Trace: true, Metrics: true})
	const ranks = 16
	const events = 200
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rk := rec.Rank(r)
			for i := 0; i < events; i++ {
				t0 := float64(i)
				rk.Span(TrackHost, PhasePack, t0, t0+0.5, 64)
				rk.Add("pkts", 1)
				rk.Set("depth", float64(i))
				rk.Observe("lat", float64(i%7))
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			rec.Wire(WireEvent{Src: i % ranks, Dst: (i + 1) % ranks, Bytes: 128})
		}
	}()
	wg.Wait()

	if got := rec.Metrics().Counter("pkts"); got != ranks*events {
		t.Errorf("pkts counter = %d, want %d", got, ranks*events)
	}
	if h, ok := rec.Metrics().Hist("lat"); !ok || h.Count != ranks*events {
		t.Errorf("lat histogram incomplete: %+v", h)
	}
	if got := len(rec.WireEvents()); got != events {
		t.Errorf("wire events = %d, want %d", got, events)
	}
	for r := 0; r < ranks; r++ {
		if got := len(rec.RankSpans(r)); got != events {
			t.Errorf("rank %d spans = %d, want %d", r, got, events)
		}
	}
}

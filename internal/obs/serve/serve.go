// Package serve exposes a running recorder over HTTP for live
// inspection of long soaks:
//
//	/metrics      OpenMetrics text exposition (registry + SLO state)
//	/healthz      liveness probe
//	/slo          SLO objective status as JSON
//	/events       the retained event ring as JSONL (?n= limits to the tail)
//	/errtrack     the error-provenance report as JSON (errtrack.Report)
//	/debug/pprof  the standard Go profiler endpoints
//
// Handlers only read snapshots (Metrics.Snapshot, EventLog.Events,
// Engine.Status) under their own locks on the serving goroutine, so
// scraping never blocks the simulation's goroutines for more than a
// map copy and never touches virtual time: a run scraped mid-flight
// stays bit-identical to an unobserved one.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/errtrack"
	"repro/internal/obs/slo"
)

// Server serves one recorder/event-log/SLO-engine/error-tracker set.
// Sources may be swapped between runs (SetSources) while the listener
// stays up.
type Server struct {
	mu  sync.Mutex
	rec *obs.Recorder
	log *obs.EventLog
	eng *slo.Engine
	trk *errtrack.Tracker

	srv *http.Server
	ln  net.Listener
}

// New creates an unstarted server with the given (possibly nil) sources.
func New(rec *obs.Recorder, log *obs.EventLog, eng *slo.Engine, trk *errtrack.Tracker) *Server {
	return &Server{rec: rec, log: log, eng: eng, trk: trk}
}

// SetSources swaps the telemetry sources the handlers read (drivers
// call this when a new cell creates a fresh recorder).
func (s *Server) SetSources(rec *obs.Recorder, log *obs.EventLog, eng *slo.Engine, trk *errtrack.Tracker) {
	s.mu.Lock()
	s.rec, s.log, s.eng, s.trk = rec, log, eng, trk
	s.mu.Unlock()
}

func (s *Server) sources() (*obs.Recorder, *obs.EventLog, *slo.Engine, *errtrack.Tracker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, s.log, s.eng, s.trk
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/errtrack", s.handleErrtrack)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address (empty before Start).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rec, _, eng, _ := s.sources()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	snap := rec.Metrics().Snapshot()
	if err := obs.WriteOpenMetrics(w, snap.OpenMetricsFamilies(), eng.Families()); err != nil {
		return // client went away mid-scrape
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// SLOResponse is the /slo payload.
type SLOResponse struct {
	Summary    string       `json:"summary"`
	Objectives []slo.Status `json:"objectives"`
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	_, _, eng, _ := s.sources()
	w.Header().Set("Content-Type", "application/json")
	resp := SLOResponse{Summary: eng.Summary(), Objectives: eng.Status()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&resp) //nolint:errcheck // client went away mid-write
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	_, log, _, _ := s.sources()
	events := log.Events()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(&ev); err != nil {
			return
		}
	}
}

// handleErrtrack serves the error-provenance report: the same JSON the
// -errtrack artifact carries, so cmd/errmap renders live scrapes and
// offline artifacts identically.
func (s *Server) handleErrtrack(w http.ResponseWriter, _ *http.Request) {
	_, _, _, trk := s.sources()
	w.Header().Set("Content-Type", "application/json")
	rep := trk.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&rep) //nolint:errcheck // client went away mid-write
}

package serve_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compress"
	"repro/internal/exchange"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/errtrack"
	"repro/internal/obs/serve"
	"repro/internal/obs/slo"
)

// loadRun is the seeded workload of the scrape-under-load test: a
// compressed one-sided exchange iterated enough to give the scrapers a
// real window of concurrent mutation. It emits exchange-latency and
// achieved-error events when a log is attached and is bit-identical in
// virtual time either way.
func loadRun(rec *obs.Recorder, parallel bool) netsim.Result {
	cfg := netsim.Summit(1)
	cfg.Parallel = parallel
	return mpi.RunWith(cfg, rec, func(c *mpi.Comm) {
		x := exchange.NewCompressedOSC(c, compress.Cast16{}, gpu.NewStream(gpu.V100(), c), 3, exchange.UniformCount(64))
		x.SetLabel("load")
		send := make([][]float64, c.Size())
		for d := range send {
			send[d] = make([]float64, 64)
			for i := range send[d] {
				send[d][i] = float64(c.Rank()*1000+d*64+i) * 0.001
			}
		}
		for it := 0; it < 25; it++ {
			t0 := c.Now()
			x.Exchange(send)
			c.Obs().Emit(obs.Event{T: c.Now(), Kind: obs.EventExchange, Label: "load", Peer: -1, Value: c.Now() - t0})
		}
	})
}

// TestScrapeUnderLoad hammers /metrics and /events while the parallel
// engine mutates the registry, asserting every scrape stays lint-clean
// and that attaching the whole telemetry stack leaves the run's virtual
// times bit-identical to an unobserved run under both engines.
func TestScrapeUnderLoad(t *testing.T) {
	rec := obs.New(obs.Options{Metrics: true})
	log := obs.NewEventLog(0)
	eng := slo.New(&slo.Config{Objectives: []slo.Objective{
		{Name: "p99", Kind: slo.KindLatency, Target: 1, WindowS: 1, Budget: 0.01},
	}}, log)
	log.Observe(eng.ObserveEvent)
	rec.SetEventLog(log)

	srv := serve.New(rec, log, eng, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	done := make(chan struct{})
	var scrapes, tails atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := scrapeOnce(base); err != nil {
					errc <- err
					return
				}
				scrapes.Add(1)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := tailOnce(base); err != nil {
					errc <- err
					return
				}
				tails.Add(1)
			}
		}()
	}

	log.StartRun("load-test")
	res := loadRun(rec, true)
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// One final scrape after the run: must still be lint-clean and carry
	// the run's families.
	if err := scrapeOnce(base); err != nil {
		t.Fatal(err)
	}
	if scrapes.Load() == 0 || tails.Load() == 0 {
		t.Fatalf("scrapers starved: %d scrapes, %d tails", scrapes.Load(), tails.Load())
	}
	if log.Total() == 0 {
		t.Fatal("no events emitted during the run")
	}

	// Bit-identical virtual time vs. a run with no telemetry at all, on
	// both engines.
	for _, parallel := range []bool{true, false} {
		bare := loadRun(nil, parallel)
		if bare.Time != res.Time {
			t.Fatalf("telemetry perturbed virtual time (parallel=%v): %v != %v", parallel, bare.Time, res.Time)
		}
		for r, c := range bare.Clocks {
			if c != res.Clocks[r] {
				t.Fatalf("telemetry perturbed rank %d clock (parallel=%v): %v != %v", r, parallel, c, res.Clocks[r])
			}
		}
	}
}

func scrapeOnce(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		return fmt.Errorf("/metrics content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if _, err := obs.ParseOpenMetrics(data); err != nil {
		return fmt.Errorf("mid-run scrape fails lint: %w\n%s", err, data)
	}
	return nil
}

func tailOnce(base string) error {
	resp, err := http.Get(base + "/events?n=256")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("/events line not JSON: %w: %s", err, line)
		}
		if ev.Kind == "" {
			return fmt.Errorf("/events line missing kind: %s", line)
		}
	}
	return sc.Err()
}

// TestErrtrackEndpointParity is the live-vs-replay contract at the HTTP
// boundary: the report scraped from /errtrack must deep-equal both the
// live tracker's snapshot and the snapshot of a tracker rebuilt by
// replaying the JSONL sink — same cells, same stages, same verdict.
func TestErrtrackEndpointParity(t *testing.T) {
	log := obs.NewEventLog(0)
	live := errtrack.New()
	log.Observe(live.Observe)
	var sink strings.Builder
	log.SetSink(&sink)

	log.StartRun("parity-cell")
	for i := 0; i < 12; i++ {
		log.Emit(errtrack.AttrEvent(float64(i), "fwd0", i%3, 1e-3,
			errtrack.Stat{N: 4, MaxRel: 1e-4 * float64(i+1), MaxAbs: 1e-6, SumSq: 1e-9}))
	}
	log.EmitEnd()

	srv := serve.New(nil, log, nil, live)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/errtrack")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var scraped errtrack.Report
	if err := json.NewDecoder(resp.Body).Decode(&scraped); err != nil {
		t.Fatalf("/errtrack not a report: %v", err)
	}
	if scraped.Schema != errtrack.ReportSchema {
		t.Fatalf("scraped schema = %d, want %d", scraped.Schema, errtrack.ReportSchema)
	}

	want := live.Snapshot()
	if !reflect.DeepEqual(scraped, want) {
		t.Fatalf("scrape diverges from live snapshot:\nscrape %+v\nlive   %+v", scraped, want)
	}

	replayed, bad, err := errtrack.Replay(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("replay rejected %d lines of the live sink", bad)
	}
	got := replayed.Snapshot()
	if !reflect.DeepEqual(scraped, got) {
		t.Fatalf("scrape diverges from replay:\nscrape %+v\nreplay %+v", scraped, got)
	}
	if scraped.Verdict() != got.Verdict() {
		t.Fatalf("verdicts differ: scrape %q replay %q", scraped.Verdict(), got.Verdict())
	}
}

// TestServeEndpoints covers the sidecar's static endpoints once,
// without load.
func TestServeEndpoints(t *testing.T) {
	rec := obs.New(obs.Options{Metrics: true})
	log := obs.NewEventLog(0)
	eng := slo.New(&slo.Config{Objectives: []slo.Objective{
		{Name: "r", Kind: slo.KindRepair, MaxCount: 0},
	}}, log)
	log.Observe(eng.ObserveEvent)
	srv := serve.New(rec, log, eng, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	log.Emit(obs.Event{T: 0.1, Kind: obs.EventRepair})
	log.Emit(obs.Event{T: 0.2, Kind: obs.EventRepair})
	code, body := get("/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo = %d", code)
	}
	var sr serve.SLOResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("/slo not JSON: %v: %s", err, body)
	}
	if len(sr.Objectives) != 1 || sr.Objectives[0].Breaches != 1 || !strings.Contains(sr.Summary, "FAIL") {
		t.Fatalf("/slo payload wrong: %+v", sr)
	}
	// Breach counter must be merged into the exposition.
	code, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, `fft_slo_breach_total{objective="r"} 1`) {
		t.Fatalf("/metrics missing SLO families (%d):\n%s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Resource is one shared resource's utilization over the recording
// window: a node NIC direction, a node bus, or a rank's GPU stream.
// Utilization is busy-time occupancy — the fraction of each bin the
// resource held at least one reservation. Because netsim's resources are
// FIFO bandwidth servers, link occupancy windows are disjoint and the
// fraction cannot exceed 1 unless the trace is corrupt.
type Resource struct {
	Name     string  `json:"name"` // "node0 egress", "node1 bus", "rank3 gpu"
	Kind     string  `json:"kind"` // "egress", "ingress", "bus", "gpu"
	Index    int     `json:"index"`
	Capacity float64 `json:"capacity,omitempty"` // bytes/s (0 for GPU streams)
	// Bytes is the payload moved through the resource (kernel bytes for
	// GPU streams, where known).
	Bytes int64 `json:"bytes"`
	// BusySeconds is total occupied time; Mean is BusySeconds over the
	// recording window; Peak is the highest single-bin occupancy.
	BusySeconds float64 `json:"busy_s"`
	Mean        float64 `json:"mean"`
	Peak        float64 `json:"peak"`
	// LongestIdle is the longest unoccupied stretch inside the window.
	LongestIdle float64 `json:"longest_idle_s"`
	// Bins is the per-bin occupancy timeline (text report only).
	Bins []float64 `json:"-"`
}

type interval struct {
	begin, end float64
	bytes      int64
}

// Utilization computes every resource's occupancy timeline over the
// trace extent, split into bins equal intervals (bins <= 0 selects 50).
// Resources are ordered egress/ingress/bus by node, then GPU by rank;
// resources that never saw traffic are included with zero occupancy when
// the machine description is present, so saturation and idleness are
// both visible.
func Utilization(t *Trace, bins int) []Resource {
	if bins <= 0 {
		bins = 50
	}
	start, end, ok := t.Extent()
	if !ok || end <= start {
		return nil
	}

	occ := make(map[string][]interval)
	add := func(key string, begin, endt float64, bytes int64) {
		occ[key] = append(occ[key], interval{begin, endt, bytes})
	}
	for _, ev := range t.Wire {
		switch ev.Kind {
		case "inter":
			add(fmt.Sprintf("egress/%d", ev.SrcNode), ev.Start, ev.Start+ev.Ser, int64(ev.Bytes))
			add(fmt.Sprintf("ingress/%d", ev.DstNode), ev.End-ev.Ser, ev.End, int64(ev.Bytes))
		case "intra":
			add(fmt.Sprintf("bus/%d", ev.SrcNode), ev.Start, ev.Start+ev.Ser, int64(ev.Bytes))
		}
	}
	gpuRanks := make(map[int]bool)
	for _, id := range t.Ranks() {
		for _, s := range t.Spans[id] {
			if s.Track != obs.TrackGPU || s.End <= s.Begin {
				continue
			}
			gpuRanks[id] = true
			add(fmt.Sprintf("gpu/%d", id), s.Begin, s.End, s.Bytes)
		}
	}

	m := t.Machine
	var out []Resource
	emit := func(kind string, idx int, name string, cap float64) {
		r := Resource{Name: name, Kind: kind, Index: idx, Capacity: cap, Bins: make([]float64, bins)}
		ivs := occ[kind+"/"+fmt.Sprint(idx)]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].begin < ivs[j].begin })
		width := (end - start) / float64(bins)
		idleFrom := start
		for _, iv := range ivs {
			lo, hi := iv.begin, iv.end
			if lo < start {
				lo = start
			}
			if hi > end {
				hi = end
			}
			if hi <= lo {
				continue
			}
			r.Bytes += iv.bytes
			r.BusySeconds += hi - lo
			if gap := lo - idleFrom; gap > r.LongestIdle {
				r.LongestIdle = gap
			}
			if hi > idleFrom {
				idleFrom = hi
			}
			b0 := int((lo - start) / width)
			b1 := int((hi - start) / width)
			if b1 >= bins {
				b1 = bins - 1
			}
			for b := b0; b <= b1; b++ {
				blo, bhi := start+float64(b)*width, start+float64(b+1)*width
				if blo < lo {
					blo = lo
				}
				if bhi > hi {
					bhi = hi
				}
				if bhi > blo {
					r.Bins[b] += (bhi - blo) / width
				}
			}
		}
		if gap := end - idleFrom; gap > r.LongestIdle {
			r.LongestIdle = gap
		}
		r.Mean = r.BusySeconds / (end - start)
		for _, v := range r.Bins {
			if v > r.Peak {
				r.Peak = v
			}
		}
		out = append(out, r)
	}

	nodes := m.Nodes
	if nodes == 0 {
		// No machine description: infer node count from the traffic seen.
		for _, ev := range t.Wire {
			if ev.SrcNode >= nodes {
				nodes = ev.SrcNode + 1
			}
			if ev.DstNode >= nodes {
				nodes = ev.DstNode + 1
			}
		}
	}
	for nd := 0; nd < nodes; nd++ {
		emit("egress", nd, fmt.Sprintf("node%d egress", nd), m.InterBW)
		emit("ingress", nd, fmt.Sprintf("node%d ingress", nd), m.InterBW)
		emit("bus", nd, fmt.Sprintf("node%d bus", nd), m.IntraBW)
	}
	ranks := make([]int, 0, len(gpuRanks))
	for id := range gpuRanks {
		ranks = append(ranks, id)
	}
	sort.Ints(ranks)
	for _, id := range ranks {
		emit("gpu", id, fmt.Sprintf("rank%d gpu", id), 0)
	}
	return out
}

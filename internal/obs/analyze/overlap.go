package analyze

import "repro/internal/obs"

// OverlapStat measures how well the pipelined compressed exchange hides
// its GPU (de)compression kernels under communication. KernelSeconds is
// total GPU compress+decompress kernel time; ExposedSeconds is the host
// time spent blocked waiting on those kernels (the compress-wait spans);
// the difference is the kernel time that ran under puts for free.
type OverlapStat struct {
	KernelSeconds  float64 `json:"kernel_s"`
	ExposedSeconds float64 `json:"exposed_s"`
	HiddenSeconds  float64 `json:"hidden_s"`
	// Efficiency is HiddenSeconds/KernelSeconds: 1 means fully hidden,
	// 0 means every kernel second stalled the host.
	Efficiency float64 `json:"efficiency"`
}

// Overlap computes the compression/communication overlap of the trace.
// ok is false when the trace has no compression kernels (nothing to
// hide, so no meaningful efficiency).
func Overlap(t *Trace) (OverlapStat, bool) {
	var o OverlapStat
	for _, id := range t.Ranks() {
		for _, s := range t.Spans[id] {
			if s.End <= s.Begin {
				continue
			}
			switch {
			case s.Track == obs.TrackGPU && (s.Phase == obs.PhaseCompress || s.Phase == obs.PhaseDecompress):
				o.KernelSeconds += s.End - s.Begin
			case s.Track == obs.TrackHost && s.Phase == obs.PhaseCompressWait:
				o.ExposedSeconds += s.End - s.Begin
			}
		}
	}
	if o.KernelSeconds == 0 {
		return o, false
	}
	o.HiddenSeconds = o.KernelSeconds - o.ExposedSeconds
	if o.HiddenSeconds < 0 {
		o.HiddenSeconds = 0
	}
	o.Efficiency = o.HiddenSeconds / o.KernelSeconds
	return o, true
}

package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Summary is the machine-readable digest of one trace: the phase
// breakdown with critical-path attribution, the per-resource
// utilization, and the overlap efficiency. It is what tracetool prints
// and what bench artifacts embed.
type Summary struct {
	WallSeconds float64 `json:"wall_s"`
	Ranks       int     `json:"ranks"`
	// BoundRank is the rank whose final span ends the run (-1 when the
	// trace has no host spans).
	BoundRank int        `json:"bound_rank"`
	Phases    []PhaseAgg `json:"phases"`
	// PathSeconds decomposes the critical path by innermost attribution:
	// phase names, "wire inter"/"wire intra"/"wire local", and "idle".
	// The values sum to WallSeconds.
	PathSeconds map[string]float64 `json:"path_seconds"`
	// TopLinks are the concrete links on the critical path, worst first.
	TopLinks  []LinkShare  `json:"top_links,omitempty"`
	Resources []Resource   `json:"resources,omitempty"`
	Overlap   *OverlapStat `json:"overlap,omitempty"`

	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	DroppedWire  int64 `json:"dropped_wire,omitempty"`
}

// LinkShare is one link's share of the critical path.
type LinkShare struct {
	Link    string  `json:"link"`
	Seconds float64 `json:"seconds"`
}

// Summarize runs every analysis over the trace. bins controls the
// utilization timeline resolution (<= 0 selects the default).
func Summarize(t *Trace, bins int) Summary {
	s := Summary{BoundRank: -1, DroppedSpans: t.DroppedSpans, DroppedWire: t.DroppedWire}
	begin, end, ok := t.Extent()
	if !ok {
		return s
	}
	s.WallSeconds = end - begin

	path := CriticalPath(t)
	s.BoundRank = path.BoundRank
	s.PathSeconds = path.PhaseSeconds()

	onPath := make(map[obs.Phase]float64)
	for _, seg := range path.Segments {
		if seg.Kind == SegSpan {
			onPath[seg.Top] += seg.Duration()
		}
	}
	agg, ranks := t.phaseTotals()
	s.Ranks = ranks
	for _, ph := range obs.PipelinePhases {
		a := agg[ph]
		if a == nil {
			continue
		}
		a.OnPath = onPath[ph]
		a.Slack = a.MaxPerRank - a.OnPath
		if a.Slack < 0 {
			a.Slack = 0
		}
		s.Phases = append(s.Phases, *a)
	}

	for link, sec := range path.LinkSeconds() {
		s.TopLinks = append(s.TopLinks, LinkShare{Link: link, Seconds: sec})
	}
	sort.Slice(s.TopLinks, func(i, j int) bool {
		if s.TopLinks[i].Seconds != s.TopLinks[j].Seconds {
			return s.TopLinks[i].Seconds > s.TopLinks[j].Seconds
		}
		return s.TopLinks[i].Link < s.TopLinks[j].Link
	})

	s.Resources = Utilization(t, bins)
	if o, ok := Overlap(t); ok {
		s.Overlap = &o
	}
	return s
}

// WriteText prints the summary as the human-readable tracetool report.
func (s Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "wall %.3fms over %d ranks", s.WallSeconds*1e3, s.Ranks)
	if s.BoundRank >= 0 {
		fmt.Fprintf(w, " (run ends on rank %d)", s.BoundRank)
	}
	fmt.Fprintln(w)

	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "phase breakdown with critical-path attribution")
		fmt.Fprintf(w, "  %-10s %12s %12s %12s %12s\n", "phase", "mean/rank", "max/rank", "on-path", "slack")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-10s %10.3fms %10.3fms %10.3fms %10.3fms\n",
				p.Name, p.MeanPerRank*1e3, p.MaxPerRank*1e3, p.OnPath*1e3, p.Slack*1e3)
		}
	}

	if len(s.PathSeconds) > 0 {
		fmt.Fprintln(w, "critical path decomposition")
		type kv struct {
			k string
			v float64
		}
		var items []kv
		for k, v := range s.PathSeconds {
			items = append(items, kv{k, v})
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].v != items[j].v {
				return items[i].v > items[j].v
			}
			return items[i].k < items[j].k
		})
		for _, it := range items {
			share := 0.0
			if s.WallSeconds > 0 {
				share = it.v / s.WallSeconds
			}
			fmt.Fprintf(w, "  %-16s %10.3fms %6.1f%%\n", it.k, it.v*1e3, 100*share)
		}
	}
	if len(s.TopLinks) > 0 {
		fmt.Fprintln(w, "links on the critical path")
		for _, l := range s.TopLinks {
			fmt.Fprintf(w, "  %-24s %10.3fms\n", l.Link, l.Seconds*1e3)
		}
	}

	if len(s.Resources) > 0 {
		fmt.Fprintln(w, "resource utilization (busy-time occupancy)")
		fmt.Fprintf(w, "  %-16s %6s %6s %12s %12s  %s\n", "resource", "mean", "peak", "busy", "max idle", "timeline")
		for _, r := range s.Resources {
			fmt.Fprintf(w, "  %-16s %5.1f%% %5.1f%% %10.3fms %10.3fms  %s\n",
				r.Name, 100*r.Mean, 100*r.Peak, r.BusySeconds*1e3, r.LongestIdle*1e3, sparkline(r.Bins))
		}
	}

	if s.Overlap != nil {
		o := s.Overlap
		fmt.Fprintf(w, "compression overlap: %.1f%% hidden (%.3fms kernels, %.3fms exposed as compress-wait)\n",
			100*o.Efficiency, o.KernelSeconds*1e3, o.ExposedSeconds*1e3)
	}
	if s.DroppedSpans > 0 || s.DroppedWire > 0 {
		fmt.Fprintf(w, "warning: recording dropped %d spans, %d wire events; analyses undercount\n",
			s.DroppedSpans, s.DroppedWire)
	}
}

// sparkline renders a bin timeline as one character per bin.
func sparkline(bins []float64) string {
	if len(bins) == 0 {
		return ""
	}
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for _, v := range bins {
		i := int(v * float64(len(ramp)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(ramp) {
			i = len(ramp) - 1
		}
		b.WriteByte(ramp[i])
	}
	return b.String()
}

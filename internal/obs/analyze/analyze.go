// Package analyze turns a recording of the obs layer into answers: the
// critical path through the rank-span/wire-event dependency graph (which
// rank, phase, and link bound the end-to-end time), per-resource
// utilization timelines (are the NICs saturated? — a number, not a
// picture), compression/communication overlap efficiency, and
// model-vs-measured deltas against the analytic exchange cost model.
//
// The package consumes either a live *obs.Recorder (FromRecorder) or a
// Chrome-trace JSON previously written by obs.WriteChromeTrace
// (LoadChromeTrace) — the exporter embeds the machine description and
// the wire occupancy windows, so a saved trace is self-contained. On top
// of the analyses sits the versioned bench-artifact schema
// (Artifact/Row) that the benchmark drivers emit with -json and that
// cmd/benchdiff gates regressions against.
package analyze

import (
	"sort"

	"repro/internal/obs"
)

// Trace is the normalized input of every analysis: per-rank spans in
// begin order plus the shared wire-event stream and the machine's
// resource capacities.
type Trace struct {
	Machine obs.Machine
	// Spans holds each recorded rank's spans (host and GPU tracks).
	Spans map[int][]obs.Span
	Wire  []obs.WireEvent
	// DroppedSpans and DroppedWire carry the recording-health counters
	// when known (zero for loaded traces that predate them).
	DroppedSpans, DroppedWire int64
}

// FromRecorder snapshots a recorder into an analyzable trace.
func FromRecorder(r *obs.Recorder) *Trace {
	t := &Trace{
		Machine:      r.Machine(),
		Spans:        make(map[int][]obs.Span),
		Wire:         r.WireEvents(),
		DroppedSpans: r.DroppedSpans(),
		DroppedWire:  r.DroppedWire(),
	}
	for _, id := range r.RankIDs() {
		t.Spans[id] = r.RankSpans(id)
	}
	return t
}

// Ranks returns the rank ids present in the trace, sorted.
func (t *Trace) Ranks() []int {
	ids := make([]int, 0, len(t.Spans))
	for id := range t.Spans {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Extent returns the recording's virtual-time window: the minimum begin
// and maximum end over all host spans (falling back to wire events when
// no host spans exist). ok is false for an empty trace.
func (t *Trace) Extent() (begin, end float64, ok bool) {
	for _, spans := range t.Spans {
		for _, s := range spans {
			if s.Track != obs.TrackHost || s.End < s.Begin {
				continue
			}
			if !ok || s.Begin < begin {
				begin = s.Begin
			}
			if !ok || s.End > end {
				end = s.End
			}
			ok = true
		}
	}
	if !ok {
		for _, ev := range t.Wire {
			if !ok || ev.Injected < begin {
				begin = ev.Injected
			}
			if !ok || ev.Arrival > end {
				end = ev.Arrival
			}
			ok = true
		}
	}
	return begin, end, ok
}

// hostSpans returns rank id's closed host spans sorted by begin (ties:
// longer first, so containing spans precede contained ones).
func (t *Trace) hostSpans(id int) []obs.Span {
	var out []obs.Span
	for _, s := range t.Spans[id] {
		if s.Track == obs.TrackHost && s.End >= s.Begin {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		return out[i].End > out[j].End
	})
	return out
}

// splitNesting partitions begin-sorted spans into top-level spans and
// nested detail (spans contained in an earlier-beginning, later-ending
// span — obs nesting is a call stack, so partial overlap cannot occur).
func splitNesting(spans []obs.Span) (top, nested []obs.Span) {
	maxEnd := 0.0
	seen := false
	for _, s := range spans {
		if seen && s.End <= maxEnd {
			nested = append(nested, s)
			continue
		}
		top = append(top, s)
		if !seen || s.End > maxEnd {
			maxEnd = s.End
		}
		seen = true
	}
	return top, nested
}

// PhaseAgg aggregates one pipeline phase across ranks, extended with its
// critical-path share.
type PhaseAgg struct {
	Name        string  `json:"name"`
	MeanPerRank float64 `json:"mean_per_rank"`
	MaxPerRank  float64 `json:"max_per_rank"`
	Bytes       int64   `json:"bytes"`
	// OnPath is the time this phase contributes to the critical path;
	// Slack is how much of the worst rank's phase total is off the path
	// (max(0, MaxPerRank − OnPath)) — time that can grow before the phase
	// necessarily stretches the run.
	OnPath float64 `json:"on_path"`
	Slack  float64 `json:"slack"`
}

// phaseTotals computes per-rank pipeline-phase sums over host spans.
func (t *Trace) phaseTotals() (agg map[obs.Phase]*PhaseAgg, ranks int) {
	agg = make(map[obs.Phase]*PhaseAgg)
	for _, id := range t.Ranks() {
		var perRank [len(obs.PipelinePhases)]float64
		hasHost := false
		for _, s := range t.Spans[id] {
			if s.Track != obs.TrackHost || s.End < s.Begin {
				continue
			}
			hasHost = true
			if !s.Phase.Pipeline() {
				continue
			}
			for i, ph := range obs.PipelinePhases {
				if ph == s.Phase {
					perRank[i] += s.End - s.Begin
				}
			}
			a := agg[s.Phase]
			if a == nil {
				a = &PhaseAgg{Name: s.Phase.String()}
				agg[s.Phase] = a
			}
			a.Bytes += s.Bytes
		}
		if !hasHost {
			continue
		}
		ranks++
		for i, ph := range obs.PipelinePhases {
			if perRank[i] == 0 {
				continue
			}
			a := agg[ph]
			if a == nil {
				a = &PhaseAgg{Name: ph.String()}
				agg[ph] = a
			}
			a.MeanPerRank += perRank[i] // sum for now; divided by ranks below
			if perRank[i] > a.MaxPerRank {
				a.MaxPerRank = perRank[i]
			}
		}
	}
	if ranks > 0 {
		for _, a := range agg {
			a.MeanPerRank /= float64(ranks)
		}
	}
	return agg, ranks
}

package analyze

import (
	"fmt"
	"io"
)

// DiffLine is one metric's change between two artifacts. Delta is the
// relative worsening: positive means the new run is worse (slower, or
// less bandwidth), independent of the metric's direction.
type DiffLine struct {
	Row    string // "name/gpus"
	Metric string // "seconds", "node_bw", "max_error"
	Old    float64
	New    float64
	Delta  float64
}

// DiffResult is the outcome of comparing a new artifact against a
// baseline.
type DiffResult struct {
	Threshold    float64
	Regressions  []DiffLine
	Improvements []DiffLine
	Unchanged    int
	// Missing lists baseline rows absent from the new artifact (treated
	// as regressions: a configuration silently disappearing from the
	// bench must fail the gate). Added lists new rows with no baseline.
	Missing []string
	Added   []string
	// Degraded lists new rows measured on a degraded path (lost
	// messages, crashes, self-healing repairs, per-peer fallback, or
	// recovery rollbacks/restarts) when their baseline was not, plus
	// rows that newly pay checkpoint overhead inside the measured
	// window: those numbers are not comparable to the fast path the
	// baseline recorded, so the gate fails.
	Degraded []string
	// OverBudget lists stages of the new artifact whose measured error
	// exceeds the theoretical bound, or that saw poisoned (non-finite)
	// payloads. Unlike the threshold comparisons this gate needs no
	// baseline: a bound violation is wrong in absolute terms.
	OverBudget []string
	// TunedSlower lists tuned rows of the new artifact (rows carrying a
	// Tuning section) that are worse than the best fixed-configuration
	// baseline row at the same GPU count beyond the threshold. An
	// autotuner that loses to a configuration it could have picked is a
	// regression even though the tuned row has no baseline of its own.
	TunedSlower []DiffLine
	// ShrinkRatios reports, for each row that shrank against a clean
	// baseline (already failing the gate via Degraded), the post-shrink
	// throughput ratio — how much slower the degraded topology ran than
	// the full-size baseline. Informational: it sizes the cost of
	// surviving, it does not gate on its own.
	ShrinkRatios []DiffLine
}

// Regressed reports whether the gate should fail.
func (d DiffResult) Regressed() bool {
	return len(d.Regressions) > 0 || len(d.Missing) > 0 || len(d.Degraded) > 0 ||
		len(d.OverBudget) > 0 || len(d.TunedSlower) > 0
}

// Diff compares two artifacts row by row (matched on name and GPU
// count). A metric regresses when its relative worsening exceeds
// threshold (e.g. 0.1 = 10%). Seconds and MaxError are lower-is-better;
// NodeBW is higher-is-better. Metrics absent (zero) on either side are
// skipped — a baseline without model rows does not gate them.
func Diff(oldA, newA *Artifact, threshold float64) DiffResult {
	d := DiffResult{Threshold: threshold}
	type key struct {
		name string
		gpus int
	}
	newRows := make(map[key]Row, len(newA.Rows))
	for _, r := range newA.Rows {
		newRows[key{r.Name, r.GPUs}] = r
	}
	seen := make(map[key]bool, len(oldA.Rows))
	for _, or := range oldA.Rows {
		k := key{or.Name, or.GPUs}
		seen[k] = true
		nr, ok := newRows[k]
		if !ok {
			d.Missing = append(d.Missing, rowName(or))
			continue
		}
		compare := func(metric string, o, n float64, lowerBetter bool) {
			if o <= 0 || n <= 0 {
				return
			}
			delta := (n - o) / o
			if !lowerBetter {
				delta = (o - n) / o
			}
			line := DiffLine{Row: rowName(or), Metric: metric, Old: o, New: n, Delta: delta}
			switch {
			case delta > threshold:
				d.Regressions = append(d.Regressions, line)
			case delta < -threshold:
				d.Improvements = append(d.Improvements, line)
			default:
				d.Unchanged++
			}
		}
		compare("seconds", or.Seconds, nr.Seconds, true)
		compare("node_bw", or.NodeBW, nr.NodeBW, false)
		compare("max_error", or.MaxError, nr.MaxError, true)
		oldErr := make(map[string]ErrorStageRow, len(or.Errors))
		for _, e := range or.Errors {
			oldErr[e.Label] = e
		}
		for _, e := range nr.Errors {
			if oe, ok := oldErr[e.Label]; ok {
				compare("err/"+e.Label, oe.WorstRel, e.WorstRel, true)
			}
		}
		switch {
		case nr.Faults.Shrunk() && !or.Faults.Shrunk():
			// A run that lost ranks permanently finished on a smaller
			// machine than its baseline: explicitly called out ahead of the
			// generic degraded case, with the throughput cost quantified.
			d.Degraded = append(d.Degraded, fmt.Sprintf("%s [shrink appeared: %d arc(s), %d rank(s) lost]",
				rowName(nr), nr.Faults.Shrinks, nr.Faults.RanksLost))
			if or.Seconds > 0 && nr.Seconds > 0 {
				d.ShrinkRatios = append(d.ShrinkRatios, DiffLine{
					Row: rowName(nr), Metric: "post_shrink_seconds", Old: or.Seconds, New: nr.Seconds,
					Delta: (nr.Seconds - or.Seconds) / or.Seconds,
				})
			}
		case nr.Faults.Degraded() && !or.Faults.Degraded():
			d.Degraded = append(d.Degraded, rowName(nr))
		case nr.Faults != nil && nr.Faults.CheckpointBytes > 0 &&
			(or.Faults == nil || or.Faults.CheckpointBytes == 0):
			// Checkpointing pays write bandwidth inside the measured
			// window; a row that newly carries that overhead is not
			// comparable to its checkpoint-free baseline.
			d.Degraded = append(d.Degraded, rowName(nr)+" [checkpoint overhead appeared]")
		}
		if or.Faults != nil && nr.Faults != nil {
			compare("mttr_seconds", or.Faults.MTTRSeconds, nr.Faults.MTTRSeconds, true)
			compare("shrink_mttr_seconds", or.Faults.ShrinkMTTRSeconds, nr.Faults.ShrinkMTTRSeconds, true)
		}
	}
	// Best fixed-configuration baseline per GPU count and pipeline
	// precision, for the tuned-vs-best-fixed gate: lowest seconds and
	// highest node bandwidth among the baseline's untuned rows. Matching
	// precision keeps the comparison inside the tuner's candidate space —
	// an fp32 pipeline wins on compute, not on a better exchange.
	type bestKey struct{ gpus, prec int }
	bestSec := make(map[bestKey]float64)
	bestBW := make(map[bestKey]float64)
	for _, or := range oldA.Rows {
		if len(or.Tuning) > 0 {
			continue
		}
		k := bestKey{or.GPUs, or.Precision}
		if or.Seconds > 0 && (bestSec[k] == 0 || or.Seconds < bestSec[k]) {
			bestSec[k] = or.Seconds
		}
		if or.NodeBW > bestBW[k] {
			bestBW[k] = or.NodeBW
		}
	}
	for _, r := range newA.Rows {
		if !seen[key{r.Name, r.GPUs}] {
			d.Added = append(d.Added, rowName(r))
		}
		if len(r.Tuning) > 0 {
			k := bestKey{r.GPUs, r.Precision}
			if b := bestSec[k]; b > 0 && r.Seconds > b*(1+threshold) {
				d.TunedSlower = append(d.TunedSlower, DiffLine{
					Row: rowName(r), Metric: "seconds", Old: b, New: r.Seconds,
					Delta: (r.Seconds - b) / b,
				})
			}
			if b := bestBW[k]; b > 0 && r.NodeBW > 0 && r.NodeBW < b*(1-threshold) {
				d.TunedSlower = append(d.TunedSlower, DiffLine{
					Row: rowName(r), Metric: "node_bw", Old: b, New: r.NodeBW,
					Delta: (b - r.NodeBW) / b,
				})
			}
		}
		// The budget gate covers every new row, matched or not.
		for _, e := range r.Errors {
			if e.Bound > 0 && e.WorstRel > e.Bound {
				d.OverBudget = append(d.OverBudget,
					fmt.Sprintf("%s %s: measured %.3g > bound %.3g", rowName(r), e.Label, e.WorstRel, e.Bound))
			}
			if e.Poisoned > 0 {
				d.OverBudget = append(d.OverBudget,
					fmt.Sprintf("%s %s: %d poisoned (non-finite) error samples", rowName(r), e.Label, e.Poisoned))
			}
		}
	}
	return d
}

func rowName(r Row) string { return fmt.Sprintf("%s/%d", r.Name, r.GPUs) }

// WriteText prints the diff outcome for the console.
func (d DiffResult) WriteText(w io.Writer) {
	for _, l := range d.Regressions {
		fmt.Fprintf(w, "REGRESSION %-24s %-9s %.4g -> %.4g (%+.1f%%, threshold %.0f%%)\n",
			l.Row, l.Metric, l.Old, l.New, 100*l.Delta, 100*d.Threshold)
	}
	for _, m := range d.Missing {
		fmt.Fprintf(w, "REGRESSION %-24s missing from new artifact\n", m)
	}
	for _, g := range d.Degraded {
		fmt.Fprintf(w, "DEGRADED   %-24s measured on a degraded path (repairs/fallback/losses/rollbacks/shrinks); not comparable to baseline\n", g)
	}
	for _, l := range d.ShrinkRatios {
		fmt.Fprintf(w, "SHRUNK     %-24s %-9s full-size %.4g, post-shrink %.4g (%.2fx slower)\n",
			l.Row, l.Metric, l.Old, l.New, l.New/l.Old)
	}
	for _, o := range d.OverBudget {
		fmt.Fprintf(w, "OVERBUDGET %s\n", o)
	}
	for _, l := range d.TunedSlower {
		fmt.Fprintf(w, "TUNED-SLOWER %-22s %-9s best fixed %.4g, tuned %.4g (%+.1f%%, threshold %.0f%%)\n",
			l.Row, l.Metric, l.Old, l.New, 100*l.Delta, 100*d.Threshold)
	}
	for _, l := range d.Improvements {
		fmt.Fprintf(w, "improved   %-24s %-9s %.4g -> %.4g (%+.1f%%)\n",
			l.Row, l.Metric, l.Old, l.New, -100*l.Delta)
	}
	for _, a := range d.Added {
		fmt.Fprintf(w, "added      %-24s (no baseline)\n", a)
	}
	if !d.Regressed() && len(d.Improvements) == 0 {
		fmt.Fprintf(w, "no change beyond %.0f%% across %d comparisons\n", 100*d.Threshold, d.Unchanged)
	}
}

package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// chromeFile mirrors the JSON written by obs.WriteChromeTrace: the
// standard Trace Event Format keys plus the custom "machine" key the
// exporter embeds so a saved trace is self-describing.
type chromeFile struct {
	Machine     obs.Machine   `json:"machine"`
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type wireArgs struct {
	Bytes     int     `json:"bytes"`
	Dst       int     `json:"dst"`
	Tag       int     `json:"tag"`
	SrcNode   int     `json:"src_node"`
	DstNode   int     `json:"dst_node"`
	ArrivalUs float64 `json:"arrival_us"`
	StartUs   float64 `json:"start_us"`
	SerUs     float64 `json:"ser_us"`
}

type spanArgs struct {
	Bytes int64 `json:"bytes"`
}

// LoadChromeTrace reads a trace previously saved with -trace (the
// Chrome Trace Event Format JSON written by obs.WriteChromeTrace) back
// into an analyzable Trace. Only complete ("X") events are considered;
// the category distinguishes host spans, GPU spans, and wire transfers.
func LoadChromeTrace(r io.Reader) (*Trace, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("analyze: parsing chrome trace: %w", err)
	}
	t := &Trace{Machine: f.Machine, Spans: make(map[int][]obs.Span)}
	const us = 1e-6
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Cat {
		case "host", "gpu":
			ph, ok := obs.ParsePhase(ev.Name)
			if !ok {
				continue
			}
			track := obs.TrackHost
			if ev.Cat == "gpu" {
				track = obs.TrackGPU
			}
			var a spanArgs
			if len(ev.Args) > 0 {
				json.Unmarshal(ev.Args, &a)
			}
			t.Spans[ev.Pid] = append(t.Spans[ev.Pid], obs.Span{
				Phase: ph, Track: track,
				Begin: ev.Ts * us, End: (ev.Ts + ev.Dur) * us,
				Bytes: a.Bytes,
			})
		case "wire":
			var a wireArgs
			if len(ev.Args) > 0 {
				if err := json.Unmarshal(ev.Args, &a); err != nil {
					return nil, fmt.Errorf("analyze: wire event args: %w", err)
				}
			}
			t.Wire = append(t.Wire, obs.WireEvent{
				Src: ev.Pid, Dst: a.Dst, Tag: a.Tag, Bytes: a.Bytes, Kind: ev.Name,
				SrcNode: a.SrcNode, DstNode: a.DstNode,
				Injected: ev.Ts * us, End: (ev.Ts + ev.Dur) * us,
				Arrival: a.ArrivalUs * us,
				Start:   a.StartUs * us, Ser: a.SerUs * us,
			})
		}
	}
	for id := range t.Spans {
		spans := t.Spans[id]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Begin < spans[j].Begin })
	}
	return t, nil
}

// LoadChromeTraceFile is LoadChromeTrace on a file path.
func LoadChromeTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadChromeTrace(f)
}

package analyze_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// tracedRun records one compressed forward FFT on a 2-node Summit slice
// — the richest trace shape: all five pipeline phases, GPU compression
// kernels, compress-wait stalls, and traffic on every fabric level.
func tracedRun(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := obs.New(obs.Options{Trace: true, Metrics: true})
	opts := core.Options{Backend: core.BackendCompressed, Method: compress.Cast32{}}
	res := core.MeasureWith[complex128](rec, netsim.Summit(2), [3]int{16, 16, 16}, opts, 1, false)
	if res.ForwardTime <= 0 {
		t.Fatalf("forward time = %v", res.ForwardTime)
	}
	return rec
}

// TestCriticalPathSelfConsistent pins the acceptance criterion: the
// extracted path tiles the recording's end-to-end window — contiguous
// segments, summing to the wall time within 1%.
func TestCriticalPathSelfConsistent(t *testing.T) {
	tr := analyze.FromRecorder(tracedRun(t))
	begin, end, ok := tr.Extent()
	if !ok {
		t.Fatal("empty trace")
	}
	wall := end - begin

	p := analyze.CriticalPath(tr)
	if p.BoundRank < 0 {
		t.Fatal("no bound rank")
	}
	if len(p.Segments) == 0 {
		t.Fatal("no segments")
	}
	if d := math.Abs(p.Duration()-wall) / wall; d > 0.01 {
		t.Errorf("path duration %.6g vs wall %.6g: off by %.2f%%, want <1%%", p.Duration(), wall, 100*d)
	}
	eps := wall * 1e-9
	var sum float64
	for i, s := range p.Segments {
		if s.End < s.Begin {
			t.Fatalf("segment %d inverted: [%g, %g]", i, s.Begin, s.End)
		}
		sum += s.Duration()
		if i > 0 && math.Abs(p.Segments[i-1].End-s.Begin) > eps {
			t.Fatalf("segment %d not contiguous: prev end %.9g, begin %.9g", i, p.Segments[i-1].End, s.Begin)
		}
	}
	if math.Abs(p.Segments[0].Begin-begin) > eps {
		t.Errorf("path starts at %.9g, trace at %.9g", p.Segments[0].Begin, begin)
	}
	if math.Abs(p.Segments[len(p.Segments)-1].End-end) > eps {
		t.Errorf("path ends at %.9g, trace at %.9g", p.Segments[len(p.Segments)-1].End, end)
	}
	if d := math.Abs(sum-wall) / wall; d > 0.01 {
		t.Errorf("segment sum %.6g vs wall %.6g: off by %.2f%%, want <1%%", sum, wall, 100*d)
	}
	// A multi-node exchange-bound run must put wire time on the path.
	if len(p.LinkSeconds()) == 0 {
		t.Error("no wire segments on the critical path of a 2-node run")
	}
}

// TestUtilizationBounded pins the second acceptance criterion: busy-time
// occupancy per link bin never exceeds 100% — netsim's FIFO resources
// guarantee disjoint occupancy windows, and the analysis must not
// double-count them.
func TestUtilizationBounded(t *testing.T) {
	tr := analyze.FromRecorder(tracedRun(t))
	res := analyze.Utilization(tr, 64)
	if len(res) == 0 {
		t.Fatal("no resources")
	}
	kinds := map[string]bool{}
	for _, r := range res {
		kinds[r.Kind] = true
		if r.Mean < 0 || r.Mean > 1+1e-9 {
			t.Errorf("%s mean occupancy %.4f out of [0,1]", r.Name, r.Mean)
		}
		for b, v := range r.Bins {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s bin %d occupancy %.4f exceeds 100%%", r.Name, b, v)
			}
		}
		if r.Peak > 1+1e-9 {
			t.Errorf("%s peak %.4f exceeds 100%%", r.Name, r.Peak)
		}
		if (r.Kind == "egress" || r.Kind == "ingress" || r.Kind == "bus") && r.Capacity <= 0 {
			t.Errorf("%s capacity missing", r.Name)
		}
	}
	for _, want := range []string{"egress", "ingress", "bus", "gpu"} {
		if !kinds[want] {
			t.Errorf("no %s resource in %d-resource report", want, len(res))
		}
	}
}

// TestChromeRoundTrip: saving a trace and loading it back preserves
// everything the analyses consume.
func TestChromeRoundTrip(t *testing.T) {
	rec := tracedRun(t)
	direct := analyze.FromRecorder(rec)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := analyze.LoadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Machine != direct.Machine {
		t.Errorf("machine: loaded %+v, direct %+v", loaded.Machine, direct.Machine)
	}
	if got, want := len(loaded.Wire), len(direct.Wire); got != want {
		t.Errorf("wire events: loaded %d, direct %d", got, want)
	}
	if got, want := len(loaded.Ranks()), len(direct.Ranks()); got != want {
		t.Errorf("ranks: loaded %d, direct %d", got, want)
	}
	db, de, _ := direct.Extent()
	lb, le, ok := loaded.Extent()
	if !ok {
		t.Fatal("loaded trace empty")
	}
	// Timestamps round-trip through microseconds; allow float slop.
	if math.Abs(lb-db) > 1e-9 || math.Abs(le-de) > 1e-9 {
		t.Errorf("extent: loaded [%g, %g], direct [%g, %g]", lb, le, db, de)
	}
	dp, lp := analyze.CriticalPath(direct), analyze.CriticalPath(loaded)
	if wall := de - db; math.Abs(dp.Duration()-lp.Duration()) > 0.001*wall {
		t.Errorf("critical path: loaded %.6g, direct %.6g", lp.Duration(), dp.Duration())
	}
}

// TestSummarize checks the digest is coherent: pipeline phases present,
// on-path attribution bounded by wall, overlap present for a pipelined
// compressed run.
func TestSummarize(t *testing.T) {
	tr := analyze.FromRecorder(tracedRun(t))
	s := analyze.Summarize(tr, 32)
	if s.Ranks != 12 {
		t.Errorf("ranks = %d, want 12", s.Ranks)
	}
	if s.WallSeconds <= 0 {
		t.Fatal("no wall time")
	}
	var pathSum float64
	for _, v := range s.PathSeconds {
		pathSum += v
	}
	if d := math.Abs(pathSum-s.WallSeconds) / s.WallSeconds; d > 0.01 {
		t.Errorf("path decomposition sums to %.6g, wall %.6g", pathSum, s.WallSeconds)
	}
	seen := map[string]bool{}
	for _, p := range s.Phases {
		seen[p.Name] = true
		if p.OnPath < 0 || p.OnPath > s.WallSeconds*(1+1e-9) {
			t.Errorf("phase %s on-path %.6g out of [0, wall]", p.Name, p.OnPath)
		}
		if p.Slack < 0 {
			t.Errorf("phase %s slack %.6g negative", p.Name, p.Slack)
		}
	}
	for _, want := range []string{"pack", "exchange", "unpack", "fft"} {
		if !seen[want] {
			t.Errorf("phase %s missing from summary", want)
		}
	}
	if s.Overlap == nil {
		t.Fatal("no overlap stat for a compressed run")
	}
	if e := s.Overlap.Efficiency; e < 0 || e > 1 {
		t.Errorf("overlap efficiency %.3f out of [0,1]", e)
	}
	if s.Overlap.KernelSeconds <= 0 {
		t.Error("no compression kernel time")
	}
	var text bytes.Buffer
	s.WriteText(&text)
	if text.Len() == 0 {
		t.Error("empty text report")
	}
}

// TestDiffGate pins the benchdiff acceptance criterion: identical
// artifacts pass, a >=10% injected regression fails.
func TestDiffGate(t *testing.T) {
	base := &analyze.Artifact{
		Tool: "fftbench",
		Rows: []analyze.Row{
			{Name: "fp64", GPUs: 12, Seconds: 0.010, Gflops: 100},
			{Name: "fp64-32", GPUs: 12, Seconds: 0.008, Gflops: 125, MaxError: 1e-7},
			{Name: "osc", GPUs: 24, NodeBW: 1.5e10},
		},
	}
	same := *base
	if d := analyze.Diff(base, &same, 0.10); d.Regressed() {
		t.Errorf("identical artifacts regressed: %+v", d)
	}

	slower := *base
	slower.Rows = append([]analyze.Row(nil), base.Rows...)
	slower.Rows[0].Seconds = base.Rows[0].Seconds * 1.12 // +12% > 10% gate
	d := analyze.Diff(base, &slower, 0.10)
	if !d.Regressed() {
		t.Fatal("12% slowdown passed the 10% gate")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "seconds" {
		t.Errorf("regressions = %+v, want one seconds line", d.Regressions)
	}

	lessBW := *base
	lessBW.Rows = append([]analyze.Row(nil), base.Rows...)
	lessBW.Rows[2].NodeBW = base.Rows[2].NodeBW * 0.85 // -15% bandwidth
	if d := analyze.Diff(base, &lessBW, 0.10); !d.Regressed() {
		t.Error("15% bandwidth loss passed the 10% gate")
	}

	faster := *base
	faster.Rows = append([]analyze.Row(nil), base.Rows...)
	faster.Rows[0].Seconds = base.Rows[0].Seconds * 0.80
	if d := analyze.Diff(base, &faster, 0.10); d.Regressed() {
		t.Error("improvement flagged as regression")
	} else if len(d.Improvements) != 1 {
		t.Errorf("improvements = %+v, want one", d.Improvements)
	}

	missing := *base
	missing.Rows = base.Rows[:2] // osc/24 gone
	if d := analyze.Diff(base, &missing, 0.10); !d.Regressed() {
		t.Error("missing row passed the gate")
	}

	// A row whose numbers were earned on a degraded path (repairs,
	// fallback, losses) fails the gate even when its metrics are within
	// threshold: they are not comparable to the baseline's fast path.
	degraded := *base
	degraded.Rows = append([]analyze.Row(nil), base.Rows...)
	degraded.Rows[2].Faults = &analyze.FaultRow{Retries: 4, Repairs: 2}
	d = analyze.Diff(base, &degraded, 0.10)
	if !d.Regressed() || len(d.Degraded) != 1 || d.Degraded[0] != "osc/24" {
		t.Errorf("degraded row not flagged: %+v", d)
	}

	// Transparent transport retries alone are not a degradation.
	retried := *base
	retried.Rows = append([]analyze.Row(nil), base.Rows...)
	retried.Rows[2].Faults = &analyze.FaultRow{Drops: 3, Retries: 3}
	if d := analyze.Diff(base, &retried, 0.10); d.Regressed() {
		t.Errorf("retry-only row failed the gate: %+v", d)
	}

	// Rollbacks/restarts are recovery work: a recovered measurement is
	// not comparable to a fault-free baseline.
	recovered := *base
	recovered.Rows = append([]analyze.Row(nil), base.Rows...)
	recovered.Rows[2].Faults = &analyze.FaultRow{Crashes: 1, Rollbacks: 1, Restarts: 1, MTTRSeconds: 0.02}
	d = analyze.Diff(base, &recovered, 0.10)
	if !d.Regressed() || len(d.Degraded) != 1 {
		t.Errorf("recovered row not flagged: %+v", d)
	}

	// Checkpoint overhead appearing inside the measured window degrades
	// the row even with no crash: the baseline never paid it.
	ckpt := *base
	ckpt.Rows = append([]analyze.Row(nil), base.Rows...)
	ckpt.Rows[2].Faults = &analyze.FaultRow{Checkpoints: 4, CheckpointBytes: 4096}
	d = analyze.Diff(base, &ckpt, 0.10)
	if !d.Regressed() || len(d.Degraded) != 1 || d.Degraded[0] != "osc/24 [checkpoint overhead appeared]" {
		t.Errorf("checkpoint-overhead row not flagged: %+v", d)
	}

	// Both sides checkpointing: comparable, and MTTR is threshold-gated
	// like any lower-is-better metric.
	ckptBase := *base
	ckptBase.Rows = append([]analyze.Row(nil), base.Rows...)
	ckptBase.Rows[2].Faults = &analyze.FaultRow{Checkpoints: 4, CheckpointBytes: 4096, MTTRSeconds: 0.01}
	ckptNew := *base
	ckptNew.Rows = append([]analyze.Row(nil), base.Rows...)
	ckptNew.Rows[2].Faults = &analyze.FaultRow{Checkpoints: 4, CheckpointBytes: 4096, MTTRSeconds: 0.02}
	d = analyze.Diff(&ckptBase, &ckptNew, 0.10)
	if !d.Regressed() || len(d.Regressions) != 1 || d.Regressions[0].Metric != "mttr_seconds" {
		t.Errorf("MTTR doubling passed the gate: %+v", d)
	}
	if d := analyze.Diff(&ckptBase, &ckptBase, 0.10); d.Regressed() {
		t.Errorf("identical checkpointing artifacts regressed: %+v", d)
	}

	// Elastic shrink against a clean baseline: the run finished on fewer
	// ranks than it started with, so its numbers are never comparable —
	// the gate fails with an explicit diagnostic and the post-shrink
	// throughput ratio is reported alongside.
	shrunk := *base
	shrunk.Rows = append([]analyze.Row(nil), base.Rows...)
	shrunk.Rows[0].Seconds = base.Rows[0].Seconds * 1.05 // within threshold, still gated
	shrunk.Rows[0].Faults = &analyze.FaultRow{
		Crashes: 1, Rollbacks: 1, Shrinks: 1, RanksLost: 1,
		MigratedBytes: 1 << 20, ShrinkMTTRSeconds: 0.03,
	}
	d = analyze.Diff(base, &shrunk, 0.10)
	if !d.Regressed() || len(d.Degraded) != 1 ||
		d.Degraded[0] != "fp64/12 [shrink appeared: 1 arc(s), 1 rank(s) lost]" {
		t.Errorf("shrunk row not flagged explicitly: %+v", d)
	}
	if len(d.ShrinkRatios) != 1 || d.ShrinkRatios[0].Metric != "post_shrink_seconds" ||
		d.ShrinkRatios[0].New != shrunk.Rows[0].Seconds {
		t.Errorf("post-shrink throughput ratio missing: %+v", d.ShrinkRatios)
	}

	// Both sides shrunk identically: comparable again (the generic
	// degraded case is also skipped because the baseline is degraded),
	// and shrink MTTR gates like any lower-is-better metric.
	shrunkBase := shrunk
	shrunkWorse := *base
	shrunkWorse.Rows = append([]analyze.Row(nil), shrunk.Rows...)
	worse := *shrunk.Rows[0].Faults
	worse.ShrinkMTTRSeconds = 0.07
	shrunkWorse.Rows[0].Faults = &worse
	d = analyze.Diff(&shrunkBase, &shrunkWorse, 0.10)
	if !d.Regressed() || len(d.Regressions) != 1 || d.Regressions[0].Metric != "shrink_mttr_seconds" {
		t.Errorf("shrink-MTTR doubling passed the gate: %+v", d)
	}
	if len(d.Degraded) != 0 || len(d.ShrinkRatios) != 0 {
		t.Errorf("both-shrunk comparison flagged degraded: %+v", d)
	}
}

// TestDiffErrorGate pins the errtrack columns of the bench gate: per-
// stage worst errors are threshold-compared like any metric, baselines
// without error rows skip the comparison (old artifacts stay usable),
// and a bound violation or poisoned stage fails the gate with no
// baseline at all.
func TestDiffErrorGate(t *testing.T) {
	stage := func(worst float64) []analyze.ErrorStageRow {
		return []analyze.ErrorStageRow{{Label: "fwd0", Bound: 1e-3, WorstRel: worst, Values: 100}}
	}
	base := &analyze.Artifact{
		Tool: "fftbench",
		Rows: []analyze.Row{{Name: "fp64-16", GPUs: 12, Seconds: 0.01, Errors: stage(4e-4)}},
	}

	same := *base
	if d := analyze.Diff(base, &same, 0.10); d.Regressed() {
		t.Errorf("identical error rows regressed: %+v", d)
	}

	// Worst error growing past the threshold is a regression even while
	// still inside the theoretical bound: the compressor got worse.
	worse := *base
	worse.Rows = append([]analyze.Row(nil), base.Rows...)
	worse.Rows[0].Errors = stage(6e-4)
	d := analyze.Diff(base, &worse, 0.10)
	if !d.Regressed() || len(d.Regressions) != 1 || d.Regressions[0].Metric != "err/fwd0" {
		t.Errorf("50%% error growth passed the gate: %+v", d)
	}
	if len(d.OverBudget) != 0 {
		t.Errorf("in-bound growth flagged over budget: %v", d.OverBudget)
	}

	// A bound violation gates without any baseline comparison — the row
	// is new, so threshold logic never sees it.
	over := &analyze.Artifact{
		Tool: "fftbench",
		Rows: []analyze.Row{{Name: "new-cfg", GPUs: 24, Seconds: 0.01, Errors: stage(2e-3)}},
	}
	d = analyze.Diff(base, over, 0.10)
	if !d.Regressed() || len(d.OverBudget) != 1 {
		t.Fatalf("bound violation passed the gate: %+v", d)
	}
	var buf strings.Builder
	d.WriteText(&buf)
	if !strings.Contains(buf.String(), "OVERBUDGET") {
		t.Errorf("WriteText lacks OVERBUDGET line:\n%s", buf.String())
	}

	// Poisoned samples gate too.
	poisoned := *base
	poisoned.Rows = append([]analyze.Row(nil), base.Rows...)
	poisoned.Rows[0].Errors = []analyze.ErrorStageRow{{Label: "fwd0", Bound: 1e-3, WorstRel: 4e-4, Poisoned: 2}}
	if d := analyze.Diff(base, &poisoned, 0.10); !d.Regressed() || len(d.OverBudget) != 1 {
		t.Errorf("poisoned stage passed the gate: %+v", d)
	}

	// A baseline predating errtrack (no error rows) must not gate the
	// comparison — only the absolute budget check applies.
	old := &analyze.Artifact{
		Tool: "fftbench",
		Rows: []analyze.Row{{Name: "fp64-16", GPUs: 12, Seconds: 0.01}},
	}
	if d := analyze.Diff(old, base, 0.10); d.Regressed() {
		t.Errorf("new error rows against an old baseline regressed: %+v", d)
	}
}

// TestArtifactRoundTrip: write, load, schema validation.
func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	a := &analyze.Artifact{
		Tool:    "alltoallbench",
		Config:  map[string]string{"msg": "65536"},
		Machine: obs.Machine{Nodes: 2, GPUsPerNode: 6, InterBW: 2.5e10},
		Rows:    []analyze.Row{{Name: "linear", GPUs: 12, NodeBW: 1e10}},
	}
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := analyze.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != analyze.ArtifactSchema || got.Tool != a.Tool || len(got.Rows) != 1 ||
		got.Rows[0].Name != a.Rows[0].Name || got.Rows[0].NodeBW != a.Rows[0].NodeBW ||
		got.Machine != a.Machine {
		t.Errorf("round trip mismatch: %+v", got)
	}

	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale, []byte(`{"schema": 99, "tool": "fftbench", "rows": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analyze.LoadArtifact(stale); err == nil {
		t.Error("schema-99 artifact accepted")
	}
}

package analyze

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/errtrack"
)

// ArtifactSchema is the current bench-artifact schema version. Loaders
// reject other versions so a silent format drift cannot masquerade as a
// performance change.
const ArtifactSchema = 1

// Artifact is the machine-readable result of one benchmark run: the
// configuration it ran under, one Row per measured configuration, and
// (optionally) the analyze summaries. All times are virtual seconds from
// the simulator, so artifacts are deterministic and diffable.
type Artifact struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"` // "fftbench" or "alltoallbench"
	// Config snapshots the driver flags that shaped the run.
	Config  map[string]string `json:"config,omitempty"`
	Machine obs.Machine       `json:"machine,omitempty"`
	Rows    []Row             `json:"rows"`
}

// Row is one measured configuration.
type Row struct {
	Name string `json:"name"` // configuration/algorithm name
	GPUs int    `json:"gpus"`
	// Precision is the FFT pipeline precision in bits (64 or 32); 0 for
	// rows without a compute pipeline (alltoallbench). The benchdiff
	// tuned-vs-best-fixed gate only compares rows of equal precision —
	// the tuner picks exchanges within a pipeline, it cannot trade the
	// pipeline's own compute precision.
	Precision int `json:"precision,omitempty"`
	// Seconds is the end-to-end virtual time per iteration (lower is
	// better); Gflops the derived rate. NodeBW is the achieved per-node
	// exchange bandwidth in bytes/s (higher is better; alltoallbench).
	Seconds float64 `json:"seconds,omitempty"`
	Gflops  float64 `json:"gflops,omitempty"`
	NodeBW  float64 `json:"node_bw,omitempty"`
	// MaxError is the measured worst-case relative error for lossy
	// configurations.
	MaxError    float64          `json:"max_error,omitempty"`
	Compression []CompressionRow `json:"compression,omitempty"`
	// Model compares each reshape's measured exchange time against the
	// analytic cost model.
	Model []ModelDelta `json:"model,omitempty"`
	// Analysis is the trace summary (critical path, utilization,
	// overlap) when the run was traced.
	Analysis *Summary `json:"analysis,omitempty"`
	// Faults holds the run's fault-injection and recovery counters (nil
	// for fault-free runs, which keeps committed baselines unchanged).
	Faults *FaultRow `json:"faults,omitempty"`
	// Errors is the per-reshape error-provenance ledger of the row: the
	// measured error each stage introduced, its composition against the
	// theoretical bound composition, and the per-rank×peer attribution
	// matrix. Nil when the run measured no compression error, which keeps
	// lossless rows and old baselines unchanged.
	Errors []ErrorStageRow `json:"errors,omitempty"`
	// Tuning records the autotuner's per-stage decisions when the row
	// ran a tuned configuration (docs/TUNING.md): the winning candidate,
	// the prediction and probe evidence behind it, and the
	// predicted-vs-measured gap of the run itself. Nil for fixed-config
	// rows; its presence is also what the benchdiff tuned-vs-best-fixed
	// gate keys on.
	Tuning []TuningRow `json:"tuning,omitempty"`
}

// TuningRow is one stage of a tuned row's decision record.
type TuningRow struct {
	Label string `json:"label"`
	// Algo, Chunks, Method name the selected candidate (tune's
	// serialized vocabulary; Method/Chunks only for compressed winners).
	Algo   string `json:"algo"`
	Chunks int    `json:"chunks,omitempty"`
	Method string `json:"method,omitempty"`
	// PredictedS is the tuner's roofline prediction for the stage,
	// ProbedS its probe-run measurement (0 when not probed), MeasuredS
	// the consuming run's measured exchange time, and Gap the
	// measured/predicted ratio — the model-quality signal.
	PredictedS float64 `json:"predicted_s,omitempty"`
	ProbedS    float64 `json:"probed_s,omitempty"`
	MeasuredS  float64 `json:"measured_s,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
	// Candidates is the enumerated-space size the winner beat.
	Candidates int `json:"candidates,omitempty"`
}

// ErrorStageRow is one reshape stage of a row's error-provenance ledger.
type ErrorStageRow struct {
	Label string `json:"label"`
	// Bound is the stage's configured error bound; WorstRel the measured
	// worst relative error (the contract is WorstRel ≤ Bound).
	Bound    float64 `json:"bound,omitempty"`
	WorstRel float64 `json:"worst_rel,omitempty"`
	RMS      float64 `json:"rms,omitempty"`
	MaxAbs   float64 `json:"max_abs,omitempty"`
	Values   int64   `json:"values,omitempty"`
	// CumMeasured/CumBound compose the per-stage errors across the
	// pipeline so far: prod(1+e_i)−1 over measured and bound errors.
	CumMeasured float64 `json:"cum_measured,omitempty"`
	CumBound    float64 `json:"cum_bound,omitempty"`
	// Share is the stage's fraction of the row's accumulated squared
	// error (the budget share the SLO kind caps).
	Share    float64 `json:"share,omitempty"`
	Poisoned int64   `json:"poisoned,omitempty"`
	// Pairs is the (rank, peer) attribution matrix, capped at
	// MaxArtifactPairs entries; DroppedPairs counts the rest so a
	// truncated matrix never reads as a complete one.
	Pairs        []errtrack.PairStat `json:"pairs,omitempty"`
	DroppedPairs int64               `json:"dropped_pairs,omitempty"`
}

// MaxArtifactPairs bounds the attribution matrix embedded per stage in
// a bench artifact (the full matrix stays available via -errtrack).
const MaxArtifactPairs = 256

// ErrorRows extracts one cell's error-provenance ledger from a tracker
// (nil tracker, unknown cell, or a cell that measured nothing yields
// nil, keeping lossless rows byte-identical to old artifacts).
func ErrorRows(t *errtrack.Tracker, cell string) []ErrorStageRow {
	if t == nil {
		return nil
	}
	rep := t.Snapshot()
	for _, c := range rep.Cells {
		if c.Cell != cell {
			continue
		}
		stages := make(map[string]errtrack.StageReport, len(c.Stages))
		for _, s := range c.Stages {
			stages[s.Label] = s
		}
		led := errtrack.BuildLedger(c, nil)
		out := make([]ErrorStageRow, 0, len(led.Rows))
		for _, r := range led.Rows {
			s := stages[r.Label]
			row := ErrorStageRow{
				Label: r.Label, Bound: r.Bound, WorstRel: r.Measured,
				RMS: s.RMS, MaxAbs: s.MaxAbs, Values: r.Values,
				CumMeasured: r.MeasuredCum, CumBound: r.BoundCum,
				Share: r.Share, Poisoned: s.Poisoned,
				Pairs:        s.Pairs,
				DroppedPairs: s.DroppedPairs,
			}
			if len(row.Pairs) > MaxArtifactPairs {
				row.DroppedPairs += int64(len(row.Pairs) - MaxArtifactPairs)
				row.Pairs = row.Pairs[:MaxArtifactPairs]
			}
			out = append(out, row)
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	return nil
}

// FaultRow is one row's fault/recovery ledger, populated from the
// metric registry when a run injected faults. Benchdiff uses it to flag
// rows whose numbers were earned on a degraded path (retries, repairs,
// per-peer fallback) rather than the fast path the baseline measured.
type FaultRow struct {
	Drops           int64 `json:"drops,omitempty"`
	DetectedCorrupt int64 `json:"detected_corrupt,omitempty"`
	SilentCorrupt   int64 `json:"silent_corrupt,omitempty"`
	Duplicates      int64 `json:"duplicates,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	Lost            int64 `json:"lost,omitempty"`
	Crashes         int64 `json:"crashes,omitempty"`
	Repairs         int64 `json:"repairs,omitempty"`
	FallbackPeers   int64 `json:"fallback_peers,omitempty"`
	// Crash-recovery ledger (docs/ROBUSTNESS.md): checkpoint volume paid
	// and rollbacks/restarts absorbed while earning the row's numbers.
	Checkpoints     int64   `json:"checkpoints,omitempty"`
	CheckpointBytes int64   `json:"checkpoint_bytes,omitempty"`
	Rollbacks       int64   `json:"rollbacks,omitempty"`
	Restarts        int64   `json:"restarts,omitempty"`
	MTTRSeconds     float64 `json:"mttr_seconds,omitempty"`
	// Elastic-shrink ledger: a row with Shrinks > 0 finished on fewer
	// ranks than it started with (permanent loss absorbed by
	// re-decomposing onto the survivors) — its numbers describe a
	// degraded topology, never comparable to a full-size baseline.
	Shrinks           int64   `json:"shrinks,omitempty"`
	RanksLost         int64   `json:"ranks_lost,omitempty"`
	MigratedBytes     int64   `json:"migrated_bytes,omitempty"`
	ShrinkMTTRSeconds float64 `json:"shrink_mttr_seconds,omitempty"`
}

// Degraded reports whether the row left the fast path: recovery work
// beyond transparent transport retries (including rollback/respawn —
// a recovered measurement is not comparable to a fault-free baseline).
func (f *FaultRow) Degraded() bool {
	return f != nil && (f.Lost > 0 || f.Crashes > 0 || f.Repairs > 0 || f.FallbackPeers > 0 ||
		f.Rollbacks > 0 || f.Restarts > 0 || f.Shrinks > 0)
}

// Shrunk reports whether the row's membership shrank mid-run: the row
// finished on a smaller rank count than it was configured with.
func (f *FaultRow) Shrunk() bool { return f != nil && f.Shrinks > 0 }

// FaultRowFrom extracts the fault counters of a run's metric registry;
// nil when the run saw no faults at all. The counters come from one
// consistent Snapshot, so related values (e.g. retries vs. lost) cannot
// tear against a concurrently mutating run.
func FaultRowFrom(m *obs.Metrics) *FaultRow {
	s := m.Snapshot()
	f := FaultRow{
		Drops:           s.Counters["fault/drops"],
		DetectedCorrupt: s.Counters["fault/detected_corrupt"],
		SilentCorrupt:   s.Counters["fault/silent_corrupt"],
		Duplicates:      s.Counters["fault/duplicates"],
		Retries:         s.Counters["fault/retries"],
		Lost:            s.Counters["fault/lost"],
		Crashes:         s.Counters["fault/crashes"],
		Repairs:         s.Counters["exchange/repairs"],
		FallbackPeers:   s.Counters["exchange/fallback_peers"],
		Checkpoints:     s.Counters["recovery/checkpoints"],
		CheckpointBytes: s.Counters["recovery/checkpoint_bytes"],
		Rollbacks:       s.Counters["recovery/rollbacks"],
		Restarts:        s.Counters["recovery/restarts"],
		Shrinks:         s.Counters["shrink/events"],
		RanksLost:       s.Counters["shrink/ranks_lost"],
		MigratedBytes:   s.Counters["shrink/migrated_bytes"],
	}
	if h, ok := s.Hists["recovery/mttr_s"]; ok {
		f.MTTRSeconds = h.Sum
	}
	if h, ok := s.Hists["shrink/mttr_s"]; ok {
		f.ShrinkMTTRSeconds = h.Sum
	}
	if f == (FaultRow{}) {
		return nil
	}
	return &f
}

// CompressionRow is the achieved compression of one labelled exchange.
type CompressionRow struct {
	Label      string  `json:"label"`
	RawBytes   int64   `json:"raw_bytes"`
	WireBytes  int64   `json:"wire_bytes"`
	Ratio      float64 `json:"ratio"`
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// ModelDelta is measured vs modeled time for one reshape.
type ModelDelta struct {
	Label     string  `json:"label"`
	Measured  float64 `json:"measured_s"`
	Predicted float64 `json:"predicted_s"`
	// Ratio is Measured/Predicted: the model is a lower bound, so ratios
	// sit at or above 1; growth over time means new overhead appeared.
	Ratio float64 `json:"ratio"`
}

// CompressionRows converts the metric registry's compression stats.
func CompressionRows(stats []obs.CompressionStat) []CompressionRow {
	if len(stats) == 0 {
		return nil
	}
	out := make([]CompressionRow, len(stats))
	for i, s := range stats {
		out[i] = CompressionRow{
			Label: s.Label, RawBytes: s.RawBytes, WireBytes: s.WireBytes,
			Ratio: s.Ratio(), ErrorBound: s.ErrorBound,
		}
	}
	return out
}

// WriteFile writes the artifact as indented, key-stable JSON.
func (a *Artifact) WriteFile(path string) error {
	a.Schema = ArtifactSchema
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadArtifact reads and validates a bench artifact.
func LoadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("analyze: parsing artifact %s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("analyze: artifact %s has schema %d, want %d", path, a.Schema, ArtifactSchema)
	}
	return &a, nil
}

package analyze

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// ArtifactSchema is the current bench-artifact schema version. Loaders
// reject other versions so a silent format drift cannot masquerade as a
// performance change.
const ArtifactSchema = 1

// Artifact is the machine-readable result of one benchmark run: the
// configuration it ran under, one Row per measured configuration, and
// (optionally) the analyze summaries. All times are virtual seconds from
// the simulator, so artifacts are deterministic and diffable.
type Artifact struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"` // "fftbench" or "alltoallbench"
	// Config snapshots the driver flags that shaped the run.
	Config  map[string]string `json:"config,omitempty"`
	Machine obs.Machine       `json:"machine,omitempty"`
	Rows    []Row             `json:"rows"`
}

// Row is one measured configuration.
type Row struct {
	Name string `json:"name"` // configuration/algorithm name
	GPUs int    `json:"gpus"`
	// Seconds is the end-to-end virtual time per iteration (lower is
	// better); Gflops the derived rate. NodeBW is the achieved per-node
	// exchange bandwidth in bytes/s (higher is better; alltoallbench).
	Seconds float64 `json:"seconds,omitempty"`
	Gflops  float64 `json:"gflops,omitempty"`
	NodeBW  float64 `json:"node_bw,omitempty"`
	// MaxError is the measured worst-case relative error for lossy
	// configurations.
	MaxError    float64          `json:"max_error,omitempty"`
	Compression []CompressionRow `json:"compression,omitempty"`
	// Model compares each reshape's measured exchange time against the
	// analytic cost model.
	Model []ModelDelta `json:"model,omitempty"`
	// Analysis is the trace summary (critical path, utilization,
	// overlap) when the run was traced.
	Analysis *Summary `json:"analysis,omitempty"`
	// Faults holds the run's fault-injection and recovery counters (nil
	// for fault-free runs, which keeps committed baselines unchanged).
	Faults *FaultRow `json:"faults,omitempty"`
}

// FaultRow is one row's fault/recovery ledger, populated from the
// metric registry when a run injected faults. Benchdiff uses it to flag
// rows whose numbers were earned on a degraded path (retries, repairs,
// per-peer fallback) rather than the fast path the baseline measured.
type FaultRow struct {
	Drops           int64 `json:"drops,omitempty"`
	DetectedCorrupt int64 `json:"detected_corrupt,omitempty"`
	SilentCorrupt   int64 `json:"silent_corrupt,omitempty"`
	Duplicates      int64 `json:"duplicates,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	Lost            int64 `json:"lost,omitempty"`
	Crashes         int64 `json:"crashes,omitempty"`
	Repairs         int64 `json:"repairs,omitempty"`
	FallbackPeers   int64 `json:"fallback_peers,omitempty"`
}

// Degraded reports whether the row left the fast path: recovery work
// beyond transparent transport retries.
func (f *FaultRow) Degraded() bool {
	return f != nil && (f.Lost > 0 || f.Crashes > 0 || f.Repairs > 0 || f.FallbackPeers > 0)
}

// FaultRowFrom extracts the fault counters of a run's metric registry;
// nil when the run saw no faults at all. The counters come from one
// consistent Snapshot, so related values (e.g. retries vs. lost) cannot
// tear against a concurrently mutating run.
func FaultRowFrom(m *obs.Metrics) *FaultRow {
	s := m.Snapshot()
	f := FaultRow{
		Drops:           s.Counters["fault/drops"],
		DetectedCorrupt: s.Counters["fault/detected_corrupt"],
		SilentCorrupt:   s.Counters["fault/silent_corrupt"],
		Duplicates:      s.Counters["fault/duplicates"],
		Retries:         s.Counters["fault/retries"],
		Lost:            s.Counters["fault/lost"],
		Crashes:         s.Counters["fault/crashes"],
		Repairs:         s.Counters["exchange/repairs"],
		FallbackPeers:   s.Counters["exchange/fallback_peers"],
	}
	if f == (FaultRow{}) {
		return nil
	}
	return &f
}

// CompressionRow is the achieved compression of one labelled exchange.
type CompressionRow struct {
	Label      string  `json:"label"`
	RawBytes   int64   `json:"raw_bytes"`
	WireBytes  int64   `json:"wire_bytes"`
	Ratio      float64 `json:"ratio"`
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// ModelDelta is measured vs modeled time for one reshape.
type ModelDelta struct {
	Label     string  `json:"label"`
	Measured  float64 `json:"measured_s"`
	Predicted float64 `json:"predicted_s"`
	// Ratio is Measured/Predicted: the model is a lower bound, so ratios
	// sit at or above 1; growth over time means new overhead appeared.
	Ratio float64 `json:"ratio"`
}

// CompressionRows converts the metric registry's compression stats.
func CompressionRows(stats []obs.CompressionStat) []CompressionRow {
	if len(stats) == 0 {
		return nil
	}
	out := make([]CompressionRow, len(stats))
	for i, s := range stats {
		out[i] = CompressionRow{
			Label: s.Label, RawBytes: s.RawBytes, WireBytes: s.WireBytes,
			Ratio: s.Ratio(), ErrorBound: s.ErrorBound,
		}
	}
	return out
}

// WriteFile writes the artifact as indented, key-stable JSON.
func (a *Artifact) WriteFile(path string) error {
	a.Schema = ArtifactSchema
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadArtifact reads and validates a bench artifact.
func LoadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("analyze: parsing artifact %s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("analyze: artifact %s has schema %d, want %d", path, a.Schema, ArtifactSchema)
	}
	return &a, nil
}

package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// SegKind classifies a critical-path segment.
type SegKind uint8

const (
	// SegSpan is time on a rank's host timeline inside a recorded span.
	SegSpan SegKind = iota
	// SegWire is time a transfer spent on the wire (injection to
	// arrival, including queueing and latency).
	SegWire
	// SegIdle is time on a rank's host timeline not covered by any span
	// (barrier gaps, scheduling).
	SegIdle
)

// Segment is one link of the critical-path chain. Segments are
// contiguous in virtual time: each begins where the previous one ends,
// so their durations sum exactly to the end-to-end time.
type Segment struct {
	Kind       SegKind
	Rank       int       // the rank whose timeline this is (source rank for wire)
	Phase      obs.Phase // valid for SegSpan: the innermost span's phase
	Top        obs.Phase // valid for SegSpan: the containing top-level span's phase
	Link       string    // valid for SegWire: "node0->node2 inter" / "node1 bus" / "rank3 local"
	Bytes      int64     // wire payload for SegWire
	Begin, End float64
}

// Duration returns the segment's extent in seconds.
func (s Segment) Duration() float64 { return s.End - s.Begin }

// Label names the segment for reports.
func (s Segment) Label() string {
	switch s.Kind {
	case SegWire:
		return "wire " + s.Link
	case SegIdle:
		return "idle"
	default:
		return s.Phase.String()
	}
}

// Path is the extracted critical path: the dependency chain that bounds
// the recording's end-to-end virtual time.
type Path struct {
	Start, End float64
	// BoundRank is the rank whose final span determines End.
	BoundRank int
	Segments  []Segment // in increasing time order
}

// Duration returns the path's total extent. By construction it equals
// End − Start (the segments tile the interval).
func (p Path) Duration() float64 { return p.End - p.Start }

// PhaseSeconds aggregates the path per segment label (phase name,
// "wire <link kind>", or "idle").
func (p Path) PhaseSeconds() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range p.Segments {
		key := s.Label()
		if s.Kind == SegWire {
			key = "wire " + wireKindOf(s.Link)
		}
		out[key] += s.Duration()
	}
	return out
}

// LinkSeconds aggregates wire segments per concrete link.
func (p Path) LinkSeconds() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range p.Segments {
		if s.Kind == SegWire {
			out[s.Link] += s.Duration()
		}
	}
	return out
}

// RankSeconds aggregates on-rank (span + idle) time per rank.
func (p Path) RankSeconds() map[int]float64 {
	out := make(map[int]float64)
	for _, s := range p.Segments {
		if s.Kind != SegWire {
			out[s.Rank] += s.Duration()
		}
	}
	return out
}

func wireKindOf(link string) string {
	// Link strings are "nodeA->nodeB inter", "nodeN bus", "rankR local".
	for i := len(link) - 1; i >= 0; i-- {
		if link[i] == ' ' {
			return link[i+1:]
		}
	}
	return link
}

func linkName(ev obs.WireEvent) string {
	switch ev.Kind {
	case "inter":
		return fmt.Sprintf("node%d->node%d inter", ev.SrcNode, ev.DstNode)
	case "intra":
		return fmt.Sprintf("node%d bus", ev.SrcNode)
	default:
		return fmt.Sprintf("rank%d local", ev.Src)
	}
}

// CriticalPath walks the dependency graph backward from the last host
// span end: along each rank's timeline, and — whenever a wire arrival is
// the latest event below the current point — across the wire to the
// sender at injection time. The chosen arrival is the standard
// last-arrival heuristic: inside a blocking span (fence, exchange), the
// transfer that arrived last is what the fence actually waited for.
func CriticalPath(t *Trace) Path {
	start, end, ok := t.Extent()
	if !ok {
		return Path{}
	}
	eps := (end - start) * 1e-12

	// Per-rank top-level/nested host spans; per-rank inbound arrivals.
	top := make(map[int][]obs.Span)
	nested := make(map[int][]obs.Span)
	for _, id := range t.Ranks() {
		top[id], nested[id] = splitNesting(t.hostSpans(id))
	}
	arrivals := make(map[int][]obs.WireEvent)
	for _, ev := range t.Wire {
		if ev.Src == ev.Dst {
			continue // local copies cannot cross rank timelines
		}
		arrivals[ev.Dst] = append(arrivals[ev.Dst], ev)
	}
	for id := range arrivals {
		evs := arrivals[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Arrival < evs[j].Arrival })
	}

	p := Path{Start: start, End: end, BoundRank: -1}
	cur, curT := -1, end
	for _, id := range t.Ranks() {
		if spans := top[id]; len(spans) > 0 && spans[len(spans)-1].End >= curT-eps {
			if cur == -1 {
				cur = id
			}
		}
	}
	if cur == -1 {
		return p
	}
	p.BoundRank = cur

	var rev []Segment // built backward
	guard := 0
	for curT > start+eps {
		if guard++; guard > 1<<20 {
			break // malformed trace; return what we have
		}
		spans := top[cur]
		// Latest span beginning strictly before curT.
		idx := sort.Search(len(spans), func(i int) bool { return spans[i].Begin >= curT-eps }) - 1
		lower := start
		covered := false
		if idx >= 0 {
			if spans[idx].End >= curT-eps {
				lower, covered = spans[idx].Begin, true
			} else {
				lower = spans[idx].End // gap [spans[idx].End, curT]
			}
		}
		// Binding arrival: the latest transfer into cur arriving in
		// (lower, curT] whose injection makes backward progress.
		var ev *obs.WireEvent
		evs := arrivals[cur]
		for i := sort.Search(len(evs), func(i int) bool { return evs[i].Arrival > curT+eps }) - 1; i >= 0; i-- {
			if evs[i].Arrival <= lower+eps {
				break
			}
			if evs[i].Injected < evs[i].Arrival-eps && evs[i].Injected < curT-eps {
				ev = &evs[i]
				break
			}
		}
		if ev != nil {
			rev = appendRankSegments(rev, cur, ev.Arrival, curT, spans, nested[cur], covered)
			rev = append(rev, Segment{
				Kind: SegWire, Rank: ev.Src, Link: linkName(*ev), Bytes: int64(ev.Bytes),
				Begin: ev.Injected, End: ev.Arrival,
			})
			cur, curT = ev.Src, ev.Injected
			continue
		}
		rev = appendRankSegments(rev, cur, lower, curT, spans, nested[cur], covered)
		if curT = lower; !covered && idx < 0 {
			break // nothing earlier on this rank and no arrival: done
		}
	}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Segments = append(p.Segments, rev[i])
	}
	return p
}

// appendRankSegments splits [a, b] on one rank's timeline into
// phase-attributed segments (appended in backward order): parts covered
// by a top-level span take its phase — refined to the innermost nested
// span where one overlaps — and uncovered parts become idle.
func appendRankSegments(rev []Segment, rank int, a, b float64, top, nested []obs.Span, covered bool) []Segment {
	if b-a <= 0 {
		return rev
	}
	type piece struct {
		begin, end float64
		phase, top obs.Phase
		span       bool
	}
	var pieces []piece
	cur := a
	for _, s := range top {
		if s.End <= a || s.Begin >= b {
			continue
		}
		lo, hi := s.Begin, s.End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if lo > cur {
			pieces = append(pieces, piece{cur, lo, 0, 0, false})
		}
		pieces = append(pieces, piece{lo, hi, s.Phase, s.Phase, true})
		cur = hi
	}
	if cur < b {
		pieces = append(pieces, piece{cur, b, 0, 0, false})
	}
	// Refine span pieces by nested detail spans (fence, compress-wait).
	var out []piece
	for _, pc := range pieces {
		if !pc.span {
			out = append(out, pc)
			continue
		}
		cur := pc.begin
		for _, n := range nested {
			if n.End <= pc.begin || n.Begin >= pc.end || n.End <= n.Begin {
				continue
			}
			lo, hi := n.Begin, n.End
			if lo < pc.begin {
				lo = pc.begin
			}
			if hi > pc.end {
				hi = pc.end
			}
			if lo < cur {
				continue // deeper nesting; keep first (outermost detail) attribution
			}
			if lo > cur {
				out = append(out, piece{cur, lo, pc.phase, pc.top, true})
			}
			out = append(out, piece{lo, hi, n.Phase, pc.top, true})
			cur = hi
		}
		if cur < pc.end {
			out = append(out, piece{cur, pc.end, pc.phase, pc.top, true})
		}
	}
	for i := len(out) - 1; i >= 0; i-- {
		pc := out[i]
		seg := Segment{Kind: SegIdle, Rank: rank, Begin: pc.begin, End: pc.end}
		if pc.span {
			seg.Kind, seg.Phase, seg.Top = SegSpan, pc.phase, pc.top
		}
		rev = append(rev, seg)
	}
	return rev
}

package obs

import (
	"fmt"
	"testing"
)

// TestQuantileSmallSamples pins the estimator's tail behavior on small
// sample counts (documented on hist.quantile): whenever the target rank
// ceil(q·count) lands on the last observation — always true for p99
// with fewer than 100 samples — the estimate must be the observed
// maximum, never the midpoint of a wide bucket.
func TestQuantileSmallSamples(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64 // exact expected estimate
	}{
		{"single sample p50", []float64{0.25}, 0.50, 0.25},
		{"single sample p99", []float64{0.25}, 0.99, 0.25},
		{"two samples p99 is max", []float64{1, 1000}, 0.99, 1000},
		{"ten samples p99 is max", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 7}, 0.99, 7},
		{"ten samples p95 is max", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 7}, 0.95, 7},
		{"99 samples p99 is max", append(repeat(1.0, 98), 512), 0.99, 512},
		{"identical samples p50", repeat(3.5, 10), 0.50, 3.5},
		{"identical samples p99", repeat(3.5, 99), 0.99, 3.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMetrics()
			for _, v := range tc.samples {
				m.Observe("h", v)
			}
			got := quantileOf(t, m, tc.q)
			if got != tc.want {
				t.Fatalf("q=%.2f of %d samples = %g, want %g", tc.q, len(tc.samples), got, tc.want)
			}
		})
	}
}

// TestQuantileLargeSampleBuckets checks the interior path: with 100+
// samples the p99 rank no longer pins to the max, and the bucketed
// estimate must stay within the estimator's √2 resolution (clamped to
// the observed range).
func TestQuantileLargeSampleBuckets(t *testing.T) {
	m := newMetrics()
	// 990 samples at 1.0, 10 at 1000: the p99 rank (990) falls on the
	// last 1.0 sample, so the estimate must stay in 1.0's bucket.
	for i := 0; i < 990; i++ {
		m.Observe("h", 1.0)
	}
	for i := 0; i < 10; i++ {
		m.Observe("h", 1000.0)
	}
	p99 := quantileOf(t, m, 0.99)
	if p99 < 1.0/1.5 || p99 > 1.0*1.5 {
		t.Fatalf("p99 = %g, want within √2 of 1.0", p99)
	}
	// p999 rank (990.01 → 991) lands among the 1000s; clamped to max.
	s, _ := m.Hist("h")
	if s.Max != 1000 {
		t.Fatalf("max = %g, want 1000", s.Max)
	}
}

// TestQuantileMonotone checks q1 ≤ q2 ⇒ estimate(q1) ≤ estimate(q2)
// across sample counts spanning the tail-pinned and interior regimes.
func TestQuantileMonotone(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 99, 100, 1000} {
		m := newMetrics()
		for i := 0; i < n; i++ {
			m.Observe("h", float64(1+i%37)*0.125)
		}
		s, ok := m.Hist("h")
		if !ok {
			t.Fatal("histogram missing")
		}
		if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
			t.Fatalf("n=%d: quantiles not monotone: p50=%g p95=%g p99=%g", n, s.P50, s.P95, s.P99)
		}
		if s.P99 > s.Max || s.P50 < s.Min {
			t.Fatalf("n=%d: quantiles escape [min,max]: %+v", n, s)
		}
	}
}

func quantileOf(t *testing.T, m *Metrics, q float64) float64 {
	t.Helper()
	s, ok := m.Hist("h")
	if !ok {
		t.Fatal("histogram missing")
	}
	switch q {
	case 0.50:
		return s.P50
	case 0.95:
		return s.P95
	case 0.99:
		return s.P99
	}
	panic(fmt.Sprintf("unsupported q %g", q))
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Package obs is the unified tracing and metrics layer of the
// reproduction. It gives every layer of the stack — the netsim wire,
// the mpi runtime, the GPU stream model, the exchange implementations,
// and the distributed FFT pipeline — one place to record what happened
// on the virtual timeline: structured spans (rank, phase, begin/end in
// virtual seconds, bytes) and named metrics (counters, gauges,
// histograms). Exporters turn a recording into a Chrome-trace JSON file
// (chrome://tracing / Perfetto) or a plain-text phase-breakdown report.
//
// The package is dependency-free and built to disappear when unused:
// every method is safe on a nil receiver and allocates nothing in that
// case, so instrumented hot paths cost one pointer test when
// observability is off.
package obs

import (
	"sort"
	"sync"
)

// Phase identifies what a span measures. The five pipeline phases
// (Pack..Scale) are the paper's Fig. 5-8 decomposition of one transform;
// the remaining phases are nested detail (protocol and kernel activity
// inside a pipeline phase) and are excluded from phase-breakdown sums.
type Phase uint8

const (
	PhasePack Phase = iota
	PhaseExchange
	PhaseUnpack
	PhaseFFT
	PhaseScale
	PhaseCompress
	PhaseDecompress
	PhaseFence
	PhaseFlush
	PhaseCompressWait
	PhaseKernel
	numPhases
)

var phaseNames = [numPhases]string{
	"pack", "exchange", "unpack", "fft", "scale",
	"compress", "decompress", "fence", "flush", "compress-wait", "kernel",
}

// String returns the phase's report/trace name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// ParsePhase maps a report/trace name back to its Phase (the inverse of
// String), used when reloading a saved Chrome trace.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// PipelinePhases are the top-level phases that partition a rank's
// timeline; their per-rank durations sum to (nearly) the wall time.
var PipelinePhases = [5]Phase{PhasePack, PhaseExchange, PhaseUnpack, PhaseFFT, PhaseScale}

// Pipeline reports whether p is one of the five top-level phases.
func (p Phase) Pipeline() bool {
	return p == PhasePack || p == PhaseExchange || p == PhaseUnpack ||
		p == PhaseFFT || p == PhaseScale
}

// Track separates the two execution timelines of one rank.
type Track uint8

const (
	TrackHost Track = iota // the rank's host program
	TrackGPU               // kernels on the rank's device stream
)

// Span is one timed interval on a rank's timeline.
type Span struct {
	Phase      Phase
	Track      Track
	Begin, End float64 // virtual seconds
	Bytes      int64   // payload attributed to the span (0 if n/a)
}

// WireEvent mirrors one netsim transfer on the shared timeline (a copy
// of netsim.TraceEvent, kept here so obs stays dependency-free).
type WireEvent struct {
	Src, Dst, Tag int
	Bytes         int
	Kind          string // "local", "intra", or "inter"
	// SrcNode and DstNode identify the link: an inter transfer occupies
	// SrcNode's egress NIC and DstNode's ingress NIC; an intra transfer
	// the bus of SrcNode.
	SrcNode, DstNode int
	Injected, End    float64
	Arrival          float64
	// Start is when the transfer began occupying its first path resource
	// and Ser the serialization time it held each resource (egress busy
	// [Start, Start+Ser], ingress busy [End−Ser, End]); per resource these
	// windows are disjoint, so utilization sums stay exact.
	Start, Ser float64
}

// Machine describes the simulated machine's resource capacities — just
// enough of the netsim config for utilization analysis, recorded here so
// a saved trace stays self-describing (obs must not import netsim).
type Machine struct {
	Nodes       int     `json:"nodes"`
	GPUsPerNode int     `json:"gpus_per_node"`
	InterBW     float64 `json:"inter_bw"` // bytes/s per node NIC direction
	IntraBW     float64 `json:"intra_bw"` // bytes/s per node bus
	LocalBW     float64 `json:"local_bw"` // bytes/s device-local copies
}

// Options configures a Recorder.
type Options struct {
	// Trace enables span and wire-event recording.
	Trace bool
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool
	// SpanCap bounds the spans kept per rank (0 selects 1<<18). Excess
	// spans are dropped and counted.
	SpanCap int
	// WireCap bounds the wire events kept in total (0 selects 1<<20).
	WireCap int
}

// DefaultSpanCap and DefaultWireCap bound recording memory on long runs.
const (
	DefaultSpanCap = 1 << 18
	DefaultWireCap = 1 << 20
)

// Recorder collects one run's spans, wire events, and metrics. A nil
// *Recorder is a valid, fully disabled recorder.
type Recorder struct {
	traceOn bool
	spanCap int
	wireCap int

	mu          sync.Mutex
	ranks       []*Rank
	wire        []WireEvent
	wireDropped int64
	machine     Machine

	metrics *Metrics
	// events, when non-nil, receives live telemetry events (phase
	// completions, faults, repairs, ...). Set before the run starts; not
	// synchronized against concurrent recording.
	events *EventLog
}

// New creates a Recorder. New(Options{}) records nothing but is still
// non-nil; use nil when observability is fully off.
func New(o Options) *Recorder {
	if o.SpanCap <= 0 {
		o.SpanCap = DefaultSpanCap
	}
	if o.WireCap <= 0 {
		o.WireCap = DefaultWireCap
	}
	r := &Recorder{traceOn: o.Trace, spanCap: o.SpanCap, wireCap: o.WireCap}
	if o.Metrics {
		r.metrics = newMetrics()
	}
	return r
}

// Tracing reports whether span recording is enabled.
func (r *Recorder) Tracing() bool { return r != nil && r.traceOn }

// SetMachine attaches the machine description of the run being recorded
// (mpi.RunWith does this automatically).
func (r *Recorder) SetMachine(m Machine) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.machine = m
	r.mu.Unlock()
}

// Machine returns the recorded machine description (zero value when
// never set).
func (r *Recorder) Machine() Machine {
	if r == nil {
		return Machine{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.machine
}

// Metrics returns the metric registry (nil when metrics are off).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.metrics
}

// SetEventLog attaches a live event log; subsequent phase completions
// and emitted events flow into it. Attach before the run starts (like
// SetMachine); detach by passing nil.
func (r *Recorder) SetEventLog(l *EventLog) {
	if r == nil {
		return
	}
	r.events = l
}

// EventLog returns the attached event log (nil when events are off).
func (r *Recorder) EventLog() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Rank returns (creating on demand) the recording handle of one rank.
// Each rank's handle must be used from that rank's goroutine only, as
// netsim already requires of Proc. Returns nil on a nil Recorder.
func (r *Recorder) Rank(id int) *Rank {
	if r == nil || id < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id >= len(r.ranks) {
		r.ranks = append(r.ranks, nil)
	}
	if r.ranks[id] == nil {
		r.ranks[id] = &Rank{rec: r, id: id}
	}
	return r.ranks[id]
}

// Wire records one transfer on the shared timeline, keeping at most
// WireCap events (later events are dropped and counted).
func (r *Recorder) Wire(ev WireEvent) {
	if r == nil || !r.traceOn {
		return
	}
	r.mu.Lock()
	if len(r.wire) >= r.wireCap {
		r.wireDropped++
	} else {
		r.wire = append(r.wire, ev)
	}
	r.mu.Unlock()
	if r.metrics != nil {
		r.metrics.Add("wire/"+ev.Kind+"_bytes", int64(ev.Bytes))
	}
}

// WireEvents returns the recorded transfers in recording order.
func (r *Recorder) WireEvents() []WireEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]WireEvent(nil), r.wire...)
}

// DroppedWire returns the number of wire events lost to the cap.
func (r *Recorder) DroppedWire() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wireDropped
}

// DroppedSpans returns the spans lost to the per-rank cap, summed.
func (r *Recorder) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, rk := range r.ranks {
		if rk != nil {
			n += rk.dropped
		}
	}
	return n
}

// RankSpans returns rank id's spans in begin order (nil if none).
func (r *Recorder) RankSpans(id int) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.ranks) || r.ranks[id] == nil {
		return nil
	}
	return append([]Span(nil), r.ranks[id].spans...)
}

// RankIDs returns the ids of ranks that recorded at least one span.
func (r *Recorder) RankIDs() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []int
	for id, rk := range r.ranks {
		if rk != nil && len(rk.spans) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Rank is one rank's recording handle: a span stack for Begin/End
// nesting plus shortcuts into the shared metric registry. All methods
// are nil-safe and allocation-free when recording is off.
type Rank struct {
	rec     *Recorder
	id      int
	spans   []Span
	open    []openSpan
	dropped int64
}

// openSpan is one Begin waiting for its End. It carries the phase and
// begin time so End can emit a phase-completion event even when the
// span itself was dropped (or span retention is off entirely).
type openSpan struct {
	idx   int32 // index into spans; -1 when the span was not retained
	track Track
	ph    Phase
	begin float64
}

// ID returns the rank id (-1 on a nil handle).
func (rk *Rank) ID() int {
	if rk == nil {
		return -1
	}
	return rk.id
}

// Begin opens a nested span at virtual time t. Every Begin must be
// paired with an End on the same handle; pairs nest like a call stack.
func (rk *Rank) Begin(track Track, ph Phase, t float64) {
	if rk == nil || (!rk.rec.traceOn && rk.rec.events == nil) {
		return
	}
	idx := int32(-1)
	if rk.rec.traceOn {
		if len(rk.spans) >= rk.rec.spanCap {
			rk.dropped++
		} else {
			idx = int32(len(rk.spans))
			rk.spans = append(rk.spans, Span{Phase: ph, Track: track, Begin: t})
		}
	}
	rk.open = append(rk.open, openSpan{idx: idx, track: track, ph: ph, begin: t})
}

// End closes the innermost open span at virtual time t, attributing
// bytes to it. An unmatched End is ignored. When an event log is
// attached, the completion of a host-track pipeline phase is also
// emitted as an EventPhase event.
func (rk *Rank) End(t float64, bytes int64) {
	if rk == nil || len(rk.open) == 0 {
		return
	}
	o := rk.open[len(rk.open)-1]
	rk.open = rk.open[:len(rk.open)-1]
	if o.idx >= 0 {
		rk.spans[o.idx].End = t
		rk.spans[o.idx].Bytes = bytes
	}
	if l := rk.rec.events; l != nil && o.track == TrackHost && o.ph.Pipeline() {
		l.Emit(Event{
			T: t, Rank: rk.id, Kind: EventPhase,
			Label: o.ph.String(), Peer: -1, Value: t - o.begin,
		})
	}
}

// Span records a complete interval directly (used when begin and end are
// both known, e.g. a GPU kernel's scheduled window).
func (rk *Rank) Span(track Track, ph Phase, begin, end float64, bytes int64) {
	if rk == nil || !rk.rec.traceOn {
		return
	}
	if len(rk.spans) >= rk.rec.spanCap {
		rk.dropped++
		return
	}
	rk.spans = append(rk.spans, Span{Phase: ph, Track: track, Begin: begin, End: end, Bytes: bytes})
}

// Add increments a counter in the shared registry.
func (rk *Rank) Add(name string, v int64) {
	if rk == nil {
		return
	}
	rk.rec.metrics.Add(name, v)
}

// Set stores a gauge value in the shared registry.
func (rk *Rank) Set(name string, v float64) {
	if rk == nil {
		return
	}
	rk.rec.metrics.Set(name, v)
}

// Observe records a histogram sample in the shared registry.
func (rk *Rank) Observe(name string, v float64) {
	if rk == nil {
		return
	}
	rk.rec.metrics.Observe(name, v)
}

// EventsOn reports whether an event log is attached — the gate for
// instrumentation whose only purpose is to feed events (e.g. measuring
// achieved compression error), so it stays zero-cost when telemetry is
// off.
func (rk *Rank) EventsOn() bool {
	return rk != nil && rk.rec.events != nil
}

// Emit sends an event into the attached event log, stamping the rank
// id. A no-op without a log.
func (rk *Rank) Emit(ev Event) {
	if rk == nil || rk.rec.events == nil {
		return
	}
	ev.Rank = rk.id
	rk.rec.events.Emit(ev)
}

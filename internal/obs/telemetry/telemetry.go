// Package telemetry bundles the live-telemetry plumbing every driver
// shares: the -serve/-eventlog/-slo flag triple, the event log with its
// JSONL sink, the SLO engine, and the HTTP server. Drivers create one
// Session per process, Attach each run's recorder to it, and Close it
// at exit. A nil *Session (telemetry off) is valid everywhere and does
// nothing, so drivers need no conditionals.
package telemetry

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/errtrack"
	"repro/internal/obs/serve"
	"repro/internal/obs/slo"
)

// Flags holds the shared telemetry flag values.
type Flags struct {
	Serve    *string
	EventLog *string
	SLO      *string
	Errtrack *string
}

// RegisterFlags declares the -serve/-eventlog/-slo/-errtrack flags on fs
// (nil selects flag.CommandLine). Call before flag.Parse.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &Flags{
		Serve:    fs.String("serve", "", "serve live telemetry over HTTP on this address (/metrics, /healthz, /slo, /events, /errtrack, /debug/pprof); port 0 picks a free port"),
		EventLog: fs.String("eventlog", "", "stream the telemetry event log to this file as JSONL"),
		SLO:      fs.String("slo", "", "evaluate the SLO objectives in this JSON config (see docs/slo.example.json)"),
		Errtrack: fs.String("errtrack", "", "write the error-provenance report (per-reshape/per-peer attribution; cmd/errmap renders it) to this JSON file"),
	}
}

// Start builds the Session the parsed flags ask for; nil (and no error)
// when all of them are off.
func (f *Flags) Start() (*Session, error) {
	return Start(f.Config())
}

// Config returns the parsed flag values as a Config, for drivers that
// amend it (e.g. forcing the tracker on for artifact embedding) before
// calling Start.
func (f *Flags) Config() Config {
	return Config{Serve: *f.Serve, EventLog: *f.EventLog, SLO: *f.SLO, Errtrack: *f.Errtrack}
}

// Config selects which telemetry pieces to enable; zero values are off.
type Config struct {
	Serve    string // HTTP listen address
	EventLog string // JSONL sink path
	SLO      string // objectives config path
	Errtrack string // error-provenance report path
	// Tracker attaches the error-provenance tracker without writing a
	// report file — benches set it so their -json artifacts can embed the
	// attribution matrix.
	Tracker  bool
	EventCap int // event ring capacity (0 = default)
}

// Session is one process's live-telemetry state.
type Session struct {
	log     *obs.EventLog
	eng     *slo.Engine
	trk     *errtrack.Tracker
	srv     *serve.Server
	addr    string
	errPath string
	file    *os.File
	bw      *bufio.Writer
}

// Start assembles a session: the event log spine, then the JSONL sink,
// SLO engine, and HTTP server as configured. Returns nil when the
// config enables nothing.
func Start(cfg Config) (*Session, error) {
	if cfg.Serve == "" && cfg.EventLog == "" && cfg.SLO == "" && cfg.Errtrack == "" && !cfg.Tracker {
		return nil, nil
	}
	s := &Session{log: obs.NewEventLog(cfg.EventCap)}
	if cfg.Errtrack != "" || cfg.Tracker {
		s.trk = errtrack.New()
		s.errPath = cfg.Errtrack
		s.log.Observe(s.trk.Observe)
	}
	if cfg.EventLog != "" {
		file, err := os.Create(cfg.EventLog)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		s.file = file
		s.bw = bufio.NewWriter(file)
		s.log.SetSink(s.bw)
	}
	if cfg.SLO != "" {
		sc, err := slo.LoadConfig(cfg.SLO)
		if err != nil {
			s.closeSink()
			return nil, err
		}
		s.eng = slo.New(sc, s.log)
		s.log.Observe(s.eng.ObserveEvent)
	}
	if cfg.Serve != "" {
		s.srv = serve.New(nil, s.log, s.eng, s.trk)
		addr, err := s.srv.Start(cfg.Serve)
		if err != nil {
			s.closeSink()
			return nil, err
		}
		s.addr = addr
	}
	return s, nil
}

// Enabled reports whether any telemetry is live.
func (s *Session) Enabled() bool { return s != nil }

// Log returns the session's event log (nil when telemetry is off).
func (s *Session) Log() *obs.EventLog {
	if s == nil {
		return nil
	}
	return s.log
}

// Engine returns the SLO engine (nil without an -slo config).
func (s *Session) Engine() *slo.Engine {
	if s == nil {
		return nil
	}
	return s.eng
}

// Tracker returns the error-provenance tracker (nil unless -errtrack or
// Config.Tracker enabled it).
func (s *Session) Tracker() *errtrack.Tracker {
	if s == nil {
		return nil
	}
	return s.trk
}

// Addr returns the HTTP server's bound address (empty without -serve).
func (s *Session) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Attach wires a run's recorder into the session: events flow into the
// log and the HTTP handlers read this recorder's registry. Call once
// per recorder, before its run starts.
func (s *Session) Attach(rec *obs.Recorder) {
	if s == nil {
		return
	}
	rec.SetEventLog(s.log)
	if s.srv != nil {
		s.srv.SetSources(rec, s.log, s.eng, s.trk)
	}
}

// StartRun emits a run marker: virtual time restarts at zero, so SLO
// windows reset (cumulative breach counts persist).
func (s *Session) StartRun(label string) {
	if s == nil {
		return
	}
	s.log.StartRun(label)
}

// Scrape fetches this session's own /metrics exposition.
func (s *Session) Scrape() ([]byte, error) {
	if s == nil || s.addr == "" {
		return nil, fmt.Errorf("telemetry: no -serve address to scrape")
	}
	resp, err := http.Get("http://" + s.addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: scrape returned %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// ScrapeTo writes a /metrics scrape to path.
func (s *Session) ScrapeTo(path string) error {
	b, err := s.Scrape()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Summary is the one-line end-of-run telemetry summary the drivers
// print: SLO pass/fail with the worst burn rate, plus the session's
// repair/fallback/fault tallies.
func (s *Session) Summary() string {
	if s == nil {
		return ""
	}
	counts := s.log.Counts()
	base := fmt.Sprintf("repairs=%d fallbacks=%d faults=%d events=%d",
		counts[obs.EventRepair], counts[obs.EventFallback], counts[obs.EventFault], s.log.Total())
	if s.trk != nil {
		base += "; " + s.trk.Snapshot().Verdict()
	}
	if s.eng != nil {
		return "telemetry: " + s.eng.Summary() + "; " + base
	}
	return "telemetry: " + base
}

func (s *Session) closeSink() error {
	var err error
	if s.bw != nil {
		err = s.bw.Flush()
	}
	if s.file != nil {
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
	}
	s.bw, s.file = nil, nil
	return err
}

// Close emits the end-of-stream marker, flushes the JSONL sink, writes
// the -errtrack report, and stops the HTTP server, returning the first
// error the sink ever hit so a silently failing event stream cannot
// masquerade as a healthy run.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	// The marker must be the stream's last event: Close runs after the
	// driver's runs have finished, so no emitter races past it. Replays
	// that do not find it know the stream was truncated.
	s.log.EmitEnd()
	err := s.log.SinkErr()
	if s.trk != nil && s.errPath != "" {
		if werr := s.trk.Snapshot().WriteFile(s.errPath); err == nil {
			err = werr
		}
	}
	if ferr := s.closeSink(); err == nil {
		err = ferr
	}
	if s.srv != nil {
		if serr := s.srv.Close(); err == nil {
			err = serr
		}
	}
	return err
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exchange"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

func TestSessionOffIsNil(t *testing.T) {
	s, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("all-off config must return a nil session")
	}
	// Everything must be callable on nil.
	if s.Enabled() || s.Addr() != "" || s.Log() != nil || s.Engine() != nil || s.Summary() != "" {
		t.Fatal("nil session not inert")
	}
	s.Attach(nil)
	s.StartRun("x")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionEndToEnd drives the full stack once: event log with JSONL
// sink, SLO engine from the shipped example config, HTTP server, a real
// faulty run attached, a self-scrape, and a clean Close — then replays
// the sink file to check it is valid JSONL.
func TestSessionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	s, err := Start(Config{
		Serve:    "127.0.0.1:0",
		EventLog: events,
		SLO:      "../../../docs/slo.example.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() || s.Addr() == "" || s.Engine() == nil {
		t.Fatalf("session incomplete: addr=%q", s.Addr())
	}

	rec := obs.New(obs.Options{Metrics: true})
	s.Attach(rec)
	s.StartRun("faulty-cell")
	cfg := netsim.Summit(1)
	cfg.Faults = netsim.RandomPlan(3)
	_, runErr := mpi.RunWithChecked(cfg, rec, func(c *mpi.Comm) {
		send := make([][]byte, c.Size())
		for d := range send {
			send[d] = make([]byte, 128)
		}
		for it := 0; it < 2; it++ {
			exchange.PairwiseAlltoallv(c, send)
		}
	})
	_ = runErr // crashes are a legal outcome of a fault plan

	if s.Log().Counts()[obs.EventFault] == 0 {
		t.Fatal("fault plan produced no fault events")
	}

	// The self-scrape must be lint-clean and carry fault counters.
	scrape := filepath.Join(dir, "metrics.om")
	if err := s.ScrapeTo(scrape); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(scrape)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseOpenMetrics(data)
	if err != nil {
		t.Fatalf("self-scrape fails lint: %v\n%s", err, data)
	}
	foundFault := false
	for _, sm := range samples {
		if sm.Name == "fft_fault_retries_total" || sm.Name == "fft_fault_stalls_total" {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatalf("scrape carries no fault families:\n%s", data)
	}

	if sum := s.Summary(); sum == "" {
		t.Fatal("empty summary")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The sink file must be one valid Event per line, starting with the
	// run marker.
	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var n int
	var first obs.Event
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("sink line %d not JSON: %v: %s", n, err, sc.Text())
		}
		if n == 0 {
			first = ev
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n < 2 || first.Kind != obs.EventRun || first.Label != "faulty-cell" {
		t.Fatalf("sink stream wrong: %d lines, first %+v", n, first)
	}
}

// TestSessionSLOOnly checks the cheapest configuration: no server, no
// sink, just objective tracking.
func TestSessionSLOOnly(t *testing.T) {
	s, err := Start(Config{SLO: "../../../docs/slo.example.json"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatalf("unexpected server at %s", s.Addr())
	}
	s.StartRun("cell")
	for i := 0; i < 3; i++ {
		s.Log().Emit(obs.Event{T: float64(i) * 1e-5, Kind: obs.EventRepair})
	}
	if s.Engine().TotalBreaches() == 0 {
		t.Fatal("repair-budget objective did not breach")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBadConfigs(t *testing.T) {
	if _, err := Start(Config{SLO: "does-not-exist.json"}); err == nil {
		t.Fatal("missing SLO config accepted")
	}
	if _, err := Start(Config{EventLog: filepath.Join("no", "such", "dir", "x.jsonl")}); err == nil {
		t.Fatal("unwritable event log path accepted")
	}
	if _, err := Start(Config{Serve: "256.256.256.256:99999"}); err == nil {
		t.Fatal("unbindable serve address accepted")
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event kinds emitted into the streaming event log. The set is small and
// closed on purpose: consumers (the SLO engine, obswatch, log replays)
// switch on Kind and must be able to enumerate what can appear.
const (
	EventPhase    = "phase"      // a pipeline phase completed on a rank
	EventExchange = "exchange"   // one labelled exchange completed
	EventError    = "error"      // achieved compression error observed
	EventFault    = "fault"      // an injected or detected transport fault
	EventRepair   = "repair"     // the healer repaired a damaged peer slot
	EventFallback = "fallback"   // a peer escalated to lossless fallback
	EventBreach   = "slo_breach" // an SLO objective left its budget
	EventRun      = "run"        // a new run/cell started (virtual time resets)
	// EventErrAttr carries one peer's compression-error attribution for
	// one reshape epoch: Label is the reshape, Peer the destination,
	// Value the block's worst relative error, Bound the method's bound,
	// and MaxAbs/RMS/N the block-level error statistics. The errtrack
	// layer aggregates these into the provenance ledger.
	EventErrAttr = "error_attribution"
	// EventRecovery marks one transition of the crash-recovery protocol
	// (internal/recover) or of the exchange re-promotion hysteresis. Label
	// carries the transition ("checkpoint", "commit", "crash_verdict",
	// "rollback", "respawn", "resume", "give_up", "probe", "repromote",
	// and the elastic-shrink arc "shrink_verdict", "shrink_agree",
	// "replan", "migrate"); Value the epoch involved (-1 when none), and
	// Msg the diagnostic.
	// Replays validate the sequencing: a resume of epoch e must follow a
	// commit of epoch e.
	EventRecovery = "recovery"
	// EventEnd is the end-of-stream marker a session emits as its very
	// last event before closing the JSONL sink; Value carries the final
	// sequence number so replays can prove the stream arrived whole.
	EventEnd = "run_end"
)

// Event is one line of the streaming JSONL event log: something that
// happened at virtual time T on a rank. Optional fields stay at their
// zero value; Peer uses -1 for "no peer" because rank 0 is a valid peer.
type Event struct {
	T     float64 `json:"t"`               // virtual seconds since run start
	Run   int64   `json:"run"`             // run sequence number (see EventRun)
	Seq   int64   `json:"seq,omitempty"`   // 1-based emission sequence number (stream integrity)
	Rank  int     `json:"rank"`            // reporting rank; -1 = engine/driver
	Kind  string  `json:"kind"`            // one of the Event* constants
	Label string  `json:"label,omitempty"` // phase name, reshape label, fault kind, objective name
	Peer  int     `json:"peer"`            // the other rank involved; -1 = none
	Value float64 `json:"value"`           // duration, error, burn rate, delay — kind-specific
	Bound float64 `json:"bound,omitempty"` // error events: the configured bound
	// Error-attribution statistics (EventErrAttr only): the block's
	// largest absolute error, root-mean-square error, and value count.
	MaxAbs float64 `json:"max_abs,omitempty"`
	RMS    float64 `json:"rms,omitempty"`
	N      int64   `json:"n,omitempty"`
	Msg    string  `json:"msg,omitempty"` // free-form detail
}

// EventLog is a bounded, drop-counting stream of Events — the live
// counterpart of TraceBuffer. It keeps the newest EventCap events in a
// ring for attachment-time catch-up (/events, obswatch), optionally
// writes every event through to a JSONL sink as it happens, and fans
// events out to registered observers (the SLO engine). A nil *EventLog
// is valid and drops everything at the cost of one pointer test.
type EventLog struct {
	mu        sync.Mutex
	cap       int
	ring      []Event
	next      int
	wrapped   bool
	total     int64
	counts    map[string]int64
	run       int64
	sink      io.Writer
	sinkErr   error
	observers []func(Event)
}

// DefaultEventCap bounds the in-memory event ring.
const DefaultEventCap = 1 << 16

// NewEventLog creates an event log retaining the newest capacity events
// (0 selects DefaultEventCap).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{cap: capacity, counts: make(map[string]int64)}
}

// SetSink attaches a write-through JSONL sink; every subsequent event is
// appended to it as one JSON object per line. The caller owns buffering
// and closing. The first write error is remembered (SinkErr) and stops
// further writes.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.sinkErr = nil
	l.mu.Unlock()
}

// SinkErr returns the first error the JSONL sink reported, if any.
func (l *EventLog) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// Observe registers fn to be called for every subsequent event, outside
// the log's lock but serialized with other observer calls. Register all
// observers before the run starts; registration is not synchronized
// against concurrent Emit.
func (l *EventLog) Observe(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.observers = append(l.observers, fn)
}

// StartRun advances the run sequence number and emits an EventRun
// marker. Drivers call it once per cell/seed so consumers know virtual
// time restarted at zero (sliding SLO windows reset; cumulative breach
// counts persist).
func (l *EventLog) StartRun(label string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.run++
	l.mu.Unlock()
	l.Emit(Event{Kind: EventRun, Label: label, Rank: -1, Peer: -1})
}

// Emit appends one event: into the ring (overwriting the oldest when
// full), through the sink, and out to the observers. Safe for concurrent
// use; observers run outside the lock so they may themselves Emit.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	ev.Run = l.run
	l.total++
	ev.Seq = l.total
	l.counts[ev.Kind]++
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.wrapped = true
	}
	l.next = (l.next + 1) % l.cap
	if l.sink != nil && l.sinkErr == nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = l.sink.Write(line)
		}
		if err != nil {
			l.sinkErr = err
		}
	}
	obs := l.observers
	l.mu.Unlock()
	for _, fn := range obs {
		fn(ev)
	}
}

// EmitEnd emits the end-of-stream marker: one final event whose Value is
// its own sequence number. A replay that does not find it as the last
// line knows the stream was truncated. Call it once, after all emitters
// have quiesced (concurrent Emit would race the marker past the end).
func (l *EventLog) EmitEnd() {
	if l == nil {
		return
	}
	l.mu.Lock()
	final := l.total + 1
	l.mu.Unlock()
	l.Emit(Event{Kind: EventEnd, Rank: -1, Peer: -1, Value: float64(final)})
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]Event(nil), l.ring[:l.next]...)
	}
	out := make([]Event, 0, l.cap)
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total returns the number of events ever emitted.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events fell out of the ring (they were still
// written to the sink and seen by observers).
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return 0
	}
	return l.total - int64(l.cap)
}

// Counts returns a copy of the per-kind event counts.
func (l *EventLog) Counts() map[string]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

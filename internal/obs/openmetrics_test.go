package obs

import (
	"strings"
	"testing"
)

// buildSnapshot populates a registry the way a run does: slash-scoped
// counters, gauges, and histograms with and without label segments.
func buildSnapshot() Snapshot {
	m := newMetrics()
	m.Add("fault/drops", 3)
	m.Add("exchange/repairs", 2)
	m.Add("compress/fwd0/raw_bytes", 4096)
	m.Add("compress/fwd0/wire_bytes", 1024)
	m.Set("fault/retry_delay_s", 0.25)
	m.Set("compress/fwd0/error_bound", 1e-7)
	for i := 0; i < 10; i++ {
		m.Observe("exchange/fwd0/time_s", float64(i+1)*1e-4)
	}
	return m.Snapshot()
}

func TestOpenMetricsWriteParseRoundTrip(t *testing.T) {
	snap := buildSnapshot()
	var buf strings.Builder
	if err := WriteOpenMetrics(&buf, snap.OpenMetricsFamilies()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Fatalf("exposition missing # EOF terminator:\n%s", text)
	}
	samples, err := ParseOpenMetrics([]byte(text))
	if err != nil {
		t.Fatalf("self-produced exposition fails lint: %v\n%s", err, text)
	}

	find := func(name, label string) (OMSample, bool) {
		for _, s := range samples {
			if s.Name == name && s.Label() == label {
				return s, true
			}
		}
		return OMSample{}, false
	}
	// 2-segment counter: joined name.
	if s, ok := find("fft_fault_drops_total", ""); !ok || s.Value != 3 {
		t.Fatalf("fault_drops sample wrong: %+v ok=%v\n%s", s, ok, text)
	}
	// 3-segment counter: middle segment becomes the label.
	if s, ok := find("fft_compress_raw_bytes_total", "fwd0"); !ok || s.Value != 4096 {
		t.Fatalf("compress raw_bytes sample wrong: %+v ok=%v\n%s", s, ok, text)
	}
	// _s gauge: unit expanded to _seconds.
	if s, ok := find("fft_fault_retry_delay_seconds", ""); !ok || s.Value != 0.25 {
		t.Fatalf("retry_delay gauge wrong: %+v ok=%v\n%s", s, ok, text)
	}
	// Histogram exported as a summary: count, sum, and quantiles.
	if s, ok := find("fft_exchange_time_seconds_count", "fwd0"); !ok || s.Value != 10 {
		t.Fatalf("hist count wrong: %+v ok=%v\n%s", s, ok, text)
	}
	var quantiles int
	for _, s := range samples {
		if s.Name == "fft_exchange_time_seconds" && s.Labels["quantile"] != "" {
			quantiles++
		}
	}
	if quantiles != 3 {
		t.Fatalf("summary has %d quantile samples, want 3\n%s", quantiles, text)
	}
}

func TestOpenMetricsMergesExtraFamilies(t *testing.T) {
	snap := buildSnapshot()
	extra := []Family{{
		Name: "fft_slo_breach", Type: "counter",
		Series: []Series{{Suffix: "_total", Labels: []Label{{Name: "objective", Value: "p99"}}, Value: 1}},
	}}
	var buf strings.Builder
	if err := WriteOpenMetrics(&buf, snap.OpenMetricsFamilies(), extra); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseOpenMetrics([]byte(buf.String()))
	if err != nil {
		t.Fatalf("merged exposition fails lint: %v\n%s", err, buf.String())
	}
	found := false
	for _, s := range samples {
		if s.Name == "fft_slo_breach_total" && s.Labels["objective"] == "p99" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("extra family missing from exposition:\n%s", buf.String())
	}
}

func TestOpenMetricsEscaping(t *testing.T) {
	fams := []Family{{
		Name: "fft_test_values", Type: "gauge",
		Series: []Series{{Labels: []Label{{Name: "label", Value: `quote " slash \ newline` + "\n"}}, Value: 1}},
	}}
	var buf strings.Builder
	if err := WriteOpenMetrics(&buf, fams); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseOpenMetrics([]byte(buf.String()))
	if err != nil {
		t.Fatalf("escaped exposition fails lint: %v\n%s", err, buf.String())
	}
	if len(samples) != 1 || samples[0].Label() != `quote " slash \ newline`+"\n" {
		t.Fatalf("label did not round-trip: %+v", samples)
	}
}

// TestParseOpenMetricsRejects locks in the linter's strictness: each
// malformed exposition must be refused, not silently accepted.
func TestParseOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing EOF", "# TYPE fft_x counter\nfft_x_total 1\n"},
		{"sample before TYPE", "fft_x_total 1\n# TYPE fft_x counter\n# EOF\n"},
		{"counter without _total", "# TYPE fft_x counter\nfft_x 1\n# EOF\n"},
		{"summary with bad suffix", "# TYPE fft_x summary\nfft_x_bucket 1\n# EOF\n"},
		{"split family", "# TYPE fft_x counter\nfft_x_total 1\n# TYPE fft_y gauge\nfft_y 1\nfft_x_total 2\n# EOF\n"},
		{"duplicate series", "# TYPE fft_x gauge\nfft_x 1\nfft_x 2\n# EOF\n"},
		{"invalid name", "# TYPE 9bad counter\n9bad_total 1\n# EOF\n"},
		{"garbage value", "# TYPE fft_x gauge\nfft_x notanumber\n# EOF\n"},
		{"unterminated label", `# TYPE fft_x gauge` + "\n" + `fft_x{label="a 1` + "\n# EOF\n"},
		{"duplicate TYPE", "# TYPE fft_x gauge\n# TYPE fft_x gauge\nfft_x 1\n# EOF\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseOpenMetrics([]byte(tc.text)); err == nil {
				t.Fatalf("lint accepted malformed exposition:\n%s", tc.text)
			}
		})
	}
}

// TestSnapshotConsistent checks that Snapshot copies, not aliases, the
// registry: mutations after the snapshot must not show through.
func TestSnapshotConsistent(t *testing.T) {
	m := newMetrics()
	m.Add("c", 1)
	m.Set("g", 2)
	m.Observe("h", 3)
	snap := m.Snapshot()
	m.Add("c", 10)
	m.Set("g", 20)
	m.Observe("h", 30)
	if snap.Counters["c"] != 1 || snap.Gauges["g"] != 2 || snap.Hists["h"].Count != 1 {
		t.Fatalf("snapshot aliases live registry: %+v", snap)
	}
	if m.Counter("c") != 11 {
		t.Fatalf("live registry wrong: %d", m.Counter("c"))
	}
}

func TestSnapshotNilMetrics(t *testing.T) {
	var m *Metrics
	snap := m.Snapshot()
	if len(snap.Counters) != 0 || len(snap.CounterNames()) != 0 {
		t.Fatal("nil Metrics snapshot must be empty and usable")
	}
	var buf strings.Builder
	if err := WriteOpenMetrics(&buf, snap.OpenMetricsFamilies()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOpenMetrics([]byte(buf.String())); err != nil {
		t.Fatalf("empty exposition fails lint: %v", err)
	}
}

package gpu

import (
	"math"
	"testing"
)

// fakeClock implements Clock for tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64     { return c.t }
func (c *fakeClock) Elapse(d float64) { c.t += d }
func (c *fakeClock) AdvanceTo(t float64) {
	if t > c.t {
		c.t = t
	}
}

func TestFFTCostScaling(t *testing.T) {
	d := V100()
	small := d.FFTCost(1024, 1, 64)
	big := d.FFTCost(1024, 1000, 64)
	if big <= small {
		t.Error("batched FFT not more expensive")
	}
	// FP32 at least as fast as FP64 for the same shape.
	if d.FFTCost(4096, 100, 32) > d.FFTCost(4096, 100, 64) {
		t.Error("FP32 FFT slower than FP64")
	}
	// Large batch approaches the flop model: 5 n log2 n count / rate.
	n, count := 4096, 10000
	want := 5 * float64(n) * math.Log2(float64(n)) * float64(count) / d.FFTFlops64
	got := d.FFTCost(n, count, 64)
	if got < want {
		t.Errorf("FFT cost %g below flop model %g", got, want)
	}
}

func TestCostFloors(t *testing.T) {
	d := V100()
	if d.FFTCost(1, 0, 64) != d.KernelLatency {
		t.Error("degenerate FFT should cost kernel latency")
	}
	if d.CopyCost(1) != d.KernelLatency {
		t.Error("tiny copy should cost kernel latency")
	}
	if d.CompressCost(1, 1) != d.KernelLatency {
		t.Error("tiny compress should cost kernel latency")
	}
}

func TestCopyCostBandwidthBound(t *testing.T) {
	d := V100()
	bytes := 1 << 30
	want := 2 * float64(bytes) / d.MemBW
	if got := d.CopyCost(bytes); math.Abs(got-want) > 1e-12 {
		t.Errorf("copy cost %g, want %g", got, want)
	}
}

func TestStreamInOrderExecution(t *testing.T) {
	clk := &fakeClock{}
	s := NewStream(V100(), clk)
	var order []int
	t1 := s.Launch(1e-3, func() { order = append(order, 1) })
	t2 := s.Launch(2e-3, func() { order = append(order, 2) })
	if !(t2 > t1) {
		t.Errorf("completions not increasing: %g then %g", t1, t2)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("work ran out of order: %v", order)
	}
	// Kernel 2 starts only after kernel 1: t2 ≥ t1 + cost2.
	if t2 < t1+2e-3 {
		t.Errorf("kernel 2 overlapped kernel 1")
	}
}

func TestStreamSynchronize(t *testing.T) {
	clk := &fakeClock{}
	s := NewStream(V100(), clk)
	done := s.Launch(5e-3, nil)
	if !s.Busy() {
		t.Error("stream should be busy after launch")
	}
	s.Synchronize()
	if clk.Now() < done {
		t.Errorf("host clock %g before kernel completion %g", clk.Now(), done)
	}
	if s.Busy() {
		t.Error("stream busy after synchronize")
	}
}

func TestStreamChargesLaunchOverheadToHost(t *testing.T) {
	clk := &fakeClock{}
	d := V100()
	s := NewStream(d, clk)
	s.Launch(1e-3, nil)
	if math.Abs(clk.Now()-d.KernelLaunch) > 1e-15 {
		t.Errorf("host clock after launch = %g, want %g", clk.Now(), d.KernelLaunch)
	}
}

func TestStreamIdleGapRestartsAtHostTime(t *testing.T) {
	clk := &fakeClock{}
	s := NewStream(V100(), clk)
	s.Launch(1e-6, nil)
	s.Synchronize()
	clk.Elapse(1) // long host pause
	done := s.Launch(1e-6, nil)
	if done < 1 {
		t.Errorf("kernel completed at %g, before host time", done)
	}
}

func TestCompressCostAsymmetric(t *testing.T) {
	d := V100()
	// Compressing 8 MB down to 4 MB and decompressing 4 MB up to 8 MB
	// cost the same (both stream 12 MB through memory).
	c := d.CompressCost(8<<20, 4<<20)
	dec := d.CompressCost(4<<20, 8<<20)
	if c != dec {
		t.Errorf("compress %g != decompress %g", c, dec)
	}
	want := float64(12<<20) / d.MemBW
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("compress cost %g, want %g", c, want)
	}
}

func TestFFTCostMemoryBoundFloor(t *testing.T) {
	d := V100()
	// A tiny transform over a huge batch is memory-bound: cost tracks
	// two full sweeps of the data, not the flop model.
	n, batch := 2, 1_000_000
	got := d.FFTCost(n, batch, 64)
	floor := 2 * 16.0 * float64(n) * float64(batch) / d.MemBW
	if got < floor {
		t.Errorf("FFT cost %g below memory floor %g", got, floor)
	}
}

func TestTwoStreamsIndependentTimelines(t *testing.T) {
	clk := &fakeClock{}
	a := NewStream(V100(), clk)
	b := NewStream(V100(), clk)
	ta := a.Launch(1e-3, nil)
	tb := b.Launch(1e-3, nil)
	// Streams model independent queues: the second stream's kernel does
	// not wait for the first stream's.
	if tb-ta > 1e-4 {
		t.Errorf("streams serialized: %g then %g", ta, tb)
	}
}

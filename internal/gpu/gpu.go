// Package gpu models the per-rank accelerator: a device with V100-like
// throughput parameters and CUDA-style streams whose kernels execute in
// order on a device timeline. Kernels carry real Go work (they actually
// transform buffers — the simulation's data plane) plus a modeled cost
// (the time plane). The §V-B compression/communication pipeline is built
// on Stream.Launch returning each kernel's virtual completion time: the
// host "watches the progress counter" by advancing to that time before
// issuing the corresponding put.
package gpu

import (
	"math"

	"repro/internal/obs"
)

// Clock is the slice of the simulator a device needs: the owning rank's
// virtual clock. *mpi.Comm satisfies it.
type Clock interface {
	Now() float64
	Elapse(d float64)
	AdvanceTo(t float64)
}

// Device describes one GPU's performance envelope.
type Device struct {
	// MemBW is the device memory bandwidth in bytes/s.
	MemBW float64
	// FFTFlops64 and FFTFlops32 are the sustained flop rates of batched
	// 1-D FFT kernels in FP64 and FP32.
	FFTFlops64 float64
	FFTFlops32 float64
	// KernelLaunch is the host-side cost of launching a kernel;
	// KernelLatency is the minimum device-side kernel duration.
	KernelLaunch  float64
	KernelLatency float64
}

// V100 returns the device model used throughout the reproduction
// (NVIDIA V100, the Summit GPU; FFT rates are sustained cuFFT-class
// numbers, not peaks).
func V100() Device {
	return Device{
		MemBW:         800e9,
		FFTFlops64:    500e9,
		FFTFlops32:    1000e9,
		KernelLaunch:  3e-6,
		KernelLatency: 4e-6,
	}
}

// FFTCost returns the device time of a batched 1-D FFT: count transforms
// of length n in the given precision (64 or 32 bits), with a
// memory-bandwidth floor (each pass streams the data log n times is
// pessimistic; one read+write per butterfly stage group is folded into
// the flop rate, so the floor is two full sweeps).
func (d Device) FFTCost(n, count int, precisionBits int) float64 {
	if n <= 1 || count <= 0 {
		return d.KernelLatency
	}
	flops := 5 * float64(n) * math.Log2(float64(n)) * float64(count)
	rate := d.FFTFlops64
	elem := 16.0
	if precisionBits == 32 {
		rate = d.FFTFlops32
		elem = 8.0
	}
	t := flops / rate
	floor := 2 * elem * float64(n) * float64(count) / d.MemBW
	if floor > t {
		t = floor
	}
	if t < d.KernelLatency {
		t = d.KernelLatency
	}
	return t
}

// CopyCost returns the device time of a memory-bound kernel moving the
// given number of bytes (read + write).
func (d Device) CopyCost(bytes int) float64 {
	t := 2 * float64(bytes) / d.MemBW
	if t < d.KernelLatency {
		t = d.KernelLatency
	}
	return t
}

// CompressCost returns the device time of a compression (or
// decompression) kernel over bytesIn input bytes producing bytesOut:
// memory-bound on the sum of the streams.
func (d Device) CompressCost(bytesIn, bytesOut int) float64 {
	t := (float64(bytesIn) + float64(bytesOut)) / d.MemBW
	if t < d.KernelLatency {
		t = d.KernelLatency
	}
	return t
}

// Stream is an in-order execution queue on a device, owned by one rank.
type Stream struct {
	dev     Device
	clock   Clock
	readyAt float64
	obs     *obs.Rank
}

// NewStream creates a stream on the device driven by the given clock.
func NewStream(dev Device, clock Clock) *Stream {
	return &Stream{dev: dev, clock: clock}
}

// SetObserver attaches the rank's observability handle: every launched
// kernel is then recorded as a span on the rank's GPU track. A nil
// handle (the default) records nothing and costs nothing.
func (s *Stream) SetObserver(rk *obs.Rank) { s.obs = rk }

// Launch enqueues a kernel with the given device-time cost and executes
// its work function immediately (safe under the cooperative scheduler:
// stream order equals program order for a single owner, and the host
// only observes results after synchronizing). It returns the kernel's
// virtual completion time — the §V-B progress counter value the host can
// wait on. The host clock pays the launch overhead.
func (s *Stream) Launch(cost float64, work func()) (completion float64) {
	return s.LaunchTagged(obs.PhaseKernel, cost, work)
}

// LaunchTagged is Launch with an explicit phase recorded for the
// kernel's span on the GPU track (compress, pack, ...).
func (s *Stream) LaunchTagged(ph obs.Phase, cost float64, work func()) (completion float64) {
	s.clock.Elapse(s.dev.KernelLaunch)
	start := s.clock.Now()
	if s.readyAt > start {
		start = s.readyAt
	}
	s.readyAt = start + cost
	if work != nil {
		work()
	}
	s.obs.Span(obs.TrackGPU, ph, start, s.readyAt, 0)
	return s.readyAt
}

// Synchronize blocks the host until all enqueued kernels completed.
func (s *Stream) Synchronize() {
	s.clock.AdvanceTo(s.readyAt)
}

// Busy reports whether the stream still has queued work at the host's
// current virtual time.
func (s *Stream) Busy() bool { return s.readyAt > s.clock.Now() }

// ReadyAt returns the completion time of the last enqueued kernel.
func (s *Stream) ReadyAt() float64 { return s.readyAt }

// Device returns the stream's device parameters.
func (s *Stream) Device() Device { return s.dev }

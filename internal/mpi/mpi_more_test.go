package mpi

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestAllreduceNonPowerOfTwo exercises the fold step of recursive
// doubling across awkward rank counts.
func TestAllreduceNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 6, 7, 9, 11, 12, 13} {
		p := p
		Run(cfgN(p), func(c *Comm) {
			v := float64(c.Rank()*c.Rank() + 1)
			want := 0.0
			for r := 0; r < p; r++ {
				want += float64(r*r + 1)
			}
			if got := c.AllreduceFloat64("sum", v); math.Abs(got-want) > 1e-9 {
				t.Errorf("p=%d rank=%d: sum=%g want %g", p, c.Rank(), got, want)
			}
		})
	}
}

func TestAllreduceAgreesEverywhere(t *testing.T) {
	p := 11
	results := make([]float64, p)
	Run(cfgN(p), func(c *Comm) {
		results[c.Rank()] = c.AllreduceFloat64("max", float64((c.Rank()*7)%5))
	})
	for r := 1; r < p; r++ {
		if results[r] != results[0] {
			t.Fatalf("rank %d disagrees: %g vs %g", r, results[r], results[0])
		}
	}
}

func TestAllreducePropertyRandomValues(t *testing.T) {
	f := func(vals [6]float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		ok := true
		Run(cfgN(6), func(c *Comm) {
			got := c.AllreduceFloat64("min", vals[c.Rank()])
			want := vals[0]
			for _, v := range vals[1:] {
				want = math.Min(want, v)
			}
			if got != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGatherBinomialLargePayloads(t *testing.T) {
	p := 13
	Run(cfgN(p), func(c *Comm) {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, 100+c.Rank())
		parts := c.Gather(3, mine)
		if c.Rank() != 3 {
			return
		}
		for r, part := range parts {
			want := bytes.Repeat([]byte{byte(r)}, 100+r)
			if !bytes.Equal(part, want) {
				t.Errorf("gather part %d corrupt (len %d want %d)", r, len(part), len(want))
			}
		}
	})
}

// TestAlltoallvSparseAsymmetric: the sparse pattern need not be
// symmetric — rank r sends only to (r+1) mod p.
func TestAlltoallvSparseAsymmetric(t *testing.T) {
	p := 7
	Run(cfgN(p), func(c *Comm) {
		send := make([][]byte, p)
		recvNonzero := make([]bool, p)
		for d := range send {
			send[d] = []byte{}
		}
		send[(c.Rank()+1)%p] = []byte{byte(c.Rank() + 50)}
		recvNonzero[(c.Rank()-1+p)%p] = true
		recv := c.AlltoallvSparse(send, recvNonzero, nil)
		src := (c.Rank() - 1 + p) % p
		if len(recv[src]) != 1 || recv[src][0] != byte(src+50) {
			t.Errorf("rank %d: got %v from %d", c.Rank(), recv[src], src)
		}
		for s := range recv {
			if s != src && recv[s] != nil {
				t.Errorf("unexpected data from %d", s)
			}
		}
	})
}

// TestAlltoallvLogicalSizesAffectTimingOnly: scaled logical sizes slow
// the exchange down without touching payloads.
func TestAlltoallvLogicalSizesAffectTimingOnly(t *testing.T) {
	p := 12
	run := func(logical []int) (time float64, sample byte) {
		Run(cfgN(p), func(c *Comm) {
			send := make([][]byte, p)
			nonzero := make([]bool, p)
			for d := range send {
				send[d] = []byte{byte(c.Rank()), byte(d)}
				nonzero[d] = true
			}
			recv := c.AlltoallvSparse(send, nonzero, logical)
			c.Barrier()
			if c.Rank() == 0 {
				time = c.Now()
				sample = recv[5][0]
			}
		})
		return
	}
	logical := make([]int, p)
	for i := range logical {
		logical[i] = 10 << 20 // 10 MB logical per pair
	}
	tSmall, sSmall := run(nil)
	tBig, sBig := run(logical)
	if tBig <= tSmall*10 {
		t.Errorf("logical sizes did not slow the exchange: %g vs %g", tBig, tSmall)
	}
	if sSmall != 5 || sBig != 5 {
		t.Errorf("payload corrupted by logical sizing")
	}
}

func TestWindowPutLogicalTiming(t *testing.T) {
	cfg := cfgN(12)
	run := func(logical int) float64 {
		var arr float64
		Run(cfg, func(c *Comm) {
			win := c.WinCreate(make([]byte, 16))
			if c.Rank() == 0 {
				arr = win.PutLogical(6, 0, []byte{1, 2}, logical)
			}
			exp := make([]int, c.Size())
			if c.Rank() == 6 {
				exp[0] = 1
			}
			win.Fence(exp)
		})
		return arr
	}
	small := run(2)
	big := run(25_000_000) // 1 ms at 25 GB/s
	if big-small < 0.9e-3 {
		t.Errorf("logical put size ignored: %g vs %g", big, small)
	}
}

func TestWindowDataIntegrityManyEpochs(t *testing.T) {
	p := 6
	Run(cfgN(p), func(c *Comm) {
		buf := make([]byte, 4*p)
		win := c.WinCreate(buf)
		for epoch := 0; epoch < 5; epoch++ {
			for tgt := 0; tgt < p; tgt++ {
				val := []byte{byte(epoch), byte(c.Rank()), byte(tgt), 0xAB}
				win.Put(tgt, 4*c.Rank(), val)
			}
			exp := make([]int, p)
			for i := range exp {
				exp[i] = 1
			}
			win.Fence(exp)
			for s := 0; s < p; s++ {
				want := []byte{byte(epoch), byte(s), byte(c.Rank()), 0xAB}
				if !bytes.Equal(buf[4*s:4*s+4], want) {
					t.Fatalf("epoch %d slot %d = %v want %v", epoch, s, buf[4*s:4*s+4], want)
				}
			}
		}
	})
}

// TestRendezvousZeroCopySemantics: above the eager threshold the payload
// is handed over without copying, so the paper's requirement that the
// send buffer stay constant during the exchange is explicit.
func TestRendezvousZeroCopySemantics(t *testing.T) {
	big := make([]byte, DefaultEagerThreshold+1)
	big[0] = 7
	Run(cfgN(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, big)
		} else if c.Rank() == 1 {
			got := c.Recv(0, 1)
			if &got[0] != &big[0] {
				t.Error("rendezvous payload was copied; expected zero-copy hand-over")
			}
		}
	})
}

func TestBarrierManySizesProperty(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 13} {
		done := make([]bool, p)
		Run(cfgN(p), func(c *Comm) {
			c.Barrier()
			c.Barrier()
			done[c.Rank()] = true
		})
		for r, d := range done {
			if !d {
				t.Fatalf("p=%d rank %d never passed the barriers", p, r)
			}
		}
	}
}

func TestEagerThresholdSwitch(t *testing.T) {
	// A message exactly at the threshold is eager; one byte more pays
	// the rendezvous surcharge.
	cfg := cfgN(12)
	var atThr, overThr float64
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SendN(6, 1, DefaultEagerThreshold)
			c.SendN(6, 2, DefaultEagerThreshold+1)
		case 6:
			a := c.RecvPacket(0, 1)
			b := c.RecvPacket(0, 2)
			atThr = a.Arrival
			overThr = b.Arrival - a.Arrival
		}
	})
	_ = atThr
	cfgS := cfg
	minExtra := 2 * cfgS.InterLatency
	if overThr < minExtra {
		t.Errorf("threshold crossing did not add rendezvous cost: delta %g", overThr)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	p := 8
	Run(cfgN(p), func(c *Comm) {
		var reqs []*Request
		for d := 0; d < p; d++ {
			reqs = append(reqs, c.Irecv(d, 5))
		}
		for d := 0; d < p; d++ {
			c.Isend(d, 5, []byte{byte(c.Rank()), byte(d)})
		}
		c.Waitall(reqs...)
		for s, r := range reqs {
			got := r.Wait()
			if got[0] != byte(s) || got[1] != byte(c.Rank()) {
				t.Errorf("rank %d req %d got %v", c.Rank(), s, got)
			}
			if !r.Done() {
				t.Error("request not done after Wait")
			}
		}
	})
}

func TestWaitIdempotent(t *testing.T) {
	Run(cfgN(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 3, []byte("x"))
		} else if c.Rank() == 1 {
			r := c.Irecv(0, 3)
			a := r.Wait()
			b := r.Wait()
			if string(a) != "x" || string(b) != "x" {
				t.Errorf("wait results: %q %q", a, b)
			}
		}
	})
}

func TestWaitallAdvancesToLatestArrival(t *testing.T) {
	Run(cfgN(12), func(c *Comm) {
		if c.Rank() == 0 {
			c.IsendN(6, 1, 25_000_000) // ~1 ms on the wire
		} else if c.Rank() == 6 {
			r := c.Irecv(0, 1)
			c.Waitall(r)
			if c.Now() < 0.9e-3 {
				t.Errorf("waitall returned at %g, before the arrival", c.Now())
			}
		}
	})
}

// TestInterleavedCollectivesAndWindows stresses tag isolation: barriers,
// reductions, window epochs, and tagged p2p interleaved in one program
// must not cross-match.
func TestInterleavedCollectivesAndWindows(t *testing.T) {
	p := 9
	Run(cfgN(p), func(c *Comm) {
		win := c.WinCreate(make([]byte, p))
		for round := 0; round < 4; round++ {
			// p2p ring with a user tag
			next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
			c.Send(next, 7, []byte{byte(round*10 + c.Rank())})
			got := c.Recv(prev, 7)
			if got[0] != byte(round*10+prev) {
				t.Errorf("round %d: p2p corrupt", round)
			}
			// reduction
			if s := c.AllreduceFloat64("sum", 1); s != float64(p) {
				t.Errorf("round %d: sum=%g", round, s)
			}
			// window epoch
			for tgt := 0; tgt < p; tgt++ {
				win.Put(tgt, c.Rank(), []byte{byte(round)})
			}
			exp := make([]int, p)
			for i := range exp {
				exp[i] = 1
			}
			win.Fence(exp)
			for s := 0; s < p; s++ {
				if win.Buffer()[s] != byte(round) {
					t.Errorf("round %d: window slot %d = %d", round, s, win.Buffer()[s])
				}
			}
			c.Barrier()
		}
	})
}

// TestManyRanksSmoke exercises the engine at the paper's largest scale
// with a light workload (barrier + reduction over 1536 ranks).
func TestManyRanksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1536-rank smoke test")
	}
	p := 1536
	Run(cfgN(p), func(c *Comm) {
		c.Barrier()
		got := c.AllreduceFloat64("sum", 1)
		if got != float64(p) {
			t.Errorf("sum over %d ranks = %g", p, got)
		}
	})
}

package mpi

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Metric names of the one-sided runtime (constants so the hot paths
// record without allocating).
const (
	metricPuts      = "mpi/puts"
	metricPutBytes  = "mpi/put_bytes"
	metricFences    = "mpi/fences"
	metricWinCreate = "mpi/win_create"
	metricWinReuse  = "mpi/win_reuse"
)

// Win is a one-sided communication window exposing a byte buffer to
// remote Put operations, as used by the OSC all-to-all of §V. Creation
// is a collective with a fixed setup cost; the paper's window-caching
// optimization corresponds to reusing one Win across many exchanges.
type Win struct {
	c   *Comm
	id  int
	buf []byte
	tag int
	// puts counts the put packets this rank has issued toward each
	// target in the current epoch (diagnostics).
	puts []int
	// fenced counts completed epochs; every fence after the first is a
	// window-cache hit (the reuse the §V-A caching optimization buys).
	fenced int
}

// WinCreate collectively creates a window over buf. All ranks must call
// it in matching order. The returned window can (and should) be cached:
// creation costs a barrier plus a fixed registration overhead per rank.
func (c *Comm) WinCreate(buf []byte) *Win {
	id := c.nextWinID
	c.nextWinID++
	c.Elapse(c.winCreateCost)
	c.Barrier()
	c.obs.Add(metricWinCreate, 1)
	return &Win{c: c, id: id, buf: buf, tag: tagWinBase + id, puts: make([]int, c.Size())}
}

// Buffer returns the window's exposed memory.
func (w *Win) Buffer() []byte { return w.buf }

// Put copies data into the target rank's window at the given byte
// offset, one-sided: the target takes no action until its next Fence.
// data must stay untouched until the epoch ends (GPU-direct zero-copy,
// like MPI_Win_put from device memory). Put returns at injection time;
// the returned completion time is when the data is resident at the
// target, usable for flush-style waits.
func (w *Win) Put(target, offset int, data []byte) (completion float64) {
	return w.PutLogical(target, offset, data, len(data))
}

// PutLogical is Put with an explicit logical size used for timing — the
// scaled-volume mode of the experiment harness charges transfer time as
// if the payload were larger (see DESIGN.md); data placement uses the
// real bytes. In reliable mode the payload is wrapped in an
// [epoch|idx|crc] frame (see reliable.go) so the fence can discard
// stale duplicates and detect silent corruption.
func (w *Win) PutLogical(target, offset int, data []byte, logical int) (completion float64) {
	idx := w.puts[target]
	w.puts[target]++
	w.c.obs.Add(metricPuts, 1)
	w.c.obs.Add(metricPutBytes, int64(logical))
	payload, bytes := data, logical
	if w.c.reliable {
		payload = putFrame(uint32(w.fenced), uint32(idx), data)
		bytes += putHdr
	}
	return w.c.sendMsg(target, w.tag, netsim.SendOpts{
		Payload: payload, Bytes: bytes, Meta: offset,
		ProtoOverhead: w.c.Config().RMAOverhead, Unmatched: true,
	})
}

// PutN is the phantom variant of Put: n logical bytes, no payload (in
// reliable mode a header-only frame so the fence can still account for
// it).
func (w *Win) PutN(target, offset, n int) (completion float64) {
	idx := w.puts[target]
	w.puts[target]++
	w.c.obs.Add(metricPuts, 1)
	w.c.obs.Add(metricPutBytes, int64(n))
	var payload []byte
	bytes := n
	if w.c.reliable {
		payload = putFrame(uint32(w.fenced), uint32(idx), nil)
		bytes += putHdr
	}
	return w.c.sendMsg(target, w.tag, netsim.SendOpts{
		Payload: payload, Bytes: bytes, Meta: offset,
		ProtoOverhead: w.c.Config().RMAOverhead, Unmatched: true,
	})
}

// Fence closes an access epoch: it drains the expected put packets into
// the window buffer (expected[src] = number of puts rank src issued
// toward this rank this epoch; nil means none) and then synchronizes all
// ranks. The expected counts are structural knowledge of the algorithm
// using the window — exactly what a real implementation derives from its
// communication schedule. In reliable mode a fence that detects corrupt
// or missing puts panics with a *FaultError; callers that want to repair
// instead use FenceChecked.
func (w *Win) Fence(expected []int) {
	rep := w.FenceChecked(expected)
	if !rep.OK() {
		src := -1
		kind := "corrupt"
		if len(rep.Corrupt) > 0 {
			src = rep.Corrupt[0]
		} else {
			src = rep.Missing[0]
			kind = "lost"
		}
		outstanding := make([]int, 0, len(rep.Corrupt)+len(rep.Missing))
		for _, r := range append(append([]int(nil), rep.Corrupt...), rep.Missing...) {
			outstanding = append(outstanding, w.c.glob(r))
		}
		panic(w.c.noteFault(&FaultError{Rank: w.c.GlobalRank(), Src: w.c.glob(src), Tag: w.tag, Kind: kind, Op: "fence",
			When: w.c.Now(), Outstanding: outstanding}))
	}
}

// FenceReport lists the peers whose puts did not survive an epoch:
// Corrupt holds sources with at least one checksum-failed payload,
// Missing sources with at least one put that never arrived (watchdog
// expired). Both empty means the epoch's data is intact.
type FenceReport struct {
	Corrupt []int
	Missing []int
}

// OK reports whether the epoch closed with all puts intact.
func (r FenceReport) OK() bool { return len(r.Corrupt) == 0 && len(r.Missing) == 0 }

// FenceChecked is Fence returning a per-peer damage report instead of
// panicking, so callers (the self-healing exchanges) can re-fetch the
// affected blocks over the lossless two-sided path. Without a fault
// plan it is identical to the plain fence and always reports OK.
func (w *Win) FenceChecked(expected []int) FenceReport {
	w.c.obs.Begin(obs.TrackHost, obs.PhaseFence, w.c.Now())
	latest := w.c.Now()
	var drained int64
	var rep FenceReport
	if expected != nil {
		for src, cnt := range expected {
			if cnt == 0 {
				continue
			}
			if w.c.reliable {
				corrupt, missing := w.drainReliable(src, cnt, &latest, &drained)
				if corrupt {
					rep.Corrupt = append(rep.Corrupt, src)
				}
				if missing {
					rep.Missing = append(rep.Missing, src)
				}
				continue
			}
			for i := 0; i < cnt; i++ {
				pkt := w.c.recvInternal(src, w.tag)
				if pkt.Arrival > latest {
					latest = pkt.Arrival
				}
				drained += int64(pkt.Bytes)
				if pkt.Payload != nil {
					w.place(pkt.Meta, pkt.Payload)
				}
			}
		}
	}
	w.c.AdvanceTo(latest)
	for i := range w.puts {
		w.puts[i] = 0
	}
	w.c.Barrier()
	w.c.p.CountFence()
	w.c.obs.Add(metricFences, 1)
	if w.fenced++; w.fenced > 1 {
		w.c.obs.Add(metricWinReuse, 1)
	}
	w.c.obs.End(w.c.Now(), drained)
	return rep
}

// place copies a put payload into the window, failing loudly on an
// out-of-range offset instead of silently truncating (copy would) or
// panicking with a bare slice error.
func (w *Win) place(offset int, data []byte) {
	if offset < 0 || offset+len(data) > len(w.buf) {
		panic(fmt.Sprintf("mpi: put of %d bytes at offset %d overflows %d-byte window %d on rank %d",
			len(data), offset, len(w.buf), w.id, w.c.Rank()))
	}
	copy(w.buf[offset:], data)
}

// drainReliable receives rank src's cnt framed puts of the current
// epoch: stale duplicates from earlier epochs are skipped, duplicate
// indices within the epoch discarded, checksum failures and off-window
// offsets counted as corrupt, and a watchdog expiry as missing.
func (w *Win) drainReliable(src, cnt int, latest *float64, drained *int64) (corrupt, missing bool) {
	epoch := uint32(w.fenced)
	seen := make([]bool, cnt)
	deadline := w.c.deadline()
	for got := 0; got < cnt; {
		pkt, ok := w.c.recvPktDeadline(src, w.tag, deadline)
		if !ok {
			missing = true
			break
		}
		if pkt.Arrival > *latest {
			*latest = pkt.Arrival
		}
		e, idx, data, okf := deframePut(pkt.Payload)
		if !okf {
			// Header or payload failed the checksum; the frame's epoch and
			// index are untrustworthy, so it consumes one expected slot.
			corrupt = true
			got++
			*drained += int64(pkt.Bytes)
			continue
		}
		if e != epoch {
			w.c.discards++
			continue // stale duplicate of an earlier epoch
		}
		if int(idx) >= cnt {
			corrupt = true
			got++
			continue
		}
		if seen[idx] {
			w.c.discards++
			continue // duplicate delivery within this epoch
		}
		seen[idx] = true
		got++
		w.c.noteProgress()
		*drained += int64(pkt.Bytes)
		if data != nil {
			if pkt.Meta < 0 || pkt.Meta+len(data) > len(w.buf) {
				corrupt = true
				continue
			}
			copy(w.buf[pkt.Meta:], data)
		}
	}
	return corrupt, missing
}

// PutsIssued reports how many puts this rank issued toward target in the
// current epoch.
func (w *Win) PutsIssued(target int) int { return w.puts[target] }

package mpi

import (
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Metric names of the one-sided runtime (constants so the hot paths
// record without allocating).
const (
	metricPuts      = "mpi/puts"
	metricPutBytes  = "mpi/put_bytes"
	metricFences    = "mpi/fences"
	metricWinCreate = "mpi/win_create"
	metricWinReuse  = "mpi/win_reuse"
)

// Win is a one-sided communication window exposing a byte buffer to
// remote Put operations, as used by the OSC all-to-all of §V. Creation
// is a collective with a fixed setup cost; the paper's window-caching
// optimization corresponds to reusing one Win across many exchanges.
type Win struct {
	c   *Comm
	id  int
	buf []byte
	tag int
	// puts counts the put packets this rank has issued toward each
	// target in the current epoch (diagnostics).
	puts []int
	// fenced counts completed epochs; every fence after the first is a
	// window-cache hit (the reuse the §V-A caching optimization buys).
	fenced int
}

// WinCreate collectively creates a window over buf. All ranks must call
// it in matching order. The returned window can (and should) be cached:
// creation costs a barrier plus a fixed registration overhead per rank.
func (c *Comm) WinCreate(buf []byte) *Win {
	id := c.nextWinID
	c.nextWinID++
	c.Elapse(c.winCreateCost)
	c.Barrier()
	c.obs.Add(metricWinCreate, 1)
	return &Win{c: c, id: id, buf: buf, tag: tagWinBase + id, puts: make([]int, c.Size())}
}

// Buffer returns the window's exposed memory.
func (w *Win) Buffer() []byte { return w.buf }

// Put copies data into the target rank's window at the given byte
// offset, one-sided: the target takes no action until its next Fence.
// data must stay untouched until the epoch ends (GPU-direct zero-copy,
// like MPI_Win_put from device memory). Put returns at injection time;
// the returned completion time is when the data is resident at the
// target, usable for flush-style waits.
func (w *Win) Put(target, offset int, data []byte) (completion float64) {
	return w.PutLogical(target, offset, data, len(data))
}

// PutLogical is Put with an explicit logical size used for timing — the
// scaled-volume mode of the experiment harness charges transfer time as
// if the payload were larger (see DESIGN.md); data placement uses the
// real bytes.
func (w *Win) PutLogical(target, offset int, data []byte, logical int) (completion float64) {
	w.puts[target]++
	w.c.obs.Add(metricPuts, 1)
	w.c.obs.Add(metricPutBytes, int64(logical))
	return w.c.p.SendMsg(target, w.tag, netsim.SendOpts{
		Payload: data, Bytes: logical, Meta: offset,
		ProtoOverhead: w.c.Config().RMAOverhead, Unmatched: true,
	})
}

// PutN is the phantom variant of Put: n logical bytes, no payload.
func (w *Win) PutN(target, offset, n int) (completion float64) {
	w.puts[target]++
	w.c.obs.Add(metricPuts, 1)
	w.c.obs.Add(metricPutBytes, int64(n))
	return w.c.p.SendMsg(target, w.tag, netsim.SendOpts{
		Bytes: n, Meta: offset,
		ProtoOverhead: w.c.Config().RMAOverhead, Unmatched: true,
	})
}

// Fence closes an access epoch: it drains the expected put packets into
// the window buffer (expected[src] = number of puts rank src issued
// toward this rank this epoch; nil means none) and then synchronizes all
// ranks. The expected counts are structural knowledge of the algorithm
// using the window — exactly what a real implementation derives from its
// communication schedule.
func (w *Win) Fence(expected []int) {
	w.c.obs.Begin(obs.TrackHost, obs.PhaseFence, w.c.Now())
	latest := w.c.Now()
	var drained int64
	if expected != nil {
		for src, cnt := range expected {
			for i := 0; i < cnt; i++ {
				pkt := w.c.recvInternal(src, w.tag)
				if pkt.Arrival > latest {
					latest = pkt.Arrival
				}
				drained += int64(pkt.Bytes)
				if pkt.Payload != nil {
					copy(w.buf[pkt.Meta:], pkt.Payload)
				}
			}
		}
	}
	w.c.AdvanceTo(latest)
	for i := range w.puts {
		w.puts[i] = 0
	}
	w.c.Barrier()
	w.c.p.CountFence()
	w.c.obs.Add(metricFences, 1)
	if w.fenced++; w.fenced > 1 {
		w.c.obs.Add(metricWinReuse, 1)
	}
	w.c.obs.End(w.c.Now(), drained)
}

// PutsIssued reports how many puts this rank issued toward target in the
// current epoch.
func (w *Win) PutsIssued(target int) int { return w.puts[target] }

package mpi

import (
	"encoding/binary"
	"math"
)

// Float64sToBytes encodes a float64 slice little-endian.
func Float64sToBytes(src []float64) []byte {
	out := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloat64s decodes a little-endian float64 slice.
func BytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Float32sToBytes encodes a float32 slice little-endian.
func Float32sToBytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesToFloat32s decodes a little-endian float32 slice.
func BytesToFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

package mpi

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/netsim"
)

func TestReliableOffIsByteIdentical(t *testing.T) {
	body := func(c *Comm) {
		if c.Reliable() {
			t.Error("reliable mode on without a fault plan")
		}
		n := c.Size()
		for i := 0; i < n; i++ {
			c.Send((c.Rank()+i)%n, 5, []byte{byte(i)})
		}
		for i := 0; i < n; i++ {
			c.Recv((c.Rank()-i+n)%n, 5)
		}
		c.Barrier()
	}
	a := Run(cfgN(12), body)
	b, err := RunChecked(cfgN(12), body)
	if err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if a.Time != b.Time || !reflect.DeepEqual(a.Clocks, b.Clocks) {
		t.Error("RunChecked without faults differs from Run")
	}
}

func TestReliableDedupKeepsFIFO(t *testing.T) {
	// Every message duplicated: sequence numbers must discard the copies
	// so a reused tag still delivers in order.
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 1, DuplicateProb: 1}
	res, err := RunChecked(cfg, func(c *Comm) {
		const k = 20
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 7, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				got := c.Recv(0, 7)
				if len(got) != 1 || got[0] != byte(i) {
					t.Fatalf("message %d: got %v", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if res.Stats.Faults.Duplicates == 0 {
		t.Error("no duplicates injected")
	}
}

func TestLostMessageRaisesFaultError(t *testing.T) {
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 2, DropProb: 1,
		Retry: netsim.RetryPolicy{MaxRetries: 1, RTO: 1e-6, Backoff: 2}}
	_, err := RunChecked(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("doomed"))
		} else {
			c.Recv(0, 7)
		}
	})
	if err == nil {
		t.Fatal("total loss produced no error")
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v carries no *FaultError", err)
	}
	if fe.Rank != 1 || fe.Src != 0 || fe.Kind != "timeout" {
		t.Errorf("diagnostic %+v does not blame rank 1's receive from 0", fe)
	}
}

func TestCollectivesSurviveDropStorm(t *testing.T) {
	// Moderate drops with enough retries: barrier, bcast, allgather, and
	// allreduce all complete with correct values.
	cfg := cfgN(12)
	cfg.Faults = &netsim.FaultPlan{Seed: 3, DropProb: 0.2,
		Retry: netsim.RetryPolicy{MaxRetries: 60, RTO: 1e-6, Backoff: 1.5}}
	res, err := RunChecked(cfg, func(c *Comm) {
		c.Barrier()
		got := c.Bcast(0, []byte("payload"))
		if string(got) != "payload" {
			t.Errorf("rank %d bcast got %q", c.Rank(), got)
		}
		parts := c.Allgather([]byte{byte(c.Rank())})
		for r, p := range parts {
			if len(p) != 1 || p[0] != byte(r) {
				t.Errorf("rank %d allgather[%d] = %v", c.Rank(), r, p)
			}
		}
		if sum := c.AllreduceFloat64("sum", 1); sum != float64(c.Size()) {
			t.Errorf("rank %d sum = %g", c.Rank(), sum)
		}
	})
	if err != nil {
		t.Fatalf("collectives failed under drops: %v", err)
	}
	if res.Stats.Faults.Retries == 0 {
		t.Error("no retries exercised")
	}
}

func TestAlltoallvUnderFaults(t *testing.T) {
	cfg := cfgN(12)
	cfg.Faults = &netsim.FaultPlan{Seed: 4, DropProb: 0.1, DuplicateProb: 0.1,
		Retry: netsim.RetryPolicy{MaxRetries: 60, RTO: 1e-6, Backoff: 1.5}}
	_, err := RunChecked(cfg, func(c *Comm) {
		n := c.Size()
		send := make([][]byte, n)
		for d := range send {
			send[d] = bytes.Repeat([]byte{byte(c.Rank()<<4 | d)}, 128)
		}
		recv := c.Alltoallv(send)
		for s, p := range recv {
			want := bytes.Repeat([]byte{byte(s<<4 | c.Rank())}, 128)
			if !bytes.Equal(p, want) {
				t.Errorf("rank %d from %d: wrong payload", c.Rank(), s)
			}
		}
	})
	if err != nil {
		t.Fatalf("alltoallv failed: %v", err)
	}
}

func TestFenceCheckedReportsSilentCorruption(t *testing.T) {
	// Certain silent corruption of every large put: FenceChecked must
	// name the source instead of handing over mangled data.
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 5, SilentCorruptProb: 1}
	_, err := RunChecked(cfg, func(c *Comm) {
		buf := make([]byte, 512)
		w := c.WinCreate(buf)
		expected := make([]int, c.Size())
		if c.Rank() == 0 {
			w.Put(1, 0, bytes.Repeat([]byte{0xee}, 256))
		} else {
			expected[0] = 1
		}
		rep := w.FenceChecked(expected)
		if c.Rank() == 1 {
			if len(rep.Corrupt) != 1 || rep.Corrupt[0] != 0 {
				t.Errorf("report %+v does not blame rank 0", rep)
			}
		} else if !rep.OK() {
			t.Errorf("rank 0 report %+v not OK", rep)
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestFenceHealsDuplicatesAndDelivers(t *testing.T) {
	// Duplicated puts across two reused epochs: the epoch/idx framing
	// must deliver each epoch's data exactly once.
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 6, DuplicateProb: 1}
	_, err := RunChecked(cfg, func(c *Comm) {
		buf := make([]byte, 256)
		w := c.WinCreate(buf)
		for epoch := 0; epoch < 2; epoch++ {
			expected := make([]int, c.Size())
			if c.Rank() == 0 {
				w.Put(1, 0, bytes.Repeat([]byte{byte(0x10 + epoch)}, 128))
			} else {
				expected[0] = 1
			}
			rep := w.FenceChecked(expected)
			if !rep.OK() {
				t.Errorf("epoch %d report %+v", epoch, rep)
			}
			if c.Rank() == 1 && buf[0] != byte(0x10+epoch) {
				t.Errorf("epoch %d window holds %#x", epoch, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestPlainFencePanicsOnDamage(t *testing.T) {
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 7, SilentCorruptProb: 1}
	_, err := RunChecked(cfg, func(c *Comm) {
		w := c.WinCreate(make([]byte, 512))
		expected := make([]int, c.Size())
		if c.Rank() == 0 {
			w.Put(1, 0, bytes.Repeat([]byte{1}, 256))
		} else {
			expected[0] = 1
		}
		w.Fence(expected)
	})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Op != "fence" {
		t.Fatalf("expected a fence *FaultError, got %v", err)
	}
}

func TestMismatchedPairDeadlockDiagnostic(t *testing.T) {
	// Satellite check at the runtime level: a deliberately mismatched
	// send/recv pair yields a diagnostic naming both blocked ranks and
	// their pending tags.
	_, err := RunChecked(cfgN(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 100) // rank 1 sends on tag 200 instead
			c.Send(1, 300, nil)
		} else {
			c.Recv(0, 300) // waits before sending: classic crossed pair
			c.Send(0, 200, nil)
		}
	})
	var re *netsim.RunError
	if !errors.As(err, &re) || re.Deadlock == nil {
		t.Fatalf("expected deadlock diagnostic, got %v", err)
	}
	if len(re.Deadlock.Blocked) != 2 {
		t.Fatalf("blocked list %+v, want both ranks", re.Deadlock.Blocked)
	}
	b := re.Deadlock.Blocked
	if b[0].Rank != 0 || b[0].Src != 1 || b[0].Tag != 100 ||
		b[1].Rank != 1 || b[1].Src != 0 || b[1].Tag != 300 {
		t.Errorf("diagnostic %+v does not name both pending ops", b)
	}
}

func TestCrashedPeerTimesOutCollective(t *testing.T) {
	cfg := cfgN(2)
	cfg.Faults = &netsim.FaultPlan{Seed: 8, CrashRank: 1, CrashAt: 1e-9}
	_, err := RunChecked(cfg, func(c *Comm) {
		// Rank 1 crashes after injecting its first-round message, so the
		// first barrier still completes on rank 0; the second one must be
		// cut short by the watchdog, not hang.
		c.Barrier()
		c.Barrier()
	})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("expected *FaultError from the barrier watchdog, got %v", err)
	}
	if fe.Op != "collective" || fe.Rank != 0 {
		t.Errorf("diagnostic %+v, want rank 0 collective timeout", fe)
	}
}

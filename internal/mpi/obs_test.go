package mpi

import (
	"testing"

	"repro/internal/obs"
)

// TestOneSidedStats checks the engine-level accounting of the one-sided
// protocol: put count and bytes, fences, and flushes in Result.Stats.
func TestOneSidedStats(t *testing.T) {
	p := 4
	res := Run(cfgN(p), func(c *Comm) {
		win := c.WinCreate(make([]byte, 8*p))
		payload := make([]byte, 8)
		for target := 0; target < p; target++ {
			win.Put(target, 8*c.Rank(), payload)
		}
		expected := make([]int, p)
		for i := range expected {
			expected[i] = 1
		}
		win.Fence(expected)
		c.CountFlush()
	})
	if want := p * p; res.Stats.Puts != want {
		t.Errorf("puts = %d, want %d", res.Stats.Puts, want)
	}
	if want := int64(8 * p * p); res.Stats.BytesPut != want {
		t.Errorf("put bytes = %d, want %d", res.Stats.BytesPut, want)
	}
	if want := p; res.Stats.Fences != want {
		t.Errorf("fences = %d, want %d", res.Stats.Fences, want)
	}
	if want := p; res.Stats.Flushes != want {
		t.Errorf("flushes = %d, want %d", res.Stats.Flushes, want)
	}
}

// TestRunWithRecords checks that RunWith threads wire events and window
// metrics into the recorder without changing virtual time.
func TestRunWithRecords(t *testing.T) {
	p := 4
	body := func(c *Comm) {
		win := c.WinCreate(make([]byte, 8*p))
		payload := make([]byte, 8)
		for target := 0; target < p; target++ {
			win.Put(target, 8*c.Rank(), payload)
		}
		expected := make([]int, p)
		for i := range expected {
			expected[i] = 1
		}
		win.Fence(expected)
	}
	plain := Run(cfgN(p), body)
	rec := obs.New(obs.Options{Trace: true, Metrics: true})
	traced := RunWith(cfgN(p), rec, body)
	if plain.Time != traced.Time {
		t.Errorf("recording changed virtual time: %v vs %v", plain.Time, traced.Time)
	}
	if len(rec.WireEvents()) == 0 {
		t.Error("no wire events recorded")
	}
	m := rec.Metrics()
	if got := m.Counter("mpi/puts"); got != int64(p*p) {
		t.Errorf("mpi/puts = %d, want %d", got, p*p)
	}
	if got := m.Counter("mpi/put_bytes"); got != int64(8*p*p) {
		t.Errorf("mpi/put_bytes = %d, want %d", got, 8*p*p)
	}
	if got := m.Counter("mpi/fences"); got != int64(p) {
		t.Errorf("mpi/fences = %d, want %d", got, p)
	}
	if got := m.Counter("mpi/win_create"); got != int64(p) {
		t.Errorf("mpi/win_create = %d, want %d", got, p)
	}
	// Each rank's fence wraps a host-track span.
	found := false
	for _, id := range rec.RankIDs() {
		for _, s := range rec.RankSpans(id) {
			if s.Phase == obs.PhaseFence && s.Track == obs.TrackHost {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fence span recorded")
	}
}

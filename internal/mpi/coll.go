package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/netsim"
)

// Barrier synchronizes all ranks with the dissemination algorithm
// (⌈log2 p⌉ rounds of small messages), which works for any rank count.
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	epoch := c.barrierEpoch
	c.barrierEpoch++
	r := c.Rank()
	round := 0
	for k := 1; k < p; k <<= 1 {
		tag := tagBarrier + epoch<<6 + round
		c.sendInternal((r+k)%p, tag, nil, 0)
		c.recvInternal((r-k+p)%p, tag)
		round++
	}
}

// collTag returns a fresh internal tag for one collective invocation.
// Every rank calls collectives in the same order, so epochs agree.
func (c *Comm) collTag() int {
	t := tagCollBase + c.collEpoch<<6
	c.collEpoch++
	return t
}

// Bcast distributes root's buf to all ranks (binomial tree, the MPICH
// algorithm) and returns the received copy (root returns buf itself).
func (c *Comm) Bcast(root int, buf []byte) []byte {
	p := c.Size()
	tag := c.collTag()
	if p == 1 {
		return buf
	}
	vr := (c.Rank() - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			buf = c.recvInternal(src, tag).Payload
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			c.sendInternal(dst, tag, buf, len(buf))
		}
	}
	return buf
}

// Gather collects each rank's buf at root through a binomial tree
// (⌈log2 p⌉ receives at the root rather than p−1); root receives a
// slice indexed by rank, other ranks receive nil.
func (c *Comm) Gather(root int, buf []byte) [][]byte {
	p := c.Size()
	tag := c.collTag()
	vr := (c.Rank() - root + p) % p
	// Accumulate this rank's subtree, tagged with owner ranks.
	acc := appendOwned(nil, c.Rank(), buf)
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := (vr - mask + root) % p
			c.sendInternal(parent, tag, acc, len(acc))
			return nil
		}
		if child := vr + mask; child < p {
			got := c.recvInternal((child+root)%p, tag).Payload
			acc = append(acc, got...)
		}
		mask <<= 1
	}
	out := make([][]byte, p)
	for off := 0; off < len(acc); {
		rank := int(binary.LittleEndian.Uint32(acc[off:]))
		n := int(binary.LittleEndian.Uint32(acc[off+4:]))
		off += 8
		out[rank] = acc[off : off+n : off+n]
		off += n
	}
	return out
}

func appendOwned(dst []byte, rank int, buf []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(buf)))
	dst = append(dst, hdr[:]...)
	return append(dst, buf...)
}

// Allgather collects every rank's buf on every rank (gather at rank 0 +
// broadcast of the concatenation; simple and adequate for the small
// control payloads it carries here).
func (c *Comm) Allgather(buf []byte) [][]byte {
	parts := c.Gather(0, buf)
	var flat []byte
	if c.Rank() == 0 {
		flat = encodeParts(parts)
	}
	flat = c.Bcast(0, flat)
	return decodeParts(flat, c.Size())
}

func encodeParts(parts [][]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	var hdr [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

func decodeParts(flat []byte, count int) [][]byte {
	parts := make([][]byte, count)
	off := 0
	for i := 0; i < count; i++ {
		n := int(binary.LittleEndian.Uint32(flat[off:]))
		off += 4
		parts[i] = flat[off : off+n : off+n]
		off += n
	}
	return parts
}

// AllreduceFloat64 combines one value per rank with op ("sum", "max",
// "min") and returns the result on every rank, using recursive doubling
// (with the standard fold step for non-power-of-two rank counts).
func (c *Comm) AllreduceFloat64(op string, v float64) float64 {
	p := c.Size()
	r := c.Rank()
	tag := c.collTag()
	combine := func(a, b float64) float64 {
		switch op {
		case "sum":
			return a + b
		case "max":
			return math.Max(a, b)
		case "min":
			return math.Min(a, b)
		}
		panic("mpi: unknown reduction op " + op)
	}
	send := func(dst int, x float64, round int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		c.sendInternal(dst, tag+round, buf[:], 8)
	}
	recv := func(src, round int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(c.recvInternal(src, tag+round).Payload))
	}

	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	acc := v
	newRank := -1
	switch {
	case r < 2*rem && r%2 != 0: // folds into the left neighbour
		send(r-1, acc, 0)
	case r < 2*rem: // absorbs the right neighbour
		acc = combine(acc, recv(r+1, 0))
		newRank = r / 2
	default:
		newRank = r - rem
	}
	if newRank >= 0 {
		oldOf := func(nr int) int {
			if nr < rem {
				return 2 * nr
			}
			return nr + rem
		}
		round := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := oldOf(newRank ^ mask)
			send(partner, acc, round)
			acc = combine(acc, recv(partner, round))
			round++
		}
	}
	// Hand results back to the folded ranks.
	if r < 2*rem {
		if r%2 == 0 {
			send(r+1, acc, 63)
		} else {
			acc = recv(r-1, 63)
		}
	}
	return acc
}

// Alltoallv is the baseline generalized all-to-all: the default linear
// algorithm of Open MPI's basic module, which posts every send up front
// (flooding the fabric — this is the behaviour whose degradation Fig. 3
// shows) and then drains every receive. send[d] is the payload for rank
// d; the returned slice holds one received payload per source rank.
func (c *Comm) Alltoallv(send [][]byte) [][]byte {
	return c.alltoallvImpl(send, nil, nil, c.collTag(), false, nil)
}

// AlltoallvSparse is Alltoallv for callers that know the global pattern
// (as MPI_Alltoallv's count arrays provide): empty sends are skipped,
// and only sources with recvNonzero[src] are drained. logical, when
// non-nil, overrides each message's on-the-wire size for timing (the
// scaled-volume experiment mode).
func (c *Comm) AlltoallvSparse(send [][]byte, recvNonzero []bool, logical []int) [][]byte {
	return c.alltoallvImpl(send, nil, recvNonzero, c.collTag(), false, logical)
}

// AlltoallvN is the phantom variant of Alltoallv: sizes[d] logical bytes
// are sent to each rank d with no payload. It returns nothing.
func (c *Comm) AlltoallvN(sizes []int) {
	c.alltoallvImpl(nil, sizes, nil, c.collTag(), true, nil)
}

func (c *Comm) alltoallvImpl(send [][]byte, sizes []int, recvNonzero []bool, base int, phantom bool, logicalSizes []int) [][]byte {
	p := c.Size()
	r := c.Rank()
	logical := func(dst int) int {
		switch {
		case phantom:
			return sizes[dst]
		case logicalSizes != nil:
			return logicalSizes[dst]
		default:
			return len(send[dst])
		}
	}
	sparse := recvNonzero != nil
	// Post all sends in rank order, self first (mirrors the basic
	// linear implementation); sparse mode skips empty peers.
	active := 0
	for i := 0; i < p; i++ {
		dst := (r + i) % p
		n := logical(dst)
		if sparse && n == 0 {
			continue
		}
		active++
		var payload []byte
		if !phantom {
			payload = send[dst]
		}
		lat, proto := c.rendezvousCost(dst, n)
		c.sendMsg(dst, base, netsim.SendOpts{Payload: payload, Bytes: n, ExtraLatency: lat, ProtoOverhead: proto})
	}
	// Every arrival is matched against the posted-receive list, whose
	// length here is the number of active peers — the per-message
	// matching cost that grows with scale and throttles the default
	// all-to-all (one-sided puts bypass it entirely).
	cfg := c.Config()
	matchCost := 0.0
	if cfg.MatchCost > 0 {
		depth := active
		if cfg.MatchQueueCap > 0 && depth > cfg.MatchQueueCap {
			depth = cfg.MatchQueueCap
		}
		matchCost = cfg.MatchCost * float64(depth)
	}
	recv := make([][]byte, p)
	latest := c.Now()
	for i := 0; i < p; i++ {
		src := (r - i + p) % p
		if sparse && !recvNonzero[src] {
			continue
		}
		pkt := c.recvInternal(src, base)
		c.Elapse(matchCost)
		recv[src] = pkt.Payload
		if pkt.Arrival > latest {
			latest = pkt.Arrival
		}
	}
	c.AdvanceTo(latest)
	if phantom {
		return nil
	}
	return recv
}

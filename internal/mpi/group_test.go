package mpi

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
)

// The group tests exercise the ULFM-style shrink: survivors agree on
// the reduced membership and continue on a sub-communicator with dense
// local ranks, translated wire ranks, and a fresh tag generation.

// shrunken runs body on the 6-rank Summit node with rank `dead` absent
// (it returns immediately, as a permanently lost rank would) and every
// survivor shrunken onto the remaining five.
func shrunken(t *testing.T, dead int, body func(*Comm)) netsim.Result {
	t.Helper()
	return Run(cfgN(6), func(c *Comm) {
		if c.Rank() == dead {
			return
		}
		sc := c.Shrink([]int{dead})
		body(sc)
	})
}

func TestShrinkMembershipAndTranslation(t *testing.T) {
	shrunken(t, 3, func(sc *Comm) {
		if sc.Size() != 5 {
			t.Errorf("shrunken size %d, want 5", sc.Size())
		}
		if sc.WorldSize() != 6 {
			t.Errorf("world size %d, want 6", sc.WorldSize())
		}
		if sc.Generation() != 1 {
			t.Errorf("generation %d, want 1", sc.Generation())
		}
		want := []int{0, 1, 2, 4, 5}
		if !reflect.DeepEqual(sc.Group(), want) {
			t.Errorf("group %v, want %v", sc.Group(), want)
		}
		// Local ranks are dense in ascending global order; the dead rank's
		// slot is closed up.
		g := sc.GlobalRank()
		if want[sc.Rank()] != g {
			t.Errorf("local rank %d maps to global %d, want %d", sc.Rank(), want[sc.Rank()], g)
		}
		// Node placement follows the global rank (6 GPUs per node).
		if got := sc.NodeOf(sc.Rank()); got != want[sc.Rank()]/6 {
			t.Errorf("NodeOf(%d) = %d, want %d", sc.Rank(), got, want[sc.Rank()]/6)
		}
	})
}

func TestShrinkPointToPointAndCollectives(t *testing.T) {
	shrunken(t, 2, func(sc *Comm) {
		p := sc.Size()
		me := sc.Rank()
		// Ring exchange on local ranks: the wire translation must route
		// around the dead global rank transparently.
		next, prev := (me+1)%p, (me-1+p)%p
		sc.Send(next, 5, []byte{byte(sc.GlobalRank())})
		got := sc.Recv(prev, 5)
		wantG := sc.Group()[prev]
		if len(got) != 1 || int(got[0]) != wantG {
			t.Errorf("rank %d got %v from local %d, want global %d", me, got, prev, wantG)
		}
		// Collectives run over the survivor group only.
		sum := sc.AllreduceFloat64("sum", float64(sc.GlobalRank()))
		if sum != 0+1+3+4+5 {
			t.Errorf("allreduce sum %v, want 13", sum)
		}
		sc.Barrier()
	})
}

func TestShrinkWindowsExchange(t *testing.T) {
	shrunken(t, 4, func(sc *Comm) {
		p := sc.Size()
		me := sc.Rank()
		buf := make([]byte, p)
		win := sc.WinCreate(buf)
		for dst := 0; dst < p; dst++ {
			win.Put(dst, me, []byte{byte(10 + me)})
		}
		expected := make([]int, p)
		for i := range expected {
			expected[i] = 1
		}
		win.Fence(expected)
		for src := 0; src < p; src++ {
			if buf[src] != byte(10+src) {
				t.Errorf("rank %d window slot %d = %d, want %d", me, src, buf[src], 10+src)
			}
		}
	})
}

func TestShrinkDeterministicAcrossEngines(t *testing.T) {
	run := func(parallel bool) netsim.Result {
		cfg := cfgN(6)
		cfg.Parallel = parallel
		return Run(cfg, func(c *Comm) {
			if c.Rank() == 1 {
				return
			}
			sc := c.Shrink([]int{1})
			sc.Barrier()
			sc.AllreduceFloat64("max", float64(sc.GlobalRank()))
			sc.Barrier()
		})
	}
	seq := run(false)
	par := run(true)
	if seq.Time != par.Time || !reflect.DeepEqual(seq.Clocks, par.Clocks) {
		t.Errorf("shrunken run diverged across engines:\n%+v\n%+v", seq, par)
	}
}

func TestShrinkAgreementUnionsSuspects(t *testing.T) {
	// Every survivor must present the same dead set (the controller
	// guarantees it); the agreement round then converges without growth
	// and yields identical groups everywhere.
	shrunken(t, 5, func(sc *Comm) {
		want := []int{0, 1, 2, 3, 4}
		if !reflect.DeepEqual(sc.Group(), want) {
			t.Errorf("agreed group %v, want %v", sc.Group(), want)
		}
	})
}

func TestShrinkTwice(t *testing.T) {
	// A second shrink on the sub-communicator composes: generation 2,
	// membership down to four, traffic still consistent.
	Run(cfgN(6), func(c *Comm) {
		if c.Rank() == 0 {
			return
		}
		sc := c.Shrink([]int{0})
		if sc.GlobalRank() == 3 {
			return
		}
		sc2 := sc.Shrink([]int{3})
		if sc2.Generation() != 2 || sc2.Size() != 4 {
			t.Errorf("second shrink: gen %d size %d, want 2 and 4", sc2.Generation(), sc2.Size())
		}
		want := []int{1, 2, 4, 5}
		if !reflect.DeepEqual(sc2.Group(), want) {
			t.Errorf("second shrink group %v, want %v", sc2.Group(), want)
		}
		sum := sc2.AllreduceFloat64("sum", float64(sc2.GlobalRank()))
		if sum != 1+2+4+5 {
			t.Errorf("allreduce on generation 2 sum %v, want 12", sum)
		}
	})
}

package mpi

import "repro/internal/netsim"

// Request is the handle of a nonblocking operation. In this runtime a
// send is complete at injection time (the engine owns the transfer
// afterwards), so Isend returns an already-complete request; a receive
// is matched when the request is waited on — matching is deferred, not
// progressed in the background, but arrival timestamps are exact, so
// Wait returns at the same virtual time a progressed implementation
// would have.
type Request struct {
	c        *Comm
	recv     bool
	src, tag int
	done     bool
	pkt      netsim.Packet
}

// Isend starts a nonblocking send. The returned request is already
// complete (buffered eager or injected rendezvous — the transfer
// proceeds on the engine's timeline either way).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.Send(dst, tag, data)
	return &Request{c: c, done: true}
}

// IsendN is the phantom variant of Isend.
func (c *Comm) IsendN(dst, tag, n int) *Request {
	c.SendN(dst, tag, n)
	return &Request{c: c, done: true}
}

// Irecv posts a nonblocking receive for (src, tag).
func (c *Comm) Irecv(src, tag int) *Request {
	checkUserTag(tag)
	return &Request{c: c, recv: true, src: src, tag: tag}
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends and phantom messages). Waiting twice is a
// no-op returning the same payload.
func (r *Request) Wait() []byte {
	if !r.done {
		if r.c.reliable {
			// User-tag traffic is framed in reliable mode; go through the
			// dedup/checksum path so deferred receives see the same
			// guarantees as blocking ones.
			r.pkt = r.c.recvReliable(r.src, r.tag)
		} else {
			r.pkt = r.c.recvInternal(r.src, r.tag)
		}
		r.done = true
	}
	return r.pkt.Payload
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Packet returns the full packet metadata of a completed receive.
func (r *Request) Packet() netsim.Packet {
	r.Wait()
	return r.pkt
}

// Waitall completes every request, returning the latest arrival time
// among the receives (the caller's clock is already advanced past it).
func (c *Comm) Waitall(reqs ...*Request) float64 {
	latest := c.Now()
	for _, r := range reqs {
		r.Wait()
		if r.recv && r.pkt.Arrival > latest {
			latest = r.pkt.Arrival
		}
	}
	c.AdvanceTo(latest)
	return latest
}

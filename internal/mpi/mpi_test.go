package mpi

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/netsim"
)

func cfgN(ranks int) netsim.Config {
	cfg := netsim.Summit((ranks + 5) / 6)
	if ranks%6 != 0 {
		cfg.GPUsPerNode = 1
		cfg.Nodes = ranks
	}
	return cfg
}

func TestSendRecvEager(t *testing.T) {
	Run(cfgN(2), func(c *Comm) {
		if c.Rank() == 0 {
			data := []byte("hello")
			c.Send(1, 3, data)
			data[0] = 'X' // eager buffers: mutation must not corrupt the message
		} else if c.Rank() == 1 {
			got := c.Recv(0, 3)
			if string(got) != "hello" {
				t.Errorf("got %q", got)
			}
		}
	})
}

func TestRendezvousSurcharge(t *testing.T) {
	// A large message's arrival includes the handshake round trip.
	big := 1 << 20
	cfg := cfgN(12)
	var eagerT, rdvT float64
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SetEagerThreshold(big + 1)
			c.SendN(6, 1, big)
		case 6:
			c.SetEagerThreshold(big + 1)
			pkt := c.RecvPacket(0, 1)
			eagerT = pkt.Arrival
		}
	})
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SendN(6, 1, big) // default threshold: rendezvous
		case 6:
			pkt := c.RecvPacket(0, 1)
			rdvT = pkt.Arrival
		}
	})
	// The rendezvous message pays the handshake round trip in latency
	// plus the per-message protocol occupancy on the NIC.
	wantDelta := 2*cfg.InterLatency + cfg.ProtoOverheadInter
	if math.Abs((rdvT-eagerT)-wantDelta) > 1e-12 {
		t.Errorf("rendezvous surcharge = %g, want %g", rdvT-eagerT, wantDelta)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// After a barrier, everyone's clock is at least the latest arrival
	// caused by the slowest rank's pre-barrier work.
	clocks := make([]float64, 12)
	Run(cfgN(12), func(c *Comm) {
		if c.Rank() == 5 {
			c.Elapse(1e-3)
		}
		c.Barrier()
		clocks[c.Rank()] = c.Now()
	})
	for r, ck := range clocks {
		if ck < 1e-3 {
			t.Errorf("rank %d clock %g below straggler time", r, ck)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	// Successive barriers must not cross-talk via stale tags.
	Run(cfgN(7), func(c *Comm) {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
	})
}

func TestBcastVariousRootsAndSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 12} {
		for root := 0; root < p; root += 2 {
			payload := []byte(fmt.Sprintf("root-%d-data", root))
			Run(cfgN(p), func(c *Comm) {
				var buf []byte
				if c.Rank() == root {
					buf = payload
				}
				got := c.Bcast(root, buf)
				if !bytes.Equal(got, payload) {
					t.Errorf("p=%d root=%d rank=%d got %q", p, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestGatherAllgather(t *testing.T) {
	Run(cfgN(9), func(c *Comm) {
		mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		parts := c.Gather(2, mine)
		if c.Rank() == 2 {
			for r, p := range parts {
				if !bytes.Equal(p, []byte{byte(r), byte(r * 2)}) {
					t.Errorf("gather rank %d = %v", r, p)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root gather returned data")
		}
		all := c.Allgather(mine)
		for r, p := range all {
			if !bytes.Equal(p, []byte{byte(r), byte(r * 2)}) {
				t.Errorf("allgather rank %d = %v", r, p)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	Run(cfgN(8), func(c *Comm) {
		v := float64(c.Rank() + 1)
		if got := c.AllreduceFloat64("sum", v); got != 36 {
			t.Errorf("sum = %g", got)
		}
		if got := c.AllreduceFloat64("max", v); got != 8 {
			t.Errorf("max = %g", got)
		}
		if got := c.AllreduceFloat64("min", v); got != 1 {
			t.Errorf("min = %g", got)
		}
	})
}

func TestAlltoallvCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 5, 12} {
		Run(cfgN(p), func(c *Comm) {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				// Variable sizes: rank r sends r+d+1 bytes to d.
				send[d] = bytes.Repeat([]byte{byte(10*c.Rank() + d)}, c.Rank()+d+1)
			}
			recv := c.Alltoallv(send)
			for s := 0; s < p; s++ {
				want := bytes.Repeat([]byte{byte(10*s + c.Rank())}, s+c.Rank()+1)
				if !bytes.Equal(recv[s], want) {
					t.Errorf("p=%d rank %d from %d: got %v want %v", p, c.Rank(), s, recv[s], want)
				}
			}
		})
	}
}

func TestAlltoallvPhantomStats(t *testing.T) {
	p := 12
	res := Run(cfgN(p), func(c *Comm) {
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = 1000
		}
		c.AlltoallvN(sizes)
	})
	wantTotal := int64(p * p * 1000)
	got := res.Stats.BytesInter + res.Stats.BytesIntra + res.Stats.BytesLocal
	if got != wantTotal {
		t.Errorf("total bytes %d, want %d", got, wantTotal)
	}
}

func TestWindowPutFence(t *testing.T) {
	p := 6
	Run(cfgN(p), func(c *Comm) {
		buf := make([]byte, p) // one byte slot per source
		win := c.WinCreate(buf)
		// Everyone puts its rank id into slot[rank] of every window.
		for target := 0; target < p; target++ {
			win.Put(target, c.Rank(), []byte{byte(c.Rank() + 100)})
		}
		expected := make([]int, p)
		for i := range expected {
			expected[i] = 1
		}
		win.Fence(expected)
		for s := 0; s < p; s++ {
			if buf[s] != byte(s+100) {
				t.Errorf("rank %d slot %d = %d", c.Rank(), s, buf[s])
			}
		}
	})
}

func TestWindowFenceEpochsReset(t *testing.T) {
	p := 4
	Run(cfgN(p), func(c *Comm) {
		buf := make([]byte, 8*p)
		win := c.WinCreate(buf)
		for epoch := 0; epoch < 3; epoch++ {
			for target := 0; target < p; target++ {
				win.Put(target, 8*c.Rank(), []byte{byte(epoch)})
			}
			if win.PutsIssued(0) != 1 {
				t.Errorf("puts issued tracking broken")
			}
			expected := make([]int, p)
			for i := range expected {
				expected[i] = 1
			}
			win.Fence(expected)
			for s := 0; s < p; s++ {
				if buf[8*s] != byte(epoch) {
					t.Errorf("epoch %d slot %d = %d", epoch, s, buf[8*s])
				}
			}
		}
	})
}

func TestWindowCachingCheaperThanRecreate(t *testing.T) {
	p := 12
	iters := 8
	cached := Run(cfgN(p), func(c *Comm) {
		win := c.WinCreate(make([]byte, 64))
		for i := 0; i < iters; i++ {
			win.Fence(nil)
		}
	})
	recreate := Run(cfgN(p), func(c *Comm) {
		for i := 0; i < iters; i++ {
			win := c.WinCreate(make([]byte, 64))
			win.Fence(nil)
		}
	})
	if cached.Time >= recreate.Time {
		t.Errorf("window caching not cheaper: cached %g vs recreate %g", cached.Time, recreate.Time)
	}
}

func TestUserTagValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid tag")
		}
	}()
	Run(cfgN(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, tagUserLimit, nil)
		} else {
			c.Recv(0, 0)
		}
	})
}

func TestByteConversions(t *testing.T) {
	f64 := []float64{0, 1.5, -2.25, math.Pi}
	if got := BytesToFloat64s(Float64sToBytes(f64)); !reflect.DeepEqual(got, f64) {
		t.Errorf("float64 round trip: %v", got)
	}
	f32 := []float32{0, 1.5, -2.25}
	if got := BytesToFloat32s(Float32sToBytes(f32)); !reflect.DeepEqual(got, f32) {
		t.Errorf("float32 round trip: %v", got)
	}
}

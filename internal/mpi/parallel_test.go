package mpi

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// winBody drives the one-sided runtime hard from every rank at once:
// window creation (a collective), puts, fences, and flush counting.
// Under the parallel engine all of this happens on concurrent OS
// threads — it is the regression test for the shared Stats counters
// that CountFence/CountFlush used to bump directly (a data race the
// old code path exhibits under `go test -race` with NETSIM_PARALLEL=1;
// the counters are per-proc now, merged at the end of the run).
func winBody(t *testing.T) func(*Comm) {
	return func(c *Comm) {
		p := c.Size()
		buf := make([]byte, p)
		w := c.WinCreate(buf)
		expected := make([]int, p)
		for epoch := 0; epoch < 3; epoch++ {
			for d := 0; d < p; d++ {
				w.Put(d, c.Rank(), []byte{byte(c.Rank() + epoch)})
				c.CountFlush()
			}
			for i := range expected {
				expected[i] = 1
			}
			w.Fence(expected)
			for s := 0; s < p; s++ {
				if buf[s] != byte(s+epoch) {
					t.Errorf("rank %d epoch %d: slot %d = %d", c.Rank(), epoch, s, buf[s])
				}
			}
		}
	}
}

// TestParallelWindowsRaceFree is primarily a -race canary (the verify
// tier runs this package with the race detector both sequentially and
// with NETSIM_PARALLEL=1); it also pins the fence/flush totals.
func TestParallelWindowsRaceFree(t *testing.T) {
	cfg := netsim.Summit(2)
	cfg.Parallel = true
	res := Run(cfg, winBody(t))
	p := cfg.Ranks()
	if want := 3 * p; res.Stats.Fences != want {
		t.Errorf("fences = %d, want %d", res.Stats.Fences, want)
	}
	if want := 3 * p * p; res.Stats.Flushes != want {
		t.Errorf("flushes = %d, want %d", res.Stats.Flushes, want)
	}
}

// TestParallelWindowsMatchSequential: the full one-sided path (window
// cache, puts, fences, reliable framing off) is bit-identical across
// engine modes, including the recorder's metrics snapshot.
func TestParallelWindowsMatchSequential(t *testing.T) {
	run := func(parallel bool) (netsim.Result, map[string]int64) {
		cfg := netsim.Summit(2)
		cfg.Parallel = parallel
		rec := obs.New(obs.Options{Metrics: true})
		res := RunWith(cfg, rec, winBody(t))
		counters := map[string]int64{}
		for _, name := range rec.Metrics().CounterNames() {
			counters[name] = rec.Metrics().Counter(name)
		}
		return res, counters
	}
	seqRes, seqCtr := run(false)
	parRes, parCtr := run(true)
	if seqRes.Time != parRes.Time || !reflect.DeepEqual(seqRes.Clocks, parRes.Clocks) || seqRes.Stats != parRes.Stats {
		t.Errorf("window runs differ:\nseq %+v\npar %+v", seqRes, parRes)
	}
	if !reflect.DeepEqual(seqCtr, parCtr) {
		t.Errorf("metric counters differ:\nseq %v\npar %v", seqCtr, parCtr)
	}
}

// TestParallelReliableMatchesSequential: the reliable transport (CRC
// frames, sequence tracking, watchdogs) under a fault plan is
// bit-identical across modes at the mpi layer too.
func TestParallelReliableMatchesSequential(t *testing.T) {
	run := func(parallel bool) (netsim.Result, string, [][]byte) {
		cfg := netsim.Summit(1)
		cfg.Parallel = parallel
		cfg.Faults = &netsim.FaultPlan{Seed: 11, DropProb: 0.15, CorruptProb: 0.05,
			Retry: netsim.RetryPolicy{MaxRetries: 6, RTO: 5e-6, Backoff: 2}}
		got := make([][]byte, cfg.Ranks())
		res, err := RunChecked(cfg, func(c *Comm) {
			p := c.Size()
			for d := 0; d < p; d++ {
				c.Send(d, 5, []byte{byte(c.Rank()), byte(d)})
			}
			for s := 0; s < p; s++ {
				got[c.Rank()] = append(got[c.Rank()], c.Recv(s, 5)...)
			}
		})
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		return res, msg, got
	}
	seqRes, seqErr, seqGot := run(false)
	parRes, parErr, parGot := run(true)
	if seqRes.Time != parRes.Time || seqRes.Stats != parRes.Stats {
		t.Errorf("reliable runs differ:\nseq %+v\npar %+v", seqRes.Stats, parRes.Stats)
	}
	if seqErr != parErr {
		t.Errorf("diagnostics differ:\nseq %q\npar %q", seqErr, parErr)
	}
	for r := range seqGot {
		if !bytes.Equal(seqGot[r], parGot[r]) {
			t.Errorf("rank %d payloads differ", r)
		}
	}
}

package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Reliable mode activates automatically when the machine config carries
// a fault plan (netsim.Config.Faults != nil). It wraps the runtime's
// traffic in end-to-end integrity protocol the way a production MPI
// sits on a reliable transport:
//
//   - two-sided user-tag messages carry a [seq u32][crc u32] frame:
//     sequence numbers discard duplicate deliveries and turn a
//     permanently lost message into a typed *FaultError instead of a
//     FIFO shift that silently reorders every later message;
//   - one-sided puts carry an [epoch u32][idx u32][crc u32] frame so a
//     fence can drain exactly the puts of its own epoch (stale
//     duplicates are skipped) and verify each payload's checksum —
//     the defense against GPU-direct RDMA bypassing the CPU's
//     checksummed protocol stack;
//   - every internal receive gets a virtual-time watchdog deadline
//     (RetryPolicy.OpDeadline), converting a hang on a lost message or
//     crashed peer into a *FaultError diagnostic.
//
// Without a fault plan none of this exists: the comm takes the exact
// pre-fault code paths, keeping fault-free virtual times byte-identical.

// frameHdr is the two-sided reliable frame: [seq u32][crc u32].
const frameHdr = 8

// putHdr is the one-sided put frame: [epoch u32][idx u32][crc u32].
const putHdr = 12

var crcTab = crc32.IEEETable

// FaultError is the typed diagnostic the reliable runtime raises when a
// fault survives transport-level recovery: a receive deadline expiring
// (peer crashed or message permanently lost), a sequence gap (lost
// message detected by its successor), or a checksum mismatch.
type FaultError struct {
	Rank int     // rank that detected the fault
	Src  int     // peer the failed operation was waiting on
	Tag  int     // netsim tag of the operation
	Kind string  // "timeout", "lost", or "corrupt"
	Op   string  // "recv", "collective", or "fence"
	When float64 // virtual time of detection

	// Crash-forensics detail (docs/ROBUSTNESS.md): the virtual time of
	// this rank's last completed reliable operation before the fault (0
	// when it never made progress), the peers the failed operation was
	// still owed data from, and the delivery attempts consumed while
	// waiting (duplicate or stale frames discarded since last progress).
	// Recovery reports use these to say where a run died, not just that
	// it died.
	LastProgress float64
	Outstanding  []int
	Retries      int
}

func (e *FaultError) Error() string {
	s := fmt.Sprintf("mpi: rank %d %s %s from rank %d (tag %d) at t=%.3gs",
		e.Rank, e.Op, e.Kind, e.Src, e.Tag, e.When)
	if e.LastProgress > 0 || len(e.Outstanding) > 1 || e.Retries > 0 {
		s += fmt.Sprintf(" [last progress t=%.3gs, outstanding peers %v, %d frames discarded]",
			e.LastProgress, e.Outstanding, e.Retries)
	}
	return s
}

// noteFault stamps the error with the rank's progress forensics, emits
// the detection into the live event stream (when one is attached), and
// returns the error for the caller to panic with. Label is the fault
// kind prefixed with "detected_" to keep it distinct from the
// injection-side events the engine's FaultObserver emits.
func (c *Comm) noteFault(e *FaultError) *FaultError {
	e.LastProgress = c.progressT
	e.Retries = c.discards
	if e.Outstanding == nil && e.Src >= 0 {
		e.Outstanding = []int{e.Src}
	}
	c.obs.Emit(obs.Event{
		T: e.When, Kind: obs.EventFault, Label: "detected_" + e.Kind,
		Peer: e.Src, Msg: e.Op,
	})
	return e
}

// noteProgress records a completed reliable operation: the watchdog
// forensics baseline advances and the discard tally resets. Called only
// on reliable paths, so fault-free runs never touch the fields.
func (c *Comm) noteProgress() {
	c.progressT = c.p.Now()
	c.discards = 0
}

// frame wraps data in the two-sided reliable header. The checksum
// covers the sequence number AND the payload: a burst that flips only
// header bytes must fail validation, not smuggle in a wrong sequence
// number over an intact payload. It always copies, which doubles as the
// eager buffering the plain path does for small messages.
func frame(seq uint32, data []byte) []byte {
	buf := make([]byte, frameHdr+len(data))
	binary.LittleEndian.PutUint32(buf[0:], seq)
	copy(buf[frameHdr:], data)
	crc := crc32.Update(crc32.Checksum(buf[:4], crcTab), crcTab, data)
	binary.LittleEndian.PutUint32(buf[4:], crc)
	return buf
}

// deframe validates a two-sided frame; ok is false for truncated input
// or a checksum mismatch. The returned data aliases buf.
func deframe(buf []byte) (seq uint32, data []byte, ok bool) {
	if len(buf) < frameHdr {
		return 0, nil, false
	}
	seq = binary.LittleEndian.Uint32(buf[0:])
	want := binary.LittleEndian.Uint32(buf[4:])
	data = buf[frameHdr:]
	if crc32.Update(crc32.Checksum(buf[:4], crcTab), crcTab, data) != want {
		return 0, nil, false
	}
	if len(data) == 0 {
		data = nil // phantom parity with the plain path
	}
	return seq, data, true
}

// putFrame wraps a put payload in the one-sided header. As with frame,
// the checksum covers epoch and index too: a corrupted epoch over an
// intact payload would otherwise validate and be skipped as a "stale
// duplicate", turning one flipped bit into a fence that waits out its
// whole watchdog deadline.
func putFrame(epoch, idx uint32, data []byte) []byte {
	buf := make([]byte, putHdr+len(data))
	binary.LittleEndian.PutUint32(buf[0:], epoch)
	binary.LittleEndian.PutUint32(buf[4:], idx)
	copy(buf[putHdr:], data)
	crc := crc32.Update(crc32.Checksum(buf[:8], crcTab), crcTab, data)
	binary.LittleEndian.PutUint32(buf[8:], crc)
	return buf
}

// deframePut validates a one-sided frame; ok is false for truncated
// input or a checksum mismatch (in which case epoch and idx are
// untrustworthy too).
func deframePut(buf []byte) (epoch, idx uint32, data []byte, ok bool) {
	if len(buf) < putHdr {
		return 0, 0, nil, false
	}
	epoch = binary.LittleEndian.Uint32(buf[0:])
	idx = binary.LittleEndian.Uint32(buf[4:])
	want := binary.LittleEndian.Uint32(buf[8:])
	data = buf[putHdr:]
	if crc32.Update(crc32.Checksum(buf[:8], crcTab), crcTab, data) != want {
		return 0, 0, nil, false
	}
	if len(data) == 0 {
		data = nil
	}
	return epoch, idx, data, true
}

type seqKey struct{ peer, tag int }

// Reliable reports whether the comm runs in reliable mode (a fault plan
// is attached to the machine).
func (c *Comm) Reliable() bool { return c.reliable }

// RetryPolicy returns the effective transport retry / watchdog policy
// (the defaults unless the fault plan overrides them).
func (c *Comm) RetryPolicy() netsim.RetryPolicy { return c.retry }

// nextSendSeq returns and advances the send sequence number toward
// (dst, tag).
func (c *Comm) nextSendSeq(dst, tag int) uint32 {
	k := seqKey{dst, tag}
	s := c.sendSeq[k]
	c.sendSeq[k] = s + 1
	return s
}

// deadline returns the watchdog deadline for a receive posted now.
func (c *Comm) deadline() float64 {
	return c.p.Now() + c.retry.OpDeadline
}

// recvReliable is the reliable-mode receive of one framed two-sided
// message: it discards duplicates, verifies the checksum, and raises a
// *FaultError on a deadline expiry, a sequence gap (the wanted message
// was permanently lost), or corruption.
func (c *Comm) recvReliable(src, tag int) netsim.Packet {
	k := seqKey{src, tag}
	want := c.recvSeq[k]
	deadline := c.deadline()
	for {
		pkt, ok := c.recvPktDeadline(src, tag, deadline)
		if !ok {
			panic(c.noteFault(&FaultError{Rank: c.GlobalRank(), Src: c.glob(src), Tag: tag, Kind: "timeout", Op: "recv", When: c.p.Now()}))
		}
		seq, data, ok := deframe(pkt.Payload)
		if !ok {
			panic(c.noteFault(&FaultError{Rank: c.GlobalRank(), Src: c.glob(src), Tag: tag, Kind: "corrupt", Op: "recv", When: c.p.Now()}))
		}
		if seq < want {
			c.discards++
			continue // duplicate delivery of an already-consumed message
		}
		if seq > want {
			panic(c.noteFault(&FaultError{Rank: c.GlobalRank(), Src: c.glob(src), Tag: tag, Kind: "lost", Op: "recv", When: c.p.Now()}))
		}
		c.recvSeq[k] = want + 1
		c.noteProgress()
		pkt.Payload = data
		return pkt
	}
}

package mpi

import (
	"fmt"
	"sort"
)

// ULFM-style communicator shrink. When a rank dies permanently (its
// respawn budget is exhausted — see internal/recover), the survivors
// agree on the reduced membership and continue on a sub-communicator
// whose local ranks are dense 0..S-1, the analogue of
// MPIX_Comm_agree + MPIX_Comm_shrink. The sub-communicator translates
// local ranks to global wire ranks on every operation and offsets all
// tags into a fresh generation, so no traffic of the old membership can
// ever match the new one.

// GlobalRank returns the calling rank's world (wire) rank, which never
// changes across shrinks. Identical to Rank on the world communicator.
func (c *Comm) GlobalRank() int { return c.p.Rank() }

// WorldSize returns the launch-time rank count, independent of shrinks.
func (c *Comm) WorldSize() int { return c.p.Size() }

// Generation returns the shrink generation (0 = world communicator).
func (c *Comm) Generation() int { return c.gen }

// Group returns the member global ranks in ascending order, or nil for
// the world communicator. The caller must not mutate the slice.
func (c *Comm) Group() []int { return c.group }

// members returns this communicator's membership as explicit global
// ranks (the world communicator materializes 0..P-1).
func (c *Comm) members() []int {
	if c.group != nil {
		return c.group
	}
	all := make([]int, c.p.Size())
	for i := range all {
		all[i] = i
	}
	return all
}

// Shrink agrees on the surviving membership and returns the shrunken
// communicator. dead lists suspected-dead global ranks; every surviving
// member of the current communicator must call Shrink, and the
// fault-tolerant agreement round ORs the suspect sets so a failure seen
// by any one survivor excludes the rank everywhere — the collective
// cannot complete with survivors holding different memberships. The
// calling rank must not be in the agreed dead set, and at least one
// rank must survive; both are programming errors and panic.
//
// The returned communicator has dense local ranks 0..S-1 in ascending
// global-rank order, fresh collective/window epochs, fresh reliable
// sequence spaces, and a new tag generation. The parent communicator
// must not be used for further communication once Shrink returns.
func (c *Comm) Shrink(dead []int) *Comm {
	suspects := make(map[int]bool, len(dead))
	for _, r := range dead {
		suspects[r] = true
	}
	for {
		sc := c.subComm(suspects)
		// Agreement: dissemination allreduce-OR of the suspect bitmask
		// over the provisional survivor group. OR is idempotent, so the
		// dissemination pattern converges to the full union in ⌈log2 S⌉
		// rounds. A survivor that learned of an extra failure grows the
		// mask everywhere; everyone then re-shrinks from the union.
		mask := make([]byte, c.p.Size())
		for r := range suspects {
			mask[r] = 1
		}
		agreed := sc.agreeMask(mask)
		grew := false
		for r, b := range agreed {
			if b != 0 && !suspects[r] {
				suspects[r] = true
				grew = true
			}
		}
		if !grew {
			return sc
		}
	}
}

// subComm builds the provisional shrunken communicator excluding the
// suspect set.
func (c *Comm) subComm(suspects map[int]bool) *Comm {
	if suspects[c.GlobalRank()] {
		panic(fmt.Sprintf("mpi: rank %d cannot shrink away itself", c.GlobalRank()))
	}
	var group []int
	for _, r := range c.members() {
		if !suspects[r] {
			group = append(group, r)
		}
	}
	sort.Ints(group)
	if len(group) == 0 {
		panic("mpi: shrink would leave no survivors")
	}
	lrank := -1
	for i, r := range group {
		if r == c.GlobalRank() {
			lrank = i
		}
	}
	sc := &Comm{
		p:              c.p,
		obs:            c.obs,
		eagerThreshold: c.eagerThreshold,
		winCreateCost:  c.winCreateCost,
		group:          group,
		lrank:          lrank,
		gen:            c.gen + 1,
		reliable:       c.reliable,
		retry:          c.retry,
	}
	if sc.reliable {
		sc.sendSeq = make(map[seqKey]uint32)
		sc.recvSeq = make(map[seqKey]uint32)
	}
	return sc
}

// agreeMask ORs each survivor's suspect bitmask across the provisional
// group with the dissemination pattern (the Barrier exchange, carrying
// the mask as payload) and returns the union known to this rank.
func (sc *Comm) agreeMask(mask []byte) []byte {
	p := sc.Size()
	if p == 1 {
		return mask
	}
	epoch := sc.collEpoch
	sc.collEpoch++
	r := sc.Rank()
	round := 0
	for k := 1; k < p; k <<= 1 {
		tag := tagCollBase + epoch<<6 + round
		// Copy before sending: payload delivery is zero-copy in the
		// simulator, and the mask is mutated as later rounds merge.
		sc.sendInternal((r+k)%p, tag, append([]byte(nil), mask...), len(mask))
		got := sc.recvInternal((r-k+p)%p, tag).Payload
		for i, b := range got {
			if b != 0 {
				mask[i] = 1
			}
		}
		round++
	}
	return mask
}

// Package mpi implements the message-passing runtime the reproduction
// uses in place of MPI: two-sided point-to-point with eager/rendezvous
// protocols, the collectives the 3-D FFT pipeline needs (barrier,
// broadcast, gathers, the default linear all-to-all-v baseline), and
// one-sided communication windows (Put / Fence) with window caching, as
// §V of the paper requires.
//
// Semantics and costs follow common MPI implementations: small messages
// are buffered and sent eagerly; large messages pay a rendezvous
// round-trip surcharge; window creation is a collective with a fixed
// setup cost that caching amortizes. All time flows through the netsim
// engine; all payloads are real bytes.
package mpi

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Tag spaces: user tags live below tagUserLimit; internal protocol tags
// are derived above it.
const (
	tagUserLimit = 1 << 20
	tagBarrier   = 1 << 21
	tagCollBase  = 1 << 22
	tagWinBase   = 1 << 23
)

// DefaultEagerThreshold is the message size (bytes) above which the
// rendezvous protocol (an extra round-trip of wire latency) applies.
const DefaultEagerThreshold = 8192

// Comm is a communicator spanning all ranks of the simulated machine.
type Comm struct {
	p              *netsim.Proc
	obs            *obs.Rank
	eagerThreshold int
	barrierEpoch   int
	collEpoch      int
	nextWinID      int
	winCreateCost  float64
}

// Run starts one rank body per simulated GPU and returns the netsim
// result (virtual completion time, per-rank clocks, traffic stats).
func Run(cfg netsim.Config, body func(*Comm)) netsim.Result {
	return RunWith(cfg, nil, body)
}

// RunWith is Run with an observability recorder: each rank gets a
// per-rank span/metric handle (reachable via Comm.Obs), and the wire
// events of netsim's Tracer stream are recorded on the same timeline.
// A nil recorder makes RunWith identical to Run, with zero overhead.
func RunWith(cfg netsim.Config, rec *obs.Recorder, body func(*Comm)) netsim.Result {
	rec.SetMachine(obs.Machine{
		Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode,
		InterBW: cfg.InterBW, IntraBW: cfg.IntraBW, LocalBW: cfg.LocalBW,
	})
	if rec.Tracing() {
		prev := cfg.Tracer
		cfg.Tracer = func(ev netsim.TraceEvent) {
			if prev != nil {
				prev(ev)
			}
			rec.Wire(obs.WireEvent{
				Src: ev.Src, Dst: ev.Dst, Tag: ev.Tag, Bytes: ev.Bytes,
				Kind: ev.Kind, SrcNode: ev.SrcNode, DstNode: ev.DstNode,
				Injected: ev.Injected, End: ev.End, Arrival: ev.Arrival,
				Start: ev.Start, Ser: ev.Ser,
			})
		}
	}
	return netsim.Run(cfg, func(p *netsim.Proc) {
		body(&Comm{
			p:              p,
			obs:            rec.Rank(p.Rank()),
			eagerThreshold: DefaultEagerThreshold,
			winCreateCost:  50e-6,
		})
	})
}

// Obs returns this rank's observability handle (nil, and safe to use,
// when no recorder is attached).
func (c *Comm) Obs() *obs.Rank { return c.obs }

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.p.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.p.Size() }

// Node returns the node hosting the calling rank.
func (c *Comm) Node() int { return c.p.Node() }

// NodeOf returns the node hosting a rank.
func (c *Comm) NodeOf(rank int) int { return c.p.Config().NodeOf(rank) }

// Config returns the machine description.
func (c *Comm) Config() netsim.Config { return c.p.Config() }

// Now returns the rank's virtual clock.
func (c *Comm) Now() float64 { return c.p.Now() }

// Elapse charges d seconds of local work to the rank's clock.
func (c *Comm) Elapse(d float64) { c.p.Elapse(d) }

// AdvanceTo raises the rank's clock to at least t.
func (c *Comm) AdvanceTo(t float64) { c.p.AdvanceTo(t) }

// CountFlush attributes one put-throttling flush wait to the run's
// Stats (used by the one-sided exchange when it bounds outstanding
// puts).
func (c *Comm) CountFlush() { c.p.CountFlush() }

// SetEagerThreshold overrides the eager/rendezvous switch point.
func (c *Comm) SetEagerThreshold(bytes int) { c.eagerThreshold = bytes }

// rendezvousCost returns the two-sided protocol surcharges of a message
// of size n to dst: extra arrival latency (the RTS/CTS round trip) and
// per-message path occupancy (protocol progression on the NIC/bus),
// both zero below the eager threshold.
func (c *Comm) rendezvousCost(dst, n int) (extraLatency, protoOverhead float64) {
	if n <= c.eagerThreshold {
		return 0, 0
	}
	cfg := c.p.Config()
	if c.NodeOf(dst) == c.Node() {
		return 2 * cfg.IntraLatency, cfg.ProtoOverheadIntra
	}
	return 2 * cfg.InterLatency, cfg.ProtoOverheadInter
}

func checkUserTag(tag int) {
	if tag < 0 || tag >= tagUserLimit {
		panic(fmt.Sprintf("mpi: user tag %d out of range", tag))
	}
}

// Send transmits data to dst with the given tag. Eager messages are
// buffered (the caller may reuse data immediately); rendezvous messages
// hand the slice over zero-copy and pay the handshake surcharge. Send
// returns at injection time, as a buffered MPI_Send would.
func (c *Comm) Send(dst, tag int, data []byte) {
	checkUserTag(tag)
	payload := data
	if len(data) <= c.eagerThreshold {
		payload = append([]byte(nil), data...)
	}
	lat, proto := c.rendezvousCost(dst, len(data))
	c.p.SendMsg(dst, tag, netsim.SendOpts{Payload: payload, Bytes: len(data), ExtraLatency: lat, ProtoOverhead: proto})
}

// SendN transmits a phantom message of n logical bytes (no payload),
// used by bandwidth benchmarks at scales where materializing the data
// would be infeasible. Timing is identical to Send.
func (c *Comm) SendN(dst, tag, n int) {
	checkUserTag(tag)
	lat, proto := c.rendezvousCost(dst, n)
	c.p.SendMsg(dst, tag, netsim.SendOpts{Bytes: n, ExtraLatency: lat, ProtoOverhead: proto})
}

// Recv blocks until the message from src with the given tag arrives and
// returns its payload (nil for phantom messages).
func (c *Comm) Recv(src, tag int) []byte {
	checkUserTag(tag)
	return c.p.Recv(src, tag).Payload
}

// RecvPacket is Recv exposing the full packet metadata.
func (c *Comm) RecvPacket(src, tag int) netsim.Packet {
	checkUserTag(tag)
	return c.p.Recv(src, tag)
}

// internal send/recv on protocol tags (no user-tag check).
func (c *Comm) sendInternal(dst, tag int, data []byte, n int) {
	c.p.SendDelayed(dst, tag, data, n, 0)
}

func (c *Comm) recvInternal(src, tag int) netsim.Packet {
	return c.p.Recv(src, tag)
}

// Package mpi implements the message-passing runtime the reproduction
// uses in place of MPI: two-sided point-to-point with eager/rendezvous
// protocols, the collectives the 3-D FFT pipeline needs (barrier,
// broadcast, gathers, the default linear all-to-all-v baseline), and
// one-sided communication windows (Put / Fence) with window caching, as
// §V of the paper requires.
//
// Semantics and costs follow common MPI implementations: small messages
// are buffered and sent eagerly; large messages pay a rendezvous
// round-trip surcharge; window creation is a collective with a fixed
// setup cost that caching amortizes. All time flows through the netsim
// engine; all payloads are real bytes.
package mpi

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Tag spaces: user tags live below tagUserLimit; internal protocol tags
// are derived above it. Every tag is additionally offset by the
// communicator's shrink generation (genTagStride per generation, above
// every in-generation tag) so traffic belonging to different memberships
// can never match — the window/collective epoch isolation a real ULFM
// shrink gets from creating a new communicator context id.
const (
	tagUserLimit = 1 << 20
	tagBarrier   = 1 << 21
	tagCollBase  = 1 << 22
	tagWinBase   = 1 << 23
	genTagStride = 1 << 25
)

// DefaultEagerThreshold is the message size (bytes) above which the
// rendezvous protocol (an extra round-trip of wire latency) applies.
const DefaultEagerThreshold = 8192

// Comm is a communicator spanning all ranks of the simulated machine,
// or — after a Shrink — the surviving subset (group.go).
type Comm struct {
	p              *netsim.Proc
	obs            *obs.Rank
	eagerThreshold int
	barrierEpoch   int
	collEpoch      int
	nextWinID      int
	winCreateCost  float64

	// Shrunken membership (nil group = the world communicator, the only
	// shape fault-free runs ever see). group lists the member global
	// ranks in ascending order, lrank is this rank's index in it, and
	// gen counts shrink generations (0 = world); every wire tag is
	// offset by gen·genTagStride.
	group []int
	lrank int
	gen   int

	// Reliable mode (auto-enabled when the config carries a fault plan;
	// see reliable.go). All fields stay zero otherwise, and every use is
	// gated on the flag so fault-free runs take the exact plain paths.
	reliable bool
	retry    netsim.RetryPolicy
	sendSeq  map[seqKey]uint32
	recvSeq  map[seqKey]uint32
	// Watchdog forensics (reliable mode only): the virtual time of the
	// last completed reliable operation and the frames discarded since
	// (duplicates, stale epochs). FaultError carries both so a crash
	// verdict can say where this rank last made progress.
	progressT float64
	discards  int
}

// Run starts one rank body per simulated GPU and returns the netsim
// result (virtual completion time, per-rank clocks, traffic stats).
func Run(cfg netsim.Config, body func(*Comm)) netsim.Result {
	return RunWith(cfg, nil, body)
}

// RunWith is Run with an observability recorder: each rank gets a
// per-rank span/metric handle (reachable via Comm.Obs), and the wire
// events of netsim's Tracer stream are recorded on the same timeline.
// A nil recorder makes RunWith identical to Run, with zero overhead.
func RunWith(cfg netsim.Config, rec *obs.Recorder, body func(*Comm)) netsim.Result {
	res, err := runWith(cfg, rec, body, false)
	if err != nil {
		panic(err) // unreachable: unchecked mode panics at the source
	}
	return res
}

// RunChecked is Run for fault-plan configs: rank failures (typed
// *FaultError diagnostics from the reliable runtime, or any panic) and
// deadlocks terminate the run and come back as a *netsim.RunError
// instead of aborting the process.
func RunChecked(cfg netsim.Config, body func(*Comm)) (netsim.Result, error) {
	return runWith(cfg, nil, body, true)
}

// RunWithChecked is RunChecked with an observability recorder.
func RunWithChecked(cfg netsim.Config, rec *obs.Recorder, body func(*Comm)) (netsim.Result, error) {
	return runWith(cfg, rec, body, true)
}

func runWith(cfg netsim.Config, rec *obs.Recorder, body func(*Comm), check bool) (netsim.Result, error) {
	rec.SetMachine(obs.Machine{
		Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode,
		InterBW: cfg.InterBW, IntraBW: cfg.IntraBW, LocalBW: cfg.LocalBW,
	})
	if rec.Tracing() {
		prev := cfg.Tracer
		cfg.Tracer = func(ev netsim.TraceEvent) {
			if prev != nil {
				prev(ev)
			}
			rec.Wire(obs.WireEvent{
				Src: ev.Src, Dst: ev.Dst, Tag: ev.Tag, Bytes: ev.Bytes,
				Kind: ev.Kind, SrcNode: ev.SrcNode, DstNode: ev.DstNode,
				Injected: ev.Injected, End: ev.End, Arrival: ev.Arrival,
				Start: ev.Start, Ser: ev.Ser,
			})
		}
	}
	if log := rec.EventLog(); log != nil {
		// Mirror injected faults into the live event stream. Like the
		// Tracer, the observer runs on the scheduler goroutine, so event
		// order is deterministic under both engines and emission never
		// touches virtual time.
		prev := cfg.FaultObserver
		cfg.FaultObserver = func(fe netsim.FaultEvent) {
			if prev != nil {
				prev(fe)
			}
			log.Emit(obs.Event{
				T: fe.T, Rank: fe.Src, Kind: obs.EventFault,
				Label: fe.Kind, Peer: fe.Dst, Value: fe.Delay,
			})
		}
	}
	mk := func(p *netsim.Proc) *Comm {
		c := &Comm{
			p:              p,
			obs:            rec.Rank(p.Rank()),
			eagerThreshold: DefaultEagerThreshold,
			winCreateCost:  50e-6,
			lrank:          p.Rank(),
		}
		if cfg.Faults != nil {
			c.reliable = true
			c.retry = cfg.Faults.Retry.WithDefaults()
			c.sendSeq = make(map[seqKey]uint32)
			c.recvSeq = make(map[seqKey]uint32)
		}
		return c
	}
	var res netsim.Result
	var err error
	if check {
		res, err = netsim.RunChecked(cfg, func(p *netsim.Proc) { body(mk(p)) })
	} else {
		res = netsim.Run(cfg, func(p *netsim.Proc) { body(mk(p)) })
	}
	recordFaultStats(rec, res.Stats.Faults)
	return res, err
}

// recordFaultStats surfaces the run's fault/recovery counters through
// the metrics registry so reports and bench artifacts can flag runs
// whose numbers were earned under degradation.
func recordFaultStats(rec *obs.Recorder, f netsim.FaultStats) {
	if rec == nil || f == (netsim.FaultStats{}) {
		return
	}
	m := rec.Metrics()
	m.Add("fault/drops", int64(f.Drops))
	m.Add("fault/detected_corrupt", int64(f.DetectedCorrupt))
	m.Add("fault/silent_corrupt", int64(f.SilentCorrupt))
	m.Add("fault/duplicates", int64(f.Duplicates))
	m.Add("fault/spikes", int64(f.Spikes))
	m.Add("fault/stalls", int64(f.Stalls))
	m.Add("fault/retries", int64(f.Retries))
	m.Add("fault/lost", int64(f.Lost))
	m.Add("fault/crashes", int64(f.Crashes))
	m.Add("fault/kills", int64(f.Kills))
	m.Set("fault/retry_delay_s", f.RetryDelayS)
}

// Obs returns this rank's observability handle (nil, and safe to use,
// when no recorder is attached).
func (c *Comm) Obs() *obs.Rank { return c.obs }

// Rank returns the calling rank (communicator-local after a shrink).
func (c *Comm) Rank() int { return c.lrank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.p.Size()
	}
	return len(c.group)
}

// glob translates a communicator-local rank to its global (wire) rank.
func (c *Comm) glob(r int) int {
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// wtag offsets a tag into this membership generation's tag space.
func (c *Comm) wtag(tag int) int { return tag + c.gen*genTagStride }

// Low-level wire operations: every send/receive of the runtime funnels
// through these four, which apply the local→global rank translation and
// the generation tag offset. On the world communicator both are
// identities, so default runs take byte-identical paths.
func (c *Comm) sendMsg(dst, tag int, opts netsim.SendOpts) float64 {
	return c.p.SendMsg(c.glob(dst), c.wtag(tag), opts)
}

func (c *Comm) sendDelayed(dst, tag int, data []byte, n int) {
	c.p.SendDelayed(c.glob(dst), c.wtag(tag), data, n, 0)
}

func (c *Comm) recvPkt(src, tag int) netsim.Packet {
	return c.p.Recv(c.glob(src), c.wtag(tag))
}

func (c *Comm) recvPktDeadline(src, tag int, deadline float64) (netsim.Packet, bool) {
	return c.p.RecvDeadline(c.glob(src), c.wtag(tag), deadline)
}

// Node returns the node hosting the calling rank.
func (c *Comm) Node() int { return c.p.Node() }

// NodeOf returns the node hosting a (communicator-local) rank.
func (c *Comm) NodeOf(rank int) int { return c.p.Config().NodeOf(c.glob(rank)) }

// Config returns the machine description.
func (c *Comm) Config() netsim.Config { return c.p.Config() }

// Now returns the rank's virtual clock.
func (c *Comm) Now() float64 { return c.p.Now() }

// Elapse charges d seconds of local work to the rank's clock.
func (c *Comm) Elapse(d float64) { c.p.Elapse(d) }

// AdvanceTo raises the rank's clock to at least t.
func (c *Comm) AdvanceTo(t float64) { c.p.AdvanceTo(t) }

// CountFlush attributes one put-throttling flush wait to the run's
// Stats (used by the one-sided exchange when it bounds outstanding
// puts).
func (c *Comm) CountFlush() { c.p.CountFlush() }

// SetEagerThreshold overrides the eager/rendezvous switch point.
func (c *Comm) SetEagerThreshold(bytes int) { c.eagerThreshold = bytes }

// rendezvousCost returns the two-sided protocol surcharges of a message
// of size n to dst: extra arrival latency (the RTS/CTS round trip) and
// per-message path occupancy (protocol progression on the NIC/bus),
// both zero below the eager threshold.
func (c *Comm) rendezvousCost(dst, n int) (extraLatency, protoOverhead float64) {
	if n <= c.eagerThreshold {
		return 0, 0
	}
	cfg := c.p.Config()
	if c.NodeOf(dst) == c.Node() {
		return 2 * cfg.IntraLatency, cfg.ProtoOverheadIntra
	}
	return 2 * cfg.InterLatency, cfg.ProtoOverheadInter
}

func checkUserTag(tag int) {
	if tag < 0 || tag >= tagUserLimit {
		panic(fmt.Sprintf("mpi: user tag %d out of range", tag))
	}
}

// Send transmits data to dst with the given tag. Eager messages are
// buffered (the caller may reuse data immediately); rendezvous messages
// hand the slice over zero-copy and pay the handshake surcharge. Send
// returns at injection time, as a buffered MPI_Send would.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.SendLogical(dst, tag, data, len(data))
}

// SendLogical is Send charging logical wire bytes for the message
// instead of len(data) — the scaled-volume mode (see DESIGN.md) for
// algorithms that must still move real payloads, the two-sided analogue
// of the one-sided window's Logical size function. logical == len(data)
// is exactly Send.
func (c *Comm) SendLogical(dst, tag int, data []byte, logical int) {
	checkUserTag(tag)
	if c.reliable {
		payload := frame(c.nextSendSeq(dst, tag), data)
		lat, proto := c.rendezvousCost(dst, logical)
		c.sendMsg(dst, tag, netsim.SendOpts{Payload: payload, Bytes: logical + frameHdr, ExtraLatency: lat, ProtoOverhead: proto})
		return
	}
	payload := data
	if logical <= c.eagerThreshold {
		payload = append([]byte(nil), data...)
	}
	lat, proto := c.rendezvousCost(dst, logical)
	c.sendMsg(dst, tag, netsim.SendOpts{Payload: payload, Bytes: logical, ExtraLatency: lat, ProtoOverhead: proto})
}

// SendN transmits a phantom message of n logical bytes (no payload),
// used by bandwidth benchmarks at scales where materializing the data
// would be infeasible. Timing is identical to Send.
func (c *Comm) SendN(dst, tag, n int) {
	checkUserTag(tag)
	if c.reliable {
		payload := frame(c.nextSendSeq(dst, tag), nil)
		lat, proto := c.rendezvousCost(dst, n)
		c.sendMsg(dst, tag, netsim.SendOpts{Payload: payload, Bytes: n + frameHdr, ExtraLatency: lat, ProtoOverhead: proto})
		return
	}
	lat, proto := c.rendezvousCost(dst, n)
	c.sendMsg(dst, tag, netsim.SendOpts{Bytes: n, ExtraLatency: lat, ProtoOverhead: proto})
}

// Recv blocks until the message from src with the given tag arrives and
// returns its payload (nil for phantom messages). In reliable mode it
// verifies the frame, drops duplicates, and raises a *FaultError on a
// watchdog timeout, a lost message, or corruption.
func (c *Comm) Recv(src, tag int) []byte {
	checkUserTag(tag)
	if c.reliable {
		return c.recvReliable(src, tag).Payload
	}
	return c.recvPkt(src, tag).Payload
}

// RecvPacket is Recv exposing the full packet metadata.
func (c *Comm) RecvPacket(src, tag int) netsim.Packet {
	checkUserTag(tag)
	if c.reliable {
		return c.recvReliable(src, tag)
	}
	return c.recvPkt(src, tag)
}

// internal send/recv on protocol tags (no user-tag check). Internal
// tags are fresh per collective epoch, so duplicates are harmless
// leftovers and no sequence framing is needed; reliable mode only adds
// the watchdog deadline that turns a lost message or crashed peer into
// a diagnostic instead of a hang.
func (c *Comm) sendInternal(dst, tag int, data []byte, n int) {
	c.sendDelayed(dst, tag, data, n)
}

func (c *Comm) recvInternal(src, tag int) netsim.Packet {
	if c.reliable {
		pkt, ok := c.recvPktDeadline(src, tag, c.deadline())
		if !ok {
			panic(c.noteFault(&FaultError{Rank: c.GlobalRank(), Src: c.glob(src), Tag: tag, Kind: "timeout", Op: "collective", When: c.p.Now()}))
		}
		c.noteProgress()
		return pkt
	}
	return c.recvPkt(src, tag)
}

package compress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDecompressCheckedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 123)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	for _, m := range allMethods() {
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		n := m.Compress(buf, src)
		gotPlain := make([]float64, len(src))
		m.Decompress(gotPlain, buf[:n])
		gotChecked := make([]float64, len(src))
		cn, err := m.DecompressChecked(gotChecked, buf[:n])
		if err != nil {
			t.Errorf("%s: checked decode of valid stream failed: %v", m.Name(), err)
			continue
		}
		if cn != n {
			t.Errorf("%s: checked consumed %d bytes, plain %d", m.Name(), cn, n)
		}
		for i := range src {
			if gotChecked[i] != gotPlain[i] {
				t.Errorf("%s: checked and plain decode disagree at %d", m.Name(), i)
				break
			}
		}
	}
}

func TestDecompressCheckedRejectsTruncation(t *testing.T) {
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i) * 0.25
	}
	for _, m := range allMethods() {
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		n := m.Compress(buf, src)
		for _, cut := range []int{0, 1, n / 2, n - 1} {
			if cut >= n {
				continue
			}
			dst := make([]float64, len(src))
			if _, err := m.DecompressChecked(dst, buf[:cut]); err == nil {
				t.Errorf("%s: accepted input truncated to %d/%d bytes", m.Name(), cut, n)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s: error %v does not wrap ErrCorrupt", m.Name(), err)
			}
		}
	}
}

func TestDecompressCheckedNeverPanics(t *testing.T) {
	// Random mutations of valid streams: checked decode must return — a
	// wrong value for undetectably-flipped payload bits is acceptable, a
	// panic is not.
	rng := rand.New(rand.NewSource(2))
	src := make([]float64, 48)
	for i := range src {
		src[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
	}
	for _, m := range allMethods() {
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		n := m.Compress(buf, src)
		for trial := 0; trial < 200; trial++ {
			bad := append([]byte(nil), buf[:n]...)
			for flips := 1 + rng.Intn(4); flips > 0; flips-- {
				bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: checked decode panicked on mutated input: %v", m.Name(), r)
					}
				}()
				dst := make([]float64, len(src))
				_, _ = m.DecompressChecked(dst, bad)
			}()
		}
	}
}

func TestScaledCheckedRejectsBadScale(t *testing.T) {
	s := Scaled{Inner: Cast16{}}
	src := []float64{1, 2, 3, 4}
	buf := make([]byte, s.MaxCompressedLen(len(src)))
	n := s.Compress(buf, src)
	for name, hdr := range map[string][8]byte{
		"zero": {},
		"nan":  {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f},
		"inf":  {0, 0, 0, 0, 0, 0, 0xf0, 0x7f},
		"neg":  {0, 0, 0, 0, 0, 0, 0xf0, 0xbf},
		"3.0":  {0, 0, 0, 0, 0, 0, 0x08, 0x40},
	} {
		bad := append([]byte(nil), buf[:n]...)
		copy(bad, hdr[:])
		dst := make([]float64, len(src))
		if _, err := s.DecompressChecked(dst, bad); err == nil {
			t.Errorf("accepted %s scale header", name)
		}
	}
}

func TestBlock3DChecked(t *testing.T) {
	b := Block3D{Bits: 10}
	dims := [3]int{8, 4, 4}
	src := make([]float64, dims[0]*dims[1]*dims[2])
	for i := range src {
		src[i] = math.Sin(float64(i) / 7)
	}
	buf := make([]byte, b.MaxCompressedLen(dims))
	n := b.Compress(buf, src, dims)
	dst := make([]float64, len(src))
	if _, err := b.DecompressChecked(dst, buf[:n], dims); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if _, err := b.DecompressChecked(dst, buf[:n/2], dims); err == nil {
		t.Error("accepted truncated stream")
	}
	if _, err := b.DecompressChecked(dst, buf[:n], [3]int{1, 1, 1}); err == nil {
		t.Error("accepted mismatched dims")
	}
}

package compress

import (
	"encoding/binary"
	"math"
)

// Scaled wraps a narrow-range method (typically Cast16) with a per-message
// scale factor so that values whose magnitude exceeds the inner format's
// range — FFT spectra grow like √N — are normalized into range before the
// cast, in the spirit of the dynamically scaled FP16 splitting of
// Sorna et al. (paper ref. [8]). The scale (8 bytes) is carried in a
// per-message header.
type Scaled struct {
	Inner Method
}

// Name implements Method.
func (s Scaled) Name() string { return "Scaled(" + s.Inner.Name() + ")" }

// Ratio implements Method.
func (s Scaled) Ratio() float64 { return s.Inner.Ratio() }

// MaxCompressedLen implements Method.
func (s Scaled) MaxCompressedLen(n int) int { return 8 + s.Inner.MaxCompressedLen(n) }

// ErrorBound implements Method.
func (s Scaled) ErrorBound() float64 { return s.Inner.ErrorBound() }

// MinNormal implements Method. The per-message scale shifts the inner
// format's range onto the data, so in input units the true threshold is
// Inner.MinNormal()/scale; without the (per-message) scale this is the
// conservative static answer.
func (s Scaled) MinNormal() float64 { return s.Inner.MinNormal() }

// Compress implements Method.
func (s Scaled) Compress(dst []byte, src []float64) int {
	maxAbs := 0.0
	for _, v := range src {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		// Normalize the largest magnitude to ~1 using a power of two so
		// that scaling is exact in binary floating point.
		scale = math.Ldexp(1, -ilogb(maxAbs))
	}
	binary.LittleEndian.PutUint64(dst, math.Float64bits(scale))
	scaled := make([]float64, len(src))
	for i, v := range src {
		scaled[i] = v * scale
	}
	return 8 + s.Inner.Compress(dst[8:], scaled)
}

// Decompress implements Method.
func (s Scaled) Decompress(dst []float64, src []byte) int {
	scale := math.Float64frombits(binary.LittleEndian.Uint64(src))
	n := s.Inner.Decompress(dst, src[8:])
	inv := 1 / scale
	for i := range dst {
		dst[i] *= inv
	}
	return 8 + n
}

func ilogb(x float64) int {
	return int(math.Floor(math.Log2(x)))
}

package compress

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property-based sweep of the §IV error contracts: for seeded random
// inputs of random lengths, every method must (a) stay within its
// advertised ErrorBound, (b) produce output DecompressChecked accepts
// and decodes identically to Decompress, and (c) honor its fixed-rate
// size promise. The magnitude window per method keeps the inputs inside
// the target format's normal range, where the relative bounds are
// defined (Cast16's 4.9e-4 holds for fp16 normals, not subnormals).

type propCase struct {
	m Method
	// minExp/maxExp bound the binary exponent of generated magnitudes.
	minExp, maxExp int
	// fixedRate: compressed length must equal MaxCompressedLen exactly.
	fixedRate bool
	// blockRel: the bound is relative to the 4-block max (Block), or the
	// message max (Scaled), instead of per-value.
	blockRel, msgRel bool
}

func propCases() []propCase {
	return []propCase{
		{m: None{}, minExp: -300, maxExp: 300, fixedRate: true},
		{m: Lossless{}, minExp: -300, maxExp: 300},
		{m: Cast32{}, minExp: -100, maxExp: 100, fixedRate: true},
		{m: Cast16{}, minExp: -13, maxExp: 15, fixedRate: true},
		{m: CastBF16{}, minExp: -30, maxExp: 30, fixedRate: true},
		{m: Trim{M: 8}, minExp: -300, maxExp: 300, fixedRate: true},
		{m: Trim{M: 16}, minExp: -300, maxExp: 300, fixedRate: true},
		{m: Trim{M: 40}, minExp: -300, maxExp: 300, fixedRate: true},
		{m: Block{Bits: 12}, minExp: -10, maxExp: 10, fixedRate: true, blockRel: true},
		{m: Block{Bits: 20}, minExp: -10, maxExp: 10, fixedRate: true, blockRel: true},
		{m: Scaled{Inner: Cast16{}}, minExp: -100, maxExp: 100, msgRel: true},
		{m: Scaled{Inner: Trim{M: 10}}, minExp: -100, maxExp: 100, msgRel: true},
	}
}

// randVals draws values sign·mant·2^exp with mant ∈ [1, 2) and exp
// uniform in [minExp, maxExp], with a sprinkle of exact zeros.
func randVals(rng *rand.Rand, n, minExp, maxExp int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Intn(16) == 0 {
			continue // exact zero
		}
		mant := 1 + rng.Float64()
		exp := minExp + rng.Intn(maxExp-minExp+1)
		v := math.Ldexp(mant, exp)
		if rng.Intn(2) == 0 {
			v = -v
		}
		out[i] = v
	}
	return out
}

func TestPropertyErrorContracts(t *testing.T) {
	for _, tc := range propCases() {
		t.Run(tc.m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(hashName(tc.m.Name())))
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.Intn(300)
				src := randVals(rng, n, tc.minExp, tc.maxExp)
				buf := make([]byte, tc.m.MaxCompressedLen(n))
				wrote := tc.m.Compress(buf, src)
				if wrote > len(buf) {
					t.Fatalf("trial %d: wrote %d > MaxCompressedLen %d", trial, wrote, len(buf))
				}
				if tc.fixedRate && wrote != tc.m.MaxCompressedLen(n) {
					t.Fatalf("trial %d: fixed-rate method wrote %d, want %d", trial, wrote, tc.m.MaxCompressedLen(n))
				}
				got := make([]float64, n)
				if read := tc.m.Decompress(got, buf[:wrote]); read != wrote {
					t.Fatalf("trial %d: Decompress consumed %d of %d bytes", trial, read, wrote)
				}
				checkErrorBound(t, tc, trial, src, got)

				// DecompressChecked must accept everything Compress emits
				// and decode to exactly the same values.
				got2 := make([]float64, n)
				read2, err := tc.m.DecompressChecked(got2, buf[:wrote])
				if err != nil {
					t.Fatalf("trial %d: DecompressChecked rejected Compress output: %v", trial, err)
				}
				if read2 != wrote {
					t.Fatalf("trial %d: DecompressChecked consumed %d of %d bytes", trial, read2, wrote)
				}
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(got2[i]) {
						t.Fatalf("trial %d: Decompress and DecompressChecked disagree at %d: %v vs %v",
							trial, i, got[i], got2[i])
					}
				}
			}
		})
	}
}

func checkErrorBound(t *testing.T, tc propCase, trial int, src, got []float64) {
	t.Helper()
	bound := tc.m.ErrorBound()
	switch {
	case bound == 0:
		// None/Lossless: exact round trip, bit for bit.
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				t.Fatalf("trial %d: lossless method altered value %d: %v -> %v", trial, i, src[i], got[i])
			}
		}
	case tc.blockRel:
		// Block: the bound is relative to each 4-block's magnitude peak.
		for b := 0; b < len(src); b += 4 {
			end := b + 4
			if end > len(src) {
				end = len(src)
			}
			peak := 0.0
			for _, v := range src[b:end] {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
			for i := b; i < end; i++ {
				if err := math.Abs(got[i] - src[i]); err > bound*peak {
					t.Fatalf("trial %d: block value %d error %g exceeds %g·%g", trial, i, err, bound, peak)
				}
			}
		}
	case tc.msgRel:
		// Scaled: normalization makes the bound relative to the message
		// peak (values that underflow the inner format's range after
		// scaling flush to zero, still within bound·peak).
		peak := 0.0
		for _, v := range src {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		for i := range src {
			if err := math.Abs(got[i] - src[i]); err > bound*peak {
				t.Fatalf("trial %d: scaled value %d error %g exceeds %g·%g", trial, i, err, bound, peak)
			}
		}
	default:
		// Per-value relative bound (the §IV casts and mantissa trim).
		for i := range src {
			if err := math.Abs(got[i] - src[i]); err > bound*math.Abs(src[i]) {
				t.Fatalf("trial %d: value %d = %g round-tripped to %g, rel err %g > %g",
					trial, i, src[i], got[i], err/math.Abs(src[i]), bound)
			}
		}
	}
}

// TestPropertyTrimBoundIsTwoToMinusK pins the paper's statement that
// keeping k mantissa bits bounds the relative error by 2^-k — the
// implementation's round-to-nearest bound 2^-(k+1) is strictly tighter.
func TestPropertyTrimBoundIsTwoToMinusK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, k := range []uint{1, 4, 8, 12, 20, 32, 44, 52} {
		m := Trim{M: k}
		if m.ErrorBound() > math.Ldexp(1, -int(k)) {
			t.Errorf("Trim(%d).ErrorBound() = %g exceeds 2^-%d", k, m.ErrorBound(), k)
		}
		src := randVals(rng, 256, -50, 50)
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		wrote := m.Compress(buf, src)
		got := make([]float64, len(src))
		m.Decompress(got, buf[:wrote])
		coarse := math.Ldexp(1, -int(k))
		for i := range src {
			if err := math.Abs(got[i] - src[i]); err > coarse*math.Abs(src[i]) {
				t.Fatalf("Trim(%d): rel err %g > 2^-%d", k, err/math.Abs(src[i]), k)
			}
		}
	}
}

// hashName derives a stable per-method seed so failures name the method
// and reproduce without cross-method coupling.
func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// TestPropertyFromToleranceContract: the method FromTolerance picks
// must itself honor the requested tolerance on random data.
func TestPropertyFromToleranceContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, etol := range []float64{1e-2, 1e-3, 1e-5, 1e-8, 1e-12, 0} {
		m := FromTolerance(etol)
		if m.ErrorBound() > etol {
			t.Errorf("FromTolerance(%g) picked %s with bound %g", etol, m.Name(), m.ErrorBound())
		}
		src := randVals(rng, 128, -10, 10)
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		wrote := m.Compress(buf, src)
		got := make([]float64, len(src))
		if _, err := m.DecompressChecked(got, buf[:wrote]); err != nil {
			t.Fatalf("FromTolerance(%g) → %s: checked decode failed: %v", etol, m.Name(), err)
		}
		for i := range src {
			if err := math.Abs(got[i] - src[i]); err > etol*math.Abs(src[i]) {
				t.Fatalf("FromTolerance(%g) → %s: value %d rel err %g",
					etol, m.Name(), i, err/math.Abs(src[i]))
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt if error paths are compiled out

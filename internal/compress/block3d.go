package compress

import (
	"fmt"
	"math"
)

// Block3D is a fixed-rate, spatially aware coder for 3-D scalar fields,
// modeled on ZFP's design: the field is tiled into 4×4×4 blocks, each
// block is normalized by a shared exponent (block floating point),
// decorrelated by the separable 3-D lifting transform (the 1-D lift of
// Block applied along x, y, and z), and every transform coefficient
// keeps Bits bits in sign-magnitude form.
//
// It exists to evaluate the paper's closing hypothesis — that
// compressors exploiting spatial correlation "could simultaneously give
// us better compression rate or possibly a better accuracy" than
// truncation — on actual smooth fields (see the tests and
// BenchmarkBlock3DVsTruncation). Unlike the Method implementations it
// consumes a field with known dimensions rather than a flat stream.
type Block3D struct {
	// Bits is the per-coefficient budget, 1..30.
	Bits uint
}

const b3Side = 4
const b3N = b3Side * b3Side * b3Side

// BitsPerBlock returns the encoded width of one 4×4×4 block.
func (b Block3D) BitsPerBlock() int { return blockExpBits + b3N*int(b.Bits) }

// Ratio returns the nominal compression ratio.
func (b Block3D) Ratio() float64 {
	return float64(b3N*64) / float64(b.BitsPerBlock())
}

// MaxCompressedLen bounds the compressed size of a field with the given
// dimensions (each rounded up to a multiple of 4).
func (b Block3D) MaxCompressedLen(dims [3]int) int {
	blocks := 1
	for _, d := range dims {
		blocks *= (d + b3Side - 1) / b3Side
	}
	return (blocks*b.BitsPerBlock() + 7) / 8
}

// ErrorBound is the worst-case error relative to the block's largest
// magnitude (empirically validated in the tests; the 3-D lifting has a
// larger inverse gain than the 1-D one).
func (b Block3D) ErrorBound() float64 {
	return 64 * math.Ldexp(1, -int(b.Bits))
}

// Compress encodes the dims[0]×dims[1]×dims[2] field (natural order,
// x fastest) into dst and returns the bytes written.
func (b Block3D) Compress(dst []byte, src []float64, dims [3]int) int {
	if len(src) != dims[0]*dims[1]*dims[2] {
		panic("compress: field size does not match dims")
	}
	w := bitWriter{buf: dst}
	var blk [b3N]float64
	var q [b3N]int64
	forEachBlock(dims, func(bx, by, bz int) {
		gatherBlock(src, dims, bx, by, bz, &blk)
		maxAbs := 0.0
		for _, v := range blk {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			w.write(blockExpEmpty, blockExpBits)
			for i := range q {
				q[i] = 0
			}
			encodeEmbedded(&w, &q, b3N*int(b.Bits), blockFixBits-1)
			return
		}
		ec := clampExp(ilogb(maxAbs) + 1)
		w.write(uint64(ec), blockExpBits)
		// 4 headroom bits: the 3-D forward transform can grow values by
		// up to 2 per axis pass in the worst case.
		scale := math.Ldexp(1, blockFixBits-4-(ec-blockExpBias))
		for i, v := range blk {
			q[i] = int64(v * scale)
		}
		lift3D(&q, liftForward4)
		// Embedded bit-plane coding spends the fixed budget adaptively:
		// smooth blocks concentrate it on their few large coefficients.
		encodeEmbedded(&w, &q, b3N*int(b.Bits), blockFixBits-1)
	})
	return w.flush()
}

// Decompress decodes a field compressed with the same dims and budget.
func (b Block3D) Decompress(dst []float64, src []byte, dims [3]int) int {
	if len(dst) != dims[0]*dims[1]*dims[2] {
		panic("compress: field size does not match dims")
	}
	r := bitReader{buf: src}
	var blk [b3N]float64
	var q [b3N]int64
	forEachBlock(dims, func(bx, by, bz int) {
		ec := int(r.read(blockExpBits))
		decodeEmbedded(&r, &q, b3N*int(b.Bits), blockFixBits-1)
		if ec == blockExpEmpty {
			for i := range blk {
				blk[i] = 0
			}
		} else {
			lift3D(&q, liftInverse4)
			inv := math.Ldexp(1, -(blockFixBits - 4 - (ec - blockExpBias)))
			for i, cv := range q {
				blk[i] = float64(cv) * inv
			}
		}
		scatterBlock(dst, dims, bx, by, bz, &blk)
	})
	return r.consumed()
}

// forEachBlock visits block origins in deterministic order.
func forEachBlock(dims [3]int, fn func(bx, by, bz int)) {
	for bz := 0; bz < dims[2]; bz += b3Side {
		for by := 0; by < dims[1]; by += b3Side {
			for bx := 0; bx < dims[0]; bx += b3Side {
				fn(bx, by, bz)
			}
		}
	}
}

// gatherBlock copies (with edge clamping by zero padding) a 4×4×4 block.
func gatherBlock(src []float64, dims [3]int, bx, by, bz int, blk *[b3N]float64) {
	i := 0
	for z := 0; z < b3Side; z++ {
		for y := 0; y < b3Side; y++ {
			for x := 0; x < b3Side; x++ {
				gx, gy, gz := bx+x, by+y, bz+z
				if gx < dims[0] && gy < dims[1] && gz < dims[2] {
					blk[i] = src[gx+dims[0]*(gy+dims[1]*gz)]
				} else {
					blk[i] = 0
				}
				i++
			}
		}
	}
}

func scatterBlock(dst []float64, dims [3]int, bx, by, bz int, blk *[b3N]float64) {
	i := 0
	for z := 0; z < b3Side; z++ {
		for y := 0; y < b3Side; y++ {
			for x := 0; x < b3Side; x++ {
				gx, gy, gz := bx+x, by+y, bz+z
				if gx < dims[0] && gy < dims[1] && gz < dims[2] {
					dst[gx+dims[0]*(gy+dims[1]*gz)] = blk[i]
				}
				i++
			}
		}
	}
}

// lift3D applies a 4-point lifting step along each axis of the 4×4×4
// block (the separable transform ZFP uses).
func lift3D(q *[b3N]int64, lift func(*[4]int64)) {
	var v [4]int64
	// x lines
	for z := 0; z < b3Side; z++ {
		for y := 0; y < b3Side; y++ {
			base := b3Side * (y + b3Side*z)
			for i := 0; i < 4; i++ {
				v[i] = q[base+i]
			}
			lift(&v)
			for i := 0; i < 4; i++ {
				q[base+i] = v[i]
			}
		}
	}
	// y lines
	for z := 0; z < b3Side; z++ {
		for x := 0; x < b3Side; x++ {
			for i := 0; i < 4; i++ {
				v[i] = q[x+b3Side*(i+b3Side*z)]
			}
			lift(&v)
			for i := 0; i < 4; i++ {
				q[x+b3Side*(i+b3Side*z)] = v[i]
			}
		}
	}
	// z lines
	for y := 0; y < b3Side; y++ {
		for x := 0; x < b3Side; x++ {
			for i := 0; i < 4; i++ {
				v[i] = q[x+b3Side*(y+b3Side*i)]
			}
			lift(&v)
			for i := 0; i < 4; i++ {
				q[x+b3Side*(y+b3Side*i)] = v[i]
			}
		}
	}
}

// liftForward4 / liftInverse4 adapt the package's 4-point lifting pair
// to array form.
func liftForward4(p *[4]int64) {
	var t [blockN]int64
	copy(t[:], p[:])
	liftForward(&t)
	copy(p[:], t[:])
}

func liftInverse4(p *[4]int64) {
	var t [blockN]int64
	copy(t[:], p[:])
	liftInverse(&t)
	copy(p[:], t[:])
}

// FieldRMS returns the root-mean-square pointwise error between two
// fields (a study helper for the rate/accuracy comparisons).
func FieldRMS(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("compress: field length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// String implements fmt.Stringer.
func (b Block3D) String() string { return fmt.Sprintf("Block3D(%d)", b.Bits) }

package compress

import (
	"math"
	"math/rand"
	"testing"
)

// smoothField3D samples a band-limited smooth function.
func smoothField3D(dims [3]int, seed int64) []float64 {
	out := make([]float64, dims[0]*dims[1]*dims[2])
	ph := float64(seed)
	i := 0
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				fx := float64(x) / float64(dims[0])
				fy := float64(y) / float64(dims[1])
				fz := float64(z) / float64(dims[2])
				out[i] = math.Sin(2*math.Pi*(2*fx+fy)+ph) + 0.4*math.Cos(2*math.Pi*(fy+3*fz))
				i++
			}
		}
	}
	return out
}

func randomField3D(dims [3]int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, dims[0]*dims[1]*dims[2])
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

func roundTrip3D(t *testing.T, b Block3D, src []float64, dims [3]int) []float64 {
	t.Helper()
	buf := make([]byte, b.MaxCompressedLen(dims))
	n := b.Compress(buf, src, dims)
	if n > len(buf) {
		t.Fatalf("wrote %d bytes, bound %d", n, len(buf))
	}
	out := make([]float64, len(src))
	if used := b.Decompress(out, buf[:n], dims); used != n {
		t.Fatalf("consumed %d, wrote %d", used, n)
	}
	return out
}

func TestBlock3DRoundTripWithinBound(t *testing.T) {
	dims := [3]int{16, 12, 8}
	src := randomField3D(dims, 1)
	for _, bits := range []uint{10, 16, 24} {
		b := Block3D{Bits: bits}
		out := roundTrip3D(t, b, src, dims)
		bound := b.ErrorBound() // relative to block max ≤ 1 here
		for i := range src {
			if math.Abs(out[i]-src[i]) > bound {
				t.Fatalf("bits=%d: error %g above bound %g at %d", bits, math.Abs(out[i]-src[i]), bound, i)
			}
		}
	}
}

func TestBlock3DNonMultipleOf4Dims(t *testing.T) {
	for _, dims := range [][3]int{{5, 7, 9}, {1, 1, 1}, {4, 5, 4}, {13, 4, 6}} {
		src := randomField3D(dims, 3)
		out := roundTrip3D(t, Block3D{Bits: 20}, src, dims)
		for i := range src {
			if math.Abs(out[i]-src[i]) > 1e-3 {
				t.Fatalf("dims %v: error at %d", dims, i)
			}
		}
	}
}

func TestBlock3DZeroField(t *testing.T) {
	dims := [3]int{8, 8, 8}
	src := make([]float64, 512)
	out := roundTrip3D(t, Block3D{Bits: 8}, src, dims)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero field decoded %g at %d", v, i)
		}
	}
}

// TestBlock3DBeatsTruncationOnSmoothFields validates the paper's closing
// hypothesis: at an equal wire rate, the spatial transform coder yields
// lower error than plain mantissa truncation on smooth data.
func TestBlock3DBeatsTruncationOnSmoothFields(t *testing.T) {
	dims := [3]int{32, 32, 32}
	src := smoothField3D(dims, 2)

	b3 := Block3D{Bits: 14} // (8 + 64·14)/64 ≈ 14.1 bits/value
	trim := Trim{M: 2}      // 14 bits/value
	if math.Abs(b3.Ratio()-trim.Ratio()) > 0.15*trim.Ratio() {
		t.Fatalf("rates not comparable: %g vs %g", b3.Ratio(), trim.Ratio())
	}

	out3 := roundTrip3D(t, b3, src, dims)
	outT := roundTrip(t, trim, src)
	rms3 := FieldRMS(out3, src)
	rmsT := FieldRMS(outT, src)
	if rms3 >= rmsT {
		t.Errorf("Block3D RMS %g not below truncation RMS %g at equal rate", rms3, rmsT)
	}
	// The gain should be substantial on smooth data (≥ 4× lower RMS).
	if rms3*4 > rmsT {
		t.Logf("note: spatial gain only %.1fx", rmsT/rms3)
	}
}

// TestBlock3DBeats1DBlockOnSmoothFields: the 3-D transform should also
// beat the 1-D stream coder at equal rate (it sees correlation along all
// axes).
func TestBlock3DBeats1DBlockOnSmoothFields(t *testing.T) {
	dims := [3]int{32, 32, 32}
	src := smoothField3D(dims, 5)
	b3 := Block3D{Bits: 14}
	b1 := Block{Bits: 12} // (8+4·12)/4 = 14 bits/value
	out3 := roundTrip3D(t, b3, src, dims)
	out1 := roundTrip(t, b1, src)
	if r3, r1 := FieldRMS(out3, src), FieldRMS(out1, src); r3 >= r1 {
		t.Errorf("3-D coder RMS %g not below 1-D coder RMS %g", r3, r1)
	}
}

func TestBlock3DOnRandomDataNoWorseThanBound(t *testing.T) {
	// On incompressible data the coder degrades toward truncation, as
	// §IV-A predicts; it must stay within its bound regardless.
	dims := [3]int{16, 16, 16}
	src := randomField3D(dims, 9)
	b := Block3D{Bits: 18}
	out := roundTrip3D(t, b, src, dims)
	if rms := FieldRMS(out, src); rms > b.ErrorBound() {
		t.Errorf("random-data RMS %g above bound %g", rms, b.ErrorBound())
	}
}

func TestBlock3DSizeMatchesRatio(t *testing.T) {
	dims := [3]int{16, 16, 16}
	src := randomField3D(dims, 11)
	b := Block3D{Bits: 16}
	buf := make([]byte, b.MaxCompressedLen(dims))
	n := b.Compress(buf, src, dims)
	want := float64(8*len(src)) / b.Ratio()
	if math.Abs(float64(n)-want) > 0.02*want+16 {
		t.Errorf("compressed %d bytes, ratio implies %.0f", n, want)
	}
}

func TestBlock3DDimsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Block3D{Bits: 8}.Compress(make([]byte, 1024), make([]float64, 10), [3]int{4, 4, 4})
}

func BenchmarkBlock3DVsTruncation(b *testing.B) {
	dims := [3]int{32, 32, 32}
	src := smoothField3D(dims, 1)
	b.Run("block3d", func(b *testing.B) {
		m := Block3D{Bits: 14}
		buf := make([]byte, m.MaxCompressedLen(dims))
		out := make([]float64, len(src))
		b.SetBytes(int64(8 * len(src)))
		var rms float64
		for i := 0; i < b.N; i++ {
			n := m.Compress(buf, src, dims)
			m.Decompress(out, buf[:n], dims)
		}
		rms = FieldRMS(out, src)
		b.ReportMetric(rms, "rms-err")
	})
	b.Run("truncation", func(b *testing.B) {
		m := Trim{M: 2}
		buf := make([]byte, m.MaxCompressedLen(len(src)))
		out := make([]float64, len(src))
		b.SetBytes(int64(8 * len(src)))
		var rms float64
		for i := 0; i < b.N; i++ {
			n := m.Compress(buf, src)
			m.Decompress(out, buf[:n])
		}
		rms = FieldRMS(out, src)
		b.ReportMetric(rms, "rms-err")
	})
}

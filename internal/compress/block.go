package compress

import (
	"fmt"
	"math"
)

// Block is a fixed-rate ZFP-style block transform coder. Values are
// grouped in 1-D blocks of 4; each block stores a shared exponent
// (block floating point), applies ZFP's reversible decorrelating lifting
// transform to 30-bit fixed-point integers, and keeps the top Bits bits
// of each transform coefficient in sign-magnitude form.
//
// On spatially correlated data the lifting transform concentrates energy
// in the low coefficients so a given bit budget yields lower error than
// plain truncation; on random data it behaves like truncation, exactly as
// §IV-A of the paper observes. Fixed rate: 8 + 4·Bits bits per 4 values.
type Block struct {
	// Bits is the per-coefficient budget, 1..30.
	Bits uint
}

const (
	blockN        = 4
	blockFixBits  = 30 // fixed-point precision inside a block
	blockExpBits  = 8  // biased shared exponent (clamped)
	blockExpBias  = 127
	blockExpEmpty = 0 // exponent code for an all-zero block
)

// Name implements Method.
func (b Block) Name() string { return fmt.Sprintf("Block(%d)", b.Bits) }

// BitsPerBlock returns the encoded width of one 4-value block.
func (b Block) BitsPerBlock() int { return blockExpBits + blockN*int(b.Bits) }

// Ratio implements Method.
func (b Block) Ratio() float64 {
	return float64(blockN*64) / float64(b.BitsPerBlock())
}

// MaxCompressedLen implements Method.
func (b Block) MaxCompressedLen(n int) int {
	blocks := (n + blockN - 1) / blockN
	return (blocks*b.BitsPerBlock() + 7) / 8
}

// ErrorBound implements Method. Coefficient truncation at 2^-Bits is
// amplified by the inverse lifting gain and the 2-bit headroom shift;
// the worst case observed across wide-dynamic-range random blocks is
// ≈28.5·2^-Bits relative to the block's largest magnitude (the
// property suite sweeps this), so the advertised envelope is the next
// power of two, 32·2^-Bits.
func (b Block) ErrorBound() float64 {
	return 32 * math.Ldexp(1, -int(b.Bits))
}

// MinNormal implements Method. The shared exponent clamps to an
// FP32-like biased range; note the bound above is relative to the
// block's largest magnitude, so per-value relative error on mixed-scale
// blocks can exceed it even above this threshold.
func (b Block) MinNormal() float64 { return 0x1p-126 }

// Compress implements Method.
func (b Block) Compress(dst []byte, src []float64) int {
	w := bitWriter{buf: dst}
	var blk [blockN]float64
	var q [blockN]int64
	for off := 0; off < len(src); off += blockN {
		for i := 0; i < blockN; i++ {
			if off+i < len(src) {
				blk[i] = src[off+i]
			} else {
				blk[i] = 0 // zero padding for the tail block
			}
		}
		maxAbs := 0.0
		for _, v := range blk {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			w.write(blockExpEmpty, blockExpBits)
			for i := 0; i < blockN; i++ {
				w.write(0, b.Bits)
			}
			continue
		}
		e := ilogb(maxAbs) + 1 // values are < 2^e
		ec := clampExp(e)
		w.write(uint64(ec), blockExpBits)
		scale := math.Ldexp(1, blockFixBits-2-(ec-blockExpBias)) // headroom of 2 bits for the transform
		for i, v := range blk {
			q[i] = int64(v * scale)
		}
		liftForward(&q)
		shift := uint(blockFixBits) - b.Bits
		for _, c := range q {
			w.write(signMag(c>>shift, b.Bits), b.Bits)
		}
	}
	return w.flush()
}

// Decompress implements Method.
func (b Block) Decompress(dst []float64, src []byte) int {
	r := bitReader{buf: src}
	var q [blockN]int64
	shift := uint(blockFixBits) - b.Bits
	for off := 0; off < len(dst); off += blockN {
		ec := int(r.read(blockExpBits))
		for i := 0; i < blockN; i++ {
			q[i] = unSignMag(r.read(b.Bits), b.Bits) << shift
		}
		if ec == blockExpEmpty {
			for i := 0; i < blockN && off+i < len(dst); i++ {
				dst[off+i] = 0
			}
			continue
		}
		liftInverse(&q)
		inv := math.Ldexp(1, -(blockFixBits - 2 - (ec - blockExpBias)))
		for i := 0; i < blockN && off+i < len(dst); i++ {
			dst[off+i] = float64(q[i]) * inv
		}
	}
	return r.consumed()
}

func clampExp(e int) int {
	ec := e + blockExpBias
	if ec <= blockExpEmpty {
		ec = blockExpEmpty + 1
	}
	if ec > 255 {
		ec = 255
	}
	return ec
}

// liftForward is ZFP's 1-D forward decorrelating transform on a block of
// four fixed-point values (an approximate orthogonal basis close to a
// DCT, built from shifts and adds so it is cheap and reversible-ish).
func liftForward(p *[blockN]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// liftInverse undoes liftForward (up to the precision lost in shifts).
func liftInverse(p *[blockN]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// signMag maps a signed value to sign-magnitude with the sign in the top
// bit of the width-bit field, saturating the magnitude.
func signMag(v int64, width uint) uint64 {
	neg := v < 0
	if neg {
		v = -v
	}
	maxMag := int64(1)<<(width-1) - 1
	if v > maxMag {
		v = maxMag
	}
	u := uint64(v)
	if neg {
		u |= 1 << (width - 1)
	}
	return u
}

func unSignMag(u uint64, width uint) int64 {
	mag := int64(u & (1<<(width-1) - 1))
	if u>>(width-1)&1 == 1 {
		return -mag
	}
	return mag
}

package compress

// Embedded bit-plane coding with significance group testing — the coding
// engine that gives ZFP-class coders their energy-adaptive behaviour
// within a fixed bit budget. Coefficients are visited in total-degree
// order (low frequencies first); planes are emitted from the most
// significant bit down; within each plane a single "tail" test bit
// cheaply skips the (typically many) still-insignificant high-frequency
// coefficients of smooth blocks, so the budget concentrates on the large
// coefficients. Encoding stops exactly at the budget; the decoder runs
// the mirrored state machine.

// degreeOrder3D returns the visiting order of a 4×4×4 block's
// coefficients sorted by total degree i+j+k (stable in index order).
func degreeOrder3D() [b3N]int {
	var order [b3N]int
	pos := 0
	for deg := 0; deg <= 9; deg++ {
		for z := 0; z < b3Side; z++ {
			for y := 0; y < b3Side; y++ {
				for x := 0; x < b3Side; x++ {
					if x+y+z == deg {
						order[pos] = x + b3Side*(y+b3Side*z)
						pos++
					}
				}
			}
		}
	}
	return order
}

var b3Order = degreeOrder3D()

// budgetWriter wraps bitWriter with a hard bit budget.
type budgetWriter struct {
	w    *bitWriter
	left int
}

func (b *budgetWriter) put(bit uint64) bool {
	if b.left <= 0 {
		return false
	}
	b.w.write(bit&1, 1)
	b.left--
	return true
}

// pad flushes zero bits until the budget is consumed (fixed-rate framing).
func (b *budgetWriter) pad() {
	for b.left > 0 {
		b.w.write(0, 1)
		b.left--
	}
}

type budgetReader struct {
	r    *bitReader
	left int
}

func (b *budgetReader) get() (uint64, bool) {
	if b.left <= 0 {
		return 0, false
	}
	b.left--
	return b.r.read(1), true
}

func (b *budgetReader) drain() {
	for b.left > 0 {
		b.r.read(1)
		b.left--
	}
}

// encodeEmbedded writes exactly budget bits encoding the magnitudes and
// signs of q (values in two's complement; |q| < 2^topPlane+1).
func encodeEmbedded(w *bitWriter, q *[b3N]int64, budget, topPlane int) {
	bw := budgetWriter{w: w, left: budget}
	var mag [b3N]uint64
	var neg [b3N]bool
	for i, v := range q {
		if v < 0 {
			neg[i] = true
			mag[i] = uint64(-v)
		} else {
			mag[i] = uint64(v)
		}
	}
	var sig [b3N]bool
	nsig := 0
planes:
	for p := topPlane; p >= 0; p-- {
		// Refinement pass: one bit per already-significant coefficient.
		for pos := 0; pos < b3N; pos++ {
			idx := b3Order[pos]
			if sig[idx] {
				if !bw.put(mag[idx] >> uint(p)) {
					break planes
				}
			}
		}
		// Significance pass with tail group testing.
		pos := 0
		for nsig < b3N {
			// Skip already-significant prefix positions.
			for pos < b3N && sig[b3Order[pos]] {
				pos++
			}
			if pos >= b3N {
				break
			}
			tailAny := uint64(0)
			for t := pos; t < b3N; t++ {
				idx := b3Order[t]
				if !sig[idx] && mag[idx]>>uint(p)&1 == 1 {
					tailAny = 1
					break
				}
			}
			if !bw.put(tailAny) {
				break planes
			}
			if tailAny == 0 {
				break // rest of this plane is zero
			}
			// Emit per-coefficient bits until the set one is found.
			for pos < b3N {
				idx := b3Order[pos]
				if sig[idx] {
					pos++
					continue
				}
				bit := mag[idx] >> uint(p) & 1
				if !bw.put(bit) {
					break planes
				}
				pos++
				if bit == 1 {
					sign := uint64(0)
					if neg[idx] {
						sign = 1
					}
					if !bw.put(sign) {
						break planes
					}
					sig[idx] = true
					nsig++
					break
				}
			}
		}
	}
	bw.pad()
}

// decodeEmbedded mirrors encodeEmbedded, reconstructing truncated
// magnitudes (with a half-step rounding bias on the lowest decoded
// plane of each significant coefficient).
func decodeEmbedded(r *bitReader, q *[b3N]int64, budget, topPlane int) {
	br := budgetReader{r: r, left: budget}
	var mag [b3N]uint64
	var neg [b3N]bool
	var sig [b3N]bool
	var lowPlane [b3N]int
	nsig := 0
planes:
	for p := topPlane; p >= 0; p-- {
		for pos := 0; pos < b3N; pos++ {
			idx := b3Order[pos]
			if sig[idx] {
				bit, ok := br.get()
				if !ok {
					break planes
				}
				mag[idx] |= bit << uint(p)
				lowPlane[idx] = p
			}
		}
		pos := 0
		for nsig < b3N {
			for pos < b3N && sig[b3Order[pos]] {
				pos++
			}
			if pos >= b3N {
				break
			}
			tailAny, ok := br.get()
			if !ok {
				break planes
			}
			if tailAny == 0 {
				break
			}
			for pos < b3N {
				idx := b3Order[pos]
				if sig[idx] {
					pos++
					continue
				}
				bit, ok := br.get()
				if !ok {
					break planes
				}
				pos++
				if bit == 1 {
					sign, ok := br.get()
					if !ok {
						break planes
					}
					mag[idx] |= 1 << uint(p)
					lowPlane[idx] = p
					neg[idx] = sign == 1
					sig[idx] = true
					nsig++
					break
				}
			}
		}
	}
	br.drain()
	for i := range q {
		m := mag[i]
		if m != 0 && lowPlane[i] > 0 {
			// Round to the middle of the truncated interval.
			m |= 1 << uint(lowPlane[i]-1)
		}
		v := int64(m)
		if neg[i] {
			v = -v
		}
		q[i] = v
	}
}

package compress

import (
	"encoding/binary"
	"math"
)

// Lossless is a byte-shuffle + zero-run-length coder. The shuffle
// transposes the 8 byte planes of the float64 stream so that the highly
// repetitive sign/exponent bytes of similar values become long runs; a
// zero-oriented RLE then removes them. It is the "fallback to the
// classical 3-D FFT with a potential speedup" extension of the paper's
// conclusion: bit-exact, with data-dependent (possibly ≥1×) size.
//
// Wire format: uvarint(decoded byte count), then tokens over the shuffled
// stream: 0x00 <runlen-1 uvarint> for zero runs, else <lit-len uvarint>
// <literal bytes> with a 0x01 marker.
type Lossless struct{}

// Name implements Method.
func (Lossless) Name() string { return "Lossless" }

// Ratio implements Method. Variable rate: no guaranteed reduction.
func (Lossless) Ratio() float64 { return 1 }

// ErrorBound implements Method.
func (Lossless) ErrorBound() float64 { return 0 }

// MinNormal implements Method.
func (Lossless) MinNormal() float64 { return 0 }

// minRun is the shortest zero run worth a dedicated token; shorter zero
// stretches stay inside literals so token overhead can never blow up the
// stream on zero-sparse data.
const minRun = 4

// MaxCompressedLen implements Method. Each run/literal token pair covers
// at least minRun raw bytes at a cost bounded by the bytes covered, so
// the stream never exceeds raw size plus small per-segment overhead.
func (Lossless) MaxCompressedLen(n int) int {
	raw := 8 * n
	return raw + raw/minRun + 2*binary.MaxVarintLen64 + 16
}

// Compress implements Method.
func (Lossless) Compress(dst []byte, src []float64) int {
	raw := shuffle(src)
	n := binary.PutUvarint(dst, uint64(len(raw)))
	i := 0
	for i < len(raw) {
		if zeroRunLen(raw[i:]) >= minRun {
			j := i
			for j < len(raw) && raw[j] == 0 {
				j++
			}
			dst[n] = 0x00
			n++
			n += binary.PutUvarint(dst[n:], uint64(j-i-1))
			i = j
			continue
		}
		// Literal run: extend until the next zero run of ≥ minRun.
		j := i
		for j < len(raw) && zeroRunLen(raw[j:]) < minRun {
			j++
		}
		dst[n] = 0x01
		n++
		n += binary.PutUvarint(dst[n:], uint64(j-i))
		n += copy(dst[n:], raw[i:j])
		i = j
	}
	return n
}

// zeroRunLen reports the length of the zero prefix of b, capped at minRun
// (all we need to decide token type).
func zeroRunLen(b []byte) int {
	for i := 0; i < minRun; i++ {
		if i >= len(b) || b[i] != 0 {
			return i
		}
	}
	return minRun
}

// Decompress implements Method.
func (Lossless) Decompress(dst []float64, src []byte) int {
	total, hdr := binary.Uvarint(src)
	raw := make([]byte, total)
	n := hdr
	out := 0
	for out < int(total) {
		tok := src[n]
		n++
		v, used := binary.Uvarint(src[n:])
		n += used
		if tok == 0x00 {
			out += int(v) + 1 // zeros already in place
		} else {
			out += copy(raw[out:], src[n:n+int(v)])
			n += int(v)
		}
	}
	unshuffle(raw, dst)
	return n
}

// shuffle transposes the byte planes: plane b holds byte b of every value.
func shuffle(src []float64) []byte {
	n := len(src)
	out := make([]byte, 8*n)
	var tmp [8]byte
	for i, v := range src {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		for b := 0; b < 8; b++ {
			out[b*n+i] = tmp[b]
		}
	}
	return out
}

func unshuffle(raw []byte, dst []float64) {
	n := len(dst)
	var tmp [8]byte
	for i := range dst {
		for b := 0; b < 8; b++ {
			tmp[b] = raw[b*n+i]
		}
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
	}
}

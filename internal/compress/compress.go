// Package compress implements the message compression methods studied in
// §IV of the paper: truncation casts (FP64→FP32, FP64→FP16, FP64→BF16),
// generalized mantissa trimming with bit packing, a fixed-rate ZFP-like
// block transform coder, and a lossless byte-shuffle/RLE coder used for
// the paper's "fallback to the classical 3-D FFT" extension.
//
// All methods operate on []float64 payloads (a complex value is two
// consecutive float64s) and produce byte streams suitable for the
// all-to-all exchange. Fixed-rate methods (everything except Lossless)
// have a size that depends only on the value count, which the one-sided
// exchange relies on for window layout.
package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/precision"
)

// Method is a (possibly lossy) compressor for float64 payloads.
type Method interface {
	// Name identifies the method in reports ("FP64->FP32" etc.).
	Name() string
	// Ratio is the nominal compression ratio (uncompressed/compressed).
	// Variable-rate methods report 1 (no guarantee).
	Ratio() float64
	// MaxCompressedLen bounds the compressed size in bytes of n values.
	MaxCompressedLen(n int) int
	// Compress encodes src into dst and returns the number of bytes
	// written. dst must have at least MaxCompressedLen(len(src)) bytes.
	Compress(dst []byte, src []float64) int
	// Decompress decodes exactly n values into dst[:n] from src and
	// returns the number of bytes consumed. It assumes well-formed input
	// (panics on truncation); transport boundaries use DecompressChecked.
	Decompress(dst []float64, src []byte) int
	// DecompressChecked is Decompress for untrusted input: truncated or
	// corrupt streams return an error instead of panicking or decoding
	// garbage. On success it behaves exactly like Decompress.
	DecompressChecked(dst []float64, src []byte) (int, error)
	// ErrorBound returns the worst-case relative error introduced per
	// value (0 for lossless), assuming values within the method's range.
	ErrorBound() float64
	// MinNormal returns the smallest positive magnitude the method
	// represents with full relative accuracy: the bottom of the target
	// format's normal range, in input units. Smaller originals underflow
	// to subnormals or zero, where only absolute accuracy is available,
	// so error measurements score them by absolute rather than relative
	// error. Lossless methods return 0.
	MinNormal() float64
}

// None is the identity method: a plain little-endian float64 copy.
type None struct{}

// Name implements Method.
func (None) Name() string { return "FP64" }

// Ratio implements Method.
func (None) Ratio() float64 { return 1 }

// MaxCompressedLen implements Method.
func (None) MaxCompressedLen(n int) int { return 8 * n }

// ErrorBound implements Method.
func (None) ErrorBound() float64 { return 0 }

// MinNormal implements Method.
func (None) MinNormal() float64 { return 0 }

// Compress implements Method.
func (None) Compress(dst []byte, src []float64) int {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
	return 8 * len(src)
}

// Decompress implements Method.
func (None) Decompress(dst []float64, src []byte) int {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return 8 * len(dst)
}

// Cast32 truncates FP64 to FP32 during communication (compression rate 2).
type Cast32 struct{}

// Name implements Method.
func (Cast32) Name() string { return "FP64->FP32" }

// Ratio implements Method.
func (Cast32) Ratio() float64 { return 2 }

// MaxCompressedLen implements Method.
func (Cast32) MaxCompressedLen(n int) int { return 4 * n }

// ErrorBound implements Method.
func (Cast32) ErrorBound() float64 { return 6.0e-8 }

// MinNormal implements Method.
func (Cast32) MinNormal() float64 { return 0x1p-126 } // FP32 Xmin

// Compress implements Method.
func (Cast32) Compress(dst []byte, src []float64) int {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(float32(v)))
	}
	return 4 * len(src)
}

// Decompress implements Method.
func (Cast32) Decompress(dst []float64, src []byte) int {
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:])))
	}
	return 4 * len(dst)
}

// Cast16 truncates FP64 to IEEE FP16 (compression rate 4). Values outside
// the FP16 range overflow to ±Inf exactly as a hardware cast would; the
// FFT workloads of the paper keep data well within range.
type Cast16 struct{}

// Name implements Method.
func (Cast16) Name() string { return "FP64->FP16" }

// Ratio implements Method.
func (Cast16) Ratio() float64 { return 4 }

// MaxCompressedLen implements Method.
func (Cast16) MaxCompressedLen(n int) int { return 2 * n }

// ErrorBound implements Method.
func (Cast16) ErrorBound() float64 { return 4.9e-4 }

// MinNormal implements Method.
func (Cast16) MinNormal() float64 { return 0x1p-14 } // FP16 Xmin

// Compress implements Method.
func (Cast16) Compress(dst []byte, src []float64) int {
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(precision.FromFloat64(v)))
	}
	return 2 * len(src)
}

// Decompress implements Method.
func (Cast16) Decompress(dst []float64, src []byte) int {
	for i := range dst {
		dst[i] = precision.Float16(binary.LittleEndian.Uint16(src[2*i:])).Float64()
	}
	return 2 * len(dst)
}

// CastBF16 truncates FP64 to bfloat16 (compression rate 4, full FP32
// exponent range, 8-bit mantissa).
type CastBF16 struct{}

// Name implements Method.
func (CastBF16) Name() string { return "FP64->BF16" }

// Ratio implements Method.
func (CastBF16) Ratio() float64 { return 4 }

// MaxCompressedLen implements Method.
func (CastBF16) MaxCompressedLen(n int) int { return 2 * n }

// ErrorBound implements Method.
func (CastBF16) ErrorBound() float64 { return 3.9e-3 }

// MinNormal implements Method.
func (CastBF16) MinNormal() float64 { return 0x1p-126 } // BF16 shares the FP32 exponent range

// Compress implements Method.
func (CastBF16) Compress(dst []byte, src []float64) int {
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(precision.BFromFloat64(v)))
	}
	return 2 * len(src)
}

// Decompress implements Method.
func (CastBF16) Decompress(dst []float64, src []byte) int {
	for i := range dst {
		dst[i] = precision.BFloat16(binary.LittleEndian.Uint16(src[2*i:])).Float64()
	}
	return 2 * len(dst)
}

// Trim keeps the sign, the full 11-bit exponent, and M mantissa bits of
// each float64, bit-packed to ceil((12+M)/8·n) bytes. It realizes the
// mantissa-trimming sweep of Fig. 2 with an actually reduced wire size.
type Trim struct {
	// M is the number of retained mantissa bits, 0..52.
	M uint
}

// Name implements Method.
func (t Trim) Name() string { return fmt.Sprintf("Trim(%d)", t.M) }

// BitsPerValue returns the packed width of one value.
func (t Trim) BitsPerValue() int { return 12 + int(t.M) }

// Ratio implements Method.
func (t Trim) Ratio() float64 { return 64 / float64(t.BitsPerValue()) }

// MaxCompressedLen implements Method.
func (t Trim) MaxCompressedLen(n int) int {
	return (n*t.BitsPerValue() + 7) / 8
}

// ErrorBound implements Method.
func (t Trim) ErrorBound() float64 { return precision.TrimUnitRoundoff(t.M) }

// MinNormal implements Method: trimming keeps the full FP64 exponent.
func (t Trim) MinNormal() float64 { return 0x1p-1022 }

// Compress implements Method.
func (t Trim) Compress(dst []byte, src []float64) int {
	w := bitWriter{buf: dst}
	width := uint(t.BitsPerValue())
	shift := 52 - t.M
	for _, v := range src {
		b := math.Float64bits(precision.TrimFloat64(v, t.M))
		// Layout: sign(1) | exponent(11) | top M mantissa bits.
		packed := b >> shift
		w.write(packed, width)
	}
	return w.flush()
}

// Decompress implements Method.
func (t Trim) Decompress(dst []float64, src []byte) int {
	r := bitReader{buf: src}
	width := uint(t.BitsPerValue())
	shift := 52 - t.M
	for i := range dst {
		packed := r.read(width)
		dst[i] = math.Float64frombits(packed << shift)
	}
	return r.consumed()
}

type bitWriter struct {
	buf  []byte
	acc  uint64
	bits uint
	n    int
}

func (w *bitWriter) write(v uint64, width uint) {
	if width > 32 {
		w.write(v&0xffffffff, 32)
		w.write(v>>32, width-32)
		return
	}
	w.acc |= v << w.bits
	w.bits += width
	for w.bits >= 8 {
		w.buf[w.n] = byte(w.acc)
		w.n++
		w.acc >>= 8
		w.bits -= 8
	}
}

func (w *bitWriter) flush() int {
	if w.bits > 0 {
		w.buf[w.n] = byte(w.acc)
		w.n++
		w.acc = 0
		w.bits = 0
	}
	return w.n
}

type bitReader struct {
	buf  []byte
	acc  uint64
	bits uint
	n    int
}

func (r *bitReader) read(width uint) uint64 {
	if width > 32 {
		lo := r.read(32)
		hi := r.read(width - 32)
		return lo | hi<<32
	}
	for r.bits < width {
		r.acc |= uint64(r.buf[r.n]) << r.bits
		r.n++
		r.bits += 8
	}
	v := r.acc & (1<<width - 1)
	r.acc >>= width
	r.bits -= width
	return v
}

func (r *bitReader) consumed() int { return r.n }

// FromTolerance selects the method with the highest compression ratio
// whose worst-case relative error stays at or below etol, following
// §III's error-control contract: the largest compression that still
// meets the user's e_tol. Hardware casts are preferred over bit-packed
// trimming at equal ratio (BF16 over FP16 for its wider range, matching
// the dynamic range FFT spectra develop). etol ≤ 0, or tighter than
// FP64 resolution, selects no compression.
func FromTolerance(etol float64) Method {
	if etol <= 0 {
		return None{}
	}
	switch {
	case etol >= (CastBF16{}).ErrorBound():
		return CastBF16{}
	case etol >= (Cast16{}).ErrorBound():
		return Cast16{}
	}
	// Smallest m with trim unit roundoff 2^-(m+1) ≤ etol.
	m := uint(0)
	for m < 52 && precision.TrimUnitRoundoff(m) > etol {
		m++
	}
	if m >= 52 {
		return None{} // nothing to trim: full FP64 needed
	}
	t := Trim{M: m}
	if t.Ratio() > (Cast32{}).Ratio() {
		return t
	}
	if etol >= (Cast32{}).ErrorBound() {
		return Cast32{}
	}
	return t
}

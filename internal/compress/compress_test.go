package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// smoothData mimics spatially correlated fields (what ZFP-class coders
// exploit).
func smoothData(n int, seed int64) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / float64(n)
		x[i] = math.Sin(2*math.Pi*3*t) + 0.5*math.Cos(2*math.Pi*7*t+float64(seed))
	}
	return x
}

func allMethods() []Method {
	return []Method{
		None{}, Cast32{}, Cast16{}, CastBF16{},
		Trim{M: 0}, Trim{M: 5}, Trim{M: 10}, Trim{M: 23}, Trim{M: 40}, Trim{M: 52},
		Block{Bits: 8}, Block{Bits: 16}, Block{Bits: 26},
		Scaled{Inner: Cast16{}}, Scaled{Inner: Cast32{}},
		Lossless{},
	}
}

func roundTrip(t *testing.T, m Method, src []float64) []float64 {
	t.Helper()
	buf := make([]byte, m.MaxCompressedLen(len(src)))
	n := m.Compress(buf, src)
	if n > len(buf) {
		t.Fatalf("%s: wrote %d bytes, bound %d", m.Name(), n, len(buf))
	}
	out := make([]float64, len(src))
	used := m.Decompress(out, buf[:n])
	if used != n {
		t.Fatalf("%s: decompress consumed %d bytes, compress wrote %d", m.Name(), used, n)
	}
	return out
}

func TestRoundTripWithinErrorBound(t *testing.T) {
	src := randData(1000, 1)
	for _, m := range allMethods() {
		out := roundTrip(t, m, src)
		bound := m.ErrorBound()
		for i := range src {
			err := math.Abs(out[i] - src[i])
			tol := bound * math.Max(math.Abs(src[i]), 1) * (1 + 1e-9)
			if bound == 0 {
				if out[i] != src[i] {
					t.Fatalf("%s: lossless mismatch at %d: %v != %v", m.Name(), i, out[i], src[i])
				}
			} else if err > tol {
				t.Errorf("%s: value %d error %g exceeds bound %g", m.Name(), i, err, tol)
				break
			}
		}
	}
}

func TestCompressedSizeMatchesRatio(t *testing.T) {
	n := 4096
	src := randData(n, 2)
	for _, m := range allMethods() {
		if (m == Lossless{}) {
			continue
		}
		buf := make([]byte, m.MaxCompressedLen(n))
		got := m.Compress(buf, src)
		want := float64(8*n) / m.Ratio()
		if math.Abs(float64(got)-want) > 0.05*want+16 {
			t.Errorf("%s: compressed %d bytes, ratio %g implies ~%.0f", m.Name(), got, m.Ratio(), want)
		}
	}
}

func TestCast32MatchesCast(t *testing.T) {
	src := randData(256, 3)
	out := roundTrip(t, Cast32{}, src)
	for i, v := range src {
		if out[i] != float64(float32(v)) {
			t.Fatalf("Cast32 at %d: got %v, want %v", i, out[i], float64(float32(v)))
		}
	}
}

func TestTrimVariousWidths(t *testing.T) {
	src := randData(333, 4) // odd length exercises bit-packing tails
	for m := uint(0); m <= 52; m += 4 {
		out := roundTrip(t, Trim{M: m}, src)
		u := Trim{M: m}.ErrorBound()
		for i := range src {
			if math.Abs(out[i]-src[i]) > u*math.Abs(src[i])*(1+1e-9) {
				t.Fatalf("Trim(%d) at %d: error %g > %g", m, i, math.Abs(out[i]-src[i]), u*math.Abs(src[i]))
			}
		}
	}
}

func TestTrim52IsExactForNormals(t *testing.T) {
	src := randData(100, 5)
	out := roundTrip(t, Trim{M: 52}, src)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("Trim(52) not exact at %d", i)
		}
	}
}

func TestLosslessExactProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		m := Lossless{}
		buf := make([]byte, m.MaxCompressedLen(len(vals)))
		n := m.Compress(buf, vals)
		out := make([]float64, len(vals))
		m.Decompress(out, buf[:n])
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLosslessCompressesSparseData(t *testing.T) {
	// Mostly-zero data must compress well below 8 bytes/value.
	src := make([]float64, 4096)
	for i := 0; i < 64; i++ {
		src[i*64] = float64(i)
	}
	m := Lossless{}
	buf := make([]byte, m.MaxCompressedLen(len(src)))
	n := m.Compress(buf, src)
	if n > len(src) { // ≥ 32x on this input
		t.Errorf("lossless: sparse data compressed to %d bytes (raw %d)", n, 8*len(src))
	}
}

func TestBlockBeatsTrimOnSmoothData(t *testing.T) {
	// At equal wire size, the block transform coder should have at most
	// the error of plain truncation on smooth data (usually lower).
	src := smoothData(4096, 1)
	blk := Block{Bits: 14} // 8+4*14 = 64 bits / 4 values = 16 bits/value
	trm := Trim{M: 4}      // 16 bits/value
	eBlk := rmsErr(t, blk, src)
	eTrm := rmsErr(t, trm, src)
	if eBlk > eTrm {
		t.Errorf("Block RMS %g > Trim RMS %g on smooth data at equal rate", eBlk, eTrm)
	}
}

func rmsErr(t *testing.T, m Method, src []float64) float64 {
	t.Helper()
	out := roundTrip(t, m, src)
	var s float64
	for i := range src {
		d := out[i] - src[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(src)))
}

func TestBlockZeroBlock(t *testing.T) {
	src := make([]float64, 16)
	out := roundTrip(t, Block{Bits: 12}, src)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero block decoded nonzero at %d: %g", i, v)
		}
	}
}

func TestBlockTailPadding(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 9} {
		src := randData(n, int64(n))
		out := roundTrip(t, Block{Bits: 20}, src)
		for i := range src {
			if math.Abs(out[i]-src[i]) > 1e-4 {
				t.Fatalf("n=%d: block tail error %g at %d", n, math.Abs(out[i]-src[i]), i)
			}
		}
	}
}

func TestScaledHandlesLargeMagnitudes(t *testing.T) {
	// Values way beyond FP16 range must survive via the scale header.
	src := []float64{1e6, -3e7, 2.5e5, 0, 999999}
	out := roundTrip(t, Scaled{Inner: Cast16{}}, src)
	for i := range src {
		if src[i] == 0 {
			if out[i] != 0 {
				t.Fatalf("scaled: zero decoded as %g", out[i])
			}
			continue
		}
		rel := math.Abs(out[i]-src[i]) / math.Abs(src[i])
		if rel > 5e-4 {
			t.Errorf("scaled FP16: value %g relative error %g", src[i], rel)
		}
	}
	// Plain Cast16 must fail on the same data (sanity of the test).
	raw := roundTrip(t, Cast16{}, src)
	if !math.IsInf(raw[0], 1) {
		t.Error("expected plain Cast16 to overflow 1e6 to +Inf")
	}
}

func TestFromTolerance(t *testing.T) {
	cases := []struct {
		etol float64
		want string
	}{
		{1e-2, "FP64->BF16"},
		{1e-3, "FP64->FP16"},
		{1e-5, "Trim(16)"},
		{1e-7, "FP64->FP32"},
		{1e-10, "Trim(33)"},
		{0, "FP64"},
		{-1, "FP64"},
	}
	for _, c := range cases {
		got := FromTolerance(c.etol)
		if got.Name() != c.want {
			t.Errorf("FromTolerance(%g) = %s, want %s", c.etol, got.Name(), c.want)
		}
		if c.etol > 0 && got.ErrorBound() > c.etol {
			t.Errorf("FromTolerance(%g): bound %g exceeds tolerance", c.etol, got.ErrorBound())
		}
	}
}

func TestFromTolerancePropertyBoundRespected(t *testing.T) {
	f := func(exp uint8) bool {
		etol := math.Ldexp(1, -int(exp%60)-1)
		m := FromTolerance(etol)
		return m.ErrorBound() <= etol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatiosAreOrdered(t *testing.T) {
	if (Cast16{}).Ratio() <= (Cast32{}).Ratio() {
		t.Error("FP16 ratio should exceed FP32 ratio")
	}
	if (Trim{M: 10}).Ratio() <= (Trim{M: 30}).Ratio() {
		t.Error("smaller mantissa should compress more")
	}
}

func BenchmarkCast32Compress(b *testing.B) {
	src := randData(1<<16, 1)
	dst := make([]byte, Cast32{}.MaxCompressedLen(len(src)))
	b.SetBytes(int64(8 * len(src)))
	for i := 0; i < b.N; i++ {
		Cast32{}.Compress(dst, src)
	}
}

func BenchmarkTrimCompress(b *testing.B) {
	src := randData(1<<16, 1)
	m := Trim{M: 20}
	dst := make([]byte, m.MaxCompressedLen(len(src)))
	b.SetBytes(int64(8 * len(src)))
	for i := 0; i < b.N; i++ {
		m.Compress(dst, src)
	}
}

func BenchmarkBlockCompress(b *testing.B) {
	src := randData(1<<16, 1)
	m := Block{Bits: 16}
	dst := make([]byte, m.MaxCompressedLen(len(src)))
	b.SetBytes(int64(8 * len(src)))
	for i := 0; i < b.N; i++ {
		m.Compress(dst, src)
	}
}

package compress

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCompressDeterministic: identical input yields identical bytes for
// every method (the one-sided exchange relies on reproducible sizes).
func TestCompressDeterministic(t *testing.T) {
	src := randData(512, 99)
	for _, m := range allMethods() {
		a := make([]byte, m.MaxCompressedLen(len(src)))
		b := make([]byte, m.MaxCompressedLen(len(src)))
		na := m.Compress(a, src)
		nb := m.Compress(b, src)
		if na != nb {
			t.Errorf("%s: nondeterministic size %d vs %d", m.Name(), na, nb)
			continue
		}
		for i := 0; i < na; i++ {
			if a[i] != b[i] {
				t.Errorf("%s: nondeterministic byte at %d", m.Name(), i)
				break
			}
		}
	}
}

// TestFixedRateSizeIndependentOfData: fixed-rate methods must produce
// the same compressed size for any data, which the window layout of the
// compressed one-sided exchange depends on.
func TestFixedRateSizeIndependentOfData(t *testing.T) {
	fixed := []Method{None{}, Cast32{}, Cast16{}, CastBF16{}, Trim{M: 11}, Block{Bits: 13}}
	a := randData(777, 1)
	b := make([]float64, 777) // zeros
	for _, m := range fixed {
		bufA := make([]byte, m.MaxCompressedLen(len(a)))
		bufB := make([]byte, m.MaxCompressedLen(len(b)))
		if na, nb := m.Compress(bufA, a), m.Compress(bufB, b); na != nb {
			t.Errorf("%s: size depends on data (%d vs %d)", m.Name(), na, nb)
		}
	}
}

func TestBlockConstantData(t *testing.T) {
	src := make([]float64, 64)
	for i := range src {
		src[i] = 3.25
	}
	out := roundTrip(t, Block{Bits: 20}, src)
	for i, v := range out {
		if math.Abs(v-3.25) > 1e-4 {
			t.Fatalf("constant block decoded %g at %d", v, i)
		}
	}
}

func TestBlockNegativeValues(t *testing.T) {
	src := []float64{-1, -0.5, 0.25, -0.125, 1, -2, 4, -8}
	out := roundTrip(t, Block{Bits: 24}, src)
	for i := range src {
		if math.Abs(out[i]-src[i]) > 1e-4*math.Abs(src[i])+1e-6 {
			t.Fatalf("negative value %g decoded as %g", src[i], out[i])
		}
	}
}

func TestTrimZeroMantissaRoundTrip(t *testing.T) {
	src := randData(100, 7)
	out := roundTrip(t, Trim{M: 0}, src)
	for i := range src {
		// Only the implicit bit: result within a factor ~√2 of input.
		ratio := out[i] / src[i]
		if ratio < 0.6 || ratio > 1.5 {
			t.Fatalf("Trim(0): %g decoded as %g", src[i], out[i])
		}
	}
}

func TestScaledTrimComposition(t *testing.T) {
	// Scaled wraps any inner method, including bit-packed trim.
	src := []float64{1e8, -2e9, 3e7, 0}
	m := Scaled{Inner: Trim{M: 20}}
	out := roundTrip(t, m, src)
	for i := range src {
		if src[i] == 0 {
			continue
		}
		rel := math.Abs(out[i]-src[i]) / math.Abs(src[i])
		if rel > precisionTrimRoundoff(20) {
			t.Fatalf("scaled trim rel error %g at %d", rel, i)
		}
	}
}

func precisionTrimRoundoff(m int) float64 {
	return math.Ldexp(1, -m-1) * 1.001
}

func TestEmptyInputAllMethods(t *testing.T) {
	for _, m := range allMethods() {
		buf := make([]byte, m.MaxCompressedLen(0)+16)
		n := m.Compress(buf, nil)
		out := make([]float64, 0)
		used := m.Decompress(out, buf[:n])
		if used != n {
			t.Errorf("%s: empty input consumed %d wrote %d", m.Name(), used, n)
		}
	}
}

func TestSingleValueAllMethods(t *testing.T) {
	for _, m := range allMethods() {
		src := []float64{0.123456789}
		out := roundTrip(t, m, src)
		if b := m.ErrorBound(); b > 0 {
			if math.Abs(out[0]-src[0]) > b*(1+1e-9) {
				t.Errorf("%s: single value error %g above bound %g", m.Name(), math.Abs(out[0]-src[0]), b)
			}
		} else if out[0] != src[0] {
			t.Errorf("%s: lossless single value mismatch", m.Name())
		}
	}
}

// TestLosslessWorstCaseBound: adversarial byte patterns must stay within
// MaxCompressedLen.
func TestLosslessWorstCaseBound(t *testing.T) {
	f := func(raw []byte) bool {
		// Interpret arbitrary bytes as float64 payloads.
		n := len(raw) / 8
		if n == 0 {
			return true
		}
		src := make([]float64, n)
		for i := range src {
			bits := uint64(0)
			for b := 0; b < 8; b++ {
				bits |= uint64(raw[8*i+b]) << (8 * b)
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) {
				v = 0
			}
			src[i] = v
		}
		m := Lossless{}
		buf := make([]byte, m.MaxCompressedLen(n))
		written := m.Compress(buf, src)
		return written <= len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRatioConsistentWithSize: for fixed-rate methods the actual size
// must equal 8·n/Ratio within rounding.
func TestRatioConsistentWithSizeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%500 + 1
		src := randData(n, seed)
		for _, m := range []Method{Cast32{}, Cast16{}, Trim{M: 30}, Block{Bits: 10}} {
			buf := make([]byte, m.MaxCompressedLen(n))
			got := m.Compress(buf, src)
			want := float64(8*n) / m.Ratio()
			if math.Abs(float64(got)-want) > 0.2*want+24 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromToleranceMonotonic(t *testing.T) {
	// Tighter tolerance must never produce a higher compression ratio.
	prev := math.Inf(1)
	for _, etol := range []float64{1e-2, 1e-3, 1e-5, 1e-7, 1e-9, 1e-12, 1e-15} {
		r := FromTolerance(etol).Ratio()
		if r > prev {
			t.Errorf("ratio increased to %g as tolerance tightened to %g", r, etol)
		}
		prev = r
	}
}

func TestMethodNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMethods() {
		if seen[m.Name()] {
			t.Errorf("duplicate method name %s", m.Name())
		}
		seen[m.Name()] = true
	}
}

package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements DecompressChecked for every Method: the decode
// entry points used at transport boundaries, where payloads may have
// been truncated or corrupted in flight. Fixed-rate methods validate
// the exact input length their value count implies before touching the
// data; the variable-rate Lossless coder re-parses its token stream
// with every header read bounds-checked.

// ErrCorrupt is the error kind wrapped by all checked-decode failures.
var ErrCorrupt = fmt.Errorf("compress: corrupt input")

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// checkFixed validates the input length of a fixed-rate stream, where
// the size is a function of the value count alone.
func checkFixed(name string, need, have int) error {
	if have < need {
		return corruptf("%s: %d bytes of input, need %d", name, have, need)
	}
	return nil
}

// DecompressChecked implements Method.
func (m None) DecompressChecked(dst []float64, src []byte) (int, error) {
	if err := checkFixed(m.Name(), 8*len(dst), len(src)); err != nil {
		return 0, err
	}
	return m.Decompress(dst, src), nil
}

// DecompressChecked implements Method.
func (m Cast32) DecompressChecked(dst []float64, src []byte) (int, error) {
	if err := checkFixed(m.Name(), 4*len(dst), len(src)); err != nil {
		return 0, err
	}
	return m.Decompress(dst, src), nil
}

// DecompressChecked implements Method.
func (m Cast16) DecompressChecked(dst []float64, src []byte) (int, error) {
	if err := checkFixed(m.Name(), 2*len(dst), len(src)); err != nil {
		return 0, err
	}
	return m.Decompress(dst, src), nil
}

// DecompressChecked implements Method.
func (m CastBF16) DecompressChecked(dst []float64, src []byte) (int, error) {
	if err := checkFixed(m.Name(), 2*len(dst), len(src)); err != nil {
		return 0, err
	}
	return m.Decompress(dst, src), nil
}

// DecompressChecked implements Method.
func (t Trim) DecompressChecked(dst []float64, src []byte) (int, error) {
	if t.M > 52 {
		return 0, corruptf("%s: invalid mantissa width", t.Name())
	}
	if err := checkFixed(t.Name(), t.MaxCompressedLen(len(dst)), len(src)); err != nil {
		return 0, err
	}
	return t.Decompress(dst, src), nil
}

// DecompressChecked implements Method.
func (b Block) DecompressChecked(dst []float64, src []byte) (int, error) {
	if b.Bits < 1 || b.Bits > 30 {
		return 0, corruptf("%s: invalid bit budget", b.Name())
	}
	if err := checkFixed(b.Name(), b.MaxCompressedLen(len(dst)), len(src)); err != nil {
		return 0, err
	}
	return b.Decompress(dst, src), nil
}

// DecompressChecked implements Method. The scale header must be a
// positive finite power of two (the only values Compress ever writes).
func (s Scaled) DecompressChecked(dst []float64, src []byte) (int, error) {
	if len(src) < 8 {
		return 0, corruptf("%s: %d bytes of input, need the 8-byte scale header", s.Name(), len(src))
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(src))
	if !(scale > 0) || math.IsInf(scale, 0) {
		return 0, corruptf("%s: scale header %g is not a positive finite value", s.Name(), scale)
	}
	frac, _ := math.Frexp(scale)
	if frac != 0.5 {
		return 0, corruptf("%s: scale header %g is not a power of two", s.Name(), scale)
	}
	n, err := s.Inner.DecompressChecked(dst, src[8:])
	if err != nil {
		return 0, err
	}
	inv := 1 / scale
	for i := range dst {
		dst[i] *= inv
	}
	return 8 + n, nil
}

// DecompressChecked implements Method: a full validated re-parse of the
// token stream, since the Lossless coder is variable-rate and every
// header read can run past a truncated input.
func (m Lossless) DecompressChecked(dst []float64, src []byte) (int, error) {
	total, hdr := binary.Uvarint(src)
	if hdr <= 0 {
		return 0, corruptf("%s: bad length header", m.Name())
	}
	if total != uint64(8*len(dst)) {
		return 0, corruptf("%s: stream declares %d bytes, caller expects %d", m.Name(), total, 8*len(dst))
	}
	raw := make([]byte, total)
	n := hdr
	out := 0
	for out < int(total) {
		if n >= len(src) {
			return 0, corruptf("%s: truncated at token %d/%d bytes", m.Name(), out, total)
		}
		tok := src[n]
		n++
		if tok != 0x00 && tok != 0x01 {
			return 0, corruptf("%s: invalid token 0x%02x", m.Name(), tok)
		}
		v, used := binary.Uvarint(src[n:])
		if used <= 0 {
			return 0, corruptf("%s: bad token length varint", m.Name())
		}
		n += used
		if tok == 0x00 {
			run := v + 1
			if run > total-uint64(out) {
				return 0, corruptf("%s: zero run of %d overflows %d remaining bytes", m.Name(), run, total-uint64(out))
			}
			out += int(run) // zeros already in place
			continue
		}
		if v > total-uint64(out) {
			return 0, corruptf("%s: literal of %d overflows %d remaining bytes", m.Name(), v, total-uint64(out))
		}
		if uint64(len(src)-n) < v {
			return 0, corruptf("%s: literal of %d truncated (%d bytes left)", m.Name(), v, len(src)-n)
		}
		out += copy(raw[out:], src[n:n+int(v)])
		n += int(v)
	}
	unshuffle(raw, dst)
	return n, nil
}

// DecompressChecked is the checked variant of Block3D.Decompress
// (Block3D is not a Method — its signatures carry the block dims).
func (b Block3D) DecompressChecked(dst []float64, src []byte, dims [3]int) (int, error) {
	if b.Bits < 1 || b.Bits > 30 {
		return 0, corruptf("%s: invalid bit budget", b.String())
	}
	if dims[0]*dims[1]*dims[2] != len(dst) {
		return 0, corruptf("%s: dims %v do not cover %d values", b.String(), dims, len(dst))
	}
	if err := checkFixed(b.String(), b.MaxCompressedLen(dims), len(src)); err != nil {
		return 0, err
	}
	return b.Decompress(dst, src, dims), nil
}

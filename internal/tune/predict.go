package tune

import (
	"math"

	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// Predict returns the roofline prediction (seconds) of one exchange of
// the traffic matrix under a candidate. bytes(dst, src) is the raw
// (uncompressed) payload from src to dst in bytes; zero pairs carry no
// message. The two-sided and one-sided terms follow
// core.PredictExchanges — serialization on the busiest NIC/bus/device,
// per-message protocol occupancy, injection overhead, one wire latency.
// On top of that the tuner's space needs two extensions the core model
// does not have: the Bruck log-round aggregation (predictBruck) and the
// exposed compression-kernel time of the §V-B pipeline, which is what
// makes the prediction sensitive to the chunk count. Like the core
// model it is a lower bound — a ranking function, not a simulator; the
// probe runs exist to catch the cases where its ordering is wrong.
func Predict(cfg netsim.Config, dev gpu.Device, bytes func(dst, src int) int, cand Candidate) float64 {
	if cand.Algo == Bruck {
		return predictBruck(cfg, bytes)
	}
	p := cfg.Ranks()
	ratio := 1.0
	if cand.Method != nil {
		ratio = cand.Method.Ratio()
	}
	oneSided := cand.Algo == OSC || cand.Algo == CompressedOSC

	egress := make([]float64, cfg.Nodes)
	ingress := make([]float64, cfg.Nodes)
	bus := make([]float64, cfg.Nodes)
	maxLocal := 0.0
	maxMsgs := 0
	var interBytes, intraBytes int64
	for src := 0; src < p; src++ {
		srcNode := cfg.NodeOf(src)
		perRank := 0
		for dst := 0; dst < p; dst++ {
			raw := bytes(dst, src)
			if raw == 0 {
				continue
			}
			wire := float64(raw) / ratio
			switch dstNode := cfg.NodeOf(dst); {
			case src == dst:
				if t := wire / cfg.LocalBW; maxLocal < t {
					maxLocal = t
				}
			case srcNode == dstNode:
				intraBytes += int64(wire)
				perMsg := cfg.ProtoOverheadIntra
				if oneSided {
					perMsg = cfg.RMAOverhead
				} else if int(wire) <= mpi.DefaultEagerThreshold {
					perMsg = 0
				}
				bus[srcNode] += wire/cfg.IntraBW + perMsg
				perRank++
			default:
				interBytes += int64(wire)
				perMsg := cfg.ProtoOverheadInter
				if oneSided {
					perMsg = cfg.RMAOverhead
				} else if int(wire) <= mpi.DefaultEagerThreshold {
					perMsg = 0
				}
				t := wire/cfg.InterBW + perMsg
				egress[srcNode] += t
				ingress[dstNode] += t
				perRank++
			}
		}
		if perRank > maxMsgs {
			maxMsgs = perRank
		}
	}
	interTime, intraTime := 0.0, 0.0
	for nd := 0; nd < cfg.Nodes; nd++ {
		interTime = math.Max(interTime, math.Max(egress[nd], ingress[nd]))
		intraTime = math.Max(intraTime, bus[nd])
	}
	latency := 0.0
	switch {
	case interBytes > 0:
		latency = cfg.InterLatency
	case intraBytes > 0:
		latency = cfg.IntraLatency
	}
	t := math.Max(interTime, math.Max(intraTime, maxLocal)) +
		float64(maxMsgs)*cfg.SendOverhead + latency
	if cand.Algo == CompressedOSC {
		exposed, device := kernelTimes(cfg, dev, bytes, cand)
		t = math.Max(t, device) + exposed
	}
	return t
}

// kernelTimes models the §V-B pipeline's compression cost, split into
// the part the pipeline cannot hide (the first chunk's compression and
// the last chunk's decompression — nothing to overlap them with) and
// the busiest rank's total serialized device occupancy (every chunk's
// compression and decompression, each floored at the device's minimum
// kernel duration). The floor is what keeps "more chunks" from being
// free: past the point where a chunk's work drops under the launch
// floor, deeper pipelines turn the device into the bottleneck.
func kernelTimes(cfg netsim.Config, dev gpu.Device, bytes func(dst, src int) int, cand Candidate) (exposed, device float64) {
	p := cfg.Ranks()
	maxSend := 0
	for src := 0; src < p; src++ {
		total := 0
		for dst := 0; dst < p; dst++ {
			total += bytes(dst, src)
		}
		if total > maxSend {
			maxSend = total
		}
	}
	chunks := cand.Chunks
	if chunks < 1 {
		chunks = 1
	}
	raw := maxSend / chunks
	vals := raw / 8
	packed := cand.Method.MaxCompressedLen(vals)
	perChunk := dev.CompressCost(raw, packed) + dev.CompressCost(packed, raw)
	return perChunk, float64(chunks) * perChunk
}

// predictBruck models the log-round aggregated algorithm on padded
// uniform blocks (the padding core's Bruck reshape applies). Round k
// moves every block whose slot index has bit k set — about half the
// blocks — one message per rank. For rounds shorter than a node
// (k < GPUsPerNode) only k of a node's senders cross the NIC and the
// rest share the bus; longer rounds push every sender through the NIC.
// An approximation (boundary ranks blur the split), but a deterministic
// one, and it captures the trade the tuner needs: ~log2(p) large
// messages against p-1 per-pair ones.
func predictBruck(cfg netsim.Config, bytes func(dst, src int) int) float64 {
	p := cfg.Ranks()
	gpn := cfg.GPUsPerNode
	block := 0
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			if b := bytes(dst, src); b > block {
				block = b
			}
		}
	}
	if block == 0 {
		return 0
	}
	t := 0.0
	for k := 1; k < p; k <<= 1 {
		nblk := 0
		for j := 0; j < p; j++ {
			if j&k != 0 {
				nblk++
			}
		}
		msg := float64(nblk) * float64(block)
		crossing := 0
		if cfg.Nodes > 1 {
			crossing = k
			if crossing > gpn {
				crossing = gpn
			}
		}
		local := gpn - crossing
		inter, intra := 0.0, 0.0
		if crossing > 0 {
			perMsg := cfg.ProtoOverheadInter
			if int(msg) <= mpi.DefaultEagerThreshold {
				perMsg = 0
			}
			inter = float64(crossing) * (msg/cfg.InterBW + perMsg)
		}
		if local > 0 {
			perMsg := cfg.ProtoOverheadIntra
			if int(msg) <= mpi.DefaultEagerThreshold {
				perMsg = 0
			}
			intra = float64(local) * (msg/cfg.IntraBW + perMsg)
		}
		lat := cfg.IntraLatency
		if crossing > 0 {
			lat = cfg.InterLatency
		}
		t += math.Max(inter, intra) + cfg.SendOverhead + lat
	}
	return t
}

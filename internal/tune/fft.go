package tune

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/gpu"
	"repro/internal/grid"
	"repro/internal/netsim"
)

// probeConfig strips the run-mode fields off the machine model before a
// probe run: faults and observers must not leak into tuning decisions
// (a plan has to be identical whether or not the consuming run injects
// faults), and probes carry no recorders. The engine choice (Parallel)
// is kept — it is bit-neutral by the determinism contract, and leaving
// it visible is exactly what the conformance suite checks.
func probeConfig(cfg netsim.Config) netsim.Config {
	cfg.Faults = nil
	cfg.FaultObserver = nil
	cfg.Tracer = nil
	return cfg
}

// FFT tunes every forward reshape of an n[0]×n[1]×n[2] transform on the
// machine: per stage, the admissible candidate with the best roofline
// prediction; optionally (Space.ProbeTopK > 0) the best K whole-pipeline
// candidates are probed with short seeded simulation runs and the
// measured winner overrides all stages. C selects the pipeline
// precision like core.Plan's parameter; complex64 restricts the space
// to the lossless algorithms. base supplies the non-exchange options
// (SimScale, PencilIO, Device) the probes and shape key use.
func FFT[C fft.Complex](cfg netsim.Config, n [3]int, base core.Options, sp Space) (*Cell, error) {
	cfg = probeConfig(cfg)
	sp = sp.withDefaults()
	var zero C
	_, fp32 := any(zero).(complex64)
	if fp32 {
		sp.Lossless = true
	}
	elem := 16
	if fp32 {
		elem = 8
	}
	dev := base.Device
	if dev == (gpu.Device{}) {
		dev = gpu.V100()
	}
	cands := sp.Candidates()
	stages := fftStages(cfg, n, base, elem)
	if len(stages) == 0 || cfg.Ranks() < 1 {
		return nil, fmt.Errorf("tune: degenerate FFT shape")
	}

	cell := &Cell{
		Machine: Fingerprint(cfg),
		Shape:   FFTShape(n, base.SimScale, fp32, base.PencilIO),
	}
	// Per-stage scoring, plus each candidate's whole-pipeline total for
	// the probe ranking.
	totals := make([]Scored, len(cands))
	perStage := make([][]Scored, len(stages))
	for si, st := range stages {
		perStage[si] = make([]Scored, len(cands))
		for ci, cand := range cands {
			pred := Predict(cfg, dev, st.bytes, cand)
			perStage[si][ci] = Scored{Candidate: cand, Predicted: pred}
			totals[ci].Candidate = cand
			totals[ci].Predicted += pred
		}
	}

	if sp.ProbeTopK > 0 {
		probed, err := probeFFT[C](cfg, n, base, sp, totals)
		if err != nil {
			return nil, err
		}
		winner, ok := Select(probed, sp.Budget)
		if !ok {
			return nil, fmt.Errorf("tune: no candidate within budget %g", sp.Budget)
		}
		for si, st := range stages {
			cell.Stages = append(cell.Stages, choiceRow(st.label, winner, perStage[si], len(cands)))
		}
		return cell, nil
	}

	for si, st := range stages {
		w, ok := Select(perStage[si], sp.Budget)
		if !ok {
			return nil, fmt.Errorf("tune: no candidate within budget %g", sp.Budget)
		}
		cell.Stages = append(cell.Stages, choiceRow(st.label, w, perStage[si], len(cands)))
	}
	return cell, nil
}

// probeFFT refines the top-K admissible whole-pipeline candidates with
// real (seeded, deterministic) simulation runs of the full transform,
// one uniform configuration per candidate. The returned slice carries
// Probed on the refined entries; Select then compares probes against
// probes and falls back to predictions for the rest.
func probeFFT[C fft.Complex](cfg netsim.Config, n [3]int, base core.Options, sp Space, totals []Scored) ([]Scored, error) {
	// Deterministic top-K: repeated Select over the shrinking remainder.
	remaining := make([]Scored, 0, len(totals))
	for _, s := range totals {
		if admissible(s.Candidate, sp.Budget) {
			remaining = append(remaining, s)
		}
	}
	if len(remaining) == 0 {
		return nil, fmt.Errorf("tune: no candidate within budget %g", sp.Budget)
	}
	k := sp.ProbeTopK
	if k > len(remaining) {
		k = len(remaining)
	}
	out := make([]Scored, 0, len(totals))
	for i := 0; i < k; i++ {
		best, _ := Select(remaining, sp.Budget)
		next := remaining[:0]
		for _, s := range remaining {
			if s.Candidate != best.Candidate {
				next = append(next, s)
			}
		}
		remaining = next
		opts := candidateOptions(base, best.Candidate)
		res := core.MeasureWith[C](nil, cfg, n, opts, sp.ProbeIters, false)
		best.Probed = res.ForwardTime
		out = append(out, best)
	}
	return append(out, remaining...), nil
}

// candidateOptions maps a candidate onto fixed plan options over base.
func candidateOptions(base core.Options, cand Candidate) core.Options {
	opts := base
	opts.Tune = nil
	opts.Method = cand.Method
	if cand.Chunks > 0 {
		opts.Chunks = cand.Chunks
	}
	switch cand.Algo {
	case TwoSided:
		opts.Backend = core.BackendAlltoallv
	case Bruck:
		opts.Backend = core.BackendBruck
	case OSC:
		opts.Backend = core.BackendOSC
	case CompressedOSC:
		opts.Backend = core.BackendCompressed
	}
	return opts
}

// choiceRow serializes one stage's winner, looking its per-stage
// prediction up in the stage's scored slate.
func choiceRow(label string, winner Scored, slate []Scored, candidates int) Choice {
	pred := winner.Predicted
	for _, s := range slate {
		if s.Candidate == winner.Candidate {
			pred = s.Predicted
			break
		}
	}
	ch := Choice{
		Label: label, Algo: string(winner.Algo),
		PredictedS: pred, ProbedS: winner.Probed, Candidates: candidates,
	}
	if winner.Algo == CompressedOSC {
		ch.Chunks = winner.Chunks
		ch.Method = winner.Method.Name()
	}
	return ch
}

// fftStage is one forward reshape's traffic matrix.
type fftStage struct {
	label string
	bytes func(dst, src int) int
}

// fftStages mirrors the plan's reshape decomposition (and
// core.PredictExchanges's): the traffic of each forward stage on the
// SimScale-enlarged grid, precomputed into a dense matrix so candidate
// scoring is O(p²) per candidate without box arithmetic.
func fftStages(cfg netsim.Config, n [3]int, base core.Options, elem int) []fftStage {
	p := cfg.Ranks()
	s := base.SimScale
	if s < 1 {
		s = 1
	}
	ns := [3]int{s * n[0], s * n[1], s * n[2]}
	var boxes [5][]grid.Box
	boxes[0] = grid.Bricks(ns, grid.Factor3(p))
	boxes[1] = grid.Pencils(ns, 0, p)
	boxes[2] = grid.Pencils(ns, 1, p)
	boxes[3] = grid.Pencils(ns, 2, p)
	boxes[4] = boxes[0]

	type pair struct{ from, to int }
	pairs := []pair{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if base.PencilIO {
		pairs = []pair{{1, 2}, {2, 3}}
	}
	out := make([]fftStage, 0, len(pairs))
	for si, st := range pairs {
		from, to := boxes[st.from], boxes[st.to]
		m := make([]int, p*p)
		for src := 0; src < p; src++ {
			for dst := 0; dst < p; dst++ {
				m[src*p+dst] = elem * grid.Intersect(from[src], to[dst]).Count()
			}
		}
		out = append(out, fftStage{
			label: "fwd" + strconv.Itoa(si),
			bytes: func(dst, src int) int { return m[src*p+dst] },
		})
	}
	return out
}

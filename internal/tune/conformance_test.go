package tune

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/mpi"
	"repro/internal/netsim"
	recov "repro/internal/recover"
)

func exchangeBandwidth(cfg netsim.Config, spec exchange.Spec, msg int) float64 {
	return exchange.NodeBandwidthSpec(nil, cfg, spec, msg, 1)
}

// conformance cells: seeded (machine × count × precision) grid. Each
// cell demands that the autotuned run is bit-identical — outputs and
// virtual times — to the fixed-config run of the winner it selected,
// under both engines and under fault injection with recovery.
type confCell struct {
	name   string
	nodes  int
	budget float64
	fp32   bool
}

var confCells = []confCell{
	{"summit1-lossless", 1, 0, false},
	{"summit1-budget1e-3", 1, 1e-3, false},
	{"summit2-budget1e-3", 2, 1e-3, false},
	{"summit2-fp32", 2, 0, true},
}

// confSpace keeps probe cost low while forcing a uniform winner across
// stages (FixedOptions needs stage agreement, which the probe pass
// guarantees by construction).
func confSpace(budget float64) Space {
	return Space{Budget: budget, Chunks: []int{2, 4}, ProbeTopK: 1}
}

// fftRun is the bit-comparable signature of one forward transform:
// every rank's output spectrum and final virtual time.
type fftRun[C fft.Complex] struct {
	spectra [][]C
	times   []float64
	stats   netsim.Stats
}

func runForward[C fft.Complex](cfg netsim.Config, n [3]int, opts core.Options) fftRun[C] {
	out := fftRun[C]{
		spectra: make([][]C, cfg.Ranks()),
		times:   make([]float64, cfg.Ranks()),
	}
	res := mpi.Run(cfg, func(c *mpi.Comm) {
		pl := core.NewPlan[C](c, n, opts)
		in := make([]C, pl.InBox().Count())
		core.FillBox(in, pl.InBox(), pl.InOrder(), 1)
		spec := pl.Forward(in)
		out.spectra[c.Rank()] = append([]C(nil), spec...)
		out.times[c.Rank()] = c.Now()
	})
	out.stats = res.Stats
	return out
}

func checkRunsEqual[C fft.Complex](t *testing.T, what string, a, b fftRun[C]) {
	t.Helper()
	if !reflect.DeepEqual(a.times, b.times) {
		t.Errorf("%s: virtual times differ: %v vs %v", what, a.times, b.times)
	}
	if a.stats != b.stats {
		t.Errorf("%s: stats differ: %+v vs %+v", what, a.stats, b.stats)
	}
	for r := range a.spectra {
		if !reflect.DeepEqual(a.spectra[r], b.spectra[r]) {
			t.Errorf("%s: rank %d output spectrum differs", what, r)
		}
	}
}

func tuneCell[C fft.Complex](t *testing.T, cfg netsim.Config, n [3]int, base core.Options, sp Space) *Cell {
	t.Helper()
	cell, err := FFT[C](cfg, n, base, sp)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

// conformance runs one cell's differential check for one precision.
func conformance[C fft.Complex](t *testing.T, cc confCell) {
	n := [3]int{16, 16, 16}
	base := core.Options{}
	sp := confSpace(cc.budget)

	cfg := netsim.Summit(cc.nodes)
	cell := tuneCell[C](t, cfg, n, base, sp)
	fixed, ok := cell.FixedOptions(base)
	if !ok {
		t.Fatalf("probed cell not uniform: %+v", cell.Stages)
	}
	tuned := base
	tuned.Tune = cell

	for _, parallel := range []bool{false, true} {
		run := cfg
		run.Parallel = parallel

		// The plan itself must be engine-independent: re-tuning under
		// this engine yields byte-identical canonical encodings.
		reCell := tuneCell[C](t, run, n, base, sp)
		pa, err := (&Plan{Schema: PlanSchema, Budget: cc.budget, Cells: []Cell{*cell}}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		pb, err := (&Plan{Schema: PlanSchema, Budget: cc.budget, Cells: []Cell{*reCell}}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatalf("parallel=%v: plan not bit-stable across engines:\n%s\nvs\n%s", parallel, pa, pb)
		}

		// Fault-free and fault-injected transports: the tuned run must be
		// indistinguishable from the selected fixed configuration.
		for _, faults := range []int64{0, 12345} {
			fcfg := run
			if faults != 0 {
				fcfg.Faults = netsim.RandomPlan(faults)
			}
			a := runForward[C](fcfg, n, tuned)
			b := runForward[C](fcfg, n, fixed)
			checkRunsEqual(t, cc.name, a, b)
		}
	}
}

func TestConformanceGrid(t *testing.T) {
	for _, cc := range confCells {
		t.Run(cc.name, func(t *testing.T) {
			if cc.fp32 {
				conformance[complex64](t, cc)
			} else {
				conformance[complex128](t, cc)
			}
		})
	}
}

// TestConformanceRecoverable: under the crash-recovery runtime (the
// -recover path: seeded crashes, rollback, respawn) the tuned run's
// measured results still match the fixed winner bit for bit.
func TestConformanceRecoverable(t *testing.T) {
	n := [3]int{16, 16, 16}
	base := core.Options{}
	cfg := netsim.Summit(1)
	cell := tuneCell[complex128](t, cfg, n, base, confSpace(1e-3))
	fixed, ok := cell.FixedOptions(base)
	if !ok {
		t.Fatalf("probed cell not uniform: %+v", cell.Stages)
	}
	tuned := base
	tuned.Tune = cell

	const seed = 99
	run := cfg
	run.Faults = netsim.RandomPlan(seed)
	pol := recov.Policy{Seed: seed}
	ra, oa, err := core.MeasureRecoverable[complex128](nil, run, n, tuned, 1, true, pol)
	if err != nil {
		t.Fatal(err)
	}
	rb, ob, err := core.MeasureRecoverable[complex128](nil, run, n, fixed, 1, true, pol)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ForwardTime != rb.ForwardTime || ra.Stats != rb.Stats {
		t.Errorf("recoverable runs differ: %v/%+v vs %v/%+v", ra.ForwardTime, ra.Stats, rb.ForwardTime, rb.Stats)
	}
	if ra.RelErr != rb.RelErr && !(math.IsNaN(ra.RelErr) && math.IsNaN(rb.RelErr)) {
		t.Errorf("RelErr differs: %v vs %v", ra.RelErr, rb.RelErr)
	}
	if len(oa.Recoveries) != len(ob.Recoveries) {
		t.Errorf("recovery timelines differ: %d vs %d", len(oa.Recoveries), len(ob.Recoveries))
	}
}

// TestTunePlanIgnoresFaultsAndObservers: the tuner strips the machine's
// run-mode fields, so a plan computed under fault injection is the plan
// computed without it.
func TestTunePlanIgnoresFaultsAndObservers(t *testing.T) {
	n := [3]int{16, 16, 16}
	cfg := netsim.Summit(1)
	clean := tuneCell[complex128](t, cfg, n, core.Options{}, confSpace(1e-3))
	cfg.Faults = netsim.RandomPlan(777)
	faulty := tuneCell[complex128](t, cfg, n, core.Options{}, confSpace(1e-3))
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("plan depends on the fault plan:\n%+v\nvs\n%+v", clean, faulty)
	}
}

// TestAlltoallConformance: the tuned bandwidth-harness cell replays to
// the same bandwidth as the fixed spec it names, both engines.
func TestAlltoallConformance(t *testing.T) {
	cfg := netsim.Summit(2)
	const msg = 4096
	cell, err := Alltoall(cfg, msg, Space{Budget: 1e-3, Chunks: []int{2, 4}, ProbeTopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cell.BenchSpec()
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		run := cfg
		run.Parallel = parallel
		a := exchangeBandwidth(run, spec, msg)
		b := exchangeBandwidth(cfg, spec, msg)
		if a != b {
			t.Errorf("parallel=%v: tuned bandwidth %v != sequential %v", parallel, a, b)
		}
	}
}

package tune

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/netsim"
)

// randomScored builds a seeded random slate over the default space,
// optionally probing a random subset.
func randomScored(rng *rand.Rand, probe bool) []Scored {
	cands := Space{}.Candidates()
	out := make([]Scored, len(cands))
	for i, c := range cands {
		out[i] = Scored{Candidate: c, Predicted: 1e-6 + rng.Float64()*1e-3}
		if probe && rng.Intn(3) == 0 {
			out[i].Probed = 1e-6 + rng.Float64()*1e-3
		}
	}
	return out
}

// TestSelectPredictedIsMinimal: without probes, the winner's predicted
// time is ≤ every admissible candidate's.
func TestSelectPredictedIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		budget := []float64{0, 1e-7, 1e-3, 1}[rng.Intn(4)]
		cands := randomScored(rng, false)
		best, ok := Select(cands, budget)
		if !ok {
			t.Fatalf("trial %d: lossless candidates always admissible", trial)
		}
		for _, c := range cands {
			if admissible(c.Candidate, budget) && c.Predicted < best.Predicted {
				t.Fatalf("trial %d: %v (%.3g) beats winner %v (%.3g)",
					trial, c.Candidate, c.Predicted, best.Candidate, best.Predicted)
			}
		}
	}
}

// TestSelectRespectsBudget: a candidate whose method's error bound
// exceeds the budget is never selected, no matter its score.
func TestSelectRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		budget := []float64{0, 6.0e-8, 4.9e-4, 3.9e-3}[rng.Intn(4)]
		cands := randomScored(rng, true)
		// Make every lossy candidate maximally attractive.
		for i := range cands {
			if cands[i].Method != nil {
				cands[i].Predicted = 1e-12
			}
		}
		best, ok := Select(cands, budget)
		if !ok {
			t.Fatalf("trial %d: no winner", trial)
		}
		if best.Method != nil && best.Method.ErrorBound() > budget {
			t.Fatalf("trial %d: winner %v violates budget %g (bound %g)",
				trial, best.Candidate, budget, best.Method.ErrorBound())
		}
	}
}

// TestSelectOrderIndependent: the winner is invariant under any
// permutation of the slate, including exact-tie slates.
func TestSelectOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		cands := randomScored(rng, true)
		// Force score collisions so the tie-break actually runs.
		for i := range cands {
			cands[i].Predicted = []float64{1e-4, 2e-4}[i%2]
			if cands[i].Probed > 0 {
				cands[i].Probed = 1.5e-4
			}
		}
		budget := 1e-3
		want, ok := Select(cands, budget)
		if !ok {
			t.Fatal("no winner")
		}
		for shuffle := 0; shuffle < 10; shuffle++ {
			perm := append([]Scored(nil), cands...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			got, ok := Select(perm, budget)
			if !ok || got != want {
				t.Fatalf("trial %d shuffle %d: winner changed: %+v vs %+v", trial, shuffle, got, want)
			}
		}
	}
}

// TestSelectProbedBeatsPredictedTies: when two candidates both carry
// probes, the probe — not the prediction — decides.
func TestSelectProbedBeatsPredictedTies(t *testing.T) {
	a := Scored{Candidate: Candidate{Algo: TwoSided}, Predicted: 1e-4, Probed: 5e-4}
	b := Scored{Candidate: Candidate{Algo: OSC}, Predicted: 2e-4, Probed: 1e-4}
	best, ok := Select([]Scored{a, b}, 0)
	if !ok || best.Algo != OSC {
		t.Fatalf("probe did not override prediction: %+v", best)
	}
}

// TestSelectNoAdmissible: a slate of budget violators selects nothing.
func TestSelectNoAdmissible(t *testing.T) {
	cands := []Scored{
		{Candidate: Candidate{Algo: CompressedOSC, Chunks: 4, Method: compress.Cast16{}}, Predicted: 1e-6},
	}
	if _, ok := Select(cands, 1e-9); ok {
		t.Fatal("selected a budget violator")
	}
}

// TestCandidatesLossless: the lossless space holds no compressed
// candidates (the FP32 pipeline's restriction).
func TestCandidatesLossless(t *testing.T) {
	for _, c := range (Space{Lossless: true}).Candidates() {
		if c.Method != nil || c.Algo == CompressedOSC {
			t.Fatalf("lossless space holds %v", c)
		}
	}
}

// TestPredictPositiveFinite: every candidate of the default space gets
// a positive, finite prediction on a real machine and shape.
func TestPredictPositiveFinite(t *testing.T) {
	cfg := netsim.Summit(2)
	bytes := func(dst, src int) int { return 4096 }
	for _, c := range (Space{}).Candidates() {
		v := Predict(cfg, gpu.V100(), bytes, c)
		if !validScore(v) || v <= 0 {
			t.Errorf("candidate %v predicts %v", c, v)
		}
	}
}

// TestPredictChunkingTradeoff: with per-chunk kernel-launch floors, an
// absurd chunk count must never predict faster than a moderate one.
func TestPredictChunkingTradeoff(t *testing.T) {
	cfg := netsim.Summit(2)
	bytes := func(dst, src int) int { return 64 * 1024 }
	mk := func(chunks int) Candidate {
		return Candidate{Algo: CompressedOSC, Chunks: chunks, Method: compress.Cast32{}}
	}
	moderate := Predict(cfg, gpu.V100(), bytes, mk(4))
	absurd := Predict(cfg, gpu.V100(), bytes, mk(4096))
	if absurd <= moderate {
		t.Errorf("4096 chunks (%.3g) predicted no slower than 4 (%.3g)", absurd, moderate)
	}
}

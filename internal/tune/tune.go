// Package tune closes the loop between the roofline cost model and the
// exchange configuration: given the netsim machine model and an
// exchange shape, it enumerates candidate configurations (algorithm,
// pipeline depth, compression method subject to an error budget), ranks
// them with a generalized roofline predictor, optionally refines the
// leaders with short in-simulation probe runs, and emits a serializable
// versioned plan that core.Plan consumes so each reshape runs its
// selected winner (docs/TUNING.md).
//
// Determinism contract: tuning happens on the host, outside the
// simulation, from inputs that are identical on every rank (the machine
// model and the shape), so the resulting plan is collectively identical
// by construction. Probe runs are full deterministic simulations, so
// plans — and the runs that consume them — are bit-stable across the
// sequential and parallel engines. Selection breaks ties by a total
// order on candidates, never by enumeration order.
package tune

import (
	"fmt"
	"math"

	"repro/internal/compress"
)

// Algorithm names the exchange algorithms the tuner chooses between
// (the serialized vocabulary of a plan's "algo" fields).
type Algorithm string

const (
	// TwoSided is the classical MPI_Alltoallv.
	TwoSided Algorithm = "twosided"
	// Bruck is the log-round aggregated algorithm (small messages).
	Bruck Algorithm = "bruck"
	// OSC is the one-sided ring, uncompressed.
	OSC Algorithm = "osc"
	// CompressedOSC is the one-sided ring with lossy compression
	// pipelined into the transfer (the paper's contribution).
	CompressedOSC Algorithm = "compressed-osc"
)

// order returns the algorithm's rank in the deterministic tie-break
// (simpler transports win ties), or -1 for unknown algorithms.
func (a Algorithm) order() int {
	switch a {
	case TwoSided:
		return 0
	case Bruck:
		return 1
	case OSC:
		return 2
	case CompressedOSC:
		return 3
	}
	return -1
}

func (a Algorithm) valid() bool { return a.order() >= 0 }

// Candidate is one point of the tuner's search space.
type Candidate struct {
	Algo Algorithm
	// Chunks is the §V-B pipeline depth; CompressedOSC only (0 keeps
	// the consumer's default).
	Chunks int
	// Method is the compression method; nil for the lossless algorithms.
	Method compress.Method
}

func (c Candidate) String() string {
	if c.Algo != CompressedOSC {
		return string(c.Algo)
	}
	name := ""
	if c.Method != nil {
		name = c.Method.Name()
	}
	return fmt.Sprintf("%s/%s/c%d", c.Algo, name, c.Chunks)
}

// key is the candidate's position in the deterministic tie-break: a
// tuple compared field by field after the predicted time.
func (c Candidate) key() (int, string, int) {
	name := ""
	if c.Method != nil {
		name = c.Method.Name()
	}
	return c.Algo.order(), name, c.Chunks
}

// Scored pairs a candidate with its predicted (and, when probed,
// measured) exchange time in seconds.
type Scored struct {
	Candidate
	Predicted float64
	// Probed is the measured probe-run time; 0 when the candidate was
	// not probed.
	Probed float64
}

// Space is the candidate space of one tuning problem.
type Space struct {
	// Budget is the per-stage relative error budget (the caller-supplied
	// bound a compression method's ErrorBound must not exceed, in the
	// sense of core.StageBounds). 0 admits lossless candidates only.
	Budget float64
	// Chunks are the candidate pipeline depths for CompressedOSC.
	// Defaults to {1, 2, 4, 8, 16}.
	Chunks []int
	// Methods are the candidate compression methods. Defaults to the
	// casts and two Trim variants; the Budget filter prunes them.
	Methods []compress.Method
	// Lossless restricts the space to the lossless algorithms regardless
	// of Budget (set for FP32 pipelines, which the compressed backends
	// reject).
	Lossless bool
	// ProbeTopK refines the best K predicted candidates with short
	// in-simulation probe runs and selects by measured time. 0 trusts
	// the predictor alone.
	ProbeTopK int
	// ProbeIters is the measured iterations per probe run (default 1).
	ProbeIters int
}

func (s Space) withDefaults() Space {
	if s.Chunks == nil {
		s.Chunks = []int{1, 2, 4, 8, 16}
	}
	if s.Methods == nil {
		s.Methods = []compress.Method{
			compress.Cast32{}, compress.Cast16{}, compress.CastBF16{},
			compress.Trim{M: 20}, compress.Trim{M: 12},
		}
	}
	if s.ProbeIters == 0 {
		s.ProbeIters = 1
	}
	return s
}

// Candidates enumerates the space in its canonical order. The order
// carries no semantic weight — Select is order-independent — but a
// fixed enumeration keeps candidate counts stable in artifacts.
func (s Space) Candidates() []Candidate {
	s = s.withDefaults()
	out := []Candidate{{Algo: TwoSided}, {Algo: Bruck}, {Algo: OSC}}
	if s.Lossless {
		return out
	}
	for _, m := range s.Methods {
		for _, ch := range s.Chunks {
			out = append(out, Candidate{Algo: CompressedOSC, Chunks: ch, Method: m})
		}
	}
	return out
}

// admissible reports whether a candidate respects the error budget: a
// lossy method's bound must not exceed it.
func admissible(c Candidate, budget float64) bool {
	if c.Method == nil {
		return true
	}
	return c.Method.ErrorBound() <= budget
}

// Select returns the admissible candidate with the lowest predicted
// time (measured probe time when present — a probed candidate is
// compared by Probed against other probed candidates' Probed). Ties
// break by the candidate's total order (algorithm, method name,
// chunks), so the result is invariant under permutations of cands.
// ok is false when no candidate respects the budget.
func Select(cands []Scored, budget float64) (best Scored, ok bool) {
	for _, c := range cands {
		if !admissible(c.Candidate, budget) {
			continue
		}
		if !ok || less(c, best) {
			best, ok = c, true
		}
	}
	return best, ok
}

// less orders scored candidates: primary score first (probed when both
// carry probes, predicted otherwise), then the deterministic key.
func less(a, b Scored) bool {
	sa, sb := a.Predicted, b.Predicted
	if a.Probed > 0 && b.Probed > 0 {
		sa, sb = a.Probed, b.Probed
	}
	if sa != sb {
		return sa < sb
	}
	ao, an, ac := a.key()
	bo, bn, bc := b.key()
	if ao != bo {
		return ao < bo
	}
	if an != bn {
		return an < bn
	}
	return ac < bc
}

// validScore rejects the non-finite predictions a broken model could
// produce; used by plan validation.
func validScore(v float64) bool { return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v) }

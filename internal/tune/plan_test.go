package tune

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
)

func samplePlan() *Plan {
	return &Plan{
		Schema: PlanSchema,
		Budget: 1e-3,
		Cells: []Cell{{
			Machine: Fingerprint(netsim.Summit(2)),
			Shape:   FFTShape([3]int{32, 32, 32}, 2, false, false),
			Stages: []Choice{
				{Label: "fwd0", Algo: "compressed-osc", Chunks: 4, Method: "FP64->FP16", PredictedS: 1e-5, ProbedS: 2e-5, Candidates: 28},
				{Label: "fwd1", Algo: "osc", PredictedS: 2e-5, Candidates: 28},
				{Label: "fwd2", Algo: "twosided", PredictedS: 3e-5, Candidates: 28},
				{Label: "fwd3", Algo: "bruck", PredictedS: 4e-5, Candidates: 28},
			},
		}},
	}
}

func TestPlanRoundTripByteIdentical(t *testing.T) {
	p := samplePlan()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("save→load not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	valid, err := samplePlan().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated", valid[:len(valid)/2], ErrPlanSyntax},
		{"garbage", []byte("{not json"), ErrPlanSyntax},
		{"empty", nil, ErrPlanSyntax},
		{"missing-schema", []byte(`{"budget":1,"cells":[]}`), ErrPlanSchema},
		{"future-schema", []byte(strings.Replace(string(valid), `"schema": 1`, `"schema": 99`, 1)), ErrPlanSchema},
		{"not-an-object", []byte(`"plan"`), ErrPlanInvalid},
		{"unknown-field", []byte(`{"schema":1,"budget":1,"cells":[],"extra":true}`), ErrPlanInvalid},
		// json.Valid rejects multi-document input outright, so trailing
		// data reads as a syntax-level corruption.
		{"trailing-data", append(append([]byte(nil), valid...), []byte("{}")...), ErrPlanSyntax},
		{"no-cells-ok", []byte(`{"schema":1,"budget":1,"cells":[]}`), nil},
		{"bad-algo", []byte(`{"schema":1,"budget":1,"cells":[{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"warp","predicted_s":1}]}]}`), ErrPlanInvalid},
		{"bad-method", []byte(`{"schema":1,"budget":1,"cells":[{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"compressed-osc","method":"ZFP","predicted_s":1}]}]}`), ErrPlanInvalid},
		{"budget-violation", []byte(`{"schema":1,"budget":1e-9,"cells":[{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"compressed-osc","method":"FP64->FP16","predicted_s":1}]}]}`), ErrPlanInvalid},
		{"duplicate-cell", []byte(`{"schema":1,"budget":1,"cells":[{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"osc","predicted_s":1}]},{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"osc","predicted_s":1}]}]}`), ErrPlanInvalid},
		{"duplicate-stage", []byte(`{"schema":1,"budget":1,"cells":[{"machine":"m","shape":"s","stages":[{"label":"fwd0","algo":"osc","predicted_s":1},{"label":"fwd0","algo":"osc","predicted_s":1}]}]}`), ErrPlanInvalid},
		{"negative-budget", []byte(`{"schema":1,"budget":-1,"cells":[]}`), ErrPlanInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestMethodByNameRoundTrip(t *testing.T) {
	methods := []compress.Method{
		compress.None{}, compress.Cast32{}, compress.Cast16{},
		compress.CastBF16{}, compress.Trim{M: 20}, compress.Trim{M: 12},
	}
	for _, m := range methods {
		got, err := MethodByName(m.Name())
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("round trip %s -> %s", m.Name(), got.Name())
		}
	}
	for _, bad := range []string{"", "ZFP", "Trim(x)", "Trim(-1)", "trim(3)"} {
		if _, err := MethodByName(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestCellChoiceBackwardMapping: bwdS inherits the winner of its mirror
// stage fwd(last−S); unknown labels decline.
func TestCellChoiceBackwardMapping(t *testing.T) {
	cell := &samplePlan().Cells[0]
	fwd0, ok := cell.Choice("fwd0")
	if !ok || fwd0.Backend != core.BackendCompressed {
		t.Fatalf("fwd0 = %+v, %v", fwd0, ok)
	}
	bwd3, ok := cell.Choice("bwd3")
	if !ok || bwd3 != fwd0 {
		t.Fatalf("bwd3 = %+v, want fwd0's choice %+v", bwd3, fwd0)
	}
	bwd0, ok := cell.Choice("bwd0")
	if !ok || bwd0.Backend != core.BackendBruck {
		t.Fatalf("bwd0 = %+v, %v", bwd0, ok)
	}
	for _, label := range []string{"fwd4", "bwd4", "bwd-1", "bwdx", "io", ""} {
		if _, ok := cell.Choice(label); ok {
			t.Fatalf("label %q resolved", label)
		}
	}
}

func TestFixedOptionsUniformOnly(t *testing.T) {
	uniform := &Cell{Machine: "m", Shape: "s", Stages: []Choice{
		{Label: "fwd0", Algo: "compressed-osc", Chunks: 8, Method: "FP64->FP32", PredictedS: 1},
		{Label: "fwd1", Algo: "compressed-osc", Chunks: 8, Method: "FP64->FP32", PredictedS: 2},
	}}
	opts, ok := uniform.FixedOptions(core.Options{SimScale: 2})
	if !ok || opts.Backend != core.BackendCompressed || opts.Chunks != 8 || opts.SimScale != 2 {
		t.Fatalf("uniform cell: %+v, %v", opts, ok)
	}
	if opts.Method == nil || opts.Method.Name() != "FP64->FP32" {
		t.Fatalf("method not mapped: %+v", opts.Method)
	}
	mixed := &samplePlan().Cells[0]
	if _, ok := mixed.FixedOptions(core.Options{}); ok {
		t.Fatal("mixed cell reported uniform")
	}
	empty := &Cell{Machine: "m", Shape: "s"}
	if _, ok := empty.FixedOptions(core.Options{}); ok {
		t.Fatal("empty cell reported uniform")
	}
}

// TestFingerprintIgnoresRunMode: the machine key covers performance
// parameters only, so engine choice and fault plans cannot fork plans.
func TestFingerprintIgnoresRunMode(t *testing.T) {
	a := netsim.Summit(2)
	b := a
	b.Parallel = true
	b.Faults = netsim.RandomPlan(42)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on run mode")
	}
	c := a
	c.InterBW *= 2
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("fingerprint misses bandwidth change")
	}
}

// FuzzLoadTunePlan holds Decode to its contract on hostile input: never
// panic, reject with exactly one of the typed sentinels, and accept
// only plans whose canonical re-encoding decodes to the same bytes.
func FuzzLoadTunePlan(f *testing.F) {
	valid, err := samplePlan().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte(`{"schema":99,"budget":1,"cells":[]}`))
	f.Add([]byte(`{"schema":1,"budget":1,"cells":[]}`))
	f.Add([]byte(`{"schema":1,"budget":1,"cells":[],"x":1}`))
	f.Add([]byte(`{"schema":1,"budget":"a","cells":[]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrPlanSyntax) && !errors.Is(err, ErrPlanSchema) && !errors.Is(err, ErrPlanInvalid) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan does not re-encode: %v", err)
		}
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical round trip unstable:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

package tune

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/netsim"
)

// PlanSchema versions the serialized plan layout. Loaders reject other
// schemas (ErrPlanSchema): a plan is a record of decisions for one
// exact tuner, not a portable format.
const PlanSchema = 1

// Typed rejections of Decode/Load. Callers distinguish them with
// errors.Is; every failure mode wraps exactly one of these.
var (
	// ErrPlanSyntax: the file is not valid JSON (corrupt, truncated).
	ErrPlanSyntax = errors.New("tune: plan is not valid JSON")
	// ErrPlanSchema: valid JSON, but a schema this loader does not speak.
	ErrPlanSchema = errors.New("tune: unsupported plan schema")
	// ErrPlanInvalid: well-formed but semantically unusable (unknown
	// algorithm or method, budget violation, duplicate cells, ...).
	ErrPlanInvalid = errors.New("tune: invalid plan")
)

// Plan is the serializable output of the tuner: one Cell per tuned
// (machine, shape) pair, all under one error budget.
type Plan struct {
	Schema int     `json:"schema"`
	Budget float64 `json:"budget"`
	Cells  []Cell  `json:"cells"`
}

// NewPlan returns an empty plan at the current schema.
func NewPlan(budget float64) *Plan {
	return &Plan{Schema: PlanSchema, Budget: budget}
}

// Cell is the tuner's decision for one machine and exchange shape: one
// Choice per stage. It implements core.TunePlan, so it plugs straight
// into core.Options.Tune.
type Cell struct {
	// Machine is the machine-model fingerprint (Fingerprint) and Shape
	// the exchange-shape key (FFTShape / AlltoallShape) this cell was
	// tuned for.
	Machine string   `json:"machine"`
	Shape   string   `json:"shape"`
	Stages  []Choice `json:"stages"`
}

// Choice is one stage's selected winner plus the evidence behind it.
type Choice struct {
	// Label is the stage's metric label (fwd0..3, or "alltoall" for the
	// uniform-exchange cells).
	Label string `json:"label"`
	// Algo, Chunks, Method name the winning candidate (Method and
	// Chunks only for compressed-osc).
	Algo   string `json:"algo"`
	Chunks int    `json:"chunks,omitempty"`
	Method string `json:"method,omitempty"`
	// PredictedS is the winner's roofline prediction; ProbedS its probe
	// measurement (0 when selection ran on the predictor alone).
	PredictedS float64 `json:"predicted_s"`
	ProbedS    float64 `json:"probed_s,omitempty"`
	// Candidates is the size of the enumerated space the winner beat.
	Candidates int `json:"candidates,omitempty"`
}

// MethodByName resolves a serialized compression-method name ("FP64",
// "FP64->FP32", "FP64->FP16", "FP64->BF16", "Trim(M)").
func MethodByName(name string) (compress.Method, error) {
	switch name {
	case compress.None{}.Name():
		return compress.None{}, nil
	case compress.Cast32{}.Name():
		return compress.Cast32{}, nil
	case compress.Cast16{}.Name():
		return compress.Cast16{}, nil
	case compress.CastBF16{}.Name():
		return compress.CastBF16{}, nil
	}
	var m uint
	if n, err := fmt.Sscanf(name, "Trim(%d)", &m); n == 1 && err == nil && name == (compress.Trim{M: m}).Name() {
		return compress.Trim{M: m}, nil
	}
	return nil, fmt.Errorf("unknown compression method %q", name)
}

// exchangeChoice maps the serialized choice onto core's backend space.
func (ch Choice) exchangeChoice() (core.ExchangeChoice, error) {
	out := core.ExchangeChoice{Chunks: ch.Chunks}
	switch Algorithm(ch.Algo) {
	case TwoSided:
		out.Backend = core.BackendAlltoallv
	case Bruck:
		out.Backend = core.BackendBruck
	case OSC:
		out.Backend = core.BackendOSC
	case CompressedOSC:
		out.Backend = core.BackendCompressed
		m, err := MethodByName(ch.Method)
		if err != nil {
			return out, err
		}
		out.Method = m
	default:
		return out, fmt.Errorf("unknown algorithm %q", ch.Algo)
	}
	return out, nil
}

// Choice implements core.TunePlan: the resolved exchange configuration
// for a reshape label. Backward stages mirror their forward
// counterparts — bwdS re-runs the reshape fwd(last−S) in reverse, so it
// inherits that stage's winner. Unknown labels return ok == false (the
// plan's fixed options apply). The cell must have passed validation
// (Decode, or the tuner's own construction); an unparseable stage is a
// programming error and panics.
func (c *Cell) Choice(label string) (core.ExchangeChoice, bool) {
	want := label
	if rest, ok := strings.CutPrefix(label, "bwd"); ok {
		s, err := strconv.Atoi(rest)
		if err != nil || s < 0 || s >= len(c.Stages) {
			return core.ExchangeChoice{}, false
		}
		want = "fwd" + strconv.Itoa(len(c.Stages)-1-s)
	}
	for _, st := range c.Stages {
		if st.Label != want {
			continue
		}
		ec, err := st.exchangeChoice()
		if err != nil {
			panic("tune: unvalidated cell: " + err.Error())
		}
		return ec, true
	}
	return core.ExchangeChoice{}, false
}

// FixedOptions maps a uniform cell (every stage the same winner) back
// onto plain fixed core.Options — the reference configuration the
// differential conformance suite compares an autotuned run against.
// ok is false when the stages disagree or the cell is empty.
func (c *Cell) FixedOptions(base core.Options) (core.Options, bool) {
	if len(c.Stages) == 0 {
		return base, false
	}
	first := c.Stages[0]
	for _, st := range c.Stages[1:] {
		if st.Algo != first.Algo || st.Method != first.Method || st.Chunks != first.Chunks {
			return base, false
		}
	}
	ec, err := first.exchangeChoice()
	if err != nil {
		return base, false
	}
	out := base
	out.Tune = nil
	out.Backend = ec.Backend
	out.Method = ec.Method
	if ec.Chunks > 0 {
		out.Chunks = ec.Chunks
	}
	return out, true
}

// BenchSpec maps a uniform cell's winner onto the bandwidth harness's
// algorithm space (exchange.NodeBandwidthSpec).
func (c *Cell) BenchSpec() (exchange.Spec, error) {
	if len(c.Stages) == 0 {
		return exchange.Spec{}, fmt.Errorf("%w: empty cell", ErrPlanInvalid)
	}
	ch := c.Stages[0]
	switch Algorithm(ch.Algo) {
	case TwoSided:
		return exchange.Spec{Algo: exchange.AlgoLinear}, nil
	case Bruck:
		return exchange.Spec{Algo: exchange.AlgoBruck}, nil
	case OSC:
		return exchange.Spec{Algo: exchange.AlgoOSC}, nil
	case CompressedOSC:
		m, err := MethodByName(ch.Method)
		if err != nil {
			return exchange.Spec{}, fmt.Errorf("%w: %v", ErrPlanInvalid, err)
		}
		return exchange.Spec{Algo: exchange.AlgoOSCComp, Method: m, Chunks: ch.Chunks}, nil
	}
	return exchange.Spec{}, fmt.Errorf("%w: unknown algorithm %q", ErrPlanInvalid, ch.Algo)
}

// Fingerprint is the canonical machine-model key of a plan cell: every
// performance parameter of the config, none of the run-mode ones
// (engine choice, faults, observers) — a plan tuned sequentially is
// valid, and bit-identical, under the parallel engine and under fault
// injection.
func Fingerprint(cfg netsim.Config) string {
	return fmt.Sprintf("nodes=%d gpn=%d bw=%g/%g/%g lat=%g/%g send=%g proto=%g/%g rma=%g match=%g/%d",
		cfg.Nodes, cfg.GPUsPerNode, cfg.InterBW, cfg.IntraBW, cfg.LocalBW,
		cfg.InterLatency, cfg.IntraLatency, cfg.SendOverhead,
		cfg.ProtoOverheadInter, cfg.ProtoOverheadIntra, cfg.RMAOverhead,
		cfg.MatchCost, cfg.MatchQueueCap)
}

// FFTShape is the shape key of a 3-D FFT tuning cell.
func FFTShape(n [3]int, simScale int, fp32, pencil bool) string {
	if simScale < 1 {
		simScale = 1
	}
	prec := 64
	if fp32 {
		prec = 32
	}
	return fmt.Sprintf("fft=%dx%dx%d sim=%d prec=%d pencil=%v", n[0], n[1], n[2], simScale, prec, pencil)
}

// AlltoallShape is the shape key of a uniform all-to-all tuning cell.
func AlltoallShape(msgBytes int) string {
	return fmt.Sprintf("alltoall msg=%d", msgBytes)
}

// Cell returns the plan's cell for a machine fingerprint and shape key.
func (p *Plan) Cell(machine, shape string) (*Cell, bool) {
	for i := range p.Cells {
		if p.Cells[i].Machine == machine && p.Cells[i].Shape == shape {
			return &p.Cells[i], true
		}
	}
	return nil, false
}

// Encode serializes the plan in its canonical form: indented JSON with
// fixed field order and a trailing newline. Encoding is deterministic —
// equal plans encode to equal bytes — which is what makes the
// save→load round trip byte-stable and lets the conformance suite
// compare plans produced under different engines with bytes.Equal.
func (p *Plan) Encode() ([]byte, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlanInvalid, err)
	}
	return append(b, '\n'), nil
}

// Decode parses and validates a serialized plan. Failures are typed:
// ErrPlanSyntax for malformed JSON, ErrPlanSchema for a version skew,
// ErrPlanInvalid for everything semantically wrong. Decode never
// panics on hostile input (FuzzLoadTunePlan holds it to that).
func Decode(data []byte) (*Plan, error) {
	if !json.Valid(data) {
		return nil, fmt.Errorf("%w: malformed or truncated", ErrPlanSyntax)
	}
	// Peek at the schema first so a version skew reports as such even
	// if the rest of the layout drifted between versions.
	var head struct {
		Schema *int `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlanInvalid, err)
	}
	if head.Schema == nil {
		return nil, fmt.Errorf("%w: missing schema", ErrPlanSchema)
	}
	if *head.Schema != PlanSchema {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrPlanSchema, *head.Schema, PlanSchema)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlanInvalid, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after plan", ErrPlanInvalid)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrPlanInvalid, fmt.Sprintf(format, args...))
	}
	if p.Schema != PlanSchema {
		return fmt.Errorf("%w: got %d, want %d", ErrPlanSchema, p.Schema, PlanSchema)
	}
	if !validScore(p.Budget) {
		return fail("budget %v out of range", p.Budget)
	}
	seen := make(map[[2]string]bool, len(p.Cells))
	for ci := range p.Cells {
		c := &p.Cells[ci]
		if c.Machine == "" || c.Shape == "" {
			return fail("cell %d missing machine/shape key", ci)
		}
		k := [2]string{c.Machine, c.Shape}
		if seen[k] {
			return fail("duplicate cell %q %q", c.Machine, c.Shape)
		}
		seen[k] = true
		if len(c.Stages) == 0 {
			return fail("cell %q %q has no stages", c.Machine, c.Shape)
		}
		labels := make(map[string]bool, len(c.Stages))
		for _, st := range c.Stages {
			if st.Label == "" {
				return fail("cell %q %q: stage with empty label", c.Machine, c.Shape)
			}
			if labels[st.Label] {
				return fail("cell %q %q: duplicate stage %q", c.Machine, c.Shape, st.Label)
			}
			labels[st.Label] = true
			ec, err := st.exchangeChoice()
			if err != nil {
				return fail("stage %q: %v", st.Label, err)
			}
			if st.Chunks < 0 {
				return fail("stage %q: negative chunks", st.Label)
			}
			if !validScore(st.PredictedS) || !validScore(st.ProbedS) {
				return fail("stage %q: non-finite score", st.Label)
			}
			if st.Candidates < 0 {
				return fail("stage %q: negative candidate count", st.Label)
			}
			if ec.Method != nil && ec.Method.ErrorBound() > p.Budget {
				return fail("stage %q: method %s bound %.3g exceeds budget %.3g",
					st.Label, st.Method, ec.Method.ErrorBound(), p.Budget)
			}
		}
	}
	return nil
}

// Save writes the canonical encoding to path.
func (p *Plan) Save(path string) error {
	b, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads and Decodes a plan file.
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

package tune

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/gpu"
	"repro/internal/netsim"
)

// Alltoall tunes the uniform all-to-all of the bandwidth harness:
// msgBytes per process pair (self included, matching NodeBandwidth's
// accounting). The cell has a single "alltoall" stage; its winner maps
// onto the harness with Cell.BenchSpec. Probes (ProbeTopK > 0) run the
// harness itself and select by measured exchange time.
func Alltoall(cfg netsim.Config, msgBytes int, sp Space) (*Cell, error) {
	cfg = probeConfig(cfg)
	sp = sp.withDefaults()
	if msgBytes < 1 || cfg.Ranks() < 1 {
		return nil, fmt.Errorf("tune: degenerate all-to-all shape")
	}
	bytes := func(dst, src int) int { return msgBytes }
	cands := sp.Candidates()
	scored := make([]Scored, len(cands))
	for ci, cand := range cands {
		scored[ci] = Scored{Candidate: cand, Predicted: Predict(cfg, gpu.V100(), bytes, cand)}
	}

	winner, ok := Select(scored, sp.Budget)
	if !ok {
		return nil, fmt.Errorf("tune: no candidate within budget %g", sp.Budget)
	}
	if sp.ProbeTopK > 0 {
		probed, err := probeAlltoall(cfg, msgBytes, sp, scored)
		if err != nil {
			return nil, err
		}
		winner, _ = Select(probed, sp.Budget)
	}

	cell := &Cell{Machine: Fingerprint(cfg), Shape: AlltoallShape(msgBytes)}
	cell.Stages = append(cell.Stages, choiceRow("alltoall", winner, scored, len(cands)))
	return cell, nil
}

// probeAlltoall measures the top-K admissible candidates with the
// bandwidth harness (ProbeIters iterations) and scores them by seconds
// per exchange.
func probeAlltoall(cfg netsim.Config, msgBytes int, sp Space, scored []Scored) ([]Scored, error) {
	remaining := make([]Scored, 0, len(scored))
	for _, s := range scored {
		if admissible(s.Candidate, sp.Budget) {
			remaining = append(remaining, s)
		}
	}
	if len(remaining) == 0 {
		return nil, fmt.Errorf("tune: no candidate within budget %g", sp.Budget)
	}
	k := sp.ProbeTopK
	if k > len(remaining) {
		k = len(remaining)
	}
	p := cfg.Ranks()
	total := float64(sp.ProbeIters) * float64(p) * float64(p) * float64(msgBytes)
	out := make([]Scored, 0, len(scored))
	for i := 0; i < k; i++ {
		best, _ := Select(remaining, sp.Budget)
		next := remaining[:0]
		for _, s := range remaining {
			if s.Candidate != best.Candidate {
				next = append(next, s)
			}
		}
		remaining = next
		spec := candidateSpec(best.Candidate)
		bw := exchange.NodeBandwidthSpec(nil, cfg, spec, msgBytes, sp.ProbeIters)
		if bw > 0 {
			// NodeBandwidth divides total bytes by time and node count;
			// invert it back to seconds per measured exchange.
			best.Probed = total / (bw * float64(cfg.Nodes)) / float64(sp.ProbeIters)
		}
		out = append(out, best)
	}
	return append(out, remaining...), nil
}

// candidateSpec maps a candidate onto the bandwidth harness's Spec.
func candidateSpec(cand Candidate) exchange.Spec {
	switch cand.Algo {
	case Bruck:
		return exchange.Spec{Algo: exchange.AlgoBruck}
	case OSC:
		return exchange.Spec{Algo: exchange.AlgoOSC}
	case CompressedOSC:
		return exchange.Spec{Algo: exchange.AlgoOSCComp, Method: cand.Method, Chunks: cand.Chunks}
	}
	return exchange.Spec{Algo: exchange.AlgoLinear}
}

package grid

// Order is an axis permutation describing a local memory layout:
// Order[0] is the fastest-varying (stride-1) axis, Order[2] the slowest.
// The distributed FFT keeps each stage's transform axis first so 1-D
// FFTs run on contiguous vectors.
type Order [3]int

// Natural is the row-major layout with axis 0 (x) fastest.
var Natural = Order{0, 1, 2}

// ForAxis returns the layout that makes the given axis stride-1,
// keeping the remaining axes in increasing order.
func ForAxis(axis int) Order {
	o := otherAxes(axis)
	return Order{axis, o[0], o[1]}
}

// Index returns the offset of global coordinate c within box b laid out
// with order o.
func (o Order) Index(b Box, c [3]int) int {
	i0 := c[o[0]] - b.Lo[o[0]]
	i1 := c[o[1]] - b.Lo[o[1]]
	i2 := c[o[2]] - b.Lo[o[2]]
	return i0 + b.Size(o[0])*(i1+b.Size(o[1])*i2)
}

// Pack copies the elements of sub out of src (the data of srcBox laid
// out with srcOrder) into dst, contiguously, ordered by dstOrder (the
// receiver's layout). It returns the number of elements written.
func Pack[T any](src []T, srcBox Box, srcOrder Order, sub Box, dstOrder Order, dst []T) int {
	n := 0
	a0, a1, a2 := dstOrder[0], dstOrder[1], dstOrder[2]
	var c [3]int
	for i2 := sub.Lo[a2]; i2 < sub.Hi[a2]; i2++ {
		c[a2] = i2
		for i1 := sub.Lo[a1]; i1 < sub.Hi[a1]; i1++ {
			c[a1] = i1
			c[a0] = sub.Lo[a0]
			base := srcOrder.Index(srcBox, c)
			stride := strideOf(srcBox, srcOrder, a0)
			for i0 := 0; i0 < sub.Size(a0); i0++ {
				dst[n] = src[base+i0*stride]
				n++
			}
		}
	}
	return n
}

// Unpack scatters contiguous data (ordered by dstOrder, as produced by
// Pack with the same dstOrder) into dst, the storage of dstBox laid out
// with dstOrder. It returns the number of elements read.
func Unpack[T any](src []T, sub Box, dst []T, dstBox Box, dstOrder Order) int {
	n := 0
	a0, a1, a2 := dstOrder[0], dstOrder[1], dstOrder[2]
	var c [3]int
	for i2 := sub.Lo[a2]; i2 < sub.Hi[a2]; i2++ {
		c[a2] = i2
		for i1 := sub.Lo[a1]; i1 < sub.Hi[a1]; i1++ {
			c[a1] = i1
			c[a0] = sub.Lo[a0]
			base := dstOrder.Index(dstBox, c)
			// dstOrder[0] is stride-1 in dst by construction.
			copyN := sub.Size(a0)
			copy(dst[base:base+copyN], src[n:n+copyN])
			n += copyN
		}
	}
	return n
}

// strideOf returns the stride of axis within the layout (box, order).
func strideOf(b Box, o Order, axis int) int {
	stride := 1
	for i := 0; i < 3; i++ {
		if o[i] == axis {
			return stride
		}
		stride *= b.Size(o[i])
	}
	panic("grid: axis not in order")
}

// Transfer describes one peer's share of a reshape.
type Transfer struct {
	Rank   int // peer rank
	Sub    Box // the overlap region exchanged
	Offset int // element offset into the staging buffer
	Count  int // elements
}

// Plan holds the send and receive schedules of one reshape (from the
// inBoxes decomposition to the outBoxes decomposition) for rank me.
// Empty overlaps are omitted.
type Plan struct {
	Send []Transfer
	Recv []Transfer
	// SendTotal and RecvTotal are the staging buffer sizes in elements.
	SendTotal, RecvTotal int
}

// NewPlan computes the reshape plan for rank me between two
// decompositions of the same global grid.
func NewPlan(me int, inBoxes, outBoxes []Box) Plan {
	var pl Plan
	for r := range outBoxes {
		ov := Intersect(inBoxes[me], outBoxes[r])
		if !ov.Empty() {
			pl.Send = append(pl.Send, Transfer{Rank: r, Sub: ov, Offset: pl.SendTotal, Count: ov.Count()})
			pl.SendTotal += ov.Count()
		}
	}
	for r := range inBoxes {
		ov := Intersect(outBoxes[me], inBoxes[r])
		if !ov.Empty() {
			pl.Recv = append(pl.Recv, Transfer{Rank: r, Sub: ov, Offset: pl.RecvTotal, Count: ov.Count()})
			pl.RecvTotal += ov.Count()
		}
	}
	return pl
}

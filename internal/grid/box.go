// Package grid implements the domain-decomposition machinery of the
// distributed 3-D FFT: half-open index boxes, brick and pencil
// decompositions over process grids, the overlap computation that turns
// a pair of decompositions into an all-to-all-v plan (the reshape of
// Fig. 1), and packing/unpacking kernels that reorder axes so each 1-D
// FFT stage sees stride-1 data.
package grid

import "fmt"

// Box is a half-open 3-D index region: it contains (i,j,k) with
// Lo[d] ≤ coord[d] < Hi[d] for every axis d.
type Box struct {
	Lo, Hi [3]int
}

// Size returns the extent of the box along axis d.
func (b Box) Size(d int) int {
	s := b.Hi[d] - b.Lo[d]
	if s < 0 {
		return 0
	}
	return s
}

// Count returns the number of grid points in the box.
func (b Box) Count() int {
	return b.Size(0) * b.Size(1) * b.Size(2)
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Count() == 0 }

// Contains reports whether (i,j,k) lies inside the box.
func (b Box) Contains(i, j, k int) bool {
	return i >= b.Lo[0] && i < b.Hi[0] &&
		j >= b.Lo[1] && j < b.Hi[1] &&
		k >= b.Lo[2] && k < b.Hi[2]
}

// Intersect returns the overlap of two boxes (possibly empty).
func Intersect(a, b Box) Box {
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = max(a.Lo[d], b.Lo[d])
		r.Hi[d] = min(a.Hi[d], b.Hi[d])
		if r.Hi[d] < r.Lo[d] {
			r.Hi[d] = r.Lo[d]
		}
	}
	return r
}

func (b Box) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d,%d:%d]", b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
}

// Factor2 factors p into two factors as close to √p as possible,
// returned in nondecreasing order.
func Factor2(p int) [2]int {
	if p <= 0 {
		panic("grid: non-positive process count")
	}
	best := [2]int{1, p}
	for a := 1; a*a <= p; a++ {
		if p%a == 0 {
			best = [2]int{a, p / a}
		}
	}
	return best
}

// Factor3 factors p into three factors minimizing the maximum factor
// (the heFFTe proc_setup heuristic: near-cubic process grids minimize
// reshape surface). Returned in nondecreasing order.
func Factor3(p int) [3]int {
	if p <= 0 {
		panic("grid: non-positive process count")
	}
	best := [3]int{1, 1, p}
	bestSurf := surface(best)
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			cand := [3]int{a, b, c}
			if s := surface(cand); s < bestSurf {
				best, bestSurf = cand, s
			}
		}
	}
	return best
}

func surface(f [3]int) int {
	return f[0]*f[1] + f[1]*f[2] + f[0]*f[2]
}

// split1 returns the [lo,hi) range of part i of n split into g parts as
// evenly as possible.
func split1(n, g, i int) (lo, hi int) {
	return n * i / g, n * (i + 1) / g
}

// Bricks decomposes an n[0]×n[1]×n[2] grid over a g[0]×g[1]×g[2] process
// grid into one near-cubic brick per rank. Rank r owns coordinate
// (r mod g0, (r/g0) mod g1, r/(g0·g1)).
func Bricks(n [3]int, g [3]int) []Box {
	p := g[0] * g[1] * g[2]
	boxes := make([]Box, p)
	for r := 0; r < p; r++ {
		c := [3]int{r % g[0], (r / g[0]) % g[1], r / (g[0] * g[1])}
		var b Box
		for d := 0; d < 3; d++ {
			b.Lo[d], b.Hi[d] = split1(n[d], g[d], c[d])
		}
		boxes[r] = b
	}
	return boxes
}

// Pencils decomposes the grid into p pencils spanning the full extent of
// the given axis, with the two remaining axes split over Factor2(p)
// (lower factor on the lower remaining axis).
func Pencils(n [3]int, axis, p int) []Box {
	f := Factor2(p)
	var g [3]int
	g[axis] = 1
	others := otherAxes(axis)
	g[others[0]], g[others[1]] = f[0], f[1]
	return Bricks(n, g)
}

func otherAxes(axis int) [2]int {
	switch axis {
	case 0:
		return [2]int{1, 2}
	case 1:
		return [2]int{0, 2}
	case 2:
		return [2]int{0, 1}
	}
	panic("grid: invalid axis")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

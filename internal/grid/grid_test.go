package grid

import (
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := Box{Lo: [3]int{1, 2, 3}, Hi: [3]int{4, 5, 6}}
	if b.Count() != 27 || b.Size(0) != 3 {
		t.Errorf("count %d size0 %d", b.Count(), b.Size(0))
	}
	if !b.Contains(1, 2, 3) || b.Contains(4, 2, 3) {
		t.Error("Contains boundary wrong")
	}
	if (Box{}).Count() != 0 || !(Box{}).Empty() {
		t.Error("zero box should be empty")
	}
}

func TestIntersect(t *testing.T) {
	a := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{4, 4, 4}}
	b := Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{6, 6, 6}}
	ov := Intersect(a, b)
	want := Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{4, 4, 4}}
	if ov != want {
		t.Errorf("intersect = %v, want %v", ov, want)
	}
	c := Box{Lo: [3]int{10, 0, 0}, Hi: [3]int{12, 4, 4}}
	if !Intersect(a, c).Empty() {
		t.Error("disjoint boxes should intersect empty")
	}
}

func TestFactor2(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 6: {2, 3}, 12: {3, 4}, 16: {4, 4}, 7: {1, 7}, 36: {6, 6}}
	for p, want := range cases {
		if got := Factor2(p); got != want {
			t.Errorf("Factor2(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestFactor3(t *testing.T) {
	for _, p := range []int{1, 2, 6, 12, 24, 48, 96, 192, 384, 768, 1536, 100} {
		f := Factor3(p)
		if f[0]*f[1]*f[2] != p {
			t.Errorf("Factor3(%d) = %v does not multiply back", p, f)
		}
		if f[0] > f[1] || f[1] > f[2] {
			t.Errorf("Factor3(%d) = %v not sorted", p, f)
		}
	}
	if got := Factor3(64); got != [3]int{4, 4, 4} {
		t.Errorf("Factor3(64) = %v, want cube", got)
	}
}

// TestBricksPartition: bricks tile the grid exactly (disjoint cover).
func TestBricksPartition(t *testing.T) {
	n := [3]int{7, 5, 9}
	g := [3]int{2, 1, 3}
	boxes := Bricks(n, g)
	if len(boxes) != 6 {
		t.Fatalf("expected 6 bricks, got %d", len(boxes))
	}
	seen := make(map[[3]int]int)
	for _, b := range boxes {
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for k := b.Lo[2]; k < b.Hi[2]; k++ {
					seen[[3]int{i, j, k}]++
				}
			}
		}
	}
	if len(seen) != n[0]*n[1]*n[2] {
		t.Errorf("covered %d points, want %d", len(seen), n[0]*n[1]*n[2])
	}
	for pt, c := range seen {
		if c != 1 {
			t.Fatalf("point %v covered %d times", pt, c)
		}
	}
}

func TestBricksPartitionProperty(t *testing.T) {
	f := func(n0, n1, n2, g0, g1, g2 uint8) bool {
		n := [3]int{int(n0%16) + 1, int(n1%16) + 1, int(n2%16) + 1}
		g := [3]int{int(g0%4) + 1, int(g1%4) + 1, int(g2%4) + 1}
		boxes := Bricks(n, g)
		total := 0
		for _, b := range boxes {
			total += b.Count()
		}
		return total == n[0]*n[1]*n[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPencilsSpanAxis(t *testing.T) {
	n := [3]int{8, 8, 8}
	for axis := 0; axis < 3; axis++ {
		boxes := Pencils(n, axis, 12)
		for r, b := range boxes {
			if b.Lo[axis] != 0 || b.Hi[axis] != n[axis] {
				t.Errorf("axis %d rank %d pencil %v does not span", axis, r, b)
			}
		}
		total := 0
		for _, b := range boxes {
			total += b.Count()
		}
		if total != 512 {
			t.Errorf("axis %d pencils cover %d points", axis, total)
		}
	}
}

func TestForAxisOrder(t *testing.T) {
	if ForAxis(0) != (Order{0, 1, 2}) || ForAxis(1) != (Order{1, 0, 2}) || ForAxis(2) != (Order{2, 0, 1}) {
		t.Error("ForAxis wrong")
	}
}

// fill assigns each global coordinate a unique value.
func fillBox(b Box, o Order) []int {
	data := make([]int, b.Count())
	for i := b.Lo[0]; i < b.Hi[0]; i++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for k := b.Lo[2]; k < b.Hi[2]; k++ {
				data[o.Index(b, [3]int{i, j, k})] = encode(i, j, k)
			}
		}
	}
	return data
}

func encode(i, j, k int) int { return i + 100*j + 10000*k }

func TestPackUnpackRoundTrip(t *testing.T) {
	srcBox := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{6, 4, 5}}
	sub := Box{Lo: [3]int{1, 1, 2}, Hi: [3]int{5, 3, 4}}
	for _, srcOrder := range []Order{Natural, {1, 0, 2}, {2, 1, 0}} {
		for _, dstOrder := range []Order{Natural, {1, 0, 2}, {2, 0, 1}} {
			src := fillBox(srcBox, srcOrder)
			buf := make([]int, sub.Count())
			if n := Pack(src, srcBox, srcOrder, sub, dstOrder, buf); n != sub.Count() {
				t.Fatalf("pack wrote %d, want %d", n, sub.Count())
			}
			dstBox := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{8, 8, 8}}
			dst := make([]int, dstBox.Count())
			if n := Unpack(buf, sub, dst, dstBox, dstOrder); n != sub.Count() {
				t.Fatalf("unpack read %d, want %d", n, sub.Count())
			}
			// Every point of sub must carry its encoded coordinate.
			for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
				for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
					for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
						got := dst[dstOrder.Index(dstBox, [3]int{i, j, k})]
						if got != encode(i, j, k) {
							t.Fatalf("src %v dst %v: point (%d,%d,%d) = %d", srcOrder, dstOrder, i, j, k, got)
						}
					}
				}
			}
		}
	}
}

func TestPlanConservation(t *testing.T) {
	// Total send volume equals own inbox; total recv equals own outbox.
	n := [3]int{16, 16, 16}
	in := Bricks(n, Factor3(12))
	out := Pencils(n, 0, 12)
	for me := 0; me < 12; me++ {
		pl := NewPlan(me, in, out)
		if pl.SendTotal != in[me].Count() {
			t.Errorf("rank %d sends %d, inbox has %d", me, pl.SendTotal, in[me].Count())
		}
		if pl.RecvTotal != out[me].Count() {
			t.Errorf("rank %d receives %d, outbox has %d", me, pl.RecvTotal, out[me].Count())
		}
	}
}

func TestPlanSymmetry(t *testing.T) {
	// r sends sub S to q exactly when q receives S from r.
	n := [3]int{12, 10, 8}
	in := Bricks(n, Factor3(6))
	out := Pencils(n, 1, 6)
	plans := make([]Plan, 6)
	for me := range plans {
		plans[me] = NewPlan(me, in, out)
	}
	for r, pl := range plans {
		for _, s := range pl.Send {
			found := false
			for _, rc := range plans[s.Rank].Recv {
				if rc.Rank == r && rc.Sub == s.Sub {
					found = true
				}
			}
			if !found {
				t.Errorf("send %d→%d sub %v has no matching recv", r, s.Rank, s.Sub)
			}
		}
	}
}

func TestStrideOf(t *testing.T) {
	b := Box{Hi: [3]int{4, 5, 6}}
	if strideOf(b, Natural, 0) != 1 || strideOf(b, Natural, 1) != 4 || strideOf(b, Natural, 2) != 20 {
		t.Error("strides for natural order wrong")
	}
	o := Order{2, 0, 1}
	if strideOf(b, o, 2) != 1 || strideOf(b, o, 0) != 6 || strideOf(b, o, 1) != 24 {
		t.Error("strides for permuted order wrong")
	}
}

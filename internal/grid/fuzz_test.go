package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randBoxIn returns a random non-empty sub-box of the given box.
func randBoxIn(rng *rand.Rand, outer Box) Box {
	var b Box
	for d := 0; d < 3; d++ {
		size := outer.Size(d)
		lo := outer.Lo[d] + rng.Intn(size)
		hi := lo + 1 + rng.Intn(outer.Hi[d]-lo)
		b.Lo[d], b.Hi[d] = lo, hi
	}
	return b
}

func randOrder(rng *rand.Rand) Order {
	perms := []Order{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	return perms[rng.Intn(len(perms))]
}

// TestPackUnpackFuzz round-trips random sub-boxes through random source
// and destination layouts.
func TestPackUnpackFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		outer := Box{Hi: [3]int{3 + rng.Intn(6), 3 + rng.Intn(6), 3 + rng.Intn(6)}}
		sub := randBoxIn(rng, outer)
		srcOrder, dstOrder := randOrder(rng), randOrder(rng)

		src := make([]int, outer.Count())
		for i := outer.Lo[0]; i < outer.Hi[0]; i++ {
			for j := outer.Lo[1]; j < outer.Hi[1]; j++ {
				for k := outer.Lo[2]; k < outer.Hi[2]; k++ {
					src[srcOrder.Index(outer, [3]int{i, j, k})] = encode(i, j, k)
				}
			}
		}
		buf := make([]int, sub.Count())
		if Pack(src, outer, srcOrder, sub, dstOrder, buf) != sub.Count() {
			return false
		}
		dst := make([]int, outer.Count())
		if Unpack(buf, sub, dst, outer, dstOrder) != sub.Count() {
			return false
		}
		for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
			for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
				for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
					if dst[dstOrder.Index(outer, [3]int{i, j, k})] != encode(i, j, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReshapePlanFuzz: for random grids and rank counts, every pair of
// decompositions yields conserving, symmetric plans.
func TestReshapePlanFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := [3]int{2 + rng.Intn(14), 2 + rng.Intn(14), 2 + rng.Intn(14)}
		p := 1 + rng.Intn(16)
		var from, to []Box
		if rng.Intn(2) == 0 {
			from = Bricks(n, Factor3(p))
		} else {
			from = Pencils(n, rng.Intn(3), p)
		}
		to = Pencils(n, rng.Intn(3), p)

		totalSend, totalRecv := 0, 0
		for me := 0; me < p; me++ {
			pl := NewPlan(me, from, to)
			if pl.SendTotal != from[me].Count() || pl.RecvTotal != to[me].Count() {
				return false
			}
			totalSend += pl.SendTotal
			totalRecv += pl.RecvTotal
		}
		return totalSend == n[0]*n[1]*n[2] && totalRecv == totalSend
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestOrderIndexBijective: Index enumerates each box cell exactly once.
func TestOrderIndexBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := Box{Lo: [3]int{rng.Intn(5), rng.Intn(5), rng.Intn(5)}}
		for d := 0; d < 3; d++ {
			b.Hi[d] = b.Lo[d] + 1 + rng.Intn(5)
		}
		o := randOrder(rng)
		seen := make([]bool, b.Count())
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for k := b.Lo[2]; k < b.Hi[2]; k++ {
					idx := o.Index(b, [3]int{i, j, k})
					if idx < 0 || idx >= len(seen) || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

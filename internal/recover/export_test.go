package recover

import "math/rand"

// Test-only exports: the backoff schedule and the snapshot frame codec,
// so the property and fuzz suites can drive them directly.

func BackoffBase(pol Policy, attempt int) float64 { return backoffBase(pol, attempt) }

func BackoffDelay(pol Policy, attempt int, jitter *rand.Rand) float64 {
	return backoffDelay(pol, attempt, jitter)
}

func (p Policy) WithDefaults() Policy { return p.withDefaults() }

func Frame(snap []byte) []byte { return frame(snap) }

func Unframe(b []byte) ([]byte, error) { return unframe(b) }

const FrameHdr = frameHdr

package recover_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
	recov "repro/internal/recover"
)

// The controller tests drive the full pipeline — checkpointing plan,
// reliable runtime, watchdog, rollback, respawn — on the 6-rank Summit
// node, crashing one rank mid-run.

var testN = [3]int{8, 8, 8}

// baselineTime measures the crash-free duration of the recoverable
// workload, used to aim crashes at the middle of the run.
func baselineTime(t *testing.T, opts core.Options) float64 {
	t.Helper()
	cfg := netsim.Summit(1)
	_, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true, recov.Policy{})
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	if out.Attempts != 1 || len(out.Recoveries) != 0 {
		t.Fatalf("baseline run recovered without faults: %+v", out)
	}
	return out.Result.Time
}

func TestControllerRecoversMidRunCrash(t *testing.T) {
	opts := core.Options{Backend: core.BackendOSC}
	half := baselineTime(t, opts) / 2

	cfg := netsim.Summit(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 21, CrashRank: 3, CrashAt: half}
	res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true, recov.Policy{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if out.Attempts != 2 || len(out.Recoveries) != 1 {
		t.Fatalf("attempts %d, recoveries %d; want 2 and 1", out.Attempts, len(out.Recoveries))
	}
	r := out.Recoveries[0]
	if r.CrashT <= 0 || r.DetectT < r.CrashT || r.ResumeT <= r.DetectT {
		t.Errorf("recovery timeline out of order: %+v", r)
	}
	if out.MTTRSeconds != r.ResumeT-r.CrashT {
		t.Errorf("MTTR %g, want %g", out.MTTRSeconds, r.ResumeT-r.CrashT)
	}
	if r.Epoch < 0 {
		t.Errorf("no committed epoch before a mid-run crash (crash at t=%.3g): %+v", half, r)
	}
	// The resumed pipeline must still compute a correct transform.
	if math.IsNaN(res.RelErr) || res.RelErr > 1e-12 {
		t.Errorf("recovered run round-trip error %g", res.RelErr)
	}
}

func TestControllerEngineEquivalence(t *testing.T) {
	// The recovered run must be bit-identical to itself across the
	// sequential and parallel engines: same virtual end time, same
	// recovery timeline, same numerical result.
	opts := core.Options{Backend: core.BackendCompressed, Tolerance: 1e-6}
	half := baselineTime(t, opts) / 2

	run := func(parallel bool) (core.Result, recov.Outcome) {
		cfg := netsim.Summit(1)
		cfg.Parallel = parallel
		cfg.Faults = &netsim.FaultPlan{Seed: 22, CrashRank: 1, CrashAt: half,
			DropProb: 0.01, SilentCorruptProb: 0.02}
		res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true, recov.Policy{})
		if err != nil {
			t.Fatalf("parallel=%v: recovery failed: %v", parallel, err)
		}
		return res, out
	}
	seqRes, seqOut := run(false)
	parRes, parOut := run(true)

	if seqOut.Result.Time != parOut.Result.Time {
		t.Errorf("virtual end time diverged: sequential %v, parallel %v", seqOut.Result.Time, parOut.Result.Time)
	}
	if seqOut.Attempts != parOut.Attempts || len(seqOut.Recoveries) != len(parOut.Recoveries) {
		t.Fatalf("recovery shape diverged: %+v vs %+v", seqOut, parOut)
	}
	for i := range seqOut.Recoveries {
		if seqOut.Recoveries[i] != parOut.Recoveries[i] {
			t.Errorf("recovery %d diverged: %+v vs %+v", i, seqOut.Recoveries[i], parOut.Recoveries[i])
		}
	}
	if seqOut.MTTRSeconds != parOut.MTTRSeconds {
		t.Errorf("MTTR diverged: %v vs %v", seqOut.MTTRSeconds, parOut.MTTRSeconds)
	}
	if seqRes.RelErr != parRes.RelErr {
		t.Errorf("numerical result diverged: %v vs %v", seqRes.RelErr, parRes.RelErr)
	}
	if seqRes.ForwardTime != parRes.ForwardTime {
		t.Errorf("forward time diverged: %v vs %v", seqRes.ForwardTime, parRes.ForwardTime)
	}
}

func TestControllerAbsorbsDoubleFault(t *testing.T) {
	// A second crash during recovery (scheduled past the first verdict)
	// must be caught by the same loop: two rollbacks, three attempts.
	opts := core.Options{Backend: core.BackendOSC}
	half := baselineTime(t, opts) / 2

	// Probe with the first crash alone to learn where attempt 2 runs in
	// virtual time, then aim the second crash at its middle. The probe's
	// timeline is identical to the double-fault run up to the second
	// crash (same seed, same plan prefix).
	probeCfg := netsim.Summit(1)
	probeCfg.Faults = &netsim.FaultPlan{Seed: 23, CrashRank: 2, CrashAt: half}
	_, probe, err := core.MeasureRecoverable[complex128](nil, probeCfg, testN, opts, 2, true, recov.Policy{})
	if err != nil || len(probe.Recoveries) != 1 {
		t.Fatalf("probe run: %v, %+v", err, probe)
	}
	second := (probe.Recoveries[0].ResumeT + probe.Result.Time) / 2

	cfg := netsim.Summit(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 23, CrashRank: 2, CrashAt: half,
		CrashSchedule: []netsim.CrashSpec{{Rank: 4, At: second}}}
	res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true, recov.Policy{})
	if err != nil {
		t.Fatalf("double-fault recovery failed: %v", err)
	}
	if out.Attempts != 3 || len(out.Recoveries) != 2 {
		t.Fatalf("attempts %d, recoveries %d; want 3 and 2", out.Attempts, len(out.Recoveries))
	}
	if out.Recoveries[1].CrashT <= out.Recoveries[0].DetectT {
		t.Errorf("second crash not after first verdict: %+v", out.Recoveries)
	}
	if math.IsNaN(res.RelErr) || res.RelErr > 1e-12 {
		t.Errorf("recovered run round-trip error %g", res.RelErr)
	}
}

func TestControllerGivesUpWithTypedDiagnosis(t *testing.T) {
	// With recovery disabled every crash is immediately unrecoverable —
	// a typed diagnosis, not a hang and not a bare panic.
	opts := core.Options{Backend: core.BackendOSC}
	half := baselineTime(t, opts) / 2

	cfg := netsim.Summit(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 24, CrashRank: 5, CrashAt: half}
	_, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, false, recov.Policy{MaxRestarts: -1})
	if err == nil {
		t.Fatal("crash with recovery disabled must fail")
	}
	var ue *recov.UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("error is %T (%v), want *recov.UnrecoverableError", err, err)
	}
	if ue.Attempts != 1 || out.Attempts != 1 {
		t.Errorf("attempts %d/%d, want 1", ue.Attempts, out.Attempts)
	}
	if ue.Cause == nil {
		t.Error("give-up diagnosis lost its cause chain")
	}
}

func TestControllerPassesThroughNonCrashFailures(t *testing.T) {
	// A run that dies for a non-crash reason (an application bug) must
	// pass through the controller unchanged — no retry, no rollback.
	cfg := netsim.Summit(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 25}
	ct := &recov.Controller{}
	attempts := 0
	out, err := ct.Run(cfg, nil, func(c *mpi.Comm, rk *recov.Rank) {
		if c.Rank() == 0 {
			attempts++
		}
		if c.Rank() == 2 {
			panic("application bug, not a crash")
		}
	})
	if err == nil {
		t.Fatal("rank panic swallowed")
	}
	var ue *recov.UnrecoverableError
	if errors.As(err, &ue) {
		t.Fatalf("non-crash failure misclassified as unrecoverable crash: %v", err)
	}
	if attempts != 1 || out.Attempts != 1 {
		t.Errorf("non-crash failure retried: %d attempts", attempts)
	}
}

package recover_test

import (
	"math/rand"
	"testing"

	recov "repro/internal/recover"
)

// Property suite for the recovery backoff schedule: for any policy the
// delay sequence must be per-seed deterministic, monotone non-decreasing
// up to the cap, and jittered within [base, base·(1+JitterFrac)].

// randomPolicy draws a policy from the generator, covering capped and
// uncapped, jittered and jitter-free corners.
func randomPolicy(rng *rand.Rand) recov.Policy {
	pol := recov.Policy{
		Backoff:       1e-4 * (1 + 99*rng.Float64()), // 0.1ms .. ~10ms
		BackoffFactor: 1 + 3*rng.Float64(),           // 1 .. 4
		JitterFrac:    []float64{0, rng.Float64()}[rng.Intn(2)],
		Seed:          rng.Int63(),
	}
	if rng.Intn(2) == 0 {
		// Cap somewhere the exponential actually reaches.
		pol.MaxBackoff = pol.Backoff * (1 + 50*rng.Float64())
	}
	return pol.WithDefaults()
}

func TestBackoffScheduleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const attempts = 12
	for trial := 0; trial < 200; trial++ {
		pol := randomPolicy(rng)

		// Per-seed determinism: replaying the same policy (same seed)
		// reproduces the delay sequence bit-for-bit.
		draw := func() []float64 {
			jitter := rand.New(rand.NewSource(pol.Seed ^ 0x5eed0f1a))
			out := make([]float64, attempts)
			for a := 0; a < attempts; a++ {
				out[a] = recov.BackoffDelay(pol, a, jitter)
			}
			return out
		}
		first, second := draw(), draw()
		for a := range first {
			if first[a] != second[a] {
				t.Fatalf("trial %d: delay %d not deterministic: %v vs %v (policy %+v)",
					trial, a, first[a], second[a], pol)
			}
		}

		prevBase := 0.0
		for a := 0; a < attempts; a++ {
			base := recov.BackoffBase(pol, a)

			// Monotone non-decreasing, capped at MaxBackoff when set.
			if base < prevBase {
				t.Fatalf("trial %d: base delay decreased at attempt %d: %v -> %v (policy %+v)",
					trial, a, prevBase, base, pol)
			}
			if pol.MaxBackoff > 0 && base > pol.MaxBackoff {
				t.Fatalf("trial %d: base delay %v exceeds cap %v at attempt %d (policy %+v)",
					trial, base, pol.MaxBackoff, a, pol)
			}
			if pol.MaxBackoff == 0 && a > 0 {
				// Uncapped: the exact exponential.
				want := recov.BackoffBase(pol, a-1) * pol.BackoffFactor
				if !approxEq(base, want) {
					t.Fatalf("trial %d: uncapped base %v at attempt %d, want %v (policy %+v)",
						trial, base, a, want, pol)
				}
			}
			prevBase = base

			// Jitter bounds: delay in [base, base·(1+JitterFrac)].
			if d := first[a]; d < base || d > base*(1+pol.JitterFrac)*(1+1e-12) {
				t.Fatalf("trial %d: jittered delay %v outside [%v, %v] at attempt %d (policy %+v)",
					trial, d, base, base*(1+pol.JitterFrac), a, pol)
			}
			if pol.JitterFrac == 0 && first[a] != base {
				t.Fatalf("trial %d: zero jitter still perturbed the delay: %v != %v", trial, first[a], base)
			}
		}

		// Once the cap is hit, the schedule stays there.
		if pol.MaxBackoff > 0 {
			hit := false
			for a := 0; a < attempts; a++ {
				b := recov.BackoffBase(pol, a)
				if hit && b != pol.MaxBackoff {
					t.Fatalf("trial %d: schedule left the cap at attempt %d: %v (policy %+v)",
						trial, a, b, pol)
				}
				if b == pol.MaxBackoff {
					hit = true
				}
			}
		}
	}
}

func TestBackoffDelayConsumesOneDraw(t *testing.T) {
	// Every delay consumes exactly one jitter draw, so the timeline is a
	// pure function of (seed, recoveries so far) — the engine-equivalence
	// contract depends on it.
	pol := recov.Policy{JitterFrac: 0.5, Seed: 99}.WithDefaults()
	a := rand.New(rand.NewSource(1))
	b := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		recov.BackoffDelay(pol, i, a)
		b.Float64()
	}
	if a.Float64() != b.Float64() {
		t.Error("backoffDelay consumed a different number of RNG draws than one per call")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(a+b)
}

package recover_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	recov "repro/internal/recover"
)

// The shrink tests drive the full elastic arc on the 6-rank Summit
// node: a permanent kill exhausts the respawn budget, the survivors
// agree on the 5-rank membership, the pipeline is re-planned, the last
// committed cut migrates, and the run completes degraded.

// killScenario returns the fault plan that permanently kills rank 3 in
// the middle of the crash-free run.
func killScenario(t *testing.T, opts core.Options, seed int64) *netsim.FaultPlan {
	t.Helper()
	half := baselineTime(t, opts) / 2
	return &netsim.FaultPlan{Seed: seed, KillRank: 3, KillAt: half}
}

func TestShrinkSurvivesPermanentKill(t *testing.T) {
	opts := core.Options{Backend: core.BackendOSC}
	cfg := netsim.Summit(1)
	cfg.Faults = killScenario(t, opts, 31)
	pol := recov.Policy{MaxRestarts: 1, Shrink: true}
	res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true, pol)
	if err != nil {
		t.Fatalf("shrink recovery failed: %v", err)
	}
	if len(out.Shrinks) != 1 {
		t.Fatalf("shrinks %d, want 1 (outcome %+v)", len(out.Shrinks), out)
	}
	sh := out.Shrinks[0]
	if len(sh.Dead) != 1 || sh.Dead[0] != 3 {
		t.Errorf("dead set %v, want [3]", sh.Dead)
	}
	if sh.FromSize != 6 || sh.ToSize != 5 {
		t.Errorf("membership %d -> %d, want 6 -> 5", sh.FromSize, sh.ToSize)
	}
	if sh.CrashT <= 0 || sh.DetectT < sh.CrashT || sh.ResumeT <= sh.DetectT {
		t.Errorf("shrink timeline out of order: %+v", sh)
	}
	want := []int{0, 1, 2, 4, 5}
	if len(out.Survivors) != len(want) {
		t.Fatalf("survivors %v, want %v", out.Survivors, want)
	}
	for i, r := range want {
		if out.Survivors[i] != r {
			t.Fatalf("survivors %v, want %v", out.Survivors, want)
		}
	}
	if out.MTTRSeconds <= 0 {
		t.Errorf("shrunken run reports zero MTTR: %+v", out)
	}
	// The re-decomposed pipeline must still compute a correct transform.
	if math.IsNaN(res.RelErr) || res.RelErr > 1e-12 {
		t.Errorf("shrunken run round-trip error %g", res.RelErr)
	}
	if res.Stats.Faults.Kills != 0 {
		// res carries the final (shrunken) attempt's stats: dead ranks exit
		// before their kill time there, so no kill fires after the shrink.
		t.Errorf("kills %d on the post-shrink attempt, want 0", res.Stats.Faults.Kills)
	}
}

func TestShrinkMigratedStateMatchesFreshRun(t *testing.T) {
	// A lossless pipeline's values are decomposition-independent, so the
	// run that shrank 6 -> 5 mid-flight from migrated checkpoint state
	// must land on the same numerics as a from-scratch 5-rank run.
	opts := core.Options{Backend: core.BackendOSC}
	cfg := netsim.Summit(1)
	cfg.Faults = killScenario(t, opts, 32)
	res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true,
		recov.Policy{MaxRestarts: 1, Shrink: true})
	if err != nil || len(out.Shrinks) != 1 {
		t.Fatalf("shrink recovery: %v (shrinks %d)", err, len(out.Shrinks))
	}
	if out.Shrinks[0].Epoch < 0 {
		t.Fatalf("mid-run kill found no committed epoch to migrate: %+v", out.Shrinks[0])
	}

	freshCfg := netsim.Summit(1)
	freshCfg.GPUsPerNode = 5
	fresh := core.Measure[complex128](freshCfg, testN, opts, 2, true)
	if res.RelErr != fresh.RelErr {
		t.Errorf("migrated run relerr %v, fresh 5-rank run %v (not bit-identical)", res.RelErr, fresh.RelErr)
	}
}

func TestShrinkEngineEquivalence(t *testing.T) {
	// The shrunken run must be bit-identical to itself across the
	// sequential and parallel engines, lossy traffic included: same
	// shrink timeline, same end time, same numerics.
	opts := core.Options{Backend: core.BackendCompressed, Tolerance: 1e-6}
	plan := killScenario(t, opts, 33)

	run := func(parallel bool) (core.Result, recov.Outcome) {
		cfg := netsim.Summit(1)
		cfg.Parallel = parallel
		f := *plan
		cfg.Faults = &f
		res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true,
			recov.Policy{MaxRestarts: 1, Shrink: true})
		if err != nil {
			t.Fatalf("parallel=%v: shrink recovery failed: %v", parallel, err)
		}
		if len(out.Shrinks) != 1 {
			t.Fatalf("parallel=%v: shrinks %d, want 1", parallel, len(out.Shrinks))
		}
		return res, out
	}
	seqRes, seqOut := run(false)
	parRes, parOut := run(true)

	if seqOut.Result.Time != parOut.Result.Time {
		t.Errorf("virtual end time diverged: sequential %v, parallel %v", seqOut.Result.Time, parOut.Result.Time)
	}
	if seqOut.Attempts != parOut.Attempts {
		t.Errorf("attempts diverged: %d vs %d", seqOut.Attempts, parOut.Attempts)
	}
	for i := range seqOut.Shrinks {
		a, b := seqOut.Shrinks[i], parOut.Shrinks[i]
		if a.Attempt != b.Attempt || a.FromSize != b.FromSize || a.ToSize != b.ToSize ||
			a.Epoch != b.Epoch || a.CrashT != b.CrashT || a.DetectT != b.DetectT || a.ResumeT != b.ResumeT {
			t.Errorf("shrink %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if seqOut.MTTRSeconds != parOut.MTTRSeconds {
		t.Errorf("MTTR diverged: %v vs %v", seqOut.MTTRSeconds, parOut.MTTRSeconds)
	}
	if seqRes.RelErr != parRes.RelErr {
		t.Errorf("numerical result diverged: %v vs %v", seqRes.RelErr, parRes.RelErr)
	}
}

func TestShrinkOffPreservesGiveUp(t *testing.T) {
	// With Policy.Shrink off (the default) a permanent kill must exhaust
	// the budget and surface the historic typed give-up diagnosis.
	opts := core.Options{Backend: core.BackendOSC}
	cfg := netsim.Summit(1)
	cfg.Faults = killScenario(t, opts, 34)
	_, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, false,
		recov.Policy{MaxRestarts: 1})
	if err == nil {
		t.Fatal("permanent kill with shrink disabled must fail")
	}
	var ue *recov.UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("error is %T (%v), want *recov.UnrecoverableError", err, err)
	}
	if ue.Attempts != 2 || out.Attempts != 2 {
		t.Errorf("attempts %d/%d, want 2 (budget of 1 respawn)", ue.Attempts, out.Attempts)
	}
	if len(out.Shrinks) != 0 || out.Survivors != nil {
		t.Errorf("shrink state leaked into a non-shrink run: %+v", out)
	}
}

func TestShrinkDoubleKill(t *testing.T) {
	// A second permanent kill after the first shrink must trigger a
	// second arc: 6 -> 5 -> 4 ranks, both migrations intact.
	opts := core.Options{Backend: core.BackendOSC}
	half := baselineTime(t, opts) / 2
	cfg := netsim.Summit(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 35, KillRank: 3, KillAt: half,
		CrashSchedule: []netsim.CrashSpec{{Rank: 1, At: half * 1.2, Permanent: true}}}
	res, out, err := core.MeasureRecoverable[complex128](nil, cfg, testN, opts, 2, true,
		recov.Policy{MaxRestarts: 1, Shrink: true})
	if err != nil {
		t.Fatalf("double-kill shrink recovery failed: %v", err)
	}
	sizes := []int{}
	for _, sh := range out.Shrinks {
		sizes = append(sizes, sh.ToSize)
	}
	if len(out.Shrinks) < 1 {
		t.Fatalf("no shrink arcs recorded: %+v", out)
	}
	last := out.Shrinks[len(out.Shrinks)-1]
	if last.ToSize != 6-len(deadAll(out.Shrinks)) {
		t.Errorf("final membership %d with dead %v (arcs %v)", last.ToSize, deadAll(out.Shrinks), sizes)
	}
	if math.IsNaN(res.RelErr) || res.RelErr > 1e-12 {
		t.Errorf("doubly shrunken run round-trip error %g", res.RelErr)
	}
}

// deadAll unions the dead sets of all shrink arcs.
func deadAll(shrinks []recov.Shrink) []int {
	var out []int
	for _, sh := range shrinks {
		out = append(out, sh.Dead...)
	}
	return out
}

package recover_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	recov "repro/internal/recover"
)

// Fuzz suite for the checkpoint store's frame codec (satellite of the
// elastic-shrink work): arbitrary bytes must either decode to the exact
// framed payload or fail with a typed *FrameError — never panic, never
// silently load a damaged snapshot.

func FuzzSnapshotFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                    // shorter than the header
	f.Add(recov.Frame(nil))                   // valid empty snapshot
	f.Add(recov.Frame([]byte("pencil data"))) // valid payload
	long := recov.Frame(bytes.Repeat([]byte{0xab}, 256))
	f.Add(long)
	f.Add(long[:len(long)-3]) // truncated payload
	flipped := append([]byte(nil), long...)
	flipped[recov.FrameHdr+5] ^= 0x40
	f.Add(flipped) // bit flip in the payload
	badLen := append([]byte(nil), long...)
	binary.LittleEndian.PutUint32(badLen, 7)
	f.Add(badLen) // header length lies

	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := recov.Unframe(b)
		if err != nil {
			var fe *recov.FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("unframe error is %T (%v), want *FrameError", err, err)
			}
			switch fe.Kind {
			case "truncated", "length", "checksum":
			default:
				t.Fatalf("unexpected FrameError kind %q", fe.Kind)
			}
			return
		}
		// Accepted: the frame must verify — length consistent and the
		// payload the exact framed bytes.
		if len(b) < recov.FrameHdr {
			t.Fatalf("accepted a %d-byte frame shorter than the header", len(b))
		}
		if got := int(binary.LittleEndian.Uint32(b)); got != len(snap) {
			t.Fatalf("accepted frame: header says %d bytes, payload has %d", got, len(snap))
		}
		if !bytes.Equal(snap, b[recov.FrameHdr:]) {
			t.Fatal("accepted frame returned different bytes than it holds")
		}
		// Round trip: re-framing the payload reproduces the input.
		if !bytes.Equal(recov.Frame(snap), b) {
			t.Fatal("re-framing an accepted payload did not reproduce the frame")
		}
	})
}

func FuzzSnapshotFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, snap []byte) {
		got, err := recov.Unframe(recov.Frame(snap))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !bytes.Equal(got, snap) {
			t.Fatalf("round trip changed the payload: %v -> %v", snap, got)
		}
	})
}

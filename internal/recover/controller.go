package recover

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Metric families of the recovery subsystem (exported through the
// OpenMetrics sidecar under fft_recovery_*).
const (
	MetricCheckpoints         = "recovery/checkpoints"
	MetricCheckpointBytes     = "recovery/checkpoint_bytes"
	MetricCheckpointOverheadS = "recovery/checkpoint_overhead_s"
	MetricRollbacks           = "recovery/rollbacks"
	MetricRestarts            = "recovery/restarts"
	MetricMTTRS               = "recovery/mttr_s"
)

// Metric families of the elastic shrink path (exported under
// fft_shrink_*). MTTR after a shrink is tracked separately from plain
// respawn MTTR: a shrink pays agreement + re-planning + migration on
// top of the backoff.
const (
	MetricShrinks       = "shrink/events"
	MetricShrinkLost    = "shrink/ranks_lost"
	MetricShrinkMTTRS   = "shrink/mttr_s"
	MetricMigratedBytes = "shrink/migrated_bytes"
)

// Recovery-event labels (obs.EventRecovery), in protocol order. The
// shrink labels trace the elastic arc: verdict (respawn budget
// exhausted for a dead rank) → agree (survivors fixed the membership) →
// replan (pipeline rebuilt at the new size) → migrate (checkpoint data
// redistributed) → resume.
const (
	LabelCommit        = "commit"
	LabelCrashVerdict  = "crash_verdict"
	LabelRollback      = "rollback"
	LabelRespawn       = "respawn"
	LabelResume        = "resume"
	LabelGiveUp        = "give_up"
	LabelShrinkVerdict = "shrink_verdict"
	LabelShrinkAgree   = "shrink_agree"
	LabelReplan        = "replan"
	LabelMigrate       = "migrate"
)

// Policy bounds and paces the restart loop. All delays are virtual
// seconds; the jitter is drawn from a seeded RNG, so one policy and one
// fault plan always produce one recovery timeline (bit-identical across
// engines).
type Policy struct {
	// MaxRestarts bounds the recovery attempts before the run is declared
	// unrecoverable. 0 takes the default (3); negative disables recovery
	// (any crash is immediately unrecoverable).
	MaxRestarts int
	// Backoff is the delay between the crash verdict and the resume of
	// attempt 1; attempt k waits Backoff·BackoffFactor^(k-1).
	Backoff       float64
	BackoffFactor float64
	// MaxBackoff caps the exponential growth of the backoff delay
	// (before jitter); 0 leaves it uncapped, preserving the historic
	// timeline exactly.
	MaxBackoff float64
	// JitterFrac scatters each delay by up to this fraction (decorrelates
	// restart storms; deterministic via Seed).
	JitterFrac float64
	Seed       int64
	// WriteBW is the checkpoint store's write bandwidth in bytes/s (the
	// virtual cost each rank pays per snapshot).
	WriteBW float64
	// ReadBW is the store's read bandwidth for shrink migration (each
	// survivor pays it per peer snapshot it fetches); 0 takes WriteBW.
	ReadBW float64
	// Shrink enables elastic shrink recovery: when the restart budget is
	// exhausted by a crash verdict, instead of giving up the survivors
	// agree on the reduced membership (mpi.Comm.Shrink), the pipeline is
	// re-planned at P−k ranks, the last committed cut's snapshots are
	// migrated to the new owners, and stepping resumes — with a fresh
	// restart budget for the shrunken membership. Off (the default)
	// preserves the historic give-up behavior byte-for-byte.
	Shrink bool
}

// withDefaults fills zero-valued knobs.
func (p Policy) withDefaults() Policy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 3
	}
	if p.Backoff == 0 {
		p.Backoff = 1e-3
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	if p.WriteBW == 0 {
		p.WriteBW = 25e9
	}
	if p.ReadBW == 0 {
		p.ReadBW = p.WriteBW
	}
	return p
}

// backoffBase returns the undithered delay before the respawn of the
// given attempt (0-based): Backoff·BackoffFactor^attempt, capped at
// MaxBackoff when one is set.
func backoffBase(pol Policy, attempt int) float64 {
	delay := pol.Backoff
	for i := 0; i < attempt; i++ {
		delay *= pol.BackoffFactor
		if pol.MaxBackoff > 0 && delay >= pol.MaxBackoff {
			return pol.MaxBackoff
		}
	}
	if pol.MaxBackoff > 0 && delay > pol.MaxBackoff {
		delay = pol.MaxBackoff
	}
	return delay
}

// backoffDelay is backoffBase with the policy's deterministic jitter
// applied. It always consumes exactly one draw from the jitter stream,
// so the recovery timeline is a pure function of the policy seed and
// the number of recoveries so far.
func backoffDelay(pol Policy, attempt int, jitter *rand.Rand) float64 {
	return backoffBase(pol, attempt) * (1 + pol.JitterFrac*jitter.Float64())
}

// Rank is one rank's per-attempt handle onto the checkpoint store: the
// epoch to resume from (fixed for the whole attempt by the controller)
// and the two-phase Checkpoint collective. A nil handle is valid and
// makes every operation a no-op reporting a fresh start, so pipeline
// code can thread it unconditionally — checkpointing off costs nothing.
type Rank struct {
	st      *Store
	c       *mpi.Comm
	resume  int
	writeBW float64
	readBW  float64

	// Shrink-migration context, set by the controller on the first
	// attempt of a shrunken membership that must redistribute the resume
	// epoch's snapshots (all zero otherwise): prevSize/prevRank locate
	// this rank in the membership that committed the resume epoch, and
	// oldToNew maps each old local rank to its new local rank (-1 for a
	// rank that died).
	migrate  bool
	prevSize int
	prevRank int
	oldToNew []int
}

// Resume returns the committed epoch this attempt resumes from (-1 for
// a fresh start).
func (rk *Rank) Resume() int {
	if rk == nil {
		return -1
	}
	return rk.resume
}

// Migrating reports whether this attempt must redistribute the resume
// epoch's snapshots from a larger previous membership (the shrink
// migration phase; docs/ROBUSTNESS.md).
func (rk *Rank) Migrating() bool { return rk != nil && rk.migrate }

// PrevSize returns the rank count of the membership that committed the
// resume epoch (0 when not migrating).
func (rk *Rank) PrevSize() int {
	if rk == nil {
		return 0
	}
	return rk.prevSize
}

// PrevRank returns this rank's local rank in the previous membership
// (-1 when not migrating).
func (rk *Rank) PrevRank() int {
	if rk == nil || !rk.migrate {
		return -1
	}
	return rk.prevRank
}

// OldToNew maps each previous-membership local rank to its local rank
// in the current membership (-1 = dead). Nil when not migrating; the
// caller must not mutate it.
func (rk *Rank) OldToNew() []int {
	if rk == nil {
		return nil
	}
	return rk.oldToNew
}

// Restore fetches and CRC-validates this rank's snapshot of the resume
// epoch.
func (rk *Rank) Restore() ([]byte, error) {
	if rk == nil || rk.resume < 0 {
		return nil, fmt.Errorf("recover: nothing to restore")
	}
	return rk.st.Restore(rk.c.Rank(), rk.resume)
}

// RestorePeer fetches a previous-membership rank's snapshot of the
// resume epoch — the shrink migration's read path — charging the
// store's read bandwidth to this rank's clock.
func (rk *Rank) RestorePeer(oldRank int) ([]byte, error) {
	if rk == nil || rk.resume < 0 {
		return nil, fmt.Errorf("recover: nothing to restore")
	}
	snap, err := rk.st.Restore(oldRank, rk.resume)
	if err != nil {
		return nil, err
	}
	rk.c.Elapse(float64(len(snap)+frameHdr) / rk.readBW)
	return snap, nil
}

// Checkpoint persists this rank's snapshot of an epoch and commits the
// cut: save (phase one, paying the store's write bandwidth in virtual
// time), synchronize, then rank 0 flips the commit marker (phase two)
// and emits the "commit" recovery event. A rank crashing anywhere
// before the commit leaves the epoch pending — invisible to rollback —
// so the store never holds a torn cut.
func (rk *Rank) Checkpoint(epoch int, snap []byte) {
	if rk == nil {
		return
	}
	c := rk.c
	t0 := c.Now()
	rk.st.Save(c.Rank(), epoch, snap)
	c.Elapse(float64(len(snap)+frameHdr) / rk.writeBW)
	c.Barrier()
	o := c.Obs()
	if c.Rank() == 0 {
		rk.st.Commit(epoch)
		o.Emit(obs.Event{T: c.Now(), Kind: obs.EventRecovery, Label: LabelCommit,
			Peer: -1, Value: float64(epoch)})
	}
	o.Add(MetricCheckpoints, 1)
	o.Add(MetricCheckpointBytes, int64(len(snap)+frameHdr))
	o.Observe(MetricCheckpointOverheadS, c.Now()-t0)
}

// Recovery records one absorbed crash: when it happened, when the
// watchdog verdict landed, the epoch rolled back to, and when the
// pipeline resumed.
type Recovery struct {
	Attempt int     // the attempt that crashed (0-based)
	Epoch   int     // committed epoch rolled back to (-1 = from scratch)
	CrashT  float64 // virtual time of the first crash of the attempt
	DetectT float64 // virtual time of the watchdog verdict
	ResumeT float64 // virtual time the next attempt resumed at
	Cause   string  // the verdict's diagnostic
}

// Shrink records one elastic shrink arc: the membership change and its
// timeline (respawn budget exhausted → agreement → re-plan → migrate →
// resume).
type Shrink struct {
	Attempt  int     // attempt (within its arc) whose failure triggered the shrink
	Dead     []int   // global ranks shrunk away, ascending
	FromSize int     // membership size before
	ToSize   int     // membership size after
	Epoch    int     // committed epoch migrated from (-1 = restart from scratch)
	CrashT   float64 // virtual time of the first crash of the failing attempt
	DetectT  float64 // virtual time of the watchdog verdict
	ResumeT  float64 // virtual time the shrunken membership resumed at
	Cause    string  // the verdict's diagnostic
}

// Outcome summarizes a completed (recovered or fault-free) run.
type Outcome struct {
	Result     netsim.Result
	Attempts   int // bodies executed; 1 means no recovery was needed
	Recoveries []Recovery
	// Shrinks records the elastic shrink arcs the run survived (empty
	// unless Policy.Shrink absorbed a permanent rank loss).
	Shrinks []Shrink
	// Survivors is the final membership as global ranks — nil when the
	// run finished at full size, the post-shrink group otherwise.
	Survivors []int
	// MTTRSeconds is the total virtual crash→resume time across all
	// recoveries and shrinks (0 for a fault-free run).
	MTTRSeconds float64
}

// UnrecoverableError is the typed give-up diagnosis: the restart budget
// is exhausted (or recovery is disabled) and the run cannot complete.
// Unwrap exposes the final attempt's failure, so errors.As still finds
// the underlying *mpi.FaultError / *netsim.RunError chain.
type UnrecoverableError struct {
	Attempts   int
	LastEpoch  int // last committed epoch at give-up (-1 = none)
	Recoveries []Recovery
	Cause      error
}

func (e *UnrecoverableError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recover: unrecoverable after %d attempt(s), last committed epoch %d", e.Attempts, e.LastEpoch)
	for _, r := range e.Recoveries {
		fmt.Fprintf(&b, "; recovered attempt %d at t=%.3gs (epoch %d)", r.Attempt, r.ResumeT, r.Epoch)
	}
	fmt.Fprintf(&b, ": %v", e.Cause)
	return b.String()
}

func (e *UnrecoverableError) Unwrap() error { return e.Cause }

// Controller owns the checkpoint store and the restart loop. The zero
// value (default policy, fresh store) is usable.
type Controller struct {
	Policy Policy
	Store  *Store
}

// Run executes body under crash recovery: the body runs to completion,
// or — on a watchdog crash verdict — the store rolls back to the last
// committed epoch, the crashed rank is respawned by re-executing the
// deterministic body with the crash pruned from the fault plan and all
// virtual clocks advanced past the backoff, and the pipeline resumes
// from the cut. Crashes scheduled after the verdict stay armed, so a
// second fault during recovery is caught by the same loop. Failures
// that are not crash verdicts pass through unchanged; an exhausted
// restart budget returns *UnrecoverableError.
//
// Everything the loop decides derives from virtual times and seeded
// RNGs, so a faulted-and-recovered run is bit-identical to itself
// across the sequential and parallel engines.
func (ct *Controller) Run(cfg netsim.Config, rec *obs.Recorder, body func(*mpi.Comm, *Rank)) (Outcome, error) {
	pol := ct.Policy.withDefaults()
	if ct.Store == nil {
		ct.Store = NewStore()
	}
	st := ct.Store
	jitter := rand.New(rand.NewSource(pol.Seed ^ 0x5eed0f1a))
	log := rec.EventLog()
	met := rec.Metrics()

	var recoveries []Recovery
	var shrinks []Shrink
	var resumeAt float64
	plan := cfg.Faults
	// Elastic-shrink membership state. members is the current membership
	// as global ranks (nil = full world, the only shape Policy.Shrink
	// off ever sees); ownerMembers is the membership that committed the
	// current resume epoch, so a mismatch means the next attempt must
	// migrate snapshot data to the new owners.
	var members []int
	ownerMembers := members
	deadSet := make(map[int]bool)
	totalAttempts := 0
	for attempt := 0; ; attempt++ {
		attCfg := cfg
		attCfg.Faults = plan
		// Mirror crash/kill fault events so the verdict can time the
		// outage and the shrink path can name the dead; the observer runs
		// on the scheduler goroutine and the engine joins it before
		// returning, so the capture is race-free.
		var crashT []float64
		var crashed []int
		prevObs := attCfg.FaultObserver
		attCfg.FaultObserver = func(fe netsim.FaultEvent) {
			if fe.Kind == "crash" || fe.Kind == "kill" {
				crashT = append(crashT, fe.T)
				crashed = append(crashed, fe.Src)
			}
			if prevObs != nil {
				prevObs(fe)
			}
		}
		resumeEpoch := st.LastCommitted()
		startAt := resumeAt
		rankCtx := migrationContext(members, ownerMembers, resumeEpoch)
		res, err := mpi.RunWithChecked(attCfg, rec, func(c *mpi.Comm) {
			if members != nil && deadSet[c.Rank()] {
				return // dead ranks never rejoin — their body is a no-op
			}
			if startAt > 0 {
				c.AdvanceTo(startAt)
			}
			cc := c
			if members != nil {
				cc = c.Shrink(deadRanks(deadSet))
			}
			rk := &Rank{st: st, c: cc, resume: resumeEpoch, writeBW: pol.WriteBW, readBW: pol.ReadBW}
			rankCtx.apply(rk, cc.GlobalRank())
			body(cc, rk)
		})
		totalAttempts++
		if st.LastCommitted() > resumeEpoch {
			// The current membership advanced the committed cut; it owns
			// the snapshots rollback would now return to.
			ownerMembers = members
		}
		if err == nil {
			var mttr float64
			for _, r := range recoveries {
				mttr += r.ResumeT - r.CrashT
			}
			for _, s := range shrinks {
				mttr += s.ResumeT - s.CrashT
			}
			return Outcome{Result: res, Attempts: totalAttempts, Recoveries: recoveries,
				Shrinks: shrinks, Survivors: members, MTTRSeconds: mttr}, nil
		}
		detectT, cause, isCrash := crashVerdict(err, res, crashT)
		if !isCrash {
			return Outcome{Result: res, Attempts: totalAttempts, Recoveries: recoveries,
				Shrinks: shrinks, Survivors: members}, err
		}
		log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelCrashVerdict,
			Peer: -1, Value: float64(st.LastCommitted()), Msg: cause})
		firstCrash := detectT
		if len(crashT) > 0 {
			firstCrash = crashT[0]
		}
		if attempt >= pol.MaxRestarts {
			newDead := survivableDead(members, deadSet, crashed, cfg.Ranks())
			if !pol.Shrink || len(newDead) == 0 {
				log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelGiveUp,
					Peer: -1, Value: float64(st.LastCommitted()),
					Msg: fmt.Sprintf("restart budget (%d) exhausted", pol.MaxRestarts)})
				return Outcome{Result: res, Attempts: totalAttempts, Recoveries: recoveries,
						Shrinks: shrinks, Survivors: members},
					&UnrecoverableError{Attempts: totalAttempts, LastEpoch: st.LastCommitted(),
						Recoveries: recoveries, Cause: err}
			}
			// Elastic shrink: drop the ranks that exhausted the budget,
			// resume the survivors on a re-decomposed pipeline with a
			// fresh budget (docs/ROBUSTNESS.md).
			st.Rollback()
			epoch := st.LastCommitted()
			fromSize := memberCount(members, cfg.Ranks())
			if ownerMembers == nil && epoch >= 0 {
				// The full world committed the epoch the survivors will
				// migrate from; materialize it so the rank mappings exist.
				ownerMembers = worldList(cfg.Ranks())
			}
			for _, r := range newDead {
				deadSet[r] = true
			}
			members = survivorList(members, deadSet, cfg.Ranks())
			resumeAt = detectT + backoffDelay(pol, attempt, jitter)
			sh := Shrink{Attempt: attempt, Dead: newDead, FromSize: fromSize, ToSize: len(members),
				Epoch: epoch, CrashT: firstCrash, DetectT: detectT, ResumeT: resumeAt, Cause: cause}
			shrinks = append(shrinks, sh)
			if plan != nil {
				plan = plan.WithCrashesAfter(detectT)
			}
			log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelShrinkVerdict,
				Peer: -1, Value: float64(len(newDead)), Msg: cause})
			log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelShrinkAgree,
				Peer: -1, Value: float64(len(members)), Msg: fmt.Sprintf("dead %v", newDead)})
			log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelReplan,
				Peer: -1, Value: float64(len(members)), Msg: fmt.Sprintf("%d -> %d ranks", fromSize, len(members))})
			if epoch >= 0 {
				log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelMigrate,
					Peer: -1, Value: float64(epoch)})
			}
			log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelResume,
				Peer: -1, Value: float64(epoch)})
			met.Add(MetricShrinks, 1)
			met.Add(MetricShrinkLost, int64(len(newDead)))
			met.Add(MetricRollbacks, 1)
			met.Observe(MetricShrinkMTTRS, resumeAt-firstCrash)
			attempt = -1 // fresh restart budget for the shrunken membership
			continue
		}
		// Roll back to the last committed cut and schedule the respawn:
		// exponential backoff with deterministic jitter, in virtual time.
		st.Rollback()
		epoch := st.LastCommitted()
		resumeAt = detectT + backoffDelay(pol, attempt, jitter)
		rcv := Recovery{Attempt: attempt, Epoch: epoch, CrashT: firstCrash,
			DetectT: detectT, ResumeT: resumeAt, Cause: cause}
		recoveries = append(recoveries, rcv)
		// Crashes already absorbed are pruned; later ones stay armed (the
		// double-fault path). The plan keeps its seed: the respawned rank
		// replays the same RNG stream it was born with.
		if plan != nil {
			plan = plan.WithCrashesAfter(detectT)
		}
		log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelRollback,
			Peer: -1, Value: float64(epoch), Msg: cause})
		log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelRespawn,
			Peer: -1, Value: float64(epoch), Msg: fmt.Sprintf("attempt %d", attempt+1)})
		log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelResume,
			Peer: -1, Value: float64(epoch)})
		met.Add(MetricRollbacks, 1)
		met.Add(MetricRestarts, 1)
		met.Observe(MetricMTTRS, resumeAt-firstCrash)
	}
}

// memberCount returns the size of a membership (nil = full world).
func memberCount(members []int, world int) int {
	if members == nil {
		return world
	}
	return len(members)
}

// deadRanks returns the dead set as a sorted slice of global ranks.
func deadRanks(deadSet map[int]bool) []int {
	out := make([]int, 0, len(deadSet))
	for r := range deadSet {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// worldList materializes the full-world membership 0..world-1.
func worldList(world int) []int {
	out := make([]int, world)
	for i := range out {
		out[i] = i
	}
	return out
}

// survivableDead filters the attempt's crashed ranks down to the new
// deaths that leave at least one survivor: already-dead ranks are
// dropped, and if removing the crashed ranks would empty the membership
// the shrink is not survivable and nil is returned.
func survivableDead(members []int, deadSet map[int]bool, crashed []int, world int) []int {
	fresh := make(map[int]bool)
	for _, r := range crashed {
		if !deadSet[r] {
			fresh[r] = true
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	if memberCount(members, world)-len(fresh) < 1 {
		return nil
	}
	return deadRanks(fresh)
}

// survivorList materializes the membership left after removing the dead
// set from the current membership.
func survivorList(members []int, deadSet map[int]bool, world int) []int {
	var out []int
	if members == nil {
		members = worldList(world)
	}
	for _, r := range members {
		if !deadSet[r] {
			out = append(out, r)
		}
	}
	return out
}

// rankContext carries the per-attempt migration wiring from the
// controller into each rank's handle.
type rankContext struct {
	migrate  bool
	prevSize int
	prevRank map[int]int // global rank → local rank in the owner membership
	oldToNew []int       // owner-membership local rank → current local rank (-1 = dead)
}

// migrationContext decides whether the next attempt must migrate and
// precomputes the rank mappings: it must when a committed epoch exists
// whose snapshots were written by a different (larger) membership than
// the one about to run. The controller materializes the world owner
// list before the first shrink, so ownerMembers is nil only when
// members is too.
func migrationContext(members, ownerMembers []int, resumeEpoch int) rankContext {
	if resumeEpoch < 0 || equalMembers(members, ownerMembers) {
		return rankContext{}
	}
	ctx := rankContext{migrate: true, prevSize: len(ownerMembers)}
	newLocal := make(map[int]int, len(members))
	for i, g := range members {
		newLocal[g] = i
	}
	ctx.prevRank = make(map[int]int, len(ownerMembers))
	ctx.oldToNew = make([]int, len(ownerMembers))
	for old, g := range ownerMembers {
		ctx.prevRank[g] = old
		if nw, ok := newLocal[g]; ok {
			ctx.oldToNew[old] = nw
		} else {
			ctx.oldToNew[old] = -1
		}
	}
	return ctx
}

// apply installs the migration context into one rank's handle.
func (ctx rankContext) apply(rk *Rank, globalRank int) {
	if !ctx.migrate {
		return
	}
	rk.migrate = true
	rk.prevSize = ctx.prevSize
	rk.oldToNew = ctx.oldToNew
	if old, ok := ctx.prevRank[globalRank]; ok {
		rk.prevRank = old
	} else {
		rk.prevRank = -1
	}
}

// equalMembers reports whether two memberships are identical (nil means
// the full world).
func equalMembers(a, b []int) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// crashVerdict classifies a failed attempt: it is recoverable when the
// engine observed at least one rank crash and every rank failure is the
// reliable runtime's typed diagnostic (or the structural deadlock) —
// i.e. the run died of the crash, not of a bug. detectT is the latest
// watchdog verdict time, the point recovery can begin from.
func crashVerdict(err error, res netsim.Result, crashT []float64) (detectT float64, cause string, ok bool) {
	if len(crashT) == 0 && res.Stats.Faults.Crashes == 0 {
		return 0, "", false
	}
	var re *netsim.RunError
	if !errors.As(err, &re) {
		return 0, "", false
	}
	for _, f := range re.Failures {
		fe, okf := f.Value.(*mpi.FaultError)
		if !okf {
			return 0, "", false
		}
		if fe.When > detectT {
			detectT = fe.When
		}
	}
	if re.Deadlock != nil {
		for _, b := range re.Deadlock.Blocked {
			if b.Clock > detectT {
				detectT = b.Clock
			}
		}
	}
	if detectT == 0 {
		detectT = res.Time
	}
	return detectT, re.Error(), true
}

package recover

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Metric families of the recovery subsystem (exported through the
// OpenMetrics sidecar under fft_recovery_*).
const (
	MetricCheckpoints         = "recovery/checkpoints"
	MetricCheckpointBytes     = "recovery/checkpoint_bytes"
	MetricCheckpointOverheadS = "recovery/checkpoint_overhead_s"
	MetricRollbacks           = "recovery/rollbacks"
	MetricRestarts            = "recovery/restarts"
	MetricMTTRS               = "recovery/mttr_s"
)

// Recovery-event labels (obs.EventRecovery), in protocol order.
const (
	LabelCommit       = "commit"
	LabelCrashVerdict = "crash_verdict"
	LabelRollback     = "rollback"
	LabelRespawn      = "respawn"
	LabelResume       = "resume"
	LabelGiveUp       = "give_up"
)

// Policy bounds and paces the restart loop. All delays are virtual
// seconds; the jitter is drawn from a seeded RNG, so one policy and one
// fault plan always produce one recovery timeline (bit-identical across
// engines).
type Policy struct {
	// MaxRestarts bounds the recovery attempts before the run is declared
	// unrecoverable. 0 takes the default (3); negative disables recovery
	// (any crash is immediately unrecoverable).
	MaxRestarts int
	// Backoff is the delay between the crash verdict and the resume of
	// attempt 1; attempt k waits Backoff·BackoffFactor^(k-1).
	Backoff       float64
	BackoffFactor float64
	// JitterFrac scatters each delay by up to this fraction (decorrelates
	// restart storms; deterministic via Seed).
	JitterFrac float64
	Seed       int64
	// WriteBW is the checkpoint store's write bandwidth in bytes/s (the
	// virtual cost each rank pays per snapshot).
	WriteBW float64
}

// withDefaults fills zero-valued knobs.
func (p Policy) withDefaults() Policy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 3
	}
	if p.Backoff == 0 {
		p.Backoff = 1e-3
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	if p.WriteBW == 0 {
		p.WriteBW = 25e9
	}
	return p
}

// Rank is one rank's per-attempt handle onto the checkpoint store: the
// epoch to resume from (fixed for the whole attempt by the controller)
// and the two-phase Checkpoint collective. A nil handle is valid and
// makes every operation a no-op reporting a fresh start, so pipeline
// code can thread it unconditionally — checkpointing off costs nothing.
type Rank struct {
	st      *Store
	c       *mpi.Comm
	resume  int
	writeBW float64
}

// Resume returns the committed epoch this attempt resumes from (-1 for
// a fresh start).
func (rk *Rank) Resume() int {
	if rk == nil {
		return -1
	}
	return rk.resume
}

// Restore fetches and CRC-validates this rank's snapshot of the resume
// epoch.
func (rk *Rank) Restore() ([]byte, error) {
	if rk == nil || rk.resume < 0 {
		return nil, fmt.Errorf("recover: nothing to restore")
	}
	return rk.st.Restore(rk.c.Rank(), rk.resume)
}

// Checkpoint persists this rank's snapshot of an epoch and commits the
// cut: save (phase one, paying the store's write bandwidth in virtual
// time), synchronize, then rank 0 flips the commit marker (phase two)
// and emits the "commit" recovery event. A rank crashing anywhere
// before the commit leaves the epoch pending — invisible to rollback —
// so the store never holds a torn cut.
func (rk *Rank) Checkpoint(epoch int, snap []byte) {
	if rk == nil {
		return
	}
	c := rk.c
	t0 := c.Now()
	rk.st.Save(c.Rank(), epoch, snap)
	c.Elapse(float64(len(snap)+frameHdr) / rk.writeBW)
	c.Barrier()
	o := c.Obs()
	if c.Rank() == 0 {
		rk.st.Commit(epoch)
		o.Emit(obs.Event{T: c.Now(), Kind: obs.EventRecovery, Label: LabelCommit,
			Peer: -1, Value: float64(epoch)})
	}
	o.Add(MetricCheckpoints, 1)
	o.Add(MetricCheckpointBytes, int64(len(snap)+frameHdr))
	o.Observe(MetricCheckpointOverheadS, c.Now()-t0)
}

// Recovery records one absorbed crash: when it happened, when the
// watchdog verdict landed, the epoch rolled back to, and when the
// pipeline resumed.
type Recovery struct {
	Attempt int     // the attempt that crashed (0-based)
	Epoch   int     // committed epoch rolled back to (-1 = from scratch)
	CrashT  float64 // virtual time of the first crash of the attempt
	DetectT float64 // virtual time of the watchdog verdict
	ResumeT float64 // virtual time the next attempt resumed at
	Cause   string  // the verdict's diagnostic
}

// Outcome summarizes a completed (recovered or fault-free) run.
type Outcome struct {
	Result     netsim.Result
	Attempts   int // bodies executed; 1 means no recovery was needed
	Recoveries []Recovery
	// MTTRSeconds is the total virtual crash→resume time across all
	// recoveries (0 for a fault-free run).
	MTTRSeconds float64
}

// UnrecoverableError is the typed give-up diagnosis: the restart budget
// is exhausted (or recovery is disabled) and the run cannot complete.
// Unwrap exposes the final attempt's failure, so errors.As still finds
// the underlying *mpi.FaultError / *netsim.RunError chain.
type UnrecoverableError struct {
	Attempts   int
	LastEpoch  int // last committed epoch at give-up (-1 = none)
	Recoveries []Recovery
	Cause      error
}

func (e *UnrecoverableError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recover: unrecoverable after %d attempt(s), last committed epoch %d", e.Attempts, e.LastEpoch)
	for _, r := range e.Recoveries {
		fmt.Fprintf(&b, "; recovered attempt %d at t=%.3gs (epoch %d)", r.Attempt, r.ResumeT, r.Epoch)
	}
	fmt.Fprintf(&b, ": %v", e.Cause)
	return b.String()
}

func (e *UnrecoverableError) Unwrap() error { return e.Cause }

// Controller owns the checkpoint store and the restart loop. The zero
// value (default policy, fresh store) is usable.
type Controller struct {
	Policy Policy
	Store  *Store
}

// Run executes body under crash recovery: the body runs to completion,
// or — on a watchdog crash verdict — the store rolls back to the last
// committed epoch, the crashed rank is respawned by re-executing the
// deterministic body with the crash pruned from the fault plan and all
// virtual clocks advanced past the backoff, and the pipeline resumes
// from the cut. Crashes scheduled after the verdict stay armed, so a
// second fault during recovery is caught by the same loop. Failures
// that are not crash verdicts pass through unchanged; an exhausted
// restart budget returns *UnrecoverableError.
//
// Everything the loop decides derives from virtual times and seeded
// RNGs, so a faulted-and-recovered run is bit-identical to itself
// across the sequential and parallel engines.
func (ct *Controller) Run(cfg netsim.Config, rec *obs.Recorder, body func(*mpi.Comm, *Rank)) (Outcome, error) {
	pol := ct.Policy.withDefaults()
	if ct.Store == nil {
		ct.Store = NewStore()
	}
	st := ct.Store
	jitter := rand.New(rand.NewSource(pol.Seed ^ 0x5eed0f1a))
	log := rec.EventLog()
	met := rec.Metrics()

	var recoveries []Recovery
	var resumeAt float64
	plan := cfg.Faults
	for attempt := 0; ; attempt++ {
		attCfg := cfg
		attCfg.Faults = plan
		// Mirror crash fault events so the verdict can time the outage;
		// the observer runs on the scheduler goroutine and the engine joins
		// it before returning, so the capture is race-free.
		var crashT []float64
		prevObs := attCfg.FaultObserver
		attCfg.FaultObserver = func(fe netsim.FaultEvent) {
			if fe.Kind == "crash" {
				crashT = append(crashT, fe.T)
			}
			if prevObs != nil {
				prevObs(fe)
			}
		}
		resumeEpoch := st.LastCommitted()
		startAt := resumeAt
		res, err := mpi.RunWithChecked(attCfg, rec, func(c *mpi.Comm) {
			if startAt > 0 {
				c.AdvanceTo(startAt)
			}
			body(c, &Rank{st: st, c: c, resume: resumeEpoch, writeBW: pol.WriteBW})
		})
		if err == nil {
			var mttr float64
			for _, r := range recoveries {
				mttr += r.ResumeT - r.CrashT
			}
			return Outcome{Result: res, Attempts: attempt + 1, Recoveries: recoveries, MTTRSeconds: mttr}, nil
		}
		detectT, cause, isCrash := crashVerdict(err, res, crashT)
		if !isCrash {
			return Outcome{Result: res, Attempts: attempt + 1, Recoveries: recoveries}, err
		}
		log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelCrashVerdict,
			Peer: -1, Value: float64(st.LastCommitted()), Msg: cause})
		if attempt >= pol.MaxRestarts {
			log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelGiveUp,
				Peer: -1, Value: float64(st.LastCommitted()),
				Msg: fmt.Sprintf("restart budget (%d) exhausted", pol.MaxRestarts)})
			return Outcome{Result: res, Attempts: attempt + 1, Recoveries: recoveries},
				&UnrecoverableError{Attempts: attempt + 1, LastEpoch: st.LastCommitted(),
					Recoveries: recoveries, Cause: err}
		}
		// Roll back to the last committed cut and schedule the respawn:
		// exponential backoff with deterministic jitter, in virtual time.
		st.Rollback()
		epoch := st.LastCommitted()
		delay := pol.Backoff
		for i := 0; i < attempt; i++ {
			delay *= pol.BackoffFactor
		}
		delay *= 1 + pol.JitterFrac*jitter.Float64()
		resumeAt = detectT + delay
		firstCrash := detectT
		if len(crashT) > 0 {
			firstCrash = crashT[0]
		}
		rcv := Recovery{Attempt: attempt, Epoch: epoch, CrashT: firstCrash,
			DetectT: detectT, ResumeT: resumeAt, Cause: cause}
		recoveries = append(recoveries, rcv)
		// Crashes already absorbed are pruned; later ones stay armed (the
		// double-fault path). The plan keeps its seed: the respawned rank
		// replays the same RNG stream it was born with.
		if plan != nil {
			plan = plan.WithCrashesAfter(detectT)
		}
		log.Emit(obs.Event{T: detectT, Rank: -1, Kind: obs.EventRecovery, Label: LabelRollback,
			Peer: -1, Value: float64(epoch), Msg: cause})
		log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelRespawn,
			Peer: -1, Value: float64(epoch), Msg: fmt.Sprintf("attempt %d", attempt+1)})
		log.Emit(obs.Event{T: resumeAt, Rank: -1, Kind: obs.EventRecovery, Label: LabelResume,
			Peer: -1, Value: float64(epoch)})
		met.Add(MetricRollbacks, 1)
		met.Add(MetricRestarts, 1)
		met.Observe(MetricMTTRS, resumeAt-firstCrash)
	}
}

// crashVerdict classifies a failed attempt: it is recoverable when the
// engine observed at least one rank crash and every rank failure is the
// reliable runtime's typed diagnostic (or the structural deadlock) —
// i.e. the run died of the crash, not of a bug. detectT is the latest
// watchdog verdict time, the point recovery can begin from.
func crashVerdict(err error, res netsim.Result, crashT []float64) (detectT float64, cause string, ok bool) {
	if len(crashT) == 0 && res.Stats.Faults.Crashes == 0 {
		return 0, "", false
	}
	var re *netsim.RunError
	if !errors.As(err, &re) {
		return 0, "", false
	}
	for _, f := range re.Failures {
		fe, okf := f.Value.(*mpi.FaultError)
		if !okf {
			return 0, "", false
		}
		if fe.When > detectT {
			detectT = fe.When
		}
	}
	if re.Deadlock != nil {
		for _, b := range re.Deadlock.Blocked {
			if b.Clock > detectT {
				detectT = b.Clock
			}
		}
	}
	if detectT == 0 {
		detectT = res.Time
	}
	return detectT, re.Error(), true
}

package recover

import (
	"bytes"
	"testing"
)

func TestStoreCommitAndRestore(t *testing.T) {
	st := NewStore()
	if st.LastCommitted() != -1 {
		t.Fatalf("fresh store committed %d, want -1", st.LastCommitted())
	}
	snapA := []byte("rank0 epoch1")
	snapB := []byte("rank1 epoch1")
	st.Save(0, 1, snapA)
	st.Save(1, 1, snapB)
	if _, err := st.Restore(0, 1); err == nil {
		t.Fatal("restore of an uncommitted epoch must fail (torn-cut protection)")
	}
	st.Commit(1)
	if st.LastCommitted() != 1 {
		t.Fatalf("committed %d, want 1", st.LastCommitted())
	}
	got, err := st.Restore(0, 1)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(got, snapA) {
		t.Fatalf("restore got %q, want %q", got, snapA)
	}
}

func TestStoreRollbackDropsPending(t *testing.T) {
	st := NewStore()
	st.Save(0, 1, []byte("one"))
	st.Commit(1)
	st.Save(0, 2, []byte("two")) // pending, never committed
	st.Rollback()
	if st.LastCommitted() != 1 {
		t.Fatalf("rollback moved the commit marker to %d", st.LastCommitted())
	}
	if _, err := st.Restore(0, 2); err == nil {
		t.Fatal("pending epoch survived rollback")
	}
	if got, err := st.Restore(0, 1); err != nil || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("committed epoch lost by rollback: %q, %v", got, err)
	}
	if st.Stats().Rollbacks != 1 {
		t.Fatalf("rollbacks %d, want 1", st.Stats().Rollbacks)
	}
}

func TestStoreCommitDropsOlderEpochs(t *testing.T) {
	st := NewStore()
	st.Save(0, 1, []byte("one"))
	st.Commit(1)
	st.Save(0, 2, []byte("two"))
	st.Commit(2)
	if _, err := st.Restore(0, 1); err == nil {
		t.Fatal("superseded epoch retained after a newer commit")
	}
	if got, _ := st.Restore(0, 2); !bytes.Equal(got, []byte("two")) {
		t.Fatal("latest committed epoch unavailable")
	}
}

func TestStoreIgnoresStaleSavesAndCommits(t *testing.T) {
	st := NewStore()
	st.Save(0, 2, []byte("two"))
	st.Commit(2)
	st.Save(0, 1, []byte("stale")) // a replayed rank re-saving an old epoch
	st.Commit(1)
	if st.LastCommitted() != 2 {
		t.Fatalf("stale commit moved the marker to %d", st.LastCommitted())
	}
	if _, err := st.Restore(0, 1); err == nil {
		t.Fatal("stale save installed below the commit marker")
	}
}

func TestStoreDetectsCorruptFrame(t *testing.T) {
	st := NewStore()
	st.Save(0, 1, []byte("payload"))
	st.Commit(1)
	// Flip one payload bit behind the store's back.
	st.mu.Lock()
	st.slots[1][0][frameHdr] ^= 0x40
	st.mu.Unlock()
	if _, err := st.Restore(0, 1); err == nil {
		t.Fatal("corrupt snapshot passed CRC validation")
	}
}

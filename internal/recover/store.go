// Package recover implements epoch-checkpoint crash recovery for the
// simulated pipeline (docs/ROBUSTNESS.md). Every completed reshape is a
// globally consistent cut: ranks persist a CRC-framed snapshot of their
// pencil partition plus exchange-ledger state into an in-sim Store, a
// two-phase commit marker makes the cut atomic, and on a watchdog crash
// verdict a Controller rolls the run back to the last committed epoch
// and re-executes it deterministically (exponential backoff with seeded
// jitter, bounded restarts, typed unrecoverable diagnosis).
//
// The package name shadows the builtin recover at import sites; callers
// that also use the builtin import it under an alias (conventionally
// "recov").
package recover

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// frameHdr is the CRC frame overhead per snapshot: [len u32][crc u32].
const frameHdr = 8

// FrameError is the typed validation failure of a checkpoint frame:
// torn, truncated, or bit-flipped bytes must surface as one of these,
// never as a panic or a silently loaded snapshot. Kind is "truncated"
// (frame shorter than its header), "length" (stored length disagrees
// with the payload), or "checksum" (CRC mismatch).
type FrameError struct {
	Kind string
	Msg  string
}

func (e *FrameError) Error() string { return "recover: snapshot " + e.Msg }

// frame wraps a snapshot in the store's [len|crc|payload] frame.
func frame(snap []byte) []byte {
	out := make([]byte, frameHdr+len(snap))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(snap)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(snap))
	copy(out[frameHdr:], snap)
	return out
}

// unframe validates and unwraps a framed snapshot; every failure is a
// typed *FrameError.
func unframe(b []byte) ([]byte, error) {
	if len(b) < frameHdr {
		return nil, &FrameError{Kind: "truncated", Msg: fmt.Sprintf("frame truncated (%d bytes)", len(b))}
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if int(n) != len(b)-frameHdr {
		return nil, &FrameError{Kind: "length", Msg: fmt.Sprintf("length %d does not match frame payload %d", n, len(b)-frameHdr)}
	}
	want := binary.LittleEndian.Uint32(b[4:])
	if got := crc32.ChecksumIEEE(b[frameHdr:]); got != want {
		return nil, &FrameError{Kind: "checksum", Msg: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	return b[frameHdr:], nil
}

// StoreStats summarizes the checkpoint traffic a store absorbed.
type StoreStats struct {
	Commits   int64 // epochs committed
	Saves     int64 // per-rank snapshots written (framed)
	Bytes     int64 // framed bytes written across all saves
	Rollbacks int64 // uncommitted epochs discarded
}

// Store is the seeded in-sim checkpoint target shared by every rank of
// a run (the stand-in for a burst buffer or node-local NVMe pool). It
// survives across restart attempts of one Controller run.
//
// Writes follow a two-phase protocol: each rank Saves its snapshot for
// an epoch, the ranks synchronize, and exactly one rank Commits the
// epoch. Until the commit the epoch is pending and a Rollback discards
// it, so a crash mid-checkpoint can never surface a torn cut — readers
// only ever see LastCommitted. Per-rank slots are disjoint, so the
// store's committed content is independent of the order concurrent
// ranks saved in (the parallel engine runs rank bodies on real
// threads).
type Store struct {
	mu        sync.Mutex
	committed int                    // last committed epoch; -1 = none
	slots     map[int]map[int][]byte // epoch → rank → framed snapshot
	stats     StoreStats
}

// NewStore creates an empty checkpoint store.
func NewStore() *Store {
	return &Store{committed: -1, slots: map[int]map[int][]byte{}}
}

// Save writes rank's snapshot for an epoch (phase one of the commit
// protocol). Saves for epochs at or below the committed mark are
// ignored: a re-executed rank re-saving an already-durable epoch is
// idempotent, never destructive.
func (s *Store) Save(rank, epoch int, snap []byte) {
	framed := frame(snap)
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.committed {
		return
	}
	m := s.slots[epoch]
	if m == nil {
		m = map[int][]byte{}
		s.slots[epoch] = m
	}
	m[rank] = framed
	s.stats.Saves++
	s.stats.Bytes += int64(len(framed))
}

// Commit atomically marks an epoch durable (phase two; call from one
// rank after all ranks saved and synchronized) and drops older epochs —
// rollback never needs anything before the newest committed cut.
func (s *Store) Commit(epoch int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.committed {
		return
	}
	s.committed = epoch
	for e := range s.slots {
		if e < epoch {
			delete(s.slots, e)
		}
	}
	s.stats.Commits++
}

// LastCommitted returns the newest durable epoch (-1 when none).
func (s *Store) LastCommitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed
}

// Restore returns rank's snapshot of a committed epoch, validating the
// CRC frame. Pending (uncommitted) epochs are invisible.
func (s *Store) Restore(rank, epoch int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.committed {
		return nil, fmt.Errorf("recover: epoch %d not committed (last committed %d)", epoch, s.committed)
	}
	framed := s.slots[epoch][rank]
	if framed == nil {
		return nil, fmt.Errorf("recover: no snapshot for rank %d at epoch %d", rank, epoch)
	}
	return unframe(framed)
}

// Rollback discards every pending epoch (phase-one saves that never
// committed), restoring the store to the last committed cut.
func (s *Store) Rollback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for e := range s.slots {
		if e > s.committed {
			delete(s.slots, e)
			s.stats.Rollbacks++
		}
	}
}

// Stats returns the store's cumulative traffic counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

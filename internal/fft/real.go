package fft

import "math"

// Real constrains the scalar type of a real transform.
type Real interface {
	~float32 | ~float64
}

// PlanR2C computes real-to-complex transforms of even length n using the
// standard half-length trick: the n real samples are packed into n/2
// complex values, transformed with a complex plan, and untangled into
// the n/2+1 non-redundant spectrum bins. The inverse (complex-to-real)
// reverses the steps. This halves both compute and — in the distributed
// transform built on top — the first reshape's communication volume.
type PlanR2C[C Complex] struct {
	n     int
	inner *Plan[C]
	// twiddle[k] = exp(-πik/ (n/2)) for the untangle step.
	twiddle []C
	scratch []C
}

// NewPlanR2C creates a real-transform plan for even length n ≥ 2.
func NewPlanR2C[C Complex](n int) *PlanR2C[C] {
	if n < 2 || n%2 != 0 {
		panic("fft: real transforms require even length ≥ 2")
	}
	h := n / 2
	p := &PlanR2C[C]{n: n, inner: NewPlan[C](h)}
	p.twiddle = make([]C, h+1)
	for k := 0; k <= h; k++ {
		ang := -math.Pi * float64(k) / float64(h)
		p.twiddle[k] = cmplxAs[C](math.Cos(ang), math.Sin(ang))
	}
	p.scratch = make([]C, h+1)
	return p
}

// Len returns the real transform length n.
func (p *PlanR2C[C]) Len() int { return p.n }

// SpectrumLen returns the number of non-redundant bins, n/2 + 1.
func (p *PlanR2C[C]) SpectrumLen() int { return p.n/2 + 1 }

// Forward computes the unscaled DFT of the n real samples in x into the
// n/2+1 bins of out (the remaining bins follow from conjugate symmetry).
func (p *PlanR2C[C]) Forward(x []float64, out []C) {
	h := p.n / 2
	if len(x) != p.n || len(out) < h+1 {
		panic("fft: r2c length mismatch")
	}
	z := p.scratch[:h]
	for k := 0; k < h; k++ {
		z[k] = cmplxAs[C](x[2*k], x[2*k+1])
	}
	p.inner.Transform(z, Forward)
	p.untangle(z, out)
}

// untangle splits the packed half-length spectrum into the true bins:
// X[k] = E[k] + e^{-2πik/n}·O[k], where E and O are the spectra of the
// even and odd samples recovered from Z by symmetry.
func (p *PlanR2C[C]) untangle(z, out []C) {
	h := p.n / 2
	half := cmplxAs[C](0.5, 0)
	mi := cmplxAs[C](0, -0.5)
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := conjC(z[(h-k)%h])
		e := (zk + zc) * half
		o := (zk - zc) * mi
		out[k] = e + p.twiddle[k]*o
	}
}

// Inverse computes the inverse transform of the n/2+1 spectrum bins in
// spec into n real samples, scaled by 1/n so Inverse(Forward(x)) ≈ x.
// spec is not modified.
func (p *PlanR2C[C]) Inverse(spec []C, x []float64) {
	h := p.n / 2
	if len(spec) < h+1 || len(x) != p.n {
		panic("fft: c2r length mismatch")
	}
	// Re-tangle: Z[k] = E[k] + i·conj(twiddle)·O... derived by inverting
	// the untangle relations:
	//   E[k] = (X[k] + conj(X[h-k]))/2
	//   O[k] = (X[k] - conj(X[h-k]))/2 · e^{+2πik/n}
	//   Z[k] = E[k] + i·O[k]
	z := p.scratch[:h]
	half := cmplxAs[C](0.5, 0)
	im := cmplxAs[C](0, 1)
	for k := 0; k < h; k++ {
		xk := spec[k]
		xc := conjC(spec[h-k])
		e := (xk + xc) * half
		o := (xk - xc) * half * conjC(p.twiddle[k])
		z[k] = e + im*o
	}
	p.inner.Transform(z, Inverse)
	scale := 1 / float64(h)
	for k := 0; k < h; k++ {
		re, imPart := parts(z[k])
		x[2*k] = re * scale
		x[2*k+1] = imPart * scale
	}
}

// ForwardBatch transforms count contiguous real vectors of length n
// (vector v at x[v*n:(v+1)*n]) into count contiguous spectra of length
// n/2+1 in out.
func (p *PlanR2C[C]) ForwardBatch(x []float64, out []C, count int) {
	sl := p.SpectrumLen()
	for v := 0; v < count; v++ {
		p.Forward(x[v*p.n:(v+1)*p.n], out[v*sl:(v+1)*sl])
	}
}

// InverseBatch is the inverse of ForwardBatch.
func (p *PlanR2C[C]) InverseBatch(spec []C, x []float64, count int) {
	sl := p.SpectrumLen()
	for v := 0; v < count; v++ {
		p.Inverse(spec[v*sl:(v+1)*sl], x[v*p.n:(v+1)*p.n])
	}
}

// parts extracts float64 components from either complex type.
func parts[C Complex](z C) (re, im float64) {
	switch v := any(z).(type) {
	case complex64:
		return float64(real(v)), float64(imag(v))
	case complex128:
		return real(v), imag(v)
	}
	panic("fft: unsupported complex type")
}

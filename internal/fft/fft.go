// Package fft provides serial 1-D and 3-D fast Fourier transforms in both
// complex128 (FP64) and complex64 (FP32) arithmetic. The complex64 path
// performs the whole computation genuinely in single precision, which the
// reproduction relies on for the FP32 reference pipeline of the paper.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform
// with cached twiddle factors; other lengths fall back to Bluestein's
// chirp-z algorithm on a padded power-of-two transform.
package fft

import "math"

// Complex constrains the element type of a transform.
type Complex interface {
	~complex64 | ~complex128
}

// Forward is the sign convention for the forward transform
// (exp(-2πi jk/n)), Inverse for the inverse (exp(+2πi jk/n)).
const (
	Forward = -1
	Inverse = +1
)

// Plan holds precomputed tables for transforms of a fixed length.
// A Plan may be reused for any number of transforms but is not safe for
// concurrent use (each simulated GPU owns its own plans).
type Plan[C Complex] struct {
	n       int
	logn    int // valid if pow2
	pow2    bool
	bitrev  []int
	twidF   []C // forward twiddles, grouped per stage
	twidI   []C // inverse twiddles
	blue    *bluestein[C]
	scratch []C
}

// NewPlan creates a transform plan for length n (n ≥ 1).
func NewPlan[C Complex](n int) *Plan[C] {
	if n <= 0 {
		panic("fft: transform length must be positive")
	}
	p := &Plan[C]{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.logn = trailingLog2(n)
		p.bitrev = bitrevTable(n)
		p.twidF = twiddles[C](n, Forward)
		p.twidI = twiddles[C](n, Inverse)
	} else {
		p.blue = newBluestein[C](n)
	}
	p.scratch = make([]C, n)
	return p
}

// Len returns the transform length.
func (p *Plan[C]) Len() int { return p.n }

func trailingLog2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func bitrevTable(n int) []int {
	logn := trailingLog2(n)
	t := make([]int, n)
	for i := range t {
		r := 0
		for b := 0; b < logn; b++ {
			r = r<<1 | (i >> b & 1)
		}
		t[i] = r
	}
	return t
}

// cmplxAs builds a value of complex type C from float64 parts, rounding
// to the target precision.
func cmplxAs[C Complex](re, im float64) C {
	var z C
	switch any(z).(type) {
	case complex64:
		return C(complex(float32(re), float32(im)))
	default:
		return C(complex(re, im))
	}
}

// twiddles returns per-stage twiddle factors for an n-point radix-2
// transform, concatenated stage by stage: stage s (half-size h = 2^s)
// contributes h factors w^k = exp(sign·2πi k/(2h)).
func twiddles[C Complex](n, sign int) []C {
	t := make([]C, 0, n-1)
	for h := 1; h < n; h <<= 1 {
		for k := 0; k < h; k++ {
			ang := float64(sign) * math.Pi * float64(k) / float64(h)
			t = append(t, cmplxAs[C](math.Cos(ang), math.Sin(ang)))
		}
	}
	return t
}

// Transform computes an unscaled DFT of x in place with the given sign
// (Forward or Inverse). len(x) must equal the plan length.
func (p *Plan[C]) Transform(x []C, sign int) {
	if len(x) != p.n {
		panic("fft: length mismatch")
	}
	if p.pow2 {
		p.radix2(x, sign)
		return
	}
	p.blue.transform(x, sign)
}

// ForwardTransform computes the unscaled forward DFT in place.
func (p *Plan[C]) ForwardTransform(x []C) { p.Transform(x, Forward) }

// InverseTransform computes the inverse DFT in place, scaled by 1/n so
// that InverseTransform(ForwardTransform(x)) ≈ x.
func (p *Plan[C]) InverseTransform(x []C) {
	p.Transform(x, Inverse)
	scale := 1 / float64(p.n)
	s := cmplxAs[C](scale, 0)
	for i := range x {
		x[i] *= s
	}
}

func (p *Plan[C]) radix2(x []C, sign int) {
	n := p.n
	if n == 1 {
		return
	}
	for i, r := range p.bitrev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	tw := p.twidF
	if sign == Inverse {
		tw = p.twidI
	}
	off := 0
	for h := 1; h < n; h <<= 1 {
		stage := tw[off : off+h]
		for base := 0; base < n; base += h << 1 {
			for k := 0; k < h; k++ {
				i, j := base+k, base+k+h
				t := x[j] * stage[k]
				x[j] = x[i] - t
				x[i] += t
			}
		}
		off += h
	}
}

// Batch applies the transform to count contiguous vectors of length n
// packed back to back in x (vector v occupies x[v*n : (v+1)*n]).
func (p *Plan[C]) Batch(x []C, count, sign int) {
	if len(x) < count*p.n {
		panic("fft: batch buffer too short")
	}
	for v := 0; v < count; v++ {
		p.Transform(x[v*p.n:(v+1)*p.n], sign)
	}
}

// BatchStrided applies the transform to count vectors of length n where
// element k of vector v lives at x[v*dist + k*stride]. stride == 1 hits
// the fast contiguous path.
func (p *Plan[C]) BatchStrided(x []C, count, stride, dist, sign int) {
	if stride == 1 {
		for v := 0; v < count; v++ {
			p.Transform(x[v*dist:v*dist+p.n], sign)
		}
		return
	}
	for v := 0; v < count; v++ {
		base := v * dist
		for k := 0; k < p.n; k++ {
			p.scratch[k] = x[base+k*stride]
		}
		p.Transform(p.scratch, sign)
		for k := 0; k < p.n; k++ {
			x[base+k*stride] = p.scratch[k]
		}
	}
}

// bluestein implements the chirp-z transform for arbitrary lengths on
// top of a power-of-two plan of length m ≥ 2n-1.
type bluestein[C Complex] struct {
	n     int
	m     int
	inner *Plan[C]
	wF    []C // chirp exp(-iπ k²/n)
	wI    []C // conjugate chirp
	bF    []C // FFT of the forward chirp filter
	bI    []C // FFT of the inverse chirp filter
	a     []C
}

func newBluestein[C Complex](n int) *bluestein[C] {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bs := &bluestein[C]{n: n, m: m, inner: NewPlan[C](m)}
	bs.wF = make([]C, n)
	bs.wI = make([]C, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		kk := int64(k) * int64(k) % int64(2*n)
		ang := math.Pi * float64(kk) / float64(n)
		bs.wF[k] = cmplxAs[C](math.Cos(ang), -math.Sin(ang))
		bs.wI[k] = cmplxAs[C](math.Cos(ang), math.Sin(ang))
	}
	bs.bF = bs.filter(bs.wF)
	bs.bI = bs.filter(bs.wI)
	bs.a = make([]C, m)
	return bs
}

// filter builds the FFT of the chirp filter b[k] = conj(w[|k|]).
func (bs *bluestein[C]) filter(w []C) []C {
	b := make([]C, bs.m)
	for k := 0; k < bs.n; k++ {
		c := conjC(w[k])
		b[k] = c
		if k > 0 {
			b[bs.m-k] = c
		}
	}
	bs.inner.Transform(b, Forward)
	return b
}

func conjC[C Complex](z C) C {
	switch v := any(z).(type) {
	case complex64:
		return any(complex(real(v), -imag(v))).(C)
	default:
		v128 := any(z).(complex128)
		return any(complex(real(v128), -imag(v128))).(C)
	}
}

func (bs *bluestein[C]) transform(x []C, sign int) {
	w, b := bs.wF, bs.bF
	if sign == Inverse {
		w, b = bs.wI, bs.bI
	}
	a := bs.a
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < bs.n; k++ {
		a[k] = x[k] * w[k]
	}
	bs.inner.Transform(a, Forward)
	for i := range a {
		a[i] *= b[i]
	}
	bs.inner.Transform(a, Inverse)
	inv := cmplxAs[C](1/float64(bs.m), 0)
	for k := 0; k < bs.n; k++ {
		x[k] = a[k] * inv * w[k]
	}
}

// DFT computes the unscaled discrete Fourier transform of x directly in
// O(n²); it exists as an oracle for tests.
func DFT[C Complex](x []C, sign int) []C {
	n := len(x)
	out := make([]C, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := float64(sign) * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			var xv complex128
			switch v := any(x[j]).(type) {
			case complex64:
				xv = complex128(v)
			case complex128:
				xv = v
			}
			acc += xv * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = cmplxAs[C](real(acc), imag(acc))
	}
	return out
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// fullSpectrum computes the reference via the complex DFT of the
// real-extended input.
func fullSpectrum(x []float64) []complex128 {
	z := make([]complex128, len(x))
	for i, v := range x {
		z[i] = complex(v, 0)
	}
	return DFT(z, Forward)
}

func TestR2CForwardMatchesComplexDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128, 10, 12, 100} {
		x := randReal(n, int64(n))
		want := fullSpectrum(x)
		p := NewPlanR2C[complex128](n)
		out := make([]complex128, p.SpectrumLen())
		p.Forward(x, out)
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(out[k]-want[k]) > 1e-9*float64(n) {
				t.Errorf("n=%d k=%d: got %v want %v", n, k, out[k], want[k])
			}
		}
	}
}

func TestR2CRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 32, 1024, 6, 50} {
		x := randReal(n, 3*int64(n))
		p := NewPlanR2C[complex128](n)
		spec := make([]complex128, p.SpectrumLen())
		p.Forward(x, spec)
		back := make([]float64, n)
		p.Inverse(spec, back)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-11 {
				t.Fatalf("n=%d: round trip error %g at %d", n, math.Abs(back[i]-x[i]), i)
			}
		}
	}
}

func TestR2CFloat32Precision(t *testing.T) {
	n := 256
	x := randReal(n, 5)
	p := NewPlanR2C[complex64](n)
	spec := make([]complex64, p.SpectrumLen())
	p.Forward(x, spec)
	back := make([]float64, n)
	p.Inverse(spec, back)
	var maxE float64
	for i := range x {
		maxE = math.Max(maxE, math.Abs(back[i]-x[i]))
	}
	if maxE > 1e-5 {
		t.Errorf("FP32 r2c round trip error %g", maxE)
	}
	if maxE < 1e-12 {
		t.Errorf("FP32 r2c suspiciously exact (%g) — not computing in single precision?", maxE)
	}
}

func TestR2CDCAndNyquistReal(t *testing.T) {
	// Bins 0 and n/2 of a real signal's spectrum are purely real.
	n := 64
	x := randReal(n, 9)
	p := NewPlanR2C[complex128](n)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(x, spec)
	if math.Abs(imag(spec[0])) > 1e-12 || math.Abs(imag(spec[n/2])) > 1e-12 {
		t.Errorf("DC/Nyquist not real: %v %v", spec[0], spec[n/2])
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(real(spec[0])-sum) > 1e-10 {
		t.Errorf("DC bin %g, want sum %g", real(spec[0]), sum)
	}
}

func TestR2CParseval(t *testing.T) {
	n := 128
	x := randReal(n, 11)
	p := NewPlanR2C[complex128](n)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(x, spec)
	var ein float64
	for _, v := range x {
		ein += v * v
	}
	// Sum over the full spectrum using conjugate symmetry.
	var eout float64
	for k := 0; k <= n/2; k++ {
		e := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		if k == 0 || k == n/2 {
			eout += e
		} else {
			eout += 2 * e
		}
	}
	if math.Abs(eout-float64(n)*ein) > 1e-8*eout {
		t.Errorf("Parseval: %g vs %g", eout, float64(n)*ein)
	}
}

func TestR2CBatch(t *testing.T) {
	n, count := 16, 5
	p := NewPlanR2C[complex128](n)
	x := randReal(n*count, 13)
	spec := make([]complex128, p.SpectrumLen()*count)
	p.ForwardBatch(x, spec, count)
	for v := 0; v < count; v++ {
		want := fullSpectrum(x[v*n : (v+1)*n])
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(spec[v*p.SpectrumLen()+k]-want[k]) > 1e-10 {
				t.Fatalf("batch vector %d bin %d wrong", v, k)
			}
		}
	}
	back := make([]float64, n*count)
	p.InverseBatch(spec, back, count)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-11 {
			t.Fatalf("batch round trip error at %d", i)
		}
	}
}

func TestR2COddLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd length")
		}
	}()
	NewPlanR2C[complex128](9)
}

func BenchmarkR2C1024(b *testing.B) {
	p := NewPlanR2C[complex128](1024)
	x := randReal(1024, 1)
	spec := make([]complex128, p.SpectrumLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
	}
}

package fft

import "math"

// Transform3D computes an unscaled 3-D DFT in place on a contiguous
// row-major grid of size n0×n1×n2, where element (i0,i1,i2) lives at
// x[i0 + n0*(i1 + n1*i2)] (axis 0 fastest). It is the serial oracle the
// distributed transform is validated against.
func Transform3D[C Complex](x []C, n0, n1, n2, sign int) {
	if len(x) != n0*n1*n2 {
		panic("fft: 3-D size mismatch")
	}
	p0 := NewPlan[C](n0)
	p1 := NewPlan[C](n1)
	p2 := NewPlan[C](n2)
	Transform3DWithPlans(x, p0, p1, p2, sign)
}

// Transform3DWithPlans is Transform3D with caller-provided plans, so
// repeated transforms of the same shape avoid replanning.
func Transform3DWithPlans[C Complex](x []C, p0, p1, p2 *Plan[C], sign int) {
	n0, n1, n2 := p0.n, p1.n, p2.n
	// Axis 0: contiguous vectors.
	p0.Batch(x, n1*n2, sign)
	// Axis 1: stride n0 within each k-plane.
	for k := 0; k < n2; k++ {
		plane := x[k*n0*n1 : (k+1)*n0*n1]
		p1.BatchStrided(plane, n0, n0, 1, sign)
	}
	// Axis 2: stride n0*n1, one batch per (i0,i1) column.
	p2.BatchStrided(x, n0*n1, n0*n1, 1, sign)
}

// Forward3D computes the unscaled forward 3-D DFT in place.
func Forward3D[C Complex](x []C, n0, n1, n2 int) {
	Transform3D(x, n0, n1, n2, Forward)
}

// Inverse3D computes the inverse 3-D DFT in place, scaled by 1/(n0·n1·n2).
func Inverse3D[C Complex](x []C, n0, n1, n2 int) {
	Transform3D(x, n0, n1, n2, Inverse)
	s := cmplxAs[C](1/float64(n0*n1*n2), 0)
	for i := range x {
		x[i] *= s
	}
}

// FlopCount returns the standard 5·N·log2(N) flop estimate for a complex
// transform of total size n (the metric the paper's Gflop/s figures use).
func FlopCount(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

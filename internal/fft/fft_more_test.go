package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestBluesteinPrimeSizes: Bluestein must handle awkward prime lengths.
func TestBluesteinPrimeSizes(t *testing.T) {
	for _, n := range []int{7, 13, 97, 257, 509} {
		x := randVec(n, int64(n)*7)
		want := DFT(x, Forward)
		p := NewPlan[complex128](n)
		got := append([]complex128(nil), x...)
		p.ForwardTransform(got)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("prime n=%d: error %g", n, e)
		}
	}
}

// TestPlanReuseManyTransforms: one plan across many transforms must not
// accumulate state.
func TestPlanReuseManyTransforms(t *testing.T) {
	n := 64
	p := NewPlan[complex128](n)
	x := randVec(n, 1)
	ref := append([]complex128(nil), x...)
	p.ForwardTransform(ref)
	for iter := 0; iter < 10; iter++ {
		y := append([]complex128(nil), x...)
		p.ForwardTransform(y)
		if e := maxErr(y, ref); e != 0 {
			t.Fatalf("iteration %d produced different output (err %g)", iter, e)
		}
	}
}

// TestBluesteinPlanReuse: the chirp scratch must be reentrant across
// calls too.
func TestBluesteinPlanReuse(t *testing.T) {
	n := 17
	p := NewPlan[complex128](n)
	a := randVec(n, 2)
	b := randVec(n, 3)
	wantA := DFT(a, Forward)
	ca := append([]complex128(nil), a...)
	cb := append([]complex128(nil), b...)
	p.ForwardTransform(ca)
	p.ForwardTransform(cb)
	ca2 := append([]complex128(nil), a...)
	p.ForwardTransform(ca2)
	if e := maxErr(ca, wantA); e > 1e-10 {
		t.Errorf("first transform wrong: %g", e)
	}
	if e := maxErr(ca, ca2); e != 0 {
		t.Errorf("plan state leaked between transforms: %g", e)
	}
}

// TestConjugateSymmetryRealInput: the DFT of real input satisfies
// X[n-k] = conj(X[k]).
func TestConjugateSymmetryRealInput(t *testing.T) {
	n := 128
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
	}
	NewPlan[complex128](n).ForwardTransform(x)
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[n-k]-cmplx.Conj(x[k])) > 1e-10 {
			t.Fatalf("conjugate symmetry broken at k=%d", k)
		}
	}
}

// TestConvolutionTheorem: circular convolution equals pointwise spectral
// product.
func TestConvolutionTheorem(t *testing.T) {
	n := 64
	a := randVec(n, 10)
	b := randVec(n, 11)
	// Direct circular convolution.
	direct := make([]complex128, n)
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += a[j] * b[(i-j+n)%n]
		}
		direct[i] = acc
	}
	p := NewPlan[complex128](n)
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	p.ForwardTransform(fa)
	p.ForwardTransform(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.InverseTransform(fa)
	if e := maxErr(fa, direct); e > 1e-9*float64(n) {
		t.Errorf("convolution theorem error %g", e)
	}
}

// TestFP64RoundTripErrorGrowth: round-trip error grows slowly with n and
// stays near machine epsilon (the FFT's orthogonality the paper leans on
// in §III).
func TestFP64RoundTripErrorGrowth(t *testing.T) {
	for _, n := range []int{64, 1024, 16384} {
		x := randVec(n, int64(n))
		p := NewPlan[complex128](n)
		y := append([]complex128(nil), x...)
		p.ForwardTransform(y)
		p.InverseTransform(y)
		var errSq, normSq float64
		for i := range x {
			d := y[i] - x[i]
			errSq += real(d)*real(d) + imag(d)*imag(d)
			normSq += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		rel := math.Sqrt(errSq / normSq)
		if rel > 1e-14 {
			t.Errorf("n=%d: FP64 round-trip rel error %g", n, rel)
		}
	}
}

// TestGentlemanSandeBound: forward-transform error against the O(n²) DFT
// oracle stays within the classic 1.06·(2n)^(2/3)·ε style bound quoted
// in §III (with generous slack for the oracle's own rounding).
func TestGentlemanSandeBound(t *testing.T) {
	n := 256
	x := randVec(n, 77)
	want := DFT(x, Forward)
	got := append([]complex128(nil), x...)
	NewPlan[complex128](n).ForwardTransform(got)
	var norm float64
	for _, v := range want {
		norm = math.Max(norm, cmplx.Abs(v))
	}
	bound := 10 * 1.06 * math.Pow(2*float64(n), 2.0/3) * 1.1e-16 * norm
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > bound {
			t.Fatalf("error at %d exceeds Gentleman–Sande-style bound", i)
		}
	}
}

func TestBatchStridedWithDist(t *testing.T) {
	// 3 vectors of length 4 at dist 5 (padded layout), stride 1.
	n, count, dist := 4, 3, 5
	x := randVec(count*dist, 9)
	want := append([]complex128(nil), x...)
	for v := 0; v < count; v++ {
		out := DFT(x[v*dist:v*dist+n], Forward)
		copy(want[v*dist:v*dist+n], out)
	}
	NewPlan[complex128](n).BatchStrided(x, count, 1, dist, Forward)
	if e := maxErr(x, want); e > 1e-12 {
		t.Errorf("dist-strided batch error %g", e)
	}
}

func TestInverse3DScaling(t *testing.T) {
	n0, n1, n2 := 4, 6, 2
	x := randVec(n0*n1*n2, 13)
	orig := append([]complex128(nil), x...)
	Forward3D(x, n0, n1, n2)
	Inverse3D(x, n0, n1, n2)
	if e := maxErr(x, orig); e > 1e-12 {
		t.Errorf("3-D inverse scaling error %g", e)
	}
}

func TestTransform3DSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Transform3D(make([]complex128, 10), 2, 2, 2, Forward)
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 30, 32, 100, 128, 243} {
		x := randVec(n, int64(n))
		want := DFT(x, Forward)
		p := NewPlan[complex128](n)
		got := append([]complex128(nil), x...)
		p.ForwardTransform(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error vs DFT = %g", n, e)
		}
	}
}

func TestInverseMatchesDFT(t *testing.T) {
	for _, n := range []int{2, 6, 8, 17, 64} {
		x := randVec(n, int64(n)+1000)
		want := DFT(x, Inverse)
		for i := range want {
			want[i] /= complex(float64(n), 0)
		}
		p := NewPlan[complex128](n)
		got := append([]complex128(nil), x...)
		p.InverseTransform(got)
		if e := maxErr(got, want); e > 1e-10*float64(n) {
			t.Errorf("n=%d: inverse max error = %g", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 9, 15, 16, 128, 1000, 1024} {
		x := randVec(n, 42)
		p := NewPlan[complex128](n)
		y := append([]complex128(nil), x...)
		p.ForwardTransform(y)
		p.InverseTransform(y)
		if e := maxErr(y, x); e > 1e-11*float64(n) {
			t.Errorf("n=%d: round trip error = %g", n, e)
		}
	}
}

func TestRoundTripComplex64(t *testing.T) {
	for _, n := range []int{8, 64, 100, 256} {
		rng := rand.New(rand.NewSource(7))
		x := make([]complex64, n)
		for i := range x {
			x[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
		}
		p := NewPlan[complex64](n)
		y := append([]complex64(nil), x...)
		p.ForwardTransform(y)
		p.InverseTransform(y)
		var m float64
		for i := range y {
			m = math.Max(m, cmplx.Abs(complex128(y[i]-x[i])))
		}
		if m > 1e-4 {
			t.Errorf("n=%d: complex64 round trip error = %g", n, m)
		}
	}
}

// TestComplex64LessAccurate confirms the complex64 path really computes
// in single precision: its round-trip error must be orders of magnitude
// above the complex128 path's.
func TestComplex64LessAccurate(t *testing.T) {
	const n = 1024
	x := randVec(n, 11)
	x32 := make([]complex64, n)
	for i := range x {
		x32[i] = complex64(x[i])
	}
	p64 := NewPlan[complex128](n)
	p32 := NewPlan[complex64](n)
	y64 := append([]complex128(nil), x...)
	p64.ForwardTransform(y64)
	p64.InverseTransform(y64)
	p32.ForwardTransform(x32)
	p32.InverseTransform(x32)
	var e64, e32 float64
	for i := range x {
		e64 += cmplx.Abs(y64[i]-x[i]) * cmplx.Abs(y64[i]-x[i])
		d := complex128(x32[i]) - x[i]
		e32 += cmplx.Abs(d) * cmplx.Abs(d)
	}
	e64, e32 = math.Sqrt(e64), math.Sqrt(e32)
	if e32 < 1e4*e64 {
		t.Errorf("complex64 error %g not clearly above complex128 error %g", e32, e64)
	}
}

func TestImpulseResponse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	n := 32
	x := make([]complex128, n)
	x[0] = 1
	NewPlan[complex128](n).ForwardTransform(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 64
	p := NewPlan[complex128](n)
	f := func(seedA, seedB int64, aRe, aIm float64) bool {
		if math.IsNaN(aRe) || math.IsInf(aRe, 0) || math.IsNaN(aIm) || math.IsInf(aIm, 0) {
			return true
		}
		a := complex(math.Mod(aRe, 10), math.Mod(aIm, 10))
		x := randVec(n, seedA)
		y := randVec(n, seedB)
		z := make([]complex128, n)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		p.ForwardTransform(x)
		p.ForwardTransform(y)
		p.ForwardTransform(z)
		for i := range z {
			if cmplx.Abs(z[i]-(a*x[i]+y[i])) > 1e-9*(1+cmplx.Abs(z[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	// ||X||² = n·||x||² for the unscaled forward transform.
	f := func(seed int64) bool {
		n := 128
		x := randVec(n, seed)
		var ein float64
		for _, v := range x {
			ein += real(v)*real(v) + imag(v)*imag(v)
		}
		NewPlan[complex128](n).ForwardTransform(x)
		var eout float64
		for _, v := range x {
			eout += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(eout-float64(n)*ein) < 1e-8*eout
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShiftTheorem(t *testing.T) {
	// FFT of x shifted by s equals FFT(x) modulated by exp(-2πi ks/n).
	n := 64
	s := 5
	x := randVec(n, 99)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[(i+s)%n]
	}
	p := NewPlan[complex128](n)
	p.ForwardTransform(x)
	p.ForwardTransform(shifted)
	for k := 0; k < n; k++ {
		ang := 2 * math.Pi * float64(k) * float64(s) / float64(n)
		want := x[k] * complex(math.Cos(ang), math.Sin(ang))
		if cmplx.Abs(shifted[k]-want) > 1e-10*(1+cmplx.Abs(want)) {
			t.Fatalf("shift theorem fails at k=%d", k)
		}
	}
}

func TestBatch(t *testing.T) {
	n, count := 16, 8
	x := randVec(n*count, 3)
	want := make([]complex128, 0, n*count)
	for v := 0; v < count; v++ {
		want = append(want, DFT(x[v*n:(v+1)*n], Forward)...)
	}
	NewPlan[complex128](n).Batch(x, count, Forward)
	if e := maxErr(x, want); e > 1e-10 {
		t.Errorf("batch error = %g", e)
	}
}

func TestBatchStrided(t *testing.T) {
	// Transform columns of an 8×6 row-major matrix (stride 8, dist 1).
	rows, cols := 6, 8
	x := randVec(rows*cols, 5)
	want := append([]complex128(nil), x...)
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		out := DFT(col, Forward)
		for r := 0; r < rows; r++ {
			want[r*cols+c] = out[r]
		}
	}
	NewPlan[complex128](rows).BatchStrided(x, cols, cols, 1, Forward)
	if e := maxErr(x, want); e > 1e-10 {
		t.Errorf("strided batch error = %g", e)
	}
}

func Test3DMatchesNestedDFT(t *testing.T) {
	n0, n1, n2 := 4, 3, 5
	x := randVec(n0*n1*n2, 21)
	want := append([]complex128(nil), x...)
	// Apply direct DFT along each axis.
	buf := make([]complex128, 8)
	// axis 0
	for k := 0; k < n2; k++ {
		for j := 0; j < n1; j++ {
			base := n0 * (j + n1*k)
			copy(buf[:n0], want[base:base+n0])
			out := DFT(buf[:n0], Forward)
			copy(want[base:base+n0], out)
		}
	}
	// axis 1
	for k := 0; k < n2; k++ {
		for i := 0; i < n0; i++ {
			for j := 0; j < n1; j++ {
				buf[j] = want[i+n0*(j+n1*k)]
			}
			out := DFT(buf[:n1], Forward)
			for j := 0; j < n1; j++ {
				want[i+n0*(j+n1*k)] = out[j]
			}
		}
	}
	// axis 2
	for j := 0; j < n1; j++ {
		for i := 0; i < n0; i++ {
			for k := 0; k < n2; k++ {
				buf[k] = want[i+n0*(j+n1*k)]
			}
			out := DFT(buf[:n2], Forward)
			for k := 0; k < n2; k++ {
				want[i+n0*(j+n1*k)] = out[k]
			}
		}
	}
	Forward3D(x, n0, n1, n2)
	if e := maxErr(x, want); e > 1e-10 {
		t.Errorf("3-D error vs nested DFT = %g", e)
	}
}

func Test3DRoundTrip(t *testing.T) {
	n0, n1, n2 := 8, 8, 8
	x := randVec(n0*n1*n2, 33)
	orig := append([]complex128(nil), x...)
	Forward3D(x, n0, n1, n2)
	Inverse3D(x, n0, n1, n2)
	if e := maxErr(x, orig); e > 1e-11 {
		t.Errorf("3-D round trip error = %g", e)
	}
}

func TestFlopCount(t *testing.T) {
	if FlopCount(1) != 0 {
		t.Error("FlopCount(1) != 0")
	}
	if got := FlopCount(1024); math.Abs(got-5*1024*10) > 1e-6 {
		t.Errorf("FlopCount(1024) = %g, want %g", got, 5.0*1024*10)
	}
}

func TestPlanLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan(0) did not panic")
		}
	}()
	NewPlan[complex128](0)
}

func TestTransformLengthMismatchPanics(t *testing.T) {
	p := NewPlan[complex128](8)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	p.ForwardTransform(make([]complex128, 4))
}

func BenchmarkFFT1024(b *testing.B) {
	x := randVec(1024, 1)
	p := NewPlan[complex128](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ForwardTransform(x)
	}
}

func BenchmarkFFT3D64(b *testing.B) {
	n := 64
	x := randVec(n*n*n, 1)
	p := NewPlan[complex128](n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transform3DWithPlans(x, p, p, p, Forward)
	}
}

package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out := Chart("demo", []string{"1", "2", "3"}, []Series{
		{Name: "up", Values: []float64{1, 2, 3}},
		{Name: "down", Values: []float64{3, 2, 1}},
	}, 30, 8, false)
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

// gridLines returns only the plot-area lines (between the title and the
// x axis), excluding the legend, which also contains marker runes.
func gridLines(out string) []string {
	lines := strings.Split(out, "\n")
	var area []string
	for _, l := range lines[1:] {
		if strings.Contains(l, "+--") {
			break
		}
		area = append(area, l)
	}
	return area
}

func TestChartMonotoneSeriesOrientation(t *testing.T) {
	// An increasing series must put its right-hand marker on a higher
	// row (smaller index) than its left-hand one.
	out := Chart("t", []string{"a", "b"}, []Series{
		{Name: "s", Values: []float64{1, 100}},
	}, 20, 10, false)
	leftRow, rightRow := -1, -1
	leftCol, rightCol := 1<<30, -1
	for r, line := range gridLines(out) {
		for c, ch := range line {
			if ch != '*' {
				continue
			}
			if c < leftCol {
				leftCol, leftRow = c, r
			}
			if c > rightCol {
				rightCol, rightRow = c, r
			}
		}
	}
	if leftRow < 0 || rightRow < 0 {
		t.Fatal("markers not found")
	}
	if rightRow >= leftRow {
		t.Errorf("increasing series not rising: left row %d, right row %d", leftRow, rightRow)
	}
}

func TestChartLogScale(t *testing.T) {
	out := Chart("log", []string{"1", "2", "3"}, []Series{
		{Name: "s", Values: []float64{1e-8, 1e-4, 1}},
	}, 30, 9, true)
	if !strings.Contains(out, "1e-08") && !strings.Contains(out, "1e-08") {
		// The low label should show the minimum.
		if !strings.Contains(out, "1e-08") {
			t.Logf("chart:\n%s", out)
		}
	}
	// In log scale the three points must land on distinct rows spread
	// across the chart, not bunched at the bottom.
	rows := map[int]bool{}
	for r, line := range gridLines(out) {
		if strings.ContainsRune(line, '*') {
			rows[r] = true
		}
	}
	if len(rows) != 3 {
		t.Errorf("log scale put %d distinct rows, want 3\n%s", len(rows), out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := Chart("none", nil, nil, 20, 5, false); !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
	out := Chart("flat", []string{"x"}, []Series{{Name: "s", Values: []float64{5, 5}}}, 20, 5, false)
	if !strings.Contains(out, "*") {
		t.Error("flat series should still render")
	}
	out = Chart("nan", []string{"x"}, []Series{{Name: "s", Values: []float64{math.NaN(), 1}}}, 20, 5, false)
	if !strings.Contains(out, "*") {
		t.Error("NaN values should be skipped, not fatal")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	out := Chart("tiny", []string{"a"}, []Series{{Name: "s", Values: []float64{1, 2}}}, 1, 1, false)
	if len(out) == 0 {
		t.Error("tiny chart empty")
	}
}

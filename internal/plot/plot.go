// Package plot renders small ASCII line charts so the experiment
// drivers can show the paper's figures directly in the terminal
// (`-plot` flags on cmd/alltoallbench and cmd/fftbench).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// markers distinguish up to eight series.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series over shared x labels into a width×height
// character grid with a y-axis, a legend, and optional log-scale y.
func Chart(title string, xlabels []string, series []Series, width, height int, logY bool) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || (logY && v <= 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if lo == hi {
		hi = lo + 1
	}
	tr := func(v float64) float64 { return v }
	if logY {
		tr = math.Log10
	}
	tlo, thi := tr(lo), tr(hi)

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	col := func(i int) int {
		if n <= 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}
	row := func(v float64) int {
		f := (tr(v) - tlo) / (thi - tlo)
		r := int(math.Round(float64(height-1) * (1 - f)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if math.IsNaN(v) || (logY && v <= 0) {
				continue
			}
			grid[row(v)][col(i)] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yfmt := func(v float64) string { return fmt.Sprintf("%9.3g", v) }
	for r, line := range grid {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = yfmt(hi)
		case height - 1:
			label = yfmt(lo)
		case (height - 1) / 2:
			mid := tlo + (thi-tlo)/2
			if logY {
				label = yfmt(math.Pow(10, mid))
			} else {
				label = yfmt(mid)
			}
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	// X labels: first, middle, last.
	if len(xlabels) > 0 {
		xline := make([]rune, width)
		for i := range xline {
			xline[i] = ' '
		}
		place := func(i int) {
			lbl := xlabels[i]
			start := col(i)
			if start+len(lbl) > width {
				start = width - len(lbl)
			}
			for j, ch := range lbl {
				if start+j < width {
					xline[start+j] = ch
				}
			}
		}
		place(0)
		if len(xlabels) > 2 {
			place(len(xlabels) / 2)
		}
		if len(xlabels) > 1 {
			place(len(xlabels) - 1)
		}
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 9), string(xline))
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%s %c %s\n", strings.Repeat(" ", 9), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

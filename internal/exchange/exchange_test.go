package exchange

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func machine(nodes int) netsim.Config { return netsim.Summit(nodes) }

// payload builds a distinguishable message from src to dst.
func payload(src, dst, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src*7 + dst*13 + i)
	}
	return b
}

func checkAlltoall(t *testing.T, name string, run func(c *mpi.Comm, send [][]byte) [][]byte) {
	t.Helper()
	cfg := machine(2) // 12 ranks
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		send := make([][]byte, p)
		for d := 0; d < p; d++ {
			send[d] = payload(c.Rank(), d, 64+d)
		}
		recv := run(c, send)
		for s := 0; s < p; s++ {
			want := payload(s, c.Rank(), 64+c.Rank())
			if !bytes.Equal(recv[s], want) {
				t.Errorf("%s: rank %d from %d corrupt", name, c.Rank(), s)
			}
		}
	})
}

func TestLinearAlltoallv(t *testing.T) {
	checkAlltoall(t, "linear", LinearAlltoallv)
}

func TestPairwiseAlltoallv(t *testing.T) {
	checkAlltoall(t, "pairwise", PairwiseAlltoallv)
}

func TestOSCExchange(t *testing.T) {
	for _, nodeAware := range []bool{true, false} {
		checkAlltoall(t, "osc", func(c *mpi.Comm, send [][]byte) [][]byte {
			size := func(dst, src int) int { return 64 + dst }
			o := NewOSC(c, size, nodeAware)
			return o.Exchange(send)
		})
	}
}

func TestOSCReuseAcrossExchanges(t *testing.T) {
	cfg := machine(1)
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		o := NewOSC(c, Uniform(32), true)
		for iter := 0; iter < 3; iter++ {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(c.Rank()+iter, d, 32)
			}
			recv := o.Exchange(send)
			for s := 0; s < p; s++ {
				if !bytes.Equal(recv[s], payload(s+iter, c.Rank(), 32)) {
					t.Errorf("iter %d rank %d from %d corrupt", iter, c.Rank(), s)
				}
			}
		}
	})
}

func TestOSCSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	cfg := machine(1)
	mpi.Run(cfg, func(c *mpi.Comm) {
		o := NewOSC(c, Uniform(8), true)
		send := make([][]byte, c.Size())
		for d := range send {
			send[d] = make([]byte, 9) // wrong size
		}
		o.Exchange(send)
	})
}

func TestRingOrderNodeAware(t *testing.T) {
	cfg := machine(3) // 18 ranks, 6 per node
	mpi.Run(cfg, func(c *mpi.Comm) {
		order := ringOrder(c, true)
		if len(order) != c.Size() {
			t.Fatalf("order length %d", len(order))
		}
		seen := make(map[int]bool)
		for _, d := range order {
			if seen[d] {
				t.Fatalf("rank %d: duplicate destination %d", c.Rank(), d)
			}
			seen[d] = true
		}
		// First 6 destinations are all on the next node.
		wantNode := (c.Node() + 1) % 3
		for _, d := range order[:6] {
			if c.NodeOf(d) != wantNode {
				t.Errorf("rank %d: early destination %d not on node %d", c.Rank(), d, wantNode)
			}
		}
	})
}

func TestRingOrderSpreadsTargets(t *testing.T) {
	// At each step index, the 6 ranks of node 0 must target 6 distinct
	// remote ranks (the permute[] property of Algorithm 3).
	cfg := machine(2)
	orders := make([][]int, cfg.Ranks())
	mpi.Run(cfg, func(c *mpi.Comm) {
		orders[c.Rank()] = ringOrder(c, true)
	})
	for step := 0; step < cfg.Ranks(); step++ {
		seen := make(map[int]bool)
		for r := 0; r < 6; r++ { // node 0's ranks
			d := orders[r][step]
			if seen[d] {
				t.Fatalf("step %d: two node-0 ranks target %d", step, d)
			}
			seen[d] = true
		}
	}
}

func TestCompressedOSCLossless(t *testing.T) {
	cfg := machine(1)
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		count := 100
		x := NewCompressedOSC(c, compress.None{}, gpu.NewStream(gpu.V100(), c), 3, UniformCount(count))
		send := make([][]float64, p)
		for d := range send {
			send[d] = make([]float64, count)
			for i := range send[d] {
				send[d][i] = float64(c.Rank()) + float64(d)/100 + float64(i)/1e6
			}
		}
		recv := x.Exchange(send)
		for s := 0; s < p; s++ {
			for i := 0; i < count; i++ {
				want := float64(s) + float64(c.Rank())/100 + float64(i)/1e6
				if recv[s][i] != want {
					t.Fatalf("rank %d from %d [%d]: %v != %v", c.Rank(), s, i, recv[s][i], want)
				}
			}
		}
	})
}

func TestCompressedOSCCast32ErrorBound(t *testing.T) {
	cfg := machine(1)
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		count := 257 // odd count exercises chunk tails
		x := NewCompressedOSC(c, compress.Cast32{}, gpu.NewStream(gpu.V100(), c), 4, UniformCount(count))
		send := make([][]float64, p)
		for d := range send {
			send[d] = make([]float64, count)
			for i := range send[d] {
				send[d][i] = math.Sin(float64(c.Rank()*1000 + d*100 + i))
			}
		}
		recv := x.Exchange(send)
		for s := 0; s < p; s++ {
			for i := 0; i < count; i++ {
				want := math.Sin(float64(s*1000 + c.Rank()*100 + i))
				if got := recv[s][i]; got != float64(float32(want)) {
					t.Fatalf("value not FP32-cast: got %v want %v", got, float64(float32(want)))
				}
			}
		}
	})
}

func TestCompressedOSCVariableRate(t *testing.T) {
	// Lossless (variable-rate) must work thanks to per-chunk headers.
	cfg := machine(1)
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		count := 64
		x := NewCompressedOSC(c, compress.Lossless{}, gpu.NewStream(gpu.V100(), c), 2, UniformCount(count))
		send := make([][]float64, p)
		for d := range send {
			send[d] = make([]float64, count) // zeros compress well
			send[d][0] = float64(c.Rank()*100 + d)
		}
		recv := x.Exchange(send)
		for s := 0; s < p; s++ {
			if recv[s][0] != float64(s*100+c.Rank()) || recv[s][1] != 0 {
				t.Fatalf("lossless exchange corrupt")
			}
		}
	})
}

func TestCompressedFasterThanUncompressedOSC(t *testing.T) {
	cfg := machine(4) // 24 ranks: communication-dominated
	count := 10000    // 80 KB per pair
	tNone := CompressedExchangeTime(cfg, compress.None{}, 4, count, 2, true)
	tCast := CompressedExchangeTime(cfg, compress.Cast32{}, 4, count, 2, true)
	if tCast >= tNone {
		t.Errorf("compression not faster: FP32 %.3g vs FP64 %.3g", tCast, tNone)
	}
	// Speedup should approach the compression rate (×2) but not exceed
	// it by much; allow a broad band for latency effects.
	sp := tNone / tCast
	if sp < 1.2 || sp > 2.6 {
		t.Errorf("FP64→FP32 exchange speedup %.2f outside plausible band", sp)
	}
}

func TestPipelineBeatsSynchronousCompression(t *testing.T) {
	cfg := machine(2)
	count := 20000
	tPipe := CompressedExchangeTime(cfg, compress.Cast32{}, 8, count, 2, true)
	tSync := CompressedExchangeTime(cfg, compress.Cast32{}, 8, count, 2, false)
	if tPipe > tSync*1.02 {
		t.Errorf("pipelined %.3g slower than synchronous %.3g", tPipe, tSync)
	}
}

func TestNodeBandwidthOSCBeatsLinearAtScale(t *testing.T) {
	cfg := machine(16) // 96 ranks
	msg := 80 * 1024
	bwLinear := NodeBandwidth(cfg, AlgoLinear, msg, 1)
	bwOSC := NodeBandwidth(cfg, AlgoOSC, msg, 1)
	if bwOSC <= bwLinear {
		t.Errorf("OSC %.3g GB/s not above linear %.3g GB/s", bwOSC/1e9, bwLinear/1e9)
	}
}

func TestNodeBandwidthUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NodeBandwidth(machine(1), "nope", 1024, 1)
}

func TestSplitGroups(t *testing.T) {
	order := []int{5, 3, 8, 1, 9, 2, 7}
	groups := splitGroups(order, 3)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	var flat []int
	for _, g := range groups {
		if len(g) == 0 {
			t.Error("empty group")
		}
		flat = append(flat, g...)
	}
	for i, v := range flat {
		if v != order[i] {
			t.Fatalf("groups reorder destinations: %v", groups)
		}
	}
	// More chunks than destinations degrades gracefully.
	if got := splitGroups([]int{1, 2}, 10); len(got) != 2 {
		t.Errorf("splitGroups small = %v", got)
	}
}

func TestTwoSidedCompressedCorrectness(t *testing.T) {
	cfg := machine(1)
	p := cfg.Ranks()
	mpi.Run(cfg, func(c *mpi.Comm) {
		count := 97
		x := NewTwoSidedCompressed(c, compress.Cast32{}, gpu.NewStream(gpu.V100(), c), UniformCount(count))
		send := make([][]float64, p)
		for d := range send {
			send[d] = make([]float64, count)
			for i := range send[d] {
				send[d][i] = math.Cos(float64(c.Rank()*500 + d*50 + i))
			}
		}
		recv := x.Exchange(send)
		for s := 0; s < p; s++ {
			for i := 0; i < count; i++ {
				want := float64(float32(math.Cos(float64(s*500 + c.Rank()*50 + i))))
				if recv[s][i] != want {
					t.Fatalf("value mismatch at src %d idx %d", s, i)
				}
			}
		}
	})
}

func TestTwoSidedCompressedSparsePattern(t *testing.T) {
	// Asymmetric sparse pattern: rank r sends only to r+1 (mod p).
	cfg := machine(1)
	p := cfg.Ranks()
	counts := func(dst, src int) int {
		if dst == (src+1)%p {
			return 10
		}
		return 0
	}
	mpi.Run(cfg, func(c *mpi.Comm) {
		x := NewTwoSidedCompressed(c, compress.None{}, gpu.NewStream(gpu.V100(), c), counts)
		send := make([][]float64, p)
		for d := range send {
			send[d] = make([]float64, counts(d, c.Rank()))
			for i := range send[d] {
				send[d][i] = float64(c.Rank()*100 + i)
			}
		}
		recv := x.Exchange(send)
		src := (c.Rank() - 1 + p) % p
		for i := 0; i < 10; i++ {
			if recv[src][i] != float64(src*100+i) {
				t.Fatalf("sparse pattern corrupt at %d", i)
			}
		}
	})
}

// TestOSCBeatsTwoSidedCompressed: with equal compression, the one-sided
// pipelined transport must not be slower in the communication-dominated
// regime — the transport half of the paper's contribution.
func TestOSCBeatsTwoSidedCompressed(t *testing.T) {
	cfg := machine(8)
	count := 20000
	var tOSC, t2S float64
	{
		p := cfg.Ranks()
		mpi.Run(cfg, func(c *mpi.Comm) {
			x := NewCompressedOSC(c, compress.Cast32{}, gpu.NewStream(gpu.V100(), c), 8, UniformCount(count))
			send := mkSend(c.Rank(), p, count)
			x.Exchange(send)
			c.Barrier()
			t0 := c.AllreduceFloat64("min", c.Now())
			x.Exchange(send)
			c.Barrier()
			t1 := c.AllreduceFloat64("max", c.Now())
			if c.Rank() == 0 {
				tOSC = t1 - t0
			}
		})
		mpi.Run(cfg, func(c *mpi.Comm) {
			x := NewTwoSidedCompressed(c, compress.Cast32{}, gpu.NewStream(gpu.V100(), c), UniformCount(count))
			send := mkSend(c.Rank(), p, count)
			x.Exchange(send)
			c.Barrier()
			t0 := c.AllreduceFloat64("min", c.Now())
			x.Exchange(send)
			c.Barrier()
			t1 := c.AllreduceFloat64("max", c.Now())
			if c.Rank() == 0 {
				t2S = t1 - t0
			}
		})
	}
	if tOSC > t2S*1.05 {
		t.Errorf("compressed OSC %.3g slower than two-sided compressed %.3g", tOSC, t2S)
	}
}

func mkSend(rank, p, count int) [][]float64 {
	send := make([][]float64, p)
	for d := range send {
		send[d] = make([]float64, count)
		for i := range send[d] {
			send[d][i] = float64((rank*13+d*7+i)%1000) / 1000
		}
	}
	return send
}

func TestBruckAlltoallCorrectness(t *testing.T) {
	for _, ranks := range []int{2, 3, 5, 8, 12} {
		cfg := machine(1)
		if ranks != cfg.Ranks() {
			cfg.GPUsPerNode = 1
			cfg.Nodes = ranks
		}
		p := cfg.Ranks()
		const bs = 24
		mpi.Run(cfg, func(c *mpi.Comm) {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(c.Rank(), d, bs)
			}
			recv := BruckAlltoall(c, send, bs)
			for s := 0; s < p; s++ {
				if !bytes.Equal(recv[s], payload(s, c.Rank(), bs)) {
					t.Errorf("p=%d rank %d from %d corrupt", p, c.Rank(), s)
				}
			}
		})
	}
}

func TestBruckMessageCountLogarithmic(t *testing.T) {
	cfg := machine(16) // 96 ranks
	p := cfg.Ranks()
	res := mpi.Run(cfg, func(c *mpi.Comm) {
		BruckAlltoallN(c, 1024)
	})
	rounds := 0
	for k := 1; k < p; k <<= 1 {
		rounds++
	}
	if res.Stats.Messages != p*rounds {
		t.Errorf("bruck sent %d messages, want %d (p·⌈log2 p⌉)", res.Stats.Messages, p*rounds)
	}
}

// TestBruckWinsAtSmallMessages: in the latency/per-message-cost bound
// regime the log-round algorithm must beat the linear one.
func TestBruckWinsAtSmallMessages(t *testing.T) {
	cfg := machine(32) // 192 ranks
	small := 64        // bytes per pair
	bwLinear := NodeBandwidth(cfg, AlgoLinear, small, 1)
	bwBruck := NodeBandwidth(cfg, AlgoBruck, small, 1)
	if bwBruck <= bwLinear {
		t.Errorf("bruck %.3g not above linear %.3g at small messages", bwBruck, bwLinear)
	}
}

func TestBruckNonUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	mpi.Run(machine(1), func(c *mpi.Comm) {
		send := make([][]byte, c.Size())
		for d := range send {
			send[d] = make([]byte, d+1)
		}
		BruckAlltoall(c, send, 1)
	})
}

package exchange

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
)

// TestOSCFuzzAgainstLinear: for random (deterministic-seeded) size
// matrices, the one-sided exchange must deliver exactly what the linear
// baseline delivers.
func TestOSCFuzzAgainstLinear(t *testing.T) {
	f := func(seed int64) bool {
		cfg := machine(1) // 6 ranks
		p := cfg.Ranks()
		rng := rand.New(rand.NewSource(seed))
		sizes := make([][]int, p)
		for d := range sizes {
			sizes[d] = make([]int, p)
			for s := range sizes[d] {
				if rng.Intn(3) > 0 {
					sizes[d][s] = rng.Intn(200)
				}
			}
		}
		sizeFn := func(dst, src int) int { return sizes[dst][src] }
		ok := true
		mpi.Run(cfg, func(c *mpi.Comm) {
			me := c.Rank()
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(me, d, sizes[d][me])
			}
			osc := NewOSC(c, sizeFn, true)
			got := osc.Exchange(send)
			for s := 0; s < p; s++ {
				want := payload(s, me, sizes[me][s])
				if !bytes.Equal(got[s], want) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCompressedOSCFuzzPatterns: random sparse count matrices with the
// lossless method must round-trip exactly.
func TestCompressedOSCFuzzPatterns(t *testing.T) {
	f := func(seed int64) bool {
		cfg := machine(1)
		p := cfg.Ranks()
		rng := rand.New(rand.NewSource(seed))
		counts := make([][]int, p)
		for d := range counts {
			counts[d] = make([]int, p)
			for s := range counts[d] {
				if rng.Intn(2) == 0 {
					counts[d][s] = rng.Intn(50)
				}
			}
		}
		countFn := func(dst, src int) int { return counts[dst][src] }
		ok := true
		mpi.Run(cfg, func(c *mpi.Comm) {
			me := c.Rank()
			x := NewCompressedOSC(c, compress.None{}, gpu.NewStream(gpu.V100(), c), 3, countFn)
			send := make([][]float64, p)
			for d := 0; d < p; d++ {
				send[d] = make([]float64, counts[d][me])
				for i := range send[d] {
					send[d][i] = float64(me*1000+d*100+i) / 7
				}
			}
			got := x.Exchange(send)
			for s := 0; s < p; s++ {
				for i := 0; i < counts[me][s]; i++ {
					if got[s][i] != float64(s*1000+me*100+i)/7 {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDecodeSlotFuzzNeverPanics: the window-slot decoder is the first
// consumer of bytes that crossed the (possibly corrupting) one-sided
// transport. Whatever those bytes hold — random noise, a mutated valid
// stream, an oversized length header — it must return an error or a
// value, never panic or read out of range.
func TestDecodeSlotFuzzNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	methods := []compress.Method{
		compress.None{}, compress.Cast32{}, compress.Cast16{}, compress.CastBF16{},
		compress.Trim{M: 20}, compress.Block{Bits: 12},
		compress.Scaled{Inner: compress.Cast16{}}, compress.Lossless{},
	}
	vals := make([]float64, 37)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for _, m := range methods {
		// A valid slot: 4-byte length header + compressed payload, padded
		// to the fixed window slot size.
		slot := make([]byte, 4+m.MaxCompressedLen(len(vals)))
		clen := m.Compress(slot[4:], vals)
		putLE32(slot, uint32(clen))
		dst := make([]float64, len(vals))
		if err := decodeSlot(m, dst, slot); err != nil {
			t.Errorf("%s: valid slot rejected: %v", m.Name(), err)
		}
		for trial := 0; trial < 300; trial++ {
			bad := append([]byte(nil), slot...)
			switch trial % 3 {
			case 0: // mutate bytes anywhere, header included
				for flips := 1 + rng.Intn(5); flips > 0; flips-- {
					bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
				}
			case 1: // hostile length header
				putLE32(bad, rng.Uint32())
			case 2: // pure noise
				rng.Read(bad)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: decodeSlot panicked on corrupt slot: %v", m.Name(), r)
					}
				}()
				_ = decodeSlot(m, dst, bad)
			}()
		}
		// Truncated slots, down to and below the header.
		for _, n := range []int{0, 1, 3, 4, len(slot) / 2} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: decodeSlot panicked on %d-byte slot: %v", m.Name(), n, r)
					}
				}()
				_ = decodeSlot(m, dst, slot[:n])
			}()
		}
	}
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// TestAlgorithmsAgreeOnTime: phantom and real exchanges of the same
// pattern take identical virtual time (the data plane never affects the
// time plane).
func TestAlgorithmsAgreeOnTime(t *testing.T) {
	cfg := machine(2)
	p := cfg.Ranks()
	msg := 4096
	var tReal, tPhantom float64
	mpi.Run(cfg, func(c *mpi.Comm) {
		send := make([][]byte, p)
		for d := range send {
			send[d] = make([]byte, msg)
		}
		LinearAlltoallv(c, send)
		c.Barrier()
		if c.Rank() == 0 {
			tReal = c.Now()
		}
	})
	mpi.Run(cfg, func(c *mpi.Comm) {
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = msg
		}
		LinearAlltoallvN(c, sizes)
		c.Barrier()
		if c.Rank() == 0 {
			tPhantom = c.Now()
		}
	})
	if tReal != tPhantom {
		t.Errorf("phantom time %g != real time %g", tPhantom, tReal)
	}
}

package exchange

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Self-healing protocol tags (user tag space, alongside the exchange
// algorithms' data tags).
const (
	tagVerdict  = 104 // 1-byte per-epoch verdict: did your put survive?
	tagRepair   = 105 // lossless re-fetch of a damaged slot
	tagFallback = 106 // permanent two-sided path of a downgraded peer
)

// Metric names of the self-healing layer.
const (
	metricRepairs       = "exchange/repairs"
	metricFallbackPeers = "exchange/fallback_peers"
)

// DefaultFallbackAfter is how many damaged epochs a peer link tolerates
// before the exchange stops trusting its one-sided path and moves the
// pair to the lossless two-sided transport for good.
const DefaultFallbackAfter = 3

// Degradation reports how far a self-healing exchange has drifted from
// its pure one-sided fast path: Repairs counts slots re-fetched over
// the two-sided transport after a fence found them corrupt or missing,
// Fallback lists the peers (either direction) permanently downgraded to
// the two-sided path. The zero value means the exchange is healthy.
type Degradation struct {
	Repairs  int64
	Fallback []int
}

// Degraded reports whether the exchange left the fast path at all.
func (d Degradation) Degraded() bool { return d.Repairs > 0 || len(d.Fallback) > 0 }

// String renders the report for logs and diagnostics.
func (d Degradation) String() string {
	if !d.Degraded() {
		return "healthy"
	}
	return fmt.Sprintf("%d repairs, fallback peers %v", d.Repairs, d.Fallback)
}

// healer is the per-peer damage ledger shared by OSC and CompressedOSC:
// it runs the post-fence verdict/repair round and escalates repeatedly
// failing links to a permanent two-sided fallback. It is inert (and
// free) unless the runtime is in reliable mode.
type healer struct {
	c *mpi.Comm
	// threshold is the damaged-epoch count that triggers fallback.
	threshold int
	failFrom  []int  // damaged epochs per source
	failTo    []int  // resend demands per destination
	fellFrom  []bool // sources now delivering over two-sided
	fellTo    []bool // destinations now reached over two-sided
	repairs   int64
}

func newHealer(c *mpi.Comm) *healer {
	p := c.Size()
	return &healer{
		c: c, threshold: DefaultFallbackAfter,
		failFrom: make([]int, p), failTo: make([]int, p),
		fellFrom: make([]bool, p), fellTo: make([]bool, p),
	}
}

// active reports whether the healing protocol runs at all. Without a
// fault plan the runtime is not in reliable mode and every exchange
// takes exactly the pre-existing fast path.
func (h *healer) active() bool { return h.c.Reliable() }

// report snapshots the cumulative degradation.
func (h *healer) report() Degradation {
	d := Degradation{Repairs: h.repairs}
	for p := range h.fellFrom {
		if h.fellFrom[p] || h.fellTo[p] {
			d.Fallback = append(d.Fallback, p)
		}
	}
	return d
}

// maskExpected returns expected with fallen-back sources zeroed (their
// data now arrives over two-sided, so the fence must not wait for
// puts). The original slice is never modified.
func (h *healer) maskExpected(expected []int) []int {
	masked := append([]int(nil), expected...)
	for s, fell := range h.fellFrom {
		if fell {
			masked[s] = 0
		}
	}
	return masked
}

// round runs the post-fence verdict/repair protocol. damaged[s] marks
// sources whose put payload did not survive the epoch (fence report or
// decode failure); putSrc/putDst mark the peers that exchanged puts
// this epoch (fallen-back peers excluded). resend(d) produces the
// lossless payload for a re-fetch demanded by destination d; accept(s,
// data) installs a repaired payload from source s.
//
// The round is deadlock-free by construction: it is send-only until
// every peer's matching send has been issued (simulated sends never
// block), so verdict receives consume step-1 sends and repair receives
// consume step-3 sends.
func (h *healer) round(damaged, putSrc, putDst []bool, resend func(int) []byte, accept func(int, []byte)) {
	// Step 1: tell every put source whether its data survived.
	for s := range putSrc {
		if !putSrc[s] {
			continue
		}
		v := []byte{0}
		if damaged[s] {
			v[0] = 1
		}
		h.c.Send(s, tagVerdict, v)
	}
	// Step 2: learn which destinations demand a resend.
	rk := h.c.Obs()
	var resendTo []int
	for d := range putDst {
		if !putDst[d] {
			continue
		}
		v := h.c.Recv(d, tagVerdict)
		if len(v) != 1 {
			panic(fmt.Sprintf("exchange: verdict from rank %d carried %d bytes, want 1", d, len(v)))
		}
		if v[0] == 0 {
			continue
		}
		resendTo = append(resendTo, d)
		if h.failTo[d]++; h.failTo[d] >= h.threshold && !h.fellTo[d] {
			h.fellTo[d] = true
			rk.Add(metricFallbackPeers, 1)
			rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventFallback, Label: "to", Peer: d, Value: float64(h.failTo[d])})
		}
	}
	// Step 3: resend damaged slots over the two-sided path (checksummed
	// and retried by the runtime — this copy arrives intact or fails
	// loudly, never silently corrupt).
	for _, d := range resendTo {
		h.c.Send(d, tagRepair, resend(d))
	}
	// Step 4: install the repaired slots.
	for s := range putSrc {
		if !putSrc[s] || !damaged[s] {
			continue
		}
		accept(s, h.c.Recv(s, tagRepair))
		h.repairs++
		rk.Add(metricRepairs, 1)
		rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventRepair, Peer: s, Value: 1})
		if h.failFrom[s]++; h.failFrom[s] >= h.threshold && !h.fellFrom[s] {
			h.fellFrom[s] = true
			rk.Add(metricFallbackPeers, 1)
			rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventFallback, Label: "from", Peer: s, Value: float64(h.failFrom[s])})
		}
	}
}

// f64Bytes encodes values as little-endian float64s — the lossless wire
// format of repair and fallback payloads.
func f64Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// f64Into decodes a repair/fallback payload into dst, failing loudly on
// a length mismatch (the two-sided path is checksummed, so a mismatch
// is a protocol bug, not line noise).
func f64Into(dst []float64, data []byte, src int) {
	if len(data) != 8*len(dst) {
		panic(fmt.Sprintf("exchange: lossless payload from rank %d carried %d bytes, want %d", src, len(data), 8*len(dst)))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

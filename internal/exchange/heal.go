package exchange

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Self-healing protocol tags (user tag space, alongside the exchange
// algorithms' data tags).
const (
	tagVerdict  = 104 // 1-byte per-epoch verdict: did your put survive?
	tagRepair   = 105 // lossless re-fetch of a damaged slot
	tagFallback = 106 // two-sided path of a downgraded peer
)

// Metric names of the self-healing layer.
const (
	metricRepairs       = "exchange/repairs"
	metricFallbackPeers = "exchange/fallback_peers"
	metricRepromotions  = "exchange/repromotions"
)

// DefaultFallbackAfter is how many damaged epochs a peer link tolerates
// before the exchange stops trusting its one-sided path and moves the
// pair to the lossless two-sided transport.
const DefaultFallbackAfter = 3

// DefaultRepromoteAfter is how many clean two-sided epochs a demoted
// link serves before the exchange probes its one-sided path again.
const DefaultRepromoteAfter = 4

// AdaptivePolicy tunes the degradation ladder of the self-healing
// exchanges (docs/ROBUSTNESS.md): a peer link steps from the compressed
// or raw one-sided fast path down to the lossless two-sided transport
// after FallbackAfter damaged epochs, and — after RepromoteAfter clean
// epochs there — is probed on the one-sided path again. A failed probe
// re-demotes immediately and doubles the wait before the next probe
// (hysteresis), up to MaxProbeWait; a clean probe restores the link
// fully, clearing its damage counters. All ranks of a run must use the
// same policy (the ledger state is symmetric by construction).
type AdaptivePolicy struct {
	// FallbackAfter is the damaged-epoch count that demotes a link.
	// 0 takes DefaultFallbackAfter.
	FallbackAfter int
	// RepromoteAfter is the clean-epoch count before a probe. 0 takes
	// DefaultRepromoteAfter; negative disables re-promotion entirely
	// (the pre-hysteresis one-way fallback).
	RepromoteAfter int
	// MaxProbeWait caps the doubling probe backoff, in epochs. 0 takes
	// 16×RepromoteAfter.
	MaxProbeWait int
}

// withDefaults fills zero-valued knobs.
func (p AdaptivePolicy) withDefaults() AdaptivePolicy {
	if p.FallbackAfter == 0 {
		p.FallbackAfter = DefaultFallbackAfter
	}
	if p.RepromoteAfter == 0 {
		p.RepromoteAfter = DefaultRepromoteAfter
	}
	if p.MaxProbeWait == 0 && p.RepromoteAfter > 0 {
		p.MaxProbeWait = 16 * p.RepromoteAfter
	}
	return p
}

// Degradation reports how far a self-healing exchange has drifted from
// its pure one-sided fast path: Repairs counts slots re-fetched over
// the two-sided transport after a fence found them corrupt or missing,
// Fallback lists the peers (either direction) currently downgraded to
// the two-sided path, and Promotions counts links restored to the fast
// path after a clean probe. The zero value means the exchange is
// healthy.
type Degradation struct {
	Repairs    int64
	Fallback   []int
	Promotions int64
}

// Degraded reports whether the exchange left the fast path at all.
func (d Degradation) Degraded() bool { return d.Repairs > 0 || len(d.Fallback) > 0 }

// String renders the report for logs and diagnostics.
func (d Degradation) String() string {
	if !d.Degraded() && d.Promotions == 0 {
		return "healthy"
	}
	s := fmt.Sprintf("%d repairs, fallback peers %v", d.Repairs, d.Fallback)
	if d.Promotions > 0 {
		s += fmt.Sprintf(", %d re-promotions", d.Promotions)
	}
	return s
}

// healer is the per-peer damage ledger shared by OSC and CompressedOSC:
// it runs the post-fence verdict/repair round, escalates repeatedly
// failing links to the two-sided fallback, and probes demoted links for
// re-promotion after a hysteresis wait. It is inert (and free) unless
// the runtime is in reliable mode.
//
// Every piece of per-link state is symmetric: the source's failTo /
// fellTo / probeTo / waitTo for destination d mirrors d's failFrom /
// fellFrom / probeFrom / waitFrom for the source, and both sides mutate
// them in the same epoch (demotion via the same verdict, probe via the
// same epoch counter). The exchanges' message pattern depends on this
// state, so symmetry is what keeps the protocol deadlock-free.
type healer struct {
	c *mpi.Comm
	// threshold is the damaged-epoch count that triggers fallback.
	threshold int
	// repromote is the clean-epoch count before a demoted link is probed
	// (<0 disables re-promotion); maxWait caps the doubling probe wait.
	repromote int
	maxWait   int
	epoch     int    // exchanges completed (all ranks agree; collective)
	failFrom  []int  // damaged epochs per source
	failTo    []int  // resend demands per destination
	fellFrom  []bool // sources now delivering over two-sided
	fellTo    []bool // destinations now reached over two-sided
	probeFrom []int  // epoch at which to probe the source (0 = none)
	probeTo   []int  // epoch at which to probe the destination (0 = none)
	waitFrom  []int  // current hysteresis wait per source
	waitTo    []int  // current hysteresis wait per destination
	// probing marks links re-enabled for this epoch only: damage
	// re-demotes them immediately (no fresh threshold), a clean epoch
	// promotes them fully. Always all-false between exchanges.
	probingFrom []bool
	probingTo   []bool
	repairs     int64
	promotions  int64
}

func newHealer(c *mpi.Comm) *healer {
	p := c.Size()
	pol := AdaptivePolicy{}.withDefaults()
	return &healer{
		c: c, threshold: pol.FallbackAfter,
		repromote: pol.RepromoteAfter, maxWait: pol.MaxProbeWait,
		failFrom: make([]int, p), failTo: make([]int, p),
		fellFrom: make([]bool, p), fellTo: make([]bool, p),
		probeFrom: make([]int, p), probeTo: make([]int, p),
		waitFrom: make([]int, p), waitTo: make([]int, p),
		probingFrom: make([]bool, p), probingTo: make([]bool, p),
	}
}

// setPolicy installs an adaptive policy (construction-time; all ranks
// must install the same one).
func (h *healer) setPolicy(p AdaptivePolicy) {
	p = p.withDefaults()
	h.threshold = p.FallbackAfter
	h.repromote = p.RepromoteAfter
	h.maxWait = p.MaxProbeWait
}

// active reports whether the healing protocol runs at all. Without a
// fault plan the runtime is not in reliable mode and every exchange
// takes exactly the pre-existing fast path.
func (h *healer) active() bool { return h.c.Reliable() }

// beginEpoch opens one exchange epoch: the epoch counter advances and
// demoted links whose probe is due are re-enabled for this epoch. Must
// be called exactly once per Exchange, before any state is consulted —
// both endpoints of a link see the same epoch number, so both flip the
// link in the same exchange.
func (h *healer) beginEpoch() {
	if !h.active() {
		return
	}
	h.epoch++
	if h.repromote < 0 {
		return
	}
	rk := h.c.Obs()
	for p := range h.fellTo {
		if h.fellTo[p] && h.probeTo[p] == h.epoch {
			h.fellTo[p] = false
			h.probingTo[p] = true
			rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventRecovery, Label: "probe", Peer: p, Value: -1})
		}
		if h.fellFrom[p] && h.probeFrom[p] == h.epoch {
			h.fellFrom[p] = false
			h.probingFrom[p] = true
		}
	}
}

// report snapshots the cumulative degradation.
func (h *healer) report() Degradation {
	d := Degradation{Repairs: h.repairs, Promotions: h.promotions}
	for p := range h.fellFrom {
		if h.fellFrom[p] || h.fellTo[p] {
			d.Fallback = append(d.Fallback, p)
		}
	}
	return d
}

// maskExpected returns expected with fallen-back sources zeroed (their
// data now arrives over two-sided, so the fence must not wait for
// puts). The original slice is never modified.
func (h *healer) maskExpected(expected []int) []int {
	masked := append([]int(nil), expected...)
	for s, fell := range h.fellFrom {
		if fell {
			masked[s] = 0
		}
	}
	return masked
}

// demoteTo moves destination d to the two-sided path and schedules its
// re-promotion probe: a failed probe doubles the wait (capped), a fresh
// demotion starts at the base wait.
func (h *healer) demoteTo(d int) {
	h.fellTo[d] = true
	if h.repromote < 0 {
		return
	}
	if h.probingTo[d] {
		h.probingTo[d] = false
		if h.waitTo[d] *= 2; h.waitTo[d] > h.maxWait {
			h.waitTo[d] = h.maxWait
		}
	} else {
		h.waitTo[d] = h.repromote
	}
	h.probeTo[d] = h.epoch + h.waitTo[d]
}

// demoteFrom is demoteTo for the source direction.
func (h *healer) demoteFrom(s int) {
	h.fellFrom[s] = true
	if h.repromote < 0 {
		return
	}
	if h.probingFrom[s] {
		h.probingFrom[s] = false
		if h.waitFrom[s] *= 2; h.waitFrom[s] > h.maxWait {
			h.waitFrom[s] = h.maxWait
		}
	} else {
		h.waitFrom[s] = h.repromote
	}
	h.probeFrom[s] = h.epoch + h.waitFrom[s]
}

// round runs the post-fence verdict/repair protocol. damaged[s] marks
// sources whose put payload did not survive the epoch (fence report or
// decode failure); putSrc/putDst mark the peers that exchanged puts
// this epoch (fallen-back peers excluded). resend(d) produces the
// lossless payload for a re-fetch demanded by destination d; accept(s,
// data) installs a repaired payload from source s.
//
// The round is deadlock-free by construction: it is send-only until
// every peer's matching send has been issued (simulated sends never
// block), so verdict receives consume step-1 sends and repair receives
// consume step-3 sends.
func (h *healer) round(damaged, putSrc, putDst []bool, resend func(int) []byte, accept func(int, []byte)) {
	// Step 1: tell every put source whether its data survived.
	for s := range putSrc {
		if !putSrc[s] {
			continue
		}
		v := []byte{0}
		if damaged[s] {
			v[0] = 1
		}
		h.c.Send(s, tagVerdict, v)
	}
	// Step 2: learn which destinations demand a resend.
	rk := h.c.Obs()
	var resendTo []int
	for d := range putDst {
		if !putDst[d] {
			continue
		}
		v := h.c.Recv(d, tagVerdict)
		if len(v) != 1 {
			panic(fmt.Sprintf("exchange: verdict from rank %d carried %d bytes, want 1", d, len(v)))
		}
		if v[0] == 0 {
			if h.probingTo[d] {
				// Clean probe epoch: the link earns its fast path back.
				h.probingTo[d] = false
				h.failTo[d] = 0
				h.waitTo[d], h.probeTo[d] = 0, 0
				h.promotions++
				rk.Add(metricRepromotions, 1)
				rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventRecovery, Label: "repromote", Peer: d, Value: -1})
			}
			continue
		}
		resendTo = append(resendTo, d)
		if h.failTo[d]++; h.failTo[d] >= h.threshold && !h.fellTo[d] {
			h.demoteTo(d)
			rk.Add(metricFallbackPeers, 1)
			rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventFallback, Label: "to", Peer: d, Value: float64(h.failTo[d])})
		}
	}
	// Step 3: resend damaged slots over the two-sided path (checksummed
	// and retried by the runtime — this copy arrives intact or fails
	// loudly, never silently corrupt).
	for _, d := range resendTo {
		h.c.Send(d, tagRepair, resend(d))
	}
	// Step 4: install the repaired slots.
	for s := range putSrc {
		if !putSrc[s] || !damaged[s] {
			continue
		}
		accept(s, h.c.Recv(s, tagRepair))
		h.repairs++
		rk.Add(metricRepairs, 1)
		rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventRepair, Peer: s, Value: 1})
		if h.failFrom[s]++; h.failFrom[s] >= h.threshold && !h.fellFrom[s] {
			h.demoteFrom(s)
			rk.Add(metricFallbackPeers, 1)
			rk.Emit(obs.Event{T: h.c.Now(), Kind: obs.EventFallback, Label: "from", Peer: s, Value: float64(h.failFrom[s])})
		}
	}
	// Clean probe epochs in the source direction promote too (the
	// destination's mirror of the step-2 bookkeeping).
	for s := range putSrc {
		if putSrc[s] && h.probingFrom[s] && !damaged[s] {
			h.probingFrom[s] = false
			h.failFrom[s] = 0
			h.waitFrom[s], h.probeFrom[s] = 0, 0
			h.promotions++
			rk.Add(metricRepromotions, 1)
		}
	}
}

// ledgerVersion tags the serialized healer state (see state/restore).
const ledgerVersion = 1

// state serializes the healer's per-link ledger — the part of an
// exchange's state that must survive a checkpoint/rollback cycle so a
// resumed pipeline keeps the same degradation decisions it would have
// made without the crash.
func (h *healer) state() []byte {
	p := len(h.failFrom)
	buf := make([]byte, 0, 8+24+p*21)
	var w [8]byte
	u32 := func(v int) {
		binary.LittleEndian.PutUint32(w[:4], uint32(v))
		buf = append(buf, w[:4]...)
	}
	u64 := func(v int64) {
		binary.LittleEndian.PutUint64(w[:8], uint64(v))
		buf = append(buf, w[:8]...)
	}
	u32(ledgerVersion)
	u32(p)
	u32(h.epoch)
	u64(h.repairs)
	u64(h.promotions)
	for i := 0; i < p; i++ {
		u32(h.failFrom[i])
		u32(h.failTo[i])
		var flags byte
		if h.fellFrom[i] {
			flags |= 1
		}
		if h.fellTo[i] {
			flags |= 2
		}
		buf = append(buf, flags)
		u32(h.probeFrom[i])
		u32(h.probeTo[i])
		u32(h.waitFrom[i])
		u32(h.waitTo[i])
	}
	return buf
}

// restore installs a ledger serialized by state.
func (h *healer) restore(data []byte) error {
	p := len(h.failFrom)
	want := 8 + 20 + p*25
	if len(data) != want {
		return fmt.Errorf("exchange: ledger state is %d bytes, want %d", len(data), want)
	}
	pos := 0
	u32 := func() int {
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return int(v)
	}
	u64 := func() int64 {
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return int64(v)
	}
	if v := u32(); v != ledgerVersion {
		return fmt.Errorf("exchange: ledger version %d, want %d", v, ledgerVersion)
	}
	if n := u32(); n != p {
		return fmt.Errorf("exchange: ledger covers %d peers, exchange has %d", n, p)
	}
	h.epoch = u32()
	h.repairs = u64()
	h.promotions = u64()
	for i := 0; i < p; i++ {
		h.failFrom[i] = u32()
		h.failTo[i] = u32()
		flags := data[pos]
		pos++
		h.fellFrom[i] = flags&1 != 0
		h.fellTo[i] = flags&2 != 0
		h.probingFrom[i], h.probingTo[i] = false, false
		h.probeFrom[i] = u32()
		h.probeTo[i] = u32()
		h.waitFrom[i] = u32()
		h.waitTo[i] = u32()
	}
	return nil
}

// RemapLedgerState rewrites a serialized healer ledger (LedgerState)
// recorded under an old membership onto a shrunken one: oldToNew maps
// each old peer rank to its new local rank (-1 for a dead peer, whose
// record is dropped), and newP is the survivor count. The cumulative
// epoch/repair/promotion counters are preserved — degradation history
// survives the shrink, per-dead-peer state does not. Used by the
// elastic shrink migration (internal/recover, docs/ROBUSTNESS.md).
func RemapLedgerState(data []byte, oldToNew []int, newP int) ([]byte, error) {
	oldP := len(oldToNew)
	want := 8 + 20 + oldP*25
	if len(data) != want {
		return nil, fmt.Errorf("exchange: ledger state is %d bytes, want %d for %d peers", len(data), want, oldP)
	}
	if v := int(binary.LittleEndian.Uint32(data[0:])); v != ledgerVersion {
		return nil, fmt.Errorf("exchange: ledger version %d, want %d", v, ledgerVersion)
	}
	if n := int(binary.LittleEndian.Uint32(data[4:])); n != oldP {
		return nil, fmt.Errorf("exchange: ledger covers %d peers, mapping has %d", n, oldP)
	}
	out := make([]byte, 8+20+newP*25)
	binary.LittleEndian.PutUint32(out[0:], ledgerVersion)
	binary.LittleEndian.PutUint32(out[4:], uint32(newP))
	copy(out[8:28], data[8:28]) // epoch, repairs, promotions
	for old, nw := range oldToNew {
		if nw < 0 {
			continue
		}
		if nw >= newP {
			return nil, fmt.Errorf("exchange: ledger remap sends old peer %d to rank %d of %d", old, nw, newP)
		}
		copy(out[28+nw*25:28+(nw+1)*25], data[28+old*25:28+(old+1)*25])
	}
	return out, nil
}

// f64Bytes encodes values as little-endian float64s — the lossless wire
// format of repair and fallback payloads.
func f64Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// f64Into decodes a repair/fallback payload into dst, failing loudly on
// a length mismatch (the two-sided path is checksummed, so a mismatch
// is a protocol bug, not line noise).
func f64Into(dst []float64, data []byte, src int) {
	if len(data) != 8*len(dst) {
		panic(fmt.Sprintf("exchange: lossless payload from rank %d carried %d bytes, want %d", src, len(data), 8*len(dst)))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

package exchange

import (
	"encoding/binary"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/errtrack"
)

// TwoSidedCompressed applies the same lossy compression as CompressedOSC
// but ships the data through the classical two-sided all-to-all-v, with
// no §V-B pipeline: compress everything, synchronize, exchange,
// decompress. It exists to isolate the paper's two contributions — the
// compression and the one-sided transport — in ablations.
type TwoSidedCompressed struct {
	c      *mpi.Comm
	method compress.Method
	stream *gpu.Stream
	counts CountFn
	// SimCounts enables the scaled-volume mode (see CompressedOSC).
	SimCounts CountFn

	// Precomputed metric names of this exchange's label (SetLabel).
	metricRaw, metricWire, metricErr, metricAchieved string
	metricTrkMaxRel, metricTrkRMS, metricTrkVals     string
	label                                            string
	// errScratch holds decompressed values while measuring the achieved
	// error; allocated lazily and only when an event log is attached.
	errScratch []float64

	recvCounts  []int
	recvNonzero []bool
	sendBufs    [][]byte
	out         [][]float64
}

// NewTwoSidedCompressed builds the exchange for the fixed pattern counts.
func NewTwoSidedCompressed(c *mpi.Comm, method compress.Method, stream *gpu.Stream, counts CountFn) *TwoSidedCompressed {
	p := c.Size()
	me := c.Rank()
	x := &TwoSidedCompressed{
		c:           c,
		method:      method,
		stream:      stream,
		counts:      counts,
		recvCounts:  make([]int, p),
		recvNonzero: make([]bool, p),
		sendBufs:    make([][]byte, p),
		out:         make([][]float64, p),
	}
	for s := 0; s < p; s++ {
		x.recvCounts[s] = counts(me, s)
		x.recvNonzero[s] = x.recvCounts[s] > 0
		x.out[s] = make([]float64, x.recvCounts[s])
	}
	for d := 0; d < p; d++ {
		if cv := counts(d, me); cv > 0 {
			x.sendBufs[d] = make([]byte, 4+method.MaxCompressedLen(cv))
		} else {
			x.sendBufs[d] = []byte{}
		}
	}
	x.SetLabel("exchange-2s")
	return x
}

// SetLabel names this exchange in the metric registry (see
// CompressedOSC.SetLabel).
func (x *TwoSidedCompressed) SetLabel(label string) {
	x.label = label
	x.metricRaw, x.metricWire, x.metricErr = obs.CompressMetricNames(label)
	x.metricAchieved = "compress/" + label + "/achieved_error"
	x.metricTrkMaxRel, x.metricTrkRMS, x.metricTrkVals = obs.ErrtrackMetricNames(label)
}

// Exchange compresses send (counts(d, me) float64 values per rank d) on
// the GPU, runs the two-sided all-to-all on the compressed payloads, and
// decompresses the received slots. The returned slices are reused across
// calls.
func (x *TwoSidedCompressed) Exchange(send [][]float64) [][]float64 {
	me := x.c.Rank()
	p := x.c.Size()
	dev := x.stream.Device()
	simCounts := x.counts
	if x.SimCounts != nil {
		simCounts = x.SimCounts
	}

	// One compression kernel over the whole send buffer, then a full
	// synchronization — no overlap with communication by design.
	inBytes, outBytes := 0, 0
	for d := 0; d < p; d++ {
		cv := simCounts(d, me)
		inBytes += 8 * cv
		outBytes += x.method.MaxCompressedLen(cv)
	}
	payload := make([][]byte, p)
	x.stream.LaunchTagged(obs.PhaseCompress, dev.CompressCost(inBytes, outBytes), func() {
		for d := 0; d < p; d++ {
			vals := send[d]
			if want := x.counts(d, me); len(vals) != want {
				panic("exchange: send count does not match the two-sided compressed plan")
			}
			if len(vals) == 0 {
				payload[d] = x.sendBufs[d]
				continue
			}
			buf := x.sendBufs[d]
			clen := x.method.Compress(buf[4:], vals)
			binary.LittleEndian.PutUint32(buf, uint32(clen))
			payload[d] = buf[:4+clen]
		}
	})
	x.stream.Synchronize()

	// Logical sizes for the scaled-volume mode follow the compression
	// rate applied to the simulated counts.
	var logical []int
	if x.SimCounts != nil {
		logical = make([]int, p)
		for d := 0; d < p; d++ {
			if cv := x.counts(d, me); cv > 0 {
				logical[d] = len(payload[d]) * simCounts(d, me) / cv
			}
		}
	}
	var rawBytes, wireBytes int64
	for d := 0; d < p; d++ {
		if x.counts(d, me) == 0 {
			continue
		}
		rawBytes += 8 * int64(simCounts(d, me))
		if logical != nil {
			wireBytes += int64(logical[d])
		} else {
			wireBytes += int64(len(payload[d]))
		}
	}
	rk := x.c.Obs()
	rk.Add(x.metricRaw, rawBytes)
	rk.Add(x.metricWire, wireBytes)
	rk.Set(x.metricErr, x.method.ErrorBound())

	// With an event log attached, measure the error this epoch actually
	// introduced by round-tripping each compressed payload on the host —
	// the same per-peer attribution CompressedOSC reports, so ablations
	// are comparable stage for stage. Wall-clock only, never virtual time.
	if rk.EventsOn() {
		worstErr, measured := 0.0, false
		for d := 0; d < p; d++ {
			if x.counts(d, me) == 0 {
				continue
			}
			st, ok := slotStats(x.method, &x.errScratch, payload[d], send[d])
			if !ok {
				continue
			}
			measured = true
			if st.MaxRel > worstErr {
				worstErr = st.MaxRel
			}
			rk.Observe(x.metricTrkMaxRel, st.MaxRel)
			rk.Observe(x.metricTrkRMS, st.RMS())
			rk.Add(x.metricTrkVals, st.N)
			rk.Emit(errtrack.AttrEvent(x.c.Now(), x.label, d, x.method.ErrorBound(), st))
		}
		if measured {
			rk.Observe(x.metricAchieved, worstErr)
			rk.Emit(obs.Event{
				T: x.c.Now(), Kind: obs.EventError, Label: x.label, Peer: -1,
				Value: worstErr, Bound: x.method.ErrorBound(),
			})
		}
	}

	recv := x.c.AlltoallvSparse(payload, x.recvNonzero, logical)

	// Decompress the received slots in one kernel.
	inBytes, outBytes = 0, 0
	for s, cnt := range x.recvCounts {
		if cnt == 0 {
			continue
		}
		sc := simCounts(me, s)
		inBytes += x.method.MaxCompressedLen(sc)
		outBytes += 8 * sc
	}
	x.stream.LaunchTagged(obs.PhaseDecompress, dev.CompressCost(inBytes, outBytes), func() {
		for s, cnt := range x.recvCounts {
			if cnt == 0 {
				continue
			}
			clen := int(binary.LittleEndian.Uint32(recv[s]))
			x.method.Decompress(x.out[s], recv[s][4:4+clen])
		}
	})
	x.stream.Synchronize()
	return x.out
}

// Package exchange implements the all-to-all algorithms compared in the
// paper: the default linear MPI_Alltoallv (the baseline whose bandwidth
// collapses at scale in Fig. 3), a pairwise ring, the one-sided
// OSC_Alltoall of Algorithm 3 with node-aware ordering and window
// caching, and the compressed OSC exchange with the §V-B pipeline that
// overlaps GPU compression kernels with RDMA puts.
package exchange

import (
	"repro/internal/mpi"
)

// Fixed user tags; message matching is FIFO per (src, tag) so reuse
// across successive collective calls is safe.
const (
	tagLinear   = 101
	tagPairwise = 102
)

// Metric names of the exchange layer (constants so hot paths record
// without allocating).
const (
	metricFlushStalls  = "exchange/flush_stalls"
	metricFlushStallS  = "exchange/flush_stall_s"
	metricOverlapStall = "exchange/overlap_stall_s"
)

// LinearAlltoallv is the default generalized all-to-all: every send is
// posted up front, then every receive drained (Open MPI basic linear).
// send[d] is the payload for rank d; the result is indexed by source.
func LinearAlltoallv(c *mpi.Comm, send [][]byte) [][]byte {
	return c.Alltoallv(send)
}

// LinearAlltoallvN is the phantom (timing-only) variant.
func LinearAlltoallvN(c *mpi.Comm, sizes []int) {
	c.AlltoallvN(sizes)
}

// PairwiseAlltoallv is the classic ring: p steps; at step j each rank
// sends to (r+j) mod p and receives from (r−j) mod p, completing each
// exchange before the next step. Bounded concurrency, two-sided.
func PairwiseAlltoallv(c *mpi.Comm, send [][]byte) [][]byte {
	p := c.Size()
	r := c.Rank()
	recv := make([][]byte, p)
	latest := c.Now()
	for j := 0; j < p; j++ {
		dst := (r + j) % p
		src := (r - j + p) % p
		c.Send(dst, tagPairwise, send[dst])
		pkt := c.RecvPacket(src, tagPairwise)
		recv[src] = pkt.Payload
		if pkt.Arrival > latest {
			latest = pkt.Arrival
		}
	}
	c.AdvanceTo(latest)
	return recv
}

// PairwiseAlltoallvN is the phantom variant of PairwiseAlltoallv.
func PairwiseAlltoallvN(c *mpi.Comm, sizes []int) {
	p := c.Size()
	r := c.Rank()
	latest := c.Now()
	for j := 0; j < p; j++ {
		dst := (r + j) % p
		src := (r - j + p) % p
		c.SendN(dst, tagPairwise, sizes[dst])
		pkt := c.RecvPacket(src, tagPairwise)
		if pkt.Arrival > latest {
			latest = pkt.Arrival
		}
	}
	c.AdvanceTo(latest)
}

// ringOrder returns the destination sequence of Algorithm 3: node
// distances 1..n (self node last... the paper iterates j=1..n including
// the local node), and within each target node a rotation of the local
// index so no two ranks of one node hit the same remote rank at once.
// nodeAware=false degenerates to the naive rank ring (r+1, r+2, ...),
// the ablation of the architecture-aware permutation.
func ringOrder(c *mpi.Comm, nodeAware bool) []int {
	p := c.Size()
	r := c.Rank()
	if !nodeAware {
		order := make([]int, p)
		for i := 0; i < p; i++ {
			order[i] = (r + i + 1) % p
		}
		return order
	}
	cfg := c.Config()
	gpn := cfg.GPUsPerNode
	myNode := c.Node()
	local := r % gpn
	order := make([]int, 0, p)
	for j := 1; j <= cfg.Nodes; j++ {
		node := (myNode + j) % cfg.Nodes
		for i := 0; i < gpn; i++ {
			dest := node*gpn + (local+i)%gpn
			if dest < p {
				order = append(order, dest)
			}
		}
	}
	return order
}

package exchange

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// The determinism equivalence suite: for seeded workloads spanning all
// five exchange kinds — with and without seeded fault plans — a
// parallel run must be bit-identical to the sequential run in virtual
// times, Stats (including FaultStats), trace events, diagnostics, and
// every byte each rank received. See docs/DETERMINISM.md.

var parKinds = []string{"linear", "pairwise", "bruck", "osc", "osc-comp"}

// capture is everything observable from one workload run.
type capture struct {
	res    netsim.Result
	errStr string
	events []netsim.TraceEvent
	recv   [][]byte // flattened receive buffers per rank
}

// seededBytes builds the (src, dst)-distinguishable payload for a seed.
func seededBytes(seed int64, src, dst, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(src*7+dst*13+i*3) + seed)
	}
	return b
}

// runWorkload executes one (kind, seed) workload cell. Message sizes
// vary with the seed; seeds with faults attach netsim.RandomPlan(seed)
// (which also turns on the reliable transport) and run checked.
func runWorkload(kind string, seed int64, faults, parallel bool) capture {
	cfg := netsim.Summit(1 + int(seed%2)) // 6 or 12 ranks
	cfg.Parallel = parallel
	if faults {
		plan := netsim.RandomPlan(seed)
		if plan.CrashAt > 0 {
			plan.CrashAt = 1e-6 * float64(1+seed%20)
		}
		cfg.Faults = plan
	}
	tb := netsim.NewTraceBuffer(1 << 16)
	cfg.Tracer = tb.Recorder()
	p := cfg.Ranks()
	msgBytes := 64 + 32*int(seed%5)
	msgVals := 16 + 8*int(seed%3)
	method := []compress.Method{compress.None{}, compress.Cast32{}, compress.Cast16{}, compress.Lossless{}, compress.Trim{M: 16}}[seed%5]

	var c capture
	c.recv = make([][]byte, p)
	body := func(cm *mpi.Comm) {
		me := cm.Rank()
		flat := func(got [][]byte) {
			for _, g := range got {
				c.recv[me] = append(c.recv[me], g...)
			}
		}
		switch kind {
		case "linear", "pairwise", "bruck":
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = seededBytes(seed, me, d, msgBytes)
			}
			switch kind {
			case "linear":
				flat(LinearAlltoallv(cm, send))
			case "pairwise":
				flat(PairwiseAlltoallv(cm, send))
			case "bruck":
				flat(BruckAlltoall(cm, send, msgBytes))
			}
		case "osc":
			o := NewOSC(cm, Uniform(msgBytes), seed%2 == 0)
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = seededBytes(seed, me, d, msgBytes)
			}
			for it := 0; it < 2; it++ {
				flat(o.Exchange(send))
			}
		case "osc-comp":
			x := NewCompressedOSC(cm, method, gpu.NewStream(gpu.V100(), cm), 2+int(seed%3), UniformCount(msgVals))
			send := make([][]float64, p)
			for d := 0; d < p; d++ {
				send[d] = make([]float64, msgVals)
				for i := range send[d] {
					// Small integers: exactly representable under every
					// method swept, so lossy kinds still round-trip.
					send[d][i] = float64((me*31 + d*17 + i*5 + int(seed)) % 256)
				}
			}
			got := x.Exchange(send)
			for _, g := range got {
				for _, v := range g {
					var buf [8]byte
					bits := math.Float64bits(v)
					for k := 0; k < 8; k++ {
						buf[k] = byte(bits >> (8 * k))
					}
					c.recv[me] = append(c.recv[me], buf[:]...)
				}
			}
		default:
			panic("unknown workload kind " + kind)
		}
	}
	if faults {
		res, err := mpi.RunChecked(cfg, body)
		c.res = res
		if err != nil {
			c.errStr = err.Error()
		}
	} else {
		c.res = mpi.Run(cfg, body)
	}
	c.events = tb.Events()
	return c
}

func requireCapturesIdentical(t *testing.T, name string, seq, par capture) {
	t.Helper()
	if seq.res.Time != par.res.Time {
		t.Errorf("%s: Time differs: seq %v par %v", name, seq.res.Time, par.res.Time)
	}
	if !reflect.DeepEqual(seq.res.Clocks, par.res.Clocks) {
		t.Errorf("%s: Clocks differ", name)
	}
	if seq.res.Stats != par.res.Stats {
		t.Errorf("%s: Stats differ:\nseq %+v\npar %+v", name, seq.res.Stats, par.res.Stats)
	}
	if seq.errStr != par.errStr {
		t.Errorf("%s: diagnostics differ:\nseq %q\npar %q", name, seq.errStr, par.errStr)
	}
	if !reflect.DeepEqual(seq.events, par.events) {
		t.Errorf("%s: traces differ (%d vs %d events)", name, len(seq.events), len(par.events))
		for i := range seq.events {
			if i < len(par.events) && seq.events[i] != par.events[i] {
				t.Errorf("%s: first divergence at event %d:\nseq %+v\npar %+v", name, i, seq.events[i], par.events[i])
				break
			}
		}
	}
	for r := range seq.recv {
		if !bytes.Equal(seq.recv[r], par.recv[r]) {
			t.Errorf("%s: rank %d received different bytes (%d vs %d)", name, r, len(seq.recv[r]), len(par.recv[r]))
		}
	}
}

// TestParallelEquivalenceCleanWorkloads: every exchange kind across
// fault-free seeds (15 cells at two machine sizes).
func TestParallelEquivalenceCleanWorkloads(t *testing.T) {
	for _, kind := range parKinds {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%s-seed%d", kind, seed)
			t.Run(name, func(t *testing.T) {
				seq := runWorkload(kind, seed, false, false)
				par := runWorkload(kind, seed, false, true)
				requireCapturesIdentical(t, name, seq, par)
				if len(seq.events) == 0 {
					t.Fatal("workload produced no traffic")
				}
			})
		}
	}
}

// TestParallelEquivalenceFaultedWorkloads: every exchange kind under
// seeded fault plans covering all RandomPlan scenario classes (drops,
// CRC + silent corruption, duplicates/spikes, degraded NICs + stalls,
// crashes, mixed), run checked so diagnostics are part of the
// comparison (10 cells; with the clean 15, 25 total ≥ the 20 the
// acceptance bar asks for).
func TestParallelEquivalenceFaultedWorkloads(t *testing.T) {
	seeds := map[string][]int64{
		"linear":   {4, 12},  // degraded NICs + stalls, crash rank 2
		"pairwise": {7, 10},  // drop storm, duplicates + spikes
		"bruck":    {8, 14},  // CRC corruption, mixed gentle storm
		"osc":      {9, 5},   // silent put corruption, crash rank 0
		"osc-comp": {16, 11}, // silent put corruption, degraded + stalls
	}
	for _, kind := range parKinds {
		for _, seed := range seeds[kind] {
			name := fmt.Sprintf("%s-seed%d", kind, seed)
			t.Run(name, func(t *testing.T) {
				seq := runWorkload(kind, seed, true, false)
				par := runWorkload(kind, seed, true, true)
				requireCapturesIdentical(t, name, seq, par)
			})
		}
	}
}

// TestParallelEquivalenceSmoke is the fixed-seed cell `make verify`
// runs (-run ParallelEquivalenceSmoke): one clean and one faulted
// workload per kind, small enough for the gate, wide enough to catch a
// scheduler regression.
func TestParallelEquivalenceSmoke(t *testing.T) {
	for _, kind := range parKinds {
		seq := runWorkload(kind, 2, false, false)
		par := runWorkload(kind, 2, false, true)
		requireCapturesIdentical(t, kind, seq, par)
		seqf := runWorkload(kind, 7, true, false)
		parf := runWorkload(kind, 7, true, true)
		requireCapturesIdentical(t, kind+"-faulted", seqf, parf)
	}
}

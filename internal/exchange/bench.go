package exchange

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	recov "repro/internal/recover"
)

// Algorithms available to the bandwidth harness.
const (
	AlgoLinear   = "linear"
	AlgoPairwise = "pairwise"
	AlgoBruck    = "bruck" // log-round aggregated algorithm (small messages)
	AlgoOSC      = "osc"
	AlgoOSCNaive = "osc-naive" // ring without the node-aware permutation
	// AlgoOSCComp is the compressed one-sided exchange on real payloads
	// (FP64→FP32 cast); its bandwidth is computed over the logical bytes,
	// so the speedup over plain osc shows the compression win.
	AlgoOSCComp = "osc-comp"
)

// Spec parameterizes the bandwidth harness beyond the named algorithm
// presets: the compressed algorithm's method and pipeline depth become
// selectable (the autotuner's winners need both). The zero Method /
// Chunks keep the presets' fixed configuration (Cast32, 4 chunks), so
// Spec{Algo: a} behaves exactly like the plain algorithm string.
type Spec struct {
	Algo   string
	Method compress.Method // AlgoOSCComp only; nil selects Cast32
	Chunks int             // AlgoOSCComp only; 0 selects 4
}

func (s Spec) withDefaults() Spec {
	if s.Method == nil {
		s.Method = compress.Cast32{}
	}
	if s.Chunks == 0 {
		s.Chunks = 4
	}
	return s
}

// NodeBandwidth runs a uniform all-to-all (msgBytes per pair, phantom
// payloads) iters times on the machine and returns the average node
// bandwidth in bytes/s — the Fig. 3 metric: total bytes sent divided by
// the exchange time and the node count. Setup (window creation, warmup
// iteration) is excluded from the measured window.
func NodeBandwidth(cfg netsim.Config, algo string, msgBytes, iters int) float64 {
	return NodeBandwidthWith(nil, cfg, algo, msgBytes, iters)
}

// NodeBandwidthWith is NodeBandwidth with an observability recorder
// attached to the run (nil behaves exactly like NodeBandwidth).
func NodeBandwidthWith(rec *obs.Recorder, cfg netsim.Config, algo string, msgBytes, iters int) float64 {
	return NodeBandwidthSpec(rec, cfg, Spec{Algo: algo}, msgBytes, iters)
}

// NodeBandwidthSpec is NodeBandwidthWith over a full Spec.
func NodeBandwidthSpec(rec *obs.Recorder, cfg netsim.Config, spec Spec, msgBytes, iters int) float64 {
	spec = spec.withDefaults()
	algo := spec.Algo
	p := cfg.Ranks()
	var start, end float64
	mpi.RunWith(cfg, rec, func(c *mpi.Comm) {
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = msgBytes
		}
		var osc *OSC
		var cosc *CompressedOSC
		var send [][]float64
		switch algo {
		case AlgoOSC:
			osc = NewOSCPhantom(c, Uniform(msgBytes), true)
		case AlgoOSCNaive:
			osc = NewOSCPhantom(c, Uniform(msgBytes), false)
		case AlgoOSCComp:
			count := msgBytes / 8
			if count < 1 {
				count = 1
			}
			stream := gpu.NewStream(gpu.V100(), c)
			stream.SetObserver(c.Obs())
			cosc = NewCompressedOSC(c, spec.Method, stream, spec.Chunks, UniformCount(count))
			cosc.SetLabel("bench")
			send = benchPayload(c.Rank(), p, count)
		}
		run := func() {
			switch algo {
			case AlgoLinear:
				LinearAlltoallvN(c, sizes)
			case AlgoPairwise:
				PairwiseAlltoallvN(c, sizes)
			case AlgoBruck:
				BruckAlltoallN(c, msgBytes)
			case AlgoOSC, AlgoOSCNaive:
				osc.ExchangeN()
			case AlgoOSCComp:
				cosc.Exchange(send)
			default:
				panic(fmt.Sprintf("exchange: unknown algorithm %q", algo))
			}
		}
		run() // warmup
		c.Barrier()
		t0 := c.AllreduceFloat64("min", c.Now())
		for i := 0; i < iters; i++ {
			run()
		}
		c.Barrier()
		t1 := c.AllreduceFloat64("max", c.Now())
		if c.Rank() == 0 {
			start, end = t0, t1
		}
	})
	total := float64(iters) * float64(p) * float64(p) * float64(msgBytes)
	return total / (end - start) / float64(cfg.Nodes)
}

// NodeBandwidthRecoverable is NodeBandwidthWith under the crash-recovery
// runtime (docs/ROBUSTNESS.md): every iteration ends with an epoch
// checkpoint carrying the exchange's healing ledger, and on a watchdog
// crash verdict the controller rolls back, respawns, and resumes the
// sweep instead of failing it. The bandwidth is computed over the
// iterations the final attempt actually executed (replayed iterations
// are restored, not re-run), so a recovered measurement stays
// well-defined.
func NodeBandwidthRecoverable(rec *obs.Recorder, cfg netsim.Config, algo string, msgBytes, iters int, pol recov.Policy) (float64, recov.Outcome, error) {
	return NodeBandwidthRecoverableSpec(rec, cfg, Spec{Algo: algo}, msgBytes, iters, pol)
}

// NodeBandwidthRecoverableSpec is NodeBandwidthRecoverable over a full
// Spec.
func NodeBandwidthRecoverableSpec(rec *obs.Recorder, cfg netsim.Config, spec Spec, msgBytes, iters int, pol recov.Policy) (float64, recov.Outcome, error) {
	spec = spec.withDefaults()
	algo := spec.Algo
	var start, end float64
	var performed, pFinal int
	ct := &recov.Controller{Policy: pol}
	out, err := ct.Run(cfg, rec, func(c *mpi.Comm, rk *recov.Rank) {
		// After an elastic shrink the communicator is smaller than the
		// machine; everything below sizes itself off the live membership.
		p := c.Size()
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = msgBytes
		}
		var osc *OSC
		var cosc *CompressedOSC
		var send [][]float64
		switch algo {
		case AlgoOSC:
			osc = NewOSCPhantom(c, Uniform(msgBytes), true)
		case AlgoOSCNaive:
			osc = NewOSCPhantom(c, Uniform(msgBytes), false)
		case AlgoOSCComp:
			count := msgBytes / 8
			if count < 1 {
				count = 1
			}
			stream := gpu.NewStream(gpu.V100(), c)
			stream.SetObserver(c.Obs())
			cosc = NewCompressedOSC(c, spec.Method, stream, spec.Chunks, UniformCount(count))
			cosc.SetLabel("bench")
			send = benchPayload(c.Rank(), p, count)
		}
		run := func() {
			switch algo {
			case AlgoLinear:
				LinearAlltoallvN(c, sizes)
			case AlgoPairwise:
				PairwiseAlltoallvN(c, sizes)
			case AlgoBruck:
				BruckAlltoallN(c, msgBytes)
			case AlgoOSC, AlgoOSCNaive:
				osc.ExchangeN()
			case AlgoOSCComp:
				cosc.Exchange(send)
			default:
				panic(fmt.Sprintf("exchange: unknown algorithm %q", algo))
			}
		}
		// One iteration = one recovery epoch: epochs the committed
		// checkpoint covers are skipped (their ledger state is restored),
		// the rest execute and checkpoint. myPerformed is rank-local (the
		// bodies run concurrently under the parallel engine); rank 0
		// publishes it after the closing barrier.
		epoch, myPerformed := 0, 0
		step := func(measured bool) {
			epoch++
			if resume := rk.Resume(); epoch <= resume {
				if epoch == resume && cosc != nil {
					var snap []byte
					var err error
					if rk.Migrating() {
						// The snapshot was committed by the previous (larger)
						// membership: fetch this rank's old ledger and remap
						// its per-peer records onto the surviving ranks.
						snap, err = rk.RestorePeer(rk.PrevRank())
						if err == nil {
							snap, err = RemapLedgerState(snap, rk.OldToNew(), c.Size())
						}
					} else {
						snap, err = rk.Restore()
					}
					if err != nil {
						panic(fmt.Sprintf("exchange: rank %d cannot restore epoch %d: %v", c.Rank(), epoch, err))
					}
					if err := cosc.RestoreLedger(snap); err != nil {
						panic(fmt.Sprintf("exchange: rank %d epoch %d: %v", c.Rank(), epoch, err))
					}
				}
				return
			}
			run()
			if measured {
				myPerformed++
			}
			var snap []byte
			if cosc != nil {
				snap = cosc.LedgerState()
			}
			rk.Checkpoint(epoch, snap)
		}
		step(false) // warmup
		c.Barrier()
		t0 := c.AllreduceFloat64("min", c.Now())
		for i := 0; i < iters; i++ {
			step(true)
		}
		c.Barrier()
		t1 := c.AllreduceFloat64("max", c.Now())
		if c.Rank() == 0 {
			start, end = t0, t1
			performed = myPerformed
			pFinal = p
		}
	})
	if err != nil {
		return 0, out, err
	}
	if performed == 0 || end <= start {
		return 0, out, nil
	}
	// Every measured iteration of the final attempt ran at that attempt's
	// membership size (replays are restored, not re-run), so the byte
	// total uses the final comm size — after a shrink that is smaller
	// than the machine, and the outcome records the degradation.
	total := float64(performed) * float64(pFinal) * float64(pFinal) * float64(msgBytes)
	return total / (end - start) / float64(cfg.Nodes), out, nil
}

// benchPayload builds deterministic pseudo-data in (-1, 1) for every
// destination rank.
func benchPayload(rank, p, count int) [][]float64 {
	send := make([][]float64, p)
	for d := range send {
		send[d] = make([]float64, count)
		for i := range send[d] {
			send[d][i] = float64((rank*31+d*17+i*13)%2000-1000) / 1000
		}
	}
	return send
}

// CompressedExchangeTime measures one compressed OSC exchange of count
// float64 values per pair on real random-like data and returns the
// exchange time (excluding construction and warmup).
func CompressedExchangeTime(cfg netsim.Config, method compress.Method, chunks, count, iters int, pipelined bool) float64 {
	return CompressedExchangeTimeWith(nil, cfg, method, chunks, count, iters, pipelined)
}

// CompressedExchangeTimeWith is CompressedExchangeTime with an
// observability recorder attached to the run (nil behaves exactly like
// CompressedExchangeTime).
func CompressedExchangeTimeWith(rec *obs.Recorder, cfg netsim.Config, method compress.Method, chunks, count, iters int, pipelined bool) float64 {
	p := cfg.Ranks()
	var start, end float64
	mpi.RunWith(cfg, rec, func(c *mpi.Comm) {
		stream := gpu.NewStream(gpu.V100(), c)
		stream.SetObserver(c.Obs())
		x := NewCompressedOSC(c, method, stream, chunks, UniformCount(count))
		x.Pipelined = pipelined
		send := benchPayload(c.Rank(), p, count)
		x.Exchange(send) // warmup
		c.Barrier()
		t0 := c.AllreduceFloat64("min", c.Now())
		for i := 0; i < iters; i++ {
			x.Exchange(send)
		}
		c.Barrier()
		t1 := c.AllreduceFloat64("max", c.Now())
		if c.Rank() == 0 {
			start, end = t0, t1
		}
	})
	return (end - start) / float64(iters)
}

package exchange

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mpi"
)

const tagCtlOffset = 103

// exchangeOffsets distributes window placement at plan time: every rank
// tells each of its sources where that source's slot starts in this
// rank's window, and learns from each of its destinations where its own
// data must land there. recvOff[s] is the local window offset reserved
// for source s (meaningful where recvSizes[s] > 0); sendSizes[d] > 0
// marks the destinations this rank sends to. The returned slice holds
// this rank's put offset per destination.
//
// This is the one-time handshake a cached-window implementation pays at
// plan creation (§V-A); Exchange itself stays handshake-free.
func exchangeOffsets(c *mpi.Comm, recvSizes, recvOff, sendSizes []int) []int {
	var msg [8]byte
	for s, n := range recvSizes {
		if n > 0 {
			binary.LittleEndian.PutUint64(msg[:], uint64(recvOff[s]))
			c.Send(s, tagCtlOffset, msg[:])
		}
	}
	sendOff := make([]int, len(sendSizes))
	for d, n := range sendSizes {
		if n > 0 {
			got := c.Recv(d, tagCtlOffset)
			// The handshake seeds every later put's placement, so a mangled
			// control message must fail here, loudly, not as a corrupted
			// window a million virtual seconds later.
			if len(got) != 8 {
				panic(fmt.Sprintf("exchange: offset handshake from rank %d carried %d bytes, want 8", d, len(got)))
			}
			off := binary.LittleEndian.Uint64(got)
			if off > math.MaxInt64/2 {
				panic(fmt.Sprintf("exchange: offset handshake from rank %d carried implausible offset %#x", d, off))
			}
			sendOff[d] = int(off)
		}
	}
	return sendOff
}

package exchange

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/errtrack"
)

// CountFn gives the number of float64 values rank dst receives from rank
// src in one exchange (the value-level analogue of SizeFn).
type CountFn func(dst, src int) int

// UniformCount returns the CountFn of a uniform exchange.
func UniformCount(n int) CountFn {
	return func(dst, src int) int { return n }
}

// CompressedOSC is the paper's contribution: the one-sided ring
// all-to-all with lossy compression integrated into the transfer (§V-B).
// The send buffer (the concatenation of all destination payloads in ring
// order) is split into Chunks pieces; one compression kernel per chunk
// is submitted up front on a GPU stream, and the host watches the
// stream's progress counter: as soon as a chunk's kernel completes, the
// puts for the destinations it covers are issued, so compression of
// chunk k+1 overlaps the transfer of chunk k. The target decompresses
// its whole window after the closing fence.
//
// Wire format per destination slot: a 4-byte little-endian compressed
// length followed by the compressed bytes at a fixed window offset, so
// variable-rate methods also work.
type CompressedOSC struct {
	c      *mpi.Comm
	win    *mpi.Win
	method compress.Method
	stream *gpu.Stream
	chunks int
	counts CountFn
	// Pipelined toggles the §V-B overlap; false synchronizes the stream
	// before issuing any put (the ablation baseline).
	Pipelined bool
	// SimCounts, when non-nil, gives the simulated value counts used for
	// timing (kernel costs and wire bytes) in place of the real counts —
	// the scaled-volume experiment mode (see DESIGN.md).
	SimCounts CountFn

	// Precomputed metric names of this exchange's label (SetLabel).
	metricRaw, metricWire, metricErr, metricOverlap, metricAchieved string
	metricTrkMaxRel, metricTrkRMS, metricTrkVals                    string
	label                                                           string
	// errScratch holds decompressed values while measuring the achieved
	// error; allocated lazily and only when an event log is attached.
	errScratch []float64

	recvCounts []int
	slotOff    []int // window offset of each source's slot
	slotLen    []int // window slot size per source
	sendOff    []int // my slot offset within each destination's window
	stagePos   []int // staging offset per destination
	order      []int
	groups     [][]int // ring order split into chunk groups
	expected   []int
	stage      []byte      // compressed staging ("first internal buffer")
	out        [][]float64 // decompressed results, reused across calls
	heal       *healer
}

// NewCompressedOSC collectively builds the compressed exchange for the
// fixed pattern counts, compressing with method, running kernels on a
// stream over dev, pipelining in chunks pieces. All ranks must construct
// with identical counts/method/chunks.
func NewCompressedOSC(c *mpi.Comm, method compress.Method, stream *gpu.Stream, chunks int, counts CountFn) *CompressedOSC {
	if chunks < 1 {
		panic("exchange: chunk count must be ≥ 1")
	}
	p := c.Size()
	me := c.Rank()

	slotBytes := func(values int) int {
		if values == 0 {
			return 0
		}
		return 4 + method.MaxCompressedLen(values)
	}

	recvCounts := make([]int, p)
	slotOff := make([]int, p)
	expected := make([]int, p)
	winSize := 0
	for s := 0; s < p; s++ {
		recvCounts[s] = counts(me, s)
		slotOff[s] = winSize
		winSize += slotBytes(recvCounts[s])
		if recvCounts[s] > 0 {
			expected[s] = 1
		}
	}
	sendSizes := make([]int, p)
	for d := 0; d < p; d++ {
		sendSizes[d] = slotBytes(counts(d, me))
	}
	slotLen := recvSizesBytes(recvCounts, slotBytes)
	sendOff := exchangeOffsets(c, slotLen, slotOff, sendSizes)
	order := ringOrder(c, true)
	stagePos := make([]int, p)
	stageSize := 0
	for _, dst := range order {
		stagePos[dst] = stageSize
		stageSize += slotBytes(counts(dst, me))
	}
	out := make([][]float64, p)
	for s := 0; s < p; s++ {
		out[s] = make([]float64, recvCounts[s])
	}
	x := &CompressedOSC{
		c:          c,
		win:        c.WinCreate(make([]byte, winSize)),
		method:     method,
		stream:     stream,
		chunks:     chunks,
		counts:     counts,
		Pipelined:  true,
		recvCounts: recvCounts,
		slotOff:    slotOff,
		slotLen:    slotLen,
		sendOff:    sendOff,
		stagePos:   stagePos,
		order:      order,
		groups:     splitGroups(order, chunks),
		expected:   expected,
		stage:      make([]byte, stageSize),
		out:        out,
		heal:       newHealer(c),
	}
	x.SetLabel("exchange")
	return x
}

// SetLabel names this exchange in the metric registry: the achieved
// compression is reported as compress/<label>/{raw,wire}_bytes plus the
// error-bound gauge. The FFT plan labels its reshapes fwd0..3 / bwd0..3.
func (x *CompressedOSC) SetLabel(label string) {
	x.label = label
	x.metricRaw, x.metricWire, x.metricErr = obs.CompressMetricNames(label)
	x.metricOverlap = "exchange/" + label + "/overlap_efficiency"
	x.metricAchieved = "compress/" + label + "/achieved_error"
	x.metricTrkMaxRel, x.metricTrkRMS, x.metricTrkVals = obs.ErrtrackMetricNames(label)
}

// recvSizesBytes maps value counts to window slot sizes.
func recvSizesBytes(counts []int, slotBytes func(int) int) []int {
	out := make([]int, len(counts))
	for i, c := range counts {
		out[i] = slotBytes(c)
	}
	return out
}

// splitGroups divides the destination order into up to k contiguous,
// near-equal groups (one compression kernel each).
func splitGroups(order []int, k int) [][]int {
	n := len(order)
	if k > n {
		k = n
	}
	groups := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := n*i/k, n*(i+1)/k
		if hi > lo {
			groups = append(groups, order[lo:hi])
		}
	}
	return groups
}

// Method returns the compression method in use.
func (x *CompressedOSC) Method() compress.Method { return x.method }

// Exchange performs the compressed all-to-all on float64 payloads:
// send[d] (counts(d, me) values) is compressed and put into rank d's
// window; the returned slices (indexed by source, reused across calls)
// hold the decompressed data this rank received.
func (x *CompressedOSC) Exchange(send [][]float64) [][]float64 {
	me := x.c.Rank()
	dev := x.stream.Device()
	for _, dst := range x.order {
		if want := x.counts(dst, me); len(send[dst]) != want {
			panic("exchange: send count does not match the compressed OSC plan")
		}
	}

	simCounts := x.counts
	if x.SimCounts != nil {
		simCounts = x.SimCounts
	}
	// Phase 0 (reliable mode only): peers downgraded to the two-sided
	// path get their data up front, uncompressed (lossless), over the
	// checksummed-and-retried transport. Sends never block, so this
	// injects before any kernel is launched.
	healing := x.heal.active()
	x.heal.beginEpoch() // may re-enable demoted links whose probe is due
	if healing {
		for _, dst := range x.order {
			if x.counts(dst, me) > 0 && x.heal.fellTo[dst] {
				x.c.Send(dst, tagFallback, f64Bytes(send[dst]))
			}
		}
	}
	// Phase 1 (§V-B): submit one compression kernel per chunk, all up
	// front, on the same stream.
	rk := x.c.Obs()
	done := make([]float64, len(x.groups))
	kernelTime := 0.0
	for g, group := range x.groups {
		group := group
		inBytes, outBytes := 0, 0
		for _, dst := range group {
			if healing && x.heal.fellTo[dst] {
				continue
			}
			cv := simCounts(dst, me)
			inBytes += 8 * cv
			outBytes += x.method.MaxCompressedLen(cv)
		}
		cost := dev.CompressCost(inBytes, outBytes)
		kernelTime += cost
		done[g] = x.stream.LaunchTagged(obs.PhaseCompress, cost, func() {
			for _, dst := range group {
				vals := send[dst]
				if len(vals) == 0 || (healing && x.heal.fellTo[dst]) {
					continue
				}
				slot := x.stage[x.stagePos[dst]:]
				clen := x.method.Compress(slot[4:], vals)
				binary.LittleEndian.PutUint32(slot, uint32(clen))
			}
		})
	}

	// Phase 2: the host watches the progress counter; each completed
	// chunk's destinations are put while later chunks still compress.
	// The time the host spends blocked on compression kernels (rather
	// than overlapping them with puts) is the pipeline's stall.
	var rawBytes, wireBytes int64
	stall := 0.0
	// With an event log attached, measure the error this epoch actually
	// achieved by round-tripping each compressed slot on the host. Pure
	// wall-clock work outside the virtual timeline; off (and free) when
	// telemetry is off.
	measure := rk.EventsOn()
	worstErr, measured := 0.0, false
	if !x.Pipelined {
		if st := x.stream.ReadyAt() - x.c.Now(); st > 0 {
			rk.Span(obs.TrackHost, obs.PhaseCompressWait, x.c.Now(), x.c.Now()+st, 0)
			stall += st
		}
		x.stream.Synchronize()
	}
	for g, group := range x.groups {
		if x.Pipelined {
			if st := done[g] - x.c.Now(); st > 0 {
				rk.Span(obs.TrackHost, obs.PhaseCompressWait, x.c.Now(), done[g], 0)
				stall += st
			}
			x.c.AdvanceTo(done[g])
		}
		for _, dst := range group {
			if x.counts(dst, me) == 0 || (healing && x.heal.fellTo[dst]) {
				continue
			}
			slot := x.stage[x.stagePos[dst]:]
			clen := int(binary.LittleEndian.Uint32(slot))
			logical := 4 + clen
			if cv := x.counts(dst, me); x.SimCounts != nil && cv > 0 {
				// Charge the wire as if the chunk held the simulated
				// value count at the same compression rate.
				logical = 4 + clen*simCounts(dst, me)/cv
			}
			rawBytes += 8 * int64(simCounts(dst, me))
			wireBytes += int64(logical)
			if measure {
				if st, ok := slotStats(x.method, &x.errScratch, slot[:4+clen], send[dst]); ok {
					measured = true
					if st.MaxRel > worstErr {
						worstErr = st.MaxRel
					}
					rk.Observe(x.metricTrkMaxRel, st.MaxRel)
					rk.Observe(x.metricTrkRMS, st.RMS())
					rk.Add(x.metricTrkVals, st.N)
					rk.Emit(errtrack.AttrEvent(x.c.Now(), x.label, dst, x.method.ErrorBound(), st))
				}
			}
			x.win.PutLogical(dst, x.sendOff[dst], slot[:4+clen], logical)
		}
	}
	rk.Add(x.metricRaw, rawBytes)
	rk.Add(x.metricWire, wireBytes)
	rk.Set(x.metricErr, x.method.ErrorBound())
	rk.Observe(metricOverlapStall, stall)
	if kernelTime > 0 {
		eff := 1 - stall/kernelTime
		if eff < 0 {
			eff = 0
		}
		rk.Set(x.metricOverlap, eff)
	}
	if measured {
		rk.Observe(x.metricAchieved, worstErr)
		rk.Emit(obs.Event{
			T: x.c.Now(), Kind: obs.EventError, Label: x.label, Peer: -1,
			Value: worstErr, Bound: x.method.ErrorBound(),
		})
	}

	// Phase 3: close the epoch. In reliable mode the fence reports (per
	// peer) corrupt or missing puts instead of panicking, so the epilogue
	// can re-fetch the damage over the lossless two-sided path.
	var rep mpi.FenceReport
	if healing {
		rep = x.win.FenceChecked(x.heal.maskExpected(x.expected))
	} else {
		x.win.Fence(x.expected)
	}

	// Phase 4: decompress the whole window (one kernel — the paper
	// decompresses the entire buffer after communications complete).
	// Every slot decode is checked: a mangled length header or payload
	// marks the source damaged instead of panicking or reading out of
	// range.
	buf := x.win.Buffer()
	damaged := make([]bool, x.c.Size())
	for _, s := range rep.Corrupt {
		damaged[s] = true
	}
	for _, s := range rep.Missing {
		damaged[s] = true
	}
	inBytes, outBytes := 0, 0
	for s, cnt := range x.recvCounts {
		if cnt == 0 || (healing && x.heal.fellFrom[s]) {
			continue
		}
		sc := simCounts(me, s)
		inBytes += x.method.MaxCompressedLen(sc)
		outBytes += 8 * sc
	}
	x.stream.LaunchTagged(obs.PhaseDecompress, dev.CompressCost(inBytes, outBytes), func() {
		for s, cnt := range x.recvCounts {
			if cnt == 0 || damaged[s] || (healing && x.heal.fellFrom[s]) {
				continue
			}
			slot := buf[x.slotOff[s] : x.slotOff[s]+x.slotLen[s]]
			if err := decodeSlot(x.method, x.out[s], slot); err != nil {
				if !healing {
					panic(err)
				}
				damaged[s] = true // re-fetched losslessly below
			}
		}
	})
	x.stream.Synchronize()
	if healing {
		x.healEpoch(send, damaged)
	}
	return x.out
}

// minNormal64 is the smallest positive normal float64. Relative error
// against a subnormal denominator explodes without carrying information,
// so such values (and exact zeros) are scored by absolute error instead.
const minNormal64 = 2.2250738585072014e-308

// slotStats round-trips one locally compressed slot and returns the
// block-level error statistics against the original values: the worst
// relative error, the worst absolute error, and the squared-error sum —
// the per-peer attribution the errtrack layer aggregates. Originals
// below the method's MinNormal (or FP64's, whichever is larger) are
// scored by absolute error: the method's relative bound only covers its
// normal range, and a relative error against a subnormal or underflowed
// denominator explodes without carrying information. scratch is the
// caller's reusable decode buffer.
func slotStats(m compress.Method, scratch *[]float64, slot []byte, vals []float64) (errtrack.Stat, bool) {
	if len(vals) == 0 {
		return errtrack.Stat{}, false
	}
	if cap(*scratch) < len(vals) {
		*scratch = make([]float64, len(vals))
	}
	dst := (*scratch)[:len(vals)]
	if err := decodeSlot(m, dst, slot); err != nil {
		return errtrack.Stat{}, false // unreachable for a slot we just produced
	}
	relFloor := m.MinNormal()
	if relFloor < minNormal64 {
		relFloor = minNormal64
	}
	st := errtrack.Stat{N: int64(len(vals))}
	for i, v := range vals {
		d := dst[i] - v
		if d < 0 {
			d = -d
		}
		if d > st.MaxAbs {
			st.MaxAbs = d
		}
		st.SumSq += d * d
		av := v
		if av < 0 {
			av = -av
		}
		if av < relFloor {
			continue // below the method's normal range: absolute only
		}
		if d /= av; d > st.MaxRel {
			st.MaxRel = d
		}
	}
	return st, true
}

// decodeSlot validates and decodes one window slot (4-byte compressed
// length + payload) into dst. Both the header and the payload are
// untrusted: an out-of-range length or a structurally corrupt stream
// yields an error, never a panic or an out-of-bounds read.
func decodeSlot(m compress.Method, dst []float64, slot []byte) error {
	if len(slot) < 4 {
		return fmt.Errorf("exchange: slot of %d bytes lacks the length header", len(slot))
	}
	clen := binary.LittleEndian.Uint32(slot)
	if uint64(clen) > uint64(len(slot)-4) {
		return fmt.Errorf("exchange: slot declares %d compressed bytes, holds %d", clen, len(slot)-4)
	}
	_, err := m.DecompressChecked(dst, slot[4:4+clen])
	return err
}

// healEpoch is the reliable-mode epilogue of one exchange: drain the
// two-sided deliveries of fallen-back sources, re-fetch every damaged
// slot over the lossless path, and escalate repeatedly failing links to
// a permanent fallback.
func (x *CompressedOSC) healEpoch(send [][]float64, damaged []bool) {
	me := x.c.Rank()
	p := x.c.Size()
	for s := 0; s < p; s++ {
		if x.recvCounts[s] > 0 && x.heal.fellFrom[s] {
			f64Into(x.out[s], x.c.Recv(s, tagFallback), s)
		}
	}
	putSrc := make([]bool, p)
	putDst := make([]bool, p)
	for r := 0; r < p; r++ {
		putSrc[r] = x.recvCounts[r] > 0 && !x.heal.fellFrom[r]
		putDst[r] = x.counts(r, me) > 0 && !x.heal.fellTo[r]
	}
	x.heal.round(damaged, putSrc, putDst,
		func(d int) []byte { return f64Bytes(send[d]) },
		func(s int, data []byte) { f64Into(x.out[s], data, s) })
}

// Health reports the cumulative degradation of this exchange: repaired
// slots and peers downgraded to the two-sided path. Repaired and
// fallen-back slots arrive lossless (raw FP64), trading the compression
// win for integrity. Always healthy without a fault plan.
func (x *CompressedOSC) Health() Degradation { return x.heal.report() }

// SetAdaptive installs a degradation policy (see AdaptivePolicy). All
// ranks must install the same policy before the first Exchange.
func (x *CompressedOSC) SetAdaptive(p AdaptivePolicy) { x.heal.setPolicy(p) }

// LedgerState serializes the healing ledger (per-peer damage counters,
// fallback flags, and re-promotion schedule) for an epoch checkpoint.
func (x *CompressedOSC) LedgerState() []byte { return x.heal.state() }

// RestoreLedger installs a checkpointed healing ledger, rolling the
// degradation decisions back to the committed epoch.
func (x *CompressedOSC) RestoreLedger(data []byte) error { return x.heal.restore(data) }

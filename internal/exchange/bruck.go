package exchange

import "repro/internal/mpi"

const tagBruck = 104

// BruckAlltoall is the Bruck algorithm for the uniform all-to-all:
// ⌈log2 p⌉ rounds of aggregated messages instead of p−1 point-to-point
// exchanges, trading extra volume (each block travels up to log p hops)
// for far fewer messages. It is the classic choice for the small-message
// regime where the per-message costs that Fig. 3 exposes dominate.
// Every rank contributes one block of blockSize bytes per destination.
func BruckAlltoall(c *mpi.Comm, send [][]byte, blockSize int) [][]byte {
	return BruckAlltoallLogical(c, send, blockSize, blockSize)
}

// BruckAlltoallLogical is BruckAlltoall charging logicalBlock wire
// bytes per block — the scaled-volume mode: payloads stay real at
// blockSize while the time plane sees each block as logicalBlock bytes.
// logicalBlock == blockSize reproduces BruckAlltoall exactly.
func BruckAlltoallLogical(c *mpi.Comm, send [][]byte, blockSize, logicalBlock int) [][]byte {
	p := c.Size()
	r := c.Rank()
	for d, b := range send {
		if len(b) != blockSize {
			panic("exchange: BruckAlltoall requires uniform block sizes")
		}
		_ = d
	}

	// Phase 1 — local rotation: slot j holds the block destined to rank
	// (r + j) mod p.
	blocks := make([][]byte, p)
	for j := 0; j < p; j++ {
		src := send[(r+j)%p]
		blocks[j] = append([]byte(nil), src...)
	}

	// Phase 2 — ⌈log2 p⌉ rounds: send every slot whose index has bit k
	// set to rank (r + k) mod p, packed into one message.
	round := 0
	for k := 1; k < p; k <<= 1 {
		dst := (r + k) % p
		src := (r - k + p) % p
		var outIdx []int
		for j := 0; j < p; j++ {
			if j&k != 0 {
				outIdx = append(outIdx, j)
			}
		}
		packed := make([]byte, 0, len(outIdx)*blockSize)
		for _, j := range outIdx {
			packed = append(packed, blocks[j]...)
		}
		c.SendLogical(dst, tagBruck+round, packed, len(outIdx)*logicalBlock)
		got := c.Recv(src, tagBruck+round)
		for i, j := range outIdx {
			copy(blocks[j], got[i*blockSize:(i+1)*blockSize])
		}
		round++
	}

	// Phase 3 — inverse rotation: slot j now holds the block that
	// originated at rank (r − j) mod p.
	recv := make([][]byte, p)
	for j := 0; j < p; j++ {
		recv[(r-j+p)%p] = blocks[j]
	}
	return recv
}

// BruckAlltoallN is the phantom (timing-only) variant: it replays the
// Bruck message pattern with the same aggregated sizes but no payloads.
func BruckAlltoallN(c *mpi.Comm, blockSize int) {
	p := c.Size()
	r := c.Rank()
	round := 0
	for k := 1; k < p; k <<= 1 {
		dst := (r + k) % p
		src := (r - k + p) % p
		n := 0
		for j := 0; j < p; j++ {
			if j&k != 0 {
				n++
			}
		}
		c.SendN(dst, tagBruck+round, n*blockSize)
		c.RecvPacket(src, tagBruck+round)
		round++
	}
}

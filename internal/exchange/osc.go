package exchange

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// SizeFn gives the logical bytes that rank dst receives from rank src in
// one exchange. Every rank constructs its OSC from the same SizeFn
// (derived from the globally known communication plan, e.g. the box
// decompositions of an FFT reshape), which is what lets origins compute
// remote window offsets without a handshake.
type SizeFn func(dst, src int) int

// Uniform returns the SizeFn of a uniform all-to-all (n bytes per pair).
func Uniform(n int) SizeFn {
	return func(dst, src int) int { return n }
}

// OSC is the one-sided all-to-all of Algorithm 3: each rank exposes its
// receive buffer through a cached window; Exchange walks the node-aware
// ring order issuing MPI_Win_put operations and closes the epoch with
// one fence. Construct once per communication pattern and reuse —
// window creation is collective and expensive (§V-A), which caching
// amortizes.
type OSC struct {
	c         *mpi.Comm
	win       *mpi.Win
	size      SizeFn
	recvSizes []int // bytes I receive from each source
	offsets   []int // window offset per source
	sendOff   []int // my offset within each destination's window
	order     []int
	expected  []int
	heal      *healer
	// FlushEvery bounds the number of outstanding puts: after this many
	// puts the origin waits for their completion (Algorithm 3 line 10
	// waits once per node step; it also throttles injection, which §V-A
	// notes unthrottled posting lacks). 0 disables flushing. NewOSC
	// defaults it to the GPUs-per-node count.
	FlushEvery int
	// Logical, when non-nil, gives the bytes charged on the wire for the
	// pair (dst, src) instead of the real payload size — the
	// scaled-volume experiment mode, where timing reflects a larger
	// simulated problem (see DESIGN.md).
	Logical SizeFn
}

// NewOSC collectively builds a cached one-sided exchange for the fixed
// pattern described by size. nodeAware selects the architecture-aware
// ring permutation (true reproduces the paper; false is the naive ring
// ablation).
func NewOSC(c *mpi.Comm, size SizeFn, nodeAware bool) *OSC {
	return newOSC(c, size, nodeAware, true)
}

// NewOSCPhantom builds an OSC whose window holds no real memory; only
// ExchangeN (timing-only) may be used. It lets bandwidth benches run at
// rank counts where materializing p² buffers would exhaust memory.
func NewOSCPhantom(c *mpi.Comm, size SizeFn, nodeAware bool) *OSC {
	return newOSC(c, size, nodeAware, false)
}

func newOSC(c *mpi.Comm, size SizeFn, nodeAware, alloc bool) *OSC {
	p := c.Size()
	me := c.Rank()
	recvSizes := make([]int, p)
	offsets := make([]int, p)
	expected := make([]int, p)
	total := 0
	for s := 0; s < p; s++ {
		recvSizes[s] = size(me, s)
		offsets[s] = total
		total += recvSizes[s]
		if recvSizes[s] > 0 {
			expected[s] = 1
		}
	}
	// Learn my slot within each destination's window via the one-time
	// plan handshake (O(partners) messages instead of an O(p²) sum).
	sendSizes := make([]int, p)
	for d := 0; d < p; d++ {
		sendSizes[d] = size(d, me)
	}
	sendOff := exchangeOffsets(c, recvSizes, offsets, sendSizes)
	var buf []byte
	if alloc {
		buf = make([]byte, total)
	}
	return &OSC{
		c:         c,
		win:       c.WinCreate(buf),
		size:      size,
		recvSizes: recvSizes,
		offsets:   offsets,
		sendOff:   sendOff,
		order:     ringOrder(c, nodeAware),
		expected:  expected,
		heal:      newHealer(c),
	}
}

// Health reports the cumulative degradation of this exchange: repaired
// slots and peers downgraded to the two-sided path. Always healthy
// without a fault plan.
func (o *OSC) Health() Degradation { return o.heal.report() }

// SetAdaptive installs a degradation policy (see AdaptivePolicy). All
// ranks must install the same policy before the first Exchange.
func (o *OSC) SetAdaptive(p AdaptivePolicy) { o.heal.setPolicy(p) }

// LedgerState serializes the healing ledger (per-peer damage counters,
// fallback flags, and re-promotion schedule) for an epoch checkpoint.
func (o *OSC) LedgerState() []byte { return o.heal.state() }

// RestoreLedger installs a checkpointed healing ledger, rolling the
// degradation decisions back to the committed epoch.
func (o *OSC) RestoreLedger(data []byte) error { return o.heal.restore(data) }

// Exchange performs the all-to-all: send[d] goes to rank d and must be
// size(d, me) bytes. The result, indexed by source, aliases the window
// buffer and is valid until the next Exchange.
func (o *OSC) Exchange(send [][]byte) [][]byte {
	if o.win.Buffer() == nil {
		panic("exchange: Exchange on a phantom OSC (use NewOSC)")
	}
	me := o.c.Rank()
	healing := o.heal.active()
	o.heal.beginEpoch() // may re-enable demoted links whose probe is due
	pending := 0
	flushAt := o.c.Now()
	for _, dst := range o.order {
		if want := o.size(dst, me); len(send[dst]) != want {
			panic("exchange: send size does not match the OSC plan")
		}
		if len(send[dst]) == 0 {
			continue
		}
		if healing && o.heal.fellTo[dst] {
			// Downgraded link: two-sided, checksummed, retried.
			o.c.Send(dst, tagFallback, send[dst])
			continue
		}
		logical := len(send[dst])
		if o.Logical != nil {
			logical = o.Logical(dst, me)
		}
		done := o.win.PutLogical(dst, o.sendOff[dst], send[dst], logical)
		if done > flushAt {
			flushAt = done
		}
		if pending++; o.FlushEvery > 0 && pending >= o.FlushEvery {
			o.flush(flushAt) // wait the completion of the node step
			pending = 0
		}
	}
	buf := o.win.Buffer()
	if !healing {
		o.win.Fence(o.expected)
	} else {
		rep := o.win.FenceChecked(o.heal.maskExpected(o.expected))
		o.healEpoch(send, rep, buf)
	}
	out := make([][]byte, len(o.recvSizes))
	for s, n := range o.recvSizes {
		out[s] = buf[o.offsets[s] : o.offsets[s]+n : o.offsets[s]+n]
	}
	return out
}

// ExchangeN is the phantom variant: size(d, me) logical bytes to each
// rank, no payloads, no result.
func (o *OSC) ExchangeN() {
	me := o.c.Rank()
	pending := 0
	flushAt := o.c.Now()
	for _, dst := range o.order {
		n := o.size(dst, me)
		if n == 0 {
			continue
		}
		done := o.win.PutN(dst, o.sendOff[dst], n)
		if done > flushAt {
			flushAt = done
		}
		if pending++; o.FlushEvery > 0 && pending >= o.FlushEvery {
			o.flush(flushAt)
			pending = 0
		}
	}
	o.win.Fence(o.expected)
}

// healEpoch is the reliable-mode epilogue of one exchange: drain the
// two-sided deliveries of fallen-back sources, then run the
// verdict/repair round over whatever the fence flagged, escalating
// repeatedly failing links to a permanent fallback.
func (o *OSC) healEpoch(send [][]byte, rep mpi.FenceReport, buf []byte) {
	me := o.c.Rank()
	p := o.c.Size()
	for s := 0; s < p; s++ {
		if o.recvSizes[s] > 0 && o.heal.fellFrom[s] {
			o.place(s, o.c.Recv(s, tagFallback), buf)
		}
	}
	damaged := make([]bool, p)
	for _, s := range rep.Corrupt {
		damaged[s] = true
	}
	for _, s := range rep.Missing {
		damaged[s] = true
	}
	putSrc := make([]bool, p)
	putDst := make([]bool, p)
	for r := 0; r < p; r++ {
		putSrc[r] = o.recvSizes[r] > 0 && !o.heal.fellFrom[r]
		putDst[r] = o.size(r, me) > 0 && !o.heal.fellTo[r]
	}
	o.heal.round(damaged, putSrc, putDst,
		func(d int) []byte { return send[d] },
		func(s int, data []byte) { o.place(s, data, buf) })
}

// place installs a two-sided payload into source s's window slot.
func (o *OSC) place(s int, data, buf []byte) {
	if len(data) != o.recvSizes[s] {
		panic(fmt.Sprintf("exchange: payload from rank %d carried %d bytes, want %d", s, len(data), o.recvSizes[s]))
	}
	copy(buf[o.offsets[s]:], data)
}

// flush waits until the outstanding puts completed at their targets and
// attributes the stall (if any) to the run's metrics and trace.
func (o *OSC) flush(flushAt float64) {
	o.c.CountFlush()
	now := o.c.Now()
	if stall := flushAt - now; stall > 0 {
		rk := o.c.Obs()
		rk.Span(obs.TrackHost, obs.PhaseFlush, now, flushAt, 0)
		rk.Add(metricFlushStalls, 1)
		rk.Observe(metricFlushStallS, stall)
	}
	o.c.AdvanceTo(flushAt)
}

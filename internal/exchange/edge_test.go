package exchange

import (
	"bytes"
	"testing"

	"repro/internal/mpi"
)

// TestSplitGroupsEdgeCases: the chunking helper must degrade gracefully
// at the boundaries the autotuner's candidate space can reach.
func TestSplitGroupsEdgeCases(t *testing.T) {
	// chunks == 1: one group, the whole order, unreordered.
	order := []int{4, 0, 2, 1, 3}
	one := splitGroups(order, 1)
	if len(one) != 1 || len(one[0]) != len(order) {
		t.Fatalf("chunks=1: %v", one)
	}
	for i, v := range one[0] {
		if v != order[i] {
			t.Fatalf("chunks=1 reorders: %v", one)
		}
	}
	// chunks > len(order): one singleton group per destination, none
	// empty.
	many := splitGroups(order, 100)
	if len(many) != len(order) {
		t.Fatalf("chunks>len: got %d groups", len(many))
	}
	for i, g := range many {
		if len(g) != 1 || g[0] != order[i] {
			t.Fatalf("chunks>len: %v", many)
		}
	}
	// Empty order: no groups, no panic.
	if got := splitGroups(nil, 4); len(got) != 0 {
		t.Fatalf("empty order: %v", got)
	}
	if got := splitGroups([]int{}, 1); len(got) != 0 {
		t.Fatalf("empty order, k=1: %v", got)
	}
	// Groups always partition the order exactly, for every k.
	for k := 1; k <= 8; k++ {
		var flat []int
		for _, g := range splitGroups(order, k) {
			if len(g) == 0 {
				t.Fatalf("k=%d: empty group", k)
			}
			flat = append(flat, g...)
		}
		if len(flat) != len(order) {
			t.Fatalf("k=%d: lost destinations: %v", k, flat)
		}
		for i, v := range flat {
			if v != order[i] {
				t.Fatalf("k=%d: reordered: %v", k, flat)
			}
		}
	}
}

// TestBruckMatchesTwoSidedPayloads: on identical uniform send buffers
// the Bruck algorithm must deliver byte-identical payloads to the
// classical two-sided all-to-all — the equivalence the tuner relies on
// when it swaps one for the other.
func TestBruckMatchesTwoSidedPayloads(t *testing.T) {
	cfg := machine(2) // 12 ranks
	p := cfg.Ranks()
	const bs = 40
	gather := func(run func(c *mpi.Comm, send [][]byte) [][]byte) [][][]byte {
		out := make([][][]byte, p)
		mpi.Run(cfg, func(c *mpi.Comm) {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(c.Rank(), d, bs)
			}
			recv := run(c, send)
			cp := make([][]byte, p)
			for s := range recv {
				cp[s] = append([]byte(nil), recv[s]...)
			}
			out[c.Rank()] = cp
		})
		return out
	}
	twosided := gather(LinearAlltoallv)
	bruck := gather(func(c *mpi.Comm, send [][]byte) [][]byte {
		return BruckAlltoall(c, send, bs)
	})
	for r := 0; r < p; r++ {
		for s := 0; s < p; s++ {
			if !bytes.Equal(twosided[r][s], bruck[r][s]) {
				t.Fatalf("rank %d from %d: bruck payload differs from two-sided", r, s)
			}
		}
	}
}

// TestBruckLogicalPayloadsAndTiming: the scaled-volume variant carries
// the same real payloads while charging the logical volume — a larger
// logical block must cost more virtual time, never corrupt data.
func TestBruckLogicalPayloadsAndTiming(t *testing.T) {
	cfg := machine(1)
	p := cfg.Ranks()
	const bs = 32
	run := func(logical int) (time float64) {
		res := mpi.Run(cfg, func(c *mpi.Comm) {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(c.Rank(), d, bs)
			}
			recv := BruckAlltoallLogical(c, send, bs, logical)
			for s := 0; s < p; s++ {
				if !bytes.Equal(recv[s], payload(s, c.Rank(), bs)) {
					t.Errorf("logical=%d rank %d from %d corrupt", logical, c.Rank(), s)
				}
			}
		})
		return res.Time
	}
	tSame := run(bs)
	tBig := run(64 * bs)
	if tBig <= tSame {
		t.Errorf("logical 64x block not slower: %.3g vs %.3g", tBig, tSame)
	}
}

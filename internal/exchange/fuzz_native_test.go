package exchange

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/compress"
)

// Native fuzz targets (run under `make fuzz` with a fixed budget; the
// deterministic sweeps in fuzz_test.go remain the tier-1 cover).

// fuzzMethods are the codecs the slot decoder must survive hostile
// input under.
var fuzzMethods = []compress.Method{
	compress.None{}, compress.Cast32{}, compress.Cast16{}, compress.CastBF16{},
	compress.Trim{M: 20}, compress.Block{Bits: 12},
	compress.Scaled{Inner: compress.Cast16{}}, compress.Lossless{},
}

// FuzzDecodeSlot drives the window-slot decoder — the first consumer of
// bytes that crossed the possibly-corrupting one-sided transport — with
// arbitrary slots: it must return an error or a value, never panic.
func FuzzDecodeSlot(f *testing.F) {
	vals := []float64{0, 1, -1, 3.14159, -2.5e-8, 1e300}
	for i, m := range fuzzMethods {
		slot := make([]byte, 4+m.MaxCompressedLen(len(vals)))
		clen := m.Compress(slot[4:], vals)
		putLE32(slot, uint32(clen))
		f.Add(byte(i), slot)
		f.Add(byte(i), slot[:3])
		f.Add(byte(i), []byte{})
	}
	f.Fuzz(func(t *testing.T, mi byte, slot []byte) {
		m := fuzzMethods[int(mi)%len(fuzzMethods)]
		dst := make([]float64, len(vals))
		_ = decodeSlot(m, dst, slot) // must not panic
	})
}

// FuzzRemapLedgerState feeds the shrink-migration ledger remapper
// arbitrary serialized ledgers: every outcome is a valid new-membership
// ledger or a typed error, never a panic and never an out-of-range
// record copy.
func FuzzRemapLedgerState(f *testing.F) {
	valid := makeLedger(6)
	f.Add(valid, 6, 5)
	f.Add(valid[:10], 6, 5)
	f.Add([]byte{}, 0, 0)
	f.Fuzz(func(t *testing.T, data []byte, oldP, newP int) {
		if oldP < 0 || oldP > 64 || newP < 0 || newP > 64 {
			return
		}
		oldToNew := identityDrop(oldP, newP)
		out, err := RemapLedgerState(data, oldToNew, newP)
		if err != nil {
			return
		}
		if len(out) != 8+20+newP*25 {
			t.Fatalf("remapped ledger is %d bytes, want %d", len(out), 8+20+newP*25)
		}
		if !bytes.Equal(out[8:28], data[8:28]) {
			t.Fatal("remap dropped the cumulative counters")
		}
	})
}

// makeLedger serializes a p-peer ledger with distinguishable per-peer
// records.
func makeLedger(p int) []byte {
	out := make([]byte, 8+20+p*25)
	binary.LittleEndian.PutUint32(out[0:], ledgerVersion)
	binary.LittleEndian.PutUint32(out[4:], uint32(p))
	binary.LittleEndian.PutUint32(out[8:], 42) // epoch
	binary.LittleEndian.PutUint64(out[12:], 7) // repairs
	binary.LittleEndian.PutUint64(out[20:], 3) // promotions
	for i := 0; i < p; i++ {
		rec := out[28+i*25:]
		binary.LittleEndian.PutUint32(rec[0:], uint32(100+i)) // failFrom
		binary.LittleEndian.PutUint32(rec[4:], uint32(200+i)) // failTo
		rec[8] = byte(i % 4)                                  // flags
		binary.LittleEndian.PutUint32(rec[9:], uint32(i))     // probeFrom
	}
	return out
}

// identityDrop maps oldP peers onto newP survivors: the first oldP-newP
// dead slots are interleaved at the end.
func identityDrop(oldP, newP int) []int {
	m := make([]int, oldP)
	next := 0
	for i := range m {
		if next < newP {
			m[i] = next
			next++
		} else {
			m[i] = -1
		}
	}
	return m
}

func TestRemapLedgerStateDropsDeadPreservesSurvivors(t *testing.T) {
	const oldP, newP = 6, 5
	data := makeLedger(oldP)
	// Old rank 3 died: 0,1,2 keep their slots, 4,5 shift down by one.
	oldToNew := []int{0, 1, 2, -1, 3, 4}
	out, err := RemapLedgerState(data, oldToNew, newP)
	if err != nil {
		t.Fatalf("remap failed: %v", err)
	}
	if got := int(binary.LittleEndian.Uint32(out[4:])); got != newP {
		t.Errorf("peer count %d, want %d", got, newP)
	}
	if !bytes.Equal(out[8:28], data[8:28]) {
		t.Error("cumulative counters not preserved")
	}
	for old, nw := range oldToNew {
		if nw < 0 {
			continue
		}
		want := data[28+old*25 : 28+(old+1)*25]
		got := out[28+nw*25 : 28+(nw+1)*25]
		if !bytes.Equal(got, want) {
			t.Errorf("old peer %d record not carried to new slot %d", old, nw)
		}
	}
	// A remapped ledger must install cleanly into a newP-peer healer via
	// the public restore path.
	if got := int(binary.LittleEndian.Uint32(out[0:])); got != ledgerVersion {
		t.Errorf("version %d, want %d", got, ledgerVersion)
	}
	if len(out) != 8+20+newP*25 {
		t.Errorf("remapped length %d, want %d", len(out), 8+20+newP*25)
	}
}

func TestRemapLedgerStateRejectsDamage(t *testing.T) {
	data := makeLedger(4)
	if _, err := RemapLedgerState(data[:11], identityDrop(4, 3), 3); err == nil {
		t.Error("truncated ledger accepted")
	}
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[0:], 9)
	if _, err := RemapLedgerState(bad, identityDrop(4, 3), 3); err == nil {
		t.Error("wrong version accepted")
	}
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[4:], 5)
	if _, err := RemapLedgerState(bad, identityDrop(4, 3), 3); err == nil {
		t.Error("peer-count mismatch accepted")
	}
	if _, err := RemapLedgerState(data, []int{0, 1, 2, 7}, 3); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

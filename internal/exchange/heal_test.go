package exchange

import (
	"bytes"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// silentPlan corrupts every sufficiently large put payload without
// touching the two-sided path — the worst case for a one-sided
// exchange, and the scenario the self-healing round exists for.
func silentPlan(seed int64) *netsim.FaultPlan {
	return &netsim.FaultPlan{Seed: seed, SilentCorruptProb: 1}
}

func TestOSCHealsSilentCorruption(t *testing.T) {
	// Every put is mangled in flight; the exchange must still deliver
	// bit-identical data by re-fetching each slot over the two-sided
	// path, and must say so in its degradation report.
	cfg := machine(1)
	cfg.Faults = silentPlan(11)
	p := cfg.Ranks()
	const msg = 128 // ≥ the silent-corruption floor
	res, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		send := make([][]byte, p)
		for d := 0; d < p; d++ {
			send[d] = payload(me, d, msg)
		}
		o := NewOSC(c, Uniform(msg), true)
		got := o.Exchange(send)
		for s := 0; s < p; s++ {
			if !bytes.Equal(got[s], payload(s, me, msg)) {
				t.Errorf("rank %d from %d: corrupt data survived healing", me, s)
			}
		}
		if h := o.Health(); h.Repairs == 0 {
			t.Errorf("rank %d healed nothing under certain corruption: %v", me, h)
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if res.Stats.Faults.SilentCorrupt == 0 {
		t.Error("no silent corruption injected")
	}
}

func TestOSCFallsBackAfterRepeatedDamage(t *testing.T) {
	// Certain corruption on every epoch: after the threshold the
	// exchange must abandon the one-sided path per peer and keep
	// delivering over two-sided, still bit-identical.
	cfg := machine(1)
	cfg.Faults = silentPlan(12)
	p := cfg.Ranks()
	const msg = 128
	iters := DefaultFallbackAfter + 2
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		o := NewOSC(c, Uniform(msg), true)
		for iter := 0; iter < iters; iter++ {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(me+iter, d, msg)
			}
			got := o.Exchange(send)
			for s := 0; s < p; s++ {
				if !bytes.Equal(got[s], payload(s+iter, me, msg)) {
					t.Errorf("iter %d rank %d from %d: corrupt", iter, me, s)
				}
			}
		}
		h := o.Health()
		if len(h.Fallback) != p-1 {
			t.Errorf("rank %d fallback peers %v, want all %d partners", me, h.Fallback, p-1)
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

// fp16 is the FP64→FP16→FP64 round trip of the Cast16 method.
func fp16(v float64) float64 {
	var b [2]byte
	var d [1]float64
	compress.Cast16{}.Compress(b[:], []float64{v})
	compress.Cast16{}.Decompress(d[:], b[:])
	return d[0]
}

func TestCompressedOSCHealsToLossless(t *testing.T) {
	// A lossy method under certain put corruption: every slot is damaged,
	// every slot is re-fetched as raw FP64 — so the results are exact
	// despite the method's error bound, and the exchange reports full
	// degradation once the threshold trips.
	cfg := machine(1)
	cfg.Faults = silentPlan(13)
	p := cfg.Ranks()
	const vals = 32 // 32 FP16 values + header ≥ the corruption floor
	iters := DefaultFallbackAfter + 2
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		x := NewCompressedOSC(c, compress.Cast16{}, gpu.NewStream(gpu.V100(), c), 3, UniformCount(vals))
		for iter := 0; iter < iters; iter++ {
			send := make([][]float64, p)
			for d := 0; d < p; d++ {
				send[d] = make([]float64, vals)
				for i := range send[d] {
					// Not FP16-representable: only a lossless delivery
					// reproduces these bits.
					send[d][i] = float64(me*1000+d*100+i*10+iter) / 7
				}
			}
			got := x.Exchange(send)
			for s := 0; s < p; s++ {
				for i := 0; i < vals; i++ {
					want := float64(s*1000+me*100+i*10+iter) / 7
					if s == me {
						// Self puts never cross the corrupting network, so
						// the self slot arrives on the normal lossy path.
						want = fp16(want)
					}
					if got[s][i] != want {
						t.Errorf("iter %d rank %d from %d value %d: lossy or corrupt delivery", iter, me, s, i)
					}
				}
			}
		}
		h := x.Health()
		if h.Repairs == 0 || len(h.Fallback) != p-1 {
			t.Errorf("rank %d degradation %v, want repairs and all %d partners fallen back", me, h, p-1)
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestOSCRepromotesAfterCleanProbe(t *testing.T) {
	// A demoted link whose damage has stopped must earn its one-sided
	// path back: after the hysteresis wait the exchange probes the link
	// and, finding the epoch clean, clears its damage ledger. The plan
	// carries no active faults, so reliable mode is on but the probe is
	// guaranteed clean — the demotion is installed by hand (symmetric on
	// both endpoints, as the protocol produces it).
	cfg := machine(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 15}
	p := cfg.Ranks()
	const msg = 128
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		o := NewOSC(c, Uniform(msg), true)
		h := o.heal
		for d := 0; d < p; d++ {
			if d == me {
				continue
			}
			h.fellTo[d], h.failTo[d] = true, h.threshold
			h.waitTo[d], h.probeTo[d] = h.repromote, h.repromote
			h.fellFrom[d], h.failFrom[d] = true, h.threshold
			h.waitFrom[d], h.probeFrom[d] = h.repromote, h.repromote
		}
		for iter := 0; iter <= h.repromote; iter++ {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(me+iter, d, msg)
			}
			got := o.Exchange(send)
			for s := 0; s < p; s++ {
				if !bytes.Equal(got[s], payload(s+iter, me, msg)) {
					t.Errorf("iter %d rank %d from %d: corrupt", iter, me, s)
				}
			}
		}
		hd := o.Health()
		if len(hd.Fallback) != 0 {
			t.Errorf("rank %d still fallen back after clean probe: %v", me, hd.Fallback)
		}
		if want := int64(2 * (p - 1)); hd.Promotions != want {
			t.Errorf("rank %d promotions %d, want %d", me, hd.Promotions, want)
		}
		for d := 0; d < p; d++ {
			if d == me {
				continue
			}
			if h.failTo[d] != 0 || h.failFrom[d] != 0 || h.probeTo[d] != 0 || h.probeFrom[d] != 0 {
				t.Errorf("rank %d peer %d: ledger not cleared after promotion", me, d)
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestOSCFailedProbeDoublesWait(t *testing.T) {
	// Sustained corruption: the probe at epoch threshold+repromote finds
	// the link still damaged, re-demotes it in the same epoch, and
	// doubles the wait before the next probe (hysteresis) — all while
	// every epoch's data, probe epochs included, stays bit-identical via
	// repairs.
	cfg := machine(1)
	cfg.Faults = silentPlan(16)
	p := cfg.Ranks()
	const msg = 128
	probeAt := DefaultFallbackAfter + DefaultRepromoteAfter // demote at 3, probe at 7
	iters := probeAt + 1
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		o := NewOSC(c, Uniform(msg), true)
		for iter := 0; iter < iters; iter++ {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(me+iter, d, msg)
			}
			got := o.Exchange(send)
			for s := 0; s < p; s++ {
				if !bytes.Equal(got[s], payload(s+iter, me, msg)) {
					t.Errorf("iter %d rank %d from %d: corrupt", iter, me, s)
				}
			}
		}
		h := o.heal
		hd := o.Health()
		if len(hd.Fallback) != p-1 {
			t.Errorf("rank %d fallback peers %v, want all %d partners re-demoted", me, hd.Fallback, p-1)
		}
		if hd.Promotions != 0 {
			t.Errorf("rank %d promoted %d links under certain corruption", me, hd.Promotions)
		}
		for d := 0; d < p; d++ {
			if d == me {
				continue
			}
			if want := 2 * DefaultRepromoteAfter; h.waitTo[d] != want {
				t.Errorf("rank %d peer %d: probe wait %d, want doubled %d", me, d, h.waitTo[d], want)
			}
			if want := probeAt + 2*DefaultRepromoteAfter; h.probeTo[d] != want {
				t.Errorf("rank %d peer %d: next probe at %d, want %d", me, d, h.probeTo[d], want)
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestOSCOneWayFallbackWhenDisabled(t *testing.T) {
	// RepromoteAfter < 0 restores the pre-hysteresis behavior: a demoted
	// link never probes and never returns.
	cfg := machine(1)
	cfg.Faults = silentPlan(17)
	p := cfg.Ranks()
	const msg = 128
	iters := DefaultFallbackAfter + DefaultRepromoteAfter + 2
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		o := NewOSC(c, Uniform(msg), true)
		o.SetAdaptive(AdaptivePolicy{RepromoteAfter: -1})
		for iter := 0; iter < iters; iter++ {
			send := make([][]byte, p)
			for d := 0; d < p; d++ {
				send[d] = payload(me+iter, d, msg)
			}
			o.Exchange(send)
		}
		h := o.heal
		hd := o.Health()
		if len(hd.Fallback) != p-1 || hd.Promotions != 0 {
			t.Errorf("rank %d degradation %v, want permanent one-way fallback", me, hd)
		}
		for d := 0; d < p; d++ {
			if h.probeTo[d] != 0 || h.probeFrom[d] != 0 {
				t.Errorf("rank %d peer %d: probe scheduled with re-promotion disabled", me, d)
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestHealerLedgerRoundTrip(t *testing.T) {
	// The serialized ledger must restore every field that drives protocol
	// decisions — checkpoint/rollback depends on it.
	cfg := machine(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 18}
	p := cfg.Ranks()
	_, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		o := NewOSC(c, Uniform(64), true)
		h := o.heal
		h.epoch = 9
		h.repairs, h.promotions = 5, 2
		for d := 0; d < p; d++ {
			h.failTo[d], h.failFrom[d] = d, d+1
			h.fellTo[d], h.fellFrom[d] = d%2 == 0, d%3 == 0
			h.probeTo[d], h.probeFrom[d] = 10+d, 20+d
			h.waitTo[d], h.waitFrom[d] = 4+d, 8+d
		}
		state := o.LedgerState()

		o2 := NewOSC(c, Uniform(64), true)
		if err := o2.RestoreLedger(state); err != nil {
			t.Fatalf("restore: %v", err)
		}
		h2 := o2.heal
		if h2.epoch != 9 || h2.repairs != 5 || h2.promotions != 2 {
			t.Errorf("scalars not restored: epoch %d repairs %d promotions %d", h2.epoch, h2.repairs, h2.promotions)
		}
		for d := 0; d < p; d++ {
			if h2.failTo[d] != h.failTo[d] || h2.failFrom[d] != h.failFrom[d] ||
				h2.fellTo[d] != h.fellTo[d] || h2.fellFrom[d] != h.fellFrom[d] ||
				h2.probeTo[d] != h.probeTo[d] || h2.probeFrom[d] != h.probeFrom[d] ||
				h2.waitTo[d] != h.waitTo[d] || h2.waitFrom[d] != h.waitFrom[d] {
				t.Errorf("peer %d ledger mismatch after round trip", d)
			}
		}
		if err := o2.RestoreLedger(state[:len(state)-1]); err == nil {
			t.Error("truncated ledger accepted")
		}
		bad := append([]byte(nil), state...)
		bad[0] = 99 // version
		if err := o2.RestoreLedger(bad); err == nil {
			t.Error("wrong-version ledger accepted")
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
}

func TestHealingIdleWithoutFaults(t *testing.T) {
	// Without a fault plan the healing layer must not run: no repairs,
	// no fallback, and the exchange time identical to an exchange that
	// predates the healing layer (the verdict round would add messages).
	cfg := machine(1)
	p := cfg.Ranks()
	var clean float64
	mpi.Run(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		send := make([][]byte, p)
		for d := 0; d < p; d++ {
			send[d] = payload(me, d, 128)
		}
		o := NewOSC(c, Uniform(128), true)
		o.Exchange(send)
		if h := o.Health(); h.Degraded() {
			t.Errorf("rank %d degraded without faults: %v", me, h)
		}
		c.Barrier()
		if me == 0 {
			clean = c.Now()
		}
	})
	if clean <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestCompressedOSCSurvivesDropStorm(t *testing.T) {
	// Transport-level drops healed by retries underneath the exchange:
	// no degradation surfaces, data intact.
	cfg := machine(1)
	cfg.Faults = &netsim.FaultPlan{Seed: 14, DropProb: 0.15, DuplicateProb: 0.1,
		Retry: netsim.RetryPolicy{MaxRetries: 60, RTO: 1e-6, Backoff: 1.5}}
	p := cfg.Ranks()
	const vals = 40
	res, err := mpi.RunChecked(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		x := NewCompressedOSC(c, compress.None{}, gpu.NewStream(gpu.V100(), c), 3, UniformCount(vals))
		send := make([][]float64, p)
		for d := 0; d < p; d++ {
			send[d] = make([]float64, vals)
			for i := range send[d] {
				send[d][i] = float64(me*1000+d*100+i) / 3
			}
		}
		got := x.Exchange(send)
		for s := 0; s < p; s++ {
			for i := 0; i < vals; i++ {
				if got[s][i] != float64(s*1000+me*100+i)/3 {
					t.Errorf("rank %d from %d value %d corrupt", me, s, i)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if res.Stats.Faults.Retries == 0 {
		t.Error("no retries exercised")
	}
}

package exchange_test

import (
	"errors"
	"testing"

	"repro/internal/exchange"
	"repro/internal/netsim"
	recov "repro/internal/recover"
)

// TestBandwidthHarnessShrinks drives the recoverable bandwidth harness
// through a permanent rank loss: the respawn budget burns out, the
// survivors shrink, the compressed algorithm's healing ledger is
// remapped onto the new membership, and the sweep finishes with a
// well-defined (degraded) bandwidth.
func TestBandwidthHarnessShrinks(t *testing.T) {
	const msg, iters = 4096, 3
	cfg := netsim.Summit(1)
	// Time the kill past the first measured iteration so a committed
	// epoch exists and the migrate branch of the restore path runs.
	clean := netsim.Summit(1)
	base, _, err := exchange.NodeBandwidthRecoverableSpec(nil, clean,
		exchange.Spec{Algo: exchange.AlgoOSCComp}, msg, iters, recov.Policy{})
	if err != nil || base <= 0 {
		t.Fatalf("clean run failed: bw=%g err=%v", base, err)
	}
	cleanTime := float64(iters*2) * float64(cfg.Ranks()) * float64(cfg.Ranks()) * float64(msg) / base / float64(cfg.Nodes)
	cfg.Faults = &netsim.FaultPlan{Seed: 91, KillRank: 2, KillAt: cleanTime / 4}

	bw, out, err := exchange.NodeBandwidthRecoverableSpec(nil, cfg,
		exchange.Spec{Algo: exchange.AlgoOSCComp}, msg, iters,
		recov.Policy{MaxRestarts: 1, Shrink: true})
	if err != nil {
		t.Fatalf("shrunken run failed: %v", err)
	}
	if len(out.Shrinks) != 1 {
		t.Fatalf("shrinks = %+v, want exactly one", out.Shrinks)
	}
	sh := out.Shrinks[0]
	if sh.FromSize != 6 || sh.ToSize != 5 || len(sh.Dead) != 1 || sh.Dead[0] != 2 {
		t.Errorf("shrink record %+v, want 6->5 losing rank 2", sh)
	}
	if bw <= 0 {
		t.Errorf("post-shrink bandwidth %g, want > 0", bw)
	}
	if out.Survivors == nil {
		t.Error("outcome does not record the surviving membership")
	}

	// Shrink off: same kill must still surface the historic give-up.
	_, _, err = exchange.NodeBandwidthRecoverableSpec(nil, cfg,
		exchange.Spec{Algo: exchange.AlgoOSCComp}, msg, iters,
		recov.Policy{MaxRestarts: 1})
	var ur *recov.UnrecoverableError
	if err == nil {
		t.Fatal("kill with Shrink off did not fail")
	} else if !errors.As(err, &ur) {
		t.Fatalf("kill with Shrink off returned %T (%v), want *UnrecoverableError", err, err)
	}
}

package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// bothModes runs the same workload under the sequential and the
// parallel engine and returns everything observable: the Result, the
// error (checked mode), the full trace, and whatever bytes the body
// deposited into sink (indexed by rank).
type modeRun struct {
	res    Result
	err    error
	events []TraceEvent
	sink   [][]byte
}

func runMode(cfg Config, parallel, checked bool, body func(*Proc, [][]byte)) modeRun {
	tb := NewTraceBuffer(1 << 16)
	cfg.Tracer = tb.Recorder()
	cfg.Parallel = parallel
	sink := make([][]byte, cfg.Ranks())
	wrapped := func(p *Proc) { body(p, sink) }
	var m modeRun
	if checked {
		m.res, m.err = RunChecked(cfg, wrapped)
	} else {
		m.res = Run(cfg, wrapped)
	}
	m.events = tb.Events()
	m.sink = sink
	return m
}

// requireIdentical asserts bit-identity of every observable between a
// sequential and a parallel run of the same workload.
func requireIdentical(t *testing.T, name string, seq, par modeRun) {
	t.Helper()
	if seq.res.Time != par.res.Time {
		t.Errorf("%s: Time differs: seq %v par %v", name, seq.res.Time, par.res.Time)
	}
	if !reflect.DeepEqual(seq.res.Clocks, par.res.Clocks) {
		t.Errorf("%s: Clocks differ:\nseq %v\npar %v", name, seq.res.Clocks, par.res.Clocks)
	}
	if seq.res.Stats != par.res.Stats {
		t.Errorf("%s: Stats differ:\nseq %+v\npar %+v", name, seq.res.Stats, par.res.Stats)
	}
	if !reflect.DeepEqual(seq.events, par.events) {
		t.Errorf("%s: traces differ (%d vs %d events)", name, len(seq.events), len(par.events))
		for i := range seq.events {
			if i < len(par.events) && seq.events[i] != par.events[i] {
				t.Errorf("%s: first divergence at event %d:\nseq %+v\npar %+v",
					name, i, seq.events[i], par.events[i])
				break
			}
		}
	}
	for r := range seq.sink {
		if !bytes.Equal(seq.sink[r], par.sink[r]) {
			t.Errorf("%s: rank %d output bytes differ", name, r)
		}
	}
	switch {
	case (seq.err == nil) != (par.err == nil):
		t.Errorf("%s: error presence differs: seq %v par %v", name, seq.err, par.err)
	case seq.err != nil && seq.err.Error() != par.err.Error():
		t.Errorf("%s: error strings differ:\nseq %v\npar %v", name, seq.err, par.err)
	}
}

// a2aBody is a tagged all-to-all with payloads and per-rank compute,
// depositing the received bytes into the sink for comparison.
func a2aBody(msgBytes int, compute float64) func(*Proc, [][]byte) {
	return func(p *Proc, sink [][]byte) {
		n := p.Size()
		for i := 0; i < n; i++ {
			dst := (p.Rank() + i) % n
			pay := bytes.Repeat([]byte{byte(p.Rank()), byte(dst)}, 4)
			p.Send(dst, i, pay, msgBytes)
		}
		if compute > 0 {
			p.Elapse(compute)
		}
		for i := 0; i < n; i++ {
			src := (p.Rank() - i + n) % n
			pkt := p.Recv(src, i)
			sink[p.Rank()] = append(sink[p.Rank()], pkt.Payload...)
		}
	}
}

// oscBody exercises unmatched puts, fences, flushes, and metadata.
func oscBody(p *Proc, sink [][]byte) {
	n := p.Size()
	for i := 0; i < n; i++ {
		dst := (p.Rank() + i) % n
		p.SendMsg(dst, 500, SendOpts{Payload: []byte{byte(p.Rank())}, Bytes: 2048, Meta: i, Unmatched: true})
		if i%2 == 1 {
			p.CountFlush()
		}
	}
	p.CountFence()
	for i := 0; i < n; i++ {
		src := (p.Rank() - i + n) % n
		pkt := p.Recv(src, 500)
		sink[p.Rank()] = append(sink[p.Rank()], pkt.Payload...)
		sink[p.Rank()] = append(sink[p.Rank()], byte(pkt.Meta))
	}
}

// deadlineBody mixes watchdog receives that time out (nothing is ever
// sent on tag 99) with ones that succeed.
func deadlineBody(p *Proc, sink [][]byte) {
	n := p.Size()
	peer := (p.Rank() + 1) % n
	p.Send(peer, 7, []byte{byte(p.Rank())}, 1<<14)
	if pkt, ok := p.RecvDeadline((p.Rank()-1+n)%n, 7, 1.0); ok {
		sink[p.Rank()] = append(sink[p.Rank()], pkt.Payload...)
	}
	if _, ok := p.RecvDeadline(peer, 99, 10e-6+float64(p.Rank())*1e-6); ok {
		sink[p.Rank()] = append(sink[p.Rank()], 0xFF)
	} else {
		sink[p.Rank()] = append(sink[p.Rank()], 0xEE)
	}
}

// jitterBody stresses the scheduler with irregular per-rank compute so
// parallel bodies yield in a wall-clock order far from the virtual one.
func jitterBody(seed int64) func(*Proc, [][]byte) {
	return func(p *Proc, sink [][]byte) {
		rng := rand.New(rand.NewSource(seed + int64(p.Rank())))
		n := p.Size()
		for round := 0; round < 4; round++ {
			p.Elapse(rng.Float64() * 50e-6)
			dst := rng.Intn(n)
			p.Send(dst, 1000+round*n+p.Rank(), []byte{byte(round)}, 1+rng.Intn(1<<16))
			// Busy CPU work so bodies genuinely overlap in parallel mode.
			x := 1.0
			for i := 0; i < 1000; i++ {
				x += float64(i) * x / 1e9
			}
			p.AdvanceTo(x * 0) // keep x observable without affecting time
		}
		// Drain: every rank receives whatever was addressed to it via a
		// barrier-ish tagged sweep with deadlines (sends are random).
		for round := 0; round < 4; round++ {
			for src := 0; src < n; src++ {
				if pkt, ok := p.RecvDeadline(src, 1000+round*n+src, 0.5); ok {
					sink[p.Rank()] = append(sink[p.Rank()], pkt.Payload...)
				}
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		body func(*Proc, [][]byte)
	}{
		{"a2a-small", Summit(2), a2aBody(512, 0)},
		{"a2a-large", Summit(2), a2aBody(1<<20, 0)},
		{"a2a-compute", Summit(3), a2aBody(1<<16, 30e-6)},
		{"osc", Summit(2), oscBody},
		{"deadline", Summit(2), deadlineBody},
		{"jitter-1", Summit(2), jitterBody(1)},
		{"jitter-2", Summit(4), jitterBody(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := runMode(tc.cfg, false, false, tc.body)
			par := runMode(tc.cfg, true, false, tc.body)
			requireIdentical(t, tc.name, seq, par)
			if len(seq.events) == 0 {
				t.Fatalf("%s: no trace events recorded", tc.name)
			}
		})
	}
}

// TestParallelMatchesSequentialFaults covers every RandomPlan scenario
// class (seed mod 7 selects it), including rank crashes, under checked
// runs: the Result, FaultStats, traces, payload corruption, and the
// diagnostic error text must all be bit-identical across modes.
func TestParallelMatchesSequentialFaults(t *testing.T) {
	for seed := int64(1); seed <= 14; seed++ {
		name := fmt.Sprintf("seed-%d", seed)
		t.Run(name, func(t *testing.T) {
			cfg := Summit(2)
			plan := *RandomPlan(seed)
			plan.Retry = RetryPolicy{MaxRetries: 4, RTO: 5e-6, Backoff: 2}
			body := func(p *Proc, sink [][]byte) {
				n := p.Size()
				for i := 0; i < n; i++ {
					dst := (p.Rank() + i) % n
					p.Send(dst, i, []byte{byte(p.Rank()), byte(i)}, 4096)
				}
				for i := 0; i < n; i++ {
					src := (p.Rank() - i + n) % n
					if pkt, ok := p.RecvDeadline(src, i, 5e-3); ok {
						sink[p.Rank()] = append(sink[p.Rank()], pkt.Payload...)
					} else {
						sink[p.Rank()] = append(sink[p.Rank()], 0xDD)
					}
				}
			}
			mk := func() Config {
				c := Summit(2)
				pl := plan
				c.Faults = &pl
				return c
			}
			_ = cfg
			seq := runMode(mk(), false, true, body)
			par := runMode(mk(), true, true, body)
			requireIdentical(t, name, seq, par)
		})
	}
}

// TestParallelFences checks the per-proc fence/flush merge: totals must
// equal the sequential global counters for an uneven distribution.
func TestParallelFences(t *testing.T) {
	body := func(p *Proc, _ [][]byte) {
		for i := 0; i <= p.Rank(); i++ {
			p.CountFence()
		}
		for i := 0; i < 2*p.Rank(); i++ {
			p.CountFlush()
		}
	}
	seq := runMode(Summit(2), false, false, body)
	par := runMode(Summit(2), true, false, body)
	n := Summit(2).Ranks()
	wantFences := n * (n + 1) / 2
	wantFlushes := n * (n - 1)
	if seq.res.Stats.Fences != wantFences || seq.res.Stats.Flushes != wantFlushes {
		t.Errorf("sequential fence/flush totals wrong: %+v", seq.res.Stats)
	}
	requireIdentical(t, "fences", seq, par)
}

// TestParallelPanicPropagates: a panicking body must abort a checked
// parallel run with the same RankFailure diagnostics as sequential.
func TestParallelPanicPropagates(t *testing.T) {
	body := func(p *Proc, _ [][]byte) {
		p.Elapse(float64(p.Rank()) * 1e-6)
		if p.Rank() == 3 {
			panic("rank 3 exploded")
		}
		// Everyone else blocks on a message that never comes, with a
		// watchdog so the run terminates deterministically.
		p.RecvDeadline(3, 1, 1e-3)
	}
	seq := runMode(Summit(1), false, true, body)
	par := runMode(Summit(1), true, true, body)
	if seq.err == nil || par.err == nil {
		t.Fatalf("expected failures, got seq=%v par=%v", seq.err, par.err)
	}
	requireIdentical(t, "panic", seq, par)
}

// TestParallelDeterministicAcrossRuns: the parallel engine must be
// deterministic against itself, not just against sequential — the
// wall-clock interleaving of bodies varies run to run, the outputs may
// not.
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		a := runMode(Summit(3), true, false, jitterBody(7))
		b := runMode(Summit(3), true, false, jitterBody(7))
		requireIdentical(t, fmt.Sprintf("trial-%d", trial), a, b)
	}
}

package netsim

import (
	"container/heap"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
)

// Packet is a delivered message as seen by the receiver.
type Packet struct {
	Src     int
	Tag     int
	Payload []byte // nil for phantom (metadata-only) transfers
	Bytes   int    // logical size used for timing
	Meta    int    // caller-defined metadata (e.g. a window offset)
	Arrival float64

	unmatched bool // bypasses the matching engine (one-sided put)
}

// TraceEvent describes one completed transfer reservation.
type TraceEvent struct {
	Src, Dst, Tag int
	Bytes         int
	// Kind is "local", "intra", or "inter".
	Kind string
	// SrcNode and DstNode identify the link endpoints: an inter transfer
	// occupies SrcNode's egress NIC and DstNode's ingress NIC, an intra
	// transfer the shared bus of SrcNode (== DstNode).
	SrcNode, DstNode int
	// Injected is when the sender proceeded; End when the transfer left
	// the path resources; Arrival when the receiver can observe it.
	Injected, End, Arrival float64
	// Start is when the transfer began occupying its first path resource
	// (the egress NIC slot for inter, the bus slot for intra; Injected for
	// local copies), and Ser is the serialization time it held each
	// resource: an inter transfer occupies the egress for [Start,
	// Start+Ser] and the ingress for [End−Ser, End]. Because each resource
	// is a FIFO bandwidth server, these occupancy windows are disjoint per
	// resource — exact utilization accounting needs no inference.
	Start, Ser float64
}

// Stats aggregates traffic counters for a run.
type Stats struct {
	Messages   int
	BytesIntra int64 // between ranks of one node
	BytesInter int64 // across nodes
	BytesLocal int64 // rank to itself

	// One-sided attribution: puts are the unmatched transfers that
	// bypass the receiver's matching engine, with their byte volume
	// (also included in the Bytes* totals above); Fences and Flushes
	// count epoch-close and put-throttling waits reported by the
	// runtime layer via CountFence/CountFlush.
	Puts     int
	BytesPut int64
	Fences   int
	Flushes  int

	// Faults counts injected faults and transport recovery work;
	// all-zero unless a FaultPlan was attached to the Config.
	Faults FaultStats
}

// Result is returned by Run.
type Result struct {
	// Time is the virtual completion time of the slowest rank.
	Time float64
	// Clocks holds each rank's final virtual clock.
	Clocks []float64
	Stats  Stats
}

type pktKey struct{ src, tag int }

type reqKind uint8

const (
	reqNone reqKind = iota
	reqDeliver
	reqMatch
	// reqResolved marks a formerly blocked match whose packet has already
	// been handed over by deliver; the scheduler only needs to resume it.
	reqResolved
)

type request struct {
	kind      reqKind
	dst       int
	tag       int
	src       int
	payload   []byte
	bytes     int
	meta      int
	extra     float64 // additional arrival latency (protocol surcharge)
	proto     float64 // per-message resource occupancy (two-sided protocol processing)
	deadline  float64 // match watchdog deadline (0 = wait forever)
	unmatched bool
}

// Proc is the handle a rank program uses to interact with the simulator.
// It must only be used from the goroutine running that rank's body.
type Proc struct {
	eng      *Engine
	rank     int
	node     int
	clock    float64
	wake     chan struct{}
	req      request
	resp     Packet
	blocked  bool
	pending  pktKey
	deadline float64 // watchdog deadline of the blocked match (0 = none)
	timedOut bool
	crashed  bool
	mailbox  map[pktKey][]Packet
	buffered int // matchable packets queued (unexpected-queue length)
	done     bool
	err      interface{} // recovered panic value
	heapIdx  int

	// One-sided synchronization counters (CountFence/CountFlush). They
	// are per-proc — rank bodies increment them while running, which in
	// parallel mode happens on many OS threads at once — and are merged
	// into Stats in rank order when the run finishes, so the totals are
	// identical in both modes.
	fences  int
	flushes int

	// Parallel-mode scheduler state (owned by the scheduler goroutine):
	// lb is the lower bound on the virtual time of this proc's next
	// request while its body runs concurrently (the clock at resume —
	// clocks only grow inside a body), runIdx its slot in the running
	// heap.
	lb     float64
	runIdx int
}

// Rank returns this rank's id.
func (p *Proc) Rank() int { return p.rank }

// Node returns the node hosting this rank.
func (p *Proc) Node() int { return p.node }

// Size returns the total number of ranks.
func (p *Proc) Size() int { return len(p.eng.procs) }

// Config returns the machine description.
func (p *Proc) Config() Config { return p.eng.cfg }

// Now returns the rank's virtual clock in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Elapse advances the rank's virtual clock by d seconds of local work
// (compute, kernel time, ...). It involves no scheduling.
func (p *Proc) Elapse(d float64) {
	if d < 0 {
		panic("netsim: negative elapse")
	}
	p.clock += d
}

// AdvanceTo raises the rank's clock to at least t (used to wait for a
// locally known event such as a GPU kernel completion).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
}

// CountFence and CountFlush let the runtime layer attribute one-sided
// synchronization events (window fences, put-throttling flushes) to the
// run's Stats; they do not touch the clock. The counts land in per-proc
// counters (bodies run concurrently in parallel mode; a shared counter
// here would be a data race) and are summed into Stats at the end of
// the run.
func (p *Proc) CountFence() { p.fences++ }

// CountFlush counts one put-throttling flush wait (see CountFence).
func (p *Proc) CountFlush() { p.flushes++ }

// Send transfers a message of the given logical size toward dst, tagged
// tag. payload may be nil for phantom transfers; it is handed to the
// receiver as-is (the caller must not mutate it afterwards). Send
// returns once the message is injected (sender overhead elapsed); the
// transfer itself completes in the background at a time the receiver
// observes as Packet.Arrival.
func (p *Proc) Send(dst, tag int, payload []byte, bytes int) {
	p.SendDelayed(dst, tag, payload, bytes, 0)
}

// SendDelayed is Send with an additional arrival-latency surcharge,
// used by higher layers to model protocol round trips (e.g. the
// rendezvous handshake of large two-sided messages) without a separate
// progress engine.
func (p *Proc) SendDelayed(dst, tag int, payload []byte, bytes int, extraLatency float64) {
	p.SendMsg(dst, tag, SendOpts{Payload: payload, Bytes: bytes, ExtraLatency: extraLatency})
}

// SendOpts carries the optional parameters of SendMsg.
type SendOpts struct {
	Payload []byte
	Bytes   int
	Meta    int // delivered as Packet.Meta (e.g. a window offset)
	// ExtraLatency is added to the arrival time (protocol round trips).
	ExtraLatency float64
	// ProtoOverhead additionally occupies the transfer's path resources,
	// modeling per-message protocol processing of two-sided transports
	// (rendezvous progression); one-sided RDMA puts leave it zero.
	ProtoOverhead float64
	// Unmatched marks one-sided transfers that bypass the receiver's
	// message-matching engine: they neither occupy the unexpected queue
	// nor pay the per-entry matching cost.
	Unmatched bool
}

// SendMsg is the most general send. It returns the transfer's arrival
// time at the destination, which higher layers may use to implement
// flush-style completion waits.
func (p *Proc) SendMsg(dst, tag int, opts SendOpts) (arrival float64) {
	if dst < 0 || dst >= len(p.eng.procs) {
		panic(fmt.Sprintf("netsim: send to invalid rank %d", dst))
	}
	if opts.ExtraLatency < 0 || opts.ProtoOverhead < 0 {
		panic("netsim: negative protocol surcharge")
	}
	p.req = request{kind: reqDeliver, dst: dst, tag: tag, src: p.rank,
		payload: opts.Payload, bytes: opts.Bytes, meta: opts.Meta,
		extra: opts.ExtraLatency, proto: opts.ProtoOverhead, unmatched: opts.Unmatched}
	p.yield()
	return p.resp.Arrival
}

// SendFull is kept for callers that pass a metadata word directly.
func (p *Proc) SendFull(dst, tag int, payload []byte, bytes, meta int, extraLatency float64) (arrival float64) {
	return p.SendMsg(dst, tag, SendOpts{Payload: payload, Bytes: bytes, Meta: meta, ExtraLatency: extraLatency})
}

// Recv blocks until a message from src with the given tag arrives, and
// returns it. The rank's clock advances to the arrival time.
func (p *Proc) Recv(src, tag int) Packet {
	p.req = request{kind: reqMatch, src: src, tag: tag}
	p.yield()
	return p.resp
}

// RecvDeadline is Recv with a virtual-time watchdog: if no matching
// message can arrive by the deadline, it returns ok == false with the
// rank's clock advanced to the deadline. A deadline of 0 waits forever
// (plain Recv). The timeout fires only once the engine has no other
// runnable work — exactly the condition under which the receive would
// otherwise hang — so healthy traffic is never cut short.
func (p *Proc) RecvDeadline(src, tag int, deadline float64) (Packet, bool) {
	p.req = request{kind: reqMatch, src: src, tag: tag, deadline: deadline}
	p.yield()
	if p.timedOut {
		p.timedOut = false
		return Packet{}, false
	}
	return p.resp, true
}

func (p *Proc) yield() {
	p.eng.yieldCh <- p
	<-p.wake
}

// Engine drives a set of rank goroutines through virtual time.
type Engine struct {
	cfg     Config
	procs   []*Proc
	egress  []resource
	ingress []resource
	bus     []resource
	yieldCh chan *Proc
	ready   procHeap
	// running holds the procs whose bodies are executing concurrently in
	// parallel mode, ordered by (lb, rank); empty in sequential mode.
	running runHeap
	stats   Stats
	inj     *injector // nil unless cfg.Faults is set
	// check selects error-collecting mode (RunChecked): rank panics and
	// deadlocks become a returned error instead of an engine panic.
	check bool
	fails []RankFailure
}

// Run executes body once per rank of the machine described by cfg and
// returns the virtual completion time and traffic statistics. Bodies
// interact through their Proc handles only. Run panics if the rank
// programs deadlock or if any body panics.
func Run(cfg Config, body func(*Proc)) Result {
	res, err := run(cfg, body, false)
	if err != nil {
		panic(err) // unreachable: unchecked mode panics at the source
	}
	return res
}

// RunChecked is Run for hostile conditions: a panicking rank body or a
// deadlock does not panic the engine but terminates the run and is
// reported in the returned *RunError (with the partial Result of the
// ranks that did finish). Use it with a FaultPlan so crashed ranks and
// exhausted retries surface as diagnostics instead of program aborts.
func RunChecked(cfg Config, body func(*Proc)) (Result, error) {
	return run(cfg, body, true)
}

func run(cfg Config, body func(*Proc), check bool) (Result, error) {
	cfg.validate()
	eng := newEngine(cfg, body, check)
	if cfg.Parallel || envParallel() {
		return eng.runParallel()
	}
	return eng.runSequential()
}

// envParallel reports whether NETSIM_PARALLEL forces the parallel
// engine for every run regardless of Config.Parallel. It backs the
// `make verify-parallel` tier: the whole test suite re-runs under the
// parallel scheduler without per-test plumbing. Empty or "0" disables.
var envParallel = sync.OnceValue(func() bool {
	v := os.Getenv("NETSIM_PARALLEL")
	return v != "" && v != "0"
})

// newEngine builds the engine and spawns one (parked) goroutine per
// rank; nothing runs until the scheduler wakes it.
func newEngine(cfg Config, body func(*Proc), check bool) *Engine {
	n := cfg.Ranks()
	eng := &Engine{
		cfg:     cfg,
		procs:   make([]*Proc, n),
		egress:  make([]resource, cfg.Nodes),
		ingress: make([]resource, cfg.Nodes),
		bus:     make([]resource, cfg.Nodes),
		yieldCh: make(chan *Proc),
		check:   check,
	}
	if cfg.Faults != nil {
		eng.inj = newInjector(cfg.Faults, &eng.stats.Faults)
	}
	for r := 0; r < n; r++ {
		p := &Proc{
			eng:     eng,
			rank:    r,
			node:    cfg.NodeOf(r),
			wake:    make(chan struct{}),
			mailbox: make(map[pktKey][]Packet),
			heapIdx: -1,
			runIdx:  -1,
		}
		eng.procs[r] = p
		go func() {
			<-p.wake
			defer func() {
				p.err = recover()
				p.done = true
				eng.yieldCh <- p
			}()
			body(p)
		}()
	}
	return eng
}

// runSequential is the classic cooperative engine: exactly one rank
// goroutine is runnable at any moment and the scheduler always resumes
// the pending request with the smallest (clock, rank).
func (eng *Engine) runSequential() (Result, error) {
	// Pinning to one OS thread avoids cross-core channel handoffs,
	// which dominate wall time at large rank counts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	alive := len(eng.procs)
	// Bring every proc to its first request.
	for _, p := range eng.procs {
		if eng.resume(p) {
			alive--
		}
	}
	var deadlock *DeadlockError
	for alive > 0 {
		if eng.ready.Len() == 0 {
			if eng.fireDeadline() {
				continue
			}
			deadlock = eng.deadlockDiag()
			if !eng.check {
				panic(deadlock.Error() + "\n")
			}
			break
		}
		p := heap.Pop(&eng.ready).(*Proc)
		if eng.discardCrashed(p) {
			alive--
			continue
		}
		if !eng.process(p) {
			if eng.resume(p) {
				alive--
			}
		}
	}
	return eng.finalize(deadlock)
}

// runParallel executes rank bodies truly concurrently while keeping
// event processing in the exact total order of the sequential engine,
// so every output is bit-identical (docs/DETERMINISM.md).
//
// The scheme is conservative lookahead over the yield protocol: a
// resumed body owns its clock, which only grows, so the clock captured
// at resume time (Proc.lb) is a lower bound on the virtual time of the
// body's next request. The head of the ready heap is therefore safe to
// process exactly when it sorts before (min lb, rank) over the running
// set — no concurrently executing body can still produce an earlier
// event. When the head is not safe the scheduler blocks for the next
// yield, shrinking the running set until it is. All engine state
// (resources, mailboxes, stats, fault injector, tracer) is touched only
// by this scheduler goroutine, in the sequential processing order;
// bodies only ever touch their own Proc between yields.
func (eng *Engine) runParallel() (Result, error) {
	alive := len(eng.procs)
	// Launch every body; all of them run concurrently from the start.
	for _, p := range eng.procs {
		eng.resumeAsync(p)
	}
	var deadlock *DeadlockError
loop:
	for alive > 0 {
		// Draining may retire the last finishers — re-check before
		// concluding anything from an empty ready+running state.
		if eng.drainYields(&alive); alive == 0 {
			break
		}
		switch {
		case eng.ready.Len() > 0 && eng.safeHead():
			p := heap.Pop(&eng.ready).(*Proc)
			if eng.discardCrashed(p) {
				alive--
				continue
			}
			if !eng.process(p) {
				eng.resumeAsync(p)
			}
		case eng.running.Len() > 0:
			// The earliest pending request may still come from a body
			// that is executing; wait for one to yield or finish.
			eng.admit(<-eng.yieldCh, &alive)
		default:
			// No body running, none ready: all live ranks are blocked —
			// the exact condition of the sequential engine's idle path.
			if eng.fireDeadline() {
				continue
			}
			deadlock = eng.deadlockDiag()
			if !eng.check {
				panic(deadlock.Error() + "\n")
			}
			break loop
		}
	}
	// Failures surfaced in wall-clock completion order; rank order makes
	// the slice deterministic. (The sequential engine reports them in
	// processing order instead, but RunError.Error sorts its lines, so
	// rendered diagnostics match across modes.)
	sort.Slice(eng.fails, func(i, j int) bool { return eng.fails[i].Rank < eng.fails[j].Rank })
	return eng.finalize(deadlock)
}

// process handles p's pending request, returning true if p blocked on
// an unmatched receive (and so must not be resumed).
func (eng *Engine) process(p *Proc) (blocked bool) {
	switch p.req.kind {
	case reqDeliver:
		eng.deliver(p)
	case reqMatch:
		key := pktKey{p.req.src, p.req.tag}
		if q := p.mailbox[key]; len(q) > 0 && (p.req.deadline == 0 || q[0].Arrival <= p.req.deadline) {
			eng.completeMatch(p, key)
		} else if len(q) > 0 && p.req.deadline > 0 {
			// A message is queued but arrives after the deadline:
			// the watchdog fires at the deadline instant.
			if p.req.deadline > p.clock {
				p.clock = p.req.deadline
			}
			p.timedOut = true
		} else {
			p.blocked = true
			p.pending = key
			p.deadline = p.req.deadline
			return true
		}
	case reqResolved:
	default:
		panic("netsim: invalid request in scheduler")
	}
	return false
}

// discardCrashed parks p at its scheduled crash time: the pending
// request is dropped and p is never resumed. Peers observe the silence
// through watchdog deadlines or the deadlock diagnostic. A permanent
// kill is reported with its own event kind ("kill") and counter so the
// recovery controller can tell a respawnable crash from a dead rank.
func (eng *Engine) discardCrashed(p *Proc) bool {
	if eng.inj == nil || p.crashed {
		return false
	}
	if parked, permanent := eng.inj.crashed(p.rank, p.clock); parked {
		p.crashed = true
		eng.stats.Faults.Crashes++
		kind := "crash"
		if permanent {
			eng.stats.Faults.Kills++
			kind = "kill"
		}
		if eng.cfg.FaultObserver != nil {
			eng.cfg.FaultObserver(FaultEvent{T: p.clock, Kind: kind, Src: p.rank, Dst: -1, Tag: -1})
		}
		return true
	}
	return false
}

// finalize merges the per-proc one-sided counters into Stats (in rank
// order — the sums are mode-independent) and assembles the Result.
func (eng *Engine) finalize(deadlock *DeadlockError) (Result, error) {
	res := Result{Stats: eng.stats, Clocks: make([]float64, len(eng.procs))}
	for i, p := range eng.procs {
		res.Stats.Fences += p.fences
		res.Stats.Flushes += p.flushes
		res.Clocks[i] = p.clock
		if p.clock > res.Time {
			res.Time = p.clock
		}
	}
	if len(eng.fails) > 0 || deadlock != nil {
		return res, &RunError{Failures: eng.fails, Deadlock: deadlock}
	}
	return res, nil
}

// resumeAsync wakes p without waiting for its next yield (parallel
// mode). p's clock at this instant becomes its running lower bound.
func (eng *Engine) resumeAsync(p *Proc) {
	p.lb = p.clock
	heap.Push(&eng.running, p)
	p.wake <- struct{}{}
}

// drainYields admits every yield already queued on yieldCh without
// blocking, so the safety check sees the freshest running set.
func (eng *Engine) drainYields(alive *int) {
	for {
		select {
		case q := <-eng.yieldCh:
			eng.admit(q, alive)
		default:
			return
		}
	}
}

// admit moves a yielded proc from the running set to the ready heap
// (or retires it if its body finished).
func (eng *Engine) admit(q *Proc, alive *int) {
	heap.Remove(&eng.running, q.runIdx)
	if q.done {
		*alive--
		if q.err != nil {
			if !eng.check {
				panic(q.err)
			}
			eng.fails = append(eng.fails, RankFailure{Rank: q.rank, Value: q.err})
		}
		return
	}
	heap.Push(&eng.ready, q)
}

// safeHead reports whether the ready heap's minimum request is ordered
// before every request a running body could still produce — i.e. it
// sorts strictly before (lb, rank) of the running heap's minimum. Ties
// on the clock resolve by rank exactly as procHeap orders them.
func (eng *Engine) safeHead() bool {
	if eng.running.Len() == 0 {
		return true
	}
	h, r := eng.ready[0], eng.running[0]
	if h.clock != r.lb {
		return h.clock < r.lb
	}
	return h.rank < r.rank
}

// resume transfers control to p until it yields again; it returns true
// if p finished. A yielding p with a fresh request is queued.
func (eng *Engine) resume(p *Proc) (finished bool) {
	p.wake <- struct{}{}
	q := <-eng.yieldCh
	if q.done {
		if q.err != nil {
			if !eng.check {
				panic(q.err)
			}
			eng.fails = append(eng.fails, RankFailure{Rank: q.rank, Value: q.err})
		}
		return true
	}
	heap.Push(&eng.ready, q)
	return false
}

// fireDeadline resolves the earliest watchdog deadline among blocked
// receivers when no other work remains: that receiver resumes with a
// timeout, its clock advanced to the deadline. Returns false when no
// blocked proc carries a deadline (a true deadlock).
func (eng *Engine) fireDeadline() bool {
	var victim *Proc
	for _, p := range eng.procs {
		if !p.blocked || p.deadline == 0 {
			continue
		}
		if victim == nil || p.deadline < victim.deadline ||
			(p.deadline == victim.deadline && p.rank < victim.rank) {
			victim = p
		}
	}
	if victim == nil {
		return false
	}
	victim.blocked = false
	if victim.deadline > victim.clock {
		victim.clock = victim.deadline
	}
	victim.deadline = 0
	victim.timedOut = true
	victim.req.kind = reqResolved
	heap.Push(&eng.ready, victim)
	return true
}

// deliver processes a send request: books the path resources, computes
// the arrival time, and hands the packet to the destination (resolving a
// blocked receiver if one is waiting on the matching key). With a fault
// injector attached it also decides the message's fate: sender stalls,
// degraded bandwidth, latency spikes, transparent transport retries
// (each adding backoff delay to the arrival), permanent loss, silent
// payload corruption, and duplicate delivery.
func (eng *Engine) deliver(p *Proc) {
	req := &p.req
	cfg := &eng.cfg
	inj := eng.inj
	if inj != nil {
		if st := inj.stall(); st > 0 {
			p.clock += st
			if cfg.FaultObserver != nil {
				cfg.FaultObserver(FaultEvent{T: p.clock, Kind: "stall", Src: p.rank, Dst: req.dst, Tag: req.tag, Delay: st})
			}
		}
	}
	injected := p.clock + cfg.SendOverhead
	srcNode, dstNode := p.node, cfg.NodeOf(req.dst)

	var start, end, ser, latency float64
	var kind string
	switch {
	case req.dst == p.rank:
		ser = float64(req.bytes) / cfg.LocalBW
		start = injected
		end = injected + ser
		eng.stats.BytesLocal += int64(req.bytes)
		kind = "local"
	case srcNode == dstNode:
		bw := cfg.IntraBW
		if inj != nil {
			bw *= inj.bwFactor(srcNode, srcNode)
		}
		ser = float64(req.bytes)/bw + req.proto
		start, end = eng.bus[srcNode].reserve(injected, ser)
		latency = cfg.IntraLatency
		eng.stats.BytesIntra += int64(req.bytes)
		kind = "intra"
	default:
		bw := cfg.InterBW
		if inj != nil {
			bw *= inj.bwFactor(srcNode, dstNode)
		}
		ser = float64(req.bytes)/bw + req.proto
		start, end = reservePair(&eng.egress[srcNode], &eng.ingress[dstNode], injected, ser)
		latency = cfg.InterLatency
		eng.stats.BytesInter += int64(req.bytes)
		kind = "inter"
	}
	eng.stats.Messages++
	if req.unmatched {
		eng.stats.Puts++
		eng.stats.BytesPut += int64(req.bytes)
	}
	extra := req.extra
	payload := req.payload
	lost := false
	duplicated := false
	if inj != nil && req.dst != p.rank {
		fault := func(kind string, delay float64) {
			if cfg.FaultObserver != nil {
				cfg.FaultObserver(FaultEvent{T: injected, Kind: kind, Src: p.rank, Dst: req.dst, Tag: req.tag, Delay: delay})
			}
		}
		if sp := inj.spike(); sp > 0 {
			extra += sp
			fault("spike", sp)
		}
		delay, l := inj.transfer()
		extra += delay
		lost = l
		if delay > 0 {
			fault("retry", delay)
		}
		if lost {
			fault("lost", 0)
		} else {
			if bad := inj.corrupt(payload, req.unmatched); bad != nil {
				payload = bad
				fault("silent_corrupt", 0)
			}
			if duplicated = inj.duplicate(); duplicated {
				fault("duplicate", 0)
			}
		}
	}
	if cfg.Tracer != nil {
		cfg.Tracer(TraceEvent{
			Src: p.rank, Dst: req.dst, Tag: req.tag, Bytes: req.bytes,
			Kind: kind, SrcNode: srcNode, DstNode: dstNode,
			Injected: injected, End: end, Arrival: end + latency + extra,
			Start: start, Ser: ser,
		})
	}

	pkt := Packet{Src: p.rank, Tag: req.tag, Payload: payload, Bytes: req.bytes, Meta: req.meta, Arrival: end + latency + extra, unmatched: req.unmatched}
	p.resp = pkt
	p.clock = injected
	if lost {
		// The transport gave up: the sender proceeds (it cannot know),
		// the receiver never sees the packet — its watchdog deadline or
		// the deadlock diagnostic reports the hole.
		return
	}
	dst := eng.procs[req.dst]
	key := pktKey{p.rank, req.tag}
	copies := 1
	if duplicated {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		dst.mailbox[key] = append(dst.mailbox[key], pkt)
		if !pkt.unmatched {
			dst.buffered++
		}
	}

	if dst.blocked && dst.pending == key && (dst.deadline == 0 || pkt.Arrival <= dst.deadline) {
		dst.blocked = false
		dst.deadline = 0
		eng.completeMatch(dst, key)
		dst.req.kind = reqResolved
		heap.Push(&eng.ready, dst)
	}
}

// completeMatch pops the earliest packet for key into p.resp and raises
// p's clock to its arrival, charging the message-matching cost for
// two-sided packets (proportional to the unexpected-queue depth).
func (eng *Engine) completeMatch(p *Proc, key pktKey) {
	q := p.mailbox[key]
	pkt := q[0]
	if len(q) == 1 {
		delete(p.mailbox, key)
	} else {
		p.mailbox[key] = q[1:]
	}
	if pkt.Arrival > p.clock {
		p.clock = pkt.Arrival
	}
	if !pkt.unmatched {
		cfg := &eng.cfg
		if cfg.MatchCost > 0 {
			depth := p.buffered
			if cfg.MatchQueueCap > 0 && depth > cfg.MatchQueueCap {
				depth = cfg.MatchQueueCap
			}
			p.clock += cfg.MatchCost * float64(depth)
		}
		p.buffered--
	}
	p.resp = pkt
}

// deadlockDiag builds the structural deadlock diagnostic: every blocked
// rank's pending (src, tag) at its current clock, in rank order.
func (eng *Engine) deadlockDiag() *DeadlockError {
	d := &DeadlockError{}
	for _, p := range eng.procs {
		if p.blocked {
			d.Blocked = append(d.Blocked, BlockedOp{Rank: p.rank, Src: p.pending.src, Tag: p.pending.tag, Clock: p.clock})
		}
	}
	return d
}

// procHeap orders procs by clock (rank breaks ties for determinism).
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].rank < h[j].rank
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *procHeap) Push(x interface{}) {
	p := x.(*Proc)
	p.heapIdx = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	p.heapIdx = -1
	*h = old[:n-1]
	return p
}

// runHeap orders concurrently executing procs by (lb, rank), where lb
// is each body's running lower bound — its clock when it was resumed.
// Its minimum bounds from below every request the running set can
// still produce (clocks never decrease inside a body).
type runHeap []*Proc

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].rank < h[j].rank
}
func (h runHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].runIdx = i
	h[j].runIdx = j
}
func (h *runHeap) Push(x interface{}) {
	p := x.(*Proc)
	p.runIdx = len(*h)
	*h = append(*h, p)
}
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	p.runIdx = -1
	*h = old[:n-1]
	return p
}

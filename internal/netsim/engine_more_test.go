package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCutThroughDecouplesQueues: a backed-up destination must not stall
// the sender's egress for unrelated traffic (the convoy effect the
// resource model explicitly avoids).
func TestCutThroughDecouplesQueues(t *testing.T) {
	cfg := Config{
		Nodes: 3, GPUsPerNode: 1,
		InterBW: 1e9, IntraBW: 2e9, LocalBW: 8e9,
	}
	var arrivalB float64
	Run(cfg, func(p *Proc) {
		switch p.Rank() {
		case 0:
			// First a large transfer to rank 1, then a small one to rank 2.
			p.Send(1, 0, nil, 10_000_000) // 10 ms on the wire
			p.Send(2, 0, nil, 1_000_000)  // 1 ms
		case 1:
			// Rank 1's ingress is additionally hammered by rank 2 before
			// rank 0's transfer gets there — irrelevant for rank 2's wait.
			p.Recv(0, 0)
		case 2:
			pkt := p.Recv(0, 0)
			arrivalB = pkt.Arrival
		}
	})
	// Egress of node 0 serializes: 10 ms then 1 ms. Rank 2's message
	// completes at ~11 ms — not delayed behind ingress-1 congestion.
	if arrivalB > 11.1e-3 {
		t.Errorf("small transfer arrived at %g, cut-through not working", arrivalB)
	}
}

func TestMatchingCostCharged(t *testing.T) {
	cfg := tiny()
	cfg.MatchCost = 1e-6
	cfg.MatchQueueCap = 100
	var withCost float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.Send(1, i, nil, 10)
			}
		} else {
			// Let all ten messages queue up, then drain: match i sees
			// 10-i queued packets.
			p.Elapse(1)
			for i := 0; i < 10; i++ {
				p.Recv(0, i)
			}
			withCost = p.Now()
		}
	})
	// Total matching cost: (10+9+...+1)·1µs = 55 µs on top of 1 s.
	want := 1.0 + 55e-6
	if math.Abs(withCost-want) > 1e-9 {
		t.Errorf("receiver clock %g, want %g", withCost, want)
	}
}

func TestUnmatchedPacketsSkipMatchingCost(t *testing.T) {
	cfg := tiny()
	cfg.MatchCost = 1e-3
	cfg.MatchQueueCap = 100
	var clock float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				p.SendMsg(1, i, SendOpts{Bytes: 10, Unmatched: true})
			}
		} else {
			p.Elapse(1)
			for i := 0; i < 5; i++ {
				p.Recv(0, i)
			}
			clock = p.Now()
		}
	})
	if clock > 1.0+1e-9 {
		t.Errorf("unmatched packets paid matching cost: clock %g", clock)
	}
}

func TestMatchQueueCapBoundsCost(t *testing.T) {
	cfg := tiny()
	cfg.MatchCost = 1e-6
	cfg.MatchQueueCap = 3
	var clock float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 20; i++ {
				p.Send(1, i, nil, 10)
			}
		} else {
			p.Elapse(1)
			for i := 0; i < 20; i++ {
				p.Recv(0, i)
			}
			clock = p.Now()
		}
	})
	// Cost per match capped at 3 µs·1e-6... at most 20·3·1e-6.
	maxCost := 20 * 3 * 1e-6
	if clock > 1.0+maxCost+1e-12 {
		t.Errorf("matching cost above cap: clock %g", clock)
	}
}

func TestSendFullMetaDelivered(t *testing.T) {
	Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFull(1, 0, []byte{1}, 1, 4242, 0)
		} else {
			pkt := p.Recv(0, 0)
			if pkt.Meta != 4242 {
				t.Errorf("meta = %d", pkt.Meta)
			}
		}
	})
}

func TestAdvanceToMonotonic(t *testing.T) {
	Run(tiny(), func(p *Proc) {
		p.Elapse(5)
		p.AdvanceTo(3) // must not go backwards
		if p.Now() != 5 {
			t.Errorf("AdvanceTo moved clock backwards to %g", p.Now())
		}
		p.AdvanceTo(7)
		if p.Now() != 7 {
			t.Errorf("AdvanceTo did not advance: %g", p.Now())
		}
	})
}

func TestNegativeElapsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(tiny(), func(p *Proc) {
		p.Elapse(-1)
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(tiny(), func(p *Proc) {
		p.Send(99, 0, nil, 1)
	})
}

// TestEgressFIFOProperty: messages from one sender to one receiver over
// the same resources arrive in nondecreasing order of completion.
func TestEgressFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 30 {
			return true
		}
		ok := true
		Run(tiny(), func(p *Proc) {
			if p.Rank() == 0 {
				for i, s := range sizes {
					p.Send(1, i, nil, int(s)+1)
				}
			} else {
				last := -1.0
				for i := range sizes {
					pkt := p.Recv(0, i)
					if pkt.Arrival < last {
						ok = false
					}
					last = pkt.Arrival
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConservationOfBytes: stats account exactly for all sends.
func TestConservationOfBytes(t *testing.T) {
	f := func(sz []uint16) bool {
		if len(sz) == 0 || len(sz) > 20 {
			return true
		}
		var total int64
		cfg := Summit(2)
		res := Run(cfg, func(p *Proc) {
			if p.Rank() == 0 {
				for i, s := range sz {
					dst := (i*5 + 1) % p.Size()
					p.Send(dst, i, nil, int(s))
				}
			}
			for i, s := range sz {
				if (i*5+1)%p.Size() == p.Rank() {
					p.Recv(0, i)
					_ = s
				}
			}
		})
		total = 0
		for _, s := range sz {
			total += int64(s)
		}
		sum := res.Stats.BytesInter + res.Stats.BytesIntra + res.Stats.BytesLocal
		return sum == total && res.Stats.Messages == len(sz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSummitOverheadFields(t *testing.T) {
	cfg := Summit(1)
	if cfg.ProtoOverheadInter <= 0 || cfg.ProtoOverheadIntra <= 0 ||
		cfg.RMAOverhead <= 0 || cfg.MatchCost <= 0 || cfg.MatchQueueCap <= 0 {
		t.Errorf("Summit overheads not set: %+v", cfg)
	}
	if cfg.RMAOverhead >= cfg.ProtoOverheadInter {
		t.Error("RDMA per-op cost should be below two-sided protocol cost")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	cfg := Summit(2)
	var events []TraceEvent
	cfg.Tracer = func(e TraceEvent) { events = append(events, e) }
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, nil, 100) // intra
			p.Send(7, 9, nil, 200) // inter
			p.Send(0, 9, nil, 300) // local
		}
		switch p.Rank() {
		case 0:
			p.Recv(0, 9)
		case 1, 7:
			p.Recv(0, 9)
		}
	})
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Arrival < e.End || e.End < e.Injected {
			t.Errorf("event times out of order: %+v", e)
		}
		if e.Src != 0 || e.Tag != 9 {
			t.Errorf("event fields wrong: %+v", e)
		}
	}
	if kinds["intra"] != 1 || kinds["inter"] != 1 || kinds["local"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

package netsim

import (
	"math"
	"reflect"
	"testing"
)

// tiny returns a 2-node machine with 1 GPU per node and simple numbers
// so expected times are easy to compute by hand.
func tiny() Config {
	return Config{
		Nodes: 2, GPUsPerNode: 1,
		InterBW: 1e9, IntraBW: 2e9, LocalBW: 8e9,
		InterLatency: 1e-6, IntraLatency: 0.5e-6, SendOverhead: 0,
	}
}

func TestPointToPointTiming(t *testing.T) {
	// 1 MB at 1 GB/s = 1 ms, plus 1 µs latency.
	res := Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, nil, 1_000_000)
		} else {
			pkt := p.Recv(0, 7)
			if pkt.Bytes != 1_000_000 {
				t.Errorf("bytes = %d", pkt.Bytes)
			}
		}
	})
	want := 1e-3 + 1e-6
	if math.Abs(res.Time-want) > 1e-12 {
		t.Errorf("completion time %g, want %g", res.Time, want)
	}
}

func TestPayloadIntegrity(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, data, len(data))
		} else {
			pkt := p.Recv(0, 1)
			if !reflect.DeepEqual(pkt.Payload, data) {
				t.Errorf("payload = %v", pkt.Payload)
			}
		}
	})
}

func TestSendOverheadChargesSender(t *testing.T) {
	cfg := tiny()
	cfg.SendOverhead = 5e-6
	var senderClock float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 1000)
			senderClock = p.Now()
		} else {
			p.Recv(0, 1)
		}
	})
	if math.Abs(senderClock-5e-6) > 1e-12 {
		t.Errorf("sender clock after send = %g, want 5e-6", senderClock)
	}
}

func TestIntraNodeUsesBusAndLatency(t *testing.T) {
	cfg := tiny()
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	res := Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 2_000_000)
		} else {
			p.Recv(0, 1)
		}
	})
	want := 2e6/2e9 + 0.5e-6
	if math.Abs(res.Time-want) > 1e-12 {
		t.Errorf("intra time %g, want %g", res.Time, want)
	}
	if res.Stats.BytesIntra != 2_000_000 || res.Stats.BytesInter != 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestSelfSendUsesLocalBW(t *testing.T) {
	res := Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(0, 1, nil, 8_000_000)
			pkt := p.Recv(0, 1)
			p.AdvanceTo(pkt.Arrival)
		}
	})
	want := 8e6 / 8e9 // 1 ms, no latency for self copies
	if math.Abs(res.Time-want) > 1e-12 {
		t.Errorf("self copy time %g, want %g", res.Time, want)
	}
}

func TestIngressSerialization(t *testing.T) {
	// Two remote senders into one node: transfers share the ingress NIC
	// and serialize; total ≈ 2 × (size/BW).
	cfg := Config{
		Nodes: 3, GPUsPerNode: 1,
		InterBW: 1e9, IntraBW: 2e9, LocalBW: 8e9,
		InterLatency: 0, IntraLatency: 0,
	}
	res := Run(cfg, func(p *Proc) {
		switch p.Rank() {
		case 0, 1:
			p.Send(2, p.Rank(), nil, 1_000_000)
		case 2:
			a := p.Recv(0, 0)
			b := p.Recv(1, 1)
			p.AdvanceTo(math.Max(a.Arrival, b.Arrival))
		}
	})
	if math.Abs(res.Time-2e-3) > 1e-9 {
		t.Errorf("serialized ingress time %g, want 2e-3", res.Time)
	}
}

func TestDisjointPathsRunInParallel(t *testing.T) {
	// 0→1 and 1→0 use different NIC pairs (egress0/ingress1 vs
	// egress1/ingress0): both finish in one transfer time.
	res := Run(tiny(), func(p *Proc) {
		other := 1 - p.Rank()
		p.Send(other, 1, nil, 1_000_000)
		pkt := p.Recv(other, 1)
		p.AdvanceTo(pkt.Arrival)
	})
	want := 1e-3 + 1e-6
	if math.Abs(res.Time-want) > 1e-9 {
		t.Errorf("bidirectional time %g, want %g", res.Time, want)
	}
}

func TestElapseAndOrdering(t *testing.T) {
	// Rank 1 computes before receiving; arrival before compute end means
	// recv returns at compute end.
	res := Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 1000) // arrives at ~1µs+1µs
		} else {
			p.Elapse(1e-3)
			p.Recv(0, 1)
			if math.Abs(p.Now()-1e-3) > 1e-12 {
				t.Errorf("recv after compute returned at %g", p.Now())
			}
		}
	})
	if math.Abs(res.Time-1e-3) > 1e-12 {
		t.Errorf("time %g", res.Time)
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	// Messages with the same key arrive FIFO.
	Run(tiny(), func(p *Proc) {
		const k = 50
		if p.Rank() == 0 {
			for i := 0; i < k; i++ {
				p.Send(1, 9, []byte{byte(i)}, 100)
			}
		} else {
			last := -1
			for i := 0; i < k; i++ {
				pkt := p.Recv(0, 9)
				if int(pkt.Payload[0]) != last+1 {
					t.Fatalf("out of order: got %d after %d", pkt.Payload[0], last)
				}
				last = int(pkt.Payload[0])
			}
		}
	})
}

func TestDeterminism(t *testing.T) {
	body := func(p *Proc) {
		n := p.Size()
		for i := 0; i < n; i++ {
			dst := (p.Rank() + i) % n
			p.Send(dst, i, nil, 1000*(p.Rank()+1))
		}
		for i := 0; i < n; i++ {
			src := (p.Rank() - i + n) % n
			p.Recv(src, i)
		}
	}
	cfg := Summit(2)
	a := Run(cfg, body)
	b := Run(cfg, body)
	if a.Time != b.Time || !reflect.DeepEqual(a.Clocks, b.Clocks) || a.Stats != b.Stats {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	Run(tiny(), func(p *Proc) {
		p.Recv(1-p.Rank(), 0) // both wait, nobody sends
	})
}

func TestBodyPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	Run(tiny(), func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestProtoOverheadOccupiesPath(t *testing.T) {
	// A message with protocol overhead holds the NIC longer: two
	// back-to-back messages complete one overhead later each.
	cfg := tiny()
	var arrivals [2]float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendMsg(1, 0, SendOpts{Bytes: 1_000_000, ProtoOverhead: 10e-6})
			p.SendMsg(1, 1, SendOpts{Bytes: 1_000_000, ProtoOverhead: 10e-6})
		} else {
			arrivals[0] = p.Recv(0, 0).Arrival
			arrivals[1] = p.Recv(0, 1).Arrival
		}
	})
	want0 := 1e-3 + 10e-6 + 1e-6
	want1 := 2*(1e-3+10e-6) + 1e-6
	if math.Abs(arrivals[0]-want0) > 1e-12 || math.Abs(arrivals[1]-want1) > 1e-12 {
		t.Errorf("arrivals %v, want %g and %g", arrivals, want0, want1)
	}
}

func TestSendMsgReturnsArrival(t *testing.T) {
	Run(tiny(), func(p *Proc) {
		if p.Rank() == 0 {
			got := p.SendMsg(1, 0, SendOpts{Bytes: 1_000_000})
			want := 1e-3 + 1e-6
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("SendMsg arrival %g, want %g", got, want)
			}
		} else {
			p.Recv(0, 0)
		}
	})
}

func TestSummitConfig(t *testing.T) {
	cfg := Summit(4)
	if cfg.Ranks() != 24 {
		t.Errorf("Summit(4) ranks = %d, want 24", cfg.Ranks())
	}
	if cfg.NodeOf(0) != 0 || cfg.NodeOf(6) != 1 || cfg.NodeOf(23) != 3 {
		t.Error("NodeOf mapping wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected config validation panic")
		}
	}()
	Run(Config{}, func(p *Proc) {})
}

func TestStatsCounters(t *testing.T) {
	cfg := Summit(2) // 12 ranks
	res := Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 100) // intra
			p.Send(6, 1, nil, 200) // inter
			p.Send(0, 2, nil, 300) // local
		}
		switch p.Rank() {
		case 0:
			p.Recv(0, 2)
		case 1:
			p.Recv(0, 0)
		case 6:
			p.Recv(0, 1)
		}
	})
	want := Stats{Messages: 3, BytesIntra: 100, BytesInter: 200, BytesLocal: 300}
	if res.Stats != want {
		t.Errorf("stats = %+v, want %+v", res.Stats, want)
	}
}

package netsim

import "testing"

func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(4)
	rec := b.Recorder()
	for i := 0; i < 10; i++ {
		rec(TraceEvent{Tag: i})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Tag != want {
			t.Errorf("event %d tag = %d, want %d (oldest-first)", i, ev.Tag, want)
		}
	}
	if b.Total() != 10 {
		t.Errorf("total = %d, want 10", b.Total())
	}
	if b.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", b.Dropped())
	}
}

func TestTraceBufferUnderCap(t *testing.T) {
	b := NewTraceBuffer(8)
	rec := b.Recorder()
	for i := 0; i < 3; i++ {
		rec(TraceEvent{Tag: i})
	}
	evs := b.Events()
	if len(evs) != 3 || evs[0].Tag != 0 || evs[2].Tag != 2 {
		t.Errorf("events = %+v", evs)
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", b.Dropped())
	}
}

func TestTraceBufferDefaultCap(t *testing.T) {
	if b := NewTraceBuffer(0); b.cap != DefaultTraceCap {
		t.Errorf("cap = %d, want %d", b.cap, DefaultTraceCap)
	}
}

// TestTraceBufferAsTracer exercises the buffer as the engine callback.
func TestTraceBufferAsTracer(t *testing.T) {
	b := NewTraceBuffer(2)
	cfg := Config{
		Nodes: 2, GPUsPerNode: 1,
		InterBW: 1e9, IntraBW: 2e9, LocalBW: 8e9,
		InterLatency: 1e-6, IntraLatency: 0.5e-6,
		Tracer: b.Recorder(),
	}
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				p.Send(1, i, nil, 100)
			}
		} else {
			for i := 0; i < 5; i++ {
				p.Recv(0, i)
			}
		}
	})
	if b.Total() != 5 {
		t.Errorf("total = %d, want 5", b.Total())
	}
	if len(b.Events()) != 2 {
		t.Errorf("kept %d, want 2", len(b.Events()))
	}
	if b.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", b.Dropped())
	}
}

package netsim

// resource is a serialized (FIFO) bandwidth server: transfers through it
// queue in reservation order and occupy it back to back. Reservations are
// made in nondecreasing virtual-time order thanks to the engine's
// min-clock scheduling, so first-come-first-served is also
// earliest-first.
type resource struct {
	freeAt float64
}

// reserve books a transfer of the given duration starting no earlier
// than at, and returns its [begin, end) interval.
func (r *resource) reserve(at, dur float64) (begin, end float64) {
	begin = at
	if r.freeAt > begin {
		begin = r.freeAt
	}
	end = begin + dur
	r.freeAt = end
	return begin, end
}

// reservePair books a transfer across two resources (egress NIC of the
// source node, ingress NIC of the destination node) with cut-through
// semantics: the egress slot is taken as soon as the egress is free, and
// the ingress slot starts no earlier than the egress slot begins —
// fabric buffering decouples the queues, so a backed-up destination does
// not idle the sender's egress (no convoy effect).
func reservePair(eg, in *resource, at, dur float64) (begin, end float64) {
	begin, _ = eg.reserve(at, dur)
	inBegin := begin
	if in.freeAt > inBegin {
		inBegin = in.freeAt
	}
	end = inBegin + dur
	in.freeAt = end
	return begin, end
}

package netsim

import (
	"strings"
	"sync"
	"testing"
)

// The kill tests cover the permanent-loss fault kind: a killed rank is
// parked like a crash but survives fault-plan pruning, so every respawn
// of the run re-kills it — the signal that forces an elastic shrink
// (internal/recover).

func TestKillParksRankWithTypedEvent(t *testing.T) {
	cfg := Summit(1)
	var mu sync.Mutex
	var kinds []string
	cfg.FaultObserver = func(fe FaultEvent) {
		mu.Lock()
		kinds = append(kinds, fe.Kind)
		mu.Unlock()
	}
	cfg.Faults = &FaultPlan{Seed: 7, KillRank: 2, KillAt: 1e-6}
	res, err := RunChecked(cfg, faultBody(t, false))
	if err == nil {
		t.Fatal("killed rank did not fail the run")
	}
	if res.Stats.Faults.Kills != 1 || res.Stats.Faults.Crashes != 1 {
		t.Errorf("kills %d crashes %d, want 1 and 1", res.Stats.Faults.Kills, res.Stats.Faults.Crashes)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, k := range kinds {
		if k == "kill" {
			found = true
		}
		if k == "crash" {
			t.Errorf(`kill surfaced as plain "crash" event`)
		}
	}
	if !found {
		t.Errorf(`no "kill" fault event observed (got %v)`, kinds)
	}
}

func TestKillSurvivesCrashPruning(t *testing.T) {
	// WithCrashesAfter prunes absorbed transient crashes but must keep
	// permanent kills armed: a respawned attempt re-kills the rank.
	plan := &FaultPlan{Seed: 8, CrashRank: 1, CrashAt: 1e-6, KillRank: 2, KillAt: 2e-6,
		CrashSchedule: []CrashSpec{{Rank: 4, At: 3e-6}, {Rank: 5, At: 4e-6, Permanent: true}}}
	pruned := plan.WithCrashesAfter(10e-6) // past every entry
	crashes := pruned.Crashes()
	byRank := map[int]bool{}
	for _, cs := range crashes {
		byRank[cs.Rank] = true
		if !cs.Permanent {
			t.Errorf("pruned plan kept transient crash %+v", cs)
		}
	}
	if !byRank[2] || !byRank[5] {
		t.Errorf("pruned plan lost permanent kills: %+v", crashes)
	}
	if byRank[1] || byRank[4] {
		t.Errorf("pruned plan kept absorbed transient crashes: %+v", crashes)
	}
	if plan.KillRank != 2 || plan.KillAt != 2e-6 {
		t.Errorf("pruning mutated the original plan: %+v", plan)
	}
}

func TestKillScenarioString(t *testing.T) {
	plan := &FaultPlan{KillRank: 3, KillAt: 1e-6}
	if s := plan.Scenario(); !strings.Contains(s, "kill-rank3") {
		t.Errorf("scenario %q does not name the kill", s)
	}
}

func TestKillDeterministicAcrossEngines(t *testing.T) {
	run := func(parallel bool) (Result, error) {
		cfg := Summit(1)
		cfg.Parallel = parallel
		cfg.Faults = &FaultPlan{Seed: 9, KillRank: 0, KillAt: 1.5e-6}
		return RunChecked(cfg, faultBody(t, false))
	}
	seq, seqErr := run(false)
	par, parErr := run(true)
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("engines disagree on failure: %v vs %v", seqErr, parErr)
	}
	if seq.Stats.Faults != par.Stats.Faults {
		t.Errorf("fault stats diverged: %+v vs %+v", seq.Stats.Faults, par.Stats.Faults)
	}
	for r, c := range seq.Clocks {
		if par.Clocks[r] != c {
			t.Errorf("rank %d clock diverged: %v vs %v", r, c, par.Clocks[r])
		}
	}
}

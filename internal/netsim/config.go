// Package netsim is a deterministic discrete-event simulator of a
// GPU-cluster interconnect. Rank programs run as goroutines scheduled
// cooperatively by an engine that always resumes the runnable rank with
// the smallest virtual clock, so resource arbitration is causally
// correct and runs are bit-reproducible.
//
// Data movement is real — packet payloads are actual byte slices copied
// between ranks — while elapsed time comes from a cost model of a
// Summit-like machine: per-node ingress/egress NICs and an intra-node
// bus modeled as serialized bandwidth servers with wire latency, plus a
// fabric-level congestion factor that degrades effective bandwidth as
// the number of outstanding inter-node transfers grows (the substitute
// for the adaptive-routing collisions the paper observes when the
// default all-to-all floods the network; see DESIGN.md).
package netsim

// Config describes the simulated machine. The zero value is not valid;
// start from Summit.
type Config struct {
	// Nodes is the number of nodes; GPUsPerNode ranks are placed per node
	// in block order (rank r lives on node r/GPUsPerNode).
	Nodes       int
	GPUsPerNode int

	// InterBW is the aggregate inter-node bandwidth per node and
	// direction in bytes/s (Summit: two IB lanes, 25 GB/s total).
	InterBW float64
	// IntraBW is the intra-node bus bandwidth in bytes/s (50 GB/s).
	IntraBW float64
	// LocalBW is the device-local copy bandwidth for rank-to-self
	// transfers in bytes/s (HBM2-class, 900 GB/s).
	LocalBW float64

	// InterLatency and IntraLatency are per-message wire latencies in
	// seconds.
	InterLatency float64
	IntraLatency float64

	// SendOverhead is the host-side injection overhead per message (the
	// "o" of the LogP family), charged to the sender's clock.
	SendOverhead float64

	// ProtoOverheadInter and ProtoOverheadIntra are the per-message NIC
	// (resp. bus) occupancy of two-sided rendezvous protocol processing:
	// the progression of RTS/CTS and unexpected-message handling that a
	// CPU-driven transport pays per large message and that one-sided
	// GPU-direct RDMA avoids (§V). They gate the message rate of the
	// two-sided all-to-alls at scale — the mechanism behind Fig. 3.
	ProtoOverheadInter float64
	ProtoOverheadIntra float64

	// RMAOverhead is the per-operation NIC processing cost of one-sided
	// puts (RDMA work-queue handling); much smaller than the two-sided
	// protocol overheads but not free.
	RMAOverhead float64

	// Tracer, when non-nil, receives one event per transfer at delivery
	// time (virtual timestamps). For debugging and timeline dumps; it
	// must not call back into the engine.
	Tracer func(TraceEvent) `json:"-"`

	// Faults, when non-nil, attaches a deterministic fault-injection plan
	// to the run (see FaultPlan). nil keeps the engine on the exact
	// fault-free code paths — virtual times are byte-identical to a build
	// without the fault layer.
	Faults *FaultPlan `json:"-"`

	// FaultObserver, when non-nil, receives one FaultEvent per injected
	// fault as the engine decides it. Like Tracer it is called only from
	// the scheduler goroutine — in parallel mode too — so observation
	// order is deterministic and observing never perturbs virtual time.
	// It must not call back into the engine.
	FaultObserver func(FaultEvent) `json:"-"`

	// MatchCost is the receiver-side cost of scanning one entry of the
	// unexpected-message queue when matching a two-sided receive, and
	// MatchQueueCap bounds the queue length the flow control lets build
	// up. Deep queues are what degrade the default all-to-all as the
	// rank count grows (Fig. 3); one-sided puts bypass matching.
	MatchCost     float64
	MatchQueueCap int

	// Parallel selects the conservative parallel execution mode: rank
	// bodies execute truly concurrently across OS cores between their
	// communication events, while the engine serializes event processing
	// in the exact (virtual clock, rank) order of the sequential
	// scheduler. Every output — virtual times, Stats, FaultStats, trace
	// events, exchanged payloads — is bit-identical to Parallel == false;
	// the win is wall-clock, on workloads whose rank bodies carry real
	// CPU work (compression kernels, FFT models, CRC framing). See
	// docs/DETERMINISM.md for the equivalence contract. The environment
	// variable NETSIM_PARALLEL=1 forces this mode for every run (the
	// `make verify-parallel` tier).
	Parallel bool
}

// Summit returns the machine model used throughout the reproduction,
// sized for the given number of nodes (6 GPUs each, as in §VI).
func Summit(nodes int) Config {
	return Config{
		Nodes:              nodes,
		GPUsPerNode:        6,
		InterBW:            25e9,
		IntraBW:            50e9,
		LocalBW:            900e9,
		InterLatency:       1.5e-6,
		IntraLatency:       0.7e-6,
		SendOverhead:       0.4e-6,
		ProtoOverheadInter: 2.5e-6,
		ProtoOverheadIntra: 0.6e-6,
		RMAOverhead:        0.7e-6,
		MatchCost:          250e-9,
		MatchQueueCap:      256,
	}
}

// Ranks returns the total rank count of the machine.
func (c Config) Ranks() int { return c.Nodes * c.GPUsPerNode }

// NodeOf returns the node hosting a rank.
func (c Config) NodeOf(rank int) int { return rank / c.GPUsPerNode }

func (c Config) validate() {
	switch {
	case c.Nodes <= 0 || c.GPUsPerNode <= 0:
		panic("netsim: node and GPU counts must be positive")
	case c.InterBW <= 0 || c.IntraBW <= 0 || c.LocalBW <= 0:
		panic("netsim: bandwidths must be positive")
	case c.InterLatency < 0 || c.IntraLatency < 0 || c.SendOverhead < 0:
		panic("netsim: latencies must be non-negative")
	}
}

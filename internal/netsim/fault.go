package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// RetryPolicy parameterizes the transparent retransmission the simulated
// transport performs underneath every message (the stand-in for UCX
// retransmit / NIC failover on a real fabric), and the virtual-time
// watchdog deadline the runtime layers apply to blocked receives.
type RetryPolicy struct {
	// MaxRetries bounds the transport-level retransmissions of one
	// message; a message still undeliverable afterwards is permanently
	// lost and must be handled by the layers above.
	MaxRetries int
	// RTO is the base retransmit timeout in virtual seconds; attempt k
	// waits RTO·Backoff^(k-1) before resending.
	RTO     float64
	Backoff float64
	// OpDeadline is the watchdog deadline applied to one blocked receive
	// by the reliable runtime: when no matching message can arrive within
	// it, the receive fails with a diagnostic instead of hanging.
	OpDeadline float64
}

// DefaultRetryPolicy returns the retry/watchdog knobs used when a fault
// plan does not override them.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 6, RTO: 10e-6, Backoff: 2, OpDeadline: 20e-3}
}

// WithDefaults returns the policy with zero-value knobs replaced by the
// defaults (used by the runtime layers to resolve the effective policy).
func (r RetryPolicy) WithDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if r.MaxRetries == 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.RTO == 0 {
		r.RTO = d.RTO
	}
	if r.Backoff == 0 {
		r.Backoff = d.Backoff
	}
	if r.OpDeadline == 0 {
		r.OpDeadline = d.OpDeadline
	}
	return r
}

// FaultPlan is a deterministic, seeded description of the faults
// injected into one run. A nil plan (Config.Faults == nil) disables the
// fault layer entirely: the engine takes the exact code paths it takes
// without it, so fault-free runs are byte-identical whether the layer
// exists or not.
//
// All probabilities are per message (per transmission attempt for the
// transport-level ones). The same seed always yields the same fault
// sequence because the engine consults one RNG in deterministic
// scheduler order.
type FaultPlan struct {
	Seed int64

	// DropProb is the probability one transmission attempt is lost on
	// the wire. The transport retransmits (see Retry); each retry adds
	// backoff delay to the arrival. A message still lost after
	// MaxRetries is permanently dropped.
	DropProb float64
	// CorruptProb is the probability one attempt arrives damaged but is
	// caught by the link-level CRC — indistinguishable from a drop to
	// the layers above, it also triggers a retransmit.
	CorruptProb float64
	// SilentCorruptProb is the probability a delivered payload is
	// mangled *without* the transport noticing. It only applies to
	// one-sided (unmatched) put payloads of at least SilentMinBytes:
	// GPU-direct RDMA bypasses the CPU protocol stack that checksums
	// two-sided traffic, which is exactly why the reliable runtime adds
	// its own per-message checksums on that path.
	SilentCorruptProb float64
	// SilentMinBytes exempts small (header-protected) payloads from
	// silent corruption; defaults to 64.
	SilentMinBytes int

	// DuplicateProb delivers a message twice (retransmit races).
	DuplicateProb float64

	// LatencySpikeProb adds LatencySpike seconds to a message's arrival
	// (adaptive-routing detours, congestion bursts).
	LatencySpikeProb float64
	LatencySpike     float64

	// StallProb freezes the sender for Stall seconds before a message is
	// injected (transient OS noise / driver hiccups on one rank).
	StallProb float64
	Stall     float64

	// DegradedNodes maps a node id to the bandwidth factor (0 < f ≤ 1)
	// its NICs and bus run at (a degraded or failed-over NIC).
	DegradedNodes map[int]float64

	// CrashRank permanently crashes that rank at virtual time CrashAt:
	// it stops sending, receiving, and participating; peers observe it
	// through watchdog timeouts or the deadlock diagnostic. The crash is
	// enabled only when CrashAt > 0, so the zero value injects nothing
	// (use a tiny CrashAt to crash "at startup").
	CrashRank int
	CrashAt   float64

	// CrashSchedule lists additional crashes beyond CrashRank/CrashAt.
	// The recovery controller (internal/recover) uses multi-crash plans
	// to exercise crash-during-recovery double faults: entries whose time
	// falls after a restart's resume point are still armed on the next
	// attempt.
	CrashSchedule []CrashSpec

	// KillRank permanently kills that rank at virtual time KillAt: like a
	// crash, but the rank never respawns — WithCrashesAfter always keeps
	// a kill armed, so every recovery attempt re-kills the rank and the
	// controller must shrink onto the survivors instead of respawning
	// (docs/ROBUSTNESS.md). Enabled only when KillAt > 0.
	KillRank int
	KillAt   float64

	// Retry overrides the transport retry/watchdog policy (zero fields
	// take defaults).
	Retry RetryPolicy
}

// withDefaults returns a copy with zero-value knobs filled in.
func (p *FaultPlan) withDefaults() FaultPlan {
	q := *p
	if q.SilentMinBytes == 0 {
		q.SilentMinBytes = 64
	}
	q.Retry = q.Retry.WithDefaults()
	return q
}

// FaultStats counts the faults injected into a run and the transport's
// recovery work. Embedded in Stats; all-zero when no plan is attached.
type FaultStats struct {
	Drops           int     // transmission attempts lost on the wire
	DetectedCorrupt int     // attempts damaged but caught by the link CRC
	SilentCorrupt   int     // payloads delivered mangled
	Duplicates      int     // messages delivered twice
	Spikes          int     // latency spikes applied
	Stalls          int     // sender stalls applied
	Retries         int     // transport retransmissions
	Lost            int     // messages permanently lost (retries exhausted)
	RetryDelayS     float64 // total virtual seconds of retransmit backoff
	Crashes         int     // ranks parked by a crash (kills included)
	Kills           int     // ranks parked by a permanent kill (never respawn)
}

// FaultEvent describes one injected fault, delivered to
// Config.FaultObserver on the scheduler goroutine as the engine decides
// it. Kind is one of "stall", "spike", "retry", "lost",
// "silent_corrupt", "duplicate", "crash", or "kill" (a permanent crash
// that never respawns); Delay carries the virtual seconds a
// stall/spike/retry added (0 otherwise). Dst is -1 for crashes and
// kills, which have no message in flight.
type FaultEvent struct {
	T        float64 // virtual time at the deciding proc
	Kind     string
	Src, Dst int
	Tag      int
	Delay    float64
}

// injector applies a FaultPlan deterministically. It is consulted only
// from the engine's deliver path, whose order the scheduler makes
// deterministic, so one seed always produces one fault sequence.
type injector struct {
	plan  FaultPlan
	rng   *rand.Rand
	stats *FaultStats
}

func newInjector(plan *FaultPlan, stats *FaultStats) *injector {
	p := plan.withDefaults()
	return &injector{plan: p, rng: rand.New(rand.NewSource(p.Seed)), stats: stats}
}

// stall returns the sender-side stall to apply before injecting the
// next message.
func (in *injector) stall() float64 {
	if in.plan.StallProb > 0 && in.rng.Float64() < in.plan.StallProb {
		in.stats.Stalls++
		return in.plan.Stall
	}
	return 0
}

// bwFactor returns the bandwidth degradation factor of a transfer
// between two nodes (the slower endpoint dominates).
func (in *injector) bwFactor(srcNode, dstNode int) float64 {
	f := 1.0
	if g, ok := in.plan.DegradedNodes[srcNode]; ok && g < f {
		f = g
	}
	if g, ok := in.plan.DegradedNodes[dstNode]; ok && g < f {
		f = g
	}
	if f <= 0 {
		f = 1e-3 // a dead NIC still trickles; zero would stop time
	}
	return f
}

// transfer simulates the transport-level fate of one message: each
// attempt may be dropped or detectably corrupted, in which case the
// transport retransmits after an exponential backoff. It returns the
// total added delay and whether the message was permanently lost.
func (in *injector) transfer() (delay float64, lost bool) {
	pol := in.plan.Retry
	pFail := in.plan.DropProb + in.plan.CorruptProb
	if pFail <= 0 {
		return 0, false
	}
	backoff := pol.RTO
	for attempt := 0; ; attempt++ {
		r := in.rng.Float64()
		if r >= pFail {
			return delay, false
		}
		if r < in.plan.DropProb {
			in.stats.Drops++
		} else {
			in.stats.DetectedCorrupt++
		}
		if attempt >= pol.MaxRetries {
			in.stats.Lost++
			return delay, true
		}
		in.stats.Retries++
		delay += backoff
		in.stats.RetryDelayS += backoff
		backoff *= pol.Backoff
	}
}

// spike returns the extra arrival latency of the next message.
func (in *injector) spike() float64 {
	if in.plan.LatencySpikeProb > 0 && in.rng.Float64() < in.plan.LatencySpikeProb {
		in.stats.Spikes++
		return in.plan.LatencySpike
	}
	return 0
}

// corrupt possibly returns a silently mangled copy of a put payload
// (nil means deliver the original). Two-sided payloads pass through the
// checksummed CPU protocol stack and are never silently corrupted.
func (in *injector) corrupt(payload []byte, unmatched bool) []byte {
	if !unmatched || len(payload) < in.plan.SilentMinBytes || in.plan.SilentCorruptProb <= 0 {
		return nil
	}
	if in.rng.Float64() >= in.plan.SilentCorruptProb {
		return nil
	}
	in.stats.SilentCorrupt++
	bad := append([]byte(nil), payload...)
	// Flip a burst of bytes at a random position (never a no-op).
	pos := in.rng.Intn(len(bad))
	n := 1 + in.rng.Intn(8)
	for i := 0; i < n && pos+i < len(bad); i++ {
		bad[pos+i] ^= 0xa5
	}
	return bad
}

// duplicate reports whether the next message is delivered twice.
func (in *injector) duplicate() bool {
	if in.plan.DuplicateProb > 0 && in.rng.Float64() < in.plan.DuplicateProb {
		in.stats.Duplicates++
		return true
	}
	return false
}

// crashed reports whether rank must be parked at time now; permanent
// reports whether the park is a kill (the rank never respawns).
func (in *injector) crashed(rank int, now float64) (parked, permanent bool) {
	if in.plan.KillAt > 0 && in.plan.KillRank == rank && now >= in.plan.KillAt {
		return true, true
	}
	if in.plan.CrashAt > 0 && in.plan.CrashRank == rank && now >= in.plan.CrashAt {
		return true, false
	}
	for _, cs := range in.plan.CrashSchedule {
		if cs.At > 0 && cs.Rank == rank && now >= cs.At {
			return true, cs.Permanent
		}
	}
	return false, false
}

// CrashSpec schedules one rank crash at a virtual time (see
// FaultPlan.CrashSchedule). Permanent marks a kill: the rank never
// respawns, so WithCrashesAfter always keeps the entry armed. The zero
// value injects nothing.
type CrashSpec struct {
	Rank      int
	At        float64
	Permanent bool
}

// Crashes returns every enabled crash of the plan (the legacy
// CrashRank/CrashAt pair, the KillRank/KillAt pair, plus the schedule),
// sorted by time.
func (p *FaultPlan) Crashes() []CrashSpec {
	var out []CrashSpec
	if p.CrashAt > 0 {
		out = append(out, CrashSpec{Rank: p.CrashRank, At: p.CrashAt})
	}
	if p.KillAt > 0 {
		out = append(out, CrashSpec{Rank: p.KillRank, At: p.KillAt, Permanent: true})
	}
	for _, cs := range p.CrashSchedule {
		if cs.At > 0 {
			out = append(out, cs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// WithCrashesAfter returns a copy of the plan keeping only the crashes
// strictly later than t — what remains armed after a recovery rolled the
// pipeline back past the crashes already absorbed. Permanent kills are
// always kept: a dead rank stays dead no matter how far the pipeline
// rolls back, which is what forces the shrink path. The copy's RNG seed
// is left untouched; the caller reseeds per attempt if it wants fresh
// (still deterministic) transport noise.
func (p *FaultPlan) WithCrashesAfter(t float64) *FaultPlan {
	q := *p
	q.CrashRank, q.CrashAt = 0, 0
	q.KillRank, q.KillAt = 0, 0
	q.CrashSchedule = nil
	for _, cs := range p.Crashes() {
		if cs.Permanent || cs.At > t {
			q.CrashSchedule = append(q.CrashSchedule, cs)
		}
	}
	return &q
}

// RandomPlan derives a complete fault plan from one seed, cycling
// through scenario classes so a sweep of consecutive seeds exercises
// every fault type: drop storms, corruption (detected and silent),
// duplicate/latency chaos, degraded NICs, rank stalls, a rank crash,
// and an everything-at-once mix. Used by the chaos harness and the
// -faults flag of the benches.
func RandomPlan(seed int64) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &FaultPlan{Seed: seed}
	switch scenario := seed % 7; scenario {
	case 0: // drop storm — the transport heals everything
		p.DropProb = 0.05 + 0.25*rng.Float64()
	case 1: // link CRC corruption — also healed by retransmit
		p.CorruptProb = 0.05 + 0.25*rng.Float64()
	case 2: // silent put corruption — caught by runtime checksums
		p.SilentCorruptProb = 0.1 + 0.4*rng.Float64()
	case 3: // duplicates and latency spikes
		p.DuplicateProb = 0.05 + 0.2*rng.Float64()
		p.LatencySpikeProb = 0.05 + 0.15*rng.Float64()
		p.LatencySpike = 50e-6 + 500e-6*rng.Float64()
	case 4: // one node's NIC degraded, plus rank stalls
		p.DegradedNodes = map[int]float64{int(seed % 2): 0.1 + 0.4*rng.Float64()}
		p.StallProb = 0.02 + 0.08*rng.Float64()
		p.Stall = 20e-6 + 200e-6*rng.Float64()
	case 5: // permanent rank crash — peers must terminate with diagnostics
		p.CrashRank = int(seed % 5)
		p.CrashAt = 100e-6 + 2e-3*rng.Float64()
	default: // everything at once, gentler rates
		p.DropProb = 0.02 + 0.08*rng.Float64()
		p.CorruptProb = 0.02 + 0.05*rng.Float64()
		p.SilentCorruptProb = 0.05 + 0.15*rng.Float64()
		p.DuplicateProb = 0.02 + 0.08*rng.Float64()
		p.LatencySpikeProb = 0.05 * rng.Float64()
		p.LatencySpike = 100e-6
		p.StallProb = 0.02 * rng.Float64()
		p.Stall = 50e-6
	}
	return p
}

// Scenario names the plan's dominant fault class for reports.
func (p *FaultPlan) Scenario() string {
	var parts []string
	if p.DropProb > 0 {
		parts = append(parts, "drops")
	}
	if p.CorruptProb > 0 {
		parts = append(parts, "corrupt")
	}
	if p.SilentCorruptProb > 0 {
		parts = append(parts, "silent-corrupt")
	}
	if p.DuplicateProb > 0 {
		parts = append(parts, "dups")
	}
	if p.LatencySpikeProb > 0 {
		parts = append(parts, "spikes")
	}
	if p.StallProb > 0 {
		parts = append(parts, "stalls")
	}
	if len(p.DegradedNodes) > 0 {
		parts = append(parts, "degraded-nic")
	}
	if p.CrashAt > 0 {
		parts = append(parts, fmt.Sprintf("crash-rank%d", p.CrashRank))
	}
	if p.KillAt > 0 {
		parts = append(parts, fmt.Sprintf("kill-rank%d", p.KillRank))
	}
	for _, cs := range p.CrashSchedule {
		if cs.At > 0 && cs.Permanent {
			parts = append(parts, fmt.Sprintf("kill-rank%d", cs.Rank))
		} else if cs.At > 0 {
			parts = append(parts, fmt.Sprintf("crash-rank%d", cs.Rank))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// BlockedOp describes one rank stuck in a receive when a run deadlocked.
type BlockedOp struct {
	Rank, Src, Tag int
	Clock          float64
}

// DeadlockError is returned by RunChecked when every live rank is
// blocked with no message able to arrive: the watchdog's structural
// diagnostic, listing each blocked rank's pending operation.
type DeadlockError struct {
	Blocked []BlockedOp
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	b.WriteString("netsim: deadlock — all ranks blocked:")
	for i, op := range e.Blocked {
		if i == 16 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Blocked)-16)
			break
		}
		fmt.Fprintf(&b, "\n  rank %d waits for (src=%d, tag=%d) at t=%.3gs", op.Rank, op.Src, op.Tag, op.Clock)
	}
	return b.String()
}

// RankFailure records one rank body that panicked during a checked run.
type RankFailure struct {
	Rank  int
	Value interface{} // the recovered panic value
}

func (f RankFailure) String() string {
	if err, ok := f.Value.(error); ok {
		return fmt.Sprintf("rank %d: %v", f.Rank, err)
	}
	return fmt.Sprintf("rank %d: panic: %v", f.Rank, f.Value)
}

// RunError aggregates everything that went wrong in a checked run: the
// ranks whose bodies failed (in failure order) and, if the remaining
// ranks could then no longer make progress, the deadlock diagnostic.
type RunError struct {
	Failures []RankFailure
	Deadlock *DeadlockError
}

func (e *RunError) Error() string {
	var parts []string
	for _, f := range e.Failures {
		parts = append(parts, f.String())
	}
	sort.Strings(parts)
	if e.Deadlock != nil {
		parts = append(parts, e.Deadlock.Error())
	}
	return strings.Join(parts, "; ")
}

// Unwrap exposes the first failure that is an error (for errors.As on
// typed runtime faults).
func (e *RunError) Unwrap() error {
	for _, f := range e.Failures {
		if err, ok := f.Value.(error); ok {
			return err
		}
	}
	return nil
}

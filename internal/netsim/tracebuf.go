package netsim

// TraceBuffer is a bounded collector for Config.Tracer: it keeps the
// most recent Cap events in a ring and counts what it had to overwrite,
// so long runs cannot grow trace memory without bound. Use Recorder as
// the Config.Tracer callback and read Events/Dropped after Run.
type TraceBuffer struct {
	cap     int
	events  []TraceEvent
	next    int
	wrapped bool
	total   int64
}

// DefaultTraceCap bounds a TraceBuffer built with capacity <= 0.
const DefaultTraceCap = 1 << 20

// NewTraceBuffer creates a buffer holding at most capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceBuffer{cap: capacity}
}

// Recorder returns the callback to install as Config.Tracer.
func (b *TraceBuffer) Recorder() func(TraceEvent) {
	return b.add
}

func (b *TraceBuffer) add(ev TraceEvent) {
	b.total++
	if len(b.events) < b.cap {
		b.events = append(b.events, ev)
		return
	}
	b.events[b.next] = ev
	b.next++
	if b.next == b.cap {
		b.next = 0
	}
	b.wrapped = true
}

// Events returns the retained events in arrival order (oldest first).
func (b *TraceBuffer) Events() []TraceEvent {
	if !b.wrapped {
		return append([]TraceEvent(nil), b.events...)
	}
	out := make([]TraceEvent, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Total returns how many events were observed in total.
func (b *TraceBuffer) Total() int64 { return b.total }

// Dropped returns how many events were overwritten by the ring.
func (b *TraceBuffer) Dropped() int64 { return b.total - int64(len(b.events)) }

package netsim

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// faultBody is a small all-to-all-ish workload used by the fault tests.
func faultBody(t *testing.T, wantOK bool) func(*Proc) {
	return func(p *Proc) {
		n := p.Size()
		for i := 0; i < n; i++ {
			dst := (p.Rank() + i) % n
			p.Send(dst, i, []byte{byte(dst)}, 4096)
		}
		for i := 0; i < n; i++ {
			src := (p.Rank() - i + n) % n
			pkt := p.Recv(src, i)
			if wantOK && (len(pkt.Payload) != 1 || pkt.Payload[0] != byte(p.Rank())) {
				t.Errorf("rank %d got payload %v from %d", p.Rank(), pkt.Payload, src)
			}
		}
	}
}

func TestFaultsNilIsByteIdentical(t *testing.T) {
	// The acceptance invariant: a nil fault plan must leave virtual
	// times exactly as they were before the fault layer existed — same
	// code path, not just "close".
	cfg := Summit(2)
	base := Run(cfg, faultBody(t, true))
	cfg.Faults = nil
	again := Run(cfg, faultBody(t, true))
	if base.Time != again.Time || !reflect.DeepEqual(base.Clocks, again.Clocks) {
		t.Errorf("results differ with nil fault plan:\n%+v\n%+v", base, again)
	}
	if base.Stats.Faults != (FaultStats{}) {
		t.Errorf("fault counters nonzero without a plan: %+v", base.Stats.Faults)
	}
}

func TestFaultDeterminism(t *testing.T) {
	cfg := Summit(2)
	cfg.Faults = &FaultPlan{Seed: 42, DropProb: 0.2, DuplicateProb: 0.1,
		LatencySpikeProb: 0.1, LatencySpike: 100e-6}
	a := Run(cfg, faultBody(t, true))
	b := Run(cfg, faultBody(t, true))
	if a.Time != b.Time || !reflect.DeepEqual(a.Clocks, b.Clocks) || a.Stats != b.Stats {
		t.Errorf("same seed produced different runs:\n%+v\n%+v", a.Stats.Faults, b.Stats.Faults)
	}
	if a.Stats.Faults.Drops == 0 {
		t.Error("drop storm injected no drops")
	}
}

func TestTransportRetriesHealDrops(t *testing.T) {
	// Moderate drop probability with generous retries: everything is
	// delivered (intact), just later; Retries > 0, Lost == 0.
	cfg := Summit(2)
	cfg.Faults = &FaultPlan{Seed: 7, DropProb: 0.3,
		Retry: RetryPolicy{MaxRetries: 50, RTO: 1e-6, Backoff: 1.5}}
	res := Run(cfg, faultBody(t, true))
	f := res.Stats.Faults
	if f.Retries == 0 {
		t.Error("expected transport retries")
	}
	if f.Lost != 0 {
		t.Errorf("lost %d messages despite generous retry budget", f.Lost)
	}
	if f.RetryDelayS <= 0 {
		t.Error("retries added no delay")
	}
	// And the run is no faster than the fault-free one (retry backoff
	// only ever delays arrivals).
	clean := Run(Summit(2), faultBody(t, true))
	if res.Time < clean.Time {
		t.Errorf("faulted run (%g) faster than clean run (%g)", res.Time, clean.Time)
	}
}

func TestPermanentLossTimesOutWithDeadline(t *testing.T) {
	// DropProb 1 with no retries: the message never arrives; the
	// receiver's watchdog deadline fires instead of hanging.
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 1, DropProb: 1,
		Retry: RetryPolicy{MaxRetries: 1, RTO: 1e-6, Backoff: 2}}
	var timedOut bool
	res, err := RunChecked(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 3, []byte("x"), 1000)
		} else {
			_, ok := p.RecvDeadline(0, 3, 5e-3)
			timedOut = !ok
			if !timedOut {
				t.Error("receive succeeded despite total loss")
			}
			if math.Abs(p.Now()-5e-3) > 1e-12 {
				t.Errorf("clock after timeout = %g, want 5e-3", p.Now())
			}
		}
	})
	if err != nil {
		t.Fatalf("unexpected run error: %v", err)
	}
	if !timedOut {
		t.Error("watchdog deadline never fired")
	}
	if res.Stats.Faults.Lost == 0 {
		t.Error("no permanent loss recorded")
	}
}

func TestRecvDeadlineUnaffectedByHealthyTraffic(t *testing.T) {
	// A deadline far beyond the arrival must not alter timing.
	cfg := tiny()
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 3, []byte("x"), 1_000_000)
		} else {
			pkt, ok := p.RecvDeadline(0, 3, 1.0)
			if !ok {
				t.Fatal("deadline fired on healthy traffic")
			}
			want := 1e-3 + 1e-6
			if math.Abs(pkt.Arrival-want) > 1e-12 {
				t.Errorf("arrival %g, want %g", pkt.Arrival, want)
			}
		}
	})
}

func TestDuplicateDelivery(t *testing.T) {
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 3, DuplicateProb: 1}
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, []byte{42}, 100)
		} else {
			a := p.Recv(0, 9)
			b := p.Recv(0, 9) // the duplicate — same content
			if a.Payload[0] != 42 || b.Payload[0] != 42 {
				t.Errorf("payloads %v %v", a.Payload, b.Payload)
			}
		}
	})
}

func TestSilentCorruptionOnlyHitsLargePuts(t *testing.T) {
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 5, SilentCorruptProb: 1, SilentMinBytes: 64}
	small := []byte{1, 2, 3}
	big := make([]byte, 256)
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendMsg(1, 1, SendOpts{Payload: small, Bytes: len(small)})                  // two-sided: safe
			p.SendMsg(1, 2, SendOpts{Payload: big, Bytes: len(big), Unmatched: true})     // put: mangled
			p.SendMsg(1, 3, SendOpts{Payload: small, Bytes: len(small), Unmatched: true}) // small put: safe
		} else {
			if got := p.Recv(0, 1); !reflect.DeepEqual(got.Payload, small) {
				t.Error("two-sided payload corrupted")
			}
			if got := p.Recv(0, 2); reflect.DeepEqual(got.Payload, big) {
				t.Error("large put survived SilentCorruptProb=1")
			}
			if got := p.Recv(0, 3); !reflect.DeepEqual(got.Payload, small) {
				t.Error("small put corrupted below SilentMinBytes")
			}
		}
	})
	// The original buffer must be untouched (corruption copies).
	for _, b := range big {
		if b != 0 {
			t.Fatal("corrupt() mutated the sender's buffer")
		}
	}
}

func TestCrashRankSurfacesAsDiagnostic(t *testing.T) {
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 9, CrashRank: 1, CrashAt: 1e-9}
	_, err := RunChecked(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 5) // rank 1 dies before sending
		} else {
			p.Elapse(1e-3)
			p.Send(0, 5, nil, 100)
		}
	})
	if err == nil {
		t.Fatal("crash produced no error")
	}
	var dead *DeadlockError
	var re *RunError
	if !errors.As(err, &re) || re.Deadlock == nil {
		t.Fatalf("error %v is not a RunError with deadlock diagnostic", err)
	}
	dead = re.Deadlock
	if len(dead.Blocked) != 1 || dead.Blocked[0].Rank != 0 || dead.Blocked[0].Src != 1 || dead.Blocked[0].Tag != 5 {
		t.Errorf("diagnostic %+v does not name rank 0 waiting on (1, 5)", dead.Blocked)
	}
}

func TestDeadlockDiagnosticNamesBothRanks(t *testing.T) {
	// Satellite: a deliberately mismatched send/recv pair must produce a
	// diagnostic naming both blocked ranks and their pending tags.
	_, err := RunChecked(tiny(), func(p *Proc) {
		// Rank 0 waits on tag 11, rank 1 on tag 22; nobody sends.
		p.Recv(1-p.Rank(), 11*(p.Rank()+1))
	})
	var re *RunError
	if !errors.As(err, &re) || re.Deadlock == nil {
		t.Fatalf("expected deadlock diagnostic, got %v", err)
	}
	msg := err.Error()
	for _, want := range []string{
		"rank 0 waits for (src=1, tag=11)",
		"rank 1 waits for (src=0, tag=22)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestRunCheckedCollectsPanics(t *testing.T) {
	_, err := RunChecked(tiny(), func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	var re *RunError
	if !errors.As(err, &re) || len(re.Failures) != 1 || re.Failures[0].Rank != 1 {
		t.Fatalf("expected one rank-1 failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %q does not carry the panic value", err.Error())
	}
}

func TestDegradedNodeSlowsTransfers(t *testing.T) {
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 11, DegradedNodes: map[int]float64{1: 0.5}}
	res := Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 1_000_000)
		} else {
			pkt := p.Recv(0, 1)
			p.AdvanceTo(pkt.Arrival)
		}
	})
	want := 2e-3 + 1e-6 // half bandwidth doubles the 1 ms serialization
	if math.Abs(res.Time-want) > 1e-9 {
		t.Errorf("degraded transfer time %g, want %g", res.Time, want)
	}
}

func TestStallDelaysSender(t *testing.T) {
	cfg := tiny()
	cfg.Faults = &FaultPlan{Seed: 2, StallProb: 1, Stall: 1e-3}
	var senderClock float64
	Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 1000)
			senderClock = p.Now()
		} else {
			p.Recv(0, 1)
		}
	})
	if senderClock < 1e-3 {
		t.Errorf("sender clock %g shows no stall", senderClock)
	}
}

func TestRandomPlanCoversScenarios(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 21; seed++ {
		p := RandomPlan(seed)
		seen[p.Scenario()] = true
		// Every plan must be runnable without hanging the engine.
		cfg := Summit(2)
		cfg.Faults = p
		_, _ = RunChecked(cfg, func(q *Proc) {
			if q.Rank() == 0 {
				q.Send(1, 0, nil, 1000)
			} else if q.Rank() == 1 {
				_, _ = q.RecvDeadline(0, 0, 10e-3)
			}
		})
	}
	if len(seen) < 5 {
		t.Errorf("21 seeds produced only %d scenario classes: %v", len(seen), seen)
	}
}

// Command alltoallbench regenerates Fig. 3 of the paper: average node
// bandwidth of the all-to-all implementations as the number of GPUs
// grows, at a fixed message size per process pair (80 KB by default).
//
// Usage:
//
//	go run ./cmd/alltoallbench [-msg 81920] [-iters 2] [-gpus 6,12,...] [-algos linear,osc]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exchange"
	"repro/internal/netsim"
	"repro/internal/plot"
)

func main() {
	msg := flag.Int("msg", 80*1024, "message size per process pair in bytes")
	iters := flag.Int("iters", 2, "measured iterations per point")
	gpusFlag := flag.String("gpus", "6,12,24,48,96,192,384,768,1536", "comma-separated GPU counts (multiples of 6)")
	algosFlag := flag.String("algos", "linear,osc", "algorithms: linear,pairwise,bruck,osc,osc-naive")
	doPlot := flag.Bool("plot", false, "render the figure as an ASCII chart")
	flag.Parse()

	gpus, err := parseInts(*gpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alltoallbench:", err)
		os.Exit(1)
	}
	algos := strings.Split(*algosFlag, ",")

	fmt.Printf("# Fig. 3 — average node bandwidth (GB/s), %d KB per pair\n", *msg/1024)
	fmt.Printf("%8s", "GPUs")
	for _, a := range algos {
		fmt.Printf("%14s", a)
	}
	fmt.Println()
	series := make([]plot.Series, len(algos))
	var labels []string
	for i, a := range algos {
		series[i].Name = a
	}
	for _, g := range gpus {
		if g%6 != 0 {
			fmt.Fprintf(os.Stderr, "alltoallbench: skipping %d GPUs (not a multiple of 6)\n", g)
			continue
		}
		fmt.Printf("%8d", g)
		labels = append(labels, fmt.Sprint(g))
		for i, a := range algos {
			bw := exchange.NodeBandwidth(netsim.Summit(g/6), a, *msg, *iters)
			fmt.Printf("%14.2f", bw/1e9)
			series[i].Values = append(series[i].Values, bw/1e9)
		}
		fmt.Println()
	}
	if *doPlot {
		fmt.Println()
		fmt.Print(plot.Chart("node bandwidth (GB/s) vs GPUs", labels, series, 60, 14, false))
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

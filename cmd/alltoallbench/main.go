// Command alltoallbench regenerates Fig. 3 of the paper: average node
// bandwidth of the all-to-all implementations as the number of GPUs
// grows, at a fixed message size per process pair (80 KB by default).
//
// Usage:
//
//	go run ./cmd/alltoallbench [-msg 81920] [-iters 2] [-gpus 6,12,...] [-algos linear,osc]
//	                           [-trace out.json] [-metrics] [-json bench.json]
//
// The osc-comp algorithm runs the compressed one-sided exchange on real
// payloads; its achieved compression ratio is printed after the table.
// -json writes the versioned bench artifact (per-cell node bandwidth,
// achieved compression, trace analysis) that cmd/benchdiff gates
// regressions against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exchange"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/telemetry"
	"repro/internal/plot"
	recov "repro/internal/recover"
	"repro/internal/tune"
)

// tuningRows serializes the tuned cell's decision record with the run's
// measured per-exchange seconds, publishing the decision and the
// predicted-vs-measured gap as metrics on the run's registry.
func tuningRows(cell *tune.Cell, measured float64, m *obs.Metrics) []analyze.TuningRow {
	out := make([]analyze.TuningRow, 0, len(cell.Stages))
	for _, st := range cell.Stages {
		tr := analyze.TuningRow{
			Label: st.Label, Algo: st.Algo, Chunks: st.Chunks, Method: st.Method,
			PredictedS: st.PredictedS, ProbedS: st.ProbedS, Candidates: st.Candidates,
			MeasuredS: measured,
		}
		if st.PredictedS > 0 && measured > 0 {
			tr.Gap = measured / st.PredictedS
		}
		m.Set("tune/"+st.Label+"/predicted_s", st.PredictedS)
		if tr.Gap > 0 {
			m.Set("tune/"+st.Label+"/gap", tr.Gap)
		}
		m.Add("tune/candidates", int64(st.Candidates))
		out = append(out, tr)
	}
	return out
}

// describeChoice formats one tuned stage for the console summary.
func describeChoice(st tune.Choice) string {
	s := st.Algo
	if st.Method != "" {
		s += "/" + st.Method
	}
	if st.Chunks > 0 && st.Algo == string(tune.CompressedOSC) {
		s += fmt.Sprintf("/c%d", st.Chunks)
	}
	return s
}

func main() {
	msg := flag.Int("msg", 80*1024, "message size per process pair in bytes")
	iters := flag.Int("iters", 2, "measured iterations per point")
	gpusFlag := flag.String("gpus", "6,12,24,48,96,192,384,768,1536", "comma-separated GPU counts (multiples of 6)")
	algosFlag := flag.String("algos", "linear,osc", "algorithms: linear,pairwise,bruck,osc,osc-naive,osc-comp")
	doPlot := flag.Bool("plot", false, "render the figure as an ASCII chart")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the last measured cell to this file")
	metricsFlag := flag.Bool("metrics", false, "print the metrics report of the last measured cell")
	jsonFlag := flag.String("json", "", "write the machine-readable bench artifact to this file")
	faultsFlag := flag.Int64("faults", 0, "inject the seeded fault plan netsim.RandomPlan(seed); 0 disables (docs/ROBUSTNESS.md)")
	recoverFlag := flag.Bool("recover", false, "run under the crash-recovery runtime: epoch checkpoints + rollback/respawn on crash verdicts (docs/ROBUSTNESS.md)")
	shrinkFlag := flag.Bool("shrink", false, "with -recover: when a rank's respawn budget is exhausted, shrink onto the survivors instead of giving up (docs/ROBUSTNESS.md)")
	parallelFlag := flag.Bool("parallel", false, "run the simulator's parallel engine (bit-identical results; docs/DETERMINISM.md)")
	autotuneFlag := flag.Bool("autotune", false, "tune the exchange per machine and add a 'tuned' algorithm (docs/TUNING.md)")
	tuneTolFlag := flag.Float64("tunetol", 1e-3, "error budget for the autotuner's compressed candidates")
	tunePlanFlag := flag.String("tuneplan", "", "tune-plan file: written with -autotune, otherwise loaded and replayed")
	tuneProbeFlag := flag.Int("tuneprobe", 2, "probe the best K predicted candidates with short simulation runs (0 = predictor only)")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	// -json artifacts embed the per-stage error-attribution ledger, so
	// force the error tracker on for artifact runs even without -errtrack.
	telCfg := tf.Config()
	if *jsonFlag != "" {
		telCfg.Tracker = true
	}
	tel, err := telemetry.Start(telCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alltoallbench:", err)
		os.Exit(1)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("# telemetry: serving http://%s\n", tel.Addr())
	}

	gpus, err := parseInts(*gpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alltoallbench:", err)
		os.Exit(1)
	}
	algos := strings.Split(*algosFlag, ",")
	// Tuning modes: -autotune computes a plan (and saves it to -tuneplan
	// when given); -tuneplan alone loads a saved plan and replays its
	// decisions. Either adds the "tuned" column to the table.
	var planIn, planOut *tune.Plan
	if *tunePlanFlag != "" && !*autotuneFlag {
		p, err := tune.Load(*tunePlanFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench:", err)
			os.Exit(1)
		}
		planIn = p
	}
	if *autotuneFlag {
		planOut = tune.NewPlan(*tuneTolFlag)
	}
	tuning := *autotuneFlag || planIn != nil
	if tuning {
		algos = append(algos, "tuned")
	}

	fmt.Printf("# Fig. 3 — average node bandwidth (GB/s), %d KB per pair\n", *msg/1024)
	fmt.Printf("%8s", "GPUs")
	for _, a := range algos {
		fmt.Printf("%14s", a)
	}
	fmt.Println()
	series := make([]plot.Series, len(algos))
	var labels []string
	for i, a := range algos {
		series[i].Name = a
	}
	// The artifact embeds trace analyses, so -json records like -trace.
	recording := *traceFlag != "" || *jsonFlag != ""
	artifact := &analyze.Artifact{
		Tool: "alltoallbench",
		Config: map[string]string{
			"msg": fmt.Sprint(*msg), "iters": fmt.Sprint(*iters),
			"gpus": *gpusFlag, "algos": *algosFlag,
		},
	}
	if *faultsFlag != 0 {
		artifact.Config["faults"] = fmt.Sprint(*faultsFlag)
	}
	if *recoverFlag {
		artifact.Config["recover"] = "1"
	}
	if *shrinkFlag {
		// Shrink provenance: rows of this artifact may have finished on a
		// degraded (smaller) topology; benchdiff refuses to compare such
		// rows against full-size baselines.
		artifact.Config["shrink"] = "1"
	}
	if tuning {
		artifact.Config["tunetol"] = fmt.Sprint(*tuneTolFlag)
		if *autotuneFlag {
			artifact.Config["autotune"] = "1"
		}
	}
	// recorders keeps the last measured cell's recorder per algorithm so
	// achieved compression can be reported after the table.
	recorders := make([]*obs.Recorder, len(algos))
	var lastRec *obs.Recorder
	var lastCell string
	for _, g := range gpus {
		if g%6 != 0 {
			fmt.Fprintf(os.Stderr, "alltoallbench: skipping %d GPUs (not a multiple of 6)\n", g)
			continue
		}
		machine := netsim.Summit(g / 6)
		machine.Parallel = *parallelFlag
		if *faultsFlag != 0 {
			machine.Faults = netsim.RandomPlan(*faultsFlag)
		}
		// Resolve this machine's tuned cell: compute it (-autotune) or
		// look it up in the loaded plan. The tuner strips the fault plan
		// itself, so the cell is identical with or without -faults.
		var tunedCell *tune.Cell
		var tunedSpec exchange.Spec
		if tuning {
			if *autotuneFlag {
				cell, terr := tune.Alltoall(machine, *msg,
					tune.Space{Budget: *tuneTolFlag, ProbeTopK: *tuneProbeFlag})
				if terr != nil {
					fmt.Fprintln(os.Stderr, "alltoallbench:", terr)
					os.Exit(1)
				}
				tunedCell = cell
				if _, dup := planOut.Cell(cell.Machine, cell.Shape); !dup {
					planOut.Cells = append(planOut.Cells, *cell)
				}
			} else {
				cell, ok := planIn.Cell(tune.Fingerprint(machine), tune.AlltoallShape(*msg))
				if !ok {
					fmt.Fprintf(os.Stderr, "alltoallbench: %s holds no cell for this machine/shape (%d GPUs)\n", *tunePlanFlag, g)
					os.Exit(1)
				}
				tunedCell = cell
			}
			sp, serr := tunedCell.BenchSpec()
			if serr != nil {
				fmt.Fprintln(os.Stderr, "alltoallbench:", serr)
				os.Exit(1)
			}
			tunedSpec = sp
			fmt.Printf("# tuned @ %d GPUs: %s\n", g, describeChoice(tunedCell.Stages[0]))
		}
		fmt.Printf("%8d", g)
		labels = append(labels, fmt.Sprint(g))
		for i, a := range algos {
			rec := obs.New(obs.Options{Trace: recording, Metrics: true})
			cell := fmt.Sprintf("%s/%dgpus", a, g)
			tel.StartRun(cell)
			tel.Attach(rec)
			spec := exchange.Spec{Algo: a}
			if a == "tuned" {
				spec = tunedSpec
			}
			var bw float64
			if *recoverFlag {
				var out recov.Outcome
				var rerr error
				bw, out, rerr = exchange.NodeBandwidthRecoverableSpec(rec, machine, spec, *msg, *iters,
					recov.Policy{Seed: *faultsFlag, Shrink: *shrinkFlag})
				if rerr != nil {
					fmt.Fprintf(os.Stderr, "alltoallbench: %s: %v\n", cell, rerr)
					os.Exit(1)
				}
				if len(out.Recoveries) > 0 {
					fmt.Fprintf(os.Stderr, "# %s: recovered %d crash(es), MTTR %.3gs\n", cell, len(out.Recoveries), out.MTTRSeconds)
				}
				for _, sh := range out.Shrinks {
					fmt.Fprintf(os.Stderr, "# %s: SHRUNK %d->%d ranks (lost %v) at t=%.3gs — degraded topology, not comparable to full-size rows\n",
						cell, sh.FromSize, sh.ToSize, sh.Dead, sh.DetectT)
				}
			} else {
				bw = exchange.NodeBandwidthSpec(rec, machine, spec, *msg, *iters)
			}
			recorders[i] = rec
			lastRec = rec
			lastCell = fmt.Sprintf("%s @ %d GPUs", a, g)
			fmt.Printf("%14.2f", bw/1e9)
			series[i].Values = append(series[i].Values, bw/1e9)
			if *jsonFlag != "" {
				row := analyze.Row{
					Name: a, GPUs: g, NodeBW: bw,
					Compression: analyze.CompressionRows(rec.Metrics().CompressionStats()),
					Faults:      analyze.FaultRowFrom(rec.Metrics()),
					Errors:      analyze.ErrorRows(tel.Tracker(), cell),
				}
				if a == "tuned" && bw > 0 {
					// Seconds per exchange, inverted back out of the
					// bandwidth the harness reports.
					p := machine.Ranks()
					measured := float64(p) * float64(p) * float64(*msg) / (bw * float64(machine.Nodes))
					row.Tuning = tuningRows(tunedCell, measured, rec.Metrics())
				}
				s := analyze.Summarize(analyze.FromRecorder(rec), 0)
				row.Analysis = &s
				artifact.Machine = rec.Machine()
				artifact.Rows = append(artifact.Rows, row)
			}
		}
		fmt.Println()
	}
	// Achieved (not nominal) compression of the compressed algorithms.
	for i, a := range algos {
		stats := recorders[i].Metrics().CompressionStats()
		if len(stats) == 0 {
			continue
		}
		fmt.Printf("# %s achieved compression:", a)
		for _, s := range stats {
			fmt.Printf(" %s %.2fx (error bound %.2e)", s.Label, s.Ratio(), s.ErrorBound)
		}
		fmt.Println()
	}
	if *metricsFlag && lastRec != nil {
		fmt.Printf("\n# metrics report — %s\n", lastCell)
		lastRec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" && lastRec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench:", err)
			os.Exit(1)
		}
		if err := lastRec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written: %s (%s)\n", *traceFlag, lastCell)
	}
	if *jsonFlag != "" {
		if err := artifact.WriteFile(*jsonFlag); err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# bench artifact written: %s (%d rows)\n", *jsonFlag, len(artifact.Rows))
	}
	if *autotuneFlag && *tunePlanFlag != "" {
		if err := planOut.Save(*tunePlanFlag); err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# tune plan written: %s (%d cells)\n", *tunePlanFlag, len(planOut.Cells))
	}
	if *doPlot {
		fmt.Println()
		fmt.Print(plot.Chart("node bandwidth (GB/s) vs GPUs", labels, series, 60, 14, false))
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "alltoallbench: telemetry:", err)
			os.Exit(1)
		}
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

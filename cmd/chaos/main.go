// Command chaos is the fault-injection harness: it sweeps randomized
// fault plans (drop storms, corruption, duplicate floods, degraded
// NICs, rank crashes — see netsim.RandomPlan) across every exchange
// algorithm and asserts the robustness contract: each run either
//
//   - completes with bit-identical data (transport retries and the
//     self-healing verdict/repair round absorbed the faults), possibly
//     reporting an explicit degradation (repairs, per-peer fallback), or
//   - fails with an explicit, attributed diagnostic (*mpi.FaultError or
//     a netsim deadlock/crash report).
//
// Silent corruption, a panic that is not a typed fault, or a wall-clock
// hang fail the sweep. Every plan is seeded, so any failure reproduces
// with `go run ./cmd/chaos -start <seed> -seeds 1 -v`.
//
// The recover-osc and recover-comp workloads additionally run under the
// crash-recovery runtime (docs/ROBUSTNESS.md): per-epoch checkpoints,
// rollback/respawn on crash verdicts, double-fault and restart-budget
// stratification per seed. `make chaos-recovery` drives them.
//
// The kill-osc and kill-comp workloads are the kill-permanent stratum:
// a seeded permanent rank kill exhausts the respawn budget, and the run
// must either shrink onto the survivors (Policy.Shrink, two thirds of
// the seeds) and finish bit-identically on BOTH simulator engines, or
// give up with the typed *recov.UnrecoverableError (the remaining
// seeds, Shrink off). Each kill cell runs the sequential and parallel
// engines itself and cross-checks their outcomes, so `-parallel` is
// redundant for them.
//
// Usage:
//
//	go run ./cmd/chaos [-seeds 60] [-start 1] [-workloads linear,pairwise,osc,osc-comp,osc-comp16] [-timeout 60s] [-v]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/exchange"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	recov "repro/internal/recover"
)

// msgBytes / msgVals size one pair's payload. Large enough to cross the
// silent-corruption floor (with headers), small enough to sweep many
// seeds quickly.
const (
	msgBytes = 128
	msgVals  = 32
)

// outcome classifies one (seed, workload) run.
type outcome int

const (
	outClean     outcome = iota // completed, bit-identical, no degradation
	outDegraded                 // completed, bit-identical, repairs/fallback reported
	outRecovered                // completed bit-identically after rollback/respawn
	outShrunk                   // completed bit-identically on fewer ranks after an elastic shrink
	outError                    // explicit typed fault diagnostic
	outBad                      // corrupt data, stray panic, or hang: contract violated
)

func (o outcome) String() string {
	return [...]string{"clean", "degraded", "recovered", "shrunk", "error", "BAD"}[o]
}

// report is the thread-safe result sink a workload body writes into.
type report struct {
	mu       sync.Mutex
	mismatch []string
	repairs  int64
	fallback int
}

func (r *report) bad(format string, args ...interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.mismatch) < 8 {
		r.mismatch = append(r.mismatch, fmt.Sprintf(format, args...))
	}
}

func (r *report) degraded(d exchange.Degradation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.repairs += d.Repairs
	r.fallback += len(d.Fallback)
}

// pbyte is the deterministic byte pattern for pair (src, dst).
func pbyte(src, dst, i int) byte { return byte(src*7 + dst*13 + i) }

// pval is the deterministic value pattern for pair (src, dst): small
// integers, exactly representable in every compression method swept, so
// a healthy lossy delivery is still bit-identical to the reference.
func pval(src, dst, i int) float64 { return float64((src*31 + dst*17 + i*5) % 256) }

func checkBytes(rep *report, me int, got [][]byte) {
	for s := range got {
		for i, b := range got[s] {
			if b != pbyte(s, me, i) {
				rep.bad("rank %d from %d byte %d corrupt", me, s, i)
				break
			}
		}
	}
}

func checkVals(rep *report, me int, got [][]float64) {
	for s := range got {
		for i, v := range got[s] {
			if v != pval(s, me, i) {
				rep.bad("rank %d from %d value %d corrupt (%g != %g)", me, s, i, v, pval(s, me, i))
				break
			}
		}
	}
}

func sendBytes(me, p int) [][]byte {
	out := make([][]byte, p)
	for d := 0; d < p; d++ {
		out[d] = make([]byte, msgBytes)
		for i := range out[d] {
			out[d][i] = pbyte(me, d, i)
		}
	}
	return out
}

func sendVals(me, p int) [][]float64 {
	out := make([][]float64, p)
	for d := 0; d < p; d++ {
		out[d] = make([]float64, msgVals)
		for i := range out[d] {
			out[d][i] = pval(me, d, i)
		}
	}
	return out
}

// emitExchange stamps one completed exchange on the live event stream —
// the latency observations the SLO engine's "latency" objectives
// consume. A no-op (one pointer test) when telemetry is off.
func emitExchange(c *mpi.Comm, label string, t0 float64) {
	c.Obs().Emit(obs.Event{
		T: c.Now(), Kind: obs.EventExchange, Label: label, Peer: -1,
		Value: c.Now() - t0,
	})
}

// workloads maps a name to a body exercising one exchange algorithm
// (two iterations, so window reuse and fallback escalation both run).
var workloads = map[string]func(c *mpi.Comm, rep *report){
	"linear": func(c *mpi.Comm, rep *report) {
		for it := 0; it < 2; it++ {
			t0 := c.Now()
			got := exchange.LinearAlltoallv(c, sendBytes(c.Rank(), c.Size()))
			emitExchange(c, "linear", t0)
			checkBytes(rep, c.Rank(), got)
		}
	},
	"pairwise": func(c *mpi.Comm, rep *report) {
		for it := 0; it < 2; it++ {
			t0 := c.Now()
			got := exchange.PairwiseAlltoallv(c, sendBytes(c.Rank(), c.Size()))
			emitExchange(c, "pairwise", t0)
			checkBytes(rep, c.Rank(), got)
		}
	},
	"osc": func(c *mpi.Comm, rep *report) {
		o := exchange.NewOSC(c, exchange.Uniform(msgBytes), true)
		for it := 0; it < 2; it++ {
			t0 := c.Now()
			got := o.Exchange(sendBytes(c.Rank(), c.Size()))
			emitExchange(c, "osc", t0)
			checkBytes(rep, c.Rank(), got)
		}
		rep.degraded(o.Health())
	},
	"osc-comp": func(c *mpi.Comm, rep *report) {
		x := exchange.NewCompressedOSC(c, compress.Lossless{}, gpu.NewStream(gpu.V100(), c), 3, exchange.UniformCount(msgVals))
		x.SetLabel("osc-comp")
		for it := 0; it < 2; it++ {
			t0 := c.Now()
			got := x.Exchange(sendVals(c.Rank(), c.Size()))
			emitExchange(c, "osc-comp", t0)
			checkVals(rep, c.Rank(), got)
		}
		rep.degraded(x.Health())
	},
	"osc-comp16": func(c *mpi.Comm, rep *report) {
		x := exchange.NewCompressedOSC(c, compress.Cast16{}, gpu.NewStream(gpu.V100(), c), 3, exchange.UniformCount(msgVals))
		x.SetLabel("osc-comp16")
		for it := 0; it < 2; it++ {
			t0 := c.Now()
			got := x.Exchange(sendVals(c.Rank(), c.Size()))
			emitExchange(c, "osc-comp16", t0)
			checkVals(rep, c.Rank(), got)
		}
		rep.degraded(x.Health())
	},
}

// recoveryLedger is the exchange state an epoch checkpoint carries
// (the healing ledger of internal/exchange's one-sided algorithms).
type recoveryLedger interface {
	LedgerState() []byte
	RestoreLedger([]byte) error
}

// recoveryEpochs drives iters exchange epochs under the checkpoint
// protocol: epochs covered by the committed cut are skipped (the resume
// epoch restores the healing ledger instead of re-running), the rest
// execute and checkpoint.
func recoveryEpochs(c *mpi.Comm, rk *recov.Rank, iters int, led recoveryLedger, run func()) {
	for epoch := 1; epoch <= iters; epoch++ {
		if resume := rk.Resume(); epoch <= resume {
			if epoch == resume {
				var snap []byte
				var err error
				if rk.Migrating() {
					// The committed snapshot belongs to the pre-shrink
					// membership: fetch this rank's old ledger and remap its
					// per-peer records onto the survivors.
					snap, err = rk.RestorePeer(rk.PrevRank())
					if err == nil {
						snap, err = exchange.RemapLedgerState(snap, rk.OldToNew(), c.Size())
					}
				} else {
					snap, err = rk.Restore()
				}
				if err != nil {
					panic(fmt.Sprintf("chaos: rank %d cannot restore epoch %d: %v", c.Rank(), epoch, err))
				}
				if err := led.RestoreLedger(snap); err != nil {
					panic(fmt.Sprintf("chaos: rank %d epoch %d: %v", c.Rank(), epoch, err))
				}
			}
			continue
		}
		run()
		rk.Checkpoint(epoch, led.LedgerState())
	}
}

// recoveryWorkloads are the crash-recovery sweep cells: the same
// exchange contracts, run under recov.Controller with per-epoch
// checkpoints, so crash seeds exercise rollback/respawn (including
// crash-during-checkpoint, double-fault, and budget-exhaustion paths).
// They are kept out of the default -workloads list and driven by
// `make chaos-recovery`.
var recoveryWorkloads = map[string]func(c *mpi.Comm, rk *recov.Rank, rep *report){
	"recover-osc": func(c *mpi.Comm, rk *recov.Rank, rep *report) {
		o := exchange.NewOSC(c, exchange.Uniform(msgBytes), true)
		recoveryEpochs(c, rk, 4, o, func() {
			t0 := c.Now()
			got := o.Exchange(sendBytes(c.Rank(), c.Size()))
			emitExchange(c, "recover-osc", t0)
			checkBytes(rep, c.Rank(), got)
		})
		rep.degraded(o.Health())
	},
	"recover-comp": func(c *mpi.Comm, rk *recov.Rank, rep *report) {
		x := exchange.NewCompressedOSC(c, compress.Lossless{}, gpu.NewStream(gpu.V100(), c), 3, exchange.UniformCount(msgVals))
		x.SetLabel("recover-comp")
		recoveryEpochs(c, rk, 4, x, func() {
			t0 := c.Now()
			got := x.Exchange(sendVals(c.Rank(), c.Size()))
			emitExchange(c, "recover-comp", t0)
			checkVals(rep, c.Rank(), got)
		})
		rep.degraded(x.Health())
	},
}

// explicit reports whether err is an attributed fault diagnostic rather
// than a stray panic: every collected failure is a typed *mpi.FaultError
// (or the run ended in a deadlock report).
func explicit(err error) bool {
	var re *netsim.RunError
	if !errors.As(err, &re) {
		return false
	}
	if re.Deadlock != nil && len(re.Failures) == 0 {
		return true
	}
	for _, f := range re.Failures {
		if _, ok := f.Value.(*mpi.FaultError); !ok {
			return false
		}
	}
	return len(re.Failures) > 0
}

// runOne executes one (seed, workload) cell under a wall-clock hang
// guard and classifies the outcome.
func runOne(seed int64, name string, body func(*mpi.Comm, *report), timeout time.Duration, verbose, parallel bool, rec *obs.Recorder) (outcome, string) {
	cfg := netsim.Summit(1)
	cfg.Parallel = parallel
	cfg.Faults = netsim.RandomPlan(seed)
	if cfg.Faults.CrashAt > 0 {
		// RandomPlan times crashes for benchmark-scale runs; rescale into
		// this harness's microsecond-scale workloads (deterministically)
		// so crash plans actually kill a rank mid-exchange.
		cfg.Faults.CrashAt = 0.5e-6 * float64(1+seed%40)
	}
	rep := &report{}
	type res struct{ err error }
	ch := make(chan res, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- res{fmt.Errorf("harness panic: %v", r)}
			}
		}()
		_, err := mpi.RunWithChecked(cfg, rec, func(c *mpi.Comm) { body(c, rep) })
		ch <- res{err}
	}()
	var err error
	select {
	case r := <-ch:
		err = r.err
	case <-time.After(timeout):
		return outBad, fmt.Sprintf("wall-clock hang (> %v)", timeout)
	}
	switch {
	case err == nil && len(rep.mismatch) > 0:
		return outBad, "silent corruption: " + strings.Join(rep.mismatch, "; ")
	case err == nil && (rep.repairs > 0 || rep.fallback > 0):
		return outDegraded, fmt.Sprintf("%d repairs, %d fallback links", rep.repairs, rep.fallback)
	case err == nil:
		return outClean, ""
	case explicit(err):
		if verbose {
			return outError, err.Error()
		}
		return outError, firstLine(err.Error())
	default:
		return outBad, "unattributed failure: " + err.Error()
	}
}

// runRecoverOne executes one recovery cell under the crash-recovery
// controller. Crash seeds are stratified deterministically: seeds ≡ 0
// (mod 3) disable the restart budget (the typed-unrecoverable path),
// seeds ≡ 1 arm a second crash inside the first recovery window (the
// double-fault path, aimed with a silent probe run — the probe's
// timeline is identical to the real run up to the second crash), and
// the rest recover normally. The contract extends the sweep's: a crash
// either recovers bit-identically or yields a typed diagnosis.
func runRecoverOne(seed int64, name string, body func(*mpi.Comm, *recov.Rank, *report), timeout time.Duration, verbose, parallel bool, rec *obs.Recorder) (outcome, string) {
	cfg := netsim.Summit(1)
	cfg.Parallel = parallel
	cfg.Faults = netsim.RandomPlan(seed)
	pol := recov.Policy{Seed: seed}
	doubleFault := false
	if cfg.Faults.CrashAt > 0 {
		// Rescale benchmark-scale crash times into this harness's
		// microsecond-scale workloads, as runOne does.
		cfg.Faults.CrashAt = 0.5e-6 * float64(1+seed%40)
		switch seed % 3 {
		case 0:
			pol.MaxRestarts = -1
		case 1:
			doubleFault = true
		}
	}
	rep := &report{}
	type res struct {
		out recov.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- res{err: fmt.Errorf("harness panic: %v", r)}
			}
		}()
		if doubleFault {
			// Probe with the first crash alone (no recorder: its events and
			// counters would double-count) to learn where attempt 2 runs in
			// virtual time, then aim the second crash at its middle.
			ct := &recov.Controller{Policy: pol}
			pout, perr := ct.Run(cfg, nil, func(c *mpi.Comm, rk *recov.Rank) { body(c, rk, &report{}) })
			if perr == nil && len(pout.Recoveries) > 0 {
				second := (pout.Recoveries[0].ResumeT + pout.Result.Time) / 2
				cfg.Faults.CrashSchedule = []netsim.CrashSpec{{Rank: int((seed + 2) % 6), At: second}}
			}
		}
		ct := &recov.Controller{Policy: pol}
		out, err := ct.Run(cfg, rec, func(c *mpi.Comm, rk *recov.Rank) { body(c, rk, rep) })
		ch <- res{out, err}
	}()
	var r res
	select {
	case r = <-ch:
	case <-time.After(timeout):
		return outBad, fmt.Sprintf("wall-clock hang (> %v)", timeout)
	}
	var ue *recov.UnrecoverableError
	switch {
	case r.err == nil && len(rep.mismatch) > 0:
		return outBad, "silent corruption: " + strings.Join(rep.mismatch, "; ")
	case r.err == nil && len(r.out.Recoveries) > 0:
		return outRecovered, fmt.Sprintf("%d rollback(s), MTTR %.3gs, %d repairs, %d fallback links",
			len(r.out.Recoveries), r.out.MTTRSeconds, rep.repairs, rep.fallback)
	case r.err == nil && (rep.repairs > 0 || rep.fallback > 0):
		return outDegraded, fmt.Sprintf("%d repairs, %d fallback links", rep.repairs, rep.fallback)
	case r.err == nil:
		return outClean, ""
	case errors.As(r.err, &ue), explicit(r.err):
		if verbose {
			return outError, r.err.Error()
		}
		return outError, firstLine(r.err.Error())
	default:
		return outBad, "unattributed failure: " + r.err.Error()
	}
}

// shrinkWorkloads are the kill-permanent stratum's cells; the bodies
// are the recovery workloads' own (recoveryEpochs already migrates the
// healing ledger across a membership change).
var shrinkWorkloads = map[string]func(c *mpi.Comm, rk *recov.Rank, rep *report){
	"kill-osc":  recoveryWorkloads["recover-osc"],
	"kill-comp": recoveryWorkloads["recover-comp"],
}

// runShrinkOne executes one kill-permanent cell: a seeded plan kills a
// rank for good (every respawn dies again), so the respawn budget burns
// out. Seeds ≡ 0 (mod 3) run with Shrink off and must surface the typed
// *recov.UnrecoverableError; the rest shrink onto the survivors and
// must finish bit-identically. Every cell runs on BOTH engines and
// cross-checks the outcomes (times, shrink records, survivors), so the
// determinism contract is asserted per seed rather than per sweep.
func runShrinkOne(seed int64, name string, body func(*mpi.Comm, *recov.Rank, *report), timeout time.Duration, verbose bool, rec *obs.Recorder) (outcome, string) {
	pol := recov.Policy{Seed: seed, MaxRestarts: 1, Shrink: seed%3 != 0}
	type res struct {
		out recov.Outcome
		err error
		rep *report
	}
	runEngine := func(par bool, r *obs.Recorder) res {
		cfg := netsim.Summit(1)
		cfg.Parallel = par
		// A pure permanent-kill plan, timed like runOne's crash rescale so
		// roughly half the seeds kill mid-sweep (the rest finish first and
		// classify clean — the kill never fires).
		cfg.Faults = &netsim.FaultPlan{Seed: seed, KillRank: int(seed % 6), KillAt: 0.5e-6 * float64(1+seed%40)}
		rep := &report{}
		ct := &recov.Controller{Policy: pol}
		out, err := ct.Run(cfg, r, func(c *mpi.Comm, rk *recov.Rank) { body(c, rk, rep) })
		return res{out, err, rep}
	}
	ch := make(chan [2]res, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- [2]res{{err: fmt.Errorf("harness panic: %v", r)}, {err: fmt.Errorf("harness panic: %v", r)}}
			}
		}()
		seq := runEngine(false, rec) // only one engine feeds the recorder
		par := runEngine(true, nil)
		ch <- [2]res{seq, par}
	}()
	var seq, par res
	select {
	case r := <-ch:
		seq, par = r[0], r[1]
	case <-time.After(timeout):
		return outBad, fmt.Sprintf("wall-clock hang (> %v)", timeout)
	}
	// Engine equivalence first: identical success/failure, virtual time,
	// shrink records, and final membership.
	if (seq.err == nil) != (par.err == nil) {
		return outBad, fmt.Sprintf("engines disagree: sequential err=%v, parallel err=%v", seq.err, par.err)
	}
	if seq.err == nil {
		if seq.out.Result.Time != par.out.Result.Time {
			return outBad, fmt.Sprintf("engines disagree on time: %.9g != %.9g", seq.out.Result.Time, par.out.Result.Time)
		}
		if fmt.Sprintf("%+v", seq.out.Shrinks) != fmt.Sprintf("%+v", par.out.Shrinks) ||
			fmt.Sprintf("%v", seq.out.Survivors) != fmt.Sprintf("%v", par.out.Survivors) {
			return outBad, fmt.Sprintf("engines disagree on shrink history: %+v/%v != %+v/%v",
				seq.out.Shrinks, seq.out.Survivors, par.out.Shrinks, par.out.Survivors)
		}
	}
	var ue *recov.UnrecoverableError
	switch {
	case seq.err == nil && len(seq.rep.mismatch) > 0:
		return outBad, "silent corruption: " + strings.Join(seq.rep.mismatch, "; ")
	case seq.err == nil && len(seq.out.Shrinks) > 0:
		sh := seq.out.Shrinks[len(seq.out.Shrinks)-1]
		return outShrunk, fmt.Sprintf("%d->%d ranks (lost %v), MTTR %.3gs, %d repairs",
			seq.out.Shrinks[0].FromSize, sh.ToSize, sh.Dead, seq.out.MTTRSeconds, seq.rep.repairs)
	case seq.err == nil && len(seq.out.Recoveries) > 0:
		return outRecovered, fmt.Sprintf("%d rollback(s), MTTR %.3gs", len(seq.out.Recoveries), seq.out.MTTRSeconds)
	case seq.err == nil:
		return outClean, ""
	case errors.As(seq.err, &ue):
		if pol.Shrink {
			// With Shrink armed a lone permanent kill is survivable: giving
			// up is a contract violation, not an explicit diagnostic.
			return outBad, "shrink-enabled run gave up: " + firstLine(seq.err.Error())
		}
		if verbose {
			return outError, seq.err.Error()
		}
		return outError, firstLine(seq.err.Error())
	case explicit(seq.err):
		if verbose {
			return outError, seq.err.Error()
		}
		return outError, firstLine(seq.err.Error())
	default:
		return outBad, "unattributed failure: " + seq.err.Error()
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}

func main() {
	seeds := flag.Int("seeds", 60, "number of fault plans to sweep")
	start := flag.Int64("start", 1, "first seed (plans are deterministic per seed)")
	workloadsFlag := flag.String("workloads", "linear,pairwise,osc,osc-comp,osc-comp16", "exchange workloads to sweep (also: recover-osc,recover-comp — crash-recovery cells; kill-osc,kill-comp — permanent-kill elastic-shrink cells)")
	timeout := flag.Duration("timeout", 60*time.Second, "wall-clock hang guard per run")
	verbose := flag.Bool("v", false, "print every cell, not just summaries and violations")
	parallel := flag.Bool("parallel", false, "run the simulator's parallel engine (verdicts are bit-identical; docs/DETERMINISM.md)")
	scrape := flag.String("scrape", "", "with -serve: self-scrape /metrics mid-sweep into this file")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	tel, err := tf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("# telemetry: serving http://%s (/metrics /healthz /slo /events /debug/pprof)\n", tel.Addr())
	}
	var rec *obs.Recorder
	if tel.Enabled() {
		// One recorder for the whole soak: counters accumulate across
		// cells, and every cell's events land in the same stream.
		rec = obs.New(obs.Options{Metrics: true})
		tel.Attach(rec)
	}

	var names []string
	for _, n := range strings.Split(*workloadsFlag, ",") {
		n = strings.TrimSpace(n)
		_, plain := workloads[n]
		_, recoverable := recoveryWorkloads[n]
		_, shrinkable := shrinkWorkloads[n]
		if !plain && !recoverable && !shrinkable {
			fmt.Fprintf(os.Stderr, "chaos: unknown workload %q\n", n)
			os.Exit(2)
		}
		names = append(names, n)
	}

	counts := map[string]map[outcome]int{}
	scenarios := map[string]int{}
	bad := 0
	for s := int64(0); s < int64(*seeds); s++ {
		seed := *start + s
		scenario := netsim.RandomPlan(seed).Scenario()
		scenarios[scenario]++
		for _, name := range names {
			tel.StartRun(fmt.Sprintf("seed%d/%s", seed, name))
			var out outcome
			var detail string
			if body, ok := workloads[name]; ok {
				out, detail = runOne(seed, name, body, *timeout, *verbose, *parallel, rec)
			} else if body, ok := shrinkWorkloads[name]; ok {
				out, detail = runShrinkOne(seed, name, body, *timeout, *verbose, rec)
			} else {
				out, detail = runRecoverOne(seed, name, recoveryWorkloads[name], *timeout, *verbose, *parallel, rec)
			}
			if counts[name] == nil {
				counts[name] = map[outcome]int{}
			}
			counts[name][out]++
			if out == outBad {
				bad++
				fmt.Printf("BAD  seed=%-4d %-10s %-12s %s\n", seed, name, scenario, detail)
			} else if *verbose {
				fmt.Printf("%-4s seed=%-4d %-10s %-12s %s\n", out, seed, name, scenario, detail)
			}
		}
		if *scrape != "" && s == int64(*seeds/2) {
			// A mid-soak self-scrape: the exposition the acceptance check
			// and `make telemetry-demo` lint.
			if err := tel.ScrapeTo(*scrape); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: scrape: %v\n", err)
				os.Exit(2)
			}
		}
	}

	fmt.Printf("# chaos sweep: %d seeds x %d workloads (seeds %d..%d)\n",
		*seeds, len(names), *start, *start+int64(*seeds)-1)
	var kinds []string
	for k := range scenarios {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("# scenarios:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, scenarios[k])
	}
	fmt.Println()
	fmt.Printf("%-12s %8s %10s %10s %8s %8s %6s\n", "workload", "clean", "degraded", "recovered", "shrunk", "error", "bad")
	for _, name := range names {
		c := counts[name]
		fmt.Printf("%-12s %8d %10d %10d %8d %8d %6d\n", name, c[outClean], c[outDegraded], c[outRecovered], c[outShrunk], c[outError], c[outBad])
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: telemetry: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Printf("chaos: %d contract violations\n", bad)
		os.Exit(1)
	}
	fmt.Println("chaos: all runs completed bit-identically or failed with an explicit diagnostic")
}

// Command tracetool analyzes a saved trace (the Chrome-trace JSON that
// every driver writes with -trace): it extracts the critical path
// through the rank-span/wire-event dependency graph, decomposes it by
// phase and link, reports per-resource utilization timelines (NICs,
// node buses, GPU streams), and measures compression/communication
// overlap efficiency.
//
// Usage:
//
//	go run ./cmd/tracetool [-bins 50] [-json] trace.json
//
// -json emits the summary as machine-readable JSON instead of the text
// report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/analyze"
)

func main() {
	bins := flag.Int("bins", 50, "utilization timeline bins")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [-bins N] [-json] trace.json")
		os.Exit(2)
	}

	t, err := analyze.LoadChromeTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
	s := analyze.Summarize(t, *bins)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, "tracetool:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# %s\n", flag.Arg(0))
	s.WriteText(os.Stdout)
}

// Command fftbench regenerates Fig. 4 of the paper: strong scaling of
// the distributed 3-D FFT, in Gflop/s (left) and speedup over the FP64
// baseline (right), for the four configurations of the paper:
//
//	fp64     — FP64 pipeline, classical MPI_Alltoallv (solid blue)
//	fp32     — FP32 pipeline, classical MPI_Alltoallv (solid orange)
//	fp64-32  — FP64 compute, FP64→FP32 compressed OSC exchange
//	fp64-16  — FP64 compute, FP64→FP16 compressed OSC exchange
//
// The paper ran 1024³ on up to 1536 GPUs; the default here is 128³ on
// the same GPU counts (see EXPERIMENTS.md for the scale discussion).
//
// Usage:
//
//	go run ./cmd/fftbench [-n 128] [-gpus 12,24,...] [-iters 1] [-configs fp64,fp32,fp64-32,fp64-16]
//	                      [-trace out.json] [-metrics]
//
// -trace writes a Chrome-trace JSON (chrome://tracing / Perfetto) of
// the last measured cell; -metrics prints its phase-breakdown report.
// Compressed configs always report their achieved (not just nominal)
// compression ratio per reshape after the table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/plot"
)

type config struct {
	name string
	run  func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, simScale int) core.Result
}

func configByName(name string) (config, bool) {
	switch name {
	case "fp64":
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendAlltoallv, SimScale: ss}, iters, false)
		}}, true
	case "fp32":
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex64](rec, cfg, n, core.Options{Backend: core.BackendAlltoallv, SimScale: ss}, iters, false)
		}}, true
	case "fp64-32":
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.Cast32{}, SimScale: ss}, iters, false)
		}}, true
	case "fp64-16":
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.Cast16{}, SimScale: ss}, iters, false)
		}}, true
	case "fp64-bf16":
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.CastBF16{}, SimScale: ss}, iters, false)
		}}, true
	case "fp64-32-2s":
		// Compression over the two-sided transport (ablation).
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendCompressedTwoSided, Method: compress.Cast32{}, SimScale: ss}, iters, false)
		}}, true
	case "osc":
		// Uncompressed one-sided exchange (isolates the OSC gain).
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendOSC, SimScale: ss}, iters, false)
		}}, true
	case "fp64-pencil":
		// Reduced-reshape configuration (pencil-shaped input/output).
		return config{name, func(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, ss int) core.Result {
			return core.MeasureWith[complex128](rec, cfg, n, core.Options{Backend: core.BackendAlltoallv, SimScale: ss, PencilIO: true}, iters, false)
		}}, true
	}
	return config{}, false
}

func main() {
	nFlag := flag.Int("n", 128, "cubic data size per dimension")
	simFlag := flag.Int("sim", 1024, "simulated problem size per dimension (time plane; must be a multiple of -n)")
	gpusFlag := flag.String("gpus", "12,24,48,96,192,384,768,1536", "comma-separated GPU counts (multiples of 6)")
	iters := flag.Int("iters", 1, "measured iterations per point")
	configsFlag := flag.String("configs", "fp64,fp32,fp64-32,fp64-16", "configurations")
	doPlot := flag.Bool("plot", false, "render the figure as an ASCII chart")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the last measured cell to this file")
	metricsFlag := flag.Bool("metrics", false, "print the phase-breakdown/metrics report of the last measured cell")
	flag.Parse()

	n := [3]int{*nFlag, *nFlag, *nFlag}
	if *simFlag%*nFlag != 0 {
		fmt.Fprintln(os.Stderr, "fftbench: -sim must be a multiple of -n")
		os.Exit(1)
	}
	simScale := *simFlag / *nFlag
	var configs []config
	for _, name := range strings.Split(*configsFlag, ",") {
		c, ok := configByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "fftbench: unknown config %q\n", name)
			os.Exit(1)
		}
		configs = append(configs, c)
	}

	fmt.Printf("# Fig. 4 — strong scaling, %d^3 simulated problem (%d^3 data)\n", *simFlag, *nFlag)
	fmt.Printf("%8s", "GPUs")
	for _, c := range configs {
		fmt.Printf("%12s", c.name+" GF/s")
	}
	for _, c := range configs {
		fmt.Printf("%12s", c.name+" spd")
	}
	fmt.Println()

	series := make([]plot.Series, len(configs))
	for i, c := range configs {
		series[i].Name = c.name
	}
	var labels []string
	// One recorder per (config, GPU-count) cell; recorders keeps the last
	// measured row's recorder per config for the post-table summaries.
	recorders := make([]*obs.Recorder, len(configs))
	var lastRec *obs.Recorder
	var lastCell string
	for _, gs := range strings.Split(*gpusFlag, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(gs))
		if err != nil || g%6 != 0 {
			fmt.Fprintf(os.Stderr, "fftbench: skipping invalid GPU count %q\n", gs)
			continue
		}
		machine := netsim.Summit(g / 6)
		gflops := make([]float64, len(configs))
		for i, c := range configs {
			rec := obs.New(obs.Options{Trace: *traceFlag != "", Metrics: true})
			gflops[i] = c.run(rec, machine, n, *iters, simScale).Gflops
			recorders[i] = rec
			lastRec = rec
			lastCell = fmt.Sprintf("%s @ %d GPUs", c.name, g)
		}
		fmt.Printf("%8d", g)
		labels = append(labels, fmt.Sprint(g))
		for i, gf := range gflops {
			fmt.Printf("%12.1f", gf)
			series[i].Values = append(series[i].Values, gf)
		}
		base := gflops[0]
		for _, gf := range gflops {
			fmt.Printf("%12.2f", gf/base)
		}
		fmt.Println()
	}
	// Achieved (not nominal) compression per reshape, from the metrics of
	// each config's last measured row.
	for i, c := range configs {
		stats := recorders[i].Metrics().CompressionStats()
		if len(stats) == 0 {
			continue
		}
		fmt.Printf("# %s achieved compression:", c.name)
		for _, s := range stats {
			fmt.Printf(" %s %.2fx", s.Label, s.Ratio())
		}
		fmt.Println()
	}

	if *metricsFlag && lastRec != nil {
		fmt.Printf("\n# metrics report — %s\n", lastCell)
		lastRec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" && lastRec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		if err := lastRec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written: %s (%s) — open in chrome://tracing or ui.perfetto.dev\n", *traceFlag, lastCell)
	}
	if *doPlot {
		fmt.Println()
		fmt.Print(plot.Chart("Gflop/s vs GPUs (log scale)", labels, series, 60, 14, true))
	}
}

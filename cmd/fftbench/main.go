// Command fftbench regenerates Fig. 4 of the paper: strong scaling of
// the distributed 3-D FFT, in Gflop/s (left) and speedup over the FP64
// baseline (right), for the four configurations of the paper:
//
//	fp64     — FP64 pipeline, classical MPI_Alltoallv (solid blue)
//	fp32     — FP32 pipeline, classical MPI_Alltoallv (solid orange)
//	fp64-32  — FP64 compute, FP64→FP32 compressed OSC exchange
//	fp64-16  — FP64 compute, FP64→FP16 compressed OSC exchange
//
// The paper ran 1024³ on up to 1536 GPUs; the default here is 128³ on
// the same GPU counts (see EXPERIMENTS.md for the scale discussion).
//
// Usage:
//
//	go run ./cmd/fftbench [-n 128] [-gpus 12,24,...] [-iters 1] [-configs fp64,fp32,fp64-32,fp64-16]
//	                      [-trace out.json] [-metrics] [-json bench.json]
//
// -trace writes a Chrome-trace JSON (chrome://tracing / Perfetto) of
// the last measured cell; -metrics prints its phase-breakdown report;
// -json writes the versioned bench artifact (every cell's virtual-time
// results, achieved compression, model-vs-measured exchange deltas, and
// trace analysis) that cmd/benchdiff gates regressions against.
// Compressed configs always report their achieved (not just nominal)
// compression ratio per reshape after the table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/telemetry"
	"repro/internal/plot"
	recov "repro/internal/recover"
	"repro/internal/tune"
)

// config pairs a named pipeline configuration with the options that
// build it. fp32 selects the complex64 pipeline (8-byte elements on the
// wire instead of 16), which is what the cost model needs to know too.
type config struct {
	name string
	opts core.Options
	fp32 bool
}

func (c config) elemBytes() int {
	if c.fp32 {
		return 8
	}
	return 16
}

func (c config) run(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, simScale int) core.Result {
	opts := c.opts
	opts.SimScale = simScale
	if c.fp32 {
		return core.MeasureWith[complex64](rec, cfg, n, opts, iters, false)
	}
	return core.MeasureWith[complex128](rec, cfg, n, opts, iters, false)
}

// runRecoverable is run under the crash-recovery runtime: the plan
// checkpoints after every reshape and absorbs watchdog crash verdicts
// by rolling back and respawning (docs/ROBUSTNESS.md).
func (c config) runRecoverable(rec *obs.Recorder, cfg netsim.Config, n [3]int, iters, simScale int, pol recov.Policy) (core.Result, recov.Outcome, error) {
	opts := c.opts
	opts.SimScale = simScale
	if c.fp32 {
		return core.MeasureRecoverable[complex64](rec, cfg, n, opts, iters, false, pol)
	}
	return core.MeasureRecoverable[complex128](rec, cfg, n, opts, iters, false, pol)
}

func configByName(name string) (config, bool) {
	switch name {
	case "fp64":
		return config{name: name, opts: core.Options{Backend: core.BackendAlltoallv}}, true
	case "fp32":
		return config{name: name, opts: core.Options{Backend: core.BackendAlltoallv}, fp32: true}, true
	case "fp64-32":
		return config{name: name, opts: core.Options{Backend: core.BackendCompressed, Method: compress.Cast32{}}}, true
	case "fp64-16":
		return config{name: name, opts: core.Options{Backend: core.BackendCompressed, Method: compress.Cast16{}}}, true
	case "fp64-bf16":
		return config{name: name, opts: core.Options{Backend: core.BackendCompressed, Method: compress.CastBF16{}}}, true
	case "fp64-32-2s":
		// Compression over the two-sided transport (ablation).
		return config{name: name, opts: core.Options{Backend: core.BackendCompressedTwoSided, Method: compress.Cast32{}}}, true
	case "osc":
		// Uncompressed one-sided exchange (isolates the OSC gain).
		return config{name: name, opts: core.Options{Backend: core.BackendOSC}}, true
	case "fp64-pencil":
		// Reduced-reshape configuration (pencil-shaped input/output).
		return config{name: name, opts: core.Options{Backend: core.BackendAlltoallv, PencilIO: true}}, true
	}
	return config{}, false
}

// tuningRows pairs each tuned stage's decision record with the run's
// measured exchange-time histogram, and publishes the decision and the
// predicted-vs-measured gap as metrics on the run's recorder.
func tuningRows(cell *tune.Cell, rec *obs.Recorder) []analyze.TuningRow {
	out := make([]analyze.TuningRow, 0, len(cell.Stages))
	for _, st := range cell.Stages {
		tr := analyze.TuningRow{
			Label: st.Label, Algo: st.Algo, Chunks: st.Chunks, Method: st.Method,
			PredictedS: st.PredictedS, ProbedS: st.ProbedS, Candidates: st.Candidates,
		}
		if h, ok := rec.Metrics().Hist("exchange/" + st.Label + "/time_s"); ok && h.Count > 0 {
			tr.MeasuredS = h.Mean()
			if st.PredictedS > 0 {
				tr.Gap = tr.MeasuredS / st.PredictedS
			}
		}
		rec.Metrics().Set("tune/"+st.Label+"/predicted_s", st.PredictedS)
		if tr.Gap > 0 {
			rec.Metrics().Set("tune/"+st.Label+"/gap", tr.Gap)
		}
		rec.Metrics().Add("tune/candidates", int64(st.Candidates))
		out = append(out, tr)
	}
	return out
}

// describeChoice formats one tuned stage for the console summary.
func describeChoice(st tune.Choice) string {
	s := st.Algo
	if st.Method != "" {
		s += "/" + st.Method
	}
	if st.Chunks > 0 && st.Algo == string(tune.CompressedOSC) {
		s += fmt.Sprintf("/c%d", st.Chunks)
	}
	return s
}

// modelDeltas pairs the cost model's per-reshape prediction with the
// measured exchange-time histograms of the run.
func modelDeltas(rec *obs.Recorder, machine netsim.Config, n [3]int, c config, simScale int) []analyze.ModelDelta {
	opts := c.opts
	opts.SimScale = simScale
	var out []analyze.ModelDelta
	for _, est := range core.PredictExchanges(machine, n, opts, c.elemBytes()) {
		h, ok := rec.Metrics().Hist("exchange/" + est.Label + "/time_s")
		if !ok || h.Count == 0 || est.Predicted <= 0 {
			continue
		}
		d := analyze.ModelDelta{Label: est.Label, Measured: h.Mean(), Predicted: est.Predicted}
		d.Ratio = d.Measured / d.Predicted
		out = append(out, d)
	}
	return out
}

func main() {
	nFlag := flag.Int("n", 128, "cubic data size per dimension")
	simFlag := flag.Int("sim", 1024, "simulated problem size per dimension (time plane; must be a multiple of -n)")
	gpusFlag := flag.String("gpus", "12,24,48,96,192,384,768,1536", "comma-separated GPU counts (multiples of 6)")
	iters := flag.Int("iters", 1, "measured iterations per point")
	configsFlag := flag.String("configs", "fp64,fp32,fp64-32,fp64-16", "configurations")
	doPlot := flag.Bool("plot", false, "render the figure as an ASCII chart")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the last measured cell to this file")
	metricsFlag := flag.Bool("metrics", false, "print the phase-breakdown/metrics report of the last measured cell")
	jsonFlag := flag.String("json", "", "write the machine-readable bench artifact to this file")
	faultsFlag := flag.Int64("faults", 0, "inject the seeded fault plan netsim.RandomPlan(seed); 0 disables (docs/ROBUSTNESS.md)")
	recoverFlag := flag.Bool("recover", false, "run under the crash-recovery runtime: epoch checkpoints + rollback/respawn on crash verdicts (docs/ROBUSTNESS.md)")
	shrinkFlag := flag.Bool("shrink", false, "with -recover: when a rank's respawn budget is exhausted, shrink onto the survivors instead of giving up (docs/ROBUSTNESS.md)")
	parallelFlag := flag.Bool("parallel", false, "run the simulator's parallel engine (bit-identical results; docs/DETERMINISM.md)")
	autotuneFlag := flag.Bool("autotune", false, "tune the exchange configuration per machine and add a 'tuned' config (docs/TUNING.md)")
	tuneTolFlag := flag.Float64("tunetol", 1e-3, "per-stage error budget for the autotuner's compressed candidates")
	tunePlanFlag := flag.String("tuneplan", "", "tune-plan file: written with -autotune, otherwise loaded and replayed")
	tuneProbeFlag := flag.Int("tuneprobe", 2, "probe the best K predicted candidates with short simulation runs (0 = predictor only)")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	// -json artifacts embed the per-stage error-attribution ledger, so
	// force the error tracker on for artifact runs even without -errtrack.
	telCfg := tf.Config()
	if *jsonFlag != "" {
		telCfg.Tracker = true
	}
	tel, err := telemetry.Start(telCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftbench:", err)
		os.Exit(1)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("# telemetry: serving http://%s\n", tel.Addr())
	}

	n := [3]int{*nFlag, *nFlag, *nFlag}
	if *simFlag%*nFlag != 0 {
		fmt.Fprintln(os.Stderr, "fftbench: -sim must be a multiple of -n")
		os.Exit(1)
	}
	simScale := *simFlag / *nFlag
	var configs []config
	for _, name := range strings.Split(*configsFlag, ",") {
		c, ok := configByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "fftbench: unknown config %q\n", name)
			os.Exit(1)
		}
		configs = append(configs, c)
	}
	// Tuning modes: -autotune computes a plan (and saves it to -tuneplan
	// when given); -tuneplan alone loads a saved plan and replays its
	// decisions. Either adds the "tuned" configuration to the table.
	var planIn, planOut *tune.Plan
	if *tunePlanFlag != "" && !*autotuneFlag {
		p, err := tune.Load(*tunePlanFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		planIn = p
	}
	if *autotuneFlag {
		planOut = tune.NewPlan(*tuneTolFlag)
	}
	tuning := *autotuneFlag || planIn != nil
	if tuning {
		configs = append(configs, config{name: "tuned"})
	}
	// The artifact embeds trace analyses, so -json records like -trace.
	recording := *traceFlag != "" || *jsonFlag != ""

	fmt.Printf("# Fig. 4 — strong scaling, %d^3 simulated problem (%d^3 data)\n", *simFlag, *nFlag)
	fmt.Printf("%8s", "GPUs")
	for _, c := range configs {
		fmt.Printf("%12s", c.name+" GF/s")
	}
	for _, c := range configs {
		fmt.Printf("%12s", c.name+" spd")
	}
	fmt.Println()

	series := make([]plot.Series, len(configs))
	for i, c := range configs {
		series[i].Name = c.name
	}
	var labels []string
	artifact := &analyze.Artifact{
		Tool: "fftbench",
		Config: map[string]string{
			"n": fmt.Sprint(*nFlag), "sim": fmt.Sprint(*simFlag),
			"gpus": *gpusFlag, "iters": fmt.Sprint(*iters), "configs": *configsFlag,
		},
	}
	if *faultsFlag != 0 {
		artifact.Config["faults"] = fmt.Sprint(*faultsFlag)
	}
	if *recoverFlag {
		artifact.Config["recover"] = "1"
	}
	if *shrinkFlag {
		// Shrink provenance: rows of this artifact may have finished on a
		// degraded (smaller) topology; benchdiff refuses to compare such
		// rows against full-size baselines.
		artifact.Config["shrink"] = "1"
	}
	if tuning {
		artifact.Config["tunetol"] = fmt.Sprint(*tuneTolFlag)
		if *autotuneFlag {
			artifact.Config["autotune"] = "1"
		}
	}
	// One recorder per (config, GPU-count) cell; recorders keeps the last
	// measured row's recorder per config for the post-table summaries.
	recorders := make([]*obs.Recorder, len(configs))
	var lastRec *obs.Recorder
	var lastCell string
	for _, gs := range strings.Split(*gpusFlag, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(gs))
		if err != nil || g%6 != 0 {
			fmt.Fprintf(os.Stderr, "fftbench: skipping invalid GPU count %q\n", gs)
			continue
		}
		machine := netsim.Summit(g / 6)
		machine.Parallel = *parallelFlag
		if *faultsFlag != 0 {
			machine.Faults = netsim.RandomPlan(*faultsFlag)
		}
		// Resolve this machine's tuned cell: compute it (-autotune) or
		// look it up in the loaded plan. The tuner strips the fault plan
		// itself, so the cell is identical with or without -faults.
		var tunedCell *tune.Cell
		if tuning {
			baseOpts := core.Options{SimScale: simScale}
			if *autotuneFlag {
				cell, terr := tune.FFT[complex128](machine, n, baseOpts,
					tune.Space{Budget: *tuneTolFlag, ProbeTopK: *tuneProbeFlag})
				if terr != nil {
					fmt.Fprintln(os.Stderr, "fftbench:", terr)
					os.Exit(1)
				}
				tunedCell = cell
				if _, dup := planOut.Cell(cell.Machine, cell.Shape); !dup {
					planOut.Cells = append(planOut.Cells, *cell)
				}
			} else {
				cell, ok := planIn.Cell(tune.Fingerprint(machine), tune.FFTShape(n, simScale, false, false))
				if !ok {
					fmt.Fprintf(os.Stderr, "fftbench: %s holds no cell for this machine/shape (%d GPUs)\n", *tunePlanFlag, g)
					os.Exit(1)
				}
				tunedCell = cell
			}
			fmt.Printf("# tuned @ %d GPUs:", g)
			for _, st := range tunedCell.Stages {
				fmt.Printf(" %s=%s", st.Label, describeChoice(st))
			}
			fmt.Println()
		}
		gflops := make([]float64, len(configs))
		for i, c := range configs {
			if c.name == "tuned" {
				c.opts = core.Options{Tune: tunedCell}
			}
			rec := obs.New(obs.Options{Trace: recording, Metrics: true})
			cell := fmt.Sprintf("%s/%dgpus", c.name, g)
			tel.StartRun(cell)
			tel.Attach(rec)
			var res core.Result
			if *recoverFlag {
				var out recov.Outcome
				var rerr error
				res, out, rerr = c.runRecoverable(rec, machine, n, *iters, simScale,
					recov.Policy{Seed: *faultsFlag, Shrink: *shrinkFlag})
				if rerr != nil {
					fmt.Fprintf(os.Stderr, "fftbench: %s: %v\n", cell, rerr)
					os.Exit(1)
				}
				if len(out.Recoveries) > 0 {
					fmt.Fprintf(os.Stderr, "# %s: recovered %d crash(es), MTTR %.3gs\n", cell, len(out.Recoveries), out.MTTRSeconds)
				}
				for _, sh := range out.Shrinks {
					fmt.Fprintf(os.Stderr, "# %s: SHRUNK %d->%d ranks (lost %v) at t=%.3gs — degraded topology, not comparable to full-size rows\n",
						cell, sh.FromSize, sh.ToSize, sh.Dead, sh.DetectT)
				}
			} else {
				res = c.run(rec, machine, n, *iters, simScale)
			}
			gflops[i] = res.Gflops
			recorders[i] = rec
			lastRec = rec
			lastCell = fmt.Sprintf("%s @ %d GPUs", c.name, g)
			if *jsonFlag != "" {
				prec := 64
				if c.fp32 {
					prec = 32
				}
				row := analyze.Row{
					Name: c.name, GPUs: g, Precision: prec,
					Seconds: res.ForwardTime, Gflops: res.Gflops,
					Compression: analyze.CompressionRows(rec.Metrics().CompressionStats()),
					Faults:      analyze.FaultRowFrom(rec.Metrics()),
					Errors:      analyze.ErrorRows(tel.Tracker(), cell),
				}
				if c.name == "tuned" {
					// Tuned rows carry the decision record instead of the
					// fixed-config model deltas (the cost model is keyed on
					// a single backend, which a tuned plan need not have).
					row.Tuning = tuningRows(tunedCell, rec)
				} else {
					row.Model = modelDeltas(rec, machine, n, c, simScale)
				}
				s := analyze.Summarize(analyze.FromRecorder(rec), 0)
				row.Analysis = &s
				artifact.Machine = rec.Machine()
				artifact.Rows = append(artifact.Rows, row)
			}
		}
		fmt.Printf("%8d", g)
		labels = append(labels, fmt.Sprint(g))
		for i, gf := range gflops {
			fmt.Printf("%12.1f", gf)
			series[i].Values = append(series[i].Values, gf)
		}
		base := gflops[0]
		for _, gf := range gflops {
			fmt.Printf("%12.2f", gf/base)
		}
		fmt.Println()
	}
	// Achieved (not nominal) compression per reshape, from the metrics of
	// each config's last measured row.
	for i, c := range configs {
		stats := recorders[i].Metrics().CompressionStats()
		if len(stats) == 0 {
			continue
		}
		fmt.Printf("# %s achieved compression:", c.name)
		for _, s := range stats {
			fmt.Printf(" %s %.2fx", s.Label, s.Ratio())
		}
		fmt.Println()
	}

	if *metricsFlag && lastRec != nil {
		fmt.Printf("\n# metrics report — %s\n", lastCell)
		lastRec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" && lastRec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		if err := lastRec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written: %s (%s) — open in chrome://tracing or ui.perfetto.dev\n", *traceFlag, lastCell)
	}
	if *jsonFlag != "" {
		if err := artifact.WriteFile(*jsonFlag); err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# bench artifact written: %s (%d rows)\n", *jsonFlag, len(artifact.Rows))
	}
	if *autotuneFlag && *tunePlanFlag != "" {
		if err := planOut.Save(*tunePlanFlag); err != nil {
			fmt.Fprintln(os.Stderr, "fftbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# tune plan written: %s (%d cells)\n", *tunePlanFlag, len(planOut.Cells))
	}
	if *doPlot {
		fmt.Println()
		fmt.Print(plot.Chart("Gflop/s vs GPUs (log scale)", labels, series, 60, 14, true))
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fftbench: telemetry:", err)
			os.Exit(1)
		}
	}
}

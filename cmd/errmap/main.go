// Command errmap renders the numerical-error provenance ledger: where
// the compression error of a run came from (which reshape stage, which
// (rank, peer) pair), how the measured error composed across the
// pipeline against the theoretical bound composition, and how the error
// budget burned over virtual time.
//
// Usage:
//
//	errmap -addr 127.0.0.1:9090        # scrape a live -serve endpoint's /errtrack
//	errmap -replay events.jsonl        # rebuild the ledger from a recorded event log
//	errmap -artifact errtrack.json     # render a saved -errtrack report
//
// All three modes render the same errtrack.Report and print the same
// verdict line: the live scrape serves the tracker's snapshot, and the
// replay feeds the recorded stream through the identical observer code,
// so a live run and its offline replay cannot disagree. The exit status
// is non-zero when any stage exceeded its error budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/obs/errtrack"
)

func main() {
	addr := flag.String("addr", "", "scrape the /errtrack endpoint of a live -serve address (host:port)")
	replay := flag.String("replay", "", "rebuild the ledger from a recorded JSONL event log")
	artifact := flag.String("artifact", "", "render a saved -errtrack report file")
	pairsFlag := flag.Int("pairs", 10, "worst (rank, peer) pairs to list per stage (0 disables)")
	flag.Parse()

	var rep errtrack.Report
	var err error
	switch {
	case *addr != "":
		rep, err = scrape(*addr)
	case *replay != "":
		var trk *errtrack.Tracker
		var bad int64
		trk, bad, err = errtrack.ReplayFile(*replay)
		if err == nil {
			rep = trk.Snapshot()
			if bad > 0 {
				fmt.Printf("# %d malformed lines skipped (run obswatch -replay for integrity checks)\n", bad)
			}
		}
	case *artifact != "":
		rep, err = errtrack.LoadReport(*artifact)
	default:
		fmt.Fprintln(os.Stderr, "errmap: one of -addr, -replay, -artifact is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "errmap:", err)
		os.Exit(1)
	}

	render(os.Stdout, rep, *pairsFlag)
	if len(rep.OverBudget()) > 0 {
		os.Exit(1)
	}
}

// scrape fetches a live run's /errtrack report.
func scrape(addr string) (errtrack.Report, error) {
	var rep errtrack.Report
	resp, err := http.Get("http://" + addr + "/errtrack")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("/errtrack: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, err
	}
	if rep.Schema != errtrack.ReportSchema {
		return rep, fmt.Errorf("/errtrack: schema %d, want %d", rep.Schema, errtrack.ReportSchema)
	}
	return rep, nil
}

func render(w *os.File, rep errtrack.Report, pairs int) {
	if len(rep.Cells) == 0 {
		fmt.Fprintln(w, "no error-attribution data (run with -eventlog/-errtrack and a lossy configuration)")
	}
	for _, c := range rep.Cells {
		if len(c.Stages) == 0 {
			continue // lossless cell: nothing to attribute
		}
		fmt.Fprintf(w, "== %s\n", c.Cell)
		led := errtrack.BuildLedger(c, nil)
		renderLedger(w, led)
		for _, s := range c.Stages {
			renderMatrix(w, s, pairs)
		}
		renderBurn(w, c)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, rep.Verdict())
}

// renderLedger prints the error-accumulation table: per stage, the
// measured worst relative error and its composition so far against the
// bound composition prod(1+b_i)−1.
func renderLedger(w *os.File, led errtrack.Ledger) {
	fmt.Fprintf(w, "  %-12s %10s %12s %12s %12s %12s %7s %6s\n",
		"stage", "values", "measured", "bound", "cum meas", "cum bound", "share", "ok")
	for _, r := range led.Rows {
		ok := "ok"
		if !r.OK {
			ok = "OVER"
		}
		fmt.Fprintf(w, "  %-12s %10d %12.3e %12.3e %12.3e %12.3e %6.1f%% %6s\n",
			r.Label, r.Values, r.Measured, r.Bound, r.MeasuredCum, r.BoundCum, 100*r.Share, ok)
	}
}

// renderMatrix prints one stage's (rank, peer) attribution: the worst
// pairs, and — when the rank space is small enough to read — an ASCII
// heat matrix of max relative error scaled by the stage bound.
func renderMatrix(w *os.File, s errtrack.StageReport, pairs int) {
	if len(s.Pairs) == 0 || pairs <= 0 {
		return
	}
	worst := append([]errtrack.PairStat(nil), s.Pairs...)
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].MaxRel != worst[j].MaxRel {
			return worst[i].MaxRel > worst[j].MaxRel
		}
		if worst[i].Rank != worst[j].Rank {
			return worst[i].Rank < worst[j].Rank
		}
		return worst[i].Peer < worst[j].Peer
	})
	if len(worst) > pairs {
		worst = worst[:pairs]
	}
	fmt.Fprintf(w, "  %s worst pairs (of %d", s.Label, len(s.Pairs))
	if s.DroppedPairs > 0 {
		fmt.Fprintf(w, ", %d not retained", s.DroppedPairs)
	}
	fmt.Fprintln(w, "):")
	fmt.Fprintf(w, "    %6s %6s %10s %12s %12s\n", "rank", "peer", "n", "max_rel", "rms")
	for _, p := range worst {
		fmt.Fprintf(w, "    %6d %6d %10d %12.3e %12.3e\n", p.Rank, p.Peer, p.N, p.MaxRel, p.RMS)
	}
	heatMatrix(w, s)
}

// heatMatrix draws rank (rows) × peer (columns) as one shade character
// per pair: '.' for near-zero error up to '@' at (or beyond) the stage
// bound. Skipped when the rank space would not fit a terminal.
const heatRamp = ".:-=+*#%@"

func heatMatrix(w *os.File, s errtrack.StageReport) {
	maxID := 0
	for _, p := range s.Pairs {
		if p.Rank > maxID {
			maxID = p.Rank
		}
		if p.Peer > maxID {
			maxID = p.Peer
		}
	}
	if maxID >= 48 || len(s.Pairs) == 0 {
		return
	}
	scale := s.Bound
	if scale <= 0 {
		scale = s.WorstRel
	}
	if scale <= 0 {
		return
	}
	grid := make([][]byte, maxID+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", maxID+1))
	}
	for _, p := range s.Pairs {
		idx := int(p.MaxRel / scale * float64(len(heatRamp)-1))
		if idx >= len(heatRamp) {
			idx = len(heatRamp) - 1
		}
		if idx < 0 {
			idx = 0
		}
		grid[p.Rank][p.Peer] = heatRamp[idx]
	}
	fmt.Fprintf(w, "    %s rank×peer heat ('%c'≈0 … '%c'=bound %.2e):\n",
		s.Label, heatRamp[0], heatRamp[len(heatRamp)-1], scale)
	for rank, row := range grid {
		fmt.Fprintf(w, "    %4d |%s|\n", rank, row)
	}
}

// renderBurn draws each stage's budget burn over virtual time: the time
// span bucketed into fixed columns, each column shaded by its worst
// relative error against the stage bound.
func renderBurn(w *os.File, c errtrack.CellReport) {
	const cols = 60
	for _, s := range c.Stages {
		if len(s.Series) < 2 {
			continue
		}
		tMin, tMax := s.Series[0].T, s.Series[0].T
		for _, p := range s.Series[1:] {
			if p.T < tMin {
				tMin = p.T
			}
			if p.T > tMax {
				tMax = p.T
			}
		}
		if tMax <= tMin {
			continue
		}
		scale := s.Bound
		if scale <= 0 {
			scale = s.WorstRel
		}
		if scale <= 0 {
			continue
		}
		buckets := make([]float64, cols)
		for _, p := range s.Series {
			i := int((p.T - tMin) / (tMax - tMin) * float64(cols-1))
			if p.MaxRel > buckets[i] {
				buckets[i] = p.MaxRel
			}
		}
		line := make([]byte, cols)
		for i, v := range buckets {
			if v == 0 {
				line[i] = ' '
				continue
			}
			idx := int(v / scale * float64(len(heatRamp)-1))
			if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			line[i] = heatRamp[idx]
		}
		trunc := ""
		if s.SeriesTotal > int64(len(s.Series)) {
			trunc = fmt.Sprintf(" (%d of %d samples retained)", len(s.Series), s.SeriesTotal)
		}
		fmt.Fprintf(w, "  %s burn %.3gs..%.3gs |%s| worst %.2e of %.2e, drift %.2f%s\n",
			s.Label, tMin, tMax, line, s.WorstRel, scale, s.Drift, trunc)
	}
}

// Command precisions prints Table I of the paper: the parameters of the
// BFloat16/FP16/FP32/FP64 arithmetics and their peak rates on the GPUs
// the paper considers, as encoded in internal/precision.
//
// -errtrack writes the table as an error-provenance report: one stage
// per format carrying its unit roundoff as the theoretical bound, with
// no measurements — the bounds-only counterpart of the measured reports
// the simulating drivers emit, renderable by the same cmd/errmap.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/errtrack"
	"repro/internal/precision"
)

func main() {
	errtrackFlag := flag.String("errtrack", "", "write the theoretical-bounds-only error-provenance report to this JSON file")
	flag.Parse()
	fmt.Println("# Table I — floating-point arithmetic parameters")
	fmt.Printf("%-10s%6s%14s%12s%12s%14s%10s%10s\n",
		"Format", "Bits", "Xmin,s", "Xmin", "Xmax", "UnitRoundoff", "V100", "MI100")
	for _, f := range precision.Formats {
		v100 := "N/A"
		if f.PeakV100 > 0 {
			v100 = fmt.Sprintf("%.1f", f.PeakV100)
		}
		fmt.Printf("%-10s%6d%14.1e%12.1e%12.1e%14.1e%10s%10.1f\n",
			f.Name, f.Bits, f.XminSubnorm, f.XminNormal, f.Xmax, f.UnitRoundoff, v100, f.PeakMI100)
	}
	if *errtrackFlag != "" {
		cell := errtrack.CellReport{Cell: "table1"}
		for _, f := range precision.Formats {
			cell.Stages = append(cell.Stages, errtrack.StageReport{
				Label: f.Name, Bound: f.UnitRoundoff,
			})
		}
		rep := errtrack.Report{Cells: []errtrack.CellReport{cell}}
		if err := rep.WriteFile(*errtrackFlag); err != nil {
			fmt.Fprintln(os.Stderr, "precisions:", err)
			os.Exit(1)
		}
		fmt.Printf("# error-provenance report written: %s (theoretical bounds only)\n", *errtrackFlag)
	}
}

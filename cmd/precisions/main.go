// Command precisions prints Table I of the paper: the parameters of the
// BFloat16/FP16/FP32/FP64 arithmetics and their peak rates on the GPUs
// the paper considers, as encoded in internal/precision.
package main

import (
	"fmt"

	"repro/internal/precision"
)

func main() {
	fmt.Println("# Table I — floating-point arithmetic parameters")
	fmt.Printf("%-10s%6s%14s%12s%12s%14s%10s%10s\n",
		"Format", "Bits", "Xmin,s", "Xmin", "Xmax", "UnitRoundoff", "V100", "MI100")
	for _, f := range precision.Formats {
		v100 := "N/A"
		if f.PeakV100 > 0 {
			v100 = fmt.Sprintf("%.1f", f.PeakV100)
		}
		fmt.Printf("%-10s%6d%14.1e%12.1e%12.1e%14.1e%10s%10.1f\n",
			f.Name, f.Bits, f.XminSubnorm, f.XminNormal, f.Xmax, f.UnitRoundoff, v100, f.PeakMI100)
	}
}

// Command ablation quantifies the design choices of §V individually:
//
//	window     — cached window vs re-created window per exchange (§V-A)
//	permute    — node-aware ring vs naive rank ring (Algorithm 3's permute[])
//	pipeline   — §V-B compression/communication overlap vs synchronous
//	chunks     — pipeline depth sweep
//	flush      — per-node-step completion wait vs posting everything upfront
//	eager      — eager/rendezvous threshold sweep for the two-sided baseline
//
// Usage:
//
//	go run ./cmd/ablation [-which all] [-gpus 96] [-msg 81920]
//	                      [-trace out.json] [-metrics]
//
// -trace writes a Chrome-trace JSON of the last measured run (analyze it
// with cmd/tracetool); -metrics prints its phase/metrics report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// recording carries the -trace/-metrics state: each ablation run may
// grab a fresh recorder, and the last one is exported at exit.
type recording struct {
	on       bool
	lastRec  *obs.Recorder
	lastCell string
}

var rec recording

// tel is the live-telemetry session of the -serve/-eventlog/-slo flags
// (nil-safe when they are all off).
var tel *telemetry.Session

func (r *recording) grab(cell string) *obs.Recorder {
	if !r.on && !tel.Enabled() {
		return nil
	}
	c := obs.New(obs.Options{Trace: r.on, Metrics: true})
	tel.StartRun(cell)
	tel.Attach(c)
	if r.on {
		r.lastRec, r.lastCell = c, cell
	}
	return c
}

func main() {
	which := flag.String("which", "all", "comma list: window,permute,pipeline,chunks,flush,eager,transport,reshapes")
	gpus := flag.Int("gpus", 96, "GPU count (multiple of 6)")
	msg := flag.Int("msg", 80*1024, "message size per pair for exchange ablations")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the last measured run to this file")
	metricsFlag := flag.Bool("metrics", false, "print the metrics report of the last measured run")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	var err error
	if tel, err = tf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		os.Exit(1)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("# telemetry: serving http://%s\n", tel.Addr())
	}
	if *gpus%6 != 0 {
		fmt.Fprintln(os.Stderr, "ablation: -gpus must be a multiple of 6")
		os.Exit(1)
	}
	rec.on = *traceFlag != "" || *metricsFlag
	cfg := netsim.Summit(*gpus / 6)
	want := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]

	if all || want["window"] {
		ablateWindow(cfg)
	}
	if all || want["permute"] {
		ablatePermute(cfg, *msg)
	}
	if all || want["pipeline"] {
		ablatePipeline(cfg)
	}
	if all || want["chunks"] {
		ablateChunks(cfg)
	}
	if all || want["flush"] {
		ablateFlush(cfg, *msg)
	}
	if all || want["eager"] {
		ablateEager(cfg, *msg)
	}
	if all || want["transport"] {
		ablateTransport(cfg)
	}
	if all || want["reshapes"] {
		ablateReshapes(cfg)
	}

	if *metricsFlag && rec.lastRec != nil {
		fmt.Printf("\n# metrics report — %s\n", rec.lastCell)
		rec.lastRec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" && rec.lastRec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		if err := rec.lastRec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written: %s (%s)\n", *traceFlag, rec.lastCell)
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ablation: telemetry:", err)
			os.Exit(1)
		}
	}
}

// ablateTransport separates the two contributions: compression over the
// one-sided pipelined transport vs the same compression over the
// classical two-sided all-to-all.
func ablateTransport(cfg netsim.Config) {
	n := [3]int{64, 64, 64}
	osc := core.MeasureWith[complex128](rec.grab("transport/one-sided"), cfg, n, core.Options{
		Backend: core.BackendCompressed, Method: compress.Cast32{}, SimScale: 8,
	}, 2, false).ForwardTime
	two := core.MeasureWith[complex128](rec.grab("transport/two-sided"), cfg, n, core.Options{
		Backend: core.BackendCompressedTwoSided, Method: compress.Cast32{}, SimScale: 8,
	}, 2, false).ForwardTime
	fmt.Printf("# transport (FP64→FP32 compression on both): one-sided %.2f ms vs two-sided %.2f ms (%.2fx)\n",
		osc*1e3, two*1e3, two/osc)
}

// ablateReshapes quantifies the four- vs two-reshape configurations
// (brick vs pencil input/output).
func ablateReshapes(cfg netsim.Config) {
	n := [3]int{64, 64, 64}
	brick := core.MeasureWith[complex128](rec.grab("reshapes/brick"), cfg, n, core.Options{
		Backend: core.BackendAlltoallv, SimScale: 8,
	}, 2, false).ForwardTime
	pencil := core.MeasureWith[complex128](rec.grab("reshapes/pencil"), cfg, n, core.Options{
		Backend: core.BackendAlltoallv, SimScale: 8, PencilIO: true,
	}, 2, false).ForwardTime
	fmt.Printf("# reshape count: brick I/O (4 reshapes) %.2f ms vs pencil I/O (2 reshapes) %.2f ms (%.2fx)\n",
		brick*1e3, pencil*1e3, brick/pencil)
}

func ablateWindow(cfg netsim.Config) {
	const iters = 8
	timed := func(cached bool, cell string) float64 {
		var t float64
		mpi.RunWith(cfg, rec.grab(cell), func(c *mpi.Comm) {
			c.Barrier()
			start := c.Now()
			var win *mpi.Win
			for i := 0; i < iters; i++ {
				if win == nil || !cached {
					win = c.WinCreate(make([]byte, 1024))
				}
				win.Fence(nil)
			}
			end := c.AllreduceFloat64("max", c.Now())
			if c.Rank() == 0 {
				t = (end - start) / iters
			}
		})
		return t
	}
	cachedT, freshT := timed(true, "window/cached"), timed(false, "window/fresh")
	fmt.Printf("# window caching (§V-A): epoch cost with cached window %.1f µs, re-created %.1f µs (%.2fx)\n",
		cachedT*1e6, freshT*1e6, freshT/cachedT)
}

func ablatePermute(cfg netsim.Config, msg int) {
	aware := exchange.NodeBandwidthWith(rec.grab("permute/node-aware"), cfg, exchange.AlgoOSC, msg, 2)
	naive := exchange.NodeBandwidthWith(rec.grab("permute/naive"), cfg, exchange.AlgoOSCNaive, msg, 2)
	fmt.Printf("# node-aware permutation: ring %.2f GB/s vs naive %.2f GB/s (%.2fx)\n",
		aware/1e9, naive/1e9, aware/naive)
}

func ablatePipeline(cfg netsim.Config) {
	n := [3]int{64, 64, 64}
	on := core.MeasureWith[complex128](rec.grab("pipeline/overlapped"), cfg, n, core.Options{
		Backend: core.BackendCompressed, Method: compress.Cast32{}, SimScale: 8,
	}, 2, false).ForwardTime
	off := core.MeasureWith[complex128](rec.grab("pipeline/synchronous"), cfg, n, core.Options{
		Backend: core.BackendCompressed, Method: compress.Cast32{}, SimScale: 8, DisablePipeline: true,
	}, 2, false).ForwardTime
	fmt.Printf("# §V-B pipeline: overlapped %.2f ms vs synchronous %.2f ms per transform (%.2fx)\n",
		on*1e3, off*1e3, off/on)
}

func ablateChunks(cfg netsim.Config) {
	fmt.Println("# pipeline depth sweep (compressed exchange, 512^3-equivalent volume):")
	for _, k := range []int{1, 2, 4, 8, 16} {
		t := exchange.CompressedExchangeTimeWith(rec.grab(fmt.Sprintf("chunks/%d", k)),
			cfg, compress.Cast32{}, k, 40000, 2, true)
		fmt.Printf("#   chunks=%2d: %.3f ms\n", k, t*1e3)
	}
}

func ablateFlush(cfg netsim.Config, msg int) {
	timed := func(flush int, cell string) float64 {
		p := cfg.Ranks()
		var start, end float64
		mpi.RunWith(cfg, rec.grab(cell), func(c *mpi.Comm) {
			o := exchange.NewOSCPhantom(c, exchange.Uniform(msg), true)
			o.FlushEvery = flush
			o.ExchangeN()
			c.Barrier()
			t0 := c.AllreduceFloat64("min", c.Now())
			o.ExchangeN()
			o.ExchangeN()
			c.Barrier()
			t1 := c.AllreduceFloat64("max", c.Now())
			if c.Rank() == 0 {
				start, end = t0, t1
			}
		})
		_ = p
		return (end - start) / 2
	}
	stepped := timed(cfg.GPUsPerNode, "flush/stepped")
	upfront := timed(0, "flush/upfront")
	fmt.Printf("# per-node-step flush: stepped %.3f ms vs all-upfront %.3f ms per exchange (%.2fx)\n",
		stepped*1e3, upfront*1e3, upfront/stepped)
}

func ablateEager(cfg netsim.Config, msg int) {
	fmt.Println("# eager/rendezvous threshold sweep (two-sided linear all-to-all):")
	p := cfg.Ranks()
	for _, thr := range []int{1024, 8192, 65536, 1 << 20} {
		var start, end float64
		mpi.RunWith(cfg, rec.grab(fmt.Sprintf("eager/%d", thr)), func(c *mpi.Comm) {
			c.SetEagerThreshold(thr)
			sizes := make([]int, p)
			for i := range sizes {
				sizes[i] = msg
			}
			c.AlltoallvN(sizes)
			c.Barrier()
			t0 := c.AllreduceFloat64("min", c.Now())
			c.AlltoallvN(sizes)
			c.Barrier()
			t1 := c.AllreduceFloat64("max", c.Now())
			if c.Rank() == 0 {
				start, end = t0, t1
			}
		})
		fmt.Printf("#   threshold=%7d B: %.3f ms\n", thr, (end-start)*1e3)
	}
}

// Command benchdiff gates performance regressions: it compares a new
// bench artifact (written by fftbench/alltoallbench -json) against a
// committed baseline and exits nonzero when any metric worsened beyond
// the relative threshold, or when a baseline configuration disappeared.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold 0.1] baseline.json new.json
//
// Seconds and max_error gate lower-is-better; node_bw higher-is-better.
// `make benchdiff` regenerates the current tree's artifacts and runs
// this against the committed BENCH_*.json baselines.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/analyze"
)

func main() {
	threshold := flag.Float64("threshold", 0.1, "relative worsening that fails the gate (0.1 = 10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] baseline.json new.json")
		os.Exit(2)
	}

	oldA, err := analyze.LoadArtifact(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newA, err := analyze.LoadArtifact(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if oldA.Tool != newA.Tool {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing %s baseline against %s artifact\n", oldA.Tool, newA.Tool)
		os.Exit(1)
	}

	d := analyze.Diff(oldA, newA, *threshold)
	fmt.Printf("# %s: %s vs %s\n", oldA.Tool, flag.Arg(0), flag.Arg(1))
	d.WriteText(os.Stdout)
	if d.Regressed() {
		os.Exit(1)
	}
}
